// Imagepipeline reproduces the paper's real-world scenario (§5.3–5.4):
// the SD-VBS vision applications SIFT (sequential-dominant) and MSER
// (irregular-dominant), plus the synthesized mixed-blood program, each
// under the scheme that suits it — and the hybrid that combines both.
//
// SIFT's Gaussian-pyramid sweeps are what DFP's stream recognizer was
// built for; MSER's union-find pointer chasing defeats it, but SIP's
// profile-guided notifications convert its faults into in-enclave
// preloads. mixed-blood interleaves both behaviors, so only the hybrid
// captures the full gain.
package main

import (
	"fmt"
	"log"

	"sgxpreload"
)

func main() {
	cfg := sgxpreload.DefaultConfig()

	fmt.Println("Vision pipeline under SGX enclave paging")
	fmt.Println("=========================================")

	for _, app := range []struct {
		name    string
		schemes []sgxpreload.Scheme
	}{
		{"SIFT", []sgxpreload.Scheme{sgxpreload.DFPStop}},
		{"MSER", []sgxpreload.Scheme{sgxpreload.SIP}},
		{"mixed-blood", []sgxpreload.Scheme{sgxpreload.SIP, sgxpreload.DFPStop, sgxpreload.Hybrid}},
	} {
		w, err := sgxpreload.Benchmark(app.name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := sgxpreload.Run(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: baseline %d cycles, %d faults\n", app.name, base.Cycles, base.Faults)

		// SIP and the hybrid need the profiling pass first — one sample
		// image for profiling, other images for measurement, as in the
		// paper.
		var sel *sgxpreload.Selection
		if sgxpreload.Instrumentable(app.name) {
			sel, err = sgxpreload.Profile(w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  profile: %d instrumentation points\n", sel.Points())
		}

		for _, scheme := range app.schemes {
			c := cfg
			c.Scheme = scheme
			c.Selection = sel
			res, err := sgxpreload.Run(w, c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %+6.1f%%  (faults %6d, preloads %6d, notifies %6d)\n",
				scheme.String()+":", sgxpreload.ImprovementPct(res, base),
				res.Faults, res.PreloadsStarted, res.NotifyLoads)
		}
	}

	fmt.Println("\nPaper reference: SIFT +9.5% (DFP), MSER +3.0% (SIP),")
	fmt.Println("mixed-blood SIP +1.6% / DFP +6.0% / hybrid +7.1% (Figures 11 and 13).")
}
