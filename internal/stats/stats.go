// Package stats provides the small statistical helpers the evaluation
// uses: means, normalization against a baseline, improvement percentages,
// and fixed-width table rendering for the experiment reports.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice). The paper
// reports arithmetic means over five runs; the simulator is deterministic,
// so means here aggregate across benchmarks instead.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 if any x <= 0 or empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Normalized returns value/baseline — the "normalized execution time" of
// the paper's figures (1.0 = baseline, below 1.0 = faster). It returns
// NaN when baseline is 0.
func Normalized(value, baseline uint64) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return float64(value) / float64(baseline)
}

// ImprovementPct returns the performance improvement of value over
// baseline in percent: positive = faster than baseline.
func ImprovementPct(value, baseline uint64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (1 - float64(value)/float64(baseline))
}

// Table renders rows as a fixed-width text table with the given header.
// Cells are right-aligned except the first column.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			var cell string
			if i < len(r) {
				cell = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
