package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/workload"
)

// Differential tests: the unified engine must reproduce the pre-refactor
// engines byte for byte. Three artifacts are compared per (scheme,
// benchmark) cell — the full Result struct, the exported JSONL event
// timeline, and the Report re-derived from that timeline — first between
// Run and a single-enclave RunShared (which must be the same engine by
// construction), and then against golden hashes captured from the seed
// engines before the unification.

// diffBenches are the three representative benchmarks: one regular
// (lbm), one irregular (deepsjeng), one fault-dominated stream
// (microbenchmark). All three are instrumentable, so SIP and Hybrid run
// everywhere.
var diffBenches = []string{"lbm", "deepsjeng", "microbenchmark"}

var diffSchemes = []Scheme{Baseline, DFP, DFPStop, SIP, Hybrid}

// diffSelection builds the SIP instrumentation-site set exactly the way
// cmd/sgxsim does (threshold 5%, min 32 samples, 2048-page EPC).
func diffSelection(t testing.TB, w *workload.Workload) *sip.Selection {
	t.Helper()
	cl, err := sip.NewClassifier(2048, w.ELRangePages(), dfp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Generate(workload.Train) {
		cl.Record(a.Site, a.Page)
	}
	return sip.Select(cl.Profile(), 0.05, 32)
}

// diffArtifacts captures the three compared artifacts of one run.
type diffArtifacts struct {
	result string // full Result dump, every field
	jsonl  string // exported event timeline
	report string // metrics re-derived from the timeline
}

func (a diffArtifacts) hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s", a.result, a.jsonl, a.report)
	return hex.EncodeToString(h.Sum(nil))
}

// artifactsOf renders a hooked run's artifacts from its result and
// recorder.
func artifactsOf(t testing.TB, res interface{}, rec *obs.Recorder) diffArtifacts {
	t.Helper()
	var b strings.Builder
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return diffArtifacts{
		result: fmt.Sprintf("%#v", res),
		jsonl:  b.String(),
		report: obs.BuildReport(rec.Events()).String(),
	}
}

// soloCell runs one (scheme, benchmark) cell through Run.
func soloCell(t testing.TB, scheme Scheme, bench string) diffArtifacts {
	t.Helper()
	w, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	cfg := Config{
		Scheme:       scheme,
		EPCPages:     2048,
		ELRangePages: w.ELRangePages(),
		Hook:         rec,
	}
	if scheme.UsesSIP() {
		cfg.Selection = diffSelection(t, w)
	}
	res, err := Run(w.Generate(workload.Ref), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return artifactsOf(t, res, rec)
}

// sharedCell runs the same cell as a single-enclave RunShared.
func sharedCell(t testing.TB, scheme Scheme, bench string) diffArtifacts {
	t.Helper()
	w, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	enc := Enclave{
		Name:   bench,
		Trace:  w.Generate(workload.Ref),
		Pages:  w.ELRangePages(),
		Scheme: scheme,
	}
	if scheme.UsesSIP() {
		enc.Selection = diffSelection(t, w)
	}
	res, err := RunShared([]Enclave{enc}, SharedConfig{EPCPages: 2048, Hook: rec})
	if err != nil {
		t.Fatal(err)
	}
	return artifactsOf(t, res[0].Result, rec)
}

// multiCell runs a fixed two-enclave contention scenario; its golden
// hash pins the multi-enclave schedule across the refactor.
func multiCell(t testing.TB, schemeA, schemeB Scheme, benchA, benchB string) diffArtifacts {
	t.Helper()
	wa, err := workload.ByName(benchA)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := workload.ByName(benchB)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(w *workload.Workload, s Scheme) Enclave {
		e := Enclave{
			Name:   w.Name,
			Trace:  w.Generate(workload.Ref),
			Pages:  w.ELRangePages(),
			Scheme: s,
		}
		if s.UsesSIP() {
			e.Selection = diffSelection(t, w)
		}
		return e
	}
	rec := obs.NewRecorder()
	res, err := RunShared(
		[]Enclave{mk(wa, schemeA), mk(wb, schemeB)},
		SharedConfig{EPCPages: 2048, Hook: rec})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return diffArtifacts{
		result: fmt.Sprintf("%#v", res),
		jsonl:  b.String(),
		report: obs.BuildReport(rec.Events()).String(),
	}
}

// TestDifferentialRunVsShared: Run and single-enclave RunShared must be
// byte-identical in all three artifacts, for every scheme x benchmark.
func TestDifferentialRunVsShared(t *testing.T) {
	for _, bench := range diffBenches {
		for _, scheme := range diffSchemes {
			t.Run(bench+"/"+scheme.String(), func(t *testing.T) {
				solo := soloCell(t, scheme, bench)
				shared := sharedCell(t, scheme, bench)
				if solo.result != shared.result {
					t.Errorf("Result diverges:\n  Run       %s\n  RunShared %s",
						solo.result, shared.result)
				}
				if solo.jsonl != shared.jsonl {
					t.Errorf("JSONL trace diverges (%d vs %d bytes): %s",
						len(solo.jsonl), len(shared.jsonl),
						firstDiffLine(solo.jsonl, shared.jsonl))
				}
				if solo.report != shared.report {
					t.Errorf("replayed Report diverges:\n--- Run ---\n%s\n--- RunShared ---\n%s",
						solo.report, shared.report)
				}
			})
		}
	}
}

// firstDiffLine locates the first line where two JSONL exports differ.
func firstDiffLine(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("first divergence at line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("one trace is a prefix of the other (%d vs %d lines)", len(la), len(lb))
}

// seedGolden pins sha256(Result dump + JSONL + Report) per cell, captured
// from the pre-unification engines (the seed's independent Run and
// RunShared loops) on this repository's fixed benchmark generators. Any
// behavioral drift in the unified engine shows up as a hash mismatch.
var seedGolden = map[string]string{
	"run/lbm/baseline":                        "d514a56ffb6774dcf0ab58afbaa6c3c06e6d7981b31bfc497ad70604230d0a69",
	"run/lbm/DFP":                             "1ceead978407cfe8cf9f86d04e72822a496ce35204c52946398f906d669b59db",
	"run/lbm/DFP-stop":                        "517862a75144055232142b15db0b1370d991dac57a1a9e24cf2cad966ed6c8bb",
	"run/lbm/SIP":                             "817ea2ec2e7ff0f142e4e7c0c382f10f38c0fbc6830f588caacf70908f9084e3",
	"run/lbm/SIP+DFP":                         "6e1692b1e75141f462bd8b19628fec9a03d617dd62fc4f6f240fed930f2a606e",
	"run/deepsjeng/baseline":                  "3f1f0cab0406eb628dcd658644bbcc54f5614deea58e7e80845221bc25a80854",
	"run/deepsjeng/DFP":                       "7596ab2476e11d8c7d1e64c3f04040d605e11b003dcfe919469d0ca55db93b18",
	"run/deepsjeng/DFP-stop":                  "8c91f7978c476e0e4c01eb70354921442bcd04feb1a0e74d009a7343a1c783e9",
	"run/deepsjeng/SIP":                       "57ee7f050a9b5c15165ec5cf6b5ff62b6759d9959548100cbcb970836e7de602",
	"run/deepsjeng/SIP+DFP":                   "5758a5f6a95c10490f0ff4dc2345110960c73d2092d6e5c5b97aabe2beb81a8c",
	"run/microbenchmark/baseline":             "655ceaf072c667f9f2cd1f37bc0d478d89fbdfb6d4bcedbdb8b8d750d7bd6274",
	"run/microbenchmark/DFP":                  "444c8796563543bc54f28712d3f9a6c3f28947e695830a7160c6cc466ac4dee1",
	"run/microbenchmark/DFP-stop":             "ccc444b3a5c1e2ef58946e1a2c8a3d8d10ed83d711b44bfcd877da68d33e56c9",
	"run/microbenchmark/SIP":                  "cde70a731cd6a61af5bd9e9b7edbe3a2f8da2429215167e495af506a3468abc4",
	"run/microbenchmark/SIP+DFP":              "855c1a2eec493040c2e242051610842111b77aa8459522a6dc25553ec8910839",
	"shared/lbm:DFP-stop+deepsjeng:baseline":  "c7fc9424727b5b7506eafbf6b6c23e6c4052daa5c8396b3691684666cb9ffe9d",
	"shared/microbenchmark:DFP+lbm:SIP":       "766c52cc05e3362bdcbe58987d3600f5552815a35ddfe8558890502017ec2496",
	"shared/tiebreak-E64":                     "bd9bcf68906126a5fb43281f7a21869f1cc3debc249d1159dc717949d7192403",
}

// TestGoldenVsSeed compares the current engine against the pinned seed
// hashes. SGXSIM_GENGOLDEN=1 prints the map instead (used once, on the
// seed, to capture the pins).
func TestGoldenVsSeed(t *testing.T) {
	gen := os.Getenv("SGXSIM_GENGOLDEN") == "1"
	check := func(key string, a diffArtifacts) {
		if gen {
			fmt.Printf("\t%q: %q,\n", key, a.hash())
			return
		}
		want, ok := seedGolden[key]
		if !ok {
			t.Errorf("no pinned golden for %s", key)
			return
		}
		if got := a.hash(); got != want {
			t.Errorf("%s: hash %s != pinned seed %s (engine output drifted)", key, got, want)
		}
	}
	for _, bench := range diffBenches {
		for _, scheme := range diffSchemes {
			check("run/"+bench+"/"+scheme.String(), soloCell(t, scheme, bench))
		}
	}
	check("shared/lbm:DFP-stop+deepsjeng:baseline",
		multiCell(t, DFPStop, Baseline, "lbm", "deepsjeng"))
	check("shared/microbenchmark:DFP+lbm:SIP",
		multiCell(t, DFP, SIP, "microbenchmark", "lbm"))
	check("shared/tiebreak-E64", tieBreakCell(t, 64))
}
