// Package rng provides a small deterministic pseudo-random number
// generator used by the workload generators.
//
// The simulator must be bit-for-bit reproducible: the paper's evaluation
// reports ratios of execution times, and reproducing those ratios in tests
// requires that the same seed always yields the same access stream. A
// process-global generator (math/rand's default source) would couple
// unrelated workloads, so every generator owns its own Source.
package rng

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed it explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
//
// SplitMix64 (Steele, Lea, Flood: "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014) passes BigCrush and needs only three
// multiplications, which matters because workload generators call it on
// every synthetic access.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Chance returns true with probability p (clamped to [0, 1]).
func (s *Source) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork returns a new Source deterministically derived from this one,
// leaving the parent's stream position advanced by one. Forking lets a
// workload give each phase an independent stream without manual seed
// bookkeeping.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
