package sgxpreload_test

import (
	"testing"

	"sgxpreload"
)

func TestBenchmarkRegistry(t *testing.T) {
	names := sgxpreload.Benchmarks()
	if len(names) == 0 {
		t.Fatal("no built-in benchmarks")
	}
	for _, name := range []string{"lbm", "mcf", "deepsjeng", "SIFT", "MSER", "mixed-blood", "microbenchmark"} {
		if _, err := sgxpreload.Benchmark(name); err != nil {
			t.Errorf("Benchmark(%q): %v", name, err)
		}
	}
	if _, err := sgxpreload.Benchmark("unknown"); err == nil {
		t.Error("unknown benchmark resolved")
	}
}

func TestRunBaselineVsDFP(t *testing.T) {
	w, err := sgxpreload.Benchmark("lbm")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.DFP})
	if err != nil {
		t.Fatal(err)
	}
	imp := sgxpreload.ImprovementPct(d, base)
	if imp < 9 || imp > 17 {
		t.Fatalf("lbm DFP improvement = %+.1f%%, want near the paper's +13.3%%", imp)
	}
	if d.PreloadsStarted == 0 {
		t.Error("DFP run reported no preloads")
	}
	if base.Faults == 0 || base.Accesses == 0 {
		t.Errorf("baseline counters empty: %+v", base)
	}
}

func TestProfileAndSIP(t *testing.T) {
	w, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sgxpreload.DefaultConfig()
	sel, err := sgxpreload.Profile(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Points() == 0 {
		t.Fatal("profiling deepsjeng selected no instrumentation points")
	}
	cfg.Scheme = sgxpreload.SIP
	cfg.Selection = sel
	res, err := sgxpreload.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sgxpreload.Run(w, sgxpreload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if imp := sgxpreload.ImprovementPct(res, base); imp < 5 {
		t.Fatalf("deepsjeng SIP improvement = %+.1f%%, want a solid gain", imp)
	}
	if res.NotifyLoads == 0 {
		t.Error("SIP run issued no notify loads")
	}
}

// customWorkload demonstrates the public interface with a user-defined
// access pattern: a strided sweep.
type customWorkload struct{}

func (customWorkload) Name() string  { return "custom-stride" }
func (customWorkload) Pages() uint64 { return 4096 }
func (customWorkload) Trace(in sgxpreload.Input) []sgxpreload.Access {
	n := 4096
	if in == sgxpreload.Train {
		n = 512
	}
	out := make([]sgxpreload.Access, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sgxpreload.Access{Site: 1, Page: uint64(i), Compute: 80000})
	}
	return out
}

func TestCustomWorkload(t *testing.T) {
	var w customWorkload
	base, err := sgxpreload.Run(w, sgxpreload.Config{EPCPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.DFP, EPCPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycles >= base.Cycles {
		t.Fatalf("DFP (%d) not faster than baseline (%d) on a custom sweep", d.Cycles, base.Cycles)
	}
}

type badWorkload struct{ customWorkload }

func (badWorkload) Pages() uint64 { return 10 } // trace touches pages >= 10

func TestOutOfRangeWorkloadRejected(t *testing.T) {
	if _, err := sgxpreload.Run(badWorkload{}, sgxpreload.Config{}); err == nil {
		t.Fatal("out-of-range workload accepted")
	}
}

func TestDFPStopFires(t *testing.T) {
	w, err := sgxpreload.Benchmark("roms")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.DFPStop})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StopFired {
		t.Error("safety valve did not fire on roms")
	}
}

func TestConfigKnobsRespected(t *testing.T) {
	w, err := sgxpreload.Benchmark("microbenchmark")
	if err != nil {
		t.Fatal(err)
	}
	// A stream list of 1 with a single stream still works; LoadLength 1
	// must preload less than LoadLength 8.
	short, err := sgxpreload.Run(w, sgxpreload.Config{
		Scheme: sgxpreload.DFP,
		DFP:    sgxpreload.DFPConfig{StreamListLen: 4, LoadLength: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	long, err := sgxpreload.Run(w, sgxpreload.Config{
		Scheme: sgxpreload.DFP,
		DFP:    sgxpreload.DFPConfig{StreamListLen: 4, LoadLength: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if long.Cycles >= short.Cycles {
		t.Fatalf("LoadLength 8 (%d cycles) not faster than 1 (%d) on a pure scan",
			long.Cycles, short.Cycles)
	}
}

func TestInstrumentable(t *testing.T) {
	if !sgxpreload.Instrumentable("mcf") {
		t.Error("mcf should be instrumentable")
	}
	if sgxpreload.Instrumentable("bwaves") {
		t.Error("bwaves (Fortran) should not be instrumentable")
	}
	if sgxpreload.Instrumentable("nope") {
		t.Error("unknown benchmark reported instrumentable")
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[sgxpreload.Scheme]string{
		sgxpreload.Baseline: "baseline",
		sgxpreload.DFP:      "DFP",
		sgxpreload.DFPStop:  "DFP-stop",
		sgxpreload.SIP:      "SIP",
		sgxpreload.Hybrid:   "SIP+DFP",
	} {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
