package sim

import (
	"math"
	"sort"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

// closerStream is a leak detector: a stream that records whether the
// engine released it.
type closerStream struct {
	trace  []mem.Access
	i      int
	closed bool
}

func (c *closerStream) Next() (mem.Access, bool) {
	if c.i >= len(c.trace) {
		return mem.Access{}, false
	}
	a := c.trace[c.i]
	c.i++
	return a, true
}

func (c *closerStream) Close() { c.closed = true }

// TestNewClosesStreamsOnError: a failed construction must release every
// caller-provided stream — including the failing enclave's and those
// after it, whose states were never built. The seed leaked exactly
// those: Close only walked already-built states, so generator
// coroutines behind the failure point were abandoned.
func TestNewClosesStreamsOnError(t *testing.T) {
	mk := func() []*closerStream {
		out := make([]*closerStream, 3)
		for i := range out {
			out[i] = &closerStream{trace: []mem.Access{{Page: 0, Compute: 10}}}
		}
		return out
	}

	t.Run("buildState failure mid-list", func(t *testing.T) {
		streams := mk()
		encs := []Enclave{
			{Name: "a", Stream: streams[0], Pages: 8, Scheme: Baseline},
			// Unknown predictor: buildState fails at index 1, after
			// enclave 0's state (and stream) is wired.
			{Name: "b", Stream: streams[1], Pages: 8, Scheme: DFP, Predictor: "bogus"},
			{Name: "c", Stream: streams[2], Pages: 8, Scheme: Baseline},
		}
		if _, err := New(encs, SharedConfig{EPCPages: 16}); err == nil {
			t.Fatal("want construction error, got nil")
		}
		for i, s := range streams {
			if !s.closed {
				t.Errorf("enclave %d stream leaked (not closed on construction failure)", i)
			}
		}
	})

	t.Run("validation failure before any state", func(t *testing.T) {
		streams := mk()
		encs := []Enclave{
			{Name: "a", Stream: streams[0], Pages: 8, Scheme: Baseline},
			{Name: "b", Stream: streams[1], Pages: 0, Scheme: Baseline}, // zero pages
			{Name: "c", Stream: streams[2], Pages: 8, Scheme: Baseline},
		}
		if _, err := New(encs, SharedConfig{EPCPages: 16}); err == nil {
			t.Fatal("want construction error, got nil")
		}
		for i, s := range streams {
			if !s.closed {
				t.Errorf("enclave %d stream leaked (not closed on validation failure)", i)
			}
		}
	})
}

// TestResultAllocFree: Result(i) must derive a single enclave's
// snapshot — no O(E) materialization, no per-call allocation — so a
// live scraper polling one enclave of a large run costs O(1). The seed
// built all E snapshots per call.
func TestResultAllocFree(t *testing.T) {
	eng, err := New(tieBreakEnclaves(64), SharedConfig{EPCPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var sink SharedResult
	allocs := testing.AllocsPerRun(100, func() {
		sink = eng.Result(17)
	})
	if allocs > 0 {
		t.Errorf("Result(i) allocates %.1f times per call, want 0", allocs)
	}
	if sink.Name != "enc0017" {
		t.Errorf("Result(17) snapshots %q, want enc0017", sink.Name)
	}
}

// TestClockSaturation: a run whose virtual time approaches 2^64 must
// error out, not wrap — a wrapped scheduling key would make the
// farthest-ahead enclave look earliest and silently corrupt the
// schedule. The engine detects both spellings of the wrap: the
// scheduling key (clock + next compute) and the clock itself advancing
// past 2^64 inside a step's fault service.
func TestClockSaturation(t *testing.T) {
	t.Run("scheduling key wraps", func(t *testing.T) {
		// Two huge computes: the first access executes, then the
		// rescheduling key clock + compute exceeds 2^64.
		enc := Enclave{
			Name: "sat",
			Trace: []mem.Access{
				{Page: 0, Compute: 1 << 63},
				{Page: 1, Compute: (1 << 63) + 1000},
			},
			Pages:  8,
			Scheme: Baseline,
		}
		eng, err := New([]Enclave{enc}, SharedConfig{EPCPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Step()
		if err == nil || !strings.Contains(err.Error(), "saturated") {
			t.Fatalf("Step = %v, want scheduling-key saturation error", err)
		}
	})

	t.Run("clock wraps inside a step", func(t *testing.T) {
		// The key clock + compute still fits, but the access faults and
		// the fault-service cycles push the clock past 2^64.
		enc := Enclave{
			Name:   "sat",
			Trace:  []mem.Access{{Page: 0, Compute: math.MaxUint64 - 2000}},
			Pages:  8,
			Scheme: Baseline,
		}
		eng, err := New([]Enclave{enc}, SharedConfig{EPCPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Step()
		if err == nil || !strings.Contains(err.Error(), "saturated") {
			t.Fatalf("Step = %v, want clock saturation error", err)
		}
	})

	t.Run("just below the boundary survives", func(t *testing.T) {
		enc := Enclave{
			Name:   "ok",
			Trace:  []mem.Access{{Page: 0, Compute: 1 << 62}, {Page: 1, Compute: 1 << 62}},
			Pages:  8,
			Scheme: Baseline,
		}
		eng, err := New([]Enclave{enc}, SharedConfig{EPCPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		for {
			more, err := eng.Step()
			if err != nil {
				t.Fatalf("Step below the boundary errored: %v", err)
			}
			if !more {
				break
			}
		}
		if got := eng.Result(0).Accesses; got != 2 {
			t.Fatalf("ran %d accesses, want 2", got)
		}
	})
}

// TestEventHeapProperty: the heap must release enclaves in (key,
// index)-lexicographic order under random pushes and re-keys — the
// total order behind the strict first-min tie-break.
func TestEventHeapProperty(t *testing.T) {
	r := rng.New(20260808)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		var h eventHeap
		h.init(n)
		keys := make([]uint64, n)
		for i := 0; i < n; i++ {
			keys[i] = r.Uint64n(64) // tiny key space: ties everywhere
			h.push(int32(i), keys[i])
		}
		// Random upward re-keys through fix (keys are monotone in the
		// engine, but the structure must not depend on it).
		for j := 0; j < n/2; j++ {
			i := int32(r.Intn(n))
			keys[i] += r.Uint64n(32)
			h.fix(i, keys[i])
		}
		order := make([]int32, 0, n)
		for h.len() > 0 {
			i := h.min()
			order = append(order, i)
			h.popMin()
		}
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		sort.Slice(want, func(a, b int) bool {
			ka, kb := keys[want[a]], keys[want[b]]
			return ka < kb || (ka == kb && want[a] < want[b])
		})
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("trial %d: pop order[%d] = enclave %d (key %d), want enclave %d (key %d)",
					trial, i, order[i], keys[order[i]], want[i], keys[want[i]])
			}
		}
	}
}
