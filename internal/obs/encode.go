package obs

import (
	"strconv"

	"sgxpreload/internal/mem"
)

// Hand-rolled trace encoders. The JSONL/CSV line shape is a stable,
// versioned contract (see recorder.go), so the encoder does not need a
// general-purpose formatter: every line is six fixed-order fields whose
// only variable parts are decimal integers and the kind's wire name.
// AppendJSONL/AppendCSV exploit that — strconv.AppendUint for the
// numbers, a per-kind byte table for the constant middle of the line —
// and produce output byte-identical to the original fmt.Fprintf writers
// (pinned by the fmt-reference differential test and by the seed golden
// hashes in internal/sim) at roughly an order of magnitude less CPU and
// zero allocations once the destination buffer has grown.

// kindJSONL[k] is the constant JSONL fragment between the "t" value and
// the "page" value for kind k: `,"kind":"<name>","page":`.
var kindJSONL = func() [kindCount][]byte {
	var out [kindCount][]byte
	for k := Kind(0); k < kindCount; k++ {
		out[k] = []byte(`,"kind":"` + k.String() + `","page":`)
	}
	return out
}()

// kindCSV[k] is the CSV counterpart: `,<name>,`.
var kindCSV = func() [kindCount][]byte {
	var out [kindCount][]byte
	for k := Kind(0); k < kindCount; k++ {
		out[k] = []byte("," + k.String() + ",")
	}
	return out
}()

// appendPage renders the page field: mem.NoPage becomes -1, and any
// other value goes through the same int64 conversion the original
// writer applied (pageField), so out-of-range pages keep rendering
// identically.
func appendPage(dst []byte, p mem.PageID) []byte {
	return strconv.AppendInt(dst, pageField(p), 10)
}

// AppendJSONL appends one event's JSONL line (with trailing newline) to
// dst and returns the extended slice, byte-identical to the line
// WriteJSONL produces for the same event.
func AppendJSONL(dst []byte, e Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendUint(dst, e.T, 10)
	if int(e.Kind) < len(kindJSONL) {
		dst = append(dst, kindJSONL[e.Kind]...)
	} else {
		dst = append(dst, `,"kind":"`+e.Kind.String()+`","page":`...)
	}
	dst = appendPage(dst, e.Page)
	dst = append(dst, `,"batch":`...)
	dst = strconv.AppendUint(dst, e.Batch, 10)
	dst = append(dst, `,"v1":`...)
	dst = strconv.AppendUint(dst, e.V1, 10)
	dst = append(dst, `,"v2":`...)
	dst = strconv.AppendUint(dst, e.V2, 10)
	return append(dst, '}', '\n')
}

// AppendCSV appends one event's CSV row (with trailing newline) to dst
// and returns the extended slice, byte-identical to the row WriteCSV
// produces for the same event.
func AppendCSV(dst []byte, e Event) []byte {
	dst = strconv.AppendUint(dst, e.T, 10)
	if int(e.Kind) < len(kindCSV) {
		dst = append(dst, kindCSV[e.Kind]...)
	} else {
		dst = append(dst, ","+e.Kind.String()+","...)
	}
	dst = appendPage(dst, e.Page)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, e.Batch, 10)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, e.V1, 10)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, e.V2, 10)
	return append(dst, '\n')
}
