// Streaming demonstrates the pull-based engine: accesses are generated
// on demand and consumed one at a time, so peak memory is independent of
// trace length. A materialized 5M-access trace would occupy ~200 MB;
// streamed, the run needs only the engine's working state, which is how
// arbitrarily long (or unbounded) workloads are simulated.
package main

import (
	"fmt"
	"log"
	"runtime"

	"sgxpreload"
)

func main() {
	// An unbounded synthetic workload: a sequential sweep over a 256 MiB
	// working set with a periodic strided revisit. The generator holds one
	// counter — the trace never exists in memory.
	const pages = 1 << 16
	gen := func() sgxpreload.AccessStream {
		var i uint64
		return sgxpreload.StreamFunc(func() (sgxpreload.Access, bool) {
			i++
			a := sgxpreload.Access{Compute: 2500}
			if i%17 == 0 {
				a.Page = (i * 7919) % pages
			} else {
				a.Page = i % pages
			}
			return a, true
		})
	}

	// Bound the generator for a finite run and compare schemes. Each run
	// pulls its own fresh stream.
	const accesses = 5_000_000
	cfg := sgxpreload.DefaultConfig()
	base, err := sgxpreload.RunStream(sgxpreload.LimitStream(gen(), accesses), pages, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Scheme = sgxpreload.DFPStop
	dfp, err := sgxpreload.RunStream(sgxpreload.LimitStream(gen(), accesses), pages, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("%d accesses streamed through a %d-page enclave (heap in use: %.1f MiB)\n",
		accesses, pages, float64(ms.HeapInuse)/(1<<20))
	fmt.Printf("  baseline: %d cycles, %d faults\n", base.Cycles, base.Faults)
	fmt.Printf("  DFP-stop: %d cycles, %d faults, %d preloads (%+.1f%%)\n",
		dfp.Cycles, dfp.Faults, dfp.PreloadsStarted, sgxpreload.ImprovementPct(dfp, base))

	// Built-in benchmarks stream the same way: their generators run as
	// coroutines suspended between accesses.
	w, err := sgxpreload.Benchmark("lbm")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sgxpreload.RunWorkloadStream(w, sgxpreload.Ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lbm streamed under %s: %d cycles, %d faults\n", res.Scheme, res.Cycles, res.Faults)
}
