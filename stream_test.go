package sgxpreload

import "testing"

func TestBuiltinBenchmarksImplementStreamer(t *testing.T) {
	w, err := Benchmark("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.(Streamer); !ok {
		t.Fatal("built-in benchmark does not implement Streamer")
	}
}

func TestRunWorkloadStreamMatchesRun(t *testing.T) {
	// The streaming path must be invisible in the results, for both the
	// coroutine (Streamer) path and the slice-backed fallback.
	w, err := Benchmark("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{Baseline, DFPStop} {
		cfg := Config{Scheme: scheme}
		materialized, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := RunWorkloadStream(w, Ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if materialized != streamed {
			t.Errorf("%s: streamed run diverges:\n  run    %+v\n  stream %+v",
				scheme, materialized, streamed)
		}
		fallback, err := RunWorkloadStream(noStreamer{w}, Ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if materialized != fallback {
			t.Errorf("%s: slice-backed fallback diverges:\n  run      %+v\n  fallback %+v",
				scheme, materialized, fallback)
		}
	}
}

// noStreamer hides a workload's Streamer implementation to force the
// materialized fallback in RunWorkloadStream.
type noStreamer struct{ w Workload }

func (n noStreamer) Name() string            { return n.w.Name() }
func (n noStreamer) Pages() uint64           { return n.w.Pages() }
func (n noStreamer) Trace(in Input) []Access { return n.w.Trace(in) }

func TestRunStreamCustomSource(t *testing.T) {
	// A hand-written generator: sweep 4096 pages twice through a
	// 1024-frame EPC; DFP must beat baseline on a pure stream.
	const pages, accesses = 4096, 8192
	mk := func() AccessStream {
		var i uint64
		return LimitStream(StreamFunc(func() (Access, bool) {
			i++
			return Access{Page: (i - 1) % pages, Compute: 3000}, true
		}), accesses)
	}
	base, err := RunStream(mk(), pages, Config{Scheme: Baseline, EPCPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if base.Accesses != accesses {
		t.Fatalf("ran %d accesses, want %d", base.Accesses, accesses)
	}
	dfp, err := RunStream(mk(), pages, Config{Scheme: DFP, EPCPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if dfp.Cycles >= base.Cycles {
		t.Errorf("DFP on a sequential stream (%d cycles) not faster than baseline (%d)",
			dfp.Cycles, base.Cycles)
	}
}

func TestRunStreamValidation(t *testing.T) {
	if _, err := RunStream(nil, 100, Config{}); err == nil {
		t.Error("nil stream accepted")
	}
	src := StreamFunc(func() (Access, bool) { return Access{Page: 50}, true })
	if _, err := RunStream(src, 0, Config{}); err == nil {
		t.Error("zero page range accepted")
	}
	// Out-of-range accesses surface as an error, like materialized runs.
	oob := LimitStream(StreamFunc(func() (Access, bool) {
		return Access{Page: 999}, true
	}), 10)
	if _, err := RunStream(oob, 100, Config{}); err == nil {
		t.Error("out-of-range streamed access accepted")
	}
}

func TestLimitStream(t *testing.T) {
	var produced int
	src := StreamFunc(func() (Access, bool) {
		produced++
		return Access{Page: uint64(produced)}, true
	})
	lim := LimitStream(src, 3)
	for i := 0; i < 3; i++ {
		if _, ok := lim.Next(); !ok {
			t.Fatalf("limited stream ended at %d of 3", i)
		}
	}
	if _, ok := lim.Next(); ok {
		t.Error("limited stream exceeded its cap")
	}
	if produced != 3 {
		t.Errorf("limit pulled %d accesses from the source, want 3", produced)
	}
}

func TestSharedPredictorKnob(t *testing.T) {
	w, err := Benchmark("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	run := func(pred string) []SharedResult {
		res, err := RunShared([]EnclaveSpec{
			{Workload: w, Scheme: DFP, Predictor: pred},
		}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def, nextn := run(""), run("nextn")
	if def[0].Result == nextn[0].Result {
		t.Error("per-enclave predictor override had no effect")
	}
	if _, err := RunShared([]EnclaveSpec{
		{Workload: w, Scheme: DFP, Predictor: "bogus"},
	}, DefaultConfig()); err == nil {
		t.Error("unknown predictor name accepted")
	}
}
