package spec

import (
	"fmt"
	"math"
	"sort"

	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/fleet"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

// Options carries the platform-side knobs a spec file deliberately does
// not own: the preloading configuration is the experimenter's variable,
// the traffic shape is the spec's.
type Options struct {
	// Scheme is the preloading scheme for cohorts without their own
	// "scheme" field. Zero value is Baseline.
	Scheme sim.Scheme
	// DFP tunables for every launch (zero value = paper defaults).
	DFP dfp.Config
	// Predictor selects the fault-history strategy (zero value = the
	// paper's multiple-stream recognizer).
	Predictor core.Kind
	// BackgroundReclaim enables each launch's background reclaimer.
	BackgroundReclaim bool
	// RateScale multiplies every cohort's arrival rate — the saturation
	// sweep's knob. Zero means 1 (the spec's own rates).
	RateScale float64
	// Selection supplies a workload's SIP instrumentation sites; must be
	// set when any cohort resolves to a SIP-using scheme. It is called
	// once per (launch, workload) in stream order, so a memoizing
	// implementation (experiments.Runner.Selection) is the natural fit.
	Selection func(w *workload.Workload) (*sip.Selection, error)
	// MaxLaunches bounds the compiled stream as a runaway guard — a
	// mis-scaled spec (say a one-cycle mean interval over a 10^9-cycle
	// horizon) fails with an error instead of consuming all memory.
	// Zero means 100000.
	MaxLaunches int
}

// Launch is one compiled enclave launch — the deterministic record
// behind an arrival's Enclave. The Manifest of Launches, not the live
// streams, is what golden tests and the spec-smoke gate compare.
type Launch struct {
	// At is the launch's virtual-cycle timestamp.
	At uint64
	// Cohort and Workload name the launch's origin.
	Cohort   string
	Workload string
	// Name is the enclave name: "<cohort>.<workload>/<seq>" with seq the
	// cohort-wide launch index, so fleet affinity keys launches of one
	// workload from one cohort together.
	Name string
	// Input is the generator input the launch runs (the footprint draw).
	Input workload.Input
	// PhaseShift is the launch's page-rotation offset in pages.
	PhaseShift uint64
	// DriftPeriod is the launch's working-set drift period in accesses
	// per page of slide (0 = no drift).
	DriftPeriod uint64
	// Scheme is the launch's resolved preloading scheme.
	Scheme sim.Scheme
}

// Manifest is the compiled stream's deterministic description: what
// launches when, with which modifiers, before any simulation runs.
type Manifest struct {
	// Spec and Horizon echo the compiled spec.
	Spec    string
	Horizon uint64
	// Launches holds every launch in arrival order.
	Launches []Launch
}

// String renders the manifest as a fixed-width table — the byte-stable
// form golden fixtures pin.
func (m *Manifest) String() string {
	t := &stats.Table{Header: []string{"at", "cohort", "name", "input", "shift", "drift", "scheme"}}
	for _, l := range m.Launches {
		t.Add(l.At, l.Cohort, l.Name, l.Input.String(), l.PhaseShift, l.DriftPeriod, l.Scheme.String())
	}
	return fmt.Sprintf("Spec %s: %d launches before cycle %d\n", m.Spec, len(m.Launches), m.Horizon) +
		t.String()
}

// Compile turns the spec into a fleet arrival stream: one time-ordered
// fleet.Arrival per launch, each carrying a fresh pull-based mem.Stream
// over the launch's (possibly phase-shifted, drifting) workload
// generator. Compilation is pure and seeded — no wall clock, no global
// state — so the same (Spec, Options) pair yields the identical stream
// every time; the returned Manifest is the comparable record of it.
//
// The caller owns the streams exactly as it owns hand-built arrivals:
// passing them to fleet.Run transfers ownership (the fleet closes them
// on every path); a caller that abandons the slice without running it
// should close them via CloseArrivals.
func Compile(s *Spec, opt Options) ([]fleet.Arrival, *Manifest, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	rateScale := opt.RateScale
	if rateScale == 0 {
		rateScale = 1
	}
	if !(rateScale > 0) || isNaN(rateScale) {
		return nil, nil, fmt.Errorf("spec %s: rate scale must be positive, got %g", s.Name, opt.RateScale)
	}
	maxLaunches := opt.MaxLaunches
	if maxLaunches == 0 {
		maxLaunches = 100_000
	}

	var launches []Launch
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		scheme := opt.Scheme
		if c.Scheme != "" {
			var err error
			if scheme, err = sim.SchemeByName(c.Scheme); err != nil {
				return nil, nil, fmt.Errorf("spec %s cohort %q: %w", s.Name, c.Name, err)
			}
		}
		// Two independent, deterministically derived sources per cohort:
		// one clocks the arrival process, one draws the per-launch
		// parameters — so adding a mix entry cannot shift arrival times.
		base := rng.New(s.Seed ^ cohortSeed(c.Name, i))
		rTimes, rPicks := base.Fork(), base.Fork()
		times, err := arrivalTimes(c, rTimes, s.HorizonCycles, rateScale, maxLaunches-len(launches))
		if err != nil {
			return nil, nil, fmt.Errorf("spec %s cohort %q: %w", s.Name, c.Name, err)
		}
		var totalWeight float64
		for _, m := range c.Mix {
			totalWeight += m.Weight
		}
		for seq, at := range times {
			m := pickMix(c.Mix, totalWeight, rPicks)
			in := workload.Ref
			if rPicks.Chance(c.TrainShare) {
				in = workload.Train
			}
			var shift uint64
			if c.PhaseShiftPages > 0 {
				shift = rPicks.Uint64n(c.PhaseShiftPages + 1)
			}
			launches = append(launches, Launch{
				At:          at,
				Cohort:      c.Name,
				Workload:    m.Workload,
				Name:        fmt.Sprintf("%s.%s/%d", c.Name, m.Workload, seq),
				Input:       in,
				PhaseShift:  shift,
				DriftPeriod: c.DriftPeriodAccesses,
				Scheme:      scheme,
			})
		}
	}
	if len(launches) == 0 {
		return nil, nil, fmt.Errorf("spec %s: no cohort produced a launch before the %d-cycle horizon (rates too low?)",
			s.Name, s.HorizonCycles)
	}
	// Merge the cohort streams into one time-ordered front-door stream.
	// The sort is stable and launches were appended in (cohort, seq)
	// order, so simultaneous launches tie-break by cohort declaration
	// order — fully deterministic.
	sort.SliceStable(launches, func(a, b int) bool { return launches[a].At < launches[b].At })

	arrivals := make([]fleet.Arrival, len(launches))
	selections := map[string]*sip.Selection{}
	for i, l := range launches {
		w, err := workload.ByName(l.Workload)
		if err != nil {
			return nil, nil, err // unreachable: Validate checked the mix
		}
		enc := sim.Enclave{
			Name:              l.Name,
			Pages:             w.ELRangePages(),
			Scheme:            l.Scheme,
			DFP:               opt.DFP,
			Predictor:         opt.Predictor,
			BackgroundReclaim: opt.BackgroundReclaim,
			Stream:            modify(w.Stream(l.Input), w.FootprintPages, l.PhaseShift, l.DriftPeriod),
		}
		if l.Scheme.UsesSIP() {
			sel, ok := selections[l.Workload]
			if !ok {
				bail := func(err error) ([]fleet.Arrival, *Manifest, error) {
					fleet.CloseArrivals(arrivals[:i])
					if c, ok := enc.Stream.(mem.Closer); ok {
						c.Close()
					}
					return nil, nil, err
				}
				if opt.Selection == nil {
					return bail(fmt.Errorf("spec %s: cohort %q resolves to %s but Options.Selection is nil",
						s.Name, l.Cohort, l.Scheme))
				}
				if sel, err = opt.Selection(w); err != nil {
					return bail(fmt.Errorf("spec %s: %s: %w", s.Name, l.Workload, err))
				}
				selections[l.Workload] = sel
			}
			enc.Selection = sel
		}
		arrivals[i] = fleet.Arrival{At: l.At, Enclave: enc}
	}
	return arrivals, &Manifest{Spec: s.Name, Horizon: s.HorizonCycles, Launches: launches}, nil
}

// cohortSeed derives a per-cohort seed offset from the cohort's name and
// index (FNV-1a, the workload package's seeding idiom).
func cohortSeed(name string, index int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ (uint64(index+1) * 0x9e3779b97f4a7c15)
}

// arrivalTimes generates the cohort's launch timestamps up to (but not
// including) the horizon. The renewal clock runs in float64 cycles: each
// step draws a mean-1 interval from the process, scales it by the mean
// interval, and divides by the rate scale and the envelope scale in
// force at the interval's start (a zero envelope scale silences the
// cohort until the segment ends).
func arrivalTimes(c *Cohort, r *rng.Source, horizon uint64, rateScale float64, budget int) ([]uint64, error) {
	sample := sampler(&c.Arrival, r)
	env := newEnvelope(c.Envelope)
	var out []uint64
	t := 0.0
	for {
		ti := uint64(t)
		if ti >= horizon {
			return out, nil
		}
		scale, segEnd := env.at(ti)
		if scale == 0 {
			t = float64(segEnd)
			continue
		}
		t += sample() * c.Arrival.MeanIntervalCycles / (rateScale * scale)
		if isNaN(t) || t > math.MaxUint64/2 {
			// A pathological draw (infinite interval) ends the cohort.
			return out, nil
		}
		ti = uint64(t)
		if ti >= horizon {
			return out, nil
		}
		if len(out) >= budget {
			return nil, fmt.Errorf("more than %d launches before the horizon; shrink the horizon or the rates", budget)
		}
		out = append(out, ti)
	}
}

// sampler returns the process's mean-1 interval draw.
func sampler(a *ArrivalProcess, r *rng.Source) func() float64 {
	switch a.Process {
	case Poisson:
		return r.Exp
	case Gamma:
		cv := a.CV
		if cv == 0 {
			cv = 1
		}
		shape := 1 / (cv * cv)
		return func() float64 { return r.Gamma(shape) / shape }
	case Weibull:
		shape := a.Shape
		if shape == 0 {
			shape = 1
		}
		norm := math.Gamma(1 + 1/shape)
		return func() float64 { return r.Weibull(shape) / norm }
	default: // Fixed
		return func() float64 { return 1 }
	}
}

// envelope evaluates a cyclic rate envelope in O(#periods).
type envelope struct {
	periods []Period
	total   uint64
}

func newEnvelope(ps []Period) *envelope {
	e := &envelope{periods: ps}
	for _, p := range ps {
		e.total += p.Cycles
	}
	return e
}

// at returns the rate scale in force at cycle t and the absolute cycle
// at which the containing segment ends (the resume point when the scale
// is zero).
func (e *envelope) at(t uint64) (scale float64, segEnd uint64) {
	if e.total == 0 {
		return 1, math.MaxUint64
	}
	pos := t % e.total
	cycleStart := t - pos
	var acc uint64
	for _, p := range e.periods {
		acc += p.Cycles
		if pos < acc {
			return p.Scale, cycleStart + acc
		}
	}
	// Unreachable: pos < total == acc after the loop.
	return 1, cycleStart + e.total
}

// pickMix draws one weighted mix entry.
func pickMix(mix []MixEntry, total float64, r *rng.Source) MixEntry {
	u := r.Float64() * total
	for _, m := range mix {
		u -= m.Weight
		if u < 0 {
			return m
		}
	}
	return mix[len(mix)-1] // float-rounding tail
}

// modify wraps a workload stream with the cohort modifiers: a static
// phase rotation and a working-set drift, both modulo the workload's
// footprint so every page stays inside the enclave's ELRANGE. With both
// zero the stream is returned unwrapped.
func modify(src mem.Stream, footprint, shift, driftPeriod uint64) mem.Stream {
	if shift == 0 && driftPeriod == 0 {
		return src
	}
	return &modStream{src: src, footprint: footprint, shift: shift, driftPeriod: driftPeriod}
}

// modStream applies the page-space modifiers access by access; it is a
// mem.Stream and forwards Close to the generator coroutine beneath it.
type modStream struct {
	src         mem.Stream
	footprint   uint64
	shift       uint64
	driftPeriod uint64
	count       uint64
}

func (m *modStream) Next() (mem.Access, bool) {
	a, ok := m.src.Next()
	if !ok {
		return a, false
	}
	off := m.shift
	if m.driftPeriod > 0 {
		off += m.count / m.driftPeriod
	}
	m.count++
	a.Page = mem.PageID((uint64(a.Page) + off) % m.footprint)
	return a, true
}

// Close releases the underlying generator.
func (m *modStream) Close() {
	if c, ok := m.src.(mem.Closer); ok {
		c.Close()
	}
}
