package sgxpreload

import (
	"fmt"

	"sgxpreload/internal/core"
	"sgxpreload/internal/sim"
)

// Multi-enclave API. SGX shares the physical EPC among all enclaves on a
// machine (the paper's §5.6); RunShared co-simulates several workloads on
// one EPC and one load channel, with per-enclave preloading.

// EnclaveSpec configures one enclave of a shared run.
type EnclaveSpec struct {
	// Workload is the enclave's program.
	Workload Workload
	// Scheme is the enclave's preloading configuration.
	Scheme Scheme
	// Selection carries the enclave's SIP instrumentation sites (from
	// Profile); required when Scheme uses SIP.
	Selection *Selection
	// DFP overrides the predictor tunables (zero value = paper defaults).
	DFP DFPConfig
	// Predictor names this enclave's fault-history strategy for DFP-style
	// schemes: "multistream" (the paper's recognizer, also the default ""),
	// "stride", "markov", or "nextn". Unknown names fail the run.
	Predictor string
	// BackgroundReclaim enables this enclave's ksgxswapd-style watermark
	// reclaimer; its write-back bursts occupy the shared load channel.
	BackgroundReclaim bool
}

// SharedResult is one enclave's outcome of a shared run.
type SharedResult struct {
	// Name is the workload's name.
	Name string
	Result
}

// RunShared co-simulates the enclaves' Ref traces on one shared EPC of
// cfg.EPCPages frames. Each enclave keeps its own fault history, preload
// queue, and counters; evictions and load-channel serialization are
// global, so the results expose EPC contention.
func RunShared(enclaves []EnclaveSpec, cfg Config) ([]SharedResult, error) {
	cfg = cfg.normalize()
	if len(enclaves) == 0 {
		return nil, fmt.Errorf("sgxpreload: RunShared needs at least one enclave")
	}
	specs := make([]sim.Enclave, len(enclaves))
	for i, e := range enclaves {
		if e.Workload == nil {
			return nil, fmt.Errorf("sgxpreload: enclave %d has no workload", i)
		}
		trace, err := convert(e.Workload, Ref)
		if err != nil {
			return nil, err
		}
		specs[i] = sim.Enclave{
			Name:              e.Workload.Name(),
			Trace:             trace,
			Pages:             e.Workload.Pages(),
			Scheme:            sim.Scheme(e.Scheme),
			DFP:               dfpFromPublic(e.DFP),
			Predictor:         core.Kind(e.Predictor),
			BackgroundReclaim: e.BackgroundReclaim,
		}
		if e.Selection != nil {
			specs[i].Selection = e.Selection.sel
		}
	}
	res, err := sim.RunShared(specs, sim.SharedConfig{
		Costs:    cfg.Costs,
		EPCPages: cfg.EPCPages,
	})
	if err != nil {
		return nil, err
	}
	out := make([]SharedResult, len(res))
	for i, r := range res {
		out[i] = SharedResult{Name: r.Name, Result: resultFromSim(r.Result)}
	}
	return out, nil
}

// dfpFromPublic maps the public tunables onto the internal config,
// filling paper defaults.
func dfpFromPublic(d DFPConfig) (out dfpConfig) {
	out = defaultDFP()
	if d.StreamListLen > 0 {
		out.StreamListLen = d.StreamListLen
	}
	if d.LoadLength > 0 {
		out.LoadLength = d.LoadLength
	}
	if d.StopSlack > 0 {
		out.StopSlack = d.StopSlack
	}
	return out
}
