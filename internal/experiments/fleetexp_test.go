package experiments

import (
	"strings"
	"testing"

	"sgxpreload/internal/fleet"
)

// TestFleetPolicies pins the study's headline: under the skewed
// arrival stream (every fourth launch an EPC hog, aligned against
// round-robin), pressure-aware placement beats round-robin on p99
// fault-service latency, and does it by actually spreading the hogs.
func TestFleetPolicies(t *testing.T) {
	a, err := FleetPolicies(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(a.Policies) {
		t.Fatalf("got %d results for %d policies", len(a.Results), len(a.Policies))
	}
	byPolicy := map[fleet.Policy]fleet.Result{}
	for i, p := range a.Policies {
		byPolicy[p] = a.Results[i]
	}
	rr, pa := byPolicy[fleet.RoundRobin], byPolicy[fleet.PressureAware]
	if len(rr.Shed)+len(pa.Shed) != 0 {
		t.Fatalf("no admission control configured, yet launches were shed (rr %d, pressure %d)",
			len(rr.Shed), len(pa.Shed))
	}
	if a.hogSpread(rr) != 1 {
		t.Errorf("round-robin spread the hogs over %d hosts; the stream is aligned to stack them on one", a.hogSpread(rr))
	}
	if a.hogSpread(pa) <= 1 {
		t.Error("pressure-aware placement failed to spread the hogs off the first host")
	}
	if !(pa.FaultP99 < rr.FaultP99) {
		t.Errorf("pressure-aware p99 %.0f is not below round-robin's %.0f", pa.FaultP99, rr.FaultP99)
	}
	if pa.Faults >= rr.Faults {
		t.Errorf("pressure-aware total faults %d did not drop below round-robin's %d (hog stacking should thrash)",
			pa.Faults, rr.Faults)
	}
	out := a.String()
	for _, want := range []string{"policy", "p99", "round-robin", "pressure"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
