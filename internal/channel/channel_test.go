package channel

import (
	"testing"

	"sgxpreload/internal/mem"
)

func TestBeginComplete(t *testing.T) {
	c := New()
	if !c.Idle() {
		t.Fatal("new channel not idle")
	}
	ld := c.Begin(5, 100, 44000, false, 0)
	if ld.Done != 44100 {
		t.Fatalf("Done = %d, want 44100", ld.Done)
	}
	if c.Idle() {
		t.Fatal("channel idle during transfer")
	}
	if got := c.InflightPage(); got != 5 {
		t.Fatalf("InflightPage() = %d, want 5", got)
	}
	done := c.CompleteInflight()
	if done.Page != 5 || !c.Idle() {
		t.Fatalf("CompleteInflight() = %+v, idle=%v", done, c.Idle())
	}
	if c.Started() != 1 {
		t.Fatalf("Started() = %d, want 1", c.Started())
	}
}

func TestBeginWhileBusyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Begin while busy did not panic")
		}
	}()
	c := New()
	c.Begin(1, 0, 100, false, 0)
	c.Begin(2, 200, 100, false, 0)
}

func TestBeginBeforeFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Begin before channel free did not panic")
		}
	}()
	c := New()
	c.Begin(1, 0, 100, false, 0)
	c.CompleteInflight()
	c.Begin(2, 50, 100, false, 0) // channel busy until 100
}

func TestCompleteIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CompleteInflight on idle channel did not panic")
		}
	}()
	New().CompleteInflight()
}

func TestInflightOnIdle(t *testing.T) {
	c := New()
	if _, ok := c.Inflight(); ok {
		t.Fatal("Inflight() = ok on idle channel")
	}
	if got := c.InflightPage(); got != mem.NoPage {
		t.Fatalf("InflightPage() = %d, want NoPage", got)
	}
}

func TestQueueBatchFIFO(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 10, 32)
	c.QueueBatch([]mem.PageID{7, 8}, 20, 32)
	want := []mem.PageID{1, 2, 3, 7, 8}
	for i, w := range want {
		r, ok := c.PopPending()
		if !ok || r.Page != w {
			t.Fatalf("pop %d = (%v, %v), want page %d", i, r, ok, w)
		}
	}
	if _, ok := c.PopPending(); ok {
		t.Fatal("pop on drained queue succeeded")
	}
}

func TestQueueBatchDistinctIDs(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1}, 0, 32)
	c.QueueBatch([]mem.PageID{2}, 0, 32)
	a, _ := c.PopPending()
	b, _ := c.PopPending()
	if a.Batch == b.Batch {
		t.Fatalf("batches share id %d", a.Batch)
	}
}

func TestQueueBatchCapDropsWholeBatches(t *testing.T) {
	cases := []struct {
		name    string
		batches [][]mem.PageID // queued in order; the cap applies throughout
		cap     int
		dropped int          // drops expected from the final QueueBatch
		want    []mem.PageID // surviving queue, front first
	}{
		{"under cap",
			[][]mem.PageID{{1, 2, 3}, {4, 5}}, 8, 0, []mem.PageID{1, 2, 3, 4, 5}},
		{"exactly at cap",
			[][]mem.PageID{{1, 2}, {3, 4}}, 4, 0, []mem.PageID{1, 2, 3, 4}},
		{"stale batch dropped whole, never split",
			[][]mem.PageID{{1, 2, 3, 4}, {5, 6, 7, 8}}, 6, 4, []mem.PageID{5, 6, 7, 8}},
		{"several stale batches dropped",
			[][]mem.PageID{{1, 2}, {3, 4}, {5, 6, 7, 8}}, 5, 4, []mem.PageID{5, 6, 7, 8}},
		{"whole batch goes even when one request would do",
			[][]mem.PageID{{1, 2, 3, 4}, {5, 6}}, 5, 4, []mem.PageID{5, 6}},
		{"oversized new batch keeps its head",
			[][]mem.PageID{{1, 2, 3, 4, 5, 6, 7, 8}}, 6, 2, []mem.PageID{1, 2, 3, 4, 5, 6}},
		{"stale dropped then oversized new tail trimmed",
			[][]mem.PageID{{1, 2}, {3, 4, 5, 6}}, 3, 3, []mem.PageID{3, 4, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New()
			var dropped int
			for _, b := range tc.batches {
				dropped = c.QueueBatch(b, 0, tc.cap)
			}
			if dropped != tc.dropped {
				t.Errorf("dropped = %d, want %d", dropped, tc.dropped)
			}
			if got := c.Aborted(); got != uint64(tc.dropped) {
				t.Errorf("Aborted() = %d, want %d", got, tc.dropped)
			}
			for i, w := range tc.want {
				r, ok := c.PopPending()
				if !ok || r.Page != w {
					t.Fatalf("pop %d = (%v, %v), want page %d", i, r, ok, w)
				}
			}
			if c.PendingLen() != 0 {
				t.Fatalf("queue not drained: %d left", c.PendingLen())
			}
		})
	}
}

func TestQueueBatchTruncationKeepsBatchesAbortable(t *testing.T) {
	// Regression: request-at-a-time truncation used to split the oldest
	// surviving batch, so a later fault on one of its still-queued pages
	// could find the batch half-gone (or, for the dropped half, miss
	// AbortBatchContaining entirely and be misclassified as out-of-stream).
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3, 4}, 0, 32)
	c.QueueBatch([]mem.PageID{10, 11, 12, 13}, 0, 32)
	if dropped := c.QueueBatch([]mem.PageID{20, 21}, 0, 6); dropped != 4 {
		t.Fatalf("dropped = %d, want the whole {1..4} batch", dropped)
	}
	for _, p := range []mem.PageID{10, 11, 12, 13, 20, 21} {
		if !c.PendingContains(p) {
			t.Fatalf("page %d missing after truncation", p)
		}
	}
	if !c.AbortBatchContaining(11, 0) {
		t.Fatal("fault on a surviving predicted page missed its batch")
	}
	if c.PendingContains(10) || c.PendingContains(13) {
		t.Fatal("aborted batch left requests behind")
	}
	if !c.PendingContains(20) || !c.PendingContains(21) {
		t.Fatal("unrelated batch lost requests")
	}
}

func TestAbortBatchContaining(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 0, 32)
	c.QueueBatch([]mem.PageID{9, 10}, 0, 32)
	if !c.AbortBatchContaining(2, 0) {
		t.Fatal("AbortBatchContaining(2) = false")
	}
	// Batch {1,2,3} gone; {9,10} intact.
	want := []mem.PageID{9, 10}
	for _, w := range want {
		r, ok := c.PopPending()
		if !ok || r.Page != w {
			t.Fatalf("after abort got (%v, %v), want %d", r, ok, w)
		}
	}
	if c.AbortBatchContaining(99, 0) {
		t.Fatal("AbortBatchContaining of absent page = true")
	}
}

func TestRemovePending(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 0, 32)
	if !c.RemovePending(2, 0) {
		t.Fatal("RemovePending(2) = false")
	}
	if c.RemovePending(2, 0) {
		t.Fatal("RemovePending(2) twice = true")
	}
	if c.PendingLen() != 2 {
		t.Fatalf("PendingLen() = %d, want 2", c.PendingLen())
	}
	if !c.PendingContains(1) || !c.PendingContains(3) || c.PendingContains(2) {
		t.Fatal("pending set wrong after removal")
	}
}

func TestAbortPending(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 0, 32)
	if n := c.AbortPending(0); n != 3 {
		t.Fatalf("AbortPending() = %d, want 3", n)
	}
	if c.PendingLen() != 0 {
		t.Fatal("pending not empty after AbortPending")
	}
}

func TestPushAllRestoresOrder(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2}, 0, 32)
	head, _ := c.PopPending()
	rest := []Request{head}
	for {
		r, ok := c.PopPending()
		if !ok {
			break
		}
		rest = append(rest, r)
	}
	c.PushAll(rest)
	r, _ := c.PopPending()
	if r.Page != 1 {
		t.Fatalf("head after PushAll = %d, want 1", r.Page)
	}
}

func TestPeekPending(t *testing.T) {
	c := New()
	if _, ok := c.PeekPending(); ok {
		t.Fatal("PeekPending on empty queue = ok")
	}
	c.QueueBatch([]mem.PageID{4, 5}, 7, 32)
	r, ok := c.PeekPending()
	if !ok || r.Page != 4 || r.Enqueued != 7 {
		t.Fatalf("PeekPending = (%v, %v), want head page 4", r, ok)
	}
	if c.PendingLen() != 2 {
		t.Fatalf("PeekPending consumed the queue: len %d", c.PendingLen())
	}
	p, _ := c.PopPending()
	if p != r {
		t.Fatalf("PopPending = %v after PeekPending = %v", p, r)
	}
}

// TestRingWrapAround cycles many more requests than the ring's capacity
// through interleaved queue/peek/pop so the head index wraps repeatedly,
// and checks strict FIFO order and membership at every step.
func TestRingWrapAround(t *testing.T) {
	c := New()
	var nextIn, nextOut mem.PageID
	queue := func(k int) {
		pages := make([]mem.PageID, k)
		for i := range pages {
			pages[i] = nextIn
			nextIn++
		}
		c.QueueBatch(pages, 0, 0) // no cap: nothing may be dropped
	}
	pop := func() {
		head, ok := c.PeekPending()
		if !ok || head.Page != nextOut {
			t.Fatalf("PeekPending = (%v, %v), want page %d", head, ok, nextOut)
		}
		r, ok := c.PopPending()
		if !ok || r.Page != nextOut {
			t.Fatalf("PopPending = (%v, %v), want page %d", r, ok, nextOut)
		}
		nextOut++
	}
	queue(3)
	for round := 0; round < 200; round++ {
		queue(1 + round%5)
		if !c.PendingContains(nextOut) || c.PendingContains(nextIn) {
			t.Fatalf("round %d: membership wrong at queue depth %d", round, c.PendingLen())
		}
		for c.PendingLen() > 3 {
			pop()
		}
	}
	for c.PendingLen() > 0 {
		pop()
	}
	if nextOut != nextIn {
		t.Fatalf("drained %d pages, queued %d", nextOut, nextIn)
	}
	if c.Aborted() != 0 {
		t.Fatalf("Aborted = %d on an uncapped queue", c.Aborted())
	}
}

func TestBusyUntilMonotone(t *testing.T) {
	c := New()
	var last uint64
	for i := 0; i < 100; i++ {
		start := c.BusyUntil() + uint64(i%7)
		c.Begin(mem.PageID(i), start, 1000, i%2 == 0, 0)
		c.CompleteInflight()
		if c.BusyUntil() < last {
			t.Fatalf("BusyUntil went backwards: %d < %d", c.BusyUntil(), last)
		}
		last = c.BusyUntil()
	}
}
