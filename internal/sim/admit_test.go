package sim

import (
	"fmt"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// TestDynamicCohortAtZeroEqualsNew: a dynamic engine admitting its whole
// cohort at time zero is the static engine — New is an admit-loop at
// t = 0, so results and the hooked event timeline must be byte-identical.
// This is the fleet layer's byte-identity anchor: a one-host fleet with
// every arrival at t = 0 reduces to exactly this construction.
func TestDynamicCohortAtZeroEqualsNew(t *testing.T) {
	recA, recB := obs.NewRecorder(), obs.NewRecorder()

	static, err := RunShared(tieBreakEnclaves(12), SharedConfig{EPCPages: 96, Hook: recA})
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewDynamic(SharedConfig{EPCPages: 96, Hook: recB})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tieBreakEnclaves(12) {
		if err := eng.Admit(e, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	dynamic := eng.Results()

	if a, b := fmt.Sprintf("%#v", static), fmt.Sprintf("%#v", dynamic); a != b {
		t.Errorf("dynamic cohort at t=0 diverges from New:\n  static  %.300s\n  dynamic %.300s", a, b)
	}
	var ba, bb strings.Builder
	if err := recA.WriteJSONL(&ba); err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteJSONL(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Errorf("dynamic timeline diverges: %s", firstDiffLine(ba.String(), bb.String()))
	}
}

// TestDynamicMidRunAdmission: enclaves admitted mid-run start their
// clocks at the admission time (Cycles are absolute virtual time, not
// runtime), the earlier cohort's contention changes when latecomers
// arrive, and the whole interleaving is deterministic across reruns.
func TestDynamicMidRunAdmission(t *testing.T) {
	run := func() []SharedResult {
		eng, err := NewDynamic(SharedConfig{EPCPages: 48})
		if err != nil {
			t.Fatal(err)
		}
		first := tieBreakEnclaves(6)
		for _, e := range first {
			if err := eng.Admit(e, 0); err != nil {
				t.Fatal(err)
			}
		}
		const launch = 200_000
		if err := eng.RunUntil(launch); err != nil {
			t.Fatal(err)
		}
		for i, e := range tieBreakEnclaves(6)[:3] {
			e.Name = fmt.Sprintf("late%04d", i)
			if err := eng.Admit(e, launch); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Drain(); err != nil {
			t.Fatal(err)
		}
		res := eng.Results()
		for _, r := range res[6:] {
			if r.Cycles < launch {
				t.Errorf("late enclave %s finished at %d, before its launch at %d", r.Name, r.Cycles, launch)
			}
		}
		return res
	}
	a, b := run(), run()
	if x, y := fmt.Sprintf("%#v", a), fmt.Sprintf("%#v", b); x != y {
		t.Error("mid-run admission is not deterministic across reruns")
	}
}

// TestDynamicSignals: the placement signals a fleet reads off a host
// engine — Running, EPCResident, NextKey — over the admit/drain cycle.
func TestDynamicSignals(t *testing.T) {
	eng, err := NewDynamic(SharedConfig{EPCPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Running() != 0 || eng.EPCResident() != 0 {
		t.Fatalf("fresh dynamic engine: Running=%d EPCResident=%d, want 0/0", eng.Running(), eng.EPCResident())
	}
	if _, ok := eng.NextKey(); ok {
		t.Error("fresh dynamic engine claims a scheduled event")
	}
	for _, e := range tieBreakEnclaves(4) {
		if err := eng.Admit(e, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Running() != 4 {
		t.Fatalf("Running=%d after 4 admissions, want 4", eng.Running())
	}
	if key, ok := eng.NextKey(); !ok || key < 1000 {
		t.Errorf("NextKey=(%d,%v) after admission at 1000, want key >= 1000", key, ok)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if eng.Running() != 0 {
		t.Errorf("Running=%d after drain, want 0", eng.Running())
	}
	if eng.EPCResident() == 0 {
		t.Error("EPCResident=0 after a run that touched pages")
	}
}

// TestAdmitErrors: admission failures close the enclave's stream and
// leave the engine usable; constructor-level validation fails fast.
func TestAdmitErrors(t *testing.T) {
	if _, err := NewDynamic(SharedConfig{}); err == nil {
		t.Error("NewDynamic with zero EPCPages: want error")
	}
	eng, err := NewDynamic(SharedConfig{EPCPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	bad := Enclave{Name: "zero", Scheme: Baseline,
		Stream: closeProbeStream{onClose: func() { closed = true }}}
	if err := eng.Admit(bad, 0); err == nil || !strings.Contains(err.Error(), "zero pages") {
		t.Errorf("zero-page admission: want error, got %v", err)
	}
	if !closed {
		t.Error("zero-page admission did not close the enclave's stream")
	}
	// The engine survives a rejected admission.
	for _, e := range tieBreakEnclaves(2) {
		if err := eng.Admit(e, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
}

// closeProbeStream is an empty stream that records Close — for
// asserting stream-release on admission failure.
type closeProbeStream struct{ onClose func() }

func (closeProbeStream) Next() (mem.Access, bool) { return mem.Access{}, false }
func (s closeProbeStream) Close()                 { s.onClose() }
