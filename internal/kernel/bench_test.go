package kernel

import (
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
)

// BenchmarkHandleFault measures the full fault-servicing hot path —
// Sync, HandleFault (with prediction and preload queuing), MaybeScan —
// under a DFP kernel driven by a mix of sequential streams (exercising
// predict/QueueBatch/preload starts) and pseudo-random faults
// (exercising batch aborts and evictions), the same mix the simulation
// engine produces.
func BenchmarkHandleFault(b *testing.B) {
	d := dfp.DefaultConfig()
	const elrange = 1 << 20
	k, err := New(Config{
		Costs:        mem.DefaultCostModel(),
		EPCPages:     4096,
		ELRangePages: elrange,
		DFP:          &d,
		ScanPeriod:   1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	var now uint64
	var seq mem.PageID
	rnd := uint64(0x9e3779b97f4a7c15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p mem.PageID
		if i%4 != 3 {
			p = seq % elrange
			seq++
		} else {
			rnd ^= rnd << 13
			rnd ^= rnd >> 7
			rnd ^= rnd << 17
			p = mem.PageID(rnd % elrange)
		}
		now += 1000
		k.Sync(now)
		if !k.Touch(p) {
			now = k.HandleFault(now, p)
		}
		k.MaybeScan(now)
	}
}
