// Multienclave demonstrates the paper's §5.6 scenario: several enclaves
// sharing one physical EPC. Contention slows everyone down — the EPC is
// a global resource the untrusted OS manages across enclaves — but each
// enclave can still run its own preloading scheme independently and
// recover part of the loss.
package main

import (
	"fmt"
	"log"

	"sgxpreload"
)

func main() {
	lbm, err := sgxpreload.Benchmark("lbm")
	if err != nil {
		log.Fatal(err)
	}
	dj, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sgxpreload.DefaultConfig() // one 8 MiB EPC for everyone

	// Solo baselines for reference.
	soloLbm, err := sgxpreload.Run(lbm, cfg)
	if err != nil {
		log.Fatal(err)
	}
	soloDj, err := sgxpreload.Run(dj, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Co-run without preloading: contention.
	plain, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{
		{Workload: lbm, Scheme: sgxpreload.Baseline},
		{Workload: dj, Scheme: sgxpreload.Baseline},
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Co-run with each enclave using its suited scheme: DFP-stop for the
	// streaming lbm, SIP for the pointer-chasing deepsjeng.
	sel, err := sgxpreload.Profile(dj, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{
		{Workload: lbm, Scheme: sgxpreload.DFPStop},
		{Workload: dj, Scheme: sgxpreload.SIP, Selection: sel},
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	solo := map[string]uint64{lbm.Name(): soloLbm.Cycles, dj.Name(): soloDj.Cycles}
	fmt.Println("Two enclaves, one 8 MiB EPC (paper §5.6)")
	fmt.Printf("%-12s %14s %14s %10s %14s %10s\n",
		"enclave", "solo", "shared", "slowdown", "shared+preload", "recovered")
	for i := range plain {
		name := plain[i].Name
		slow := float64(plain[i].Cycles) / float64(solo[name])
		rec := 100 * (1 - float64(tuned[i].Cycles)/float64(plain[i].Cycles))
		fmt.Printf("%-12s %14d %14d %9.2fx %14d %+9.1f%%\n",
			name, solo[name], plain[i].Cycles, slow, tuned[i].Cycles, rec)
	}

	// Every single-enclave knob works per enclave under contention, too:
	// ablate deepsjeng's fault-history strategy while lbm keeps DFP-stop.
	predRun := func(pred string) []sgxpreload.SharedResult {
		res, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{
			{Workload: lbm, Scheme: sgxpreload.DFPStop},
			{Workload: dj, Scheme: sgxpreload.DFP, Predictor: pred},
		}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	ms, nn := predRun(""), predRun("nextn")
	fmt.Printf("\ndeepsjeng predictor ablation under sharing: multistream %d cycles, next-N %d cycles (%+.1f%%)\n",
		ms[1].Cycles, nn[1].Cycles,
		100*(1-float64(nn[1].Cycles)/float64(ms[1].Cycles)))
}
