package rng

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestChanceExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) fired")
		}
		if !r.Chance(1) {
			t.Fatal("Chance(1) did not fire")
		}
	}
}

func TestChanceRoughlyCalibrated(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.24 || got > 0.26 {
		t.Fatalf("Chance(0.25) fired at rate %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(11).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(1)
	child := parent.Fork()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("fork produced the parent's stream")
	}
	// Forking is deterministic.
	p2 := New(1)
	c2 := p2.Fork()
	c1again := New(1).Fork()
	if c2.Uint64() != c1again.Uint64() {
		t.Fatal("fork not deterministic")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}

func TestUniformity(t *testing.T) {
	// Chi-square-ish sanity check over 16 buckets.
	r := New(123)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()%16]++
	}
	for i, c := range buckets {
		if c < n/16-n/160 || c > n/16+n/160 {
			t.Fatalf("bucket %d has %d of %d (expected ~%d)", i, c, n, n/16)
		}
	}
}
