package sim

import (
	"fmt"

	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sip"
)

// Multi-enclave co-simulation. The paper's §5.6 observes that EPC sharing
// among processes is supported by the hardware and that "each enclave can
// handle its preloading independently... however, EPC contention becomes
// a serious issue". RunShared models exactly that: N enclaves, each with
// its own fault history, preload queue, instrumentation, bitmap view,
// and counters, contending for one physical EPC and one load channel.
// Each enclave's virtual pages are mapped into a disjoint slice of the
// shared page space.
//
// RunShared is a wrapper over the same Engine that backs Run, so every
// single-enclave configuration knob — the predictor strategy, DFP
// tunables, SIP selection, background reclaim — is available per
// enclave under contention.

// Enclave describes one co-running enclave.
type Enclave struct {
	// Name labels the enclave in results.
	Name string
	// Trace is the enclave's materialized access trace (pages relative to
	// its own ELRANGE, i.e. starting at 0). When non-nil it takes
	// precedence over Stream.
	Trace []mem.Access
	// Stream is the enclave's pull-based access source, consumed one
	// access at a time in O(1) memory; used when Trace is nil. Pages are
	// relative to the enclave's ELRANGE, like Trace.
	Stream mem.Stream
	// Pages is the enclave's ELRANGE size; every trace page must be
	// below it.
	Pages uint64
	// Scheme is the enclave's preloading configuration.
	Scheme Scheme
	// DFP tunables (zero value = paper defaults).
	DFP dfp.Config
	// Selection carries the enclave's SIP instrumentation sites.
	Selection *sip.Selection
	// Predictor selects the fault-history strategy for DFP-style
	// schemes; the zero value is the paper's multiple-stream recognizer.
	Predictor core.Kind
	// BackgroundReclaim enables this enclave's ksgxswapd-style watermark
	// reclaimer (see kernel.Config); its write-back bursts occupy the
	// shared channel.
	BackgroundReclaim bool
}

// SharedConfig configures the shared platform.
type SharedConfig struct {
	// Costs is the cycle cost model (zero = defaults).
	Costs mem.CostModel
	// EPCPages is the total physical EPC shared by all enclaves.
	EPCPages int
	// ScanPeriod, MaxPending, and EvictPolicy as in Config.
	ScanPeriod  uint64
	MaxPending  int
	EvictPolicy epc.Policy
	// Quota selects the per-enclave EPC quota policy (see package
	// arbiter). The zero value, Global, keeps the single victim scan
	// over all frames — byte-identical to runs predating the arbiter.
	// Under any other policy each engine (one per EPC domain) builds its
	// own arbiter, enclaves register in admission order, and rebalances
	// happen at scan boundaries — all on the engine's single goroutine,
	// so quota trajectories are deterministic at any worker count.
	Quota arbiter.Policy
	// Hook, when non-nil, receives every enclave's event timeline (see
	// package obs). Pages in shared-run events are global — each
	// enclave's slice of the shared space — so the enclaves remain
	// distinguishable on one timeline.
	Hook obs.Hook
	// HookFactory, when non-nil, supplies one hook per EPC domain:
	// RunSharded calls it once per shard index and the fleet layer once
	// per host, so each domain records to its own recorder with no
	// cross-domain interleaving — the multi-domain recording path the
	// single Hook field cannot provide. Exactly one of Hook and
	// HookFactory may be set; the factory must be pure (same shard, same
	// hook) for runs to stay deterministic at any worker count. Engines
	// themselves reject an unresolved factory: by the time a SharedConfig
	// reaches New, the domain's hook must be concrete.
	HookFactory func(shard int) obs.Hook
}

// SharedResult is one enclave's outcome of a shared run.
type SharedResult struct {
	Name string
	Result
}

// RunShared co-simulates the enclaves on one shared EPC: it builds the
// Engine and drives it to completion. Enclaves advance in global
// virtual-time order (the enclave with the smallest clock executes its
// next access), so channel serialization and evictions interleave
// exactly as a time-sliced platform would interleave them.
func RunShared(enclaves []Enclave, cfg SharedConfig) ([]SharedResult, error) {
	if len(enclaves) == 0 {
		return nil, fmt.Errorf("sim: RunShared needs at least one enclave")
	}
	eng, err := New(enclaves, cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.run(); err != nil {
		return nil, err
	}
	return eng.Results(), nil
}
