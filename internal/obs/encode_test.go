package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sgxpreload/internal/mem"
)

// fmtJSONLLine is the original fmt.Fprintf JSONL line writer, kept as
// the differential reference: AppendJSONL must reproduce it byte for
// byte for every event, since the trace format is a pinned contract.
func fmtJSONLLine(e Event) string {
	return fmt.Sprintf(`{"t":%d,"kind":%q,"page":%d,"batch":%d,"v1":%d,"v2":%d}`+"\n",
		e.T, e.Kind.String(), pageField(e.Page), e.Batch, e.V1, e.V2)
}

// fmtCSVLine is the original fmt.Fprintf CSV row writer.
func fmtCSVLine(e Event) string {
	return fmt.Sprintf("%d,%s,%d,%d,%d,%d\n",
		e.T, e.Kind.String(), pageField(e.Page), e.Batch, e.V1, e.V2)
}

// encoderCornerEvents returns the events most likely to expose encoder
// divergence: every defined kind, the undefined kinds the old writer
// rendered via Kind.String() fallbacks, the NoPage sentinel, and
// saturated 64-bit fields.
func encoderCornerEvents() []Event {
	events := []Event{
		{},
		{T: 1, Kind: KindNone, Page: 0, Batch: 0, V1: 0, V2: 0},
		{T: 42, Kind: Kind(200), Page: 7, Batch: 1, V1: 2, V2: 3},
		{T: 42, Kind: kindCount, Page: 7, Batch: 1, V1: 2, V2: 3},
		{T: math.MaxUint64, Kind: KindFaultBegin, Page: mem.NoPage,
			Batch: math.MaxUint64, V1: math.MaxUint64, V2: math.MaxUint64},
		{T: 9, Kind: KindEvict, Page: mem.PageID(math.MaxInt64), Batch: 8, V1: 7, V2: 6},
		{T: 10, Kind: KindEvict, Page: mem.PageID(math.MaxInt64) + 1},
	}
	for _, k := range Kinds() {
		events = append(events, Event{T: uint64(k) * 1000, Kind: k,
			Page: mem.PageID(k), Batch: 2, V1: 11, V2: 13})
	}
	return events
}

func TestAppendMatchesFmtReference(t *testing.T) {
	for _, e := range encoderCornerEvents() {
		if got, want := string(AppendJSONL(nil, e)), fmtJSONLLine(e); got != want {
			t.Errorf("AppendJSONL(%+v):\n got  %q\n want %q", e, got, want)
		}
		if got, want := string(AppendCSV(nil, e)), fmtCSVLine(e); got != want {
			t.Errorf("AppendCSV(%+v):\n got  %q\n want %q", e, got, want)
		}
	}
}

func TestAppendMatchesFmtReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		e := Event{
			T:     rng.Uint64() >> uint(rng.Intn(64)),
			Kind:  Kind(rng.Intn(int(kindCount) + 2)),
			Page:  mem.PageID(rng.Uint64() >> uint(rng.Intn(64))),
			Batch: rng.Uint64() >> uint(rng.Intn(64)),
			V1:    rng.Uint64() >> uint(rng.Intn(64)),
			V2:    rng.Uint64() >> uint(rng.Intn(64)),
		}
		if rng.Intn(8) == 0 {
			e.Page = mem.NoPage
		}
		if got, want := string(AppendJSONL(nil, e)), fmtJSONLLine(e); got != want {
			t.Fatalf("AppendJSONL(%+v):\n got  %q\n want %q", e, got, want)
		}
		if got, want := string(AppendCSV(nil, e)), fmtCSVLine(e); got != want {
			t.Fatalf("AppendCSV(%+v):\n got  %q\n want %q", e, got, want)
		}
	}
}

// TestWriteMatchesFmtReference pins the full exported documents —
// headers plus every line — against a straight fmt re-implementation of
// the original writers.
func TestWriteMatchesFmtReference(t *testing.T) {
	events := encoderCornerEvents()

	var wantJSONL bytes.Buffer
	fmt.Fprintln(&wantJSONL, TraceHeaderJSONL())
	for _, e := range events {
		wantJSONL.WriteString(fmtJSONLLine(e))
	}
	var gotJSONL bytes.Buffer
	if err := WriteJSONL(&gotJSONL, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSONL.Bytes(), wantJSONL.Bytes()) {
		t.Errorf("WriteJSONL diverges from fmt reference")
	}

	var wantCSV bytes.Buffer
	fmt.Fprintln(&wantCSV, TraceHeaderCSV())
	fmt.Fprintln(&wantCSV, TraceColumnsCSV)
	for _, e := range events {
		wantCSV.WriteString(fmtCSVLine(e))
	}
	var gotCSV bytes.Buffer
	if err := WriteCSV(&gotCSV, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("WriteCSV diverges from fmt reference")
	}
}

// TestWriteEventsFlushBoundary forces the internal buffer to flush
// mid-document and checks nothing is lost or duplicated around the
// boundary.
func TestWriteEventsFlushBoundary(t *testing.T) {
	events := make([]Event, 20_000) // ~1 MiB of JSONL, many flushes
	for i := range events {
		events[i] = Event{T: uint64(i), Kind: KindFaultBegin, Page: mem.PageID(i % 512), V1: uint64(i) * 3}
	}
	var got bytes.Buffer
	if err := WriteJSONL(&got, events); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	fmt.Fprintln(&want, TraceHeaderJSONL())
	for _, e := range events {
		want.WriteString(fmtJSONLLine(e))
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("flushing writer diverges: got %d bytes, want %d", got.Len(), want.Len())
	}
}
