// Tuning sweeps the two DFP design parameters the paper studies —
// stream_list length (Figure 6) and preload distance (Figure 7) — plus
// SIP's instrumentation threshold (Figure 9), showing how the paper's
// operating point (list 30, distance 4, threshold 5%) emerges.
package main

import (
	"fmt"
	"log"

	"sgxpreload"
)

func main() {
	sweepStreamList()
	sweepLoadLength()
	sweepThreshold()
}

func improvement(name string, cfg sgxpreload.Config) float64 {
	w, err := sgxpreload.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sgxpreload.Run(w, sgxpreload.Config{EPCPages: cfg.EPCPages})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sgxpreload.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sgxpreload.ImprovementPct(res, base)
}

func sweepStreamList() {
	fmt.Println("DFP stream_list length (Figure 6): bwaves sweeps ~24 arrays at")
	fmt.Println("once, so short lists thrash; the paper settles on 30.")
	fmt.Printf("%8s  %8s  %8s\n", "length", "lbm", "bwaves")
	for _, n := range []int{2, 5, 10, 20, 30, 60} {
		cfg := sgxpreload.Config{
			Scheme: sgxpreload.DFP,
			DFP:    sgxpreload.DFPConfig{StreamListLen: n, LoadLength: 4},
		}
		fmt.Printf("%8d  %+7.1f%%  %+7.1f%%\n", n,
			improvement("lbm", cfg), improvement("bwaves", cfg))
	}
}

func sweepLoadLength() {
	fmt.Println("\nDFP preload distance (Figure 7): sequential benchmarks keep")
	fmt.Println("gaining with deeper preloads; irregular ones pay for the junk.")
	fmt.Printf("%8s  %8s  %8s\n", "distance", "lbm", "deepsjeng")
	for _, l := range []int{1, 2, 4, 8, 16, 32} {
		cfg := sgxpreload.Config{
			Scheme: sgxpreload.DFP,
			DFP:    sgxpreload.DFPConfig{StreamListLen: 30, LoadLength: l},
		}
		fmt.Printf("%8d  %+7.1f%%  %+7.1f%%\n", l,
			improvement("lbm", cfg), improvement("deepsjeng", cfg))
	}
}

func sweepThreshold() {
	fmt.Println("\nSIP instrumentation threshold (Figure 9): too low instruments")
	fmt.Println("hot resident-page sites (pure check overhead); too high forgoes")
	fmt.Println("conversions. The paper's sweet spot is 5%.")
	w, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		log.Fatal(err)
	}
	base, err := sgxpreload.Run(w, sgxpreload.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s  %8s  %8s\n", "threshold", "points", "gain")
	for _, th := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		cfg := sgxpreload.DefaultConfig()
		cfg.Threshold = th
		sel, err := sgxpreload.Profile(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scheme = sgxpreload.SIP
		cfg.Selection = sel
		res, err := sgxpreload.Run(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f%%  %8d  %+7.1f%%\n", th*100, sel.Points(),
			sgxpreload.ImprovementPct(res, base))
	}
}
