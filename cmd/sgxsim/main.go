// Command sgxsim runs one benchmark under one preloading scheme and
// prints the run's metrics. It can also replay and diff recorded traces
// without re-simulating, and serve live metrics over HTTP during a run.
//
// Usage:
//
//	sgxsim -bench lbm -scheme dfp
//	sgxsim -bench deepsjeng -scheme sip -threshold 0.05
//	sgxsim -bench mixed-blood -scheme hybrid -epc 2048 -loadlength 4
//	sgxsim -bench lbm -scheme dfp -compare -parallel 2
//	sgxsim -bench deepsjeng -scheme dfp-stop -trace run.jsonl
//	sgxsim -replay run.jsonl                    # re-derive metrics, no simulation
//	sgxsim -diff a.jsonl b.jsonl                # first divergence + metric deltas
//	sgxsim -bench lbm -scheme dfp -serve :8080  # live /metrics, /events, /report
//	sgxsim -bench lbm -scheme dfp -stream       # O(1)-memory streamed run
//	sgxsim -bench lbm -stream -repeat 0 -serve :8080  # unbounded, watch live
//	sgxsim -bench lbm,deepsjeng -scheme dfp     # shared-EPC co-run
//	sgxsim -stream -bench lbm,deepsjeng -scheme dfp-stop  # streamed co-run
//	sgxsim -bench lbm,mcf,deepsjeng,x264 -shards 2  # fleet: 2 EPC domains
//	sgxsim -bench lbm,leela,nab,leela -fleet 2 -fleet-policy pressure  # cluster: timed arrivals
//	sgxsim -spec workload.json -fleet 4             # cluster: spec-compiled arrival cohorts
//	sgxsim -spec workload.json -fleet 4 -rate-scale 2  # same spec at twice the load
//	sgxsim -list
//
// See OBSERVABILITY.md for the trace schema and the replay/diff/serve
// workflows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/experiments"
	"sgxpreload/internal/fleet"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/replay"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
	"sgxpreload/internal/workload/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sgxsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sgxsim", flag.ContinueOnError)
	var (
		bench      = fs.String("bench", "microbenchmark", "benchmark name, or a comma-separated list for a shared-EPC co-run (-list to enumerate)")
		shards     = fs.Int("shards", 1, "with a multi-benchmark -bench list, split the enclaves round-robin over this many independent EPC domains simulated in parallel")
		fleetHosts = fs.Int("fleet", 0, "simulate a cluster of this many SGX hosts on one shared clock: the -bench list arrives over time (one launch per -arrival-period) and is placed by -fleet-policy")
		specPath   = fs.String("spec", "", "with -fleet, compile this JSON workload spec (cohorts with arrival processes; see WORKLOADS.md) into the cluster's arrival stream instead of the -bench list")
		rateScale  = fs.Float64("rate-scale", 1, "with -spec, multiply every cohort's arrival rate (the saturation knob)")
		fleetPol   = fs.String("fleet-policy", "round-robin", "with -fleet, the placement policy: round-robin | least-loaded | pressure | affinity")
		arrPeriod  = fs.Int("arrival-period", 1_000_000, "with -fleet, cycles between enclave launches at the fleet front door")
		admPeriod  = fs.Int("admit-period", 0, "with -fleet, token-bucket admission: cycles per admitted launch (0 = admit everything)")
		admBurst   = fs.Int("admit-burst", 1, "with -fleet and -admit-period, how many launches may be admitted back-to-back")
		scheme     = fs.String("scheme", "baseline", "baseline | dfp | dfp-stop | sip | hybrid")
		epcPages   = fs.Int("epc", 2048, "EPC capacity in 4KiB pages")
		listLen    = fs.Int("streamlist", 30, "DFP stream_list length")
		loadLength = fs.Int("loadlength", 4, "DFP preload distance (pages per prediction)")
		threshold  = fs.Float64("threshold", 0.05, "SIP irregular-access-ratio threshold")
		predictor  = fs.String("predictor", "multistream", "fault-history strategy: multistream | stride | markov | nextn")
		policy     = fs.String("policy", "clock", "EPC eviction: clock | fifo | lru | random")
		quotaName  = fs.String("quota", "global", "per-enclave EPC quota policy: global | static | prop | adaptive (global = no quotas; see DESIGN.md)")
		reclaim    = fs.Bool("reclaim", false, "enable the ksgxswapd-style background reclaimer")
		streamMode = fs.Bool("stream", false, "pull accesses from the workload generator on demand instead of materializing the trace (O(1) memory)")
		repeat     = fs.Int("repeat", 1, "with -stream, replay the workload's trace this many times back-to-back (0 = run until interrupted; pair with -serve)")
		compare    = fs.Bool("compare", false, "also run the baseline and report the improvement")
		tracePath  = fs.String("trace", "", "write the run's event timeline (JSONL; a .csv extension selects CSV)")
		metricsOut = fs.String("metrics-out", "", "write derived metrics (text report; a .svg extension renders the timeline chart)")
		parallel   = fs.Int("parallel", 0, "worker pool for -compare runs and -fleet host advancement (0 = GOMAXPROCS; output is identical at any setting)")
		progress   = fs.Bool("progress", false, "report each completed run on stderr")
		replayPath = fs.String("replay", "", "replay a recorded trace (JSONL, or CSV for .csv) instead of simulating")
		diffMode   = fs.Bool("diff", false, "diff two recorded traces given as positional args: -diff a.jsonl b.jsonl")
		serveAddr  = fs.String("serve", "", "serve live metrics over HTTP (/metrics, /events, /report) on this address during the run")
		jsonOut    = fs.Bool("json", false, "with -replay or -diff, emit JSON instead of text")
		list       = fs.Bool("list", false, "list benchmarks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diffMode {
		return runDiff(fs.Args(), *jsonOut, out)
	}
	if *replayPath != "" {
		return runReplay(*replayPath, *metricsOut, *jsonOut, out)
	}
	if *list {
		for _, name := range workload.Names() {
			w, _ := workload.ByName(name)
			fmt.Fprintf(out, "%-16s %-38s %s, %d pages\n",
				name, w.Category, w.Language, w.FootprintPages)
		}
		return nil
	}

	if *repeat < 0 {
		return fmt.Errorf("-repeat must be >= 0, got %d", *repeat)
	}
	if *repeat != 1 && !*streamMode {
		return fmt.Errorf("-repeat needs -stream (materialized runs always replay once)")
	}
	if *repeat == 0 && *serveAddr == "" {
		return fmt.Errorf("-repeat 0 runs forever; pair it with -serve to watch the run")
	}
	sch, err := sim.SchemeByName(strings.ToLower(*scheme))
	if err != nil {
		return err
	}

	d := dfp.DefaultConfig()
	d.StreamListLen = *listLen
	d.LoadLength = *loadLength

	var pol epc.Policy
	switch strings.ToLower(*policy) {
	case "clock":
		pol = epc.PolicyClock
	case "fifo":
		pol = epc.PolicyFIFO
	case "lru":
		pol = epc.PolicyLRU
	case "random":
		pol = epc.PolicyRandom
	default:
		return fmt.Errorf("unknown eviction policy %q", *policy)
	}
	quota, err := arbiter.ByName(strings.ToLower(*quotaName))
	if err != nil {
		return err
	}

	// -fleet is the cluster path: the -bench list (or a compiled -spec)
	// becomes a timed arrival stream placed onto -fleet hosts on one
	// shared clock.
	if *fleetHosts > 0 {
		if *compare {
			return fmt.Errorf("-compare applies to single-benchmark runs")
		}
		if *shards != 1 {
			return fmt.Errorf("-shards and -fleet are different fleet shapes; pick one")
		}
		if *metricsOut != "" || *serveAddr != "" {
			return fmt.Errorf("-metrics-out/-serve record one engine's timeline; with -fleet use -trace for per-host trace files")
		}
		if *arrPeriod < 0 || *admPeriod < 0 {
			return fmt.Errorf("-arrival-period and -admit-period must be >= 0")
		}
		pl, err := fleet.PolicyByName(strings.ToLower(*fleetPol))
		if err != nil {
			return err
		}
		o := clusterOpts{
			hosts:         *fleetHosts,
			placement:     pl,
			arrivalPeriod: uint64(*arrPeriod),
			admitPeriod:   uint64(*admPeriod),
			admitBurst:    *admBurst,
			scheme:        sch,
			dfp:           d,
			predictor:     core.Kind(strings.ToLower(*predictor)),
			policy:        pol,
			quota:         quota,
			epcPages:      *epcPages,
			stream:        *streamMode,
			repeat:        *repeat,
			reclaim:       *reclaim,
			threshold:     *threshold,
			tracePath:     *tracePath,
			workers:       *parallel,
		}
		if *specPath != "" {
			return runSpecFleet(*specPath, *rateScale, o, out)
		}
		return runClusterFleet(strings.Split(*bench, ","), o, out)
	}
	if *specPath != "" {
		return fmt.Errorf("-spec compiles a cluster arrival stream; pair it with -fleet N")
	}

	// A comma-separated -bench list (or an explicit -shards) is a
	// multi-enclave run: every benchmark becomes one enclave, co-running
	// on shared EPC domains, streamed or materialized exactly like the
	// single-bench path.
	if names := strings.Split(*bench, ","); len(names) > 1 || *shards != 1 {
		if *compare {
			return fmt.Errorf("-compare applies to single-benchmark runs")
		}
		return runFleet(names, fleetOpts{
			scheme:     sch,
			dfp:        d,
			predictor:  core.Kind(strings.ToLower(*predictor)),
			policy:     pol,
			quota:      quota,
			epcPages:   *epcPages,
			shards:     *shards,
			stream:     *streamMode,
			repeat:     *repeat,
			reclaim:    *reclaim,
			threshold:  *threshold,
			tracePath:  *tracePath,
			metricsOut: *metricsOut,
			serveAddr:  *serveAddr,
		}, out)
	}

	w, err := workload.ByName(*bench)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Scheme:            sch,
		EPCPages:          *epcPages,
		ELRangePages:      w.ELRangePages(),
		DFP:               d,
		Predictor:         core.Kind(strings.ToLower(*predictor)),
		EvictPolicy:       pol,
		Quota:             quota,
		BackgroundReclaim: *reclaim,
	}
	if sch.UsesSIP() {
		sel, err := buildSelection(w, *epcPages, d, *threshold, *streamMode)
		if err != nil {
			return err
		}
		cfg.Selection = sel
		fmt.Fprintf(out, "SIP profile: %d instrumentation points at threshold %.0f%%\n",
			sel.Points(), *threshold*100)
	}

	var trace []mem.Access
	if !*streamMode {
		trace = w.Generate(workload.Ref)
	}

	// With -compare, the scheme run and the baseline run are independent
	// cells; fan them out on the sweep scheduler. Results land by index,
	// so the report below is identical at any -parallel setting.
	configs := []sim.Config{cfg}
	if *compare && sch != sim.Baseline {
		bcfg := cfg
		bcfg.Scheme = sim.Baseline
		bcfg.Selection = nil
		configs = append(configs, bcfg)
	}
	// The hooks observe only the primary run (a baseline comparison
	// run stays unhooked), and each run is single-goroutine, so the
	// recorded timeline is byte-identical at any -parallel setting. The
	// trace streams through a StreamSink — encoded and flushed as it is
	// emitted, so a traced run's memory is independent of trace length
	// and -trace works on unbounded -stream -repeat 0 runs — while
	// -metrics-out keeps an in-memory recorder (the derived report needs
	// the whole timeline). The live-metrics ring rides the same hook
	// slot via Tee; it locks per event, so HTTP scrapers see consistent
	// snapshots mid-run.
	var hooks []obs.Hook
	var rec *obs.Recorder
	if *metricsOut != "" {
		rec = obs.NewRecorder()
		hooks = append(hooks, rec)
	}
	var sink *obs.StreamSink
	if *tracePath != "" {
		var err error
		sink, err = obs.NewStreamSinkFile(*tracePath)
		if err != nil {
			return err
		}
		hooks = append(hooks, sink)
	}
	if *serveAddr != "" {
		ring := obs.NewRing(0)
		hooks = append(hooks, ring)
		stop, err := serveMetrics(*serveAddr, ring, out)
		if err != nil {
			return err
		}
		defer stop()
	}
	configs[0].Hook = obs.Tee(hooks...)
	results, err := experiments.Sweep(*parallel, len(configs), func(i int) (sim.Result, error) {
		var r sim.Result
		var err error
		if *streamMode {
			// Each cell pulls its own fresh stream, so -compare cells stay
			// independent under any -parallel setting.
			r, err = sim.RunStream(repeatStream(w, *repeat), configs[i])
		} else {
			r, err = sim.Run(trace, configs[i])
		}
		if *progress && err == nil {
			fmt.Fprintf(os.Stderr, "  %s run done\n", configs[i].Scheme)
		}
		return r, err
	})
	if err != nil {
		if sink != nil {
			sink.Close()
		}
		return err
	}
	res := results[0]

	fmt.Fprintf(out, "benchmark:        %s (%s)\n", w.Name, w.Category)
	fmt.Fprintf(out, "scheme:           %s\n", res.Scheme)
	fmt.Fprintf(out, "cycles:           %d\n", res.Cycles)
	fmt.Fprintf(out, "accesses:         %d\n", res.Accesses)
	fmt.Fprintf(out, "hits:             %d\n", res.Hits)
	fmt.Fprintf(out, "demand faults:    %d\n", res.Kernel.DemandFaults)
	fmt.Fprintf(out, "evictions:        %d\n", res.Kernel.Evictions)
	fmt.Fprintf(out, "preloads started: %d (dropped %d)\n",
		res.Kernel.PreloadsStarted, res.Kernel.PreloadsDropped)
	fmt.Fprintf(out, "notify loads:     %d (hits %d)\n",
		res.Kernel.NotifyLoads, res.Kernel.NotifyHits)
	fmt.Fprintf(out, "fault cycles:     %d (%.1f%% of run)\n",
		res.FaultCycles(), 100*float64(res.FaultCycles())/float64(res.Cycles))
	if res.Kernel.DFPStopped {
		fmt.Fprintf(out, "safety valve:     fired at cycle %d\n", res.Kernel.DFPStopCycle)
	}

	if len(results) == 2 {
		base := results[1]
		fmt.Fprintf(out, "baseline cycles:  %d\n", base.Cycles)
		fmt.Fprintf(out, "improvement:      %+.2f%%\n", stats.ImprovementPct(res.Cycles, base.Cycles))
	}

	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePath, err)
		}
		fmt.Fprintf(out, "trace:            %d events -> %s\n", sink.Events(), *tracePath)
	}
	if rec != nil {
		title := fmt.Sprintf("%s / %s", w.Name, res.Scheme)
		if err := writeMetrics(rec, title, *metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics:          %s\n", *metricsOut)
	}
	return nil
}

// buildSelection profiles the workload's Train input and selects SIP
// instrumentation sites; with streamed set, the profiling pass pulls
// the train trace access-by-access so it never exists as a slice.
func buildSelection(w *workload.Workload, epcPages int, d dfp.Config, threshold float64, streamed bool) (*sip.Selection, error) {
	if !w.Instrumentable {
		return nil, fmt.Errorf("%s cannot be instrumented (%s)", w.Name, w.Language)
	}
	cl, err := sip.NewClassifier(epcPages, w.ELRangePages(), d)
	if err != nil {
		return nil, err
	}
	if streamed {
		src := w.Stream(workload.Train)
		for a, ok := src.Next(); ok; a, ok = src.Next() {
			cl.Record(a.Site, a.Page)
		}
	} else {
		for _, a := range w.Generate(workload.Train) {
			cl.Record(a.Site, a.Page)
		}
	}
	return sip.Select(cl.Profile(), threshold, 32), nil
}

// fleetOpts carries the flag values of a multi-enclave run.
type fleetOpts struct {
	scheme     sim.Scheme
	dfp        dfp.Config
	predictor  core.Kind
	policy     epc.Policy
	quota      arbiter.Policy
	epcPages   int
	shards     int
	stream     bool
	repeat     int
	reclaim    bool
	threshold  float64
	tracePath  string
	metricsOut string
	serveAddr  string
}

// runFleet co-simulates one enclave per benchmark name over o.shards
// independent EPC domains (round-robin placement, o.epcPages frames per
// domain) and prints a per-enclave result table. Shards simulate on
// worker goroutines with a deterministic merge, so the table is
// identical at any parallelism; a one-shard run is byte-identical to
// the plain shared-EPC engine. -metrics-out and -serve attach one hook
// at engine level, so they remain limited to single-shard runs; -trace
// works at any shard count — each EPC domain streams its own timeline
// to <path>.shard<N>, mirroring the cluster fleet's per-host traces,
// and each domain is single-goroutine so every per-shard trace is
// byte-identical at any worker count.
func runFleet(names []string, o fleetOpts, out io.Writer) error {
	if o.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", o.shards)
	}
	if (o.metricsOut != "" || o.serveAddr != "") && o.shards > 1 {
		return fmt.Errorf("-metrics-out/-serve record one engine's timeline; use -shards 1 (-trace writes per-shard files at any shard count)")
	}
	encs := make([]sim.Enclave, len(names))
	for i, name := range names {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		enc := sim.Enclave{
			Name:              w.Name,
			Pages:             w.ELRangePages(),
			Scheme:            o.scheme,
			DFP:               o.dfp,
			Predictor:         o.predictor,
			BackgroundReclaim: o.reclaim,
		}
		if o.scheme.UsesSIP() {
			sel, err := buildSelection(w, o.epcPages, o.dfp, o.threshold, o.stream)
			if err != nil {
				return err
			}
			enc.Selection = sel
			fmt.Fprintf(out, "SIP profile (%s):  %d instrumentation points at threshold %.0f%%\n",
				w.Name, sel.Points(), o.threshold*100)
		}
		if o.stream {
			enc.Stream = repeatStream(w, o.repeat)
		} else {
			enc.Trace = w.Generate(workload.Ref)
		}
		encs[i] = enc
	}
	groups, err := sim.ShardRoundRobin(encs, o.shards)
	if err != nil {
		return err
	}
	scfg := sim.SharedConfig{EPCPages: o.epcPages, EvictPolicy: o.policy, Quota: o.quota}

	// -trace streams per shard: one sink per EPC domain, resolved through
	// the per-shard HookFactory. A single-shard run keeps the flat path
	// (no .shard0 tag) and may tee -metrics-out/-serve hooks beside it.
	var rec *obs.Recorder
	var hooks []obs.Hook
	var sinks []*obs.StreamSink
	var sinkPaths []string
	closeSinks := func() {
		for _, s := range sinks {
			s.Close()
		}
	}
	if o.tracePath != "" {
		paths := []string{o.tracePath}
		if len(groups) > 1 {
			paths = paths[:0]
			for i := range groups {
				paths = append(paths, taggedTracePath(o.tracePath, fmt.Sprintf("shard%d", i)))
			}
		}
		for _, path := range paths {
			s, err := obs.NewStreamSinkFile(path)
			if err != nil {
				closeSinks()
				return err
			}
			sinks = append(sinks, s)
			sinkPaths = append(sinkPaths, path)
		}
		if len(groups) == 1 {
			hooks = append(hooks, sinks[0])
		} else {
			scfg.HookFactory = func(shard int) obs.Hook { return sinks[shard] }
		}
	}
	if o.metricsOut != "" {
		rec = obs.NewRecorder()
		hooks = append(hooks, rec)
	}
	if o.serveAddr != "" {
		ring := obs.NewRing(0)
		hooks = append(hooks, ring)
		stop, err := serveMetrics(o.serveAddr, ring, out)
		if err != nil {
			closeSinks()
			return err
		}
		defer stop()
	}
	if len(hooks) > 0 {
		scfg.Hook = obs.Tee(hooks...)
	}

	results, err := sim.RunSharded(groups, scfg, 0)
	if err != nil {
		closeSinks()
		return err
	}

	fmt.Fprintf(out, "fleet:            %d enclaves over %d shard(s), EPC %d pages per shard, scheme %s%s\n",
		len(encs), len(groups), o.epcPages, o.scheme, quotaTag(o.quota))
	tbl := &stats.Table{Header: []string{
		"shard", "enclave", "cycles", "accesses", "hits", "faults", "preloads", "fault-cycles",
	}}
	for s, shard := range results {
		for _, r := range shard {
			tbl.Add(s, r.Name, r.Cycles, r.Accesses, r.Hits, r.Kernel.DemandFaults,
				r.Kernel.PreloadsStarted,
				fmt.Sprintf("%.1f%%", 100*float64(r.FaultCycles())/float64(r.Cycles)))
		}
	}
	fmt.Fprint(out, tbl.String())

	for i, s := range sinks {
		if err := s.Close(); err != nil {
			closeSinks()
			return fmt.Errorf("trace %s: %w", sinkPaths[i], err)
		}
		if len(sinks) == 1 {
			fmt.Fprintf(out, "trace:            %d events -> %s\n", s.Events(), sinkPaths[i])
		} else {
			fmt.Fprintf(out, "trace shard %d:    %d events -> %s\n", i, s.Events(), sinkPaths[i])
		}
	}
	if rec != nil {
		title := fmt.Sprintf("fleet of %d / %s", len(encs), o.scheme)
		if err := writeMetrics(rec, title, o.metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics:          %s\n", o.metricsOut)
	}
	return nil
}

// clusterOpts carries the flag values of a -fleet cluster run.
type clusterOpts struct {
	hosts         int
	placement     fleet.Policy
	arrivalPeriod uint64
	admitPeriod   uint64
	admitBurst    int
	scheme        sim.Scheme
	dfp           dfp.Config
	predictor     core.Kind
	policy        epc.Policy
	quota         arbiter.Policy
	epcPages      int
	stream        bool
	repeat        int
	reclaim       bool
	threshold     float64
	tracePath     string
	workers       int
}

// runClusterFleet turns the benchmark list into a timed arrival stream
// (launch i at i * arrivalPeriod) and drives it through the fleet
// layer: one engine per host, each its own EPC domain, placements made
// by the selected policy at each arrival barrier, launches past the
// token bucket's rate shed at the front door. The fleet advances hosts
// in parallel between barriers with a deterministic merge, so the
// report is identical at any parallelism. With -trace, each host
// records its own timeline to <path>.host<N> — the per-host counterpart
// of the single-engine trace.
func runClusterFleet(names []string, o clusterOpts, out io.Writer) error {
	arrivals := make([]fleet.Arrival, len(names))
	for i, name := range names {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		enc := sim.Enclave{
			Name:              fmt.Sprintf("%s/%d", w.Name, i),
			Pages:             w.ELRangePages(),
			Scheme:            o.scheme,
			DFP:               o.dfp,
			Predictor:         o.predictor,
			BackgroundReclaim: o.reclaim,
		}
		if o.scheme.UsesSIP() {
			sel, err := buildSelection(w, o.epcPages, o.dfp, o.threshold, o.stream)
			if err != nil {
				return err
			}
			enc.Selection = sel
		}
		if o.stream {
			enc.Stream = repeatStream(w, o.repeat)
		} else {
			enc.Trace = w.Generate(workload.Ref)
		}
		arrivals[i] = fleet.Arrival{At: uint64(i) * o.arrivalPeriod, Enclave: enc}
	}
	return runFleetArrivals(arrivals, o, out)
}

// runSpecFleet compiles a JSON workload spec into the cluster's arrival
// stream and drives it through the same fleet tail as the -bench list
// path. The compilation is seeded by the spec, so the whole run —
// launch times, workload picks, modifiers, placements, and the report —
// is identical at any -parallel setting.
func runSpecFleet(path string, rateScale float64, o clusterOpts, out io.Writer) error {
	s, err := spec.Load(path)
	if err != nil {
		return err
	}
	arrivals, m, err := spec.Compile(s, spec.Options{
		Scheme:            o.scheme,
		DFP:               o.dfp,
		Predictor:         o.predictor,
		BackgroundReclaim: o.reclaim,
		RateScale:         rateScale,
		Selection: func(w *workload.Workload) (*sip.Selection, error) {
			return buildSelection(w, o.epcPages, o.dfp, o.threshold, true)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "spec:             %s: %d launches from %d cohort(s) before cycle %d (rate x%g)\n",
		m.Spec, len(m.Launches), len(s.Cohorts), m.Horizon, rateScale)
	return runFleetArrivals(arrivals, o, out)
}

// runFleetArrivals is the shared cluster tail: place the arrival stream
// onto o.hosts hosts, run to completion, and print the per-host report.
func runFleetArrivals(arrivals []fleet.Arrival, o clusterOpts, out io.Writer) error {
	cfg := fleet.Config{
		Hosts:       o.hosts,
		Policy:      o.placement,
		Platform:    sim.SharedConfig{EPCPages: o.epcPages, EvictPolicy: o.policy, Quota: o.quota},
		AdmitPeriod: o.admitPeriod,
		AdmitBurst:  o.admitBurst,
		Workers:     o.workers,
	}
	// Per-host traces stream through one sink per host, so a long fleet
	// run never holds host timelines in memory. The sinks are opened
	// up-front (the HookFactory cannot surface file errors) and resolved
	// by host index.
	var sinks []*obs.StreamSink
	var sinkPaths []string
	closeSinks := func() {
		for _, s := range sinks {
			s.Close()
		}
	}
	if o.tracePath != "" {
		for h := 0; h < o.hosts; h++ {
			path := taggedTracePath(o.tracePath, fmt.Sprintf("host%d", h))
			s, err := obs.NewStreamSinkFile(path)
			if err != nil {
				closeSinks()
				fleet.CloseArrivals(arrivals)
				return err
			}
			sinks = append(sinks, s)
			sinkPaths = append(sinkPaths, path)
		}
		cfg.Platform.HookFactory = func(h int) obs.Hook { return sinks[h] }
	}
	res, err := fleet.Run(arrivals, cfg)
	if err != nil {
		closeSinks()
		return err
	}

	fmt.Fprint(out, res.String())
	tbl := &stats.Table{Header: []string{
		"host", "enclave", "cycles", "accesses", "hits", "faults", "preloads", "resident", "quota",
	}}
	for h, hr := range res.Hosts {
		for i, r := range hr.Enclaves {
			quotaCol := "-" // Global policy: no quotas
			if hr.Quota != nil {
				quotaCol = fmt.Sprint(hr.Quota[i])
			}
			tbl.Add(h, r.Name, r.Cycles, r.Accesses, r.Hits, r.Kernel.DemandFaults,
				r.Kernel.PreloadsStarted, hr.Resident[i], quotaCol)
		}
	}
	fmt.Fprint(out, tbl.String())
	if len(res.Shed) > 0 {
		fmt.Fprintf(out, "shed at the front door: %s\n", strings.Join(res.Shed, ", "))
	}

	for h, s := range sinks {
		if err := s.Close(); err != nil {
			closeSinks()
			return fmt.Errorf("trace %s: %w", sinkPaths[h], err)
		}
		fmt.Fprintf(out, "trace host %d:     %d events -> %s\n", h, s.Events(), sinkPaths[h])
	}
	return nil
}

// quotaTag renders the quota policy for run headers; empty under the
// Global default so existing output stays byte-identical.
func quotaTag(q arbiter.Policy) string {
	if q == arbiter.Global {
		return ""
	}
	return fmt.Sprintf(", quota %s", q)
}

// taggedTracePath inserts a per-domain tag before the path's extension:
// (run.jsonl, host2) -> run.host2.jsonl, (run.jsonl, shard0) ->
// run.shard0.jsonl.
func taggedTracePath(path, tag string) string {
	if i := strings.LastIndex(path, "."); i > 0 {
		return fmt.Sprintf("%s.%s%s", path[:i], tag, path[i:])
	}
	return fmt.Sprintf("%s.%s", path, tag)
}

// repeatStream replays the workload's Ref trace n times back-to-back,
// regenerating the coroutine stream at each cycle boundary (n == 0
// repeats forever). Memory stays O(1) at any n.
func repeatStream(w *workload.Workload, n int) mem.Stream {
	cur := w.Stream(workload.Ref)
	cycle := 1
	return mem.StreamFunc(func() (mem.Access, bool) {
		for {
			a, ok := cur.Next()
			if ok {
				return a, true
			}
			if n > 0 && cycle >= n {
				return mem.Access{}, false
			}
			cycle++
			cur = w.Stream(workload.Ref)
		}
	})
}

// writeMetrics exports the derived metrics: a text report, or the
// timeline chart as SVG when path ends in .svg.
func writeMetrics(rec *obs.Recorder, title, path string) error {
	return writeEventMetrics(rec.Events(), title, path)
}

// writeEventMetrics is writeMetrics over a bare event slice (shared by
// the live and replay paths, so both produce identical report bytes).
func writeEventMetrics(events []obs.Event, title, path string) error {
	if strings.HasSuffix(path, ".svg") {
		chart := obs.Timeline(title, events, 4000)
		return os.WriteFile(path, []byte(chart.SVG()), 0o644)
	}
	report := obs.BuildReport(events)
	return os.WriteFile(path, []byte(report.String()), 0o644)
}

// runReplay loads a recorded trace and re-derives the run's metrics
// without simulating. The printed Report is byte-identical to what the
// live run's -metrics-out wrote, because both are obs.BuildReport over
// the same event timeline.
func runReplay(path, metricsOut string, jsonOut bool, out io.Writer) error {
	events, err := replay.ReadFile(path)
	if err != nil {
		return err
	}
	report := obs.BuildReport(events)
	if jsonOut {
		b, err := json.Marshal(report)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(b))
	} else {
		fmt.Fprintf(out, "replayed:            %d events from %s\n", len(events), path)
		fmt.Fprint(out, report.String())
	}
	if metricsOut != "" {
		if err := writeEventMetrics(events, "replay of "+path, metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics:          %s\n", metricsOut)
	}
	return nil
}

// runDiff loads two recorded traces and reports the first divergent
// event plus per-kind and per-metric deltas.
func runDiff(paths []string, jsonOut bool, out io.Writer) error {
	if len(paths) != 2 {
		return fmt.Errorf("-diff needs exactly two trace paths, got %d", len(paths))
	}
	a, err := replay.ReadFile(paths[0])
	if err != nil {
		return err
	}
	b, err := replay.ReadFile(paths[1])
	if err != nil {
		return err
	}
	d := replay.Compare(a, b)
	if jsonOut {
		buf, err := json.Marshal(d)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(buf))
		return nil
	}
	fmt.Fprintf(out, "diff:                a = %s, b = %s\n", paths[0], paths[1])
	fmt.Fprint(out, d.String())
	return nil
}

// serveMetrics starts the live-metrics HTTP server on addr, printing the
// bound address (so :0 is usable), and returns a shutdown func. The
// server runs for the duration of the simulation; scrape /metrics,
// /events?since=N, or /report while the run is in flight.
func serveMetrics(addr string, ring *obs.Ring, out io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "serving metrics:  http://%s (/metrics /events /report)\n", ln.Addr())
	srv := &http.Server{Handler: obs.NewHandler(ring)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return func() {
		srv.Close()
		<-done
	}, nil
}
