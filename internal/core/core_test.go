package core

import (
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
)

func TestNewPredictorAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			p, err := NewPredictor(kind, dfp.DefaultConfig())
			if err != nil {
				t.Fatalf("NewPredictor(%s): %v", kind, err)
			}
			if p.Name() != string(kind) {
				t.Errorf("Name() = %q, want %q", p.Name(), kind)
			}
			if p.Stopped() {
				t.Error("fresh predictor already stopped")
			}
			// A unit stream must eventually produce predictions from every
			// kind except markov (which needs repetition).
			var predicted bool
			for i := uint64(100); i < 140; i++ {
				if len(p.OnFault(mem.PageID(i))) > 0 {
					predicted = true
				}
			}
			if !predicted && kind != KindMarkov {
				t.Errorf("%s never predicted on a unit stream", kind)
			}
		})
	}
}

func TestNewPredictorUnknownKind(t *testing.T) {
	if _, err := NewPredictor("nope", dfp.DefaultConfig()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestNewPredictorInvalidConfig(t *testing.T) {
	for _, kind := range Kinds() {
		if _, err := NewPredictor(kind, dfp.Config{}); err == nil {
			t.Errorf("%s accepted an invalid config", kind)
		}
	}
}

func TestFactoryProducesFreshState(t *testing.T) {
	f := FactoryFor(KindMultiStream, dfp.DefaultConfig())
	a, err := f()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f()
	if err != nil {
		t.Fatal(err)
	}
	a.NotePreloaded(100)
	if b.PreloadCounter() != 0 {
		t.Fatal("factory shared state between predictors")
	}
}

func TestKindsSorted(t *testing.T) {
	ks := Kinds()
	if len(ks) != 4 {
		t.Fatalf("Kinds() = %v, want 4 strategies", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Kinds() not sorted: %v", ks)
		}
	}
}
