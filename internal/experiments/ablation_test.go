package experiments

import (
	"testing"

	"sgxpreload/internal/core"
	"sgxpreload/internal/epc"
)

func TestEPCSweep(t *testing.T) {
	a, err := EPCSweep(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range a.Benchmarks {
		row := a.Improvement[i]
		last := len(row) - 1
		// For the re-use benchmarks, a 12288-page EPC holds the footprint:
		// only cold-start faults remain and the steady-state gain is gone.
		// The microbenchmark is different — its runtime IS its cold faults
		// (a scan touches every page a handful of times), so preloading
		// keeps paying even when the EPC is huge.
		if name != "microbenchmark" && (row[last] > 5 || row[last] < -5) {
			t.Errorf("%s at 12288-page EPC: %+.1f%%, want ~0 (footprint fits)", name, row[last])
		}
		if name == "microbenchmark" && row[last] < 10 {
			t.Errorf("microbenchmark at 12288-page EPC: %+.1f%%, want cold-fault gains to persist", row[last])
		}
		// Under pressure (2048 pages) the regular benchmarks must show a
		// real gain.
		if name != "deepsjeng" && row[1] < 5 {
			t.Errorf("%s at 2048-page EPC: %+.1f%%, want a real gain", name, row[1])
		}
		// Fault share must fall as the EPC grows.
		shares := a.FaultShare[i]
		if shares[0] < shares[last] {
			t.Errorf("%s: fault share rose with EPC size: %v", name, shares)
		}
	}
}

func TestPredictorAblation(t *testing.T) {
	a, err := PredictorAblation(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	kindIdx := map[core.Kind]int{}
	for i, k := range a.Kinds {
		kindIdx[k] = i
	}
	benchIdx := map[string]int{}
	for i, b := range a.Benchmarks {
		benchIdx[b] = i
	}
	get := func(bench string, kind core.Kind) float64 {
		return a.Improvement[benchIdx[bench]][kindIdx[kind]]
	}
	// On clean streams the stride recognizer must match the paper's
	// multistream closely (unit stride is a special case of both).
	for _, reg := range []string{"microbenchmark", "lbm"} {
		ms, st := get(reg, core.KindMultiStream), get(reg, core.KindStride)
		if diff := ms - st; diff > 5 || diff < -5 {
			t.Errorf("%s: multistream %+.1f%% vs stride %+.1f%%, want parity", reg, ms, st)
		}
		// The no-history strawman also works on pure streams.
		if get(reg, core.KindNextN) < 5 {
			t.Errorf("%s: nextn %+.1f%%, want a gain on pure streams", reg, get(reg, core.KindNextN))
		}
	}
	// On irregular fault histories the strawman must be the worst: it
	// preloads junk on every single fault. On roms every predictor
	// saturates near the same heavy loss (the serialized channel is the
	// bottleneck and queue overflow discards most junk batches before
	// they start), so there the strawman is only required not to come out
	// meaningfully ahead; deepsjeng keeps the strict ordering.
	for _, irr := range []string{"deepsjeng", "roms"} {
		nn := get(irr, core.KindNextN)
		ms := get(irr, core.KindMultiStream)
		if nn > ms+0.5 {
			t.Errorf("%s: nextn (%+.1f%%) meaningfully better than multistream (%+.1f%%)", irr, nn, ms)
		}
		if nn > -20 {
			t.Errorf("%s: nextn = %+.1f%%, want a heavy loss", irr, nn)
		}
	}
	if nn, ms := get("deepsjeng", core.KindNextN), get("deepsjeng", core.KindMultiStream); nn >= ms {
		t.Errorf("deepsjeng: nextn (%+.1f%%) not worse than multistream (%+.1f%%)", nn, ms)
	}
}

func TestEvictionAblation(t *testing.T) {
	a, err := EvictionAblation(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	polIdx := map[epc.Policy]int{}
	for i, p := range a.Policies {
		polIdx[p] = i
	}
	for i, name := range a.Benchmarks {
		row := a.Norm[i]
		if got := row[polIdx[epc.PolicyClock]]; got != 1.0 {
			t.Errorf("%s: CLOCK not normalized to 1.0: %v", name, got)
		}
		// CLOCK approximates LRU: within 10% on every benchmark.
		lru := row[polIdx[epc.PolicyLRU]]
		if lru > 1.10 || lru < 0.90 {
			t.Errorf("%s: LRU %.3f too far from CLOCK", name, lru)
		}
	}
	// For the hot-set benchmarks (deepsjeng, mcf keep tables resident),
	// recency-blind random eviction must be visibly worse than CLOCK.
	for _, name := range []string{"deepsjeng", "mcf"} {
		for i, n := range a.Benchmarks {
			if n != name {
				continue
			}
			if rnd := a.Norm[i][polIdx[epc.PolicyRandom]]; rnd < 1.02 {
				t.Errorf("%s: random eviction %.3f, want visibly worse than CLOCK", name, rnd)
			}
		}
	}
}

func TestCostSensitivity(t *testing.T) {
	a, err := CostSensitivity(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	// The preloading win must grow with the load cost: the more a fault
	// costs, the more hiding it is worth.
	for i := 1; i < len(a.Improvement); i++ {
		if a.Improvement[i] <= a.Improvement[i-1] {
			t.Errorf("improvement not increasing with load cost: %v", a.Improvement)
			break
		}
	}
	if a.Improvement[0] < 1 {
		t.Errorf("at load cost 11k improvement = %+.1f%%, want still positive", a.Improvement[0])
	}
}

func TestSharedEPCAblation(t *testing.T) {
	a, err := SharedEPC(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range a.Names {
		if a.SharedCycles[i] <= a.SoloCycles[i] {
			t.Errorf("%s: no contention slowdown (%d vs %d solo)",
				name, a.SharedCycles[i], a.SoloCycles[i])
		}
		if a.SharedPreloadCycles[i] >= a.SharedCycles[i] {
			t.Errorf("%s: preloading did not help under sharing (%d vs %d)",
				name, a.SharedPreloadCycles[i], a.SharedCycles[i])
		}
	}
}

func TestBackwardStreams(t *testing.T) {
	a, err := BackwardStreams(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if a.WithBackwardImprovement < a.ForwardOnlyImprovement+5 {
		t.Errorf("backward support %+.1f%% vs forward-only %+.1f%%: descending sweep not recognized",
			a.WithBackwardImprovement, a.ForwardOnlyImprovement)
	}
	if a.ForwardOnlyImprovement > 3 {
		t.Errorf("forward-only recognizer gained %+.1f%% on a descending sweep, want ~0",
			a.ForwardOnlyImprovement)
	}
}

func TestReclaimAblation(t *testing.T) {
	a, err := ReclaimAblation(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range a.Benchmarks {
		if a.BgEvicts[i] == 0 {
			t.Errorf("%s: background reclaimer never ran", name)
		}
		// Moving the EWB off the fault path trades a per-fault saving for
		// periodic channel bursts. It helps fault-dominated scans and can
		// cost a few percent when bursts collide with dense demand faults
		// (deepsjeng measures ≈ +3%); it must never blow up.
		sync, bg := float64(a.SyncCycles[i]), float64(a.BackgroundCycles[i])
		if bg > 1.06*sync {
			t.Errorf("%s: background reclaim %.0f vs sync %.0f (+%.1f%%)",
				name, bg, sync, 100*(bg/sync-1))
		}
	}
	// The microbenchmark faults on nearly every access: removing the
	// synchronous EWB from its fault path must show a visible gain.
	if a.BackgroundCycles[0] >= a.SyncCycles[0] {
		t.Errorf("microbenchmark: background reclaim (%d) not faster than sync (%d)",
			a.BackgroundCycles[0], a.SyncCycles[0])
	}
}

func TestEagerSIP(t *testing.T) {
	a, err := EagerSIP(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	// Lead 0 is the paper's conservative SIP (≈ +9% on deepsjeng);
	// growing the lead must monotonically (weakly) increase the win as
	// more of the 44k-cycle load hides behind computation.
	if a.Improvement[0] < 5 {
		t.Fatalf("lead 0 = %+.1f%%, want the conservative SIP gain", a.Improvement[0])
	}
	last := a.Improvement[len(a.Improvement)-1]
	if last < a.Improvement[0]+5 {
		t.Errorf("lead %d (%+.1f%%) should clearly beat lead 0 (%+.1f%%)",
			a.Leads[len(a.Leads)-1], last, a.Improvement[0])
	}
	for i := 1; i < len(a.Improvement); i++ {
		if a.Improvement[i] < a.Improvement[i-1]-1.5 {
			t.Errorf("improvement dropped with more lead: %v", a.Improvement)
			break
		}
	}
}
