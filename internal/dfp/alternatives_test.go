package dfp

import (
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func TestStrideUnitStream(t *testing.T) {
	p, err := NewStride(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.OnFault(100)
	got := p.OnFault(101)
	if len(got) != 4 || got[0] != 102 || got[3] != 105 {
		t.Fatalf("unit-stride prediction = %v, want [102..105]", got)
	}
}

func TestStrideNonUnit(t *testing.T) {
	p, err := NewStride(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.OnFault(100)
	got := p.OnFault(107) // stride 7
	if len(got) != 4 || got[0] != 114 || got[3] != 135 {
		t.Fatalf("stride-7 prediction = %v, want [114 121 128 135]", got)
	}
	// Continue the stream.
	got = p.OnFault(114)
	if len(got) == 0 || got[0] != 121 {
		t.Fatalf("stride continuation = %v, want starting at 121", got)
	}
}

func TestStrideBackward(t *testing.T) {
	p, err := NewStride(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.OnFault(1000)
	got := p.OnFault(998) // stride -2
	if len(got) != 4 || got[0] != 996 || got[3] != 990 {
		t.Fatalf("descending prediction = %v, want [996 994 992 990]", got)
	}
}

func TestStrideHugeJumpIsNotAStride(t *testing.T) {
	p, err := NewStride(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.OnFault(100)
	if got := p.OnFault(100000); got != nil {
		t.Fatalf("random jump produced prediction %v", got)
	}
}

func TestStrideMultistreamParityOnUnitStreams(t *testing.T) {
	// On pure unit streams the paper's recognizer and the stride
	// generalization must make the same predictions.
	ms, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStride(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := mem.PageID(0); i < 40; i++ {
		a := ms.OnFault(500 + i)
		b := st.OnFault(500 + i)
		if len(a) != len(b) {
			t.Fatalf("fault %d: multistream %v vs stride %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("fault %d: multistream %v vs stride %v", i, a, b)
			}
		}
	}
}

func TestMarkovLearnsChains(t *testing.T) {
	p, err := NewMarkov(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chain := []mem.PageID{10, 507, 33, 902, 10} // cyclic pointer chain
	// First walk: learning, no predictions for fresh pages.
	for _, pg := range chain {
		p.OnFault(pg)
	}
	// Second walk: every fault predicts the remembered successor.
	for i := 1; i < len(chain); i++ {
		got := p.OnFault(chain[i])
		want := chain[(i+1)%len(chain)]
		if i+1 < len(chain) {
			if len(got) == 0 || got[0] != want {
				t.Fatalf("fault %d (%d): predicted %v, want head %d", i, chain[i], got, want)
			}
		}
	}
}

func TestMarkovCapacityBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamListLen = 1 // capacity 64 sources
	p, err := NewMarkov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		p.OnFault(mem.PageID(r.Uint64n(1 << 20)))
	}
	if len(p.successors) > 64+1 {
		t.Fatalf("transition table grew to %d entries, cap 64", len(p.successors))
	}
}

func TestNextNAlwaysPredicts(t *testing.T) {
	p, err := NewNextN(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := p.OnFault(42)
	if len(got) != 4 || got[0] != 43 {
		t.Fatalf("NextN prediction = %v, want [43..46]", got)
	}
}

func TestAlternativesShareStopMechanism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stop = true
	cfg.StopSlack = 1
	mk := []struct {
		name string
		new  func() (interface {
			NotePreloaded(int)
			EvaluateStop() bool
			OnFault(mem.PageID) []mem.PageID
			Stopped() bool
		}, error)
	}{
		{"stride", func() (interface {
			NotePreloaded(int)
			EvaluateStop() bool
			OnFault(mem.PageID) []mem.PageID
			Stopped() bool
		}, error) {
			return NewStride(cfg)
		}},
		{"markov", func() (interface {
			NotePreloaded(int)
			EvaluateStop() bool
			OnFault(mem.PageID) []mem.PageID
			Stopped() bool
		}, error) {
			return NewMarkov(cfg)
		}},
		{"nextn", func() (interface {
			NotePreloaded(int)
			EvaluateStop() bool
			OnFault(mem.PageID) []mem.PageID
			Stopped() bool
		}, error) {
			return NewNextN(cfg)
		}},
	}
	for _, tc := range mk {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.new()
			if err != nil {
				t.Fatal(err)
			}
			p.NotePreloaded(100)
			if !p.EvaluateStop() {
				t.Fatal("valve did not fire at 0 accessed / 100 preloaded")
			}
			if !p.Stopped() {
				t.Fatal("Stopped() = false after valve fired")
			}
			p.OnFault(1)
			p.OnFault(2)
			if got := p.OnFault(3); got != nil {
				t.Fatalf("stopped predictor still predicts: %v", got)
			}
		})
	}
}

func TestPredictorNames(t *testing.T) {
	ms, _ := New(DefaultConfig())
	st, _ := NewStride(DefaultConfig())
	mk, _ := NewMarkov(DefaultConfig())
	nn, _ := NewNextN(DefaultConfig())
	for got, want := range map[string]string{
		ms.Name(): "multistream",
		st.Name(): "stride",
		mk.Name(): "markov",
		nn.Name(): "nextn",
	} {
		if got != want {
			t.Errorf("predictor name %q, want %q", got, want)
		}
	}
}
