package experiments

import (
	"fmt"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/trace"
	"sgxpreload/internal/workload"
)

// Table1Row is one benchmark's classification.
type Table1Row struct {
	Name     string
	Declared string // the paper's Table 1 category
	Measured string // category from the measured access pattern
	Pattern  trace.Pattern
}

// Table1Result is the benchmark classification table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1: the benchmark classification into small
// working set, large-irregular, and large-regular — measured from the
// actual page traces rather than copied from the declaration, so the table
// also validates the generators.
func Table1(r *Runner) (Table1Result, error) {
	var out Table1Result
	ws := workload.All()
	rows, err := sweep(r, "table1", len(ws),
		func(i int) string { return ws[i].Name },
		func(i int) (Table1Row, error) {
			w := ws[i]
			p := trace.Analyze(r.Trace(w, workload.Ref))
			return Table1Row{
				Name:     w.Name,
				Declared: w.Category.String(),
				Measured: p.Classify(uint64(r.p.EPCPages)),
				Pattern:  p,
			}, nil
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// String renders the classification.
func (t Table1Result) String() string {
	tbl := &stats.Table{Header: []string{"benchmark", "measured category", "footprint", "streamRatio"}}
	for _, row := range t.Rows {
		tbl.Add(row.Name, row.Measured, row.Pattern.Footprint, row.Pattern.StreamRatio)
	}
	return "Table 1: benchmark classification (measured)\n" + tbl.String()
}

// Mismatches returns benchmarks whose measured category differs from the
// declared one — should be empty.
func (t Table1Result) Mismatches() []string {
	var out []string
	for _, row := range t.Rows {
		if row.Declared != row.Measured {
			out = append(out, fmt.Sprintf("%s: declared %q, measured %q",
				row.Name, row.Declared, row.Measured))
		}
	}
	return out
}

// Table2Row is one benchmark's instrumentation-point count.
type Table2Row struct {
	Name   string
	Points int
}

// Table2Result is the instrumentation-point table.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 reproduces Table 2: the number of SIP instrumentation points per
// benchmark. The paper reports mcf.2006 114, mcf 99, xz 46, deepsjeng 35,
// MSER 54, and zero for lbm, SIFT, and the microbenchmark — the TCB-size
// argument of §5.5.
func Table2(r *Runner) (Table2Result, error) {
	var out Table2Result
	names := []string{
		"mcf.2006", "mcf", "xz", "deepsjeng", "lbm", "MSER", "SIFT", "microbenchmark",
	}
	rows, err := sweep(r, "table2", len(names),
		func(i int) string { return names[i] },
		func(i int) (Table2Row, error) {
			w, err := mustWorkload(names[i])
			if err != nil {
				return Table2Row{}, err
			}
			sel, err := r.Selection(w)
			if err != nil {
				return Table2Row{}, err
			}
			return Table2Row{Name: names[i], Points: sel.Points()}, nil
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// String renders the table.
func (t Table2Result) String() string {
	tbl := &stats.Table{Header: []string{"benchmark", "instrumentation points"}}
	for _, row := range t.Rows {
		tbl.Add(row.Name, row.Points)
	}
	return "Table 2: SIP instrumentation points\n" + tbl.String()
}

// MotivationResult reproduces the paper's motivating numbers (§1–2): the
// slowdown of the 1 GB sequential scan inside an enclave, and the per-
// fault protocol costs.
type MotivationResult struct {
	// EnclaveCycles is the microbenchmark's time with enclave paging.
	EnclaveCycles uint64
	// OutsideCycles is the same trace with regular (2,000-cycle) faults.
	OutsideCycles uint64
	// Slowdown is their ratio (the paper observed ≈46x for its scan).
	Slowdown float64
	// EnclaveFaultCost and RegularFaultCost echo the cost model.
	EnclaveFaultCost uint64
	RegularFaultCost uint64
}

// Motivation measures the enclave-paging slowdown on the microbenchmark.
func Motivation(r *Runner) (MotivationResult, error) {
	var out MotivationResult
	w, err := mustWorkload("microbenchmark")
	if err != nil {
		return out, err
	}
	tr := r.Trace(w, workload.Ref)
	res, err := sim.Run(tr, sim.Config{
		Scheme:       sim.Baseline,
		EPCPages:     r.p.EPCPages,
		ELRangePages: w.ELRangePages(),
	})
	if err != nil {
		return out, err
	}
	out.EnclaveCycles = res.Cycles

	// Outside the enclave the same faults cost RegularFault cycles and
	// there is no AEX/ERESUME or load channel: compute + hits + faults.
	cm := mem.DefaultCostModel()
	var outside uint64
	faults := res.Kernel.DemandFaults
	for _, a := range tr {
		outside += a.Compute + cm.Hit
	}
	outside += faults * cm.RegularFault
	out.OutsideCycles = outside
	if outside > 0 {
		out.Slowdown = float64(res.Cycles) / float64(outside)
	}
	out.EnclaveFaultCost = cm.FaultCost()
	out.RegularFaultCost = cm.RegularFault
	return out, nil
}

// String renders the motivation numbers.
func (m MotivationResult) String() string {
	return fmt.Sprintf(
		"Motivation: sequential scan, enclave vs outside\n"+
			"enclave fault cost:  %d cycles\n"+
			"regular fault cost:  %d cycles\n"+
			"enclave run:         %d cycles\n"+
			"outside run:         %d cycles\n"+
			"slowdown:            %.1fx\n",
		m.EnclaveFaultCost, m.RegularFaultCost,
		m.EnclaveCycles, m.OutsideCycles, m.Slowdown)
}
