package channel

import (
	"testing"

	"sgxpreload/internal/mem"
)

func TestNewGroupSharesServer(t *testing.T) {
	chs := NewGroup(2)
	a, b := chs[0], chs[1]
	// A transfer begun on a occupies b too.
	a.Begin(1, 0, 100, false, 0)
	if b.Idle() {
		t.Fatal("shared server: b idle while a is transferring")
	}
	if b.InflightPage() != 1 {
		t.Fatalf("b sees inflight %d, want 1", b.InflightPage())
	}
	if b.BusyUntil() != 100 {
		t.Fatalf("b BusyUntil = %d, want 100", b.BusyUntil())
	}
	// b can complete a's transfer (any kernel retires completions).
	ld := b.CompleteInflight()
	if ld.Page != 1 || !a.Idle() {
		t.Fatalf("cross-channel completion broken: %+v, a idle %v", ld, a.Idle())
	}
	// Begin on b must respect a's busy-until.
	b.Begin(2, 100, 50, false, 0)
	if a.BusyUntil() != 150 {
		t.Fatalf("a BusyUntil = %d, want 150", a.BusyUntil())
	}
	b.CompleteInflight()
	if a.Started() != 2 || b.Started() != 2 {
		t.Fatalf("Started() not shared: %d, %d", a.Started(), b.Started())
	}
}

func TestNewGroupQueuesArePrivate(t *testing.T) {
	chs := NewGroup(2)
	a, b := chs[0], chs[1]
	a.QueueBatch([]mem.PageID{5}, 0, 32)
	if b.PendingLen() != 0 {
		t.Fatal("pending queue leaked across channels")
	}
	if a.PendingLen() != 1 {
		t.Fatalf("a pending = %d, want 1", a.PendingLen())
	}
	if b.PendingContains(5) {
		t.Fatal("b sees a's pending request")
	}
}
