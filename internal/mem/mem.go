// Package mem defines the leaf types shared by every layer of the SGX
// preloading simulator: page and site identifiers, memory-access records,
// and the cycle cost model published in the paper.
//
// The simulator works at page granularity because that is all SGX exposes
// to the untrusted OS: on an enclave page fault the bottom 12 bits of the
// faulting address are cleared by hardware, so the fault history — the only
// dynamic signal DFP can use — is a sequence of page numbers.
package mem

import "fmt"

// PageSize is the size of an EPC page in bytes (4 KiB, as on real SGX
// hardware). It is fixed: the SGX paging instructions operate on 4 KiB
// granules only.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageID identifies a virtual page inside the enclave linear address range
// (ELRANGE). Page 0 is the first page of the enclave heap region.
type PageID uint64

// PageOf returns the page containing the given enclave-relative byte
// address.
func PageOf(addr uint64) PageID { return PageID(addr >> PageShift) }

// Addr returns the first byte address of the page.
func (p PageID) Addr() uint64 { return uint64(p) << PageShift }

// NoPage is a sentinel meaning "no page". It is the zero value's
// complement so that the zero PageID remains a valid page.
const NoPage = PageID(1<<64 - 1)

// SiteID identifies a static memory-access site in the program — the
// simulator's stand-in for a (source file, line, column) triple produced by
// the paper's LLVM instrumentation pass. Two dynamic accesses share a
// SiteID iff they were issued by the same static instruction.
type SiteID uint32

// NoSite marks accesses that are not attributable to an instrumentable
// source site (e.g. runtime or library internals).
const NoSite = SiteID(0)

// Access is one dynamic memory access at page granularity, the unit of
// work consumed by the simulation engine.
type Access struct {
	// Site is the static access site issuing this access.
	Site SiteID
	// Page is the enclave virtual page touched.
	Page PageID
	// Compute is the number of cycles of enclave computation that precede
	// this access (time since the previous access during which the CPU is
	// busy and the load channel may run ahead).
	Compute uint64
	// Write records whether the access is a store. The paging protocol
	// treats loads and stores identically, but the trace tooling reports
	// the mix.
	Write bool
	// Prefetch marks an oracle-inserted early preload notification rather
	// than a real access: the thread checks the bitmap and, if the page
	// is absent, posts an asynchronous load request and continues without
	// waiting. Used by the eager-SIP ablation to quantify the latency-
	// hiding headroom the paper's §3.2 discusses (its Figure 4): the
	// conservative SIP prototype notifies right before the access because
	// no real code region is long enough to hide the 44k-cycle load.
	Prefetch bool
}

// CostModel holds the cycle costs of the SGX paging protocol. The defaults
// are the values the paper reports for a Xeon E3-1240v5 after the
// CVE-2019-0117 microcode update (its §2): AEX ≈ 10,000, ELDU/ELDB page
// load ≈ 44,000, ERESUME ≈ 10,000, for a total enclave fault cost of
// ≈ 64,000 cycles, versus ≈ 2,000 cycles for a regular OS page fault.
type CostModel struct {
	// AEX is the asynchronous enclave exit cost paid when a fault forces
	// the thread out of the enclave.
	AEX uint64
	// Load is the ELDU/ELDB cost of moving one page between non-EPC memory
	// and the EPC. Loads are serialized on a single channel and are
	// non-preemptible once started.
	Load uint64
	// Eresume is the cost of re-entering the enclave after the fault is
	// serviced.
	Eresume uint64
	// Evict is the incremental EWB cost of writing back a victim page when
	// the EPC is full. The paper folds eviction into its 60k–64k fault
	// range; the default keeps the total within that band.
	Evict uint64
	// RegularFault is the cost of a page fault outside the enclave, used
	// only by the motivation experiment.
	RegularFault uint64
	// PreloadExtra is the additional channel occupancy of a speculative
	// (preloaded) page transfer over a demand transfer: the preload worker
	// thread's wakeup, driver locking, and EPC allocation run off the hot
	// fault path. It is the friction that keeps DFP's measured gain on a
	// fault-dominated stream (the paper's microbenchmark, +18.6%) below
	// the protocol-level bound of Figure 2.
	PreloadExtra uint64
	// Notify is the cost of a SIP preload notification: writing the request
	// to the shared memory mailbox and waking the kernel preload thread.
	Notify uint64
	// BitmapCheck is the cost of the SIP BIT_MAP_CHECK executed before
	// every instrumented access.
	BitmapCheck uint64
	// Hit is the cost of an access whose page is resident (TLB + cache
	// effects folded into one constant).
	Hit uint64
}

// DefaultCostModel returns the paper's published costs.
func DefaultCostModel() CostModel {
	return CostModel{
		AEX:          10000,
		Load:         44000,
		Eresume:      10000,
		Evict:        4000,
		RegularFault: 2000,
		PreloadExtra: 10000,
		Notify:       1800,
		BitmapCheck:  400,
		Hit:          4,
	}
}

// FaultCost is the full cost of an un-preloaded enclave page fault
// (excluding eviction): AEX + Load + Eresume.
func (c CostModel) FaultCost() uint64 { return c.AEX + c.Load + c.Eresume }

// Validate reports whether the model is usable by the engine.
func (c CostModel) Validate() error {
	if c.Load == 0 {
		return fmt.Errorf("mem: cost model: Load must be positive")
	}
	if c.Hit == 0 {
		return fmt.Errorf("mem: cost model: Hit must be positive")
	}
	return nil
}
