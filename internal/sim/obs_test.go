package sim

import (
	"os"
	"strings"
	"testing"
	"time"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/workload"
)

// mixedTrace interleaves a sequential sweep with a strided re-visit so a
// run produces faults, preloads, in-window aborts, and evictions.
func mixedTrace(pages int) []mem.Access {
	var out []mem.Access
	for i := 0; i < pages; i++ {
		out = append(out, mem.Access{Site: 1, Page: mem.PageID(i), Compute: 500})
		if i%7 == 0 {
			out = append(out, mem.Access{Site: 2, Page: mem.PageID((i * 13) % pages), Compute: 500})
		}
	}
	return out
}

// The hook must only observe: attaching a recorder may not change any
// simulated outcome.
func TestHookDoesNotPerturbRun(t *testing.T) {
	trace := mixedTrace(2000)
	for _, scheme := range []Scheme{Baseline, DFP, DFPStop} {
		c := cfg(scheme)
		plain, err := Run(trace, c)
		if err != nil {
			t.Fatal(err)
		}
		c.Hook = obs.NewRecorder()
		hooked, err := Run(trace, c)
		if err != nil {
			t.Fatal(err)
		}
		if plain != hooked {
			t.Errorf("%s: result changed under observation:\n  plain  %+v\n  hooked %+v",
				scheme, plain, hooked)
		}
	}
}

// Two hooked runs of one configuration must record byte-identical
// timelines.
func TestEventStreamDeterministic(t *testing.T) {
	trace := mixedTrace(2000)
	export := func() string {
		c := cfg(DFPStop)
		rec := obs.NewRecorder()
		c.Hook = rec
		if _, err := Run(trace, c); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rec.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := export(), export()
	if a == "" || a != b {
		t.Fatalf("event streams differ (lengths %d vs %d)", len(a), len(b))
	}
}

// The recorded timeline must agree with the run's counters, and the
// DFP-stop trip event must carry the exact cycle the Result reports.
func TestEventsMatchResultCounters(t *testing.T) {
	w, err := workload.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := Run(w.Generate(workload.Ref), Config{
		Scheme:       DFPStop,
		EPCPages:     2048,
		ELRangePages: w.ELRangePages(),
		Hook:         rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Kernel.DFPStopped {
		t.Fatal("deepsjeng under DFP-stop did not trip the safety valve")
	}
	if got := obs.DFPStopAt(rec.Events()); got != res.Kernel.DFPStopCycle {
		t.Errorf("DFP-stop event at cycle %d, Result says %d", got, res.Kernel.DFPStopCycle)
	}
	counts := map[obs.Kind]uint64{}
	for _, e := range rec.Events() {
		counts[e.Kind]++
	}
	faults := res.Kernel.DemandFaults + res.Kernel.PresentOnArrival +
		res.Kernel.InflightHits + res.Kernel.InWindowAborts
	if counts[obs.KindFaultBegin] != faults || counts[obs.KindFaultEnd] != faults {
		t.Errorf("%d begin / %d end events, Result counts %d faults",
			counts[obs.KindFaultBegin], counts[obs.KindFaultEnd], faults)
	}
	if counts[obs.KindPreloadQueue] != res.Kernel.PreloadsQueued {
		t.Errorf("%d queue events, Result counts %d", counts[obs.KindPreloadQueue], res.Kernel.PreloadsQueued)
	}
	if counts[obs.KindEvict] != res.Kernel.Evictions {
		t.Errorf("%d evict events, Result counts %d", counts[obs.KindEvict], res.Kernel.Evictions)
	}
	if counts[obs.KindScan] != res.Kernel.Scans {
		t.Errorf("%d scan events, Result counts %d", counts[obs.KindScan], res.Kernel.Scans)
	}
	if counts[obs.KindDFPStop] != 1 {
		t.Errorf("%d stop events, want exactly 1", counts[obs.KindDFPStop])
	}
	// Fault-end events carry the protocol latency; their sum is bounded
	// by the run's fault-path time (demand faults pay AEX + wait +
	// ERESUME, the classes that skip parts of it pay less).
	h := obs.FaultLatencies(rec.Events(), obs.DefaultLatencyBounds())
	if h.Total != faults {
		t.Errorf("histogram over %d faults, want %d", h.Total, faults)
	}
	if h.Sum == 0 || h.Sum > res.FaultCycles()+res.Kernel.NotifyWaitCycles {
		t.Errorf("summed fault latency %d vs fault-path cycles %d", h.Sum, res.FaultCycles())
	}
}

// TestHookOverheadGuard bounds the hook plumbing's cost: a no-op-hook
// run must stay within 15% of a nil-hook run. The budget is a share of
// the engine's own hot path, so it tightens in absolute terms whenever
// the engine speeds up: the O(1) deque/page-table work cut the nil-hook
// run by ~40% while leaving per-event emission cost (struct build +
// interface call) unchanged, which is what moved the ratio from the ~2%
// measured on the pre-optimization engine. Wall-clock measurement is
// noisy, so the guard only runs when SGXSIM_HOOKGUARD=1 (make
// verify-obs sets it).
func TestHookOverheadGuard(t *testing.T) {
	if os.Getenv("SGXSIM_HOOKGUARD") != "1" {
		t.Skip("set SGXSIM_HOOKGUARD=1 to measure disabled-hook overhead")
	}
	trace := mixedTrace(60000)
	guardCfg := func() Config {
		return Config{Scheme: DFPStop, EPCPages: 2048, ELRangePages: 65536}
	}
	measure := func(c Config) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, err := Run(trace, c); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	nilHook := measure(guardCfg())
	c := guardCfg()
	c.Hook = nopHook{}
	withHook := measure(c)
	overhead := float64(withHook-nilHook) / float64(nilHook)
	t.Logf("nil hook %v, no-op hook %v: %+.2f%% overhead", nilHook, withHook, 100*overhead)
	if overhead > 0.15 {
		t.Errorf("hook plumbing costs %+.2f%% with a no-op hook, budget is 15%%", 100*overhead)
	}
}

type nopHook struct{}

func (nopHook) Emit(obs.Event) {}
