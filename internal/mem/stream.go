package mem

// Stream is a pull-based source of accesses: the incremental engine's
// input contract. Next returns the next access of the trace and true, or
// a zero Access and false when the trace is exhausted. A Stream may be
// unbounded — the engine only ever looks one access ahead, so a stream
// that never returns false drives an arbitrarily long run in O(1)
// memory.
//
// Implementations must be deterministic and single-consumer: the engine
// pulls from exactly one goroutine and never rewinds.
type Stream interface {
	Next() (Access, bool)
}

// Closer is optionally implemented by streams that hold resources (the
// workload package's generator coroutines do). The engine closes such
// streams when a run ends early; draining a stream to exhaustion
// releases it without an explicit Close.
type Closer interface {
	Close()
}

// StreamFunc adapts an ordinary function to the Stream interface.
type StreamFunc func() (Access, bool)

// Next calls f.
func (f StreamFunc) Next() (Access, bool) { return f() }

// sliceStream replays a materialized trace; the adapter that keeps every
// []Access caller working against the streaming engine.
type sliceStream struct {
	trace []Access
	i     int
}

// SliceStream returns a Stream replaying trace in order. Next never
// allocates, so a slice-fed engine run costs exactly what the
// materialized engines cost.
func SliceStream(trace []Access) Stream { return &sliceStream{trace: trace} }

func (s *sliceStream) Next() (Access, bool) {
	if s.i >= len(s.trace) {
		return Access{}, false
	}
	a := s.trace[s.i]
	s.i++
	return a, true
}

// Collect drains s into a slice — the inverse adapter, for tooling that
// needs the whole trace (profilers, trace files, tests).
func Collect(s Stream) []Access {
	var out []Access
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// Limit returns a Stream that passes through at most n accesses of s —
// the standard way to bound an unbounded generator (a CLI access cap, a
// smoke test's trace length).
func Limit(s Stream, n uint64) Stream {
	return &limitStream{src: s, left: n}
}

type limitStream struct {
	src  Stream
	left uint64
}

func (l *limitStream) Next() (Access, bool) {
	if l.left == 0 {
		return Access{}, false
	}
	a, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Access{}, false
	}
	l.left--
	return a, ok
}

// Close forwards to the underlying stream when it holds resources.
func (l *limitStream) Close() {
	if c, ok := l.src.(Closer); ok {
		c.Close()
	}
}
