package replay_test

import (
	"fmt"
	"strings"

	"sgxpreload/internal/obs"
	"sgxpreload/internal/replay"
)

// Example round-trips a recorded timeline through the JSONL trace format
// and shows that the derived Report survives bit-for-bit: replaying a
// trace file is equivalent to having watched the run live.
func Example() {
	// A run records its event timeline (here, two synthetic events; in
	// the engine, sim.Config.Hook = rec does this).
	rec := obs.NewRecorder()
	rec.Emit(obs.Event{T: 100, Kind: obs.KindFaultBegin, Page: 7})
	rec.Emit(obs.Event{T: 64_100, Kind: obs.KindFaultEnd, Page: 7, V1: 64_000})

	// Export the trace (this is what sgxsim -trace writes) ...
	var trace strings.Builder
	if err := rec.WriteJSONL(&trace); err != nil {
		panic(err)
	}

	// ... and load it back without re-simulating.
	events, err := replay.ReadJSONL(strings.NewReader(trace.String()))
	if err != nil {
		panic(err)
	}

	live := obs.BuildReport(rec.Events())
	replayed := obs.BuildReport(events)
	fmt.Println("events:", len(events))
	fmt.Println("report identical:", live.String() == replayed.String())
	// Output:
	// events: 2
	// report identical: true
}

// ExampleCompare diffs two timelines that diverge at their second event,
// the way sgxsim -diff compares a DFP trace against a DFP-stop trace.
func ExampleCompare() {
	a := []obs.Event{
		{T: 100, Kind: obs.KindFaultBegin, Page: 7},
		{T: 64_100, Kind: obs.KindFaultEnd, Page: 7, V1: 64_000},
	}
	b := []obs.Event{
		{T: 100, Kind: obs.KindFaultBegin, Page: 7},
		{T: 25_100, Kind: obs.KindFaultEnd, Page: 7, V1: 25_000},
	}
	d := replay.Compare(a, b)
	fmt.Println("identical:", d.Identical)
	fmt.Println("first divergence at event", d.First.Index)
	for _, dl := range d.Report {
		if dl.Name == "fault_latency_mean" {
			fmt.Printf("%s: %.0f vs %.0f\n", dl.Name, dl.A, dl.B)
		}
	}
	// Output:
	// identical: false
	// first divergence at event 1
	// fault_latency_mean: 64000 vs 25000
}
