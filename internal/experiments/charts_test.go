package experiments

import (
	"strings"
	"testing"
)

func TestChartsRender(t *testing.T) {
	charters := map[string]func() (Charter, error){
		"fig3": func() (Charter, error) { return Figure3(sharedRunner) },
		"fig6": func() (Charter, error) { return Figure6(sharedRunner) },
		"fig7": func() (Charter, error) { return Figure7(sharedRunner) },
		"fig8": func() (Charter, error) { return Figure8(sharedRunner) },
		"fig9": func() (Charter, error) { return Figure9(sharedRunner) },
		"fig10": func() (Charter, error) {
			f, err := Figure10(sharedRunner)
			return f, err
		},
		"fig12": func() (Charter, error) { return Figure12(sharedRunner) },
		"fig13": func() (Charter, error) { return Figure13(sharedRunner) },
	}
	for id, mk := range charters {
		t.Run(id, func(t *testing.T) {
			c, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			charts := c.Charts()
			if len(charts) == 0 {
				t.Fatal("no charts")
			}
			for _, chart := range charts {
				svg := chart.SVG()
				if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
					t.Errorf("%s: malformed SVG envelope", chart.Title)
				}
				if !strings.Contains(svg, "Figure") {
					t.Errorf("%s: missing figure title", chart.Title)
				}
				if len(svg) < 500 {
					t.Errorf("%s: suspiciously small SVG (%d bytes)", chart.Title, len(svg))
				}
			}
		})
	}
}

// TestStringersRender smoke-tests every report renderer: they feed both
// the CLI and EXPERIMENTS.md, so a panic or empty output is a release
// blocker even though the content is asserted elsewhere.
func TestStringersRender(t *testing.T) {
	type stringer interface{ String() string }
	runs := map[string]func() (stringer, error){
		"motivation": func() (stringer, error) { return Motivation(sharedRunner) },
		"fig3":       func() (stringer, error) { return Figure3(sharedRunner) },
		"fig6":       func() (stringer, error) { return Figure6(sharedRunner) },
		"fig7":       func() (stringer, error) { return Figure7(sharedRunner) },
		"fig8":       func() (stringer, error) { return Figure8(sharedRunner) },
		"fig9":       func() (stringer, error) { return Figure9(sharedRunner) },
		"fig10":      func() (stringer, error) { return Figure10(sharedRunner) },
		"fig11":      func() (stringer, error) { return Figure11(sharedRunner) },
		"fig12":      func() (stringer, error) { return Figure12(sharedRunner) },
		"fig13":      func() (stringer, error) { return Figure13(sharedRunner) },
		"table1":     func() (stringer, error) { return Table1(sharedRunner) },
		"table2":     func() (stringer, error) { return Table2(sharedRunner) },
		"summary":    func() (stringer, error) { return Summary(sharedRunner) },
		"epc":        func() (stringer, error) { return EPCSweep(sharedRunner) },
		"predictor":  func() (stringer, error) { return PredictorAblation(sharedRunner) },
		"eviction":   func() (stringer, error) { return EvictionAblation(sharedRunner) },
		"loadcost":   func() (stringer, error) { return CostSensitivity(sharedRunner) },
		"shared":     func() (stringer, error) { return SharedEPC(sharedRunner) },
		"backward":   func() (stringer, error) { return BackwardStreams(sharedRunner) },
		"reclaim":    func() (stringer, error) { return ReclaimAblation(sharedRunner) },
		"eager":      func() (stringer, error) { return EagerSIP(sharedRunner) },
	}
	for id, mk := range runs {
		t.Run(id, func(t *testing.T) {
			r, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			out := r.String()
			if len(out) < 40 || !strings.Contains(out, "\n") {
				t.Errorf("report too small:\n%s", out)
			}
		})
	}
}
