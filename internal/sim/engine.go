package sim

import (
	"fmt"

	"sgxpreload/internal/channel"
	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/kernel"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sip"
)

// This file is the repository's one engine loop. Run, RunStream, and
// RunShared are all wrappers over Engine: a single-enclave run is the
// N = 1 case of the multi-enclave co-simulation, so every scheme knob —
// predictor strategy, DFP tunables, SIP selection, background reclaim —
// is wired exactly once (buildState) and is therefore available under
// EPC contention by construction.
//
// The engine is incremental: New builds it, each Step executes one
// access of the enclave whose virtual clock is smallest, and Results can
// be read at any point (a live metrics endpoint reads them mid-run).
// Input arrives through pull-based mem.Streams, and the engine looks
// exactly one access ahead per enclave, so a run's memory footprint is
// independent of trace length — unbounded generators drive unbounded
// runs in O(1) memory.

// Engine co-simulates N >= 1 enclaves round-robin over one shared EPC
// and one load-channel group. Construct with New (fixed cohort) or
// NewDynamic (enclaves join mid-run via Admit), drive with Step.
type Engine struct {
	costs  mem.CostModel
	states []*enclaveState
	// sched is the event heap over runnable enclaves, keyed on
	// clock + nextAccess.Compute with the seed's strict first-min
	// tie-break (see sched.go). Step is O(log E) instead of the old
	// linear argmin's O(E).
	sched eventHeap

	// Admission machinery. cfg is the resolved platform configuration
	// (costs normalized, hook concrete); shared is the one physical EPC
	// (nil until a dynamic engine admits its first enclave); chan0 is a
	// member of the host's channel group, kept to spawn siblings; total
	// is the shared page-space extent, the next admission's base offset.
	cfg    SharedConfig
	shared *epc.EPC
	chan0  *channel.Channel
	total  uint64
	// arb is the EPC quota arbiter shared by every kernel of this
	// domain; nil under the Global policy (the default), in which case
	// nothing about victim selection changes.
	arb *arbiter.Arbiter
}

// enclaveState is the per-enclave execution cursor.
type enclaveState struct {
	enc    Enclave
	src    mem.Stream
	kern   *kernel.Kernel
	bitmap *epc.Bitmap
	sel    *sip.Selection // nil unless the scheme uses SIP
	base   mem.PageID     // offset of the enclave's range in shared space

	next mem.Access // one-access lookahead (the scheduler needs Compute)
	has  bool
	seen uint64 // accesses pulled so far, for error positions

	t   uint64 // enclave-local virtual clock
	res Result
}

// New builds an engine over the enclaves' streams (or materialized
// traces) and the shared platform configuration. Enclaves advance in
// global virtual-time order — on every Step the enclave with the
// smallest clock executes its next access — so channel serialization and
// evictions interleave exactly as a time-sliced platform would
// interleave them.
func New(enclaves []Enclave, cfg SharedConfig) (*Engine, error) {
	if len(enclaves) == 0 {
		return nil, fmt.Errorf("sim: engine needs at least one enclave")
	}
	return newEngine(enclaves, cfg)
}

// NewDynamic builds an engine with no enclaves yet: the fleet layer's
// host shape, where enclaves launch mid-run via Admit. A dynamic engine
// admitting its whole cohort at time zero is byte-identical to New over
// that cohort — both go through the same admission wiring in the same
// order.
func NewDynamic(cfg SharedConfig) (*Engine, error) {
	// The static path validates capacity when it creates the EPC; a
	// dynamic engine defers EPC creation to the first admission, so
	// fail fast here instead of on an arrival mid-run.
	if cfg.EPCPages <= 0 {
		return nil, fmt.Errorf("sim: EPCPages must be positive, got %d", cfg.EPCPages)
	}
	return newEngine(nil, cfg)
}

// newEngine is the shared construction path: normalize the platform
// configuration, then admit the initial cohort (possibly empty) at time
// zero.
func newEngine(enclaves []Enclave, cfg SharedConfig) (*Engine, error) {
	if cfg.HookFactory != nil {
		closeEnclaveStreams(enclaves)
		return nil, fmt.Errorf("sim: SharedConfig.HookFactory is resolved per domain by RunSharded and the fleet layer; an engine takes a concrete Hook")
	}
	if cfg.Costs == (mem.CostModel{}) {
		cfg.Costs = mem.DefaultCostModel()
	}
	if err := cfg.Costs.Validate(); err != nil {
		closeEnclaveStreams(enclaves)
		return nil, err
	}
	eng := &Engine{costs: cfg.Costs, cfg: cfg}
	if cfg.Quota != arbiter.Global {
		arb, err := arbiter.New(cfg.Quota, cfg.EPCPages)
		if err != nil {
			closeEnclaveStreams(enclaves)
			return nil, err
		}
		eng.arb = arb
	}
	eng.sched.init(len(enclaves))
	for i, e := range enclaves {
		if err := eng.Admit(e, 0); err != nil {
			// Release every stream: the built states via Close, and the
			// enclaves past the failing one — whose states never
			// existed — directly (Admit closed the failing enclave's).
			eng.Close()
			closeEnclaveStreams(enclaves[i+1:])
			return nil, err
		}
	}
	return eng, nil
}

// Admit adds an enclave to the engine with its virtual clock starting
// at now — the launch primitive behind dynamic fleet admission. The
// enclave's pages append to the shared space (the EPC's page table and
// presence bitmap grow in place; resident pages, access/preload bits,
// and the CLOCK hand are untouched), its channel joins the host's
// group, and its first access is scheduled at now plus its compute.
// Callers must not pass a now earlier than an already-executed event;
// the fleet front door admits arrivals in timestamp order, which
// guarantees that. On error the enclave's stream is closed and the
// engine remains usable — except after a saturation error, which
// poisons the schedule like a Step error does.
func (e *Engine) Admit(enc Enclave, now uint64) error {
	closeErr := func(err error) error {
		if c, ok := enc.Stream.(mem.Closer); ok {
			c.Close()
		}
		return err
	}
	if enc.Pages == 0 {
		return closeErr(fmt.Errorf("sim: enclave %d (%s) declares zero pages", len(e.states), enc.Name))
	}
	newTotal := e.total + enc.Pages
	if newTotal < e.total {
		return closeErr(fmt.Errorf("sim: enclave %s overflows the shared page space (%d + %d pages)", enc.Name, e.total, enc.Pages))
	}
	if e.shared == nil {
		shared, err := epc.NewWithPolicy(e.cfg.EPCPages, newTotal, e.cfg.EvictPolicy)
		if err != nil {
			return closeErr(err)
		}
		e.shared = shared
	} else if err := e.shared.Grow(newTotal); err != nil {
		return closeErr(err)
	}
	var ch *channel.Channel
	if e.chan0 == nil {
		ch = channel.New()
		e.chan0 = ch
	} else {
		ch = e.chan0.Sibling()
	}
	st, err := buildState(enc, e.cfg, e.shared, ch, newTotal, mem.PageID(e.total), e.arb, len(e.states))
	if err != nil {
		return closeErr(err)
	}
	// Register the enclave's page range with the EPC's owner tracking —
	// always, arbitrated or not: with quotas off the stamps are inert
	// bookkeeping, and the reporting layers read the per-owner resident
	// counts either way. Registration happens only after buildState
	// succeeded, so a failed admission leaves no phantom owner range and
	// the engine stays usable.
	if err := e.shared.AddOwner(newTotal); err != nil {
		return closeErr(err)
	}
	st.t = now
	st.advance()
	idx := len(e.states)
	e.states = append(e.states, st)
	e.total = newTotal
	if e.arb != nil {
		// Quotas recompute over the whole cohort at every admission
		// (static shares shrink, proportional shares re-split). Emit the
		// new vector so arbitrated traces carry the partition from the
		// first enclave on; with the default Global policy no arbiter
		// exists and traces are byte-identical to earlier revisions.
		e.arb.AddEnclave(enc.Pages)
		if e.cfg.Hook != nil {
			for i := 0; i < e.arb.N(); i++ {
				e.cfg.Hook.Emit(obs.Event{T: now, Kind: obs.KindQuotaRebalance,
					Page: mem.NoPage, Batch: uint64(i), V1: uint64(e.arb.Quota(i)),
					V2: uint64(e.shared.OwnerResident(i))})
			}
		}
	}
	if st.has {
		key := now + st.next.Compute
		if key < now {
			return fmt.Errorf("sim: enclave %s scheduling key saturated uint64 at admission (launch %d + compute %d)",
				enc.Name, now, st.next.Compute)
		}
		e.sched.push(int32(idx), key)
	}
	return nil
}

// closeEnclaveStreams releases the closeable streams of enclaves whose
// state was never built — the construction-failure counterpart of
// Engine.Close. Materialized traces wrap into slice streams that hold
// no resources, so only caller-provided Streams matter here.
func closeEnclaveStreams(enclaves []Enclave) {
	for _, e := range enclaves {
		if c, ok := e.Stream.(mem.Closer); ok {
			c.Close()
		}
	}
}

// buildState wires one enclave: its kernel over the shared EPC and
// channel group, and its scheme configuration. This is the only place in
// the package where a scheme is turned into kernel machinery.
func buildState(e Enclave, cfg SharedConfig, shared *epc.EPC, ch *channel.Channel, total uint64, base mem.PageID, arb *arbiter.Arbiter, owner int) (*enclaveState, error) {
	kcfg := kernel.Config{
		Costs:        cfg.Costs,
		EPCPages:     cfg.EPCPages,
		ELRangePages: total,
		ScanPeriod:   cfg.ScanPeriod,
		MaxPending:   cfg.MaxPending,
		RangeLo:      base,
		RangeHi:      base + mem.PageID(e.Pages),
		Hook:         cfg.Hook,
		Arbiter:      arb,
		Owner:        owner,

		BackgroundReclaim: e.BackgroundReclaim,
	}
	if e.Scheme.UsesDFP() {
		d := e.DFP
		if d.StreamListLen == 0 && d.LoadLength == 0 {
			d = dfp.DefaultConfig()
		}
		if e.Scheme == DFPStop || e.Scheme == Hybrid {
			d.Stop = true
		}
		if e.Predictor != "" && e.Predictor != core.KindMultiStream {
			pred, err := core.NewPredictor(e.Predictor, d)
			if err != nil {
				return nil, fmt.Errorf("sim: enclave %s: %w", e.Name, err)
			}
			kcfg.Predictor = pred
		} else {
			kcfg.DFP = &d
		}
	}
	k, err := kernel.NewShared(kcfg, shared, ch)
	if err != nil {
		return nil, fmt.Errorf("sim: enclave %s: %w", e.Name, err)
	}
	st := &enclaveState{
		enc:    e,
		src:    e.source(),
		kern:   k,
		bitmap: shared.PresenceBitmap(),
		base:   base,
		res:    Result{Scheme: e.Scheme},
	}
	if e.Scheme.UsesSIP() {
		st.sel = e.Selection
	}
	return st, nil
}

// source resolves the enclave's input: a materialized Trace wraps into a
// slice stream, otherwise the Stream is used directly.
func (e Enclave) source() mem.Stream {
	if e.Trace != nil || e.Stream == nil {
		return mem.SliceStream(e.Trace)
	}
	return e.Stream
}

// advance pulls the enclave's next access into the lookahead slot.
func (st *enclaveState) advance() {
	st.next, st.has = st.src.Next()
}

// Step executes one access: the enclave with the smallest virtual clock
// (its current time plus the compute preceding its next access) runs —
// the event heap's root, popped or re-keyed in O(log E). It returns
// false when every stream is exhausted; the error reports an access
// outside its enclave's declared range, or a virtual clock saturating
// uint64 (see the saturation note below). After a non-nil error the
// engine must be abandoned (Close it); its schedule is no longer
// meaningful.
//
// Saturation: an unbounded run (-stream -repeat 0) eventually pushes a
// clock toward 2^64. A wrapped scheduling key would silently corrupt
// the heap order — the enclave would look *earliest* instead of latest
// — so the engine detects the wrap and errors out instead of clamping:
// clamping would keep the run alive but make its schedule, and
// therefore every downstream artifact, quietly diverge from the
// infinite-precision schedule. At the default cost model, 2^64 cycles
// is centuries of simulated time; hitting the error means the run
// outlived the representation, not that the engine mis-scheduled.
func (e *Engine) Step() (bool, error) {
	if e.sched.len() == 0 {
		return false, nil
	}
	st := e.states[e.sched.min()]
	// The root's key is st.t + st.next.Compute and is known not to wrap;
	// a step advances the clock past that key (compute plus protocol
	// costs), so a post-step clock below it means the clock wrapped
	// inside the step's fault service.
	oldKey := e.sched.hKey[0]
	if err := st.step(e.costs); err != nil {
		return false, err
	}
	if st.t < oldKey {
		return false, fmt.Errorf("sim: enclave %s virtual clock saturated uint64 at access %d",
			st.enc.Name, st.seen-1)
	}
	st.advance()
	if !st.has {
		e.sched.popMin()
		return true, nil
	}
	key := st.t + st.next.Compute
	if key < st.t {
		return false, fmt.Errorf("sim: enclave %s scheduling key saturated uint64 at access %d (clock %d + compute %d)",
			st.enc.Name, st.seen, st.t, st.next.Compute)
	}
	e.sched.updateMin(key)
	return true, nil
}

// Done reports whether every enclave's stream is exhausted.
func (e *Engine) Done() bool { return e.sched.len() == 0 }

// NextKey returns the virtual time of the engine's next scheduled event
// (the clock-plus-compute key of the earliest runnable enclave) and
// whether any enclave is still runnable. The fleet layer compares it
// against arrival timestamps to interleave host execution with the
// front door on one shared clock.
func (e *Engine) NextKey() (uint64, bool) {
	if e.sched.len() == 0 {
		return 0, false
	}
	return e.sched.hKey[0], true
}

// Running returns the number of enclaves whose streams are not yet
// exhausted — the load signal least-loaded placement reads.
func (e *Engine) Running() int { return e.sched.len() }

// EPCResident returns the occupied frame count of the shared EPC (0 for
// a dynamic engine before its first admission) — the occupancy signal
// pressure-aware placement reads.
func (e *Engine) EPCResident() int {
	if e.shared == nil {
		return 0
	}
	return e.shared.Resident()
}

// QuotaPolicy returns the engine's per-enclave EPC quota policy.
func (e *Engine) QuotaPolicy() arbiter.Policy { return e.cfg.Quota }

// OwnerResident returns enclave i's resident frame count in the shared
// EPC (0 before the enclave's first load) — maintained whether or not a
// quota policy is active.
func (e *Engine) OwnerResident(i int) int {
	if e.shared == nil {
		return 0
	}
	return e.shared.OwnerResident(i)
}

// Quota returns enclave i's current frame quota, or 0 when the Global
// policy (no quotas) is active.
func (e *Engine) Quota(i int) int {
	if e.arb == nil {
		return 0
	}
	return e.arb.Quota(i)
}

// RunUntil steps the engine while its next event is at or before t,
// stopping when every remaining event is strictly later (or every
// stream is exhausted). Like run, a stepping error closes the engine's
// streams and the engine must be abandoned.
func (e *Engine) RunUntil(t uint64) error {
	for {
		key, ok := e.NextKey()
		if !ok || key > t {
			return nil
		}
		if _, err := e.Step(); err != nil {
			e.Close()
			return err
		}
	}
}

// Drain drives the engine to completion: run exposed for drivers (the
// fleet layer) that interleave RunUntil phases before the final drain.
func (e *Engine) Drain() error { return e.run() }

// Results snapshots every enclave's outcome. It may be called mid-run —
// a live observer polls it — and again after Done; each call derives a
// fresh snapshot from the current clocks and kernel counters.
func (e *Engine) Results() []SharedResult {
	out := make([]SharedResult, len(e.states))
	for i := range e.states {
		out[i] = e.Result(i)
	}
	return out
}

// Result snapshots enclave i's outcome (see Results). It derives only
// that enclave's snapshot — no per-call allocation, no O(E) walk — so a
// scraper polling one enclave of a 10k-enclave run costs O(1).
func (e *Engine) Result(i int) SharedResult {
	st := e.states[i]
	r := st.res
	r.Cycles = st.t
	r.Kernel = st.kern.Stats()
	return SharedResult{Name: st.enc.Name, Result: r}
}

// Close releases enclave streams that hold resources (generator
// coroutines). Runs that drain to completion release them implicitly;
// Close covers abandoned engines and error paths. Safe to call twice.
func (e *Engine) Close() {
	for _, st := range e.states {
		if st == nil {
			continue
		}
		if c, ok := st.src.(mem.Closer); ok {
			c.Close()
		}
	}
}

// run drives the engine to completion.
func (e *Engine) run() error {
	for {
		more, err := e.Step()
		if err != nil {
			e.Close()
			return err
		}
		if !more {
			return nil
		}
	}
}

// step executes one access of the enclave's stream: the enclave-side
// protocol of the paper — regular accesses, oracle prefetch
// notifications, and (when SIP instruments the site) the BIT_MAP_CHECK
// followed by a preload notification instead of a fault.
func (st *enclaveState) step(costs mem.CostModel) error {
	acc := st.next
	st.seen++
	if uint64(acc.Page) >= st.enc.Pages {
		return fmt.Errorf("sim: enclave %s access %d touches page %d outside its %d pages",
			st.enc.Name, st.seen-1, acc.Page, st.enc.Pages)
	}
	page := st.base + acc.Page

	st.t += acc.Compute
	st.res.ComputeCycles += acc.Compute
	st.res.Accesses++
	st.kern.MaybeScan(st.t)
	st.kern.Sync(st.t)

	if acc.Prefetch {
		// Oracle-inserted early notification: check the bitmap, post an
		// asynchronous load if absent, continue without waiting.
		st.t += costs.BitmapCheck
		st.res.PrefetchChecks++
		if !st.bitmap.Get(uint64(page)) {
			st.t += costs.Notify
			st.kern.QueuePrefetch(st.t, page)
			st.res.PrefetchIssued++
		}
		st.res.Accesses--
		return nil
	}

	if st.sel.Instrumented(acc.Site) {
		// SIP: BIT_MAP_CHECK before the access.
		st.t += costs.BitmapCheck
		st.res.SIPChecks++
		if st.bitmap.Get(uint64(page)) {
			st.res.SIPPresent++
		} else {
			// Absent: notify the kernel preload thread and wait for the
			// load without leaving the enclave.
			st.t += costs.Notify
			st.t = st.kern.NotifyLoad(st.t, page)
		}
	}

	if st.kern.Touch(page) {
		st.res.Hits++
		st.t += costs.Hit
		return nil
	}
	st.t = st.kern.HandleFault(st.t, page)
	st.t += costs.Hit
	return nil
}
