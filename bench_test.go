package sgxpreload_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation under `go test -bench=.`. Each benchmark runs the full
// experiment and reports the headline numbers as custom metrics, so the
// bench output is itself the paper-vs-measured record:
//
//	go test -bench=. -benchmem | tee bench_output.txt
//
// Metrics are improvements in percent (positive = faster than the
// baseline, matching the paper's reporting) or normalized execution times
// (1.0 = baseline).

import (
	"testing"

	"sgxpreload/internal/experiments"
)

// benchRunner caches traces and profiles across benchmarks.
var benchRunner = experiments.NewRunner(experiments.Default())

func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.Motivation(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.Slowdown, "slowdown_x")
		b.ReportMetric(float64(m.EnclaveFaultCost), "enclave_fault_cycles")
	}
}

func BenchmarkFigure3PatternProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range f.Benchmarks {
			b.ReportMetric(row.Pattern.StreamRatio, row.Name+"_stream_ratio")
		}
	}
}

func BenchmarkFigure6StreamListLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure6(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.Best()), "best_list_len")
		for j, n := range f.Lengths {
			if n == 2 || n == 30 {
				b.ReportMetric(f.Combined[j], "combined_norm_at_"+itoa(n))
			}
		}
	}
}

func BenchmarkFigure7LoadLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure7(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for bi, name := range f.Benchmarks {
			if name == "lbm" || name == "deepsjeng" {
				b.ReportMetric(f.Norm[bi][2], name+"_norm_L4")
				b.ReportMetric(f.Norm[bi][5], name+"_norm_L32")
			}
		}
	}
}

func BenchmarkFigure8DFP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.RegularMean, "regular_mean_pct")
		b.ReportMetric(f.OverheadMeanDFP, "overhead_mean_dfp_pct")
		b.ReportMetric(f.OverheadMeanStop, "overhead_mean_stop_pct")
		for _, row := range f.Rows {
			if row.Name == "microbenchmark" || row.Name == "lbm" || row.Name == "deepsjeng" || row.Name == "roms" {
				b.ReportMetric(row.DFPImprovement, row.Name+"_dfp_pct")
			}
		}
	}
}

func BenchmarkFigure9SIPThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Best()*100, "best_threshold_pct")
	}
}

func BenchmarkFigure10SIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure10(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range f.Rows {
			b.ReportMetric(row.Improvement, row.Name+"_sip_pct")
		}
	}
}

func BenchmarkFigure11Vision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure11(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.SIFTDFPImprovement, "SIFT_dfp_pct")
		b.ReportMetric(f.MSERSIPImprovement, "MSER_sip_pct")
	}
}

func BenchmarkFigure12Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure12(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, row := range f.Rows {
			if row.Hybrid > worst {
				worst = row.Hybrid
			}
			if row.Name == "deepsjeng" {
				b.ReportMetric(row.Hybrid, "deepsjeng_hybrid_norm")
			}
		}
		b.ReportMetric(worst, "worst_hybrid_norm")
	}
}

func BenchmarkFigure13MixedBlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure13(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-f.Row.SIP), "sip_pct")
		b.ReportMetric(100*(1-f.Row.DFP), "dfp_pct")
		b.ReportMetric(100*(1-f.Row.Hybrid), "hybrid_pct")
	}
}

func BenchmarkTable1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(t.Mismatches())), "mismatches")
	}
}

func BenchmarkTable2InstrumentationPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t.Rows {
			b.ReportMetric(float64(row.Points), row.Name+"_points")
		}
	}
}

func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Summary(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range s.Rows {
			if row.Name == "deepsjeng" || row.Name == "lbm" {
				b.ReportMetric(row.DFPStop, row.Name+"_dfpstop_pct")
			}
		}
	}
}

func BenchmarkAblationEPCSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.EPCSweep(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		// lbm at the tightest and loosest EPC.
		b.ReportMetric(a.Improvement[1][0], "lbm_pct_at_1024p")
		b.ReportMetric(a.Improvement[1][len(a.EPCPages)-1], "lbm_pct_at_12288p")
	}
}

func BenchmarkAblationPredictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.PredictorAblation(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for bi, bench := range a.Benchmarks {
			if bench != "deepsjeng" {
				continue
			}
			for ki, kind := range a.Kinds {
				b.ReportMetric(a.Improvement[bi][ki], "deepsjeng_"+string(kind)+"_pct")
			}
		}
	}
}

func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.EvictionAblation(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for bi, bench := range a.Benchmarks {
			if bench == "deepsjeng" {
				for pi, pol := range a.Policies {
					b.ReportMetric(a.Norm[bi][pi], "deepsjeng_"+pol.String()+"_norm")
				}
			}
		}
	}
}

func BenchmarkAblationLoadCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.CostSensitivity(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for j, load := range a.LoadCosts {
			b.ReportMetric(a.Improvement[j], "lbm_pct_load"+itoa(int(load/1000))+"k")
		}
	}
}

func BenchmarkAblationSharedEPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.SharedEPC(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range a.Names {
			slow := float64(a.SharedCycles[j]) / float64(a.SoloCycles[j])
			b.ReportMetric(slow, name+"_contention_x")
		}
	}
}

func BenchmarkAblationBackwardStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.BackwardStreams(benchRunner)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.ForwardOnlyImprovement, "forward_only_pct")
		b.ReportMetric(a.WithBackwardImprovement, "with_backward_pct")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
