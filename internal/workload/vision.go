package workload

import (
	"math"

	"sgxpreload/internal/mem"
)

// Models of the two SD-VBS vision applications the paper evaluates
// (§5.3) plus the synthesized mixed-blood program of §5.4.
//
// Profiling in the paper uses one sample image and measurement uses other
// images from the MIT-Adobe FiveK set; here Train uses a half-size image.

// SIFT: scale-invariant feature transform. Builds a Gaussian pyramid with
// sequential sweeps over each octave — sequential-dominant, so DFP is its
// scheme (+9.5%, Figure 11) and SIP finds nothing to instrument (0 points,
// Table 2).
var Sift = register(&Workload{
	Name:           "SIFT",
	Category:       LargeRegular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 7680,
	gen: func(in Input, b *builder) {
		imagePages := uint64(4096)
		if in == Train {
			imagePages = 2048
		}
		base := uint64(0)
		for octave := 0; octave < 4; octave++ {
			octPages := imagePages >> octave
			// Two sweeps per octave: Gaussian blur, then extrema detection
			// that also writes the downsampled next octave.
			for pg := uint64(0); pg < octPages; pg++ {
				b.emit(6001+mem.SiteID(octave), mem.PageID(base+pg), 560000+b.r.Uint64n(40000))
			}
			for pg := uint64(0); pg < octPages; pg++ {
				b.emit(6011+mem.SiteID(octave), mem.PageID(base+pg), 180000+b.r.Uint64n(20000))
				if octave < 3 {
					b.emitW(6021+mem.SiteID(octave), mem.PageID(base+octPages+pg/2), 180000)
				}
			}
			base += octPages
		}
	},
})

// MSER: maximally stable extremal regions. After a raster scan of the
// image, region growing chases union-find parent pointers across a
// component forest far larger than the EPC — irregular-dominant, so SIP is
// its scheme (+3.0%, Figure 11; 54 instrumentation points in Table 2).
var Mser = register(&Workload{
	Name:           "MSER",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		genMser(in, b, 1.0)
	},
})

// genMser emits an MSER run; scale shrinks the work (mixed-blood reuses
// it for its detection phase).
func genMser(in Input, b *builder, scale float64) {
	fam := irrFamily{
		base: 6200,
		k:    70,
		coldTrain: func(j int) float64 {
			return 0.01 + 0.35*math.Pow(float64(j)/69, 1.7)
		},
		coldRef: func(j int) float64 {
			return 0.3 * (0.01 + 0.35*math.Pow(float64(j)/69, 1.7))
		},
		skew: 1.5,
	}
	// The profiling image has large uniform regions: its frontier moves in
	// long raster-like runs, so the frontier site profiles as sequential.
	// Measurement images fragment the frontier into short runs.
	bursts, runLen := int(float64(420)*scale), 3
	if in == Train {
		bursts, runLen = bursts/10, 20
	}
	pos := uint64(0)
	for bi := 0; bi < bursts; bi++ {
		for i := 0; i < runLen; i++ {
			pos = (pos + 1) % 2048
			b.emit(6101, mem.PageID(pos), 34000+b.r.Uint64n(4000))
		}
		pos = (pos + 9 + b.r.Uint64n(30)) % 2048
		// Union-find merges dominate.
		for a := 0; a < 48*runLen/3; a++ {
			fam.irrAccess(b, in, 2048, 2816, 2816, 8192, 0.18, 30000)
		}
	}
}

// MixedBlood is the §5.4 synthesized application: a sequential image scan
// (DFP territory) followed by MSER blob detection (SIP territory). The
// paper uses it to show the hybrid scheme beating either scheme alone
// (SIP +1.6%, DFP +6.0%, hybrid +7.1%, Figure 13).
var MixedBlood = register(&Workload{
	Name:           "mixed-blood",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		fam := irrFamily{
			base: 6400,
			k:    40,
			coldTrain: func(j int) float64 {
				return 0.01 + 0.3*math.Pow(float64(j)/39, 1.7)
			},
			coldRef: func(j int) float64 {
				return 0.45 * (0.01 + 0.3*math.Pow(float64(j)/39, 1.7))
			},
			skew: 1.5,
		}
		scanPages, irrAccesses := uint64(1792), 40000
		if in == Train {
			scanPages, irrAccesses = 1024, 12000
		}
		// Phase 1: sequential image scan (DFP's half).
		for pg := uint64(0); pg < scanPages; pg++ {
			b.emit(6301, mem.PageID(pg), 60000+b.r.Uint64n(8000))
		}
		// Phase 2: MSER-style blob detection (SIP's half).
		for a := 0; a < irrAccesses; a++ {
			fam.irrAccess(b, in, 2048, 2560, 2560, 8192, 0.18, 30000)
		}
	},
})
