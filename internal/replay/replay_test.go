package replay

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// allKindEvents builds a timeline containing every emitted kind with
// varied field values, including the NoPage sentinel and values past
// int64 range, so the round-trip tests cover the whole wire surface.
func allKindEvents() []obs.Event {
	var events []obs.Event
	for i, k := range obs.Kinds() {
		e := obs.Event{
			T:     uint64(i) * 1_000_003,
			Kind:  k,
			Page:  mem.PageID(i * 7),
			Batch: uint64(i),
			V1:    uint64(i) * 13,
			V2:    uint64(i % 4),
		}
		events = append(events, e)
	}
	// The writer's special cases: a background write-back burst (NoPage)
	// and a max-range value.
	events = append(events,
		obs.Event{T: 42, Kind: obs.KindEvict, Page: mem.NoPage, V1: 1},
		obs.Event{T: 1<<64 - 1, Kind: obs.KindScan, V1: 1<<64 - 1, V2: 7},
		obs.Event{T: 7, Kind: obs.KindScan, Page: mem.PageID(1<<63 - 1), Batch: 1<<64 - 1},
	)
	return events
}

// TestJSONLRoundTripAllKinds pins the schema contract: for every kind,
// WriteJSONL → ReadJSONL → WriteJSONL is byte-identical.
func TestJSONLRoundTripAllKinds(t *testing.T) {
	events := allKindEvents()
	var first strings.Builder
	if err := obs.WriteJSONL(&first, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadJSONL(strings.NewReader(first.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, wrote %d", len(parsed), len(events))
	}
	for i := range events {
		if parsed[i] != events[i] {
			t.Fatalf("event %d: parsed %+v, wrote %+v", i, parsed[i], events[i])
		}
	}
	var second strings.Builder
	if err := obs.WriteJSONL(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("re-serialized JSONL differs from the original bytes")
	}
}

// TestCSVRoundTripAllKinds is the same property over the CSV format.
func TestCSVRoundTripAllKinds(t *testing.T) {
	events := allKindEvents()
	var first strings.Builder
	if err := obs.WriteCSV(&first, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadCSV(strings.NewReader(first.String()))
	if err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if err := obs.WriteCSV(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("re-serialized CSV differs from the original bytes")
	}
}

func TestJSONLHeaderEnforced(t *testing.T) {
	eventLine := `{"t":1,"kind":"fault_begin","page":2,"batch":0,"v1":0,"v2":0}` + "\n"
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"headerless (pre-versioning trace)", eventLine},
		{"wrong schema", `{"schema":"other-trace","version":1}` + "\n" + eventLine},
		{"future version", `{"schema":"sgxpreload-trace","version":2}` + "\n" + eventLine},
		{"garbage header", "not json at all\n" + eventLine},
	}
	for _, tc := range tests {
		if _, err := ReadJSONL(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: parse succeeded, want header error", tc.name)
		}
	}
}

func TestCSVHeaderEnforced(t *testing.T) {
	row := "1,fault_begin,2,0,0,0\n"
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"headerless (pre-versioning trace)", "t,kind,page,batch,v1,v2\n" + row},
		{"wrong version", "# sgxpreload-trace version=9\nt,kind,page,batch,v1,v2\n" + row},
		{"missing column header", obs.TraceHeaderCSV() + "\n" + row},
	}
	for _, tc := range tests {
		if _, err := ReadCSV(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: parse succeeded, want header error", tc.name)
		}
	}
}

func TestJSONLRejectsCorruptLines(t *testing.T) {
	head := obs.TraceHeaderJSONL() + "\n"
	tests := []struct {
		name  string
		lines string
	}{
		{"truncated json", `{"t":1,"kind":"fa`},
		{"unknown kind", `{"t":1,"kind":"warp_drive","page":0,"batch":0,"v1":0,"v2":0}`},
		{"never-emitted kind", `{"t":1,"kind":"none","page":0,"batch":0,"v1":0,"v2":0}`},
		{"negative page below sentinel", `{"t":1,"kind":"scan","page":-2,"batch":0,"v1":0,"v2":0}`},
		{"float field", `{"t":1.5,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`},
		{"negative counter", `{"t":1,"kind":"scan","page":0,"batch":-3,"v1":0,"v2":0}`},
		{"not an object", `[1,2,3]`},
	}
	for _, tc := range tests {
		_, err := ReadJSONL(strings.NewReader(head + tc.lines + "\n"))
		if err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error lacks line number: %v", tc.name, err)
		}
	}
}

func TestCSVRejectsCorruptRows(t *testing.T) {
	head := obs.TraceHeaderCSV() + "\nt,kind,page,batch,v1,v2\n"
	tests := []struct {
		name string
		row  string
	}{
		{"short row", "1,scan,0"},
		{"long row", "1,scan,0,0,0,0,0"},
		{"unknown kind", "1,warp_drive,0,0,0,0"},
		{"bad number", "one,scan,0,0,0,0"},
		{"negative page below sentinel", "1,scan,-2,0,0,0"},
	}
	for _, tc := range tests {
		_, err := ReadCSV(strings.NewReader(head + tc.row + "\n"))
		if err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("%s: error lacks line number: %v", tc.name, err)
		}
	}
}

func TestReadFileDispatch(t *testing.T) {
	dir := t.TempDir()
	events := allKindEvents()

	writeWith := func(name string, write func(*strings.Builder) error) string {
		var b strings.Builder
		if err := write(&b); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	jsonl := writeWith("a.jsonl", func(b *strings.Builder) error { return obs.WriteJSONL(b, events) })
	csv := writeWith("a.csv", func(b *strings.Builder) error { return obs.WriteCSV(b, events) })

	for _, path := range []string{jsonl, csv} {
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: %d events, want %d", path, len(got), len(events))
		}
	}
	if _, err := ReadFile(dir + "/missing.jsonl"); err == nil {
		t.Error("ReadFile of a missing path succeeded")
	}
}
