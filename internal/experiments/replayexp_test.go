package experiments

import (
	"strings"
	"testing"
)

// TestReplayRoundTrip pins the replay experiment's core claim on a cheap
// benchmark: the Report derived from a parsed JSONL export is
// byte-identical to the live recorder's, and the DFP vs DFP-stop diff is
// well-formed.
func TestReplayRoundTrip(t *testing.T) {
	a, err := ReplayRun(sharedRunner, "cactuBSSN")
	if err != nil {
		t.Fatal(err)
	}
	if !a.EventsIdentical {
		t.Error("replayed timeline differs from the recorded one")
	}
	if !a.ReportIdentical {
		t.Error("replayed Report differs from the live Report")
	}
	if !a.StreamIdentical {
		t.Error("StreamSink export differs from the batch writer bytes")
	}
	if a.Events == 0 || a.TraceBytes == 0 {
		t.Fatalf("empty trace: %d events, %d bytes", a.Events, a.TraceBytes)
	}
	if a.Diff.LenA == 0 || a.Diff.LenB == 0 {
		t.Fatalf("diff sides empty: %d vs %d", a.Diff.LenA, a.Diff.LenB)
	}
	text := a.String()
	for _, want := range []string{"round-trip events:   byte-identical",
		"round-trip report:   byte-identical", "report metrics (a vs b, diff):"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestReplayDivergenceOnValveBenchmark checks the diff half on a pair
// that actually diverges: a benchmark whose DFP run mispredicts enough
// that DFP-stop behaves differently.
func TestReplayDivergenceOnValveBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("deepsjeng trace pair is slow")
	}
	a, err := Replay(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if a.Benchmark != "deepsjeng" {
		t.Fatalf("default replay benchmark = %s", a.Benchmark)
	}
	if a.Diff.Identical || a.Diff.First == nil {
		t.Fatal("DFP vs DFP-stop on deepsjeng reported identical timelines")
	}
	var stopDelta *float64
	for _, dl := range a.Diff.Report {
		if dl.Name == "dfp_stop_cycle" {
			v := dl.Diff
			stopDelta = &v
		}
	}
	if stopDelta == nil || *stopDelta == 0 {
		t.Fatal("diff does not show the DFP-stop trip cycle moving")
	}
}
