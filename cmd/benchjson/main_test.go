package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sgxpreload/internal/epc
BenchmarkEPCLookup-8    41293782    28.77 ns/op    0 B/op    0 allocs/op
BenchmarkEPCPresent-8   100000000    6.460 ns/op
PASS
ok   sgxpreload/internal/epc 3.1s
BenchmarkHandleFault-8   2359641   507.5 ns/op   16 B/op   0 allocs/op
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if results[0].Name != "BenchmarkEPCLookup" || results[1].Name != "BenchmarkEPCPresent" ||
		results[2].Name != "BenchmarkHandleFault" {
		t.Fatalf("names = %q, %q, %q", results[0].Name, results[1].Name, results[2].Name)
	}
	if results[0].NsPerOp != 28.77 || results[0].Iterations != 41293782 {
		t.Fatalf("EPCLookup = %+v", results[0])
	}
	if results[0].AllocsPerOp == nil || *results[0].AllocsPerOp != 0 {
		t.Fatalf("EPCLookup allocs = %v, want 0", results[0].AllocsPerOp)
	}
	if results[1].BytesPerOp != nil || results[1].AllocsPerOp != nil {
		t.Fatal("EPCPresent without -benchmem should have null memory fields")
	}
	if results[2].NsPerOp != 507.5 {
		t.Fatalf("HandleFault ns/op = %v", results[2].NsPerOp)
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok pkg 1s\n--- random noise ---\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise", len(results))
	}
}

func TestRunCarriesBaselineForward(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")

	// First run: no baseline file exists yet; that must not be an error.
	if err := run(strings.NewReader(sample), out, filepath.Join(dir, "missing.json")); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(first), `"baseline"`) {
		t.Fatal("first run emitted a baseline section from a missing file")
	}

	// Second run against updated numbers: prior results become baseline.
	updated := strings.ReplaceAll(sample, "28.77", "14.02")
	if err := run(strings.NewReader(updated), out, out); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(second)
	if !strings.Contains(s, `"baseline"`) {
		t.Fatal("second run lost the baseline section")
	}
	if !strings.Contains(s, "14.02") || !strings.Contains(s, "28.77") {
		t.Fatalf("output missing current or baseline ns/op:\n%s", s)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), "-", ""); err == nil {
		t.Fatal("run accepted input with no benchmark lines")
	}
}
