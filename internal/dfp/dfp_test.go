package dfp

import (
	"testing"
	"testing/quick"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default", DefaultConfig(), false},
		{"zero list", Config{StreamListLen: 0, LoadLength: 4}, true},
		{"zero loadlength", Config{StreamListLen: 30, LoadLength: 0}, true},
		{"minimal", Config{StreamListLen: 1, LoadLength: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFirstFaultStartsStream(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	if got := p.OnFault(100); got != nil {
		t.Fatalf("first fault predicted %v, want nil", got)
	}
	if p.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", p.Len())
	}
}

func TestSequentialFaultPredicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadLength = 4
	p := mustNew(t, cfg)
	p.OnFault(100)
	got := p.OnFault(101)
	want := []mem.PageID{102, 103, 104, 105}
	if len(got) != len(want) {
		t.Fatalf("prediction = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction = %v, want %v", got, want)
		}
	}
}

func TestFaultPastPredictedWindowExtendsStream(t *testing.T) {
	// After predicting 102..105, a perfectly preloaded stream next faults
	// at 106 — that must extend the stream, not start a new one.
	p := mustNew(t, DefaultConfig())
	p.OnFault(100)
	p.OnFault(101) // predicts 102..105
	got := p.OnFault(106)
	if len(got) != 4 || got[0] != 107 {
		t.Fatalf("fault at pend+1 predicted %v, want [107 108 109 110]", got)
	}
	if p.Hits() != 2 {
		t.Fatalf("Hits() = %d, want 2", p.Hits())
	}
}

func TestFaultInsidePredictedWindowExtendsStream(t *testing.T) {
	// The application outran the preload worker: fault at 103 while the
	// window reaches 105. Still a stream hit.
	p := mustNew(t, DefaultConfig())
	p.OnFault(100)
	p.OnFault(101) // predicts 102..105
	got := p.OnFault(103)
	if len(got) != 4 || got[0] != 104 {
		t.Fatalf("in-window fault predicted %v, want [104 105 106 107]", got)
	}
}

func TestFaultBeyondWindowStartsNewStream(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.OnFault(100)
	p.OnFault(101) // window now reaches 105
	if got := p.OnFault(107); got != nil {
		t.Fatalf("fault past window predicted %v, want nil", got)
	}
	if p.Misses() != 2 {
		t.Fatalf("Misses() = %d, want 2", p.Misses())
	}
}

func TestRefaultOnTailIsMiss(t *testing.T) {
	// A re-fault on the same page (eviction refault) must not extend a
	// forward stream.
	p := mustNew(t, DefaultConfig())
	p.OnFault(100)
	p.OnFault(101)
	if got := p.OnFault(101); got != nil {
		t.Fatalf("refault predicted %v, want nil", got)
	}
}

func TestMultipleConcurrentStreams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamListLen = 4
	p := mustNew(t, cfg)
	// Interleave three streams.
	bases := []mem.PageID{1000, 2000, 3000}
	for _, b := range bases {
		p.OnFault(b)
	}
	for step := mem.PageID(1); step <= 3; step++ {
		for _, b := range bases {
			got := p.OnFault(b + step*5) // each fault lands at pend+1 (LoadLength 4)
			if step == 1 {
				// second fault: strict adjacency required, 5 apart is a miss
				_ = got
			}
		}
	}
	// Strictly adjacent interleaved streams:
	p2 := mustNew(t, cfg)
	for _, b := range bases {
		p2.OnFault(b)
	}
	for _, b := range bases {
		if got := p2.OnFault(b + 1); len(got) == 0 {
			t.Fatalf("stream at %d not recognized among concurrent streams", b)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamListLen = 2
	p := mustNew(t, cfg)
	p.OnFault(100) // stream A
	p.OnFault(200) // stream B
	p.OnFault(300) // stream C evicts A (LRU)
	if got := p.OnFault(101); got != nil {
		t.Fatalf("evicted stream A still recognized: %v", got)
	}
	// B was evicted by the fault at 101 (list is [101?...]). Let's check
	// list length stays fixed.
	if p.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", p.Len())
	}
}

func TestMRUPromotionProtectsActiveStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamListLen = 2
	p := mustNew(t, cfg)
	p.OnFault(100)
	p.OnFault(101) // stream A active, promoted to head
	p.OnFault(500) // noise replaces LRU (not A)
	if got := p.OnFault(102); len(got) == 0 {
		t.Fatal("active stream evicted despite MRU promotion")
	}
}

func TestBackwardStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backward = true
	p := mustNew(t, cfg)
	p.OnFault(100)
	got := p.OnFault(99)
	if len(got) != 4 || got[0] != 98 || got[3] != 95 {
		t.Fatalf("backward prediction = %v, want [98 97 96 95]", got)
	}
	// Continue downward past the window.
	got = p.OnFault(94)
	if len(got) != 4 || got[0] != 93 {
		t.Fatalf("backward continuation = %v, want [93 92 91 90]", got)
	}
}

func TestBackwardDisabledByDefault(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.OnFault(100)
	if got := p.OnFault(99); got != nil {
		t.Fatalf("backward fault predicted %v with Backward disabled", got)
	}
}

func TestPredictionStopsAtAddressSpaceEdge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backward = true
	p := mustNew(t, cfg)
	p.OnFault(2)
	got := p.OnFault(1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("prediction at lower edge = %v, want [0]", got)
	}
}

func TestStopFormula(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stop = true
	cfg.StopSlack = 10
	p := mustNew(t, cfg)

	p.NotePreloaded(18)
	p.NoteAccessed(0)
	if p.EvaluateStop() {
		t.Fatal("stopped at 0+10 < 18/2=9 — formula misapplied (10 >= 9)")
	}
	p.NotePreloaded(4) // total 22, half = 11 > 10
	if !p.EvaluateStop() {
		t.Fatal("not stopped at 0+10 < 11")
	}
	if !p.Stopped() {
		t.Fatal("Stopped() = false after EvaluateStop fired")
	}
	if got := p.OnFault(1); got != nil {
		t.Fatalf("stopped predictor still predicts: %v", got)
	}
	// Stop must latch.
	p.NoteAccessed(1000)
	if !p.EvaluateStop() {
		t.Fatal("stop did not latch")
	}
}

func TestStopDisabledNeverFires(t *testing.T) {
	p := mustNew(t, DefaultConfig()) // Stop false
	p.NotePreloaded(1 << 20)
	if p.EvaluateStop() {
		t.Fatal("EvaluateStop fired with Stop disabled")
	}
}

func TestAccuracyCountersAccumulate(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.NotePreloaded(5)
	p.NotePreloaded(-3) // ignored
	p.NoteAccessed(2)
	p.NoteAccessed(-1) // ignored
	if p.PreloadCounter() != 5 {
		t.Fatalf("PreloadCounter() = %d, want 5", p.PreloadCounter())
	}
	if p.AccPreloadCounter() != 2 {
		t.Fatalf("AccPreloadCounter() = %d, want 2", p.AccPreloadCounter())
	}
}

func TestHitRate(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	if p.HitRate() != 0 {
		t.Fatal("HitRate() != 0 on fresh predictor")
	}
	p.OnFault(10)
	p.OnFault(11)
	p.OnFault(500)
	if got := p.HitRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("HitRate() = %v, want 1/3", got)
	}
}

// TestListLengthInvariant checks that the stream list never exceeds its
// configured length and stays MRU-consistent under random fault streams.
func TestListLengthInvariant(t *testing.T) {
	f := func(seed uint64, lenSel, faults uint16) bool {
		listLen := 1 + int(lenSel%40)
		cfg := Config{StreamListLen: listLen, LoadLength: 4}
		p, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		n := int(faults%2000) + 1
		for i := 0; i < n; i++ {
			p.OnFault(mem.PageID(r.Intn(1 << 12)))
			if p.Len() > listLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictionsAreAlwaysAhead checks the property that every predicted
// page of a forward stream is strictly greater than the faulting page, and
// contiguous.
func TestPredictionsAreAlwaysAhead(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		base := mem.PageID(r.Intn(1 << 20))
		p.OnFault(base)
		for i := 0; i < 100; i++ {
			npn := base + mem.PageID(i) + 1
			got := p.OnFault(npn)
			for j, pg := range got {
				if pg != npn+mem.PageID(j)+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTailsMRUOrder(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.OnFault(10)
	p.OnFault(20)
	p.OnFault(30)
	tails := p.Tails()
	if len(tails) != 3 || tails[0] != 30 || tails[1] != 20 || tails[2] != 10 {
		t.Fatalf("Tails() = %v, want [30 20 10]", tails)
	}
}
