package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sgxpreload/internal/mem"
)

// getJSON fetches one endpoint and decodes the response body.
func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s (%s)", url, resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestHandlerMetrics(t *testing.T) {
	ring := NewRing(16)
	ring.Emit(Event{T: 10, Kind: KindFaultBegin, Page: 1})
	ring.Emit(Event{T: 64_010, Kind: KindFaultEnd, Page: 1, V1: 64_000})
	srv := httptest.NewServer(NewHandler(ring))
	defer srv.Close()

	var m struct {
		Schema      string            `json:"schema"`
		Version     int               `json:"version"`
		EventsTotal uint64            `json:"events_total"`
		LastT       uint64            `json:"last_t"`
		Counts      map[string]uint64 `json:"counts"`
	}
	getJSON(t, srv.URL+"/metrics", &m)
	if m.Schema != TraceSchema || m.Version != TraceVersion {
		t.Fatalf("schema %s v%d", m.Schema, m.Version)
	}
	if m.EventsTotal != 2 || m.LastT != 64_010 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Counts["fault_begin"] != 1 || m.Counts["fault_end"] != 1 {
		t.Fatalf("counts = %v", m.Counts)
	}
}

func TestHandlerEvents(t *testing.T) {
	ring := NewRing(16)
	for i := 1; i <= 5; i++ {
		ring.Emit(Event{T: uint64(i * 10), Kind: KindScan, V2: uint64(i)})
	}
	srv := httptest.NewServer(NewHandler(ring))
	defer srv.Close()

	var payload struct {
		Since  uint64 `json:"since"`
		First  uint64 `json:"first"`
		Next   uint64 `json:"next"`
		Events []struct {
			Seq  uint64 `json:"seq"`
			T    uint64 `json:"t"`
			Kind string `json:"kind"`
			Page int64  `json:"page"`
		} `json:"events"`
	}
	getJSON(t, srv.URL+"/events", &payload)
	if len(payload.Events) != 5 || payload.First != 1 || payload.Next != 5 {
		t.Fatalf("full window = %+v", payload)
	}
	getJSON(t, srv.URL+"/events?since=3", &payload)
	if len(payload.Events) != 2 || payload.Events[0].Seq != 4 || payload.Next != 5 {
		t.Fatalf("since=3 = %+v", payload)
	}
	if payload.Events[0].Kind != "scan" || payload.Events[0].T != 40 {
		t.Fatalf("event payload = %+v", payload.Events[0])
	}
	// Incremental poll from the returned cursor drains nothing new.
	getJSON(t, srv.URL+fmt.Sprintf("/events?since=%d", payload.Next), &payload)
	if len(payload.Events) != 0 {
		t.Fatalf("poll at cursor returned %d events", len(payload.Events))
	}
	resp, err := http.Get(srv.URL + "/events?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: status %d", resp.StatusCode)
	}
}

func TestHandlerEventsNoPage(t *testing.T) {
	ring := NewRing(4)
	ring.Emit(Event{T: 9, Kind: KindEvict, Page: mem.NoPage, V1: 1})
	srv := httptest.NewServer(NewHandler(ring))
	defer srv.Close()
	var payload struct {
		Events []struct {
			Page int64 `json:"page"`
		} `json:"events"`
	}
	getJSON(t, srv.URL+"/events", &payload)
	if len(payload.Events) != 1 || payload.Events[0].Page != -1 {
		t.Fatalf("NoPage rendering = %+v", payload.Events)
	}
}

func TestHandlerReport(t *testing.T) {
	ring := NewRing(16)
	ring.Emit(Event{T: 100, Kind: KindFaultBegin, Page: 7})
	ring.Emit(Event{T: 64_100, Kind: KindFaultEnd, Page: 7, V1: 64_000})
	srv := httptest.NewServer(NewHandler(ring))
	defer srv.Close()

	var payload struct {
		EventsTotal    uint64 `json:"events_total"`
		WindowComplete bool   `json:"window_complete"`
		Report         struct {
			Counts map[string]uint64 `json:"counts"`
			Span   uint64            `json:"span"`
		} `json:"report"`
	}
	getJSON(t, srv.URL+"/report", &payload)
	if payload.EventsTotal != 2 || !payload.WindowComplete {
		t.Fatalf("report envelope = %+v", payload)
	}
	if payload.Report.Span != 64_100 || payload.Report.Counts["fault_end"] != 1 {
		t.Fatalf("report body = %+v", payload.Report)
	}

	// Overflow the window: the report must flag incompleteness.
	small := NewRing(1)
	small.Emit(Event{T: 1, Kind: KindScan})
	small.Emit(Event{T: 2, Kind: KindScan})
	srv2 := httptest.NewServer(NewHandler(small))
	defer srv2.Close()
	getJSON(t, srv2.URL+"/report", &payload)
	if payload.WindowComplete {
		t.Fatal("overflowed window reported complete")
	}
}

// TestHandlerConcurrentScrape is the acceptance race test: all three
// endpoints are scraped from several goroutines while an emitter floods
// the ring. Run under -race (make race / verify-obs does); every
// response must still be valid JSON.
func TestHandlerConcurrentScrape(t *testing.T) {
	ring := NewRing(128)
	srv := httptest.NewServer(NewHandler(ring))
	defer srv.Close()

	stop := make(chan struct{})
	var emitter sync.WaitGroup
	emitter.Add(1)
	go func() {
		defer emitter.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ring.Emit(Event{T: i, Kind: Kind(1 + i%uint64(kindCount-1)), Page: mem.PageID(i)})
		}
	}()

	var scrapers sync.WaitGroup
	for g := 0; g < 3; g++ {
		for _, path := range []string{"/metrics", "/events?since=0", "/report"} {
			scrapers.Add(1)
			go func(url string) {
				defer scrapers.Done()
				for i := 0; i < 25; i++ {
					resp, err := http.Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					var decoded map[string]any
					if err := json.Unmarshal(body, &decoded); err != nil {
						t.Errorf("%s: invalid JSON under load: %v (%.120s)", url, err, body)
						return
					}
				}
			}(srv.URL + path)
		}
	}
	scrapers.Wait()
	close(stop)
	emitter.Wait()
}
