// Package kernel models the untrusted operating system side of the SGX
// paging protocol: the enclave page-fault handler of the Intel SGX driver,
// the asynchronous preload worker added by DFP, the SIP notification
// syscall, and the access-bit-scanning service thread.
//
// The kernel owns the EPC, the load channel, and (when DFP is enabled) the
// stream predictor, and is driven by the simulation engine through four
// operations, each of which takes and returns virtual time:
//
//   - Sync(now): retire channel work that finished by now and start queued
//     preloads that could begin before now.
//   - HandleFault(now, page): the demand-fault path — AEX, evict-if-full,
//     ELDU, ERESUME — plus, with DFP, prediction and preload queuing.
//   - NotifyLoad(now, page): the SIP path — the page is loaded through the
//     same channel and eviction machinery, but the thread never leaves the
//     enclave, so AEX and ERESUME are not paid.
//   - MaybeScan(now): the periodic service-thread scan that maintains
//     DFP's preload-accuracy counters and applies the stop formula.
package kernel

import (
	"fmt"

	"sgxpreload/internal/channel"
	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// Config configures the kernel model.
type Config struct {
	// Costs is the cycle cost model.
	Costs mem.CostModel
	// EPCPages is the number of physical EPC frames available to the
	// enclave (the paper's platform exposes ~96 MB ≈ 24576 usable pages;
	// experiments scale this down together with the workload footprints).
	EPCPages int
	// ELRangePages is the enclave's virtual address range in pages.
	ELRangePages uint64
	// DFP, when non-nil, enables fault-history-based preloading with the
	// given predictor configuration (the paper's multiple-stream
	// recognizer).
	DFP *dfp.Config
	// Predictor, when non-nil, overrides DFP with an alternative
	// fault-history strategy (see package core); used by the predictor
	// ablation.
	Predictor core.Predictor
	// ScanPeriod is the service thread's scan interval in cycles. The
	// driver's CLOCK service thread runs periodically; DFP piggybacks its
	// accuracy counters on that scan.
	ScanPeriod uint64
	// MaxPending caps the preload worker's backlog. Predictions beyond the
	// cap push out the stalest queued requests: an old list_to_load that
	// the worker never reached is stale by construction.
	MaxPending int
	// EvictPolicy selects the EPC victim-selection algorithm; the zero
	// value is the driver's CLOCK.
	EvictPolicy epc.Policy
	// RangeLo and RangeHi bound this enclave's slice of the (possibly
	// shared) EPC page space; zero values mean [0, ELRangePages). Used by
	// multi-enclave runs, where each enclave's predictor and service scan
	// must only see its own pages.
	RangeLo, RangeHi mem.PageID
	// BackgroundReclaim enables the real driver's ksgxswapd behavior: a
	// background thread keeps free EPC frames between two watermarks by
	// batch-evicting (EWB) off the fault path. With it on, a fault that
	// finds a free frame skips the synchronous eviction; the write-backs
	// instead occupy the channel in bursts from the service scan. Off by
	// default — the paper's measurements fold eviction into the fault
	// path, and the ablation quantifies the difference.
	BackgroundReclaim bool
	// LowWater and HighWater are the reclaimer's free-frame watermarks;
	// zero values select EPCPages/32 and EPCPages/16.
	LowWater, HighWater int
	// Arbiter, when non-nil, arbitrates shared-EPC evictions between
	// enclaves by frame quota (see package arbiter): an enclave at or
	// over its quota evicts one of its own frames, an under-quota one
	// steals from the most over-quota owner. Nil — the default — keeps
	// the single global victim scan, bit-for-bit. All kernels over one
	// shared EPC must share one arbiter.
	Arbiter *arbiter.Arbiter
	// Owner is this kernel's enclave index with the shared EPC and the
	// arbiter (0 in solo runs).
	Owner int
	// Hook, when non-nil, receives the kernel's event timeline (faults,
	// loads, evictions, scans, DFP-stop; see package obs). The hook is
	// also installed on the load channel and — via a clock adapter — on
	// the DFP predictor. Every emission site is nil-checked, so a nil
	// Hook costs only untaken branches, and a hook never perturbs the
	// simulated virtual time.
	Hook obs.Hook
}

// DefaultScanPeriod is the service thread interval used when Config leaves
// ScanPeriod zero: 2 ms of virtual time at the paper's 3.5 GHz clock.
const DefaultScanPeriod = 7_000_000

// Stats aggregates everything the kernel observed during a run.
type Stats struct {
	// DemandFaults counts enclave page faults serviced with a full
	// AEX + load + ERESUME round trip (including waits on in-flight
	// preloads, which still exit the enclave).
	DemandFaults uint64
	// PresentOnArrival counts faults that found their page already
	// resident after the AEX (a preload completed during the exit).
	PresentOnArrival uint64
	// InflightHits counts faults that found their page being preloaded and
	// only had to wait for the in-progress transfer.
	InflightHits uint64
	// InWindowAborts counts faults that hit a predicted-but-unstarted page
	// and cancelled the remainder of that prediction batch.
	InWindowAborts uint64
	// PreloadsQueued counts pages handed to the preload worker.
	PreloadsQueued uint64
	// PreloadsStarted counts preloads that actually occupied the channel.
	PreloadsStarted uint64
	// PreloadsDropped counts queued preloads dropped before starting
	// (batch aborts, stale-backlog evictions, or found-present skips).
	PreloadsDropped uint64
	// NotifyLoads counts SIP notifications that triggered a page load.
	NotifyLoads uint64
	// NotifyHits counts SIP notifications that found the page already
	// resident or in flight by the time the kernel looked.
	NotifyHits uint64
	// Evictions counts EWB victim write-backs (synchronous and
	// background); BackgroundEvictions counts the background subset.
	Evictions           uint64
	BackgroundEvictions uint64
	// Scans counts service-thread scans.
	Scans uint64
	// AEXCycles, LoadWaitCycles, EresumeCycles, NotifyWaitCycles break the
	// fault-path time into its protocol components; LoadWaitCycles is the
	// time a faulting thread spent waiting on the channel (its own load
	// plus any non-preemptible transfer ahead of it).
	AEXCycles        uint64
	LoadWaitCycles   uint64
	EresumeCycles    uint64
	NotifyWaitCycles uint64
	// DFPStopped records whether the global abort fired, and DFPStopCycle
	// when (0 if never).
	DFPStopped   bool
	DFPStopCycle uint64
}

// Kernel is the untrusted-OS model. Construct with New.
type Kernel struct {
	cfg   Config
	epc   *epc.EPC
	ch    *channel.Channel
	pred  core.Predictor // nil when preloading is disabled
	stats Stats

	nextScan uint64
	scratch  []mem.PageID // reusable prediction batch (see predict)

	hook obs.Hook // nil = observability disabled
	now  uint64   // clock mirror for predictor-emitted events
}

// New builds a kernel from cfg with its own EPC and load channel.
func New(cfg Config) (*Kernel, error) {
	if cfg.EPCPages <= 0 {
		return nil, fmt.Errorf("kernel: EPCPages must be positive, got %d", cfg.EPCPages)
	}
	e, err := epc.NewWithPolicy(cfg.EPCPages, cfg.ELRangePages, cfg.EvictPolicy)
	if err != nil {
		return nil, err
	}
	return NewShared(cfg, e, channel.New())
}

// NewShared builds a kernel over an existing EPC and channel. Multiple
// kernels sharing both model multiple enclaves contending for the same
// physical EPC (the paper's §5.6): each enclave keeps its own fault
// history, preload queue, bitmap view, and counters, while evictions and
// transfer serialization are global.
func NewShared(cfg Config, e *epc.EPC, ch *channel.Channel) (*Kernel, error) {
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}
	if cfg.RangeHi == 0 {
		cfg.RangeHi = mem.PageID(cfg.ELRangePages)
	}
	if cfg.RangeLo >= cfg.RangeHi {
		return nil, fmt.Errorf("kernel: empty page range [%d, %d)", cfg.RangeLo, cfg.RangeHi)
	}
	k := &Kernel{cfg: cfg, epc: e, ch: ch, hook: cfg.Hook}
	switch {
	case cfg.Predictor != nil:
		k.pred = cfg.Predictor
	case cfg.DFP != nil:
		p, err := dfp.New(*cfg.DFP)
		if err != nil {
			return nil, err
		}
		k.pred = p
	}
	if k.hook != nil {
		ch.SetHook(k.hook)
		// The predictor sees only the fault-page sequence, so its
		// stream-lifecycle events are stamped by the kernel's clock.
		if sh, ok := k.pred.(interface{ SetHook(obs.Hook) }); ok {
			sh.SetHook(obs.Clocked(k.hook, &k.now))
		}
	}
	if k.cfg.ScanPeriod == 0 {
		k.cfg.ScanPeriod = DefaultScanPeriod
	}
	if k.cfg.MaxPending == 0 {
		k.cfg.MaxPending = 64
	}
	if k.cfg.BackgroundReclaim {
		if k.cfg.LowWater == 0 {
			k.cfg.LowWater = cfg.EPCPages / 32
		}
		if k.cfg.HighWater == 0 {
			k.cfg.HighWater = cfg.EPCPages / 16
		}
		if k.cfg.LowWater < 1 {
			k.cfg.LowWater = 1
		}
		if k.cfg.HighWater <= k.cfg.LowWater {
			k.cfg.HighWater = k.cfg.LowWater + 1
		}
	}
	k.nextScan = k.cfg.ScanPeriod
	return k, nil
}

// EPC exposes the enclave page cache (read-mostly; tests and the SIP
// runtime use the presence bitmap).
func (k *Kernel) EPC() *epc.EPC { return k.epc }

// Channel exposes the load channel for tests and tooling.
func (k *Kernel) Channel() *channel.Channel { return k.ch }

// Predictor returns the fault-history predictor, or nil when preloading
// is disabled.
func (k *Kernel) Predictor() core.Predictor { return k.pred }

// Stats returns a snapshot of the counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Sync retires channel completions up to now and starts queued preloads
// whose transfer could begin strictly before now.
func (k *Kernel) Sync(now uint64) {
	for {
		if done, ok := k.ch.InflightDone(); ok {
			if done > now {
				return
			}
			k.complete(k.ch.CompleteInflight())
			continue
		}
		req, ok := k.peekStartable(now)
		if !ok {
			return
		}
		k.beginLoad(req.Page, max64(k.ch.BusyUntil(), req.Enqueued), true, req.Batch)
	}
}

// peekStartable drops queued preloads whose pages became resident in the
// meantime and returns the first one that is still worth loading and could
// start before now. A head that is not yet startable is left in place —
// PeekPending makes the no-work case O(1), where the old pop-and-restore
// drained and rebuilt the whole queue on every non-startable Sync.
func (k *Kernel) peekStartable(now uint64) (channel.Request, bool) {
	for {
		req, ok := k.ch.PeekPending()
		if !ok {
			return channel.Request{}, false
		}
		if k.epc.Present(req.Page) {
			k.ch.PopPending()
			k.stats.PreloadsDropped++
			if k.hook != nil {
				k.hook.Emit(obs.Event{T: max64(k.ch.BusyUntil(), req.Enqueued),
					Kind: obs.KindPreloadAbort, Page: req.Page, Batch: req.Batch,
					V1: obs.AbortResident})
			}
			continue
		}
		if start := max64(k.ch.BusyUntil(), req.Enqueued); start >= now {
			return channel.Request{}, false
		}
		k.ch.PopPending()
		return req, true
	}
}

// beginLoad starts a transfer at start, performing the EWB eviction first
// when the EPC is full. The transfer's channel occupancy is the load cost
// plus the eviction cost when a victim had to be written back.
func (k *Kernel) beginLoad(page mem.PageID, start uint64, preload bool, batch uint64) channel.Load {
	occ := k.cfg.Costs.Load
	if preload {
		occ += k.cfg.Costs.PreloadExtra
	}
	if k.epc.Full() {
		// No free frame: evict synchronously on the load path. With the
		// background reclaimer keeping watermarks this is the fallback for
		// bursts that outrun it.
		victim := k.selectVictim()
		if victim != mem.NoPage {
			k.epc.Evict(victim)
			k.stats.Evictions++
			occ += k.cfg.Costs.Evict
			if k.hook != nil {
				k.hook.Emit(obs.Event{T: start, Kind: obs.KindEvict, Page: victim})
			}
		}
	}
	if preload {
		k.stats.PreloadsStarted++
		if k.pred != nil {
			k.pred.NotePreloaded(1)
		}
	}
	return k.ch.Begin(page, start, occ, preload, batch)
}

// selectVictim picks the next eviction victim. With no arbiter (the
// default) it is exactly the global policy scan. With one, the arbiter
// names whose frame goes — this enclave's own when it is at or over
// quota, the most-over-quota owner's otherwise — and the owner-filtered
// scan picks the frame. If the named owner has nothing resident (its
// quota exceeds its current resident set — e.g. a quota below the
// enclave's minimum working set left it with no frames to give), the
// global scan decides, so an eviction always succeeds whenever any frame
// is occupied.
func (k *Kernel) selectVictim() mem.PageID {
	if k.cfg.Arbiter != nil {
		if o := k.cfg.Arbiter.VictimOwner(k.epc, k.cfg.Owner); o >= 0 {
			if v := k.epc.SelectVictimOwned(o); v != mem.NoPage {
				return v
			}
		}
	}
	return k.epc.SelectVictim()
}

// complete installs a finished transfer into the EPC.
func (k *Kernel) complete(ld channel.Load) {
	if ld.Page == mem.NoPage {
		// A background write-back burst: nothing to install.
		return
	}
	if k.epc.Present(ld.Page) {
		// A demand load raced a queued duplicate; keep the resident copy.
		return
	}
	if err := k.epc.Load(ld.Page, ld.Preload); err != nil {
		// The eviction in beginLoad guaranteed a free frame; any failure
		// is a simulator bug, not a runtime condition.
		panic("kernel: install failed: " + err.Error())
	}
}

// HandleFault services an enclave page fault on page raised at cycle now.
// It returns the cycle at which the application resumes inside the
// enclave. The page is guaranteed resident (and touched) at return.
func (k *Kernel) HandleFault(now uint64, page mem.PageID) uint64 {
	k.stats.DemandFaults++
	k.stats.AEXCycles += k.cfg.Costs.AEX
	if k.cfg.Arbiter != nil {
		// Demand faults are half of the adaptive policy's working-set
		// signal (the other half is the scan's access-bit count).
		k.cfg.Arbiter.NoteFault(k.cfg.Owner)
	}
	if k.hook != nil {
		k.hook.Emit(obs.Event{T: now, Kind: obs.KindFaultBegin, Page: page})
	}
	t := now + k.cfg.Costs.AEX
	k.Sync(t)

	var done uint64
	class := obs.FaultDemand
	switch {
	case k.epc.Present(page):
		// A preload completed while the thread was exiting.
		k.stats.PresentOnArrival++
		class = obs.FaultPresentOnArrival
		done = t
	case k.ch.InflightPage() == page:
		// The page is mid-transfer; the handler can only wait — the load
		// channel is non-preemptible.
		k.stats.InflightHits++
		class = obs.FaultInflightWait
		done = k.ch.BusyUntil()
		k.stats.LoadWaitCycles += done - t
		k.Sync(done)
	default:
		if k.ch.AbortBatchContaining(page, t) {
			// The fault landed inside a predicted-but-unloaded window:
			// the paper aborts the remainder of that prediction and
			// demand-loads the page.
			k.stats.InWindowAborts++
			class = obs.FaultInWindowAbort
		}
		// The demand load takes the channel as soon as the (non-
		// preemptible) in-progress transfer finishes, jumping ahead of any
		// queued preloads: the fault handler performs the ELDU itself,
		// while the preload worker runs at lower priority.
		start := max64(t, k.ch.BusyUntil())
		if _, busy := k.ch.Inflight(); busy {
			k.complete(k.ch.CompleteInflight())
		}
		ld := k.beginLoad(page, start, false, 0)
		k.complete(k.ch.CompleteInflight())
		done = ld.Done
		k.stats.LoadWaitCycles += done - t
	}

	resume := done + k.cfg.Costs.Eresume
	k.stats.EresumeCycles += k.cfg.Costs.Eresume
	k.epc.Touch(page)
	if k.hook != nil {
		k.hook.Emit(obs.Event{T: resume, Kind: obs.KindFaultEnd, Page: page,
			V1: resume - now, V2: class})
		k.now = resume // stamp for predictor stream events
	}
	k.predict(page, resume)
	return resume
}

// predict feeds the fault to the DFP predictor and queues the resulting
// batch. The batch becomes eligible when the faulting thread resumes: the
// preload worker is woken by the fault handler and runs after it.
func (k *Kernel) predict(page mem.PageID, resume uint64) {
	if k.pred == nil || k.pred.Stopped() {
		return
	}
	predicted := k.pred.OnFault(page)
	if len(predicted) == 0 {
		return
	}
	// QueueBatch copies the pages into Requests, so the scratch buffer can
	// be reused fault after fault instead of allocating a fresh batch.
	batch := k.scratch[:0]
	for _, p := range predicted {
		if p < k.cfg.RangeLo || p >= k.cfg.RangeHi {
			// The stream ran past the enclave's mapped range; nothing to
			// preload there.
			continue
		}
		if k.epc.Present(p) || k.ch.InflightPage() == p || k.ch.PendingContains(p) {
			continue
		}
		batch = append(batch, p)
	}
	k.scratch = batch
	if len(batch) == 0 {
		return
	}
	k.stats.PreloadsQueued += uint64(len(batch))
	dropped := k.ch.QueueBatch(batch, resume, k.cfg.MaxPending)
	k.stats.PreloadsDropped += uint64(dropped)
}

// NotifyLoad services a SIP preload notification for page issued at cycle
// now (the caller has already charged the bitmap check and notify costs).
// It returns the cycle at which the page is resident and the application
// may proceed — without ever leaving the enclave.
func (k *Kernel) NotifyLoad(now uint64, page mem.PageID) uint64 {
	k.Sync(now)

	var done uint64
	class := obs.NotifyLoaded
	switch {
	case k.epc.Present(page):
		k.stats.NotifyHits++
		class = obs.NotifyResident
		done = now
	case k.ch.InflightPage() == page:
		k.stats.NotifyHits++
		class = obs.NotifyInflight
		done = k.ch.BusyUntil()
		k.stats.NotifyWaitCycles += done - now
		k.Sync(done)
	default:
		if k.ch.RemovePending(page, now) {
			k.stats.PreloadsDropped++
		}
		start := max64(now, k.ch.BusyUntil())
		if _, busy := k.ch.Inflight(); busy {
			k.complete(k.ch.CompleteInflight())
		}
		ld := k.beginLoad(page, start, false, 0)
		k.complete(k.ch.CompleteInflight())
		done = ld.Done
		k.stats.NotifyLoads++
		k.stats.NotifyWaitCycles += done - now
	}
	k.epc.Touch(page)
	if k.hook != nil {
		k.hook.Emit(obs.Event{T: now, Kind: obs.KindSIPNotify, Page: page,
			V1: done - now, V2: class})
	}
	return done
}

// QueuePrefetch posts an asynchronous load request for page: the preload
// worker will bring it in when the channel is free, and the requester does
// not wait. This is the early-notification path of the eager-SIP ablation;
// it reuses the preload queue, so demand faults still take priority.
func (k *Kernel) QueuePrefetch(now uint64, page mem.PageID) {
	if page < k.cfg.RangeLo || page >= k.cfg.RangeHi {
		// Outside this enclave's slice of the (possibly shared) page
		// space — same bound predict applies, so a shared-EPC run can
		// never prefetch into another enclave's range.
		return
	}
	if k.epc.Present(page) || k.ch.InflightPage() == page || k.ch.PendingContains(page) {
		return
	}
	k.stats.PreloadsQueued++
	dropped := k.ch.QueueBatch([]mem.PageID{page}, now, k.cfg.MaxPending)
	k.stats.PreloadsDropped += uint64(dropped)
}

// Touch records a resident-page access (sets the hardware access bit). It
// reports whether the page was resident.
func (k *Kernel) Touch(page mem.PageID) bool { return k.epc.Touch(page) }

// Present reports whether page is resident, from the OS's view.
func (k *Kernel) Present(page mem.PageID) bool { return k.epc.Present(page) }

// MaybeScan runs the service thread if its period elapsed by now. The scan
// counts preloaded pages whose access bit is set (AccPreloadCounter),
// clears their preload bits so each is counted once, and applies the
// DFP-stop formula.
func (k *Kernel) MaybeScan(now uint64) {
	if now < k.nextScan {
		return
	}
	k.nextScan = now + k.cfg.ScanPeriod
	k.stats.Scans++
	if k.cfg.BackgroundReclaim {
		k.backgroundReclaim(now)
	}
	if k.pred == nil {
		if k.hook != nil {
			k.hook.Emit(obs.Event{T: now, Kind: obs.KindScan,
				V2: uint64(k.epc.Resident())})
		}
		k.arbiterScan(now)
		return
	}
	accessed := 0
	k.epc.ScanPreloadBitsRange(k.cfg.RangeLo, k.cfg.RangeHi, true, func(_ mem.PageID, acc bool) {
		if acc {
			accessed++
		}
	})
	k.pred.NoteAccessed(accessed)
	if k.hook != nil {
		k.hook.Emit(obs.Event{T: now, Kind: obs.KindScan,
			V1: uint64(accessed), V2: uint64(k.epc.Resident())})
		k.hook.Emit(obs.Event{T: now, Kind: obs.KindAccuracy,
			V1: k.pred.PreloadCounter(), V2: k.pred.AccPreloadCounter()})
	}
	if k.pred.EvaluateStop() && !k.stats.DFPStopped {
		k.stats.DFPStopped = true
		k.stats.DFPStopCycle = now
		if k.hook != nil {
			k.hook.Emit(obs.Event{T: now, Kind: obs.KindDFPStop,
				V1: k.pred.PreloadCounter(), V2: k.pred.AccPreloadCounter()})
		}
		// The preloading thread stops itself: whatever it had queued is
		// abandoned (the in-progress transfer still finishes — it is
		// non-preemptible).
		k.stats.PreloadsDropped += uint64(k.ch.AbortPending(now))
	}
	k.arbiterScan(now)
}

// arbiterScan feeds this enclave's access-bit count to the quota arbiter
// at its scan boundary and, when the adaptive policy adopts a new
// partition, emits the full quota vector in enclave-index order — the
// deterministic rebalance trace the report and replay layers consume.
func (k *Kernel) arbiterScan(now uint64) {
	arb := k.cfg.Arbiter
	if arb == nil {
		return
	}
	acc, res := k.epc.OwnerScanStats(k.cfg.Owner)
	if !arb.NoteScan(k.cfg.Owner, acc, res) {
		return
	}
	k.emitQuotaVector(now)
}

// emitQuotaVector emits one KindQuotaRebalance event per enclave, in
// index order, carrying the enclave's quota and resident count.
func (k *Kernel) emitQuotaVector(now uint64) {
	if k.hook == nil || k.cfg.Arbiter == nil {
		return
	}
	arb := k.cfg.Arbiter
	for i := 0; i < arb.N(); i++ {
		k.hook.Emit(obs.Event{T: now, Kind: obs.KindQuotaRebalance, Page: mem.NoPage,
			Batch: uint64(i), V1: uint64(arb.Quota(i)), V2: uint64(k.epc.OwnerResident(i))})
	}
}

// Drain completes all outstanding channel work and returns the cycle at
// which the channel goes idle; used at end of run so counters are final.
func (k *Kernel) Drain(now uint64) uint64 {
	end := now
	for {
		if ld, ok := k.ch.Inflight(); ok {
			k.complete(k.ch.CompleteInflight())
			if ld.Done > end {
				end = ld.Done
			}
			continue
		}
		req, ok := k.ch.PopPending()
		if !ok {
			return end
		}
		if k.epc.Present(req.Page) {
			k.stats.PreloadsDropped++
			if k.hook != nil {
				k.hook.Emit(obs.Event{T: max64(k.ch.BusyUntil(), req.Enqueued),
					Kind: obs.KindPreloadAbort, Page: req.Page, Batch: req.Batch,
					V1: obs.AbortResident})
			}
			continue
		}
		k.beginLoad(req.Page, max64(k.ch.BusyUntil(), req.Enqueued), true, req.Batch)
	}
}

// backgroundReclaim restores the free-frame pool to the high watermark,
// evicting victims in a batch. The EWB write-backs occupy the load
// channel (they use the same memory path), so the burst can delay a
// demand load — the trade the real ksgxswapd makes for a cheaper fault
// path.
func (k *Kernel) backgroundReclaim(now uint64) {
	free := k.epc.Capacity() - k.epc.Resident()
	if free >= k.cfg.LowWater {
		return
	}
	var batch uint64
	for free < k.cfg.HighWater {
		victim := k.selectVictim()
		if victim == mem.NoPage {
			break
		}
		k.epc.Evict(victim)
		k.stats.Evictions++
		k.stats.BackgroundEvictions++
		if k.hook != nil {
			k.hook.Emit(obs.Event{T: now, Kind: obs.KindEvict, Page: victim, V1: 1})
		}
		free++
		batch++
	}
	if batch == 0 {
		return
	}
	// Occupy the channel with the write-back burst. If a transfer is in
	// progress the burst starts after it (non-preemptible either way).
	start := max64(now, k.ch.BusyUntil())
	if _, busy := k.ch.Inflight(); busy {
		k.complete(k.ch.CompleteInflight())
	}
	k.ch.Begin(mem.NoPage, start, batch*k.cfg.Costs.Evict, false, 0)
	k.complete(k.ch.CompleteInflight())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
