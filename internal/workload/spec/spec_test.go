package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sgxpreload/internal/fleet"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/workload"
)

// loadFixture parses the committed two-cohort fixture spec.
func loadFixture(t *testing.T) *Spec {
	t.Helper()
	s, err := Load("testdata/fixture.json")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// small flat spec used by focused tests.
func flatSpec() *Spec {
	return &Spec{
		Name:          "flat",
		Seed:          7,
		HorizonCycles: 5_500_000,
		Cohorts: []Cohort{{
			Name:    "c",
			Arrival: ArrivalProcess{Process: Fixed, MeanIntervalCycles: 1_000_000},
			Mix:     []MixEntry{{Workload: "exchange2", Weight: 1}},
		}},
	}
}

func TestFixedProcessTimes(t *testing.T) {
	arrivals, m, err := Compile(flatSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.CloseArrivals(arrivals)
	want := []uint64{1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000}
	if len(m.Launches) != len(want) {
		t.Fatalf("got %d launches, want %d:\n%s", len(m.Launches), len(want), m)
	}
	for i, l := range m.Launches {
		if l.At != want[i] {
			t.Errorf("launch %d at %d, want %d", i, l.At, want[i])
		}
		if l.Name != "c.exchange2/"+string(rune('0'+i)) {
			t.Errorf("launch %d named %q", i, l.Name)
		}
	}
}

// TestCompileDeterministic is the tentpole contract: two compilations
// of one spec agree on every launch and on every access of every
// stream.
func TestCompileDeterministic(t *testing.T) {
	s := loadFixture(t)
	a1, m1, err := Compile(s, Options{Scheme: sim.DFPStop})
	if err != nil {
		t.Fatal(err)
	}
	a2, m2, err := Compile(s, Options{Scheme: sim.DFPStop})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Launches, m2.Launches) {
		t.Fatalf("manifests diverge:\n%s\nvs\n%s", m1, m2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("arrival counts diverge: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].At != a2[i].At || a1[i].Enclave.Name != a2[i].Enclave.Name ||
			a1[i].Enclave.Pages != a2[i].Enclave.Pages {
			t.Fatalf("arrival %d headers diverge", i)
		}
		t1 := mem.Collect(a1[i].Enclave.Stream)
		t2 := mem.Collect(a2[i].Enclave.Stream)
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("arrival %d (%s): streams diverge (%d vs %d accesses)",
				i, a1[i].Enclave.Name, len(t1), len(t2))
		}
	}
}

// TestJSONRoundTrip re-marshals a parsed spec and checks the copy
// compiles to the identical manifest.
func TestJSONRoundTrip(t *testing.T) {
	s := loadFixture(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	a1, m1, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.CloseArrivals(a1)
	a2, m2, err := Compile(s2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.CloseArrivals(a2)
	if !reflect.DeepEqual(m1.Launches, m2.Launches) {
		t.Fatalf("round-tripped spec compiles differently:\n%s\nvs\n%s", m1, m2)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","seed":1,"horizon_cycles":10,"cohorts":[],"typo_knob":1}`))
	if err == nil || !strings.Contains(err.Error(), "typo_knob") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	valid := func() *Spec { return flatSpec() }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "name"},
		{"no horizon", func(s *Spec) { s.HorizonCycles = 0 }, "horizon"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "cohort"},
		{"dup cohort", func(s *Spec) { s.Cohorts = append(s.Cohorts, s.Cohorts[0]) }, "duplicate"},
		{"bad process", func(s *Spec) { s.Cohorts[0].Arrival.Process = "zeta" }, "zeta"},
		{"zero interval", func(s *Spec) { s.Cohorts[0].Arrival.MeanIntervalCycles = 0 }, "mean_interval"},
		{"negative cv", func(s *Spec) {
			s.Cohorts[0].Arrival.Process = Gamma
			s.Cohorts[0].Arrival.CV = -1
		}, "cv"},
		{"negative shape", func(s *Spec) {
			s.Cohorts[0].Arrival.Process = Weibull
			s.Cohorts[0].Arrival.Shape = -1
		}, "shape"},
		{"empty mix", func(s *Spec) { s.Cohorts[0].Mix = nil }, "mix"},
		{"unknown workload", func(s *Spec) { s.Cohorts[0].Mix[0].Workload = "nope" }, "nope"},
		{"zero weight", func(s *Spec) { s.Cohorts[0].Mix[0].Weight = 0 }, "weight"},
		{"train share", func(s *Spec) { s.Cohorts[0].TrainShare = 1.5 }, "train_share"},
		{"zero period", func(s *Spec) { s.Cohorts[0].Envelope = []Period{{Cycles: 0, Scale: 1}} }, "cycles"},
		{"negative scale", func(s *Spec) { s.Cohorts[0].Envelope = []Period{{Cycles: 10, Scale: -1}} }, "scale"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Bad cohort scheme surfaces at compile time.
	s := valid()
	s.Cohorts[0].Scheme = "warp"
	if _, _, err := Compile(s, Options{}); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("bad scheme: %v", err)
	}
}

func TestEnvelopeAt(t *testing.T) {
	e := newEnvelope([]Period{{Cycles: 100, Scale: 2}, {Cycles: 50, Scale: 0}})
	cases := []struct {
		t      uint64
		scale  float64
		segEnd uint64
	}{
		{0, 2, 100}, {99, 2, 100}, {100, 0, 150}, {149, 0, 150},
		{150, 2, 250}, {260, 0, 300}, {300, 2, 400},
	}
	for _, tc := range cases {
		scale, end := e.at(tc.t)
		if scale != tc.scale || end != tc.segEnd {
			t.Errorf("at(%d) = (%g, %d), want (%g, %d)", tc.t, scale, end, tc.scale, tc.segEnd)
		}
	}
	// No envelope: flat scale 1.
	if scale, _ := newEnvelope(nil).at(12345); scale != 1 {
		t.Errorf("empty envelope scale = %g", scale)
	}
}

// TestZeroScaleSilences pins that a zero-scale segment stays quiet.
// The scale in force at an interval's start governs the whole interval
// (the documented piecewise approximation), so the interval straddling
// the boundary may land its launch at the segment's first cycle — but
// never strictly inside it.
func TestZeroScaleSilences(t *testing.T) {
	s := flatSpec()
	s.Cohorts[0].Envelope = []Period{{Cycles: 2_000_000, Scale: 1}, {Cycles: 2_000_000, Scale: 0}}
	arrivals, m, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.CloseArrivals(arrivals)
	for _, l := range m.Launches {
		phase := l.At % 4_000_000
		if phase > 2_000_000 {
			t.Errorf("launch at %d falls inside a zero-scale segment", l.At)
		}
	}
	if len(m.Launches) == 0 {
		t.Fatal("no launches at all")
	}
}

// TestModStream pins the modifier arithmetic: rotation, drift, bounds,
// and Close forwarding.
func TestModStream(t *testing.T) {
	src := mem.SliceStream([]mem.Access{
		{Page: 0}, {Page: 1}, {Page: 2}, {Page: 3}, {Page: 4}, {Page: 5},
	})
	m := modify(src, 4, 1, 2) // footprint 4, shift 1, drift every 2 accesses
	var pages []mem.PageID
	for a, ok := m.Next(); ok; a, ok = m.Next() {
		pages = append(pages, a.Page)
	}
	// off = 1 + i/2: pages (p + off) % 4.
	want := []mem.PageID{1, 2, 0, 1, 3, 0}
	if !reflect.DeepEqual(pages, want) {
		t.Fatalf("modified pages %v, want %v", pages, want)
	}

	// Bounds under a real generator: every page below the footprint.
	w, err := workload.ByName("exchange2")
	if err != nil {
		t.Fatal(err)
	}
	ms := modify(w.Stream(workload.Ref), w.FootprintPages, w.FootprintPages-1, 100)
	n := 0
	for a, ok := ms.Next(); ok; a, ok = ms.Next() {
		if uint64(a.Page) >= w.FootprintPages {
			t.Fatalf("access %d: page %d outside footprint %d", n, a.Page, w.FootprintPages)
		}
		n++
	}

	// Unmodified pass-through keeps the raw stream (and its Closer).
	raw := w.Stream(workload.Train)
	if got := modify(raw, w.FootprintPages, 0, 0); got != raw {
		t.Error("modify(0,0) wrapped the stream")
	}
	raw.(mem.Closer).Close()

	// Close on a wrapped stream releases the coroutine underneath.
	wrapped := modify(w.Stream(workload.Train), w.FootprintPages, 3, 0)
	wrapped.(mem.Closer).Close()
}

func TestMaxLaunchesGuard(t *testing.T) {
	s := flatSpec()
	s.Cohorts[0].Arrival.MeanIntervalCycles = 10 // 550k launches before the horizon
	_, _, err := Compile(s, Options{})
	if err == nil || !strings.Contains(err.Error(), "launches") {
		t.Fatalf("runaway spec compiled: %v", err)
	}
	// The guard is adjustable.
	s2 := flatSpec()
	if _, _, err := Compile(s2, Options{MaxLaunches: 2}); err == nil {
		t.Fatal("MaxLaunches 2 admitted 5 launches")
	}
}

// TestNoLaunches pins the empty-stream error.
func TestNoLaunches(t *testing.T) {
	s := flatSpec()
	s.HorizonCycles = 10 // below the first fixed arrival
	if _, _, err := Compile(s, Options{}); err == nil {
		t.Fatal("empty compile succeeded")
	}
}

// TestSelectionRequired pins the SIP wiring: a SIP cohort without a
// Selection callback is a compile error, and with one every SIP launch
// carries it.
func TestSelectionRequired(t *testing.T) {
	s := flatSpec()
	s.Cohorts[0].Scheme = "sip"
	if _, _, err := Compile(s, Options{}); err == nil || !strings.Contains(err.Error(), "Selection") {
		t.Fatalf("SIP compiled without a selection source: %v", err)
	}
}

// TestRateScale pins that RateScale n multiplies launch counts roughly
// n-fold (exactly, for the fixed process).
func TestRateScale(t *testing.T) {
	s := flatSpec()
	a1, m1, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.CloseArrivals(a1)
	a2, m2, err := Compile(s, Options{RateScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	fleet.CloseArrivals(a2)
	if got, want := len(m2.Launches), 2*len(m1.Launches); got != want && got != want+1 {
		t.Errorf("RateScale 2: %d launches, want ~%d", got, want)
	}
}

// TestCompileThroughFleet runs the fixture end-to-end: compile, place
// onto two hosts, and require the whole report byte-identical between
// sequential and 8-way host advancement — the spec-level restatement of
// the fleet determinism contract.
func TestCompileThroughFleet(t *testing.T) {
	s := loadFixture(t)
	var outs []string
	for _, workers := range []int{1, 8} {
		arrivals, _, err := Compile(s, Options{Scheme: sim.DFPStop})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fleet.Run(arrivals, fleet.Config{
			Hosts:    2,
			Policy:   fleet.LeastLoaded,
			Platform: sim.SharedConfig{EPCPages: 2048},
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, res.String())
	}
	if outs[0] != outs[1] {
		t.Fatalf("fleet report differs across worker counts:\n%s\nvs\n%s", outs[0], outs[1])
	}
}
