package experiments

import (
	"fmt"

	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

// SummaryRow is one benchmark's improvement under every scheme.
type SummaryRow struct {
	Name     string
	Category workload.Category
	// Baseline run characteristics.
	BaselineCycles uint64
	Faults         uint64
	FaultShare     float64 // fraction of baseline time in fault handling
	// Improvements in percent (positive = faster); SIP and Hybrid are
	// meaningless when Instrumentable is false.
	DFP            float64
	DFPStop        float64
	SIP            float64
	Hybrid         float64
	Points         int // SIP instrumentation points
	Stopped        bool
	Instrumentable bool
}

// SummaryResult is the evaluation in one table: every benchmark under
// every scheme.
type SummaryResult struct {
	Rows []SummaryRow
}

// Summary runs every benchmark under every applicable scheme — the
// repository's one-stop paper-versus-measured record. Each benchmark is
// one parallel cell; the schemes within a cell run sequentially, so the
// sweep is deterministic at any worker count.
func Summary(r *Runner) (SummaryResult, error) {
	var out SummaryResult
	ws := workload.All()
	rows, err := sweep(r, "summary", len(ws),
		func(i int) string { return ws[i].Name },
		func(i int) (SummaryRow, error) {
			w := ws[i]
			base, err := r.Run(w, sim.Baseline)
			if err != nil {
				return SummaryRow{}, err
			}
			row := SummaryRow{
				Name:           w.Name,
				Category:       w.Category,
				BaselineCycles: base.Cycles,
				Faults:         base.Faults(),
				FaultShare:     float64(base.FaultCycles()) / float64(base.Cycles),
			}
			d, err := r.Run(w, sim.DFP)
			if err != nil {
				return SummaryRow{}, err
			}
			row.DFP = stats.ImprovementPct(d.Cycles, base.Cycles)
			ds, err := r.Run(w, sim.DFPStop)
			if err != nil {
				return SummaryRow{}, err
			}
			row.DFPStop = stats.ImprovementPct(ds.Cycles, base.Cycles)
			row.Stopped = ds.Kernel.DFPStopped

			row.Instrumentable = w.Instrumentable
			if w.Instrumentable {
				sel, err := r.Selection(w)
				if err != nil {
					return SummaryRow{}, err
				}
				row.Points = sel.Points()
				s, err := r.Run(w, sim.SIP)
				if err != nil {
					return SummaryRow{}, err
				}
				row.SIP = stats.ImprovementPct(s.Cycles, base.Cycles)
				h, err := r.Run(w, sim.Hybrid)
				if err != nil {
					return SummaryRow{}, err
				}
				row.Hybrid = stats.ImprovementPct(h.Cycles, base.Cycles)
			}
			return row, nil
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// String renders the summary.
func (s SummaryResult) String() string {
	t := &stats.Table{Header: []string{
		"benchmark", "faultShare", "DFP", "DFP-stop", "SIP", "SIP+DFP", "points",
	}}
	for _, row := range s.Rows {
		sip, hyb := "n/a", "n/a"
		if row.Instrumentable {
			sip = fmt.Sprintf("%+.1f%%", row.SIP)
			hyb = fmt.Sprintf("%+.1f%%", row.Hybrid)
		}
		t.Add(row.Name,
			fmt.Sprintf("%.0f%%", 100*row.FaultShare),
			fmt.Sprintf("%+.1f%%", row.DFP),
			fmt.Sprintf("%+.1f%%", row.DFPStop),
			sip, hyb, row.Points)
	}
	return "Summary: improvement over baseline, every benchmark x scheme\n" + t.String()
}
