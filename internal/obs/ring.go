package obs

import "sync"

// DefaultRingCapacity is the event window a NewRing(0) retains. At the
// engine's typical emission density (a few events per fault) it covers
// the most recent tens of millions of simulated cycles, which is what a
// live scrape wants to look at.
const DefaultRingCapacity = 1 << 16

// Ring is a bounded, concurrency-safe Hook: it retains the most recent
// `capacity` events and drops the oldest beyond that. Unlike Recorder —
// which rides the single-goroutine run and is lock-free — Ring takes a
// mutex per operation so an HTTP scraper (or any other goroutine) can
// read a consistent snapshot while the engine is still emitting.
//
// Every emitted event gets a 1-based sequence number; dropped events keep
// their numbers, so a poller can detect gaps: if Since(cursor) reports a
// first-retained sequence above cursor+1, the window slid past it.
type Ring struct {
	mu     sync.Mutex
	buf    []Event // circular, len(buf) == capacity
	start  int     // index of the oldest retained event
	n      int     // number of retained events
	total  uint64  // events ever emitted == sequence of the newest
	counts [kindCount]uint64
	lastT  uint64 // largest timestamp seen
}

// NewRing returns a Ring retaining at most capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Hook.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.counts[e.Kind]++
	if e.T > r.lastT {
		r.lastT = e.T
	}
	if e.Kind == KindLoadStart && e.V1 > r.lastT {
		r.lastT = e.V1
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

// Total returns the number of events ever emitted (the newest event's
// sequence number).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have slid out of the retained window.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(r.n)
}

// LastT returns the largest virtual-cycle timestamp (or transfer
// completion) observed so far — the run's progress gauge.
func (r *Ring) LastT() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastT
}

// KindCounts returns the per-kind totals over the whole run (not just the
// retained window), keyed by wire name; zero kinds are omitted.
func (r *Ring) KindCounts() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64)
	for _, k := range Kinds() {
		if r.counts[k] > 0 {
			out[k.String()] = r.counts[k]
		}
	}
	return out
}

// RingStats is a consistent point-in-time view of a Ring's gauges,
// taken under one lock acquisition.
type RingStats struct {
	// Total is the number of events ever emitted.
	Total uint64
	// Retained is the number currently held in the window.
	Retained int
	// Dropped is Total minus Retained.
	Dropped uint64
	// LastT is the largest timestamp (or transfer completion) seen.
	LastT uint64
	// Counts holds whole-run per-kind totals keyed by wire name; zero
	// kinds are omitted.
	Counts map[string]uint64
}

// Stats returns a consistent snapshot of the ring's gauges.
func (r *Ring) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]uint64)
	for _, k := range Kinds() {
		if r.counts[k] > 0 {
			counts[k.String()] = r.counts[k]
		}
	}
	return RingStats{
		Total:    r.total,
		Retained: r.n,
		Dropped:  r.total - uint64(r.n),
		LastT:    r.lastT,
		Counts:   counts,
	}
}

// Snapshot returns a copy of the retained window, oldest first, together
// with the sequence number of its first event (0 when empty).
func (r *Ring) Snapshot() ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.copyFrom(0)
}

// Since returns a copy of the retained events with sequence numbers
// strictly greater than cursor, oldest first, together with the sequence
// of the first returned event (0 when none). Pass the last sequence you
// have seen (first + len(events) - 1 from the previous call, or the
// "next" cursor the HTTP endpoint hands back) to poll incrementally.
func (r *Ring) Since(cursor uint64) ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.total - uint64(r.n) // sequence of oldest retained, minus 1
	skip := 0
	if cursor > oldest {
		skip = int(cursor - oldest)
		if skip > r.n {
			skip = r.n
		}
	}
	return r.copyFrom(skip)
}

// copyFrom copies the retained window from the given offset; callers
// hold r.mu.
func (r *Ring) copyFrom(skip int) ([]Event, uint64) {
	if skip >= r.n {
		return nil, 0
	}
	out := make([]Event, r.n-skip)
	for i := range out {
		out[i] = r.buf[(r.start+skip+i)%len(r.buf)]
	}
	first := r.total - uint64(r.n) + uint64(skip) + 1
	return out, first
}
