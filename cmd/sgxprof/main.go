// Command sgxprof profiles a benchmark the way the paper's offline
// analysis does: it characterizes the page-access pattern (Figure 3),
// classifies every access site (§4.4), and reports the instrumentation
// selection SIP would make (Table 2).
//
// Usage:
//
//	sgxprof -bench deepsjeng
//	sgxprof -bench lbm -pattern    # dump page-vs-time samples (Figure 3 data)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/trace"
	"sgxpreload/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sgxprof:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sgxprof", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", "deepsjeng", "benchmark name")
		epc       = fs.Int("epc", 2048, "EPC capacity in 4KiB pages")
		threshold = fs.Float64("threshold", 0.05, "SIP irregular-access-ratio threshold")
		pattern   = fs.Bool("pattern", false, "dump downsampled page-vs-time samples (Figure 3 data)")
		input     = fs.String("input", "train", "input set to profile: train | ref")
		topSites  = fs.Int("top", 15, "number of sites to list, by irregular ratio")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	in := workload.Train
	if *input == "ref" {
		in = workload.Ref
	}
	tr := w.Generate(in)

	// Pattern characterization (Figure 3 / Table 1).
	p := trace.Analyze(tr)
	fmt.Fprintf(out, "benchmark:        %s (%s input, %d accesses)\n", w.Name, in, p.Accesses)
	fmt.Fprintf(out, "footprint:        %d pages (%.1f MiB)\n", p.Footprint, float64(p.Footprint)*4096/(1<<20))
	fmt.Fprintf(out, "sequential ratio: %.3f\n", p.SequentialRatio)
	fmt.Fprintf(out, "stream ratio:     %.3f\n", p.StreamRatio)
	fmt.Fprintf(out, "mean run length:  %.2f pages\n", p.MeanRunLength)
	fmt.Fprintf(out, "classification:   %s\n", p.Classify(uint64(*epc)))

	if *pattern {
		rec := trace.NewRecorder(uint64(len(tr)/2000 + 1))
		for _, a := range tr {
			rec.Record(a.Page)
		}
		fit := trace.FitLinear(rec.Samples())
		fmt.Fprintf(out, "linear fit:       slope %.3f pages/kaccess, R2 %.3f\n",
			fit.SlopePagesPerKAccess(), fit.R2)
		segs := trace.SegmentedFit(rec.Samples(), 8, 0.05)
		fmt.Fprintf(out, "phases:           %d\n", len(segs))
		for _, s := range segs {
			fmt.Fprintf(out, "  [%5d, %5d)  slope %8.3f pages/kaccess, R2 %.3f\n",
				s.Start, s.End, s.Fit.SlopePagesPerKAccess(), s.Fit.R2)
		}
		fmt.Fprintln(out, "# index page")
		for _, s := range rec.Samples() {
			fmt.Fprintf(out, "%d %d\n", s.Index, s.Page)
		}
		return nil
	}

	// Site classification (§4.4) and selection (Table 2).
	cl, err := sip.NewClassifier(*epc, w.ELRangePages(), dfp.DefaultConfig())
	if err != nil {
		return err
	}
	for _, a := range tr {
		cl.Record(a.Site, a.Page)
	}
	prof := cl.Profile()
	sel := sip.Select(prof, *threshold, 32)

	fmt.Fprintf(out, "profiled sites:   %d\n", len(prof.Sites))
	fmt.Fprintf(out, "profiled faults:  %d (%.1f%% of accesses)\n",
		prof.Faults, 100*float64(prof.Faults)/float64(prof.Accesses))
	fmt.Fprintf(out, "instrumented:     %d points at threshold %.0f%%\n", sel.Points(), *threshold*100)

	sites := make([]uint32, 0, len(prof.Sites))
	for s := range prof.Sites {
		sites = append(sites, uint32(s))
	}
	sort.Slice(sites, func(i, j int) bool {
		return prof.Site(workload.SiteOf(sites[i])).IrregularRatio() >
			prof.Site(workload.SiteOf(sites[j])).IrregularRatio()
	})
	if len(sites) > *topSites {
		sites = sites[:*topSites]
	}
	tbl := &stats.Table{Header: []string{"site", "class1", "class2", "class3", "irregular", "instrumented"}}
	for _, s := range sites {
		sp := prof.Site(workload.SiteOf(s))
		tbl.Add(s, sp.Class1, sp.Class2, sp.Class3,
			fmt.Sprintf("%.1f%%", 100*sp.IrregularRatio()),
			sel.Instrumented(workload.SiteOf(s)))
	}
	fmt.Fprintln(out, tbl)
	return nil
}
