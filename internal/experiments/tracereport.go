package experiments

import (
	"fmt"
	"strings"

	"sgxpreload/internal/obs"
	"sgxpreload/internal/plot"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/workload"
)

// RunTraced executes workload w's ref input under scheme with an event
// recorder attached, returning the result together with the recorded
// timeline. The hook only observes the run: the returned Result is
// identical to an untraced Run of the same configuration.
func (r *Runner) RunTraced(w *workload.Workload, scheme sim.Scheme) (sim.Result, *obs.Recorder, error) {
	rec := obs.NewRecorder()
	cfg := sim.Config{
		Scheme:       scheme,
		EPCPages:     r.p.EPCPages,
		ELRangePages: w.ELRangePages(),
		DFP:          r.p.DFP,
		Hook:         rec,
	}
	if scheme.UsesSIP() {
		if !w.Instrumentable {
			return sim.Result{}, nil, fmt.Errorf("experiments: %s is not instrumentable (%s)", w.Name, w.Language)
		}
		sel, err := r.Selection(w)
		if err != nil {
			return sim.Result{}, nil, err
		}
		cfg.Selection = sel
	}
	res, err := sim.Run(r.Trace(w, workload.Ref), cfg)
	if err != nil {
		return sim.Result{}, nil, fmt.Errorf("experiments: traced %s/%s: %w", w.Name, scheme, err)
	}
	return res, rec, nil
}

// TraceReport is the per-run observability artifact: the run's counters,
// the derived event metrics, and the page-versus-time timeline figure.
type TraceReport struct {
	// Benchmark and Scheme identify the traced run.
	Benchmark string
	Scheme    sim.Scheme
	// Result is the run's ordinary outcome (identical to an untraced run).
	Result sim.Result
	// Events is the recorded timeline length.
	Events int
	// Report carries the derived metrics.
	Report obs.Report
	chart  plot.Chart
}

// TraceRun executes one traced run and derives its report.
func TraceRun(r *Runner, bench string, scheme sim.Scheme) (*TraceReport, error) {
	w, err := mustWorkload(bench)
	if err != nil {
		return nil, err
	}
	res, rec, err := r.RunTraced(w, scheme)
	if err != nil {
		return nil, err
	}
	return &TraceReport{
		Benchmark: bench,
		Scheme:    scheme,
		Result:    res,
		Events:    rec.Len(),
		Report:    obs.BuildReport(rec.Events()),
		chart: obs.Timeline(fmt.Sprintf("%s / %s event timeline", bench, scheme),
			rec.Events(), 4000),
	}, nil
}

// Trace is the default trace report: deepsjeng under DFP-stop, the
// paper's canonical safety-valve story (§4.2). deepsjeng's irregular
// fault history drives preload accuracy down until the service thread
// trips the global abort; the report shows the accuracy decay, the trip
// point, and the channel going quiet afterwards.
func Trace(r *Runner) (*TraceReport, error) {
	return TraceRun(r, "deepsjeng", sim.DFPStop)
}

// String renders the report.
func (a *TraceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traced run:          %s under %s (%d events)\n",
		a.Benchmark, a.Scheme, a.Events)
	k := a.Result.Kernel
	fmt.Fprintf(&b, "cycles:              %d (%d demand faults, %d preloads started, %d dropped)\n",
		a.Result.Cycles, k.DemandFaults, k.PreloadsStarted, k.PreloadsDropped)
	if k.DFPStopped {
		status := "MISMATCH"
		if a.Report.StopCycle == k.DFPStopCycle {
			status = "matches"
		}
		fmt.Fprintf(&b, "safety valve:        fired at cycle %d (event timeline %s)\n",
			k.DFPStopCycle, status)
	}
	b.WriteString(a.Report.String())
	return b.String()
}

// Charts implements Charter with the timeline figure.
func (a *TraceReport) Charts() []plot.Chart { return []plot.Chart{a.chart} }
