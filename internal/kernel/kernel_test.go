package kernel

import (
	"testing"

	"sgxpreload/internal/channel"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/mem"
)

func testCosts() mem.CostModel { return mem.DefaultCostModel() }

func newKernel(t *testing.T, epcPages int, d *dfp.Config) *Kernel {
	t.Helper()
	k, err := New(Config{
		Costs:        testCosts(),
		EPCPages:     epcPages,
		ELRangePages: 1 << 16,
		DFP:          d,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Costs: testCosts(), EPCPages: 0, ELRangePages: 10}); err == nil {
		t.Fatal("New with zero EPC succeeded")
	}
	if _, err := New(Config{EPCPages: 4, ELRangePages: 10}); err == nil {
		t.Fatal("New with zero cost model succeeded")
	}
	bad := dfp.Config{}
	if _, err := New(Config{Costs: testCosts(), EPCPages: 4, ELRangePages: 10, DFP: &bad}); err == nil {
		t.Fatal("New with invalid DFP config succeeded")
	}
}

func TestBaselineFaultCost(t *testing.T) {
	k := newKernel(t, 8, nil)
	cm := testCosts()
	resume := k.HandleFault(1000, 42)
	// Empty EPC: no eviction; cost = AEX + Load + ERESUME.
	want := 1000 + cm.AEX + cm.Load + cm.Eresume
	if resume != want {
		t.Fatalf("resume = %d, want %d", resume, want)
	}
	if !k.Present(42) {
		t.Fatal("page absent after fault service")
	}
	st := k.Stats()
	if st.DemandFaults != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 fault, 0 evictions", st)
	}
}

func TestFaultEvictsWhenFull(t *testing.T) {
	k := newKernel(t, 2, nil)
	cm := testCosts()
	tNow := uint64(0)
	for _, p := range []mem.PageID{1, 2} {
		tNow = k.HandleFault(tNow, p)
	}
	resume := k.HandleFault(tNow, 3)
	want := tNow + cm.AEX + cm.Evict + cm.Load + cm.Eresume
	if resume != want {
		t.Fatalf("resume = %d, want %d (with eviction)", resume, want)
	}
	if k.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", k.Stats().Evictions)
	}
	if k.EPC().Resident() != 2 {
		t.Fatalf("resident = %d, want 2", k.EPC().Resident())
	}
}

func TestDFPPredictsAndPreloads(t *testing.T) {
	d := dfp.DefaultConfig()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101) // stream hit: queues 102..105
	// Give the preload worker time: sync far in the future.
	k.Sync(tNow + 10*testCosts().Load)
	for p := mem.PageID(102); p <= 105; p++ {
		if !k.Present(p) {
			t.Fatalf("page %d not preloaded", p)
		}
		if !k.EPC().Preloaded(p) {
			t.Fatalf("page %d not marked as preloaded", p)
		}
	}
	if k.Stats().PreloadsStarted != 4 {
		t.Fatalf("PreloadsStarted = %d, want 4", k.Stats().PreloadsStarted)
	}
}

func TestPreloadedPageFaultFree(t *testing.T) {
	d := dfp.DefaultConfig()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101)
	k.Sync(tNow + 10*testCosts().Load)
	faultsBefore := k.Stats().DemandFaults
	if !k.Touch(102) {
		t.Fatal("preloaded page not touchable")
	}
	if k.Stats().DemandFaults != faultsBefore {
		t.Fatal("touching a preloaded page took a fault")
	}
}

func TestFaultOnInflightPreloadWaits(t *testing.T) {
	d := dfp.DefaultConfig()
	cm := testCosts()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101) // queues 102..105 eligible at tNow
	// Let the preload of 102 start but not finish.
	mid := tNow + cm.Load/2
	k.Sync(mid)
	if k.Channel().InflightPage() != 102 {
		t.Fatalf("inflight = %d, want 102", k.Channel().InflightPage())
	}
	resume := k.HandleFault(mid, 102)
	// The handler exits (AEX), then waits for the non-preemptible load,
	// then re-enters. The load completes at tNow + PreloadExtra + Load.
	done := tNow + cm.Load + cm.PreloadExtra
	want := done + cm.Eresume
	if resume != want {
		t.Fatalf("resume = %d, want %d (wait for in-flight preload)", resume, want)
	}
	if k.Stats().InflightHits != 1 {
		t.Fatalf("InflightHits = %d, want 1", k.Stats().InflightHits)
	}
}

func TestInWindowFaultAbortsBatch(t *testing.T) {
	d := dfp.DefaultConfig()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101) // queues 102..105, eligible at tNow
	// Fault on 104 immediately: 102 may be in flight; 104 is pending.
	k.Sync(tNow + 1)
	if !k.Channel().PendingContains(104) {
		t.Fatal("104 not pending; test setup broken")
	}
	k.HandleFault(tNow+1, 104)
	if k.Stats().InWindowAborts != 1 {
		t.Fatalf("InWindowAborts = %d, want 1", k.Stats().InWindowAborts)
	}
	if k.Channel().PendingContains(103) {
		t.Fatal("batch remainder not aborted")
	}
}

func TestDemandJumpsAheadOfPendingPreloads(t *testing.T) {
	d := dfp.DefaultConfig()
	cm := testCosts()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101) // queues 102..105
	k.Sync(tNow + 1)                // 102 in flight, 103..105 pending
	// An unrelated fault must wait only for the in-flight transfer, not
	// for the whole pending batch.
	resume := k.HandleFault(tNow+1, 5000)
	inflightDone := tNow + cm.Load + cm.PreloadExtra
	maxResume := inflightDone + cm.Load + cm.Evict + cm.Eresume + cm.AEX
	if resume > maxResume {
		t.Fatalf("resume = %d, want <= %d (demand must preempt pending preloads)", resume, maxResume)
	}
}

func TestNotifyLoadSkipsWorldSwitch(t *testing.T) {
	k := newKernel(t, 8, nil)
	cm := testCosts()
	done := k.NotifyLoad(1000, 7)
	if done != 1000+cm.Load {
		t.Fatalf("done = %d, want %d (load only, no AEX/ERESUME)", done, 1000+cm.Load)
	}
	if !k.Present(7) {
		t.Fatal("page absent after notify load")
	}
	st := k.Stats()
	if st.NotifyLoads != 1 || st.DemandFaults != 0 {
		t.Fatalf("stats = %+v, want notify load without fault", st)
	}
}

func TestNotifyLoadOnResidentPage(t *testing.T) {
	k := newKernel(t, 8, nil)
	k.HandleFault(0, 7)
	done := k.NotifyLoad(99999999, 7)
	if done != 99999999 {
		t.Fatalf("done = %d, want immediate return for resident page", done)
	}
	if k.Stats().NotifyHits != 1 {
		t.Fatalf("NotifyHits = %d, want 1", k.Stats().NotifyHits)
	}
}

func TestPresenceBitmapTracksResidency(t *testing.T) {
	k := newKernel(t, 2, nil)
	bm := k.EPC().PresenceBitmap()
	tNow := k.HandleFault(0, 1)
	tNow = k.HandleFault(tNow, 2)
	if !bm.Get(1) || !bm.Get(2) {
		t.Fatal("bitmap missing resident pages")
	}
	k.HandleFault(tNow, 3) // evicts one of 1, 2
	set := 0
	for _, p := range []uint64{1, 2, 3} {
		if bm.Get(p) {
			set++
		}
	}
	if set != 2 {
		t.Fatalf("bitmap shows %d resident of {1,2,3}, want 2", set)
	}
}

func TestServiceScanFeedsStopFormula(t *testing.T) {
	d := dfp.DefaultConfig()
	d.Stop = true
	d.StopSlack = 1
	k, err := New(Config{
		Costs:        testCosts(),
		EPCPages:     256,
		ELRangePages: 1 << 16,
		DFP:          &d,
		ScanPeriod:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Trigger a stream, preload pages, never touch them, then scan: the
	// accuracy collapses and the valve fires.
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101)
	k.Sync(tNow + 20*testCosts().Load)
	k.MaybeScan(tNow + 20*testCosts().Load)
	if !k.Predictor().Stopped() {
		t.Fatal("safety valve did not fire on all-junk preloads")
	}
	if !k.Stats().DFPStopped || k.Stats().DFPStopCycle == 0 {
		t.Fatalf("stats do not record the stop: %+v", k.Stats())
	}
	// Stopped predictor: new stream hits produce no preloads.
	tNow = k.HandleFault(tNow+30*testCosts().Load, 500)
	tNow = k.HandleFault(tNow, 501)
	k.Sync(tNow + 20*testCosts().Load)
	if k.Present(502) {
		t.Fatal("preloading continued after the valve fired")
	}
}

func TestScanCountsAccessedPreloadsOnce(t *testing.T) {
	d := dfp.DefaultConfig()
	k, err := New(Config{
		Costs:        testCosts(),
		EPCPages:     256,
		ELRangePages: 1 << 16,
		DFP:          &d,
		ScanPeriod:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101)
	end := tNow + 20*testCosts().Load
	k.Sync(end)
	k.Touch(102)
	k.Touch(103)
	k.MaybeScan(end)
	if got := k.Predictor().AccPreloadCounter(); got != 2 {
		t.Fatalf("AccPreloadCounter = %d, want 2", got)
	}
	k.MaybeScan(end + 1000)
	if got := k.Predictor().AccPreloadCounter(); got != 2 {
		t.Fatalf("AccPreloadCounter = %d after rescan, want 2 (count once)", got)
	}
}

func TestDrainCompletesOutstandingWork(t *testing.T) {
	d := dfp.DefaultConfig()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101)
	end := k.Drain(tNow)
	if end < tNow {
		t.Fatalf("Drain end %d before now %d", end, tNow)
	}
	if k.Channel().PendingLen() != 0 {
		t.Fatal("pending work after Drain")
	}
	for p := mem.PageID(102); p <= 105; p++ {
		if !k.Present(p) {
			t.Fatalf("page %d not loaded by Drain", p)
		}
	}
}

func TestPredictionsOutsideELRangeDropped(t *testing.T) {
	d := dfp.DefaultConfig()
	k, err := New(Config{
		Costs:        testCosts(),
		EPCPages:     64,
		ELRangePages: 104, // stream 100,101 predicts 102..105; 104,105 out of range
		DFP:          &d,
	})
	if err != nil {
		t.Fatal(err)
	}
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101)
	k.Drain(tNow)
	if k.Present(102) != true || k.Present(103) != true {
		t.Fatal("in-range predictions not loaded")
	}
	if k.EPC().Resident() != 4 { // 100, 101, 102, 103
		t.Fatalf("resident = %d, want 4 (out-of-range predictions dropped)", k.EPC().Resident())
	}
}

// TestTimeMonotone drives a mixed operation sequence and checks resume
// times never go backwards relative to the request times.
func TestTimeMonotone(t *testing.T) {
	d := dfp.DefaultConfig()
	k := newKernel(t, 16, &d)
	var tNow uint64
	pages := []mem.PageID{10, 11, 12, 500, 13, 14, 900, 15, 16, 17, 901, 18}
	for i, p := range pages {
		tNow += uint64(i * 100)
		k.Sync(tNow)
		if k.Touch(p) {
			continue
		}
		var next uint64
		if i%3 == 0 {
			next = k.NotifyLoad(tNow, p)
		} else {
			next = k.HandleFault(tNow, p)
		}
		if next < tNow {
			t.Fatalf("time went backwards: %d -> %d", tNow, next)
		}
		tNow = next
		if err := k.EPC().CheckInvariants(); err != nil {
			t.Fatalf("EPC invariants after op %d: %v", i, err)
		}
	}
}

func TestBackgroundReclaimMaintainsWatermarks(t *testing.T) {
	k, err := New(Config{
		Costs:             testCosts(),
		EPCPages:          64,
		ELRangePages:      1 << 16,
		ScanPeriod:        1000,
		BackgroundReclaim: true,
		LowWater:          4,
		HighWater:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tNow uint64
	for p := mem.PageID(0); p < 64; p++ {
		tNow = k.HandleFault(tNow, p)
	}
	// EPC full; the next scan must reclaim up to the high watermark.
	k.MaybeScan(tNow + 10_000_000)
	free := k.EPC().Capacity() - k.EPC().Resident()
	if free < 8 {
		t.Fatalf("free = %d after reclaim scan, want >= HighWater 8", free)
	}
	if k.Stats().BackgroundEvictions == 0 {
		t.Fatal("no background evictions recorded")
	}
}

func TestBackgroundReclaimCheapensFaultPath(t *testing.T) {
	cm := testCosts()
	k, err := New(Config{
		Costs:             cm,
		EPCPages:          64,
		ELRangePages:      1 << 16,
		ScanPeriod:        1000,
		BackgroundReclaim: true,
		LowWater:          4,
		HighWater:         16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tNow uint64
	for p := mem.PageID(0); p < 64; p++ {
		tNow = k.HandleFault(tNow, p)
	}
	k.MaybeScan(tNow + 10_000_000) // reclaims 16 frames
	// With free frames available, a fault pays no synchronous eviction.
	start := tNow + 20_000_000
	resume := k.HandleFault(start, 5000)
	if got, want := resume-start, cm.AEX+cm.Load+cm.Eresume; got != want {
		t.Fatalf("fault with free frames cost %d, want %d (no sync EWB)", got, want)
	}
}

func TestBackgroundReclaimBurstOccupiesChannel(t *testing.T) {
	k, err := New(Config{
		Costs:             testCosts(),
		EPCPages:          32,
		ELRangePages:      1 << 16,
		ScanPeriod:        1000,
		BackgroundReclaim: true,
		LowWater:          2,
		HighWater:         10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tNow uint64
	for p := mem.PageID(0); p < 32; p++ {
		tNow = k.HandleFault(tNow, p)
	}
	before := k.Channel().BusyUntil()
	k.MaybeScan(tNow + 10_000_000)
	after := k.Channel().BusyUntil()
	if after <= before {
		t.Fatal("write-back burst did not occupy the channel")
	}
}

func TestNewSharedValidation(t *testing.T) {
	e, err := epc.New(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Empty page range rejected.
	_, err = NewShared(Config{
		Costs: testCosts(), EPCPages: 8, ELRangePages: 100,
		RangeLo: 50, RangeHi: 50,
	}, e, channel.New())
	if err == nil {
		t.Fatal("empty page range accepted")
	}
}

func TestStaleBacklogDropped(t *testing.T) {
	d := dfp.DefaultConfig()
	d.LoadLength = 16
	k, err := New(Config{
		Costs:        testCosts(),
		EPCPages:     512,
		ELRangePages: 1 << 16,
		DFP:          &d,
		MaxPending:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two quick stream triggers each queue 16 predictions into a backlog
	// capped at 8: the stalest must be dropped.
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101)
	tNow = k.HandleFault(tNow, 5000)
	k.HandleFault(tNow, 5001)
	if k.Channel().PendingLen() > 8 {
		t.Fatalf("pending backlog %d exceeds cap 8", k.Channel().PendingLen())
	}
	if k.Stats().PreloadsDropped == 0 {
		t.Fatal("no stale preloads dropped despite backlog overflow")
	}
}

// Regression: QueuePrefetch used to bound only by ELRangePages, so a
// shared-EPC multi-enclave kernel could prefetch pages belonging to
// another enclave's slice of the shared page space. It must apply the
// same RangeLo/RangeHi bound predict does.
func TestQueuePrefetchRespectsRangeSlice(t *testing.T) {
	e, err := epc.New(8, 200)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewShared(Config{
		Costs: testCosts(), EPCPages: 8, ELRangePages: 200,
		RangeLo: 50, RangeHi: 100,
	}, e, channel.New())
	if err != nil {
		t.Fatal(err)
	}
	k.QueuePrefetch(0, 150) // inside ELRANGE but in another enclave's slice
	k.QueuePrefetch(0, 10)  // below this enclave's slice
	if n := k.Channel().PendingLen(); n != 0 {
		t.Fatalf("prefetch outside [RangeLo, RangeHi) queued %d requests", n)
	}
	k.QueuePrefetch(0, 60) // inside the slice
	if !k.Channel().PendingContains(60) {
		t.Fatal("in-slice prefetch not queued")
	}
	if st := k.Stats(); st.PreloadsQueued != 1 {
		t.Fatalf("PreloadsQueued = %d, want 1 (out-of-slice prefetches must not count)", st.PreloadsQueued)
	}
}

func TestSyncDropsRequestsForResidentPages(t *testing.T) {
	d := dfp.DefaultConfig()
	k := newKernel(t, 64, &d)
	tNow := k.HandleFault(0, 100)
	tNow = k.HandleFault(tNow, 101) // queues 102..105 at resume
	// Demand-load 103 before the preloads start.
	tNow = k.HandleFault(tNow, 103)
	k.Drain(tNow)
	// 103 was in the pending batch; the in-window abort cancelled that
	// batch, so everything is consistent — no duplicate installs.
	if err := k.EPC().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePrefetchFilters(t *testing.T) {
	k := newKernel(t, 8, nil)
	tNow := k.HandleFault(0, 3)
	k.QueuePrefetch(tNow, 3) // resident: ignored
	if k.Channel().PendingLen() != 0 {
		t.Fatal("prefetch queued for a resident page")
	}
	k.QueuePrefetch(tNow, 1<<20) // out of range: ignored
	if k.Channel().PendingLen() != 0 {
		t.Fatal("prefetch queued outside ELRANGE")
	}
	k.QueuePrefetch(tNow, 5)
	k.QueuePrefetch(tNow, 5) // duplicate: ignored
	if k.Channel().PendingLen() != 1 {
		t.Fatalf("pending = %d, want 1", k.Channel().PendingLen())
	}
	k.Drain(tNow)
	if !k.Present(5) {
		t.Fatal("prefetched page not loaded")
	}
}
