package sim

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sgxpreload/internal/mem"
)

// Scale benchmarks for the event-heap scheduler: per-access cost with
// thousands of runnable enclaves. The fleet is hit-dominated on
// purpose — every access still pays the full scheduling path (heap
// re-key, kernel sync, EPC touch), but fault service does not drown
// out the scheduler, which is what these benchmarks exist to measure.
// BENCH_engine.json records the numbers; 100 ns/op is 10M
// accesses/sec aggregate per core.

// benchFleetStream is an unbounded per-enclave access generator:
// a sequential sweep over the enclave's pages with per-access compute
// jitter so enclave clocks drift apart and re-collide like a real
// population's.
func benchFleetStream(pages, seed uint64) mem.Stream {
	i := seed
	p := seed % pages
	return mem.StreamFunc(func() (mem.Access, bool) {
		i++
		if p++; p == pages {
			p = 0
		}
		return mem.Access{
			Site:    1,
			Page:    mem.PageID(p),
			Compute: 1000 + (i*2654435761)&511,
		}, true
	})
}

// benchFleetEngine builds an e-enclave engine whose total footprint
// fits the EPC (after the cold sweep the run is hit-dominated) and
// warms it until every page is resident.
func benchFleetEngine(b *testing.B, e int) *Engine {
	b.Helper()
	const pages = 32
	encs := make([]Enclave, e)
	for i := range encs {
		encs[i] = Enclave{
			Name:   fmt.Sprintf("enc%d", i),
			Stream: benchFleetStream(pages, uint64(i)*7919),
			Pages:  pages,
			Scheme: Baseline,
		}
	}
	eng, err := New(encs, SharedConfig{EPCPages: e*pages + 64})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2*e*pages; i++ { // cold sweep: fault every page in
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// benchShardedStep runs a fleet of e enclaves split round-robin over
// the given number of independent EPC domains — the sharded runner's
// shape. Each parallel worker claims one shard engine and steps it, so
// ns/op is the fleet's aggregate per-access cost across however many
// cores the host gives the benchmark. Shards are sized to keep each
// domain's scheduler state inside cache: that, not the O(log E) sift,
// is what per-step cost tracks once E passes a few hundred.
func benchShardedStep(b *testing.B, e, shards int) {
	engines := make([]*Engine, shards)
	for s := range engines {
		n := e / shards
		if s < e%shards {
			n++
		}
		engines[s] = benchFleetEngine(b, n)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		eng := engines[int(next.Add(1)-1)%shards]
		for pb.Next() {
			if _, err := eng.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStep measures one engine access at fleet population sizes —
// the scheduler's O(log E) claim made falsifiable. Both populations
// run sharded (16 and 160 domains, ~62 enclaves each), mirroring how
// RunSharded actually deploys a fleet this size.
func BenchmarkStep(b *testing.B) {
	b.Run("E=1000-sharded16", func(b *testing.B) { benchShardedStep(b, 1000, 16) })
	b.Run("E=10000-sharded160", func(b *testing.B) { benchShardedStep(b, 10000, 160) })
}
