package epc

import (
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

// addOwners registers n equal ranges over the EPC's page space.
func addOwners(t *testing.T, e *EPC, n int) {
	t.Helper()
	for o := 1; o <= n; o++ {
		if err := e.AddOwner(uint64(o) * e.Pages() / uint64(n)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddOwnerValidation(t *testing.T) {
	e := mustNew(t, 4, 100)
	if err := e.AddOwner(101); err == nil {
		t.Fatal("AddOwner beyond ELRANGE accepted")
	}
	if err := e.AddOwner(0); err == nil {
		t.Fatal("AddOwner(0) accepted")
	}
	if err := e.AddOwner(40); err != nil {
		t.Fatal(err)
	}
	if err := e.AddOwner(40); err == nil {
		t.Fatal("non-ascending AddOwner accepted")
	}
	if err := e.AddOwner(100); err != nil {
		t.Fatal(err)
	}
	if e.Owners() != 2 {
		t.Fatalf("Owners() = %d, want 2", e.Owners())
	}
	for page, want := range map[mem.PageID]int{0: 0, 39: 0, 40: 1, 99: 1} {
		if got := e.OwnerOf(page); got != want {
			t.Fatalf("OwnerOf(%d) = %d, want %d", page, got, want)
		}
	}
}

// TestImplicitSingleOwner: without AddOwner every page belongs to owner 0
// and the owned scan is the global scan.
func TestImplicitSingleOwner(t *testing.T) {
	e := mustNew(t, 4, 64)
	for p := mem.PageID(0); p < 4; p++ {
		if err := e.Load(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if e.Owners() != 0 {
		t.Fatalf("Owners() = %d, want 0", e.Owners())
	}
	if got := e.OwnerResident(0); got != 4 {
		t.Fatalf("OwnerResident(0) = %d, want 4", got)
	}
	if got := e.OwnerOf(63); got != 0 {
		t.Fatalf("OwnerOf(63) = %d, want 0", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerCountersTrackLoadEvict drives random loads and evicts across
// three owner ranges and checks the counters after every step.
func TestOwnerCountersTrackLoadEvict(t *testing.T) {
	e := mustNew(t, 6, 96)
	addOwners(t, e, 3)
	r := rng.New(7)
	for i := 0; i < 4000; i++ {
		p := mem.PageID(r.Intn(96))
		if r.Intn(2) == 0 && !e.Present(p) {
			if e.Full() {
				e.Evict(e.SelectVictim())
			}
			if err := e.Load(p, r.Intn(2) == 0); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		} else {
			e.Evict(p)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		sum := 0
		for o := 0; o < 3; o++ {
			sum += e.OwnerResident(o)
		}
		if sum != e.Resident() {
			t.Fatalf("step %d: owner counts sum to %d, Resident is %d", i, sum, e.Resident())
		}
	}
}

// TestSelectVictimOwnedRespectsOwnership: for every policy, the owned
// scan only ever returns pages inside the requested owner's range, and
// returns NoPage for an owner with nothing resident.
func TestSelectVictimOwnedRespectsOwnership(t *testing.T) {
	for _, policy := range []Policy{PolicyClock, PolicyFIFO, PolicyLRU, PolicyRandom} {
		t.Run(policy.String(), func(t *testing.T) {
			e, err := NewWithPolicy(8, 64, policy)
			if err != nil {
				t.Fatal(err)
			}
			addOwners(t, e, 2) // owner 0: [0,32), owner 1: [32,64)
			// Owner 0 gets 5 pages, owner 1 gets 3; all touched.
			for _, p := range []mem.PageID{0, 1, 2, 3, 4, 32, 33, 34} {
				if err := e.Load(p, false); err != nil {
					t.Fatal(err)
				}
			}
			for o := 0; o < 2; o++ {
				lo, hi := mem.PageID(o)*32, mem.PageID(o+1)*32
				for i := 0; i < 10; i++ {
					v := e.SelectVictimOwned(o)
					if v < lo || v >= hi {
						t.Fatalf("owner %d victim %d outside [%d,%d)", o, v, lo, hi)
					}
				}
			}
			// Drain owner 1, then its scan must return NoPage without
			// touching owner 0's frames.
			for _, p := range []mem.PageID{32, 33, 34} {
				e.Evict(p)
			}
			if v := e.SelectVictimOwned(1); v != mem.NoPage {
				t.Fatalf("empty owner 1 victim = %d, want NoPage", v)
			}
			if got := e.OwnerResident(0); got != 5 {
				t.Fatalf("owner 0 resident = %d, want 5", got)
			}
		})
	}
}

// TestOwnedClockSparesForeignBits: the filtered CLOCK must not clear
// access bits on frames it skips — foreign frames age exactly as they
// would under the global hand.
func TestOwnedClockSparesForeignBits(t *testing.T) {
	e := mustNew(t, 8, 64)
	addOwners(t, e, 2)
	for _, p := range []mem.PageID{0, 1, 32, 33} {
		if err := e.Load(p, false); err != nil {
			t.Fatal(err)
		}
	}
	// All four frames have the access bit set (demand loads). A full
	// owned scan over owner 0 must clear only owner 0's bits.
	if v := e.SelectVictimOwned(0); v != 0 && v != 1 {
		t.Fatalf("owner 0 victim = %d, want 0 or 1", v)
	}
	for _, p := range []mem.PageID{32, 33} {
		if !e.Accessed(p) {
			t.Fatalf("owned scan cleared foreign access bit on page %d", p)
		}
	}
}

// TestOwnedScanDegenerateMatchesGlobal pins the refactor's safety
// property: with a single owner covering the whole page space, an
// interleaved random workload produces the identical victim sequence
// whether it asks the global or the owned scan.
func TestOwnedScanDegenerateMatchesGlobal(t *testing.T) {
	for _, policy := range []Policy{PolicyClock, PolicyFIFO, PolicyLRU, PolicyRandom} {
		t.Run(policy.String(), func(t *testing.T) {
			mk := func(owned bool) *EPC {
				e, err := NewWithPolicy(8, 128, policy)
				if err != nil {
					t.Fatal(err)
				}
				if owned {
					if err := e.AddOwner(128); err != nil {
						t.Fatal(err)
					}
				}
				return e
			}
			global, owned := mk(false), mk(true)
			r := rng.New(4242)
			for i := 0; i < 5000; i++ {
				p := mem.PageID(r.Intn(128))
				switch r.Intn(3) {
				case 0:
					if global.Present(p) {
						continue
					}
					if global.Full() {
						gv, ov := global.SelectVictim(), owned.SelectVictimOwned(0)
						if gv != ov {
							t.Fatalf("step %d: global victim %d, owned victim %d", i, gv, ov)
						}
						global.Evict(gv)
						owned.Evict(ov)
					}
					pre := r.Intn(2) == 0
					if err := global.Load(p, pre); err != nil {
						t.Fatal(err)
					}
					if err := owned.Load(p, pre); err != nil {
						t.Fatal(err)
					}
				case 1:
					global.Touch(p)
					owned.Touch(p)
				case 2:
					gv, ov := global.SelectVictim(), owned.SelectVictimOwned(0)
					if gv != ov {
						t.Fatalf("step %d: global victim %d, owned victim %d", i, gv, ov)
					}
				}
			}
		})
	}
}

func TestOwnerScanStats(t *testing.T) {
	e := mustNew(t, 8, 64)
	addOwners(t, e, 2)
	// Owner 0: two demand loads (accessed) + one preload (not accessed).
	// Owner 1: one preload.
	for _, c := range []struct {
		p   mem.PageID
		pre bool
	}{{0, false}, {1, false}, {2, true}, {32, true}} {
		if err := e.Load(c.p, c.pre); err != nil {
			t.Fatal(err)
		}
	}
	if acc, res := e.OwnerScanStats(0); acc != 2 || res != 3 {
		t.Fatalf("owner 0 stats = (%d, %d), want (2, 3)", acc, res)
	}
	if acc, res := e.OwnerScanStats(1); acc != 0 || res != 1 {
		t.Fatalf("owner 1 stats = (%d, %d), want (0, 1)", acc, res)
	}
	// The stats scan is read-only: access bits survive it.
	if !e.Accessed(0) || !e.Accessed(1) {
		t.Fatal("OwnerScanStats disturbed access bits")
	}
}
