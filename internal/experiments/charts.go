package experiments

import (
	"math"

	"sgxpreload/internal/plot"
)

// Chart renderers: each figure result can draw itself as the paper's
// figure. cmd/experiments writes them next to the text reports with -svg.

// Charter is implemented by results that can render figures.
type Charter interface {
	Charts() []plot.Chart
}

// Charts renders Figure 3: one scatter per benchmark (page vs time).
func (f Figure3Result) Charts() []plot.Chart {
	out := make([]plot.Chart, 0, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		s := plot.Series{Name: b.Name}
		for _, sm := range b.Samples {
			s.X = append(s.X, float64(sm.Index))
			s.Y = append(s.Y, float64(sm.Page))
		}
		out = append(out, plot.Chart{
			Title:  "Figure 3: page-access pattern — " + b.Name,
			XLabel: "access (time)",
			YLabel: "page number",
			Kind:   "scatter",
			YRef:   math.NaN(),
			Series: []plot.Series{s},
		})
	}
	return out
}

// Charts renders Figure 6 as a line chart.
func (f Figure6Result) Charts() []plot.Chart {
	x := make([]float64, len(f.Lengths))
	for i, n := range f.Lengths {
		x[i] = float64(n)
	}
	return []plot.Chart{{
		Title:  "Figure 6: DFP vs stream_list length",
		XLabel: "stream_list length",
		YLabel: "normalized time",
		Kind:   "line",
		YRef:   1.0,
		Series: []plot.Series{
			{Name: "lbm", X: x, Y: f.Lbm},
			{Name: "bwaves", X: x, Y: f.Bwaves},
			{Name: "combined", X: x, Y: f.Combined},
		},
	}}
}

// Charts renders Figure 7 as a line chart, one series per benchmark.
func (f Figure7Result) Charts() []plot.Chart {
	x := make([]float64, len(f.LoadLengths))
	for i, n := range f.LoadLengths {
		x[i] = float64(n)
	}
	series := make([]plot.Series, len(f.Benchmarks))
	for i, name := range f.Benchmarks {
		series[i] = plot.Series{Name: name, X: x, Y: f.Norm[i]}
	}
	return []plot.Chart{{
		Title:  "Figure 7: DFP vs preload distance",
		XLabel: "LOADLENGTH (pages per preload)",
		YLabel: "normalized time",
		Kind:   "line",
		YRef:   1.0,
		Series: series,
	}}
}

// Charts renders Figure 8 as a grouped bar chart.
func (f Figure8Result) Charts() []plot.Chart {
	var cats []string
	dfpBars := plot.Series{Name: "DFP"}
	stopBars := plot.Series{Name: "DFP-stop"}
	for _, row := range f.Rows {
		cats = append(cats, row.Name)
		dfpBars.Y = append(dfpBars.Y, row.DFPImprovement)
		stopBars.Y = append(stopBars.Y, row.StopImprovement)
	}
	return []plot.Chart{{
		Title:  "Figure 8: DFP and DFP-stop improvement",
		XLabel: "benchmark",
		YLabel: "improvement (%)",
		Kind:   "bar",
		YRef:   0,
		XTicks: cats,
		Series: []plot.Series{dfpBars, stopBars},
	}}
}

// Charts renders Figure 9 as a line chart.
func (f Figure9Result) Charts() []plot.Chart {
	x := make([]float64, len(f.Thresholds))
	for i, th := range f.Thresholds {
		x[i] = th * 100
	}
	return []plot.Chart{{
		Title:  "Figure 9: deepsjeng vs SIP threshold",
		XLabel: "irregular-access-ratio threshold (%)",
		YLabel: "normalized time",
		Kind:   "line",
		YRef:   1.0,
		Series: []plot.Series{{Name: "deepsjeng", X: x, Y: f.Normalized}},
	}}
}

// Charts renders Figure 10 as a bar chart.
func (f Figure10Result) Charts() []plot.Chart {
	var cats []string
	bars := plot.Series{Name: "SIP"}
	for _, row := range f.Rows {
		cats = append(cats, row.Name)
		bars.Y = append(bars.Y, row.Improvement)
	}
	return []plot.Chart{{
		Title:  "Figure 10: SIP improvement",
		XLabel: "benchmark",
		YLabel: "improvement (%)",
		Kind:   "bar",
		YRef:   0,
		XTicks: cats,
		Series: []plot.Series{bars},
	}}
}

// Charts renders Figure 12 as a grouped bar chart.
func (f Figure12Result) Charts() []plot.Chart {
	var cats []string
	sip := plot.Series{Name: "SIP"}
	dfp := plot.Series{Name: "DFP"}
	hyb := plot.Series{Name: "SIP+DFP"}
	for _, row := range f.Rows {
		cats = append(cats, row.Name)
		sip.Y = append(sip.Y, row.SIP)
		dfp.Y = append(dfp.Y, row.DFP)
		hyb.Y = append(hyb.Y, row.Hybrid)
	}
	return []plot.Chart{{
		Title:  "Figure 12: SIP vs DFP vs hybrid",
		XLabel: "benchmark",
		YLabel: "normalized time",
		Kind:   "bar",
		YRef:   1.0,
		XTicks: cats,
		Series: []plot.Series{sip, dfp, hyb},
	}}
}

// Charts renders Figure 13 as a bar chart.
func (f Figure13Result) Charts() []plot.Chart {
	return []plot.Chart{{
		Title:  "Figure 13: mixed-blood",
		XLabel: "scheme",
		YLabel: "normalized time",
		Kind:   "bar",
		YRef:   1.0,
		XTicks: []string{"SIP", "DFP", "SIP+DFP"},
		Series: []plot.Series{{Name: "mixed-blood", Y: []float64{f.Row.SIP, f.Row.DFP, f.Row.Hybrid}}},
	}}
}

// Charts renders the EPC sweep as a line chart.
func (a EPCSweepResult) Charts() []plot.Chart {
	x := make([]float64, len(a.EPCPages))
	for i, p := range a.EPCPages {
		x[i] = float64(p)
	}
	series := make([]plot.Series, len(a.Benchmarks))
	for i, name := range a.Benchmarks {
		series[i] = plot.Series{Name: name, X: x, Y: a.Improvement[i]}
	}
	return []plot.Chart{{
		Title:  "Ablation: DFP-stop improvement vs EPC size",
		XLabel: "EPC pages",
		YLabel: "improvement (%)",
		Kind:   "line",
		YRef:   0,
		Series: series,
	}}
}

// Charts renders the predictor comparison as a grouped bar chart.
func (a PredictorAblationResult) Charts() []plot.Chart {
	series := make([]plot.Series, len(a.Kinds))
	for k := range a.Kinds {
		s := plot.Series{Name: string(a.Kinds[k])}
		for b := range a.Benchmarks {
			s.Y = append(s.Y, a.Improvement[b][k])
		}
		series[k] = s
	}
	return []plot.Chart{{
		Title:  "Ablation: predictor strategies (plain DFP)",
		XLabel: "benchmark",
		YLabel: "improvement (%)",
		Kind:   "bar",
		YRef:   0,
		XTicks: a.Benchmarks,
		Series: series,
	}}
}

// Charts renders the eager-notification sweep as a line chart.
func (a EagerSIPResult) Charts() []plot.Chart {
	x := make([]float64, len(a.Leads))
	for i, l := range a.Leads {
		x[i] = float64(l)
	}
	return []plot.Chart{{
		Title:  "Ablation: eager notification lead time (deepsjeng)",
		XLabel: "notification lead (accesses)",
		YLabel: "improvement (%)",
		Kind:   "line",
		YRef:   0,
		Series: []plot.Series{{Name: "deepsjeng SIP", X: x, Y: a.Improvement}},
	}}
}
