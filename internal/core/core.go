// Package core defines the paper's contribution as a composable library:
// the preloading abstractions that the kernel model plugs into.
//
// The paper's §4.1 is explicit that DFP's multiple-stream recognizer is
// one point in a design space — "many complex strategies can be
// implemented that include heuristic schemes or even machine learning
// based schemes". This package fixes the contract such strategies must
// satisfy (Predictor) and provides a registry of the implemented ones, so
// the ablation experiments can swap recognizers without touching the
// kernel.
package core

import (
	"fmt"
	"sort"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
)

// Predictor consumes the enclave page-fault history — the only dynamic
// signal SGX exposes to the untrusted OS — and produces preload batches.
//
// The kernel invokes OnFault from the fault handler with the faulting
// page number and queues whatever it returns onto the preload worker. The
// accuracy-counter methods back the DFP-stop safety valve: the service
// thread reports preloads issued and preloads observed accessed, and
// EvaluateStop lets the predictor shut itself down when accuracy
// collapses. A stopped predictor must return nil from OnFault forever.
type Predictor interface {
	// Name identifies the strategy in reports.
	Name() string
	// OnFault observes a fault on npn and returns pages to preload.
	OnFault(npn mem.PageID) []mem.PageID
	// NotePreloaded records n pages handed to the preload worker.
	NotePreloaded(n int)
	// NoteAccessed records n preloaded pages observed with their access
	// bit set.
	NoteAccessed(n int)
	// EvaluateStop applies the safety-valve formula and reports whether
	// the predictor is (now) stopped.
	EvaluateStop() bool
	// Stopped reports whether the safety valve has fired.
	Stopped() bool
	// PreloadCounter and AccPreloadCounter expose the safety valve's
	// inputs for reporting.
	PreloadCounter() uint64
	AccPreloadCounter() uint64
}

// The paper's predictor satisfies the contract.
var _ Predictor = (*dfp.Predictor)(nil)

// Factory constructs a fresh Predictor for one run. Runs must not share
// predictor state (the experiments re-run traces under many
// configurations).
type Factory func() (Predictor, error)

// Kind names a registered predictor strategy.
type Kind string

// Registered strategies.
const (
	// KindMultiStream is the paper's Algorithm 1: an LRU list of
	// sequential stream tails (the evaluated configuration).
	KindMultiStream Kind = "multistream"
	// KindStride generalizes stream recognition to constant non-unit
	// strides.
	KindStride Kind = "stride"
	// KindMarkov is a correlation predictor: it remembers fault-to-fault
	// transitions and preloads the recorded successors.
	KindMarkov Kind = "markov"
	// KindNextN preloads the next N pages on every fault, with no history
	// at all — the strawman that shows why recognition matters.
	KindNextN Kind = "nextn"
)

// Kinds returns the registered strategy names, sorted.
func Kinds() []Kind {
	out := []Kind{KindMarkov, KindMultiStream, KindNextN, KindStride}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewPredictor builds a predictor of the given kind sharing DFP's tunables
// (stream-list length doubles as table capacity for the alternatives;
// LoadLength is the preload distance for all of them).
func NewPredictor(kind Kind, cfg dfp.Config) (Predictor, error) {
	switch kind {
	case KindMultiStream:
		return dfp.New(cfg)
	case KindStride:
		return dfp.NewStride(cfg)
	case KindMarkov:
		return dfp.NewMarkov(cfg)
	case KindNextN:
		return dfp.NewNextN(cfg)
	default:
		return nil, fmt.Errorf("core: unknown predictor kind %q (have %v)", kind, Kinds())
	}
}

// FactoryFor returns a Factory producing fresh predictors of the kind.
func FactoryFor(kind Kind, cfg dfp.Config) Factory {
	return func() (Predictor, error) { return NewPredictor(kind, cfg) }
}
