package replay

import (
	"math/rand"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// benchTrace renders a 10k-event timeline once in both formats.
var benchTraceJSONL, benchTraceCSV = func() (string, string) {
	rng := rand.New(rand.NewSource(4))
	kinds := obs.Kinds()
	events := make([]obs.Event, 10_000)
	for i := range events {
		events[i] = obs.Event{
			T:     uint64(i) * 23,
			Kind:  kinds[rng.Intn(len(kinds))],
			Page:  mem.PageID(rng.Intn(4096)),
			Batch: uint64(rng.Intn(8)),
			V1:    rng.Uint64() >> uint(rng.Intn(64)),
			V2:    rng.Uint64() >> uint(rng.Intn(64)),
		}
		if rng.Intn(16) == 0 {
			events[i].Page = mem.NoPage
		}
	}
	var j, c strings.Builder
	if err := obs.WriteJSONL(&j, events); err != nil {
		panic(err)
	}
	if err := obs.WriteCSV(&c, events); err != nil {
		panic(err)
	}
	return j.String(), c.String()
}()

func BenchmarkTraceParse(b *testing.B) {
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(benchTraceJSONL)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadJSONL(strings.NewReader(benchTraceJSONL)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(benchTraceCSV)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadCSV(strings.NewReader(benchTraceCSV)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraceParseRef measures the pre-optimization per-line parsers
// (encoding/json and strings.Split+strconv) over the same trace bodies,
// as the baseline for the parse speedup recorded in BENCH_engine.json.
func BenchmarkTraceParseRef(b *testing.B) {
	jsonLines := strings.Split(strings.TrimSuffix(benchTraceJSONL, "\n"), "\n")[1:]
	csvLines := strings.Split(strings.TrimSuffix(benchTraceCSV, "\n"), "\n")[2:]
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(benchTraceJSONL)))
		for i := 0; i < b.N; i++ {
			for _, line := range jsonLines {
				if _, err := refParseJSONLEvent([]byte(line)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(benchTraceCSV)))
		for i := 0; i < b.N; i++ {
			for _, line := range csvLines {
				if _, err := refParseCSVEvent([]byte(line)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
