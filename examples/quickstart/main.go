// Quickstart: run the paper's 1 GB-scan microbenchmark with and without
// DFP preloading and print the improvement — the library's one-minute
// tour.
package main

import (
	"fmt"
	"log"

	"sgxpreload"
)

func main() {
	w, err := sgxpreload.Benchmark("microbenchmark")
	if err != nil {
		log.Fatal(err)
	}

	base, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	dfp, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.DFP})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:  %s\n", w.Name())
	fmt.Printf("baseline:  %d cycles, %d enclave page faults\n", base.Cycles, base.Faults)
	fmt.Printf("DFP:       %d cycles, %d faults, %d pages preloaded\n",
		dfp.Cycles, dfp.Faults, dfp.PreloadsStarted)
	fmt.Printf("speedup:   %+.1f%% (the paper measures +18.6%% on this workload)\n",
		sgxpreload.ImprovementPct(dfp, base))
}
