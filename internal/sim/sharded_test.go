package sim

import (
	"fmt"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// TestShardedOneShardEqualsRunShared: at one shard the sharded runner
// is RunShared — same engine, same schedule, byte-identical artifacts
// including the hooked event timeline.
func TestShardedOneShardEqualsRunShared(t *testing.T) {
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	shared, err := RunShared(tieBreakEnclaves(16), SharedConfig{EPCPages: 128, Hook: recA})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunSharded([][]Enclave{tieBreakEnclaves(16)}, SharedConfig{EPCPages: 128, Hook: recB}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded) != 1 {
		t.Fatalf("one-shard run returned %d shards", len(sharded))
	}
	if a, b := fmt.Sprintf("%#v", shared), fmt.Sprintf("%#v", sharded[0]); a != b {
		t.Errorf("one-shard RunSharded diverges from RunShared:\n  shared  %.300s\n  sharded %.300s", a, b)
	}
	var ba, bb strings.Builder
	if err := recA.WriteJSONL(&ba); err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteJSONL(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Errorf("one-shard timeline diverges: %s", firstDiffLine(ba.String(), bb.String()))
	}
}

// TestShardedDeterministicAcrossWorkers: the merged result grid must be
// identical at any worker count — completion order never leaks.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		groups, err := ShardRoundRobin(tieBreakEnclaves(32), 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSharded(groups, SharedConfig{EPCPages: 64}, workers)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", res)
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8, 0} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: sharded results diverge from sequential run", workers)
		}
	}
}

// TestShardedErrors: empty inputs, hooked multi-shard runs, and empty
// shards are rejected; a failing shard reports the lowest-index error a
// sequential loop would have hit.
func TestShardedErrors(t *testing.T) {
	if _, err := RunSharded(nil, SharedConfig{EPCPages: 64}, 1); err == nil {
		t.Error("nil groups: want error")
	}
	if _, err := RunSharded([][]Enclave{tieBreakEnclaves(2), tieBreakEnclaves(2)},
		SharedConfig{EPCPages: 64, Hook: obs.NewRecorder()}, 2); err == nil ||
		!strings.Contains(err.Error(), "hook") {
		t.Errorf("hooked 2-shard run: want hook error, got %v", err)
	}
	if _, err := RunSharded([][]Enclave{tieBreakEnclaves(2), nil},
		SharedConfig{EPCPages: 64}, 1); err == nil || !strings.Contains(err.Error(), "no enclaves") {
		t.Errorf("empty shard: want error, got %v", err)
	}

	// Shards 1 and 3 carry an access outside the enclave's declared
	// range; the merge must surface shard 1's error.
	bad := Enclave{Name: "bad", Trace: []mem.Access{{Page: 99, Compute: 1}}, Pages: 8, Scheme: Baseline}
	groups := [][]Enclave{tieBreakEnclaves(2), {bad}, tieBreakEnclaves(2), {bad}}
	_, err := RunSharded(groups, SharedConfig{EPCPages: 64}, 4)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("want shard 1's error, got %v", err)
	}
}

// TestShardRoundRobin pins the deterministic placement: index i lands
// in shard i mod S, and the shard count clamps to the fleet size.
func TestShardRoundRobin(t *testing.T) {
	encs := tieBreakEnclaves(10)
	groups, err := ShardRoundRobin(encs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d shards, want 4", len(groups))
	}
	for s, g := range groups {
		for j, e := range g {
			if want := fmt.Sprintf("enc%04d", s+j*4); e.Name != want {
				t.Errorf("shard %d slot %d holds %s, want %s", s, j, e.Name, want)
			}
		}
	}
}

// TestShardRoundRobinBoundaries is the table-driven boundary sweep:
// the empty fleet is an explicit error (not a zero-shard grid that
// RunSharded would misreport as "needs at least one shard"), and the
// {1, shards-1} fleet sizes clamp so no shard is empty.
func TestShardRoundRobinBoundaries(t *testing.T) {
	const shards = 4
	cases := []struct {
		name       string
		enclaves   int
		wantShards int // 0 = want error
	}{
		{"empty", 0, 0},
		{"single", 1, 1},
		{"one-less-than-shards", shards - 1, shards - 1},
		{"exactly-shards", shards, shards},
		{"shards-zero-clamps", 10, 1}, // shards argument 0, see below
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := shards
			if c.name == "shards-zero-clamps" {
				s = 0
			}
			groups, err := ShardRoundRobin(tieBreakEnclaves(c.enclaves), s)
			if c.wantShards == 0 {
				if err == nil {
					t.Fatalf("empty fleet: want error, got %d shards", len(groups))
				}
				if !strings.Contains(err.Error(), "at least one enclave") {
					t.Errorf("empty fleet error %q does not name the empty input", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(groups) != c.wantShards {
				t.Fatalf("%d enclaves over %d shards: got %d groups, want %d",
					c.enclaves, s, len(groups), c.wantShards)
			}
			total := 0
			for si, g := range groups {
				if len(g) == 0 {
					t.Errorf("shard %d is empty", si)
				}
				total += len(g)
			}
			if total != c.enclaves {
				t.Errorf("placement lost enclaves: %d placed, %d given", total, c.enclaves)
			}
		})
	}
}

// slowFailStream yields delay accesses, then one access outside the
// enclave's range — a shard that fails only after simulating a while.
func slowFailStream(delay int, pages uint64) mem.Stream {
	i := 0
	return mem.StreamFunc(func() (mem.Access, bool) {
		i++
		if i <= delay {
			return mem.Access{Page: mem.PageID(uint64(i) % pages), Compute: 1000}, true
		}
		if i == delay+1 {
			return mem.Access{Page: mem.PageID(pages) + 1, Compute: 1000}, true
		}
		return mem.Access{}, false
	})
}

// TestShardedOutOfOrderFailure forces a higher-index shard to fail
// long before a lower-index shard (already claimed by a worker) reports
// its own error: shard 0 fails after 50k accesses, shard 3 on its first.
// The lowest-index error must win at every worker count — the result a
// sequential shard loop would have surfaced — even though shard 3's
// failure sets the fail-fast flag while shard 0 is still running.
func TestShardedOutOfOrderFailure(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		mk := func(delay int) []Enclave {
			return []Enclave{{
				Name:   fmt.Sprintf("bad-after-%d", delay),
				Stream: slowFailStream(delay, 8),
				Pages:  8,
				Scheme: Baseline,
			}}
		}
		groups := [][]Enclave{mk(50000), tieBreakEnclaves(2), tieBreakEnclaves(2), mk(0)}
		_, err := RunSharded(groups, SharedConfig{EPCPages: 64}, workers)
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		if !strings.Contains(err.Error(), "shard 0") {
			t.Errorf("workers=%d: want shard 0's error (the sequential loop's first), got %v", workers, err)
		}
	}
}

// TestShardedHookFactory: the per-shard factory records each EPC domain
// to its own hook deterministically — shard i's timeline is identical
// to a solo RunShared of that shard's enclaves with a direct hook — and
// combining the factory with the legacy shared Hook field is rejected.
func TestShardedHookFactory(t *testing.T) {
	groups, err := ShardRoundRobin(tieBreakEnclaves(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*obs.Recorder, len(groups))
	cfg := SharedConfig{EPCPages: 64, HookFactory: func(shard int) obs.Hook {
		recs[shard] = obs.NewRecorder()
		return recs[shard]
	}}
	if _, err := RunSharded(groups, cfg, 4); err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		want := obs.NewRecorder()
		if _, err := RunShared(g, SharedConfig{EPCPages: 64, Hook: want}); err != nil {
			t.Fatal(err)
		}
		var a, b strings.Builder
		if err := recs[i].WriteJSONL(&a); err != nil {
			t.Fatal(err)
		}
		if err := want.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("shard %d: factory-recorded timeline diverges from solo run: %s",
				i, firstDiffLine(a.String(), b.String()))
		}
	}

	// Both Hook and HookFactory set is ambiguous — rejected.
	bad := SharedConfig{EPCPages: 64, Hook: obs.NewRecorder(),
		HookFactory: func(int) obs.Hook { return nil }}
	if _, err := RunSharded(groups, bad, 1); err == nil ||
		!strings.Contains(err.Error(), "not both") {
		t.Errorf("Hook+HookFactory: want rejection, got %v", err)
	}
	// An unresolved factory must not reach an engine silently.
	if _, err := RunShared(groups[0], SharedConfig{EPCPages: 64,
		HookFactory: func(int) obs.Hook { return nil }}); err == nil ||
		!strings.Contains(err.Error(), "HookFactory") {
		t.Errorf("engine-level HookFactory: want rejection, got %v", err)
	}
}
