package mem

import (
	"testing"
	"testing/quick"
)

func TestPageOfAndAddr(t *testing.T) {
	tests := []struct {
		addr uint64
		page PageID
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{1 << 30, 1 << 18},
	}
	for _, tt := range tests {
		if got := PageOf(tt.addr); got != tt.page {
			t.Errorf("PageOf(%d) = %d, want %d", tt.addr, got, tt.page)
		}
	}
	if got := PageID(5).Addr(); got != 5*4096 {
		t.Errorf("Addr() = %d, want %d", got, 5*4096)
	}
}

func TestPageOfAddrRoundTrip(t *testing.T) {
	f := func(p uint32) bool {
		page := PageID(p)
		return PageOf(page.Addr()) == page
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelMatchesPaper(t *testing.T) {
	cm := DefaultCostModel()
	if cm.AEX != 10000 || cm.Load != 44000 || cm.Eresume != 10000 {
		t.Fatalf("protocol costs = %d/%d/%d, want the paper's 10k/44k/10k",
			cm.AEX, cm.Load, cm.Eresume)
	}
	if got := cm.FaultCost(); got != 64000 {
		t.Fatalf("FaultCost() = %d, want 64000", got)
	}
	if cm.RegularFault != 2000 {
		t.Fatalf("RegularFault = %d, want the paper's 2000", cm.RegularFault)
	}
	if err := cm.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := (CostModel{Hit: 1}).Validate(); err == nil {
		t.Error("zero Load accepted")
	}
	if err := (CostModel{Load: 1}).Validate(); err == nil {
		t.Error("zero Hit accepted")
	}
}

func TestNoPageSentinel(t *testing.T) {
	if NoPage == 0 {
		t.Fatal("NoPage collides with page 0")
	}
}
