package obs

// FaultLatencySampler is a Hook that collects every fault's service
// latency — KindFaultEnd's V1, resume minus raise — as it is emitted.
// It is the light-weight tail-latency probe behind the fleet layer's
// per-host p50/p95/p99 tables: unlike a full Recorder it retains one
// float64 per fault rather than the whole event timeline, so a host can
// keep one installed across a long run. Like every Hook it only
// observes; installing it never perturbs the simulated schedule.
type FaultLatencySampler struct {
	samples []float64
}

// NewFaultLatencySampler returns an empty sampler.
func NewFaultLatencySampler() *FaultLatencySampler {
	return &FaultLatencySampler{}
}

// Emit retains the latency of fault-end events and ignores the rest.
func (s *FaultLatencySampler) Emit(e Event) {
	if e.Kind == KindFaultEnd {
		s.samples = append(s.samples, float64(e.V1))
	}
}

// Count returns the number of faults sampled so far.
func (s *FaultLatencySampler) Count() int { return len(s.samples) }

// Samples returns the collected latencies in emission order. The slice
// is the sampler's own backing store — callers computing statistics mid-
// run must copy it before sorting.
func (s *FaultLatencySampler) Samples() []float64 { return s.samples }
