// Package sgxpreload is a library reproduction of "Regaining Lost
// Seconds: Efficient Page Preloading for SGX Enclaves" (Middleware '20).
//
// Intel SGX applications whose working set exceeds the Enclave Page Cache
// (EPC) pay ~64,000 cycles per enclave page fault. The paper proposes two
// preloading schemes that cut that cost without growing the enclave's
// trusted computing base: DFP (the untrusted OS predicts streams from the
// fault history and preloads ahead) and SIP (profile-guided source
// instrumentation that replaces likely faults with in-enclave preload
// notifications). This package exposes the complete system — a
// cycle-level model of SGX paging, both preloaders, the hybrid
// combination, the paper's benchmark models, and the evaluation harness —
// behind a small API:
//
//	w, _ := sgxpreload.Benchmark("lbm")
//	base, _ := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.Baseline})
//	dfp, _ := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.DFP})
//	fmt.Printf("DFP improvement: %.1f%%\n", sgxpreload.ImprovementPct(dfp, base))
//
// Custom workloads implement the Workload interface; SIP runs need a
// profiling pass first (see Profile and Config.Selection):
//
//	sel, _ := sgxpreload.Profile(w, sgxpreload.DefaultConfig())
//	res, _ := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.SIP, Selection: sel})
package sgxpreload

import (
	"fmt"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/workload"
)

// Access is one page-granular memory access of a workload trace.
type Access struct {
	// Site identifies the static source site issuing the access (0 for
	// unattributed accesses); SIP instruments per site.
	Site uint32
	// Page is the enclave virtual page touched.
	Page uint64
	// Compute is the cycles of enclave computation preceding the access.
	Compute uint64
	// Write marks stores; the paging protocol treats both kinds alike.
	Write bool
}

// Input selects a workload's data set: profiling runs use Train, and
// measurement runs use Ref — the paper's PGO methodology.
type Input int

// Workload inputs.
const (
	Train Input = Input(workload.Train)
	Ref   Input = Input(workload.Ref)
)

// Workload is a program whose page-level access behavior can be replayed
// through the enclave model. Implementations must be deterministic per
// input for reproducible results.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Pages returns the enclave virtual range the workload needs, in
	// 4 KiB pages; every generated access must stay below it.
	Pages() uint64
	// Trace generates the access trace for the given input.
	Trace(in Input) []Access
}

// Scheme selects the preloading configuration.
type Scheme int

// Schemes. Baseline is the vanilla SGX driver; DFP and DFPStop are the
// fault-history preloader without and with the global abort safety valve;
// SIP is source-instrumentation preloading; Hybrid combines SIP with
// DFP-stop.
const (
	Baseline = Scheme(sim.Baseline)
	DFP      = Scheme(sim.DFP)
	DFPStop  = Scheme(sim.DFPStop)
	SIP      = Scheme(sim.SIP)
	Hybrid   = Scheme(sim.Hybrid)
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string { return sim.Scheme(s).String() }

// DFPConfig exposes the predictor tunables of the paper's Algorithm 1.
type DFPConfig struct {
	// StreamListLen is the LRU stream_list length (paper default 30).
	StreamListLen int
	// LoadLength is the preload distance in pages (paper default 4).
	LoadLength int
	// StopSlack is the additive constant of the DFP-stop formula
	// AccPreloadCounter + StopSlack < PreloadCounter/2.
	StopSlack uint64
}

// CostModel re-exports the cycle cost model; see the paper's §2 for the
// published values behind the defaults.
type CostModel = mem.CostModel

// DefaultCostModel returns the paper's published cycle costs.
func DefaultCostModel() CostModel { return mem.DefaultCostModel() }

// Config configures a run.
type Config struct {
	// Scheme is the preloading scheme (default Baseline).
	Scheme Scheme
	// EPCPages is the EPC capacity in 4 KiB frames. The default 2048
	// (8 MiB) preserves the paper's footprint-to-EPC ratios at the
	// library's scaled benchmark sizes; real hardware has ~24576 usable.
	EPCPages int
	// Costs overrides the cycle cost model (zero value = defaults).
	Costs CostModel
	// DFP overrides the predictor tunables (zero value = paper defaults).
	DFP DFPConfig
	// Selection carries the SIP instrumentation sites from Profile; it is
	// required for SIP and Hybrid runs.
	Selection *Selection
	// Threshold is the irregular-ratio instrumentation threshold used by
	// Profile (zero value = the paper's 5%).
	Threshold float64
}

// DefaultConfig returns the standard configuration (baseline scheme, the
// paper's cost model and predictor settings, 2048-page EPC).
func DefaultConfig() Config {
	return Config{EPCPages: 2048, Threshold: 0.05}
}

// Selection is an opaque SIP instrumentation-site set produced by Profile.
type Selection struct {
	sel *sip.Selection
}

// Points returns the number of instrumented sites (Table 2 of the paper):
// the whole growth of the enclave's TCB under SIP.
func (s *Selection) Points() int {
	if s == nil {
		return 0
	}
	return s.sel.Points()
}

// Result reports a run's outcome.
type Result struct {
	// Scheme echoes the configuration.
	Scheme Scheme
	// Cycles is the application's virtual execution time.
	Cycles uint64
	// Accesses, Hits, and Faults count trace accesses, resident-page
	// accesses, and demand page faults.
	Accesses uint64
	Hits     uint64
	Faults   uint64
	// PreloadsStarted and PreloadsDropped count speculative transfers.
	PreloadsStarted uint64
	PreloadsDropped uint64
	// NotifyLoads counts SIP notifications that loaded a page without an
	// enclave exit.
	NotifyLoads uint64
	// StopFired reports whether DFP's global abort shut preloading down.
	StopFired bool
}

// ImprovementPct returns the improvement of res over base in percent
// (positive = res is faster), matching the paper's reporting.
func ImprovementPct(res, base Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return 100 * (1 - float64(res.Cycles)/float64(base.Cycles))
}

// normalize fills in config defaults.
func (c Config) normalize() Config {
	if c.EPCPages == 0 {
		c.EPCPages = 2048
	}
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	return c
}

// dfpConfig is the internal predictor configuration type.
type dfpConfig = dfp.Config

// defaultDFP returns the paper's predictor defaults.
func defaultDFP() dfpConfig { return dfp.DefaultConfig() }

func (c Config) dfpConfig() dfp.Config { return dfpFromPublic(c.DFP) }

// convert turns public accesses into the internal representation,
// validating pages against the workload's declared range.
func convert(w Workload, in Input) ([]mem.Access, error) {
	accs := w.Trace(in)
	pages := w.Pages()
	out := make([]mem.Access, len(accs))
	for i, a := range accs {
		if a.Page >= pages {
			return nil, fmt.Errorf("sgxpreload: workload %q access %d touches page %d outside its declared %d pages",
				w.Name(), i, a.Page, pages)
		}
		out[i] = mem.Access{
			Site:    mem.SiteID(a.Site),
			Page:    mem.PageID(a.Page),
			Compute: a.Compute,
			Write:   a.Write,
		}
	}
	return out, nil
}

// Run replays the workload's Ref trace under cfg.
func Run(w Workload, cfg Config) (Result, error) {
	return RunInput(w, Ref, cfg)
}

// RunInput replays the given input's trace under cfg.
func RunInput(w Workload, in Input, cfg Config) (Result, error) {
	cfg = cfg.normalize()
	trace, err := convert(w, in)
	if err != nil {
		return Result{}, err
	}
	scfg := sim.Config{
		Scheme:       sim.Scheme(cfg.Scheme),
		Costs:        cfg.Costs,
		EPCPages:     cfg.EPCPages,
		ELRangePages: w.Pages(),
		DFP:          cfg.dfpConfig(),
	}
	if cfg.Selection != nil {
		scfg.Selection = cfg.Selection.sel
	}
	res, err := sim.Run(trace, scfg)
	if err != nil {
		return Result{}, err
	}
	return resultFromSim(res), nil
}

// Profile runs the workload's Train input through the SIP classifier and
// selects instrumentation sites at cfg.Threshold — the library equivalent
// of the paper's LLVM profiling-and-instrumentation pass.
func Profile(w Workload, cfg Config) (*Selection, error) {
	cfg = cfg.normalize()
	trace, err := convert(w, Train)
	if err != nil {
		return nil, err
	}
	cl, err := sip.NewClassifier(cfg.EPCPages, w.Pages(), cfg.dfpConfig())
	if err != nil {
		return nil, err
	}
	for _, a := range trace {
		cl.Record(a.Site, a.Page)
	}
	sel := sip.Select(cl.Profile(), cfg.Threshold, 32)
	return &Selection{sel: sel}, nil
}

// Benchmarks returns the names of the built-in benchmark models (the
// paper's evaluation set).
func Benchmarks() []string { return workload.Names() }

// Benchmark returns a built-in benchmark model by its paper name (e.g.
// "lbm", "mcf", "deepsjeng", "SIFT", "mixed-blood", "microbenchmark").
func Benchmark(name string) (Workload, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return builtin{w}, nil
}

// Instrumentable reports whether the named built-in benchmark can be used
// with SIP (the paper's tool handles C/C++ only, and not omnetpp).
func Instrumentable(name string) bool {
	w, err := workload.ByName(name)
	return err == nil && w.Instrumentable
}

// builtin adapts an internal workload to the public interface.
type builtin struct {
	w *workload.Workload
}

func (b builtin) Name() string { return b.w.Name }

func (b builtin) Pages() uint64 { return b.w.ELRangePages() }

func (b builtin) Trace(in Input) []Access {
	accs := b.w.Generate(workload.Input(in))
	out := make([]Access, len(accs))
	for i, a := range accs {
		out[i] = Access{
			Site:    uint32(a.Site),
			Page:    uint64(a.Page),
			Compute: a.Compute,
			Write:   a.Write,
		}
	}
	return out
}
