package epc

import (
	"testing"

	"sgxpreload/internal/mem"
)

// TestGrowPreservesState: growing the page space keeps residency, bits,
// and the presence bitmap intact, and the new pages are loadable.
func TestGrowPreservesState(t *testing.T) {
	e, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []mem.PageID{1, 5, 7} {
		if err := e.Load(p, p == 5); err != nil {
			t.Fatal(err)
		}
	}
	bm := e.PresenceBitmap() // handle taken before growth must stay valid
	if err := e.Load(9, false); err == nil {
		t.Fatal("page 9 loadable before growth")
	}

	if err := e.Grow(16); err != nil {
		t.Fatal(err)
	}
	if e.Pages() != 16 {
		t.Fatalf("Pages() = %d after Grow(16)", e.Pages())
	}
	if !e.Present(1) || !e.Present(5) || !e.Present(7) {
		t.Error("residency lost across Grow")
	}
	if !e.Preloaded(5) {
		t.Error("preload bit lost across Grow")
	}
	if !bm.Get(5) || bm.Get(9) {
		t.Error("pre-growth bitmap handle out of sync")
	}
	if err := e.Load(9, false); err != nil {
		t.Errorf("page 9 not loadable after growth: %v", err)
	}
	if !bm.Get(9) {
		t.Error("pre-growth bitmap handle missed post-growth load")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}

	if err := e.Grow(16); err != nil {
		t.Errorf("same-size Grow: %v", err)
	}
	if err := e.Grow(8); err == nil {
		t.Error("shrinking Grow must error")
	}
}

// TestGrowDenseToSparse: growth past maxDensePages converts the flat
// reverse array to the map fallback without losing mappings.
func TestGrowDenseToSparse(t *testing.T) {
	e, err := New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.pt.(*densePageTable); !ok {
		t.Fatalf("64-page table not dense: %T", e.pt)
	}
	for _, p := range []mem.PageID{0, 63} {
		if err := e.Load(p, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Grow(maxDensePages + 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.pt.(sparsePageTable); !ok {
		t.Fatalf("post-growth table not sparse: %T", e.pt)
	}
	if !e.Present(0) || !e.Present(63) {
		t.Error("mappings lost in dense->sparse conversion")
	}
	if err := e.Load(maxDensePages, false); err != nil {
		t.Errorf("beyond-dense page not loadable: %v", err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Eviction after conversion exercises remove on the sparse table.
	if !e.Evict(63) || e.Present(63) {
		t.Error("eviction broken after conversion")
	}
}

// TestGrowDenseStaysDense: growth within maxDensePages extends the flat
// array in place.
func TestGrowDenseStaysDense(t *testing.T) {
	e, err := New(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load(3, false); err != nil {
		t.Fatal(err)
	}
	if err := e.Grow(1024); err != nil {
		t.Fatal(err)
	}
	d, ok := e.pt.(*densePageTable)
	if !ok {
		t.Fatalf("grown table not dense: %T", e.pt)
	}
	if len(d.frames) != 1024 {
		t.Errorf("dense table covers %d pages, want 1024", len(d.frames))
	}
	if !e.Present(3) {
		t.Error("mapping lost in dense growth")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
