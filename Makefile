# Standard-library-only Go module; these targets are the whole toolchain.

GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel-vs-sequential speedup benchmark from the experiment
# engine; compare the two lines' ns/op (>= 2x apart on >= 4 cores).
bench:
	$(GO) test ./internal/experiments/ -run '^$$' -bench 'BenchmarkRunAll' -benchtime 2x

# The full pre-merge gate.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
