package channel

import (
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// FuzzPendingQueue drives the pending-preload queue with an arbitrary
// interleaving of QueueBatch, pop-and-start, peek-then-start,
// AbortBatchContaining, RemovePending, AbortPending, and the PushAll
// restore pattern under MaxPending pressure, and checks the conservation
// law every request obeys: each queued request is eventually started,
// removed (the SIP notify path), or aborted with an accounted count —
// never duplicated, never lost. After every operation the page-membership
// index is cross-checked against a walk of the ring-buffer deque, so the
// two structures can never drift apart unnoticed.
//
// A recorder hook runs throughout, so the fuzzer also exercises the
// observability paths, and the event stream is cross-checked against the
// counters: queue events match pages queued, abort events match aborts
// plus SIP removals, load-start events match transfers begun.
//
// The seed corpus covers the interesting collisions directly (overflow
// drops racing pops, aborting a batch that was partially popped, a
// restore straight after an overflow, queue/peek/pop churn that wraps the
// ring past its capacity); the fuzzer explores interleavings around them.
func FuzzPendingQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 1, 2, 3, 4, 5}) // one batch, then pops
	// Overflow: enough batches to blow past maxPending, interleaved pops.
	f.Add([]byte{0, 7, 1, 2, 3, 4, 5, 6, 7, 0, 7, 10, 11, 12, 13, 14, 15, 16, 1, 1, 0, 4, 20, 21, 22, 23})
	// Abort a batch mid-pop, remove a page, then drain everything.
	f.Add([]byte{0, 4, 1, 2, 3, 4, 1, 2, 2, 0, 3, 9, 8, 7, 3, 8, 4, 1, 1, 1})
	// Overflow, restore the queue, then shut preloading down.
	f.Add([]byte{0, 7, 1, 2, 3, 4, 5, 6, 7, 0, 5, 10, 11, 12, 13, 14, 5, 5, 4})
	// Ring wrap-around: interleaved QueueBatch/PeekPending/PopPending
	// churn cycling far more requests than the ring's initial capacity.
	f.Add([]byte{
		0, 7, 1, 2, 3, 4, 5, 6, 7, 6, 1, 0, 7, 10, 11, 12, 13, 14, 15, 16,
		6, 6, 1, 1, 0, 5, 20, 21, 22, 23, 24, 6, 1, 6, 1, 6, 1,
		0, 4, 30, 31, 32, 33, 6, 1, 1, 1, 0, 3, 40, 41, 42, 6, 6, 1, 1, 1,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New()
		rec := obs.NewRecorder()
		c.SetHook(rec)
		const maxPending = 8
		var queued, started, removed uint64
		var now uint64
		next := func(i *int) byte {
			if *i >= len(data) {
				return 0
			}
			b := data[*i]
			*i++
			return b
		}
		// The index and the deque must agree exactly: same pages, same
		// occurrence counts (a page can sit in several batches).
		checkIndex := func() {
			t.Helper()
			counts := make(map[mem.PageID]int32, c.n)
			for i := 0; i < c.n; i++ {
				counts[c.at(i).Page]++
			}
			if len(counts) != len(c.idx) {
				t.Fatalf("index holds %d pages, deque holds %d distinct", len(c.idx), len(counts))
			}
			for p, want := range counts {
				if got := c.idx[p]; got != want {
					t.Fatalf("index count for page %d = %d, deque has %d", p, got, want)
				}
			}
		}
		for i := 0; i < len(data); {
			now++
			prevAborted := c.Aborted()
			switch next(&i) % 7 {
			case 0: // queue a batch of 1..8 pages
				k := int(next(&i)%8) + 1
				pages := make([]mem.PageID, k)
				for j := range pages {
					pages[j] = mem.PageID(next(&i))
				}
				before := c.PendingLen()
				dropped := c.QueueBatch(pages, now, maxPending)
				queued += uint64(k)
				if got := c.PendingLen(); got > maxPending {
					t.Fatalf("PendingLen = %d after QueueBatch, cap is %d", got, maxPending)
				}
				if before+k-dropped != c.PendingLen() {
					t.Fatalf("QueueBatch accounting: %d before + %d queued - %d dropped != %d pending",
						before, k, dropped, c.PendingLen())
				}
				if c.Aborted() != prevAborted+uint64(dropped) {
					t.Fatalf("Aborted moved by %d, QueueBatch reported %d dropped",
						c.Aborted()-prevAborted, dropped)
				}
			case 1: // pop the head and run its transfer, as the kernel would
				before := c.PendingLen()
				if r, ok := c.PopPending(); ok {
					if before == 0 {
						t.Fatal("PopPending succeeded on an empty queue")
					}
					if r.Batch == 0 {
						t.Fatal("popped request has the zero batch tag")
					}
					start := c.BusyUntil()
					if r.Enqueued > start {
						start = r.Enqueued
					}
					c.Begin(r.Page, start, 100, true, r.Batch)
					c.CompleteInflight()
					started++
				} else if before != 0 {
					t.Fatalf("PopPending failed with %d pending", before)
				}
			case 2:
				page := mem.PageID(next(&i))
				had := c.PendingContains(page)
				if c.AbortBatchContaining(page, now) != had {
					t.Fatalf("AbortBatchContaining(%d) disagrees with PendingContains", page)
				}
				// One abort cancels one batch; duplicates of the page may
				// sit in other batches. Repeating must drain them all.
				for n := 0; c.PendingContains(page); n++ {
					if n > maxPending {
						t.Fatalf("aborting page %d does not terminate", page)
					}
					if !c.AbortBatchContaining(page, now) {
						t.Fatalf("page %d pending but AbortBatchContaining found no batch", page)
					}
				}
			case 3:
				page := mem.PageID(next(&i))
				had := c.PendingContains(page)
				if c.RemovePending(page, now) {
					removed++
					if !had {
						t.Fatalf("RemovePending(%d) succeeded but PendingContains was false", page)
					}
				} else if had {
					t.Fatalf("RemovePending(%d) failed but the page was pending", page)
				}
			case 4:
				before := c.PendingLen()
				if n := c.AbortPending(now); n != before {
					t.Fatalf("AbortPending dropped %d, had %d pending", n, before)
				}
				if c.PendingLen() != 0 {
					t.Fatal("queue not empty after AbortPending")
				}
			case 5: // kernel restore: pop the head, then push everything back
				before := c.PendingLen()
				head, ok := c.PopPending()
				if !ok {
					break
				}
				reqs := []Request{head}
				for {
					r, popOK := c.PopPending()
					if !popOK {
						break
					}
					reqs = append(reqs, r)
				}
				c.PushAll(reqs)
				if c.PendingLen() != before {
					t.Fatalf("PushAll restore changed the queue: %d -> %d", before, c.PendingLen())
				}
				if r, popOK := c.PopPending(); !popOK || r != head {
					t.Fatalf("PushAll restore changed the head: %v, want %v", r, head)
				}
				c.PushAll(reqs)
			case 6: // peek, then start the head as the kernel's Sync would
				before := c.PendingLen()
				r, ok := c.PeekPending()
				if ok != (before > 0) {
					t.Fatalf("PeekPending = %v with %d pending", ok, before)
				}
				if !ok {
					break
				}
				if c.PendingLen() != before {
					t.Fatal("PeekPending mutated the queue")
				}
				popped, popOK := c.PopPending()
				if !popOK || popped != r {
					t.Fatalf("PopPending = (%v, %v) after PeekPending = %v", popped, popOK, r)
				}
				start := c.BusyUntil()
				if r.Enqueued > start {
					start = r.Enqueued
				}
				c.Begin(r.Page, start, 100, true, r.Batch)
				c.CompleteInflight()
				started++
			}
			checkIndex()
			if c.Aborted() < prevAborted {
				t.Fatalf("Aborted went backwards: %d -> %d", prevAborted, c.Aborted())
			}
			if queued != started+removed+c.Aborted()+uint64(c.PendingLen()) {
				t.Fatalf("conservation violated: queued %d != started %d + removed %d + aborted %d + pending %d",
					queued, started, removed, c.Aborted(), c.PendingLen())
			}
		}
		if got := c.Started(); got != started {
			t.Fatalf("channel Started() = %d, harness began %d transfers", got, started)
		}
		// The event stream must tell the same story as the counters.
		counts := map[obs.Kind]uint64{}
		for _, e := range rec.Events() {
			counts[e.Kind]++
		}
		if counts[obs.KindPreloadQueue] != queued {
			t.Fatalf("%d queue events, queued %d", counts[obs.KindPreloadQueue], queued)
		}
		if want := c.Aborted() + removed; counts[obs.KindPreloadAbort] != want {
			t.Fatalf("%d abort events, want %d (aborted %d + removed %d)",
				counts[obs.KindPreloadAbort], want, c.Aborted(), removed)
		}
		if counts[obs.KindLoadStart] != started || counts[obs.KindLoadComplete] != started {
			t.Fatalf("%d start / %d complete events, began %d transfers",
				counts[obs.KindLoadStart], counts[obs.KindLoadComplete], started)
		}
	})
}
