package replay

import (
	"strings"
	"testing"

	"sgxpreload/internal/obs"
)

// FuzzReadJSONL drives the parser with arbitrary bytes — truncated
// traces, corrupt lines, hostile headers. The invariants: never panic,
// and any input the parser accepts must re-serialize and re-parse to the
// same timeline (accepted inputs are semantically unambiguous).
func FuzzReadJSONL(f *testing.F) {
	var valid strings.Builder
	if err := obs.WriteJSONL(&valid, allKindEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(valid.String()[:len(valid.String())/2])       // truncated mid-line
	f.Add(obs.TraceHeaderJSONL() + "\n")                // header only
	f.Add(obs.TraceHeaderJSONL())                       // header without newline
	f.Add("")                                           // empty
	f.Add(`{"schema":"sgxpreload-trace","version":2}`)  // future version
	f.Add(`{"t":1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`) // headerless
	f.Add(obs.TraceHeaderJSONL() + "\n" + `{"t":1,"kind":"nope","page":0,"batch":0,"v1":0,"v2":0}`)
	f.Add(obs.TraceHeaderJSONL() + "\n" + `{"t":-1,"kind":"scan","page":-2,"batch":0,"v1":0,"v2":0}`)
	f.Add(obs.TraceHeaderJSONL() + "\n{\"t\":1,")

	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := obs.WriteJSONL(&out, events); err != nil {
			t.Fatalf("re-serialize of accepted input failed: %v", err)
		}
		again, err := ReadJSONL(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-parse of re-serialized input failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-parse changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("event %d changed across round trip: %+v -> %+v", i, events[i], again[i])
			}
		}
		// Canonical serialization is a fixpoint: once written by
		// obs.WriteJSONL, a timeline re-parses and re-serializes to the
		// same bytes.
		var out2 strings.Builder
		if err := obs.WriteJSONL(&out2, again); err != nil {
			t.Fatal(err)
		}
		if out.String() != out2.String() {
			t.Fatal("canonical JSONL is not a serialization fixpoint")
		}
	})
}

// FuzzParseJSONLLine is the per-line differential fuzzer: the optimized
// parser (fast path + fallback) must agree with the pure encoding/json
// reference on accept/reject and on the decoded event, for any bytes.
func FuzzParseJSONLLine(f *testing.F) {
	for _, line := range parserCorpusJSONL() {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, line string) {
		got, gotErr := parseJSONLEvent([]byte(line))
		want, wantErr := refParseJSONLEvent([]byte(line))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%q: accept/reject diverges: optimized err=%v, reference err=%v", line, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("%q: value diverges: optimized %+v, reference %+v", line, got, want)
		}
	})
}

// FuzzParseCSVLine is the CSV counterpart against the strconv reference.
func FuzzParseCSVLine(f *testing.F) {
	for _, line := range parserCorpusCSV() {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, line string) {
		got, gotErr := parseCSVLine([]byte(line))
		want, wantErr := refParseCSVEvent([]byte(line))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%q: accept/reject diverges: optimized err=%v, reference err=%v", line, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("%q: value diverges: optimized %+v, reference %+v", line, got, want)
		}
	})
}

// FuzzReadCSV is the same harness over the CSV reader.
func FuzzReadCSV(f *testing.F) {
	var valid strings.Builder
	if err := obs.WriteCSV(&valid, allKindEvents()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(valid.String()[:len(valid.String())/3])
	f.Add(obs.TraceHeaderCSV() + "\n")
	f.Add(obs.TraceHeaderCSV() + "\nt,kind,page,batch,v1,v2\n")
	f.Add("")
	f.Add("t,kind,page,batch,v1,v2\n1,scan,0,0,0,0\n")
	f.Add(obs.TraceHeaderCSV() + "\nt,kind,page,batch,v1,v2\n1,scan,0,0,0\n")

	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := obs.WriteCSV(&out, events); err != nil {
			t.Fatalf("re-serialize of accepted input failed: %v", err)
		}
		again, err := ReadCSV(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-parse of re-serialized input failed: %v", err)
		}
		var out2 strings.Builder
		if err := obs.WriteCSV(&out2, again); err != nil {
			t.Fatal(err)
		}
		if out.String() != out2.String() {
			t.Fatal("canonical CSV is not a serialization fixpoint")
		}
	})
}
