package epc

import (
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func mustPolicy(t *testing.T, capacity int, pages uint64, pol Policy) *EPC {
	t.Helper()
	e, err := NewWithPolicy(capacity, pages, pol)
	if err != nil {
		t.Fatalf("NewWithPolicy(%v): %v", pol, err)
	}
	return e
}

func TestPolicyStrings(t *testing.T) {
	for pol, want := range map[Policy]string{
		PolicyClock: "clock", PolicyFIFO: "fifo", PolicyLRU: "lru", PolicyRandom: "random",
	} {
		if pol.String() != want {
			t.Errorf("%d.String() = %q, want %q", pol, pol.String(), want)
		}
	}
}

func TestNewWithPolicyRejectsUnknown(t *testing.T) {
	if _, err := NewWithPolicy(4, 10, Policy(99)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFIFOEvictsOldestLoad(t *testing.T) {
	e := mustPolicy(t, 3, 100, PolicyFIFO)
	for _, p := range []mem.PageID{5, 6, 7} {
		if err := e.Load(p, false); err != nil {
			t.Fatal(err)
		}
	}
	// Touching must not matter to FIFO.
	e.Touch(5)
	e.Touch(5)
	if v := e.SelectVictim(); v != 5 {
		t.Fatalf("FIFO victim = %d, want 5 (oldest load)", v)
	}
	e.Evict(5)
	if err := e.Load(8, false); err != nil {
		t.Fatal(err)
	}
	if v := e.SelectVictim(); v != 6 {
		t.Fatalf("FIFO victim = %d, want 6", v)
	}
}

func TestLRUEvictsLeastRecentlyTouched(t *testing.T) {
	e := mustPolicy(t, 3, 100, PolicyLRU)
	for _, p := range []mem.PageID{1, 2, 3} {
		if err := e.Load(p, false); err != nil {
			t.Fatal(err)
		}
	}
	// Re-touch 1 and 3; 2 becomes LRU.
	e.Touch(1)
	e.Touch(3)
	if v := e.SelectVictim(); v != 2 {
		t.Fatalf("LRU victim = %d, want 2", v)
	}
	// Touch 2; now 1 is LRU (its touch was earliest).
	e.Touch(2)
	if v := e.SelectVictim(); v != 1 {
		t.Fatalf("LRU victim = %d, want 1", v)
	}
}

func TestRandomVictimIsResidentAndDeterministic(t *testing.T) {
	mk := func() []mem.PageID {
		e := mustPolicy(t, 8, 100, PolicyRandom)
		for p := mem.PageID(0); p < 8; p++ {
			if err := e.Load(p, false); err != nil {
				t.Fatal(err)
			}
		}
		var victims []mem.PageID
		for i := 0; i < 5; i++ {
			v := e.SelectVictim()
			if !e.Present(v) {
				t.Fatalf("random victim %d not resident", v)
			}
			e.Evict(v)
			victims = append(victims, v)
		}
		return victims
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic across identical histories")
		}
	}
}

func TestAllPoliciesSurviveRandomWorkload(t *testing.T) {
	for _, pol := range []Policy{PolicyClock, PolicyFIFO, PolicyLRU, PolicyRandom} {
		t.Run(pol.String(), func(t *testing.T) {
			r := rng.New(uint64(pol) + 1)
			e := mustPolicy(t, 16, 256, pol)
			for i := 0; i < 3000; i++ {
				p := mem.PageID(r.Intn(256))
				if e.Touch(p) {
					continue
				}
				if e.Full() {
					v := e.SelectVictim()
					if v == mem.NoPage || !e.Evict(v) {
						t.Fatalf("step %d: bad victim %d", i, v)
					}
				}
				if err := e.Load(p, r.Intn(3) == 0); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVictimByMinSkipsFreeFrames(t *testing.T) {
	e := mustPolicy(t, 4, 100, PolicyFIFO)
	if err := e.Load(9, false); err != nil {
		t.Fatal(err)
	}
	if v := e.SelectVictim(); v != 9 {
		t.Fatalf("victim = %d with one resident page, want 9", v)
	}
}

func TestScanPreloadBitsRange(t *testing.T) {
	e := mustPolicy(t, 8, 100, PolicyClock)
	for _, p := range []mem.PageID{10, 20, 30} {
		if err := e.Load(p, true); err != nil {
			t.Fatal(err)
		}
		e.Touch(p)
	}
	var seen []mem.PageID
	e.ScanPreloadBitsRange(15, 25, true, func(p mem.PageID, acc bool) {
		if !acc {
			t.Errorf("page %d not accessed", p)
		}
		seen = append(seen, p)
	})
	if len(seen) != 1 || seen[0] != 20 {
		t.Fatalf("range scan saw %v, want [20]", seen)
	}
	// Pages outside the range keep their preload bits.
	if !e.Preloaded(10) || !e.Preloaded(30) {
		t.Fatal("range scan cleared bits outside its range")
	}
	if e.Preloaded(20) {
		t.Fatal("scanned accessed page kept its preload bit")
	}
}
