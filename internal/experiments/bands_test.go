package experiments

import (
	"math"
	"testing"
)

// band is an acceptance interval for a benchmark × scheme improvement.
type band struct{ lo, hi float64 }

func (b band) contains(v float64) bool { return v >= b.lo && v <= b.hi }

// paperBands pins every benchmark's improvements to an interval around
// the paper's reported (or implied) value. These are the calibration
// contract: a workload-model or engine change that silently moves a
// benchmark out of its band fails here with the exact number.
//
// NaN bounds mean "no constraint" (the paper gives no number and the
// shape tests elsewhere cover the sign).
var paperBands = map[string]struct {
	dfp, dfpStop, sip band
}{
	// Regular set: paper Figure 8 (micro +18.6, lbm +13.3; bwaves/wrf in
	// the regular band averaging 11.4), Figure 10 zeros.
	"microbenchmark": {dfp: band{14, 25}, dfpStop: band{14, 25}, sip: band{-0.5, 0.5}},
	"lbm":            {dfp: band{10, 17}, dfpStop: band{10, 17}, sip: band{-0.5, 0.5}},
	"bwaves":         {dfp: band{6, 16}, dfpStop: band{6, 16}, sip: nan()},
	"wrf":            {dfp: band{5, 13}, dfpStop: band{5, 13}, sip: nan()},

	// Irregular set: Figure 8 losses and recoveries, Figure 10 gains.
	"deepsjeng": {dfp: band{-45, -15}, dfpStop: band{-4, 2}, sip: band{6, 16}},
	"roms":      {dfp: band{-50, -25}, dfpStop: band{-3, 2}, sip: nan()},
	"omnetpp":   {dfp: band{-45, -10}, dfpStop: band{-4, 2}, sip: nan()},
	"mcf":       {dfp: band{-30, -3}, dfpStop: band{-4, 2}, sip: band{-3, 3}},
	"mcf.2006":  {dfp: band{-10, 5}, dfpStop: band{-3, 4}, sip: band{2, 9}},
	"xz":        {dfp: band{-8, 8}, dfpStop: band{-4, 8}, sip: band{0, 6}},

	// Vision apps: Figure 11.
	"SIFT": {dfp: band{6, 15}, dfpStop: band{6, 15}, sip: band{-0.5, 0.5}},
	"MSER": {dfp: band{-4, 7}, dfpStop: band{-4, 7}, sip: band{1.5, 9}},

	// mixed-blood: Figure 13 (hybrid asserted in TestFigure13MixedBlood).
	"mixed-blood": {dfp: band{3, 11}, dfpStop: band{3, 11}, sip: band{0.5, 4}},

	// Small working set: no movement beyond cold-start noise.
	"cactuBSSN": {dfp: band{-1, 5}, dfpStop: band{-1, 5}, sip: band{-1, 1}},
	"imagick":   {dfp: band{-1, 5}, dfpStop: band{-1, 5}, sip: band{-1, 1}},
	"leela":     {dfp: band{-1, 5}, dfpStop: band{-1, 5}, sip: band{-1, 1}},
	"nab":       {dfp: band{-1, 5}, dfpStop: band{-1, 5}, sip: band{-1, 1}},
	"exchange2": {dfp: band{-1, 5}, dfpStop: band{-1, 5}, sip: band{-1, 1}},
}

func nan() band { return band{math.NaN(), math.NaN()} }

func TestCalibrationBands(t *testing.T) {
	sum, err := Summary(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range sum.Rows {
		b, ok := paperBands[row.Name]
		if !ok {
			t.Errorf("%s: no calibration band declared", row.Name)
			continue
		}
		seen[row.Name] = true
		check := func(scheme string, v float64, bd band) {
			if math.IsNaN(bd.lo) {
				return
			}
			if !bd.contains(v) {
				t.Errorf("%s %s = %+.1f%%, outside calibration band [%+.1f, %+.1f]",
					row.Name, scheme, v, bd.lo, bd.hi)
			}
		}
		check("DFP", row.DFP, b.dfp)
		check("DFP-stop", row.DFPStop, b.dfpStop)
		if row.Instrumentable {
			check("SIP", row.SIP, b.sip)
		}
	}
	for name := range paperBands {
		if !seen[name] {
			t.Errorf("band declared for unknown benchmark %s", name)
		}
	}
}
