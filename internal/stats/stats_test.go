package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Fatalf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
	if got := GeoMean([]float64{1, -1}); got != 0 {
		t.Fatalf("GeoMean with negative = %v, want 0", got)
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized(50, 100); got != 0.5 {
		t.Fatalf("Normalized(50, 100) = %v", got)
	}
	if got := Normalized(1, 0); !math.IsNaN(got) {
		t.Fatalf("Normalized(_, 0) = %v, want NaN", got)
	}
}

func TestImprovementPct(t *testing.T) {
	tests := []struct {
		value, base uint64
		want        float64
	}{
		{90, 100, 10},
		{110, 100, -10},
		{100, 100, 0},
	}
	for _, tt := range tests {
		if got := ImprovementPct(tt.value, tt.base); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("ImprovementPct(%d, %d) = %v, want %v", tt.value, tt.base, got, tt.want)
		}
	}
	// A zero baseline is NaN, matching Normalized: a missing baseline
	// must be visible in reports, not rendered as "no change".
	if got := ImprovementPct(5, 0); !math.IsNaN(got) {
		t.Fatalf("ImprovementPct(_, 0) = %v, want NaN", got)
	}
}

// Both normalization helpers must agree on the zero-baseline case, so a
// report never shows a clean number in one column and garbage in the
// adjacent one for the same broken baseline.
func TestZeroBaselineConsistency(t *testing.T) {
	if n, i := Normalized(7, 0), ImprovementPct(7, 0); !math.IsNaN(n) || !math.IsNaN(i) {
		t.Fatalf("zero baseline: Normalized = %v, ImprovementPct = %v, want NaN for both", n, i)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.Add("alpha", 12)
	tbl.Add("b", 3.14159)
	out := tbl.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.142") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Columns must align: every line has the same prefix width for col 1.
	if !strings.HasPrefix(lines[2], "alpha") || !strings.HasPrefix(lines[3], "b    ") {
		t.Fatalf("first column not left-aligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.Add("x", 1, 2)
	out := tbl.String()
	if !strings.Contains(out, "2") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
	// Rows wider than the header are normalized up front: the separator
	// spans all columns, and the header's phantom cells emit no stray
	// padding.
	want := "a\n-------\nx  1  2\n"
	if out != want {
		t.Fatalf("ragged render = %q, want %q", out, want)
	}
}

func TestTableRaggedShortRow(t *testing.T) {
	tbl := &Table{Header: []string{"name", "x", "y"}}
	tbl.Add("full", 1, 2)
	tbl.Add("short")
	out := tbl.String()
	for i, line := range strings.Split(out, "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Fatalf("line %d has trailing whitespace: %q\n%s", i, line, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestTableEmpty(t *testing.T) {
	if out := (&Table{}).String(); out != "" {
		t.Fatalf("empty table rendered %q, want empty", out)
	}
}

func TestTableRendersNaN(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.Add("broken", math.NaN())
	if out := tbl.String(); !strings.Contains(out, "NaN") {
		t.Fatalf("NaN cell not visible:\n%s", out)
	}
}
