package main

import (
	"strings"
	"testing"
)

func TestProfileOutput(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "deepsjeng"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"classification:", "large working set, irregular access",
		"instrumented:", "irregular",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPatternDump(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "lbm", "-pattern"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "linear fit:") || !strings.Contains(out, "# index page") {
		t.Errorf("pattern dump incomplete:\n%.400s", out)
	}
	// The dump must contain data lines.
	lines := strings.Split(out, "\n")
	var data int
	for _, l := range lines {
		if len(l) > 0 && l[0] >= '0' && l[0] <= '9' {
			data++
		}
	}
	if data < 100 {
		t.Errorf("pattern dump has only %d data lines", data)
	}
}

func TestRefInput(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "microbenchmark", "-input", "ref"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ref input") {
		t.Errorf("ref input not honored:\n%.200s", buf.String())
	}
}

func TestUnknownBenchmark(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "nope"}, &buf); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
