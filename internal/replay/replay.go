// Package replay loads recorded event timelines back into memory so the
// derived metrics in internal/obs can be recomputed — and two runs can
// be compared — without re-simulating anything.
//
// The writers are obs.Recorder.WriteJSONL and WriteCSV; both start their
// output with a schema/version header (obs.TraceSchema, obs.TraceVersion)
// and this package refuses traces whose header is missing or names a
// different schema or version, so a field change can never silently
// misparse an old artifact. Parsing is strict per line — an unknown event
// kind, a malformed record, or a truncated line is an error carrying the
// 1-based line number, never a panic — and lossless: re-serializing a
// parsed timeline with obs.WriteJSONL reproduces the input byte for byte
// (the round-trip property test and the parser fuzzer pin both).
//
// On top of loading, Compare diffs two timelines: the first divergent
// event, per-kind count deltas, and the deltas of every derived Report
// field, with deterministic text and JSON renderings. This is the
// paper's run-by-run evaluation style (DFP versus DFP-stop, Figures
// 8–13) applied to recorded artifacts instead of live runs.
package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// maxLineBytes bounds one trace line. Real lines are under 120 bytes;
// the cap keeps a corrupt or hostile file from buffering unbounded data.
const maxLineBytes = 1 << 20

// header is the JSONL schema line written by obs.Recorder.WriteJSONL.
type header struct {
	Schema  string   `json:"schema"`
	Version int      `json:"version"`
	Fields  []string `json:"fields"`
}

// jsonEvent is one JSONL event line on the wire.
type jsonEvent struct {
	T     uint64 `json:"t"`
	Kind  string `json:"kind"`
	Page  int64  `json:"page"`
	Batch uint64 `json:"batch"`
	V1    uint64 `json:"v1"`
	V2    uint64 `json:"v2"`
}

// ReadFile loads a recorded timeline, dispatching on the extension the
// trace writer used: ".csv" selects CSV, anything else JSONL.
func ReadFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []obs.Event
	if strings.HasSuffix(path, ".csv") {
		events, err = ReadCSV(f)
	} else {
		events, err = ReadJSONL(f)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// ReadJSONL parses a JSONL trace as written by obs.Recorder.WriteJSONL:
// the schema header line, then one event per line. It returns an error —
// never panics — on a missing or mismatched header, an unknown kind, or
// any malformed line.
func ReadJSONL(r io.Reader) ([]obs.Event, error) {
	sc := newLineScanner(r)
	if !sc.Scan() {
		return nil, scanErr(sc, fmt.Errorf("empty trace: missing %s header", obs.TraceSchema))
	}
	if err := parseJSONLHeader(sc.Bytes()); err != nil {
		return nil, err
	}
	var events []obs.Event
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		e, err := parseJSONLEvent(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	return events, nil
}

// parseJSONLHeader validates the schema line.
func parseJSONLHeader(raw []byte) error {
	var h header
	if err := json.Unmarshal(raw, &h); err != nil || h.Schema == "" {
		return fmt.Errorf("line 1: not a %s header (trace written before schema versioning?): %.80s",
			obs.TraceSchema, raw)
	}
	if h.Schema != obs.TraceSchema {
		return fmt.Errorf("line 1: schema %q, want %q", h.Schema, obs.TraceSchema)
	}
	if h.Version != obs.TraceVersion {
		return fmt.Errorf("line 1: trace version %d, this reader understands version %d",
			h.Version, obs.TraceVersion)
	}
	return nil
}

// parseJSONLEvent parses one event line. The hot path is a byte-level
// scanner for the canonical shape WriteJSONL emits — fixed field order,
// no whitespace, plain decimal numbers — which covers every line of a
// writer-produced trace without touching encoding/json. Anything the
// fast scanner does not recognize exactly (reordered fields, spaces,
// leading zeros, out-of-range numbers, unknown kinds) falls back to the
// original json.Unmarshal path, so acceptance and error behavior are
// identical to the pure-JSON parser (the differential test and fuzzer
// pin this).
func parseJSONLEvent(raw []byte) (obs.Event, error) {
	if e, ok := parseJSONLFast(raw); ok {
		return e, nil
	}
	var je jsonEvent
	if err := json.Unmarshal(raw, &je); err != nil {
		return obs.Event{}, fmt.Errorf("malformed event: %w", err)
	}
	return wireToEvent(je.T, je.Kind, je.Page, je.Batch, je.V1, je.V2)
}

// Canonical JSONL line fragments, in the writer's fixed field order.
var (
	jsonPrefixT    = []byte(`{"t":`)
	jsonFieldKind  = []byte(`,"kind":"`)
	jsonFieldPage  = []byte(`","page":`)
	jsonFieldBatch = []byte(`,"batch":`)
	jsonFieldV1    = []byte(`,"v1":`)
	jsonFieldV2    = []byte(`,"v2":`)
)

// cutPrefix strips prefix from b, reporting whether it was present.
func cutPrefix(b, prefix []byte) ([]byte, bool) {
	if !bytes.HasPrefix(b, prefix) {
		return nil, false
	}
	return b[len(prefix):], true
}

// scanDigits parses a run of leading decimal digits, returning the
// value and the rest. ok is false when there is no digit or the value
// overflows uint64 — both send the caller to the slow path, which
// reproduces the exact error the old parser raised.
func scanDigits(b []byte) (v uint64, rest []byte, ok bool) {
	i := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := uint64(b[i] - '0')
		if v > (1<<64-1-d)/10 {
			return 0, nil, false
		}
		v = v*10 + d
		i++
	}
	if i == 0 {
		return 0, nil, false
	}
	return v, b[i:], true
}

// scanJSONUint is scanDigits restricted to the JSON number grammar: a
// leading zero is only valid for the number 0 itself ("007" must reach
// the slow path, which rejects it like any JSON decoder).
func scanJSONUint(b []byte) (uint64, []byte, bool) {
	if len(b) >= 2 && b[0] == '0' && b[1] >= '0' && b[1] <= '9' {
		return 0, nil, false
	}
	return scanDigits(b)
}

// scanJSONPage parses the page field: -1 (the NoPage sentinel) or a
// non-negative int64. Any other shape — including valid-JSON negatives
// below -1, which the old parser rejected with "negative page" — defers
// to the slow path.
func scanJSONPage(b []byte) (int64, []byte, bool) {
	if len(b) >= 2 && b[0] == '-' && b[1] == '1' && (len(b) == 2 || b[2] < '0' || b[2] > '9') {
		return -1, b[2:], true
	}
	v, rest, ok := scanJSONUint(b)
	if !ok || v > 1<<63-1 {
		return 0, nil, false
	}
	return int64(v), rest, true
}

// parseJSONLFast scans one canonical writer-emitted line. ok reports
// whether the line matched the canonical shape; a false return says
// nothing about validity — the caller re-parses with encoding/json.
func parseJSONLFast(raw []byte) (obs.Event, bool) {
	rest, ok := cutPrefix(raw, jsonPrefixT)
	if !ok {
		return obs.Event{}, false
	}
	t, rest, ok := scanJSONUint(rest)
	if !ok {
		return obs.Event{}, false
	}
	if rest, ok = cutPrefix(rest, jsonFieldKind); !ok {
		return obs.Event{}, false
	}
	q := bytes.IndexByte(rest, '"')
	if q < 0 {
		return obs.Event{}, false
	}
	kind, ok := obs.KindByWire(rest[:q])
	if !ok {
		return obs.Event{}, false
	}
	if rest, ok = cutPrefix(rest[q:], jsonFieldPage); !ok {
		return obs.Event{}, false
	}
	page, rest, ok := scanJSONPage(rest)
	if !ok {
		return obs.Event{}, false
	}
	if rest, ok = cutPrefix(rest, jsonFieldBatch); !ok {
		return obs.Event{}, false
	}
	batch, rest, ok := scanJSONUint(rest)
	if !ok {
		return obs.Event{}, false
	}
	if rest, ok = cutPrefix(rest, jsonFieldV1); !ok {
		return obs.Event{}, false
	}
	v1, rest, ok := scanJSONUint(rest)
	if !ok {
		return obs.Event{}, false
	}
	if rest, ok = cutPrefix(rest, jsonFieldV2); !ok {
		return obs.Event{}, false
	}
	v2, rest, ok := scanJSONUint(rest)
	if !ok || len(rest) != 1 || rest[0] != '}' {
		return obs.Event{}, false
	}
	p := mem.PageID(page)
	if page == -1 {
		p = mem.NoPage
	}
	return obs.Event{T: t, Kind: kind, Page: p, Batch: batch, V1: v1, V2: v2}, true
}

// ReadCSV parses a CSV trace as written by obs.Recorder.WriteCSV: the
// schema comment line, the column header row, then one event per row.
func ReadCSV(r io.Reader) ([]obs.Event, error) {
	sc := newLineScanner(r)
	if !sc.Scan() {
		return nil, scanErr(sc, fmt.Errorf("empty trace: missing %q header", obs.TraceHeaderCSV()))
	}
	if got := sc.Text(); got != obs.TraceHeaderCSV() {
		return nil, fmt.Errorf("line 1: header %.80q, want %q (trace written before schema versioning?)",
			got, obs.TraceHeaderCSV())
	}
	if !sc.Scan() {
		return nil, scanErr(sc, fmt.Errorf("truncated trace: missing column header"))
	}
	if got, want := sc.Text(), "t,kind,page,batch,v1,v2"; got != want {
		return nil, fmt.Errorf("line 2: column header %.80q, want %q", got, want)
	}
	var events []obs.Event
	line := 2
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		e, err := parseCSVLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	return events, nil
}

// parseCSVLine parses one CSV row: a byte-level fast path for canonical
// writer output, falling back to the strconv-based parser (identical
// acceptance — strconv tolerates leading zeros and sign prefixes the
// fast path defers on) for anything else.
func parseCSVLine(raw []byte) (obs.Event, error) {
	if e, ok := parseCSVFast(raw); ok {
		return e, nil
	}
	return parseCSVEvent(string(raw))
}

// parseCSVFast scans a canonical CSV row. Like parseJSONLFast, a false
// return only means "not canonical"; the slow path decides validity.
func parseCSVFast(raw []byte) (obs.Event, bool) {
	var f [6][]byte
	n, start := 0, 0
	for i := 0; i <= len(raw); i++ {
		if i == len(raw) || raw[i] == ',' {
			if n == 6 {
				return obs.Event{}, false
			}
			f[n] = raw[start:i]
			n++
			start = i + 1
		}
	}
	if n != 6 {
		return obs.Event{}, false
	}
	// strconv.ParseUint accepts leading zeros, so plain scanDigits (full
	// consumption) matches its acceptance for unsigned fields.
	full := func(b []byte) (uint64, bool) {
		v, rest, ok := scanDigits(b)
		return v, ok && len(rest) == 0
	}
	t, ok := full(f[0])
	if !ok {
		return obs.Event{}, false
	}
	kind, ok := obs.KindByWire(f[1])
	if !ok {
		return obs.Event{}, false
	}
	var page int64
	if pb := f[2]; len(pb) == 2 && pb[0] == '-' && pb[1] == '1' {
		page = -1
	} else {
		v, ok := full(pb)
		if !ok || v > 1<<63-1 {
			return obs.Event{}, false
		}
		page = int64(v)
	}
	batch, ok := full(f[3])
	if !ok {
		return obs.Event{}, false
	}
	v1, ok := full(f[4])
	if !ok {
		return obs.Event{}, false
	}
	v2, ok := full(f[5])
	if !ok {
		return obs.Event{}, false
	}
	p := mem.PageID(page)
	if page == -1 {
		p = mem.NoPage
	}
	return obs.Event{T: t, Kind: kind, Page: p, Batch: batch, V1: v1, V2: v2}, true
}

// parseCSVEvent parses one CSV row (the strconv slow path).
func parseCSVEvent(text string) (obs.Event, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 6 {
		return obs.Event{}, fmt.Errorf("malformed row: %d fields, want 6", len(fields))
	}
	t, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return obs.Event{}, fmt.Errorf("bad t %q", fields[0])
	}
	page, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return obs.Event{}, fmt.Errorf("bad page %q", fields[2])
	}
	var rest [3]uint64
	for i, name := range [...]string{"batch", "v1", "v2"} {
		v, err := strconv.ParseUint(fields[3+i], 10, 64)
		if err != nil {
			return obs.Event{}, fmt.Errorf("bad %s %q", name, fields[3+i])
		}
		rest[i] = v
	}
	return wireToEvent(t, fields[1], page, rest[0], rest[1], rest[2])
}

// wireToEvent validates and converts one decoded record. page -1 is the
// writer's rendering of mem.NoPage; other negatives are corruption.
func wireToEvent(t uint64, kind string, page int64, batch, v1, v2 uint64) (obs.Event, error) {
	k, ok := obs.KindByName(kind)
	if !ok {
		return obs.Event{}, fmt.Errorf("unknown event kind %q", kind)
	}
	p := mem.PageID(page)
	switch {
	case page == -1:
		p = mem.NoPage
	case page < 0:
		return obs.Event{}, fmt.Errorf("negative page %d", page)
	}
	return obs.Event{T: t, Kind: k, Page: p, Batch: batch, V1: v1, V2: v2}, nil
}

// newLineScanner returns a scanner with the trace line-length cap.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return sc
}

// scanErr prefers the scanner's I/O error over the fallback.
func scanErr(sc *bufio.Scanner, fallback error) error {
	if err := sc.Err(); err != nil {
		return err
	}
	return fallback
}
