package replay

import (
	"encoding/json"
	"strings"
	"testing"

	"sgxpreload/internal/obs"
)

func TestCompareIdentical(t *testing.T) {
	events := allKindEvents()
	d := Compare(events, events)
	if !d.Identical || d.First != nil {
		t.Fatalf("self-diff not identical: %+v", d.First)
	}
	for _, dl := range append(d.Counts, d.Report...) {
		if dl.Diff != 0 {
			t.Errorf("self-diff delta %s = %g, want 0", dl.Name, dl.Diff)
		}
	}
	if !strings.Contains(d.String(), "timelines:           identical") {
		t.Errorf("text rendering missing identical marker:\n%s", d.String())
	}
}

func TestCompareFirstDivergence(t *testing.T) {
	a := allKindEvents()
	b := append([]obs.Event(nil), a...)
	b[3].V1 += 9
	d := Compare(a, b)
	if d.Identical {
		t.Fatal("diff of modified timeline reports identical")
	}
	if d.First == nil || d.First.Index != 3 {
		t.Fatalf("first divergence = %+v, want index 3", d.First)
	}
	if d.First.A == nil || d.First.B == nil || d.First.A.V1 == d.First.B.V1 {
		t.Fatalf("divergent events not captured: %+v", d.First)
	}
}

func TestComparePrefix(t *testing.T) {
	a := allKindEvents()
	b := a[:len(a)-2]
	d := Compare(a, b)
	if d.Identical || d.First == nil {
		t.Fatal("prefix timeline reported identical")
	}
	if d.First.Index != len(b) || d.First.A == nil || d.First.B != nil {
		t.Fatalf("prefix divergence = %+v, want index %d with nil b side", d.First, len(b))
	}
	if !strings.Contains(d.String(), "<end of timeline>") {
		t.Errorf("text rendering missing end-of-timeline marker:\n%s", d.String())
	}
}

func TestCompareCountAndReportDeltas(t *testing.T) {
	a := []obs.Event{
		{T: 100, Kind: obs.KindFaultBegin, Page: 1},
		{T: 200, Kind: obs.KindFaultEnd, Page: 1, V1: 100},
	}
	b := []obs.Event{
		{T: 100, Kind: obs.KindFaultBegin, Page: 1},
		{T: 300, Kind: obs.KindFaultEnd, Page: 1, V1: 200},
		{T: 400, Kind: obs.KindDFPStop, V1: 10, V2: 1},
	}
	d := Compare(a, b)
	counts := map[string]Delta{}
	for _, dl := range d.Counts {
		counts[dl.Name] = dl
	}
	if dl := counts["dfp_stop"]; dl.A != 0 || dl.B != 1 || dl.Diff != 1 {
		t.Errorf("dfp_stop count delta = %+v", dl)
	}
	if dl := counts["fault_begin"]; dl.Diff != 0 {
		t.Errorf("fault_begin count delta = %+v", dl)
	}
	report := map[string]Delta{}
	for _, dl := range d.Report {
		report[dl.Name] = dl
	}
	if dl := report["fault_latency_mean"]; dl.A != 100 || dl.B != 200 {
		t.Errorf("fault_latency_mean delta = %+v", dl)
	}
	if dl := report["dfp_stop_cycle"]; dl.B != 400 {
		t.Errorf("dfp_stop_cycle delta = %+v", dl)
	}
}

// TestDiffJSONDeterministic pins the JSON rendering: marshaling the same
// diff twice yields identical bytes, and the payload parses back.
func TestDiffJSONDeterministic(t *testing.T) {
	a := allKindEvents()
	b := append([]obs.Event(nil), a[:len(a)-1]...)
	d := Compare(a, b)
	j1, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(d)
	if string(j1) != string(j2) {
		t.Fatal("diff JSON not deterministic")
	}
	var decoded map[string]any
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("diff JSON does not parse: %v", err)
	}
	for _, key := range []string{"len_a", "len_b", "identical", "first_divergence", "count_deltas", "report_deltas"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("diff JSON missing %q", key)
		}
	}
}
