package sgxpreload

import (
	"fmt"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/workload"
)

// Streaming API. Run materializes the whole trace before simulating;
// RunStream instead pulls accesses one at a time, so peak memory is
// independent of trace length — hour-long or synthetic unbounded
// workloads simulate in O(1) space. Built-in benchmarks stream via
// Stream (their generators run as suspended coroutines); custom
// workloads implement Streamer or hand any AccessStream to RunStream.

// AccessStream is a pull-based access source: Next returns the next
// access, or ok=false when the trace is exhausted. Implementations need
// not be restartable; obtain a fresh stream per run.
type AccessStream interface {
	Next() (Access, bool)
}

// Streamer is optionally implemented by workloads that can produce
// their trace incrementally instead of materializing it. Built-in
// benchmarks implement it.
type Streamer interface {
	// Stream returns a fresh pull-based source over the same accesses
	// Trace(in) would return.
	Stream(in Input) AccessStream
}

// StreamFunc adapts a function to AccessStream.
type StreamFunc func() (Access, bool)

// Next implements AccessStream.
func (f StreamFunc) Next() (Access, bool) { return f() }

// LimitStream caps src at n accesses — the standard way to bound an
// unbounded generator for a finite run.
func LimitStream(src AccessStream, n uint64) AccessStream {
	var seen uint64
	return StreamFunc(func() (Access, bool) {
		if seen >= n {
			return Access{}, false
		}
		a, ok := src.Next()
		if ok {
			seen++
		}
		return a, ok
	})
}

// RunStream replays accesses pulled from src under cfg, on an enclave of
// the given virtual range. Accesses outside the range fail the run, as
// with a materialized workload trace. The engine looks one access ahead;
// everything else about the simulation — scheme wiring, cost model,
// results — is identical to Run.
func RunStream(src AccessStream, pages uint64, cfg Config) (Result, error) {
	if src == nil {
		return Result{}, fmt.Errorf("sgxpreload: RunStream needs a stream")
	}
	if pages == 0 {
		return Result{}, fmt.Errorf("sgxpreload: RunStream needs the enclave page range")
	}
	cfg = cfg.normalize()
	scfg := sim.Config{
		Scheme:       sim.Scheme(cfg.Scheme),
		Costs:        cfg.Costs,
		EPCPages:     cfg.EPCPages,
		ELRangePages: pages,
		DFP:          cfg.dfpConfig(),
	}
	if cfg.Selection != nil {
		scfg.Selection = cfg.Selection.sel
	}
	res, err := sim.RunStream(toInternalStream(src), scfg)
	if err != nil {
		return Result{}, err
	}
	return resultFromSim(res), nil
}

// RunWorkloadStream replays the workload's input through the streaming
// engine: the Streamer path when the workload implements it, and a
// slice-backed stream over Trace(in) otherwise (correct, but without the
// memory benefit).
func RunWorkloadStream(w Workload, in Input, cfg Config) (Result, error) {
	if s, ok := w.(Streamer); ok {
		return RunStream(s.Stream(in), w.Pages(), cfg)
	}
	accs := w.Trace(in)
	i := 0
	return RunStream(StreamFunc(func() (Access, bool) {
		if i >= len(accs) {
			return Access{}, false
		}
		a := accs[i]
		i++
		return a, true
	}), w.Pages(), cfg)
}

// toInternalStream converts public accesses on the fly; bounds are
// checked by the engine at execution time.
func toInternalStream(src AccessStream) mem.Stream {
	return mem.StreamFunc(func() (mem.Access, bool) {
		a, ok := src.Next()
		if !ok {
			return mem.Access{}, false
		}
		return mem.Access{
			Site:    mem.SiteID(a.Site),
			Page:    mem.PageID(a.Page),
			Compute: a.Compute,
			Write:   a.Write,
		}, true
	})
}

// resultFromSim converts an internal result to the public form.
func resultFromSim(res sim.Result) Result {
	return Result{
		Scheme:          Scheme(res.Scheme),
		Cycles:          res.Cycles,
		Accesses:        res.Accesses,
		Hits:            res.Hits,
		Faults:          res.Kernel.DemandFaults,
		PreloadsStarted: res.Kernel.PreloadsStarted,
		PreloadsDropped: res.Kernel.PreloadsDropped,
		NotifyLoads:     res.Kernel.NotifyLoads,
		StopFired:       res.Kernel.DFPStopped,
	}
}

// Stream implements Streamer for built-in benchmarks: the workload
// generator runs as a coroutine suspended between accesses.
func (b builtin) Stream(in Input) AccessStream {
	src := b.w.Stream(workload.Input(in))
	return StreamFunc(func() (Access, bool) {
		a, ok := src.Next()
		if !ok {
			return Access{}, false
		}
		return Access{
			Site:    uint32(a.Site),
			Page:    uint64(a.Page),
			Compute: a.Compute,
			Write:   a.Write,
		}, true
	})
}
