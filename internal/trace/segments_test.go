package trace

import (
	"math"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func TestSegmentedFitEmpty(t *testing.T) {
	if got := SegmentedFit(nil, 4, 0.05); got != nil {
		t.Fatalf("SegmentedFit(nil) = %v", got)
	}
	if got := SegmentedFit([]Sample{{0, 1}}, 0, 0.05); got != nil {
		t.Fatalf("SegmentedFit with maxSegments 0 = %v", got)
	}
}

func TestSegmentedFitSingleRamp(t *testing.T) {
	var s []Sample
	for i := uint64(0); i < 500; i++ {
		s = append(s, Sample{Index: i, Page: mem.PageID(10 + 2*i)})
	}
	segs := SegmentedFit(s, 6, 0.05)
	if len(segs) != 1 {
		t.Fatalf("a perfect line split into %d segments", len(segs))
	}
	if math.Abs(segs[0].Fit.Slope-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", segs[0].Fit.Slope)
	}
}

func TestSegmentedFitTwoRamps(t *testing.T) {
	// lbm-style: two sweeps over the same region (sawtooth).
	var s []Sample
	for i := uint64(0); i < 400; i++ {
		s = append(s, Sample{Index: i, Page: mem.PageID(3 * (i % 200))})
	}
	segs := SegmentedFit(s, 4, 0.02)
	if len(segs) < 2 {
		t.Fatalf("sawtooth split into %d segments, want >= 2", len(segs))
	}
	// Segments must tile the input.
	if segs[0].Start != 0 || segs[len(segs)-1].End != len(s) {
		t.Fatalf("segments do not tile: %+v", segs)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End {
			t.Fatalf("segments not contiguous: %+v", segs)
		}
	}
	// Each detected ramp should fit well and have roughly slope 3.
	for _, seg := range segs {
		if seg.Len() > 100 && (seg.Fit.Slope < 2 || seg.Fit.Slope > 4) {
			t.Errorf("segment [%d,%d) slope %v, want ~3", seg.Start, seg.End, seg.Fit.Slope)
		}
	}
}

func TestSegmentedFitRespectsMax(t *testing.T) {
	var s []Sample
	for i := uint64(0); i < 1000; i++ {
		s = append(s, Sample{Index: i, Page: mem.PageID(7 * (i % 100))})
	}
	segs := SegmentedFit(s, 3, 0.0)
	if len(segs) > 3 {
		t.Fatalf("got %d segments, max 3", len(segs))
	}
}

func TestSegmentedFitNoiseStops(t *testing.T) {
	r := rng.New(5)
	var s []Sample
	for i := uint64(0); i < 600; i++ {
		s = append(s, Sample{Index: i, Page: mem.PageID(r.Uint64n(1 << 16))})
	}
	// On pure noise, splits barely reduce residual: the minGain guard
	// must keep the segmentation coarse.
	segs := SegmentedFit(s, 16, 0.05)
	if len(segs) > 4 {
		t.Fatalf("noise split into %d segments; minGain guard failed", len(segs))
	}
}
