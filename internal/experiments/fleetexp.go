package experiments

import (
	"fmt"
	"math"

	"sgxpreload/internal/fleet"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

// The fleet-policies study: the same skewed arrival stream placed by
// each of the fleet layer's policies. The population interleaves EPC
// hogs (lbm, a footprint several times one host's EPC) with small
// benchmarks, and the hogs arrive at indices 0, 4, 8 of a four-host
// fleet — the adversarial alignment for round-robin, which places
// launch i on host i mod 4 and therefore stacks every hog on host 0.
// Load-aware placement reads the hosts' live signals at each arrival
// barrier instead: pressure-aware sees host 0's EPC occupancy climb
// after the first hog and routes the later hogs to idle hosts, so the
// tail of the fault-service latency distribution — the faults queued
// behind a thrashing host's load channel — collapses. The comparison
// to make is the p99 column: same work, same arrival times, different
// placement.

// fleetPolicyArrivals is the arrival order: a hog leading every group
// of four, smalls filling the gaps.
var fleetPolicyArrivals = []string{
	"lbm", "leela", "exchange2", "nab",
	"lbm", "leela", "exchange2", "nab",
	"lbm", "leela", "exchange2", "nab",
}

const (
	fleetPolicyHosts = 4
	// fleetArrivalPeriod spaces launches far enough apart that a hog's
	// EPC occupancy is visible at the next arrival barrier, but close
	// enough that the hogs' runs overlap — the contention the policies
	// must navigate.
	fleetArrivalPeriod = 2_000_000
)

// FleetPoliciesResult holds one fleet.Result per placement policy.
type FleetPoliciesResult struct {
	Hosts    int
	Arrivals []string
	Policies []fleet.Policy
	Results  []fleet.Result
}

// FleetPolicies runs the arrival stream under every placement policy.
// Each run's internal host advancement uses the runner's worker pool;
// the three runs share the runner's trace cache.
func FleetPolicies(r *Runner) (FleetPoliciesResult, error) {
	out := FleetPoliciesResult{
		Hosts:    fleetPolicyHosts,
		Arrivals: fleetPolicyArrivals,
		Policies: fleet.Policies(),
	}
	arrivals := make([]fleet.Arrival, len(fleetPolicyArrivals))
	for i, name := range fleetPolicyArrivals {
		w, err := mustWorkload(name)
		if err != nil {
			return out, err
		}
		arrivals[i] = fleet.Arrival{
			At: uint64(i) * fleetArrivalPeriod,
			Enclave: sim.Enclave{
				Name:   fmt.Sprintf("%s/%d", name, i),
				Trace:  r.Trace(w, workload.Ref),
				Pages:  w.ELRangePages(),
				Scheme: sim.DFPStop,
			},
		}
	}
	for _, policy := range out.Policies {
		res, err := fleet.Run(arrivals, fleet.Config{
			Hosts:    fleetPolicyHosts,
			Policy:   policy,
			Platform: sim.SharedConfig{EPCPages: r.p.EPCPages},
			Workers:  r.workers,
		})
		if err != nil {
			return out, fmt.Errorf("fleet-policies/%s: %w", policy, err)
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// hogSpread counts the distinct hosts the hogs (lbm launches) landed on.
func (a FleetPoliciesResult) hogSpread(res fleet.Result) int {
	hosts := map[int]bool{}
	for i, name := range a.Arrivals {
		if name == "lbm" && res.Placement[i] >= 0 {
			hosts[res.Placement[i]] = true
		}
	}
	return len(hosts)
}

// String renders the policy comparison: fleet-wide fault-latency
// percentiles and the hog placement spread per policy.
func (a FleetPoliciesResult) String() string {
	t := &stats.Table{Header: []string{"policy", "hog hosts", "faults", "p50", "p95", "p99"}}
	for i, res := range a.Results {
		t.Add(a.Policies[i].String(), a.hogSpread(res), res.Faults,
			fleetCyc(res.FaultP50), fleetCyc(res.FaultP95), fleetCyc(res.FaultP99))
	}
	return fmt.Sprintf("Fleet placement policies: %d launches over %d hosts, one hog per group of four\n",
		len(a.Arrivals), a.Hosts) + t.String()
}

// fleetCyc renders a latency percentile, "-" when no faults occurred.
func fleetCyc(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
