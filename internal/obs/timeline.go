package obs

import (
	"sgxpreload/internal/mem"
	"sgxpreload/internal/plot"
)

// Timeline renders the event stream as a page-versus-time chart in the
// style of the paper's Figure 3, with the observability layer's extra
// dimensions: demand faults, completed preloads, and evictions are
// scatter series, and the DFP-stop trip point (if any) is a vertical
// line. maxPoints caps each series (uniform downsampling) so the SVG
// stays viewable for long runs; <= 0 means no cap.
func Timeline(title string, events []Event, maxPoints int) plot.Chart {
	var faultX, faultY, preX, preY, evX, evY []float64
	var ymin, ymax float64
	first := true
	note := func(p mem.PageID) {
		y := float64(p)
		if first {
			ymin, ymax, first = y, y, false
			return
		}
		if y < ymin {
			ymin = y
		}
		if y > ymax {
			ymax = y
		}
	}
	for _, e := range events {
		if e.Page == mem.NoPage {
			continue
		}
		switch e.Kind {
		case KindFaultEnd:
			faultX = append(faultX, float64(e.T))
			faultY = append(faultY, float64(e.Page))
			note(e.Page)
		case KindLoadComplete:
			if e.V2 == 1 {
				preX = append(preX, float64(e.T))
				preY = append(preY, float64(e.Page))
				note(e.Page)
			}
		case KindEvict:
			evX = append(evX, float64(e.T))
			evY = append(evY, float64(e.Page))
			note(e.Page)
		}
	}

	c := plot.Chart{
		Title:  title,
		XLabel: "virtual time (cycles)",
		YLabel: "page",
		Kind:   "scatter",
	}
	add := func(name string, x, y []float64) {
		if len(x) == 0 {
			return
		}
		x, y = downsample(x, y, maxPoints)
		c.Series = append(c.Series, plot.Series{Name: name, X: x, Y: y})
	}
	add("fault", faultX, faultY)
	add("preload", preX, preY)
	add("evict", evX, evY)
	if stop := DFPStopAt(events); stop > 0 && !first {
		c.Series = append(c.Series, plot.Series{
			Name: "DFP-stop",
			Kind: "line",
			X:    []float64{float64(stop), float64(stop)},
			Y:    []float64{ymin, ymax},
		})
	}
	return c
}

// downsample keeps at most n points, uniformly spaced, preserving the
// first and last.
func downsample(x, y []float64, n int) ([]float64, []float64) {
	if n <= 0 || len(x) <= n {
		return x, y
	}
	ox := make([]float64, 0, n)
	oy := make([]float64, 0, n)
	step := float64(len(x)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		j := int(float64(i)*step + 0.5)
		if j >= len(x) {
			j = len(x) - 1
		}
		ox = append(ox, x[j])
		oy = append(oy, y[j])
	}
	return ox, oy
}
