// Package sim is the execution engine: it drives a page-level access
// trace through the modeled enclave under a chosen preloading scheme and
// accumulates virtual time.
//
// The engine models the enclave application thread. All OS-side behavior
// (fault handling, preloading, eviction, the service thread) lives in
// package kernel; the engine's job is the enclave-side protocol: regular
// accesses, and — when SIP instruments the access site — the
// BIT_MAP_CHECK of the shared presence bitmap followed by a preload
// notification instead of a fault.
package sim

import (
	"fmt"

	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/kernel"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sip"
)

// Scheme selects the preloading configuration of a run.
type Scheme int

// Schemes evaluated in the paper.
const (
	// Baseline: vanilla SGX driver, no preloading.
	Baseline Scheme = iota
	// DFP: dynamic fault-history-based preloading (§3.1).
	DFP
	// DFPStop: DFP with the global abort safety valve (§4.2).
	DFPStop
	// SIP: source-level instrumentation-based preloading (§3.2).
	SIP
	// Hybrid: DFP-stop and SIP together (§5.4).
	Hybrid
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case DFP:
		return "DFP"
	case DFPStop:
		return "DFP-stop"
	case SIP:
		return "SIP"
	case Hybrid:
		return "SIP+DFP"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SchemeByName resolves a scheme's flag/spec spelling (lower-cased:
// baseline, dfp, dfp-stop, sip, hybrid) to its Scheme. Both CLI flags
// and workload-spec files funnel through it, so the accepted names
// cannot drift between the two surfaces.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "baseline":
		return Baseline, nil
	case "dfp":
		return DFP, nil
	case "dfp-stop", "dfpstop":
		return DFPStop, nil
	case "sip":
		return SIP, nil
	case "hybrid", "sip+dfp":
		return Hybrid, nil
	}
	return 0, fmt.Errorf("sim: unknown scheme %q (want baseline, dfp, dfp-stop, sip, or hybrid)", name)
}

// UsesDFP reports whether the scheme runs the fault-history predictor.
func (s Scheme) UsesDFP() bool { return s == DFP || s == DFPStop || s == Hybrid }

// UsesSIP reports whether the scheme consults an instrumentation
// selection.
func (s Scheme) UsesSIP() bool { return s == SIP || s == Hybrid }

// Config configures a run.
type Config struct {
	// Scheme is the preloading configuration.
	Scheme Scheme
	// Costs is the cycle cost model; zero value means mem.DefaultCostModel.
	Costs mem.CostModel
	// EPCPages is the EPC capacity in frames.
	EPCPages int
	// ELRangePages is the enclave's virtual range; must cover every page
	// the trace touches.
	ELRangePages uint64
	// DFP configures the predictor for DFP/DFP-stop/hybrid schemes. The
	// Stop field is forced on for DFPStop and Hybrid.
	DFP dfp.Config
	// Selection is the SIP instrumentation-site set (from profiling); used
	// by SIP and Hybrid schemes.
	Selection *sip.Selection
	// ScanPeriod and MaxPending pass through to the kernel; zero selects
	// defaults.
	ScanPeriod uint64
	MaxPending int
	// Predictor selects the fault-history strategy for DFP-style schemes;
	// the zero value is the paper's multiple-stream recognizer. Used by
	// the predictor ablation.
	Predictor core.Kind
	// EvictPolicy selects the EPC victim-selection algorithm; the zero
	// value is the driver's CLOCK. Used by the eviction ablation.
	EvictPolicy epc.Policy
	// Quota selects the per-enclave EPC quota policy (see package
	// arbiter); the zero value is Global — no quotas, today's single
	// victim scan bit-for-bit. In a solo run a non-global policy is the
	// degenerate one-owner partition and changes nothing.
	Quota arbiter.Policy
	// BackgroundReclaim enables the ksgxswapd-style watermark reclaimer
	// (see kernel.Config); used by the reclaim ablation.
	BackgroundReclaim bool
	// Hook, when non-nil, receives the run's event timeline (see package
	// obs): faults, channel transfers, preload queue/abort, evictions,
	// service scans, DFP accuracy and stop, predictor stream lifecycles.
	// A nil Hook costs only untaken branches, and the simulated virtual
	// time is identical with and without a hook.
	Hook obs.Hook
}

// Result is the outcome of a run.
type Result struct {
	// Scheme echoes the configuration.
	Scheme Scheme
	// Cycles is the application's total virtual execution time.
	Cycles uint64
	// Accesses is the number of trace accesses executed.
	Accesses uint64
	// Hits counts accesses whose page was resident.
	Hits uint64
	// SIPChecks counts executed BIT_MAP_CHECKs; SIPPresent counts those
	// that found the page resident (pure overhead).
	SIPChecks  uint64
	SIPPresent uint64
	// PrefetchChecks and PrefetchIssued count oracle-inserted early
	// notifications (eager-SIP ablation only).
	PrefetchChecks uint64
	PrefetchIssued uint64
	// ComputeCycles is the trace's own computation time (scheme
	// independent).
	ComputeCycles uint64
	// Kernel carries the OS-side counters.
	Kernel kernel.Stats
}

// Faults returns the number of demand faults taken.
func (r Result) Faults() uint64 { return r.Kernel.DemandFaults }

// FaultCycles returns the time attributable to the enclave fault protocol.
func (r Result) FaultCycles() uint64 {
	return r.Kernel.AEXCycles + r.Kernel.LoadWaitCycles + r.Kernel.EresumeCycles
}

// solo converts a single-enclave Config into the engine's (enclave,
// platform) split. The scheme wiring itself lives in buildState — this
// is field plumbing only, so Run cannot drift from RunShared.
func (cfg Config) solo() (Enclave, SharedConfig) {
	return Enclave{
			Pages:             cfg.ELRangePages,
			Scheme:            cfg.Scheme,
			DFP:               cfg.DFP,
			Selection:         cfg.Selection,
			Predictor:         cfg.Predictor,
			BackgroundReclaim: cfg.BackgroundReclaim,
		}, SharedConfig{
			Costs:       cfg.Costs,
			EPCPages:    cfg.EPCPages,
			ScanPeriod:  cfg.ScanPeriod,
			MaxPending:  cfg.MaxPending,
			EvictPolicy: cfg.EvictPolicy,
			Quota:       cfg.Quota,
			Hook:        cfg.Hook,
		}
}

// Run executes the trace under cfg and returns the result. It is the
// one-enclave, materialized-trace case of the unified engine.
func Run(trace []mem.Access, cfg Config) (Result, error) {
	if cfg.ELRangePages == 0 {
		return Result{}, fmt.Errorf("sim: ELRangePages must be set")
	}
	enc, scfg := cfg.solo()
	enc.Trace = trace
	eng, err := New([]Enclave{enc}, scfg)
	if err != nil {
		return Result{}, err
	}
	if err := eng.run(); err != nil {
		return Result{}, err
	}
	return eng.Result(0).Result, nil
}

// RunStream executes accesses pulled from src under cfg — Run without
// ever materializing the trace. The engine looks one access ahead, so
// peak memory is independent of trace length; src may be unbounded only
// if the caller bounds it (mem.Limit) or drives the engine manually.
func RunStream(src mem.Stream, cfg Config) (Result, error) {
	if cfg.ELRangePages == 0 {
		return Result{}, fmt.Errorf("sim: ELRangePages must be set")
	}
	if src == nil {
		return Result{}, fmt.Errorf("sim: RunStream needs a stream")
	}
	enc, scfg := cfg.solo()
	enc.Stream = src
	eng, err := New([]Enclave{enc}, scfg)
	if err != nil {
		return Result{}, err
	}
	if err := eng.run(); err != nil {
		return Result{}, err
	}
	return eng.Result(0).Result, nil
}
