package sim

import (
	"fmt"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/rng"
)

// Scheduler tests: the event-heap scheduler must reproduce the seed's
// linear argmin byte for byte, including its strict first-min tie-break
// (lowest enclave index wins on equal keys). The adversarial fleets
// below are engineered so that key collisions are the common case, not
// the corner case: identical-trace cohorts stay tied at every step, and
// low-entropy compute values make unrelated enclaves' keys re-collide
// constantly mid-run.

// linearStep replicates the seed scheduler verbatim (PR 5's
// Engine.Step): a linear argmin over clock + nextAccess.Compute with
// strict < comparison, so the lowest-index enclave wins every tie. It
// drives the per-enclave execution state directly, bypassing the heap —
// the reference the heap is differentially compared against.
func linearStep(e *Engine) (bool, error) {
	var next *enclaveState
	for _, st := range e.states {
		if !st.has {
			continue
		}
		if next == nil || st.t+st.next.Compute < next.t+next.next.Compute {
			next = st
		}
	}
	if next == nil {
		return false, nil
	}
	if err := next.step(e.costs); err != nil {
		return false, err
	}
	next.advance()
	return true, nil
}

// tieTrace draws computes from {0, 10, 20} so enclaves' scheduling keys
// collide constantly even when their traces differ.
func tieTrace(r *rng.Source, n int, pages uint64) []mem.Access {
	out := make([]mem.Access, n)
	for i := range out {
		out[i] = mem.Access{
			Site:    mem.SiteID(1 + r.Intn(4)),
			Page:    mem.PageID(r.Uint64n(pages)),
			Compute: uint64(r.Intn(3)) * 10,
		}
	}
	return out
}

// tieBreakEnclaves builds an E-enclave fleet engineered for scheduler-key
// collisions: even indices share one trace (a cohort that is tied at
// every single step, so every pick exercises the lowest-index rule),
// odd indices get independent low-entropy traces, and the schemes cycle
// so DFP preload traffic perturbs the clocks mid-run.
func tieBreakEnclaves(e int) []Enclave {
	schemes := []Scheme{Baseline, DFP, DFPStop}
	r := rng.New(uint64(e)*7919 + 1)
	const pages = 64
	tied := tieTrace(r.Fork(), 200, pages)
	encs := make([]Enclave, e)
	for i := range encs {
		tr := tied
		if i%2 == 1 {
			tr = tieTrace(r.Fork(), 200, pages)
		}
		encs[i] = Enclave{
			Name:   fmt.Sprintf("enc%04d", i),
			Trace:  tr,
			Pages:  pages,
			Scheme: schemes[i%len(schemes)],
		}
	}
	return encs
}

// tieBreakCell runs the E-enclave tie-break fleet hooked and renders the
// golden-hash artifacts (Results dump + JSONL + replayed report), the
// same three artifacts the seed golden table pins.
func tieBreakCell(t testing.TB, e int) diffArtifacts {
	t.Helper()
	rec := obs.NewRecorder()
	res, err := RunShared(tieBreakEnclaves(e), SharedConfig{EPCPages: e * 8, Hook: rec})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return diffArtifacts{
		result: fmt.Sprintf("%#v", res),
		jsonl:  b.String(),
		report: obs.BuildReport(rec.Events()).String(),
	}
}

// TestDifferentialHeapVsLinear drives two identical fleets to
// completion, one through Engine.Step (the event heap), one through the
// seed's linear argmin, and requires identical results — and, at the
// hooked sizes, an identical event timeline, which pins the *order* of
// every scheduling decision, not just the totals. E=1024 is the CI
// scale gate for the heap (the linear reference goes quadratic there,
// so the trace per enclave is short).
func TestDifferentialHeapVsLinear(t *testing.T) {
	for _, e := range []int{8, 64, 1024} {
		t.Run(fmt.Sprintf("E=%d", e), func(t *testing.T) {
			hooked := e <= 64
			var recHeap, recLin *obs.Recorder
			cfgHeap := SharedConfig{EPCPages: e * 8}
			cfgLin := cfgHeap
			if hooked {
				recHeap, recLin = obs.NewRecorder(), obs.NewRecorder()
				cfgHeap.Hook, cfgLin.Hook = recHeap, recLin
			}
			heapEng, err := New(tieBreakEnclaves(e), cfgHeap)
			if err != nil {
				t.Fatal(err)
			}
			linEng, err := New(tieBreakEnclaves(e), cfgLin)
			if err != nil {
				t.Fatal(err)
			}
			for {
				more, err := heapEng.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !more {
					break
				}
			}
			for {
				more, err := linearStep(linEng)
				if err != nil {
					t.Fatal(err)
				}
				if !more {
					break
				}
			}
			hr := fmt.Sprintf("%#v", heapEng.Results())
			lr := fmt.Sprintf("%#v", linEng.Results())
			if hr != lr {
				t.Errorf("E=%d: heap results diverge from linear argmin:\n  heap   %.300s\n  linear %.300s", e, hr, lr)
			}
			if hooked {
				var hb, lb strings.Builder
				if err := recHeap.WriteJSONL(&hb); err != nil {
					t.Fatal(err)
				}
				if err := recLin.WriteJSONL(&lb); err != nil {
					t.Fatal(err)
				}
				if hb.String() != lb.String() {
					t.Errorf("E=%d: event timeline diverges (%d vs %d bytes): %s",
						e, hb.Len(), lb.Len(), firstDiffLine(hb.String(), lb.String()))
				}
			}
		})
	}
}
