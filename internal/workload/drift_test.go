package workload

import (
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/sip"
)

// Behavioral tests for the train/ref input drift each benchmark model
// encodes — the mechanics behind the paper's SIP findings. They profile
// with the same classifier the experiments use and assert the per-model
// properties DESIGN.md documents.

func profileOf(t *testing.T, name string, in Input) *sip.Profile {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sip.NewClassifier(2048, w.ELRangePages(), dfp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Generate(in) {
		cl.Record(a.Site, a.Page)
	}
	return cl.Profile()
}

func TestMcfWashDrift(t *testing.T) {
	// mcf: sites profile irregular under train but run nearly resident
	// under ref — the wash mechanism.
	train := profileOf(t, "mcf", Train)
	ref := profileOf(t, "mcf", Ref)
	var trainHot, refHot int
	for site, sp := range train.Sites {
		if sp.IrregularRatio() >= 0.05 {
			trainHot++
			if rsp := ref.Site(site); rsp.IrregularRatio() >= 0.05 {
				refHot++
			}
		}
	}
	if trainHot < 50 {
		t.Fatalf("only %d mcf sites profile irregular at train", trainHot)
	}
	if float64(refHot) > 0.3*float64(trainHot) {
		t.Errorf("%d of %d train-irregular mcf sites stay irregular at ref; drift missing",
			refHot, trainHot)
	}
}

func TestDeepsjengSitesStayIrregular(t *testing.T) {
	// deepsjeng: the opposite of mcf — its probe sites stay irregular, so
	// SIP keeps paying at ref.
	train := profileOf(t, "deepsjeng", Train)
	ref := profileOf(t, "deepsjeng", Ref)
	var trainHot, refHot int
	for site, sp := range train.Sites {
		if sp.IrregularRatio() >= 0.05 {
			trainHot++
			if rsp := ref.Site(site); rsp.IrregularRatio() >= 0.04 {
				refHot++
			}
		}
	}
	if trainHot == 0 {
		t.Fatal("no irregular deepsjeng sites at train")
	}
	if float64(refHot) < 0.6*float64(trainHot) {
		t.Errorf("only %d of %d deepsjeng sites stay irregular at ref", refHot, trainHot)
	}
}

func TestXzScanSiteDrift(t *testing.T) {
	// xz: the input-scan site (5001) profiles sequential under the train
	// stream but fragments under the ref archive — so SIP leaves it alone
	// and DFP cannot win on it either.
	train := profileOf(t, "xz", Train)
	ref := profileOf(t, "xz", Ref)
	scan := mem.SiteID(5001)
	if r := train.Site(scan).IrregularRatio(); r >= 0.05 {
		t.Errorf("xz scan site irregular ratio at train = %.3f, want < 5%%", r)
	}
	if r := ref.Site(scan).IrregularRatio(); r < 0.10 {
		t.Errorf("xz scan site irregular ratio at ref = %.3f, want fragmented (>= 10%%)", r)
	}
}

func TestSequentialBenchmarksProfileClean(t *testing.T) {
	// lbm, SIFT, and the microbenchmark must present no instrumentable
	// irregular sites at train — the Table 2 zeros.
	for _, name := range []string{"lbm", "SIFT", "microbenchmark"} {
		p := profileOf(t, name, Train)
		sel := sip.Select(p, 0.05, 32)
		if sel.Points() != 0 {
			t.Errorf("%s: %d instrumentation points from its train profile, want 0",
				name, sel.Points())
		}
	}
}

func TestRomsBaitsTheRecognizer(t *testing.T) {
	// roms emits two-page runs: the recognizer must see a substantial
	// Class-2 population (that is what baits DFP into junk preloads).
	p := profileOf(t, "roms", Ref)
	var c2, total uint64
	for _, sp := range p.Sites {
		c2 += sp.Class2
		total += sp.Total()
	}
	if ratio := float64(c2) / float64(total); ratio < 0.2 {
		t.Errorf("roms Class-2 share = %.2f, want >= 0.2 (two-page bait runs)", ratio)
	}
}

func TestSmallWSProfilesMostlyResident(t *testing.T) {
	for _, w := range ByCategory(SmallWS) {
		p := profileOf(t, w.Name, Train)
		if share := float64(p.Faults) / float64(p.Accesses); share > 0.08 {
			t.Errorf("%s: %.1f%% of profiled accesses fault; small-WS should be resident",
				w.Name, 100*share)
		}
	}
}
