// Command experiments regenerates every table and figure of the paper's
// evaluation and prints the reports (optionally writing one file per
// experiment).
//
// Usage:
//
//	experiments                 # run everything, print to stdout
//	experiments -only fig8      # one experiment
//	experiments -outdir results # also write results/<id>.txt
//	experiments -parallel 8     # bound the sweep worker pool
//	experiments -progress       # per-cell progress on stderr
//
// Each experiment fans its independent (workload, config) cells out
// across a worker pool (default GOMAXPROCS); results are keyed by cell
// index, so the printed tables and figures are byte-identical at any
// -parallel setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sgxpreload/internal/experiments"
)

// experiment names one reproducible artifact of the paper.
type experiment struct {
	id   string
	desc string
	run  func(*experiments.Runner) (fmt.Stringer, error)
}

// wrap adapts a typed experiment runner to the generic signature.
func wrap[T fmt.Stringer](f func(*experiments.Runner) (T, error)) func(*experiments.Runner) (fmt.Stringer, error) {
	return func(r *experiments.Runner) (fmt.Stringer, error) {
		v, err := f(r)
		return v, err
	}
}

func all() []experiment {
	return []experiment{
		{"motivation", "enclave vs regular fault cost; scan slowdown", wrap(experiments.Motivation)},
		{"fig3", "page-access patterns (bwaves, deepsjeng, lbm)", wrap(experiments.Figure3)},
		{"fig6", "DFP vs stream_list length (lbm, bwaves)", wrap(experiments.Figure6)},
		{"fig7", "DFP vs preload distance (7 benchmarks)", wrap(experiments.Figure7)},
		{"fig8", "DFP and DFP-stop improvement per benchmark", wrap(experiments.Figure8)},
		{"fig9", "SIP threshold sweep on deepsjeng", wrap(experiments.Figure9)},
		{"fig10", "SIP improvement per benchmark", wrap(experiments.Figure10)},
		{"fig11", "real-world applications (SIFT, MSER)", wrap(experiments.Figure11)},
		{"fig12", "SIP vs DFP vs hybrid", wrap(experiments.Figure12)},
		{"fig13", "mixed-blood hybrid study", wrap(experiments.Figure13)},
		{"table1", "benchmark classification", wrap(experiments.Table1)},
		{"table2", "SIP instrumentation points", wrap(experiments.Table2)},
		{"summary", "every benchmark x scheme", wrap(experiments.Summary)},
		{"ablation-epc", "DFP-stop vs EPC size", wrap(experiments.EPCSweep)},
		{"ablation-predictor", "alternative fault-history predictors", wrap(experiments.PredictorAblation)},
		{"ablation-eviction", "EPC eviction policies", wrap(experiments.EvictionAblation)},
		{"ablation-loadcost", "ELDU cost sensitivity", wrap(experiments.CostSensitivity)},
		{"ablation-shared", "multi-enclave EPC sharing (paper §5.6)", wrap(experiments.SharedEPC)},
		{"fleet-sharded", "fleet over independent EPC domains (sharded runner)", wrap(experiments.ShardedFleet)},
		{"fleet-policies", "cluster placement policies vs p99 fault latency (fleet layer)", wrap(experiments.FleetPolicies)},
		{"epc-partition", "per-enclave EPC quota policies on a hog-skewed co-run", wrap(experiments.EPCPartition)},
		{"saturation", "arrival-spec rate sweep to the admission/latency knee", wrap(experiments.Saturation)},
		{"ablation-backward", "descending-stream recognition", wrap(experiments.BackwardStreams)},
		{"ablation-reclaim", "sync vs background (ksgxswapd) EWB reclaim", wrap(experiments.ReclaimAblation)},
		{"ablation-eager", "oracle early-notification headroom (Figure 4)", wrap(experiments.EagerSIP)},
		{"trace", "event-timeline trace report (deepsjeng, DFP-stop)", wrap(experiments.Trace)},
		{"replay", "trace replay round-trip proof + DFP vs DFP-stop diff", wrap(experiments.Replay)},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only      = fs.String("only", "", "comma-separated experiment ids (default: all)")
		outdir    = fs.String("outdir", "", "also write one report file per experiment")
		epc       = fs.Int("epc", 2048, "EPC capacity in 4KiB pages")
		threshold = fs.Float64("threshold", 0.05, "SIP instrumentation threshold")
		svg       = fs.Bool("svg", true, "with -outdir, also render figures as SVG")
		parallel  = fs.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS; output is identical at any setting)")
		progress  = fs.Bool("progress", false, "report per-cell sweep progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := experiments.Default()
	params.EPCPages = *epc
	params.Threshold = *threshold
	runner := experiments.NewRunner(params)
	runner.SetParallelism(*parallel)
	if *progress {
		runner.SetProgress(func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, label)
		})
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	ran := 0
	for _, e := range all() {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		ran++
		fmt.Fprintf(out, "== %s: %s ==\n", e.id, e.desc)
		res, err := e.run(runner)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		report := res.String()
		fmt.Fprintln(out, report)
		if *outdir != "" {
			path := filepath.Join(*outdir, e.id+".txt")
			if err := os.WriteFile(path, []byte(report+"\n"), 0o644); err != nil {
				return err
			}
			if ch, ok := res.(experiments.Charter); ok && *svg {
				for ci, chart := range ch.Charts() {
					name := e.id
					if ci > 0 {
						name = fmt.Sprintf("%s-%d", e.id, ci)
					}
					path := filepath.Join(*outdir, name+".svg")
					if err := os.WriteFile(path, []byte(chart.SVG()), 0o644); err != nil {
						return err
					}
				}
			}
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q; known ids: %s", *only, ids())
	}
	return nil
}

func ids() string {
	var out []string
	for _, e := range all() {
		out = append(out, e.id)
	}
	return strings.Join(out, ", ")
}
