// Package experiments reproduces the paper's evaluation (§5): one runner
// per table and figure, each returning the same rows or series the paper
// reports. Absolute cycle counts differ from the authors' testbed — the
// substrate is a simulator — but the shapes (who wins, by roughly what
// factor, where the crossovers and sweet spots fall) are the reproduction
// targets; EXPERIMENTS.md records paper-versus-measured for each.
//
// Per the paper's §5.1, after Figure 8 the abort safety valve "is
// integrated into the DFP and enabled by default", so every experiment
// after Figure 8 uses DFP-stop as its DFP arm; Figure 8 itself compares
// plain DFP against DFP-stop.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/workload"
)

// Params are the experiment-wide settings. The defaults scale the paper's
// platform (≈24576 usable EPC pages, benchmarks with up to gigabyte
// footprints) down by ~12x while preserving every footprint-to-EPC ratio.
type Params struct {
	// EPCPages is the EPC capacity used by every run.
	EPCPages int
	// Threshold is the SIP irregular-access-ratio instrumentation
	// threshold (the paper's sweet spot is 5%, Figure 9).
	Threshold float64
	// MinSiteAccesses filters sites with too few profile samples.
	MinSiteAccesses uint64
	// DFP is the predictor operating point (stream list 30, preload
	// distance 4 — the values the paper settles on in §5.1).
	DFP dfp.Config
}

// Default returns the standard parameters.
func Default() Params {
	return Params{
		EPCPages:        2048,
		Threshold:       0.05,
		MinSiteAccesses: 32,
		DFP:             dfp.DefaultConfig(),
	}
}

// Runner executes experiment runs with caching: generated traces and SIP
// profiles are deterministic per (workload, input), so sweeps reuse them.
// The caches are single-flight and safe for concurrent use, and every
// sweep-style experiment fans its cells out across the runner's worker
// pool (SetParallelism); results are keyed by cell index, so the output
// is byte-identical at any worker count.
type Runner struct {
	p       Params
	workers int

	progressMu sync.Mutex
	progress   Progress

	traces     *memo[traceKey, []mem.Access]
	selections *memo[string, *sip.Selection]
	profiles   *memo[string, *sip.Profile]
}

type traceKey struct {
	name string
	in   workload.Input
}

// NewRunner returns a Runner with the given parameters and a worker pool
// sized to GOMAXPROCS.
func NewRunner(p Params) *Runner {
	return &Runner{
		p:          p,
		workers:    runtime.GOMAXPROCS(0),
		traces:     newMemo[traceKey, []mem.Access](),
		selections: newMemo[string, *sip.Selection](),
		profiles:   newMemo[string, *sip.Profile](),
	}
}

// Params returns the runner's parameters.
func (r *Runner) Params() Params { return r.p }

// SetParallelism bounds the worker pool for sweeps: 1 is fully
// sequential, n <= 0 resets to GOMAXPROCS. Tables and figures are
// identical at every setting; only wall-clock time changes.
func (r *Runner) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	r.workers = n
}

// Parallelism returns the current worker-pool bound.
func (r *Runner) Parallelism() int { return r.workers }

// SetProgress installs a per-cell completion callback (nil disables).
// Calls are serialized by the runner.
func (r *Runner) SetProgress(p Progress) { r.progress = p }

// reportCell forwards one completed cell to the progress callback.
func (r *Runner) reportCell(done, total int, label string) {
	if r.progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	if r.progress != nil {
		r.progress(done, total, label)
	}
}

// Trace returns the (cached) access trace of a workload input. The fill
// is single-flight: concurrent sweep workers requesting the same trace
// share one generation.
func (r *Runner) Trace(w *workload.Workload, in workload.Input) []mem.Access {
	t, _ := r.traces.get(traceKey{w.Name, in}, func() ([]mem.Access, error) {
		return w.Generate(in), nil
	})
	return t
}

// Profile returns the (cached) SIP profile of a workload, built by
// classifying its train-input trace.
func (r *Runner) Profile(w *workload.Workload) (*sip.Profile, error) {
	return r.profiles.get(w.Name, func() (*sip.Profile, error) {
		cl, err := sip.NewClassifier(r.p.EPCPages, w.ELRangePages(), r.p.DFP)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", w.Name, err)
		}
		for _, a := range r.Trace(w, workload.Train) {
			cl.Record(a.Site, a.Page)
		}
		return cl.Profile(), nil
	})
}

// Selection returns the (cached) instrumentation-site selection of a
// workload at the runner's threshold.
func (r *Runner) Selection(w *workload.Workload) (*sip.Selection, error) {
	return r.selections.get(w.Name, func() (*sip.Selection, error) {
		p, err := r.Profile(w)
		if err != nil {
			return nil, err
		}
		return sip.Select(p, r.p.Threshold, r.p.MinSiteAccesses), nil
	})
}

// SelectionAt returns an uncached selection at an explicit threshold
// (for the Figure 9 sweep).
func (r *Runner) SelectionAt(w *workload.Workload, threshold float64) (*sip.Selection, error) {
	p, err := r.Profile(w)
	if err != nil {
		return nil, err
	}
	return sip.Select(p, threshold, r.p.MinSiteAccesses), nil
}

// Run executes workload w's ref input under the given scheme.
func (r *Runner) Run(w *workload.Workload, scheme sim.Scheme) (sim.Result, error) {
	return r.RunDFP(w, scheme, r.p.DFP)
}

// RunDFP is Run with an explicit DFP configuration (for parameter sweeps).
func (r *Runner) RunDFP(w *workload.Workload, scheme sim.Scheme, d dfp.Config) (sim.Result, error) {
	cfg := sim.Config{
		Scheme:       scheme,
		EPCPages:     r.p.EPCPages,
		ELRangePages: w.ELRangePages(),
		DFP:          d,
	}
	if scheme.UsesSIP() {
		if !w.Instrumentable {
			return sim.Result{}, fmt.Errorf("experiments: %s is not instrumentable (%s)", w.Name, w.Language)
		}
		sel, err := r.Selection(w)
		if err != nil {
			return sim.Result{}, err
		}
		cfg.Selection = sel
	}
	res, err := sim.Run(r.Trace(w, workload.Ref), cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", w.Name, scheme, err)
	}
	return res, nil
}

// RunStreamed is Run over the workload's pull-based generator: identical
// results, but the ref trace is never materialized (and never cached) —
// the memory-bound path for footprints too large to hold as a slice.
// Profiling for SIP schemes still uses the cached train trace.
func (r *Runner) RunStreamed(w *workload.Workload, scheme sim.Scheme) (sim.Result, error) {
	cfg := sim.Config{
		Scheme:       scheme,
		EPCPages:     r.p.EPCPages,
		ELRangePages: w.ELRangePages(),
		DFP:          r.p.DFP,
	}
	if scheme.UsesSIP() {
		if !w.Instrumentable {
			return sim.Result{}, fmt.Errorf("experiments: %s is not instrumentable (%s)", w.Name, w.Language)
		}
		sel, err := r.Selection(w)
		if err != nil {
			return sim.Result{}, err
		}
		cfg.Selection = sel
	}
	res, err := sim.RunStream(w.Stream(workload.Ref), cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s: %w", w.Name, scheme, err)
	}
	return res, nil
}

// RunAll executes the full (workload, scheme) grid in parallel on the
// runner's worker pool and returns results indexed [i][j] to match
// names[i] and schemes[j]. Cells are independent simulations; the shared
// trace/profile caches fill single-flight, and results land by index, so
// RunAll(names, schemes) is deterministic at any parallelism.
func (r *Runner) RunAll(names []string, schemes []sim.Scheme) ([][]sim.Result, error) {
	cells, err := sweep(r, "grid", len(names)*len(schemes),
		func(i int) string {
			return names[i/len(schemes)] + "/" + schemes[i%len(schemes)].String()
		},
		func(i int) (sim.Result, error) {
			w, err := mustWorkload(names[i/len(schemes)])
			if err != nil {
				return sim.Result{}, err
			}
			return r.Run(w, schemes[i%len(schemes)])
		})
	if err != nil {
		return nil, err
	}
	out := make([][]sim.Result, len(names))
	for i := range names {
		out[i] = cells[i*len(schemes) : (i+1)*len(schemes)]
	}
	return out, nil
}

// mustWorkload resolves a benchmark name; experiment sets are static, so a
// missing name is a programming error surfaced as an error to the caller.
func mustWorkload(name string) (*workload.Workload, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// LargeWorkingSet lists the benchmarks the DFP study (Figures 7 and 8)
// covers: every Table 1 large-footprint row plus the microbenchmark.
func LargeWorkingSet() []string {
	return []string{
		"bwaves", "lbm", "wrf", "microbenchmark",
		"roms", "mcf", "deepsjeng", "omnetpp", "xz",
	}
}

// SIPSet lists the benchmarks of the SIP study (Figure 10): the C/C++
// large-footprint benchmarks the paper's instrumenter supports, plus mcf
// from SPEC CPU2006.
func SIPSet() []string {
	return []string{"mcf.2006", "mcf", "xz", "deepsjeng", "lbm", "microbenchmark"}
}

// Figure7Set lists the seven large-footprint benchmarks of the preload-
// distance sweep.
func Figure7Set() []string {
	return []string{"bwaves", "lbm", "wrf", "roms", "mcf", "deepsjeng", "omnetpp"}
}
