package epc

import (
	"testing"

	"sgxpreload/internal/mem"
)

// BenchmarkEPCLookup measures the page-table operations on the fault hot
// path — Present, Touch, and the Evict+Load pair on a miss — over a full
// EPC under a pseudo-random page stream. Before the array-backed page
// table these were map lookups; they are now direct array indexing.
func BenchmarkEPCLookup(b *testing.B) {
	const (
		capacity = 4096
		pages    = 1 << 16
	)
	e, err := New(capacity, pages)
	if err != nil {
		b.Fatal(err)
	}
	for p := mem.PageID(0); p < capacity; p++ {
		if err := e.Load(p, false); err != nil {
			b.Fatal(err)
		}
	}
	rnd := uint64(0x2545f4914f6cdd1d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		p := mem.PageID(rnd % pages)
		if e.Present(p) {
			e.Touch(p)
			continue
		}
		if e.Full() {
			if v := e.SelectVictim(); v != mem.NoPage {
				e.Evict(v)
			}
		}
		if err := e.Load(p, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEPCPresent isolates the residency probe, the single most
// frequent EPC operation (every access and every predict filter hits it).
func BenchmarkEPCPresent(b *testing.B) {
	const (
		capacity = 4096
		pages    = 1 << 16
	)
	e, err := New(capacity, pages)
	if err != nil {
		b.Fatal(err)
	}
	for p := mem.PageID(0); p < capacity; p++ {
		if err := e.Load(p, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One resident page and one absent page per iteration.
		if !e.Present(mem.PageID(i % capacity)) {
			b.Fatal("resident page reported absent")
		}
		if e.Present(mem.PageID(capacity + i%capacity)) {
			b.Fatal("absent page reported resident")
		}
	}
}
