// Package dfp implements the paper's first contribution: Dynamic Fault
// history-based Preloading.
//
// DFP runs entirely in the untrusted OS. The only signal it sees is the
// sequence of faulting enclave page numbers (SGX clears the bottom 12 bits
// of the faulting address, so nothing finer is available). Algorithm 1 of
// the paper recognizes sequential streams in that fault history with a
// fixed-length LRU list of stream tails and, on every stream hit, asks the
// kernel to preload the next LOADLENGTH pages of the stream.
//
// Two abort mechanisms bound the cost of mispredictions:
//
//   - In-stream abort: a fault on a page that was predicted but not yet
//     loaded cancels the unstarted remainder of the batch (implemented in
//     the kernel's fault path; Algorithm 1 additionally rebuilds
//     list_to_load from scratch on every fault).
//   - Global abort ("DFP-stop", the safety valve of the paper's §4.2): a
//     service thread compares the number of preloaded pages that were
//     actually accessed (AccPreloadCounter) against the total number
//     preloaded (PreloadCounter) and permanently stops the preloading
//     thread when accuracy collapses.
package dfp

import (
	"fmt"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// Direction of a recognized stream.
type Direction int8

// Stream directions. Algorithm 1's add_to_list takes a direction operand:
// ascending streams preload pages after the fault, descending streams
// preload pages before it.
const (
	Forward  Direction = 1
	Backward Direction = -1
)

// Config holds the predictor's tunables — the two design parameters the
// paper studies in Figures 6 and 7, plus the stop-formula constants of
// §4.2.
type Config struct {
	// StreamListLen is the fixed length of the LRU stream_list. The paper
	// sweeps it in Figure 6 and settles on 30.
	StreamListLen int
	// LoadLength is the preload distance: how many pages past the stream
	// tail are queued on every stream hit. The paper sweeps it in Figure 7
	// and settles on 4.
	LoadLength int
	// Backward enables recognition of descending streams. The paper's
	// algorithm carries a direction operand; the evaluated implementation
	// is the Linux-readahead-style forward recognizer, so this defaults
	// off.
	Backward bool
	// Stop enables the global abort (DFP-stop in Figure 8).
	Stop bool
	// StopSlack is the additive constant T in the stop formula
	// AccPreloadCounter + T < PreloadCounter/2. The paper uses 200,000 on
	// full SPEC runs; the default here is scaled to the simulator's
	// smaller workloads and is configurable.
	StopSlack uint64
}

// DefaultConfig returns the paper's chosen operating point (stream list of
// 30 entries, preload distance 4) with the stop mechanism disabled — the
// paper evaluates plain DFP and DFP-stop separately.
func DefaultConfig() Config {
	return Config{StreamListLen: 30, LoadLength: 4, StopSlack: 300}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.StreamListLen <= 0 {
		return fmt.Errorf("dfp: StreamListLen must be positive, got %d", c.StreamListLen)
	}
	if c.LoadLength <= 0 {
		return fmt.Errorf("dfp: LoadLength must be positive, got %d", c.LoadLength)
	}
	return nil
}

// entry is one stream_list element: the most recent faulting page of a
// stream (stpn, "stream tail page number"), the furthest page the stream
// has predicted (pend), and the stream's direction.
//
// Tracking pend is what makes the recognizer work once preloading
// succeeds: when the predicted pages are loaded in time, the stream's next
// fault lands at pend+1, not stpn+1, and when the application outruns the
// preload worker the fault lands between stpn and pend. Both must extend
// the stream — this is the same windowing Linux readahead applies to its
// ahead window.
type entry struct {
	stpn mem.PageID
	pend mem.PageID // furthest predicted page; == stpn before first prediction
	dir  Direction  // 0 until the second fault fixes the direction
	id   uint64     // lifecycle tag for stream events (1-based)
	hits uint64     // faults that extended this stream
}

// Predictor is the multiple-stream predictor of Algorithm 1. The zero
// value is unusable; construct with New.
type Predictor struct {
	cfg Config
	// streams is ordered most-recently-used first. Lengths are at most a
	// few dozen (the paper sweeps 2..60), so linear scans beat pointer
	// chasing through container/list.
	streams []entry

	// Stop-mechanism state (§4.2).
	preloadCount uint64 // PreloadCounter: pages handed to the preload thread
	accCount     uint64 // AccPreloadCounter: preloaded pages seen accessed
	stopped      bool

	hits   uint64 // faults that extended a stream
	misses uint64 // faults that started a new stream

	nextStream uint64   // stream id allocator
	hook       obs.Hook // nil = observability disabled

	// scratch is the reusable prediction buffer; it keeps the per-fault
	// hot path allocation-free on unbounded streamed runs.
	scratch []mem.PageID
}

// New returns a predictor for the given configuration.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{cfg: cfg, streams: make([]entry, 0, cfg.StreamListLen)}, nil
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// SetHook installs an event hook for stream-lifecycle events (nil
// disables). The predictor has no clock of its own — it sees only the
// fault-page sequence — so it emits events with a zero timestamp; the
// kernel installs an obs.Clocked wrapper that stamps them with the
// fault's resume cycle.
func (p *Predictor) SetHook(h obs.Hook) { p.hook = h }

// Stopped reports whether the global abort has fired. Once stopped, the
// predictor never produces another prediction: the paper's preloading
// thread "stops itself" for the remainder of the run.
func (p *Predictor) Stopped() bool { return p.stopped }

// OnFault implements Algorithm 1. npn is the newly faulting page number.
// It returns the list of pages to preload (nil when the fault does not
// extend any stream, or after the global abort). The returned slice is
// only valid until the next OnFault call: it aliases an internal scratch
// buffer, so callers that need the pages later must copy them.
//
// When npn is sequential to a stream — strictly adjacent to the tail of a
// stream that has not predicted yet, or anywhere inside (tail, pend+1] of
// a stream that has — the tail is advanced, the entry moves to the head of
// the LRU list, and the next LoadLength pages in the stream's direction
// are returned for preloading. Otherwise the least recently used entry is
// replaced with a new single-page stream starting at npn.
func (p *Predictor) OnFault(npn mem.PageID) []mem.PageID {
	if p.stopped {
		return nil
	}
	for i := range p.streams {
		e := &p.streams[i]
		dir, ok := e.matches(npn, p.cfg.Backward)
		if !ok {
			continue
		}
		p.hits++
		e.hits++
		e.stpn = npn
		e.dir = dir
		pend, out := p.predict(npn, dir)
		e.pend = pend
		if p.hook != nil {
			p.hook.Emit(obs.Event{Kind: obs.KindStreamHit, Page: npn,
				Batch: e.id, V1: uint64(len(out))})
		}
		p.moveToHead(i)
		return out
	}
	p.misses++
	p.nextStream++
	if p.hook != nil {
		p.hook.Emit(obs.Event{Kind: obs.KindStreamStart, Page: npn, Batch: p.nextStream})
	}
	p.insert(entry{stpn: npn, pend: npn, id: p.nextStream})
	return nil
}

// matches reports whether a fault on npn extends the stream and in which
// direction. The window tests are written without pend±1 arithmetic on
// the comparison side: at the top of the address space pend+1 would
// collide with the mem.NoPage sentinel (accepting every page above the
// tail), and at the bottom pend-1 would wrap; both edges are guarded
// explicitly instead.
func (e *entry) matches(npn mem.PageID, backward bool) (Direction, bool) {
	switch e.dir {
	case Forward:
		// Window (stpn, pend], plus pend+1 when that page exists.
		if npn > e.stpn && (npn <= e.pend || (e.pend < mem.NoPage-1 && npn == e.pend+1)) {
			return Forward, true
		}
	case Backward:
		// Window [pend, stpn), plus pend-1 when that page exists.
		if npn < e.stpn && (npn >= e.pend || (e.pend > 0 && npn == e.pend-1)) {
			return Backward, true
		}
	default: // direction not yet established: require strict adjacency
		if e.stpn < mem.NoPage-1 && npn == e.stpn+1 {
			return Forward, true
		}
		if backward && e.stpn > 0 && npn == e.stpn-1 {
			return Backward, true
		}
	}
	return 0, false
}

// predict returns the furthest page predicted and the LoadLength pages
// following npn in direction dir, stopping at the address-space boundary.
func (p *Predictor) predict(npn mem.PageID, dir Direction) (mem.PageID, []mem.PageID) {
	out := p.scratch[:0]
	cur := npn
	for i := 0; i < p.cfg.LoadLength; i++ {
		next := successor(cur, dir)
		if next == mem.NoPage {
			break
		}
		cur = next
		out = append(out, cur)
	}
	p.scratch = out
	return cur, out
}

// successor returns the page adjacent to page in direction dir, or
// mem.NoPage at the boundary.
func successor(page mem.PageID, dir Direction) mem.PageID {
	if dir == Backward {
		if page == 0 {
			return mem.NoPage
		}
		return page - 1
	}
	if page == mem.NoPage-1 {
		return mem.NoPage
	}
	return page + 1
}

// moveToHead moves streams[i] to the front, preserving the order of the
// others.
func (p *Predictor) moveToHead(i int) {
	if i == 0 {
		return
	}
	e := p.streams[i]
	copy(p.streams[1:i+1], p.streams[:i])
	p.streams[0] = e
}

// insert places a new entry at the head, evicting the LRU tail when the
// list is full.
func (p *Predictor) insert(e entry) {
	if len(p.streams) < p.cfg.StreamListLen {
		p.streams = append(p.streams, entry{})
	} else if p.hook != nil {
		tail := p.streams[len(p.streams)-1]
		p.hook.Emit(obs.Event{Kind: obs.KindStreamEnd, Batch: tail.id, V1: tail.hits})
	}
	copy(p.streams[1:], p.streams[:len(p.streams)-1])
	p.streams[0] = e
}

// Len returns the number of live stream entries.
func (p *Predictor) Len() int { return len(p.streams) }

// Tails returns the stream tails in MRU order; for tests and tooling.
func (p *Predictor) Tails() []mem.PageID {
	out := make([]mem.PageID, len(p.streams))
	for i, e := range p.streams {
		out[i] = e.stpn
	}
	return out
}

// HitRate returns the fraction of faults that extended a stream.
func (p *Predictor) HitRate() float64 {
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Hits returns the number of stream-extending faults observed.
func (p *Predictor) Hits() uint64 { return p.hits }

// Misses returns the number of stream-starting faults observed.
func (p *Predictor) Misses() uint64 { return p.misses }

// NotePreloaded records that n pages were handed to the preload thread
// (PreloadCounter in the paper).
func (p *Predictor) NotePreloaded(n int) {
	if n > 0 {
		p.preloadCount += uint64(n)
	}
}

// NoteAccessed records that n preloaded pages were observed with their
// access bit set by the service thread's scan (AccPreloadCounter).
func (p *Predictor) NoteAccessed(n int) {
	if n > 0 {
		p.accCount += uint64(n)
	}
}

// PreloadCounter returns the total pages handed to the preload thread.
func (p *Predictor) PreloadCounter() uint64 { return p.preloadCount }

// AccPreloadCounter returns the preloaded pages observed accessed.
func (p *Predictor) AccPreloadCounter() uint64 { return p.accCount }

// EvaluateStop applies the paper's stop formula
//
//	AccPreloadCounter + StopSlack < PreloadCounter / 2
//
// and latches the predictor off when it holds. It returns true if the
// predictor is (now) stopped. Callers invoke it from the periodic service
// scan; it has no effect unless cfg.Stop is set.
func (p *Predictor) EvaluateStop() bool {
	if !p.cfg.Stop || p.stopped {
		return p.stopped
	}
	if p.accCount+p.cfg.StopSlack < p.preloadCount/2 {
		p.stopped = true
	}
	return p.stopped
}
