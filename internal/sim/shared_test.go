package sim

import (
	"testing"

	"sgxpreload/internal/core"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/workload"
)

func TestRunSharedValidation(t *testing.T) {
	if _, err := RunShared(nil, SharedConfig{EPCPages: 16}); err == nil {
		t.Fatal("RunShared with no enclaves succeeded")
	}
	bad := []Enclave{{Name: "x", Pages: 0}}
	if _, err := RunShared(bad, SharedConfig{EPCPages: 16}); err == nil {
		t.Fatal("zero-page enclave accepted")
	}
	oob := []Enclave{{
		Name:  "x",
		Pages: 4,
		Trace: []mem.Access{{Page: 10}},
	}}
	if _, err := RunShared(oob, SharedConfig{EPCPages: 16}); err == nil {
		t.Fatal("out-of-range enclave trace accepted")
	}
}

func TestRunSharedSingleEnclaveMatchesSolo(t *testing.T) {
	// One enclave on the shared runner must behave exactly like Run.
	tr := seqTrace(256, 2, 5000)
	solo, err := Run(tr, Config{Scheme: DFP, EPCPages: 128, ELRangePages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunShared([]Enclave{{
		Name: "only", Trace: tr, Pages: 4096, Scheme: DFP,
	}}, SharedConfig{EPCPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if shared[0].Cycles != solo.Cycles {
		t.Fatalf("shared single-enclave run = %d cycles, solo = %d", shared[0].Cycles, solo.Cycles)
	}
	if shared[0].Kernel.DemandFaults != solo.Kernel.DemandFaults {
		t.Fatalf("fault counts differ: %d vs %d",
			shared[0].Kernel.DemandFaults, solo.Kernel.DemandFaults)
	}
}

func TestRunSharedContentionHurts(t *testing.T) {
	// Two enclaves halve the effective EPC: each must run slower than it
	// would alone on the full EPC (the paper's §5.6 contention point).
	tr := seqTrace(1500, 2, 30000)
	solo, err := Run(tr, Config{Scheme: Baseline, EPCPages: 2048, ELRangePages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShared([]Enclave{
		{Name: "a", Trace: tr, Pages: 2048, Scheme: Baseline},
		{Name: "b", Trace: tr, Pages: 2048, Scheme: Baseline},
	}, SharedConfig{EPCPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Cycles <= solo.Cycles {
			t.Errorf("enclave %s under contention (%d cycles) not slower than solo (%d)",
				r.Name, r.Cycles, solo.Cycles)
		}
	}
}

func TestRunSharedPreloadingStillHelpsEachEnclave(t *testing.T) {
	// §5.6: "each enclave can handle its preloading independently, our
	// proposed schemes will work for each enclave".
	w, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(workload.Ref)
	pages := w.ELRangePages()
	mk := func(scheme Scheme) []Enclave {
		return []Enclave{
			{Name: "a", Trace: tr, Pages: pages, Scheme: scheme},
			{Name: "b", Trace: tr, Pages: pages, Scheme: scheme},
		}
	}
	base, err := RunShared(mk(Baseline), SharedConfig{EPCPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	dfp, err := RunShared(mk(DFP), SharedConfig{EPCPages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if dfp[i].Cycles >= base[i].Cycles {
			t.Errorf("enclave %s: DFP (%d) not faster than baseline (%d) under sharing",
				base[i].Name, dfp[i].Cycles, base[i].Cycles)
		}
	}
}

func TestRunSharedIsolatedCounters(t *testing.T) {
	// A preloading enclave next to a non-preloading one: the baseline
	// enclave must report zero preloads of its own. Enough compute per
	// page that the shared channel has idle slots for speculative loads.
	tr := seqTrace(512, 1, 200000)
	res, err := RunShared([]Enclave{
		{Name: "dfp", Trace: tr, Pages: 1024, Scheme: DFP},
		{Name: "plain", Trace: tr, Pages: 1024, Scheme: Baseline},
	}, SharedConfig{EPCPages: 1536})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SharedResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	if byName["dfp"].Kernel.PreloadsStarted == 0 {
		t.Error("DFP enclave started no preloads")
	}
	if byName["plain"].Kernel.PreloadsStarted != 0 {
		t.Error("baseline enclave charged with preloads")
	}
}

// Regression for the shared-engine knob drift: before the unification,
// RunShared silently ignored Config.Predictor — an alternative-predictor
// ablation under EPC contention quietly ran the default multistream
// recognizer. A non-default predictor must now change the outcome.
func TestRunSharedHonorsPredictor(t *testing.T) {
	w, err := workload.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(workload.Ref)
	pages := w.ELRangePages()
	run := func(kind core.Kind) []SharedResult {
		res, err := RunShared([]Enclave{
			{Name: "a", Trace: tr, Pages: pages, Scheme: DFP, Predictor: kind},
			{Name: "b", Trace: tr, Pages: pages, Scheme: Baseline},
		}, SharedConfig{EPCPages: 2048})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def, nextn := run(""), run(core.KindNextN)
	if def[0].Cycles == nextn[0].Cycles &&
		def[0].Kernel.PreloadsStarted == nextn[0].Kernel.PreloadsStarted {
		t.Errorf("next-N predictor indistinguishable from multistream under sharing: "+
			"%d cycles / %d preloads both (the pre-unification drift)",
			def[0].Cycles, def[0].Kernel.PreloadsStarted)
	}
	// The explicit default spelling must be the default.
	if exp := run(core.KindMultiStream); exp[0] != def[0] {
		t.Errorf("explicit multistream differs from default: %+v vs %+v", exp[0], def[0])
	}
	// A bogus kind must surface, not be ignored.
	if _, err := RunShared([]Enclave{
		{Name: "a", Trace: tr, Pages: pages, Scheme: DFP, Predictor: core.Kind("bogus")},
	}, SharedConfig{EPCPages: 2048}); err == nil {
		t.Error("unknown predictor kind accepted in a shared run")
	}
}

// Regression for the second dropped knob: BackgroundReclaim is now wired
// per enclave in shared runs.
func TestRunSharedHonorsBackgroundReclaim(t *testing.T) {
	tr := seqTrace(1500, 2, 30000)
	run := func(reclaim bool) []SharedResult {
		res, err := RunShared([]Enclave{
			{Name: "a", Trace: tr, Pages: 2048, Scheme: Baseline, BackgroundReclaim: reclaim},
			{Name: "b", Trace: tr, Pages: 2048, Scheme: Baseline},
		}, SharedConfig{EPCPages: 1024})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if off[0].Kernel.BackgroundEvictions != 0 {
		t.Errorf("reclaim off, yet %d background evictions", off[0].Kernel.BackgroundEvictions)
	}
	if on[0].Kernel.BackgroundEvictions == 0 {
		t.Error("reclaim on, yet the enclave ran no background evictions (knob still dropped)")
	}
	if on[1].Kernel.BackgroundEvictions != 0 {
		t.Errorf("reclaim enabled on enclave a only, but b ran %d background evictions",
			on[1].Kernel.BackgroundEvictions)
	}
}

func TestRunSharedDeterminism(t *testing.T) {
	tr := seqTrace(300, 2, 7000)
	run := func() []SharedResult {
		res, err := RunShared([]Enclave{
			{Name: "a", Trace: tr, Pages: 512, Scheme: DFPStop},
			{Name: "b", Trace: tr, Pages: 512, Scheme: Baseline},
		}, SharedConfig{EPCPages: 256})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shared run not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}
