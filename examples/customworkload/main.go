// Customworkload shows how a downstream user models their own
// application with the public Workload interface: a key-value store whose
// scan queries are DFP-friendly, whose point queries need SIP, and whose
// mixed query stream wants the hybrid.
package main

import (
	"fmt"
	"log"

	"sgxpreload"
)

// kvStore models an enclave-resident key-value store: a sorted segment
// file (range scans walk it sequentially) plus a hash index (point
// lookups hash to random pages). Site 1 is the scan loop, site 2 the
// index probe — two static source locations SIP can instrument.
type kvStore struct {
	segmentPages uint64
	indexPages   uint64
	queries      int
	pointRatio   float64 // fraction of queries that are point lookups
}

func (kvStore) Name() string { return "kvstore" }

func (k kvStore) Pages() uint64 { return k.segmentPages + k.indexPages }

func (k kvStore) Trace(in sgxpreload.Input) []sgxpreload.Access {
	queries := k.queries
	if in == sgxpreload.Train {
		queries /= 4
	}
	// A deterministic PRNG keeps runs reproducible (the library requires
	// it for meaningful comparisons).
	state := uint64(12345)
	rand := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var out []sgxpreload.Access
	scanPos := uint64(0)
	for q := 0; q < queries; q++ {
		if float64(rand()%1000)/1000 < k.pointRatio {
			// Point lookup: hash-index probe to a random page (site 2),
			// then the segment page it references.
			out = append(out,
				sgxpreload.Access{Site: 2, Page: k.segmentPages + rand()%k.indexPages, Compute: 20000},
				sgxpreload.Access{Site: 2, Page: rand() % k.segmentPages, Compute: 8000},
			)
			continue
		}
		// Range scan: 16 consecutive segment pages (site 1).
		for i := 0; i < 16; i++ {
			scanPos = (scanPos + 1) % k.segmentPages
			out = append(out, sgxpreload.Access{Site: 1, Page: scanPos, Compute: 60000})
		}
	}
	return out
}

func main() {
	store := kvStore{
		segmentPages: 6144, // 24 MiB of sorted segments
		indexPages:   2048, // 8 MiB hash index
		queries:      4000,
		pointRatio:   0.5,
	}
	cfg := sgxpreload.DefaultConfig() // 2048-page (8 MiB) EPC

	base, err := sgxpreload.Run(store, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kv-store baseline: %d cycles, %d enclave faults (%.0f%% of accesses)\n",
		base.Cycles, base.Faults, 100*float64(base.Faults)/float64(base.Accesses))

	sel, err := sgxpreload.Profile(store, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling selected %d instrumentation points\n", sel.Points())

	for _, scheme := range []sgxpreload.Scheme{
		sgxpreload.DFPStop, sgxpreload.SIP, sgxpreload.Hybrid,
	} {
		c := cfg
		c.Scheme = scheme
		c.Selection = sel
		res, err := sgxpreload.Run(store, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %+6.1f%%  (faults %d -> %d, preloads %d, notifies %d)\n",
			scheme.String()+":", sgxpreload.ImprovementPct(res, base),
			base.Faults, res.Faults, res.PreloadsStarted, res.NotifyLoads)
	}
}
