package trace

// Phase segmentation. The paper's offline analysis (§3.1) fits the
// collected page traces "with curve fitting" to find access-pattern
// phases: Figure 3's plots are piecewise-linear ramps (lbm's repeated
// sweeps, bwaves' banded arrays) or unstructured clouds (deepsjeng).
// SegmentedFit recovers that structure: it splits a page-versus-time
// series into segments whose linear fits explain the data, using greedy
// binary splitting on residual error.

// Segment is one fitted phase of a page-access pattern.
type Segment struct {
	// Start and End bound the segment's samples: [Start, End) indices
	// into the input slice.
	Start, End int
	// Fit is the segment's least-squares line.
	Fit Fit
}

// Len returns the number of samples in the segment.
func (s Segment) Len() int { return s.End - s.Start }

// SegmentedFit splits samples into at most maxSegments phases, splitting
// greedily at the point that reduces the summed squared residual the
// most, and stopping early when a split no longer improves the residual
// by at least minGain (a fraction of the current total, e.g. 0.05).
func SegmentedFit(samples []Sample, maxSegments int, minGain float64) []Segment {
	if len(samples) == 0 || maxSegments < 1 {
		return nil
	}
	segs := []Segment{{Start: 0, End: len(samples), Fit: FitLinear(samples)}}
	sse := make([]float64, 1)
	sse[0] = residual(samples[0:len(samples)], segs[0].Fit)

	for len(segs) < maxSegments {
		// Find the best single split across all current segments.
		bestSeg, bestAt := -1, -1
		bestGain := 0.0
		var bestLeft, bestRight Fit
		total := 0.0
		for _, e := range sse {
			total += e
		}
		if total == 0 {
			break
		}
		for si, seg := range segs {
			if seg.Len() < 8 {
				continue
			}
			left, right, at, gain := bestSplit(samples, seg, sse[si])
			if at >= 0 && gain > bestGain {
				bestSeg, bestAt, bestGain = si, at, gain
				bestLeft, bestRight = left, right
			}
		}
		if bestSeg < 0 || bestGain < minGain*total {
			break
		}
		seg := segs[bestSeg]
		l := Segment{Start: seg.Start, End: bestAt, Fit: bestLeft}
		r := Segment{Start: bestAt, End: seg.End, Fit: bestRight}
		segs = append(segs, Segment{})
		copy(segs[bestSeg+2:], segs[bestSeg+1:])
		segs[bestSeg], segs[bestSeg+1] = l, r
		sse = append(sse, 0)
		copy(sse[bestSeg+2:], sse[bestSeg+1:])
		sse[bestSeg] = residual(samples[l.Start:l.End], l.Fit)
		sse[bestSeg+1] = residual(samples[r.Start:r.End], r.Fit)
	}
	return segs
}

// bestSplit finds the split of seg minimizing the children's summed
// residual. It evaluates candidate split points on a coarse grid (every
// ~1/32 of the segment) — O(n) per candidate is fine at Recorder sample
// counts. It returns the children's fits, the split index, and the
// residual reduction; at = -1 if no split helps.
func bestSplit(samples []Sample, seg Segment, parentSSE float64) (left, right Fit, at int, gain float64) {
	at = -1
	step := seg.Len() / 32
	if step < 4 {
		step = 4
	}
	for i := seg.Start + 4; i <= seg.End-4; i += step {
		lf := FitLinear(samples[seg.Start:i])
		rf := FitLinear(samples[i:seg.End])
		child := residual(samples[seg.Start:i], lf) + residual(samples[i:seg.End], rf)
		if g := parentSSE - child; g > gain {
			left, right, at, gain = lf, rf, i, g
		}
	}
	return left, right, at, gain
}

// residual returns the summed squared residual of the fit over samples.
func residual(samples []Sample, f Fit) float64 {
	var sse float64
	for _, s := range samples {
		d := float64(s.Page) - (f.Slope*float64(s.Index) + f.Intercept)
		sse += d * d
	}
	return sse
}
