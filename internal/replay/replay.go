// Package replay loads recorded event timelines back into memory so the
// derived metrics in internal/obs can be recomputed — and two runs can
// be compared — without re-simulating anything.
//
// The writers are obs.Recorder.WriteJSONL and WriteCSV; both start their
// output with a schema/version header (obs.TraceSchema, obs.TraceVersion)
// and this package refuses traces whose header is missing or names a
// different schema or version, so a field change can never silently
// misparse an old artifact. Parsing is strict per line — an unknown event
// kind, a malformed record, or a truncated line is an error carrying the
// 1-based line number, never a panic — and lossless: re-serializing a
// parsed timeline with obs.WriteJSONL reproduces the input byte for byte
// (the round-trip property test and the parser fuzzer pin both).
//
// On top of loading, Compare diffs two timelines: the first divergent
// event, per-kind count deltas, and the deltas of every derived Report
// field, with deterministic text and JSON renderings. This is the
// paper's run-by-run evaluation style (DFP versus DFP-stop, Figures
// 8–13) applied to recorded artifacts instead of live runs.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// maxLineBytes bounds one trace line. Real lines are under 120 bytes;
// the cap keeps a corrupt or hostile file from buffering unbounded data.
const maxLineBytes = 1 << 20

// header is the JSONL schema line written by obs.Recorder.WriteJSONL.
type header struct {
	Schema  string   `json:"schema"`
	Version int      `json:"version"`
	Fields  []string `json:"fields"`
}

// jsonEvent is one JSONL event line on the wire.
type jsonEvent struct {
	T     uint64 `json:"t"`
	Kind  string `json:"kind"`
	Page  int64  `json:"page"`
	Batch uint64 `json:"batch"`
	V1    uint64 `json:"v1"`
	V2    uint64 `json:"v2"`
}

// ReadFile loads a recorded timeline, dispatching on the extension the
// trace writer used: ".csv" selects CSV, anything else JSONL.
func ReadFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []obs.Event
	if strings.HasSuffix(path, ".csv") {
		events, err = ReadCSV(f)
	} else {
		events, err = ReadJSONL(f)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// ReadJSONL parses a JSONL trace as written by obs.Recorder.WriteJSONL:
// the schema header line, then one event per line. It returns an error —
// never panics — on a missing or mismatched header, an unknown kind, or
// any malformed line.
func ReadJSONL(r io.Reader) ([]obs.Event, error) {
	sc := newLineScanner(r)
	if !sc.Scan() {
		return nil, scanErr(sc, fmt.Errorf("empty trace: missing %s header", obs.TraceSchema))
	}
	if err := parseJSONLHeader(sc.Bytes()); err != nil {
		return nil, err
	}
	var events []obs.Event
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		e, err := parseJSONLEvent(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	return events, nil
}

// parseJSONLHeader validates the schema line.
func parseJSONLHeader(raw []byte) error {
	var h header
	if err := json.Unmarshal(raw, &h); err != nil || h.Schema == "" {
		return fmt.Errorf("line 1: not a %s header (trace written before schema versioning?): %.80s",
			obs.TraceSchema, raw)
	}
	if h.Schema != obs.TraceSchema {
		return fmt.Errorf("line 1: schema %q, want %q", h.Schema, obs.TraceSchema)
	}
	if h.Version != obs.TraceVersion {
		return fmt.Errorf("line 1: trace version %d, this reader understands version %d",
			h.Version, obs.TraceVersion)
	}
	return nil
}

// parseJSONLEvent parses one event line.
func parseJSONLEvent(raw []byte) (obs.Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(raw, &je); err != nil {
		return obs.Event{}, fmt.Errorf("malformed event: %w", err)
	}
	return wireToEvent(je.T, je.Kind, je.Page, je.Batch, je.V1, je.V2)
}

// ReadCSV parses a CSV trace as written by obs.Recorder.WriteCSV: the
// schema comment line, the column header row, then one event per row.
func ReadCSV(r io.Reader) ([]obs.Event, error) {
	sc := newLineScanner(r)
	if !sc.Scan() {
		return nil, scanErr(sc, fmt.Errorf("empty trace: missing %q header", obs.TraceHeaderCSV()))
	}
	if got := sc.Text(); got != obs.TraceHeaderCSV() {
		return nil, fmt.Errorf("line 1: header %.80q, want %q (trace written before schema versioning?)",
			got, obs.TraceHeaderCSV())
	}
	if !sc.Scan() {
		return nil, scanErr(sc, fmt.Errorf("truncated trace: missing column header"))
	}
	if got, want := sc.Text(), "t,kind,page,batch,v1,v2"; got != want {
		return nil, fmt.Errorf("line 2: column header %.80q, want %q", got, want)
	}
	var events []obs.Event
	line := 2
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		e, err := parseCSVEvent(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %w", line+1, err)
	}
	return events, nil
}

// parseCSVEvent parses one CSV row.
func parseCSVEvent(text string) (obs.Event, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 6 {
		return obs.Event{}, fmt.Errorf("malformed row: %d fields, want 6", len(fields))
	}
	t, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return obs.Event{}, fmt.Errorf("bad t %q", fields[0])
	}
	page, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return obs.Event{}, fmt.Errorf("bad page %q", fields[2])
	}
	var rest [3]uint64
	for i, name := range [...]string{"batch", "v1", "v2"} {
		v, err := strconv.ParseUint(fields[3+i], 10, 64)
		if err != nil {
			return obs.Event{}, fmt.Errorf("bad %s %q", name, fields[3+i])
		}
		rest[i] = v
	}
	return wireToEvent(t, fields[1], page, rest[0], rest[1], rest[2])
}

// wireToEvent validates and converts one decoded record. page -1 is the
// writer's rendering of mem.NoPage; other negatives are corruption.
func wireToEvent(t uint64, kind string, page int64, batch, v1, v2 uint64) (obs.Event, error) {
	k, ok := obs.KindByName(kind)
	if !ok {
		return obs.Event{}, fmt.Errorf("unknown event kind %q", kind)
	}
	p := mem.PageID(page)
	switch {
	case page == -1:
		p = mem.NoPage
	case page < 0:
		return obs.Event{}, fmt.Errorf("negative page %d", page)
	}
	return obs.Event{T: t, Kind: k, Page: p, Batch: batch, V1: v1, V2: v2}, nil
}

// newLineScanner returns a scanner with the trace line-length cap.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return sc
}

// scanErr prefers the scanner's I/O error over the fallback.
func scanErr(sc *bufio.Scanner, fallback error) error {
	if err := sc.Err(); err != nil {
		return err
	}
	return fallback
}
