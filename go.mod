module sgxpreload

go 1.23
