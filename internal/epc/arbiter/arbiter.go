// Package arbiter assigns per-enclave frame quotas over a shared EPC and
// decides, on every eviction, whose frame should go: the faulting enclave's
// own (self-evict when it is at or over quota) or the most-over-quota
// neighbor's (steal when it is under). Built on the owner tracking that
// internal/epc maintains at Load/Evict, it turns the single global CLOCK
// over all frames — where one greedy enclave can starve its cohort — into
// a partitioned cache with policy-controlled boundaries, in the spirit of
// EDMM-style per-enclave working-set sizing.
//
// Four policies:
//
//   - Global: no quotas; every eviction runs today's global scan
//     bit-for-bit. The arbiter is pure passthrough.
//   - Static: capacity split evenly across enclaves, fixed at admission.
//   - Proportional: quota proportional to each enclave's declared
//     footprint, recomputed whenever an enclave is admitted.
//   - Adaptive: per-enclave working-set estimates maintained online from
//     the service scan's access-bit counts and the demand-fault stream,
//     with quotas rebalanced toward the estimates at scan boundaries
//     under hysteresis and a bounded per-rebalance step.
//
// All arithmetic is integer-only and all tie-breaks are lowest-index, so
// a run's quota trajectory is a deterministic function of the event
// order — the same property every other layer of the simulator holds.
//
// The arbiter is not safe for concurrent use: one arbiter serves one
// engine (one EPC domain), driven from that engine's single goroutine.
package arbiter

import (
	"fmt"

	"sgxpreload/internal/epc"
)

// Policy selects the quota discipline.
type Policy int

// Quota policies.
const (
	// Global is the no-quota passthrough: arbitrated runs are
	// byte-identical to unarbitrated ones.
	Global Policy = iota
	// Static splits the capacity evenly at admission time.
	Static
	// Proportional sizes quotas by declared enclave footprint.
	Proportional
	// Adaptive tracks per-enclave working sets online and rebalances.
	Adaptive
)

// String returns the policy's CLI name.
func (p Policy) String() string {
	switch p {
	case Global:
		return "global"
	case Static:
		return "static"
	case Proportional:
		return "prop"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ByName parses a CLI policy name.
func ByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("arbiter: unknown quota policy %q (have global, static, prop, adaptive)", name)
}

// Policies returns all policies in declaration order.
func Policies() []Policy { return []Policy{Global, Static, Proportional, Adaptive} }

// Arbiter holds the quota state for one shared-EPC domain.
type Arbiter struct {
	policy   Policy
	capacity int      // physical frames arbitrated over
	declared []uint64 // declared footprint per enclave (pages)
	quota    []int    // current frame quota per enclave
	est      []uint64 // adaptive working-set estimate per enclave
	faults   []uint64 // demand faults since the enclave's last scan
	scratch  []int    // rebalance target buffer
}

// New returns an arbiter over capacity physical frames. Enclaves are
// registered with AddEnclave in admission order.
func New(policy Policy, capacity int) (*Arbiter, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("arbiter: capacity must be positive, got %d", capacity)
	}
	if policy < Global || policy > Adaptive {
		return nil, fmt.Errorf("arbiter: unknown quota policy %d", policy)
	}
	return &Arbiter{policy: policy, capacity: capacity}, nil
}

// Policy returns the quota discipline.
func (a *Arbiter) Policy() Policy { return a.policy }

// N returns the number of registered enclaves.
func (a *Arbiter) N() int { return len(a.quota) }

// Quota returns the current frame quota of enclave owner (0 when the
// policy is Global or owner is out of range).
func (a *Arbiter) Quota(owner int) int {
	if owner < 0 || owner >= len(a.quota) {
		return 0
	}
	return a.quota[owner]
}

// AddEnclave registers the next enclave (index N()) with its declared
// footprint in pages and recomputes every quota: evenly under Static,
// footprint-proportional under Proportional and (as the starting
// estimate) under Adaptive. Engine.Admit calls it right after
// registering the enclave's page range with the EPC.
func (a *Arbiter) AddEnclave(declaredPages uint64) int {
	if declaredPages == 0 {
		declaredPages = 1
	}
	owner := len(a.quota)
	a.declared = append(a.declared, declaredPages)
	a.quota = append(a.quota, 0)
	a.est = append(a.est, declaredPages)
	a.faults = append(a.faults, 0)
	switch a.policy {
	case Static:
		a.splitEvenly()
	case Proportional, Adaptive:
		a.splitByWeight(a.declared)
	}
	return owner
}

// splitEvenly assigns capacity/N to everyone, remainder to the lowest
// indices.
func (a *Arbiter) splitEvenly() {
	n := len(a.quota)
	base, rem := a.capacity/n, a.capacity%n
	for i := range a.quota {
		a.quota[i] = base
		if i < rem {
			a.quota[i]++
		}
		if a.quota[i] < 1 {
			a.quota[i] = 1
		}
	}
}

// splitByWeight assigns capacity proportionally to weight, floored at one
// frame each, with the rounding leftover going to the lowest indices.
func (a *Arbiter) splitByWeight(weight []uint64) {
	var sum uint64
	for _, w := range weight {
		sum += w
	}
	if sum == 0 {
		a.splitEvenly()
		return
	}
	total := 0
	for i := range a.quota {
		q := int(uint64(a.capacity) * weight[i] / sum)
		if q < 1 {
			q = 1
		}
		a.quota[i] = q
		total += q
	}
	a.repairSum(a.quota, total)
}

// repairSum nudges quotas so they sum to capacity: trimming the largest
// first (never below one frame) when over, padding the smallest first
// when under. Ties break toward the lowest index, keeping the result a
// pure function of the inputs.
func (a *Arbiter) repairSum(quota []int, total int) {
	for total > a.capacity {
		best := -1
		for i, q := range quota {
			if q > 1 && (best < 0 || q > quota[best]) {
				best = i
			}
		}
		if best < 0 {
			return // everyone at the floor; capacity < N, nothing to trim
		}
		quota[best]--
		total--
	}
	for total < a.capacity {
		best := 0
		for i, q := range quota {
			if q < quota[best] {
				best = i
			}
		}
		quota[best]++
		total++
	}
}

// NoteFault records a demand fault by owner; the adaptive policy folds
// the count into its working-set estimate at the next scan boundary.
func (a *Arbiter) NoteFault(owner int) {
	if a.policy != Adaptive || owner < 0 || owner >= len(a.faults) {
		return
	}
	a.faults[owner]++
}

// NoteScan feeds the adaptive estimator at one enclave's scan boundary:
// accessed is the number of the enclave's resident frames with the access
// bit set (from epc.OwnerScanStats, sampled before the service scan
// clears bits). Demand observed this period is accessed plus the demand
// faults since the previous scan; the estimate is an integer EWMA halfway
// toward it. It reports whether the quota vector changed, in which case
// the caller emits the rebalance trace event. Non-adaptive policies
// never rebalance.
func (a *Arbiter) NoteScan(owner, accessed, resident int) bool {
	if a.policy != Adaptive || owner < 0 || owner >= len(a.quota) {
		return false
	}
	demand := uint64(accessed) + a.faults[owner]
	a.faults[owner] = 0
	// Round up so a live enclave's estimate never decays below one page.
	a.est[owner] = (a.est[owner] + demand + 1) / 2
	return a.rebalance()
}

// rebalance moves quotas toward the working-set estimates. Hysteresis: the
// proportional target vector is adopted only when some quota is off by at
// least capacity/64 (min 2) frames, so estimate jitter does not thrash
// the partition. The move is also bounded to capacity/8 frames per
// enclave per rebalance, so one bursty scan period cannot hand the whole
// cache over; the quota sum converges back to capacity over successive
// scans.
func (a *Arbiter) rebalance() bool {
	var sum uint64
	for _, e := range a.est {
		sum += e
	}
	if sum == 0 {
		return false
	}
	if cap(a.scratch) < len(a.quota) {
		a.scratch = make([]int, len(a.quota))
	}
	target := a.scratch[:len(a.quota)]
	total := 0
	for i := range target {
		q := int(uint64(a.capacity) * a.est[i] / sum)
		if q < 1 {
			q = 1
		}
		target[i] = q
		total += q
	}
	a.repairSum(target, total)
	deadband := a.capacity / 64
	if deadband < 2 {
		deadband = 2
	}
	adopt := false
	for i := range target {
		if d := target[i] - a.quota[i]; d >= deadband || -d >= deadband {
			adopt = true
			break
		}
	}
	if !adopt {
		return false
	}
	step := a.capacity / 8
	if step < 1 {
		step = 1
	}
	changed := false
	for i := range target {
		d := target[i] - a.quota[i]
		if d > step {
			d = step
		} else if d < -step {
			d = -step
		}
		if d != 0 {
			a.quota[i] += d
			changed = true
		}
	}
	return changed
}

// VictimOwner decides whose frame the next eviction should take, given
// that enclave owner faulted into a full EPC. It returns -1 under the
// Global policy (caller runs the unfiltered scan — today's behavior
// bit-for-bit), owner itself when owner is at or over its quota
// (self-evict), and otherwise the most-over-quota other enclave that has
// frames to give (steal). Ties break toward the lowest index. If no other
// enclave holds frames, owner gets its own scan back.
func (a *Arbiter) VictimOwner(e *epc.EPC, owner int) int {
	if a.policy == Global || owner < 0 || owner >= len(a.quota) {
		return -1
	}
	if e.OwnerResident(owner) >= a.quota[owner] {
		return owner
	}
	best, bestOver := -1, 0
	for i := range a.quota {
		if i == owner || e.OwnerResident(i) == 0 {
			continue
		}
		over := e.OwnerResident(i) - a.quota[i]
		if best < 0 || over > bestOver {
			best, bestOver = i, over
		}
	}
	if best < 0 {
		return owner
	}
	return best
}

// Quotas appends the current quota vector to dst and returns it; for
// reporting.
func (a *Arbiter) Quotas(dst []int) []int {
	return append(dst, a.quota...)
}
