package dfp

import (
	"testing"

	"sgxpreload/internal/mem"
)

// The PageID boundary cases of entry.matches: at the top of the address
// space pend+1 collides with the mem.NoPage sentinel, and at the bottom
// pend-1 would wrap. The window tests must stay exact at both edges.
func TestEntryMatchesBoundaries(t *testing.T) {
	top := mem.NoPage - 1 // highest real page
	tests := []struct {
		name     string
		e        entry
		npn      mem.PageID
		backward bool
		wantDir  Direction
		wantOK   bool
	}{
		// Interior forward window (stpn, pend+1].
		{"forward in-window", entry{stpn: 100, pend: 105, dir: Forward}, 103, false, Forward, true},
		{"forward at pend", entry{stpn: 100, pend: 105, dir: Forward}, 105, false, Forward, true},
		{"forward at pend+1", entry{stpn: 100, pend: 105, dir: Forward}, 106, false, Forward, true},
		{"forward past window", entry{stpn: 100, pend: 105, dir: Forward}, 107, false, 0, false},
		{"forward at tail is not ahead", entry{stpn: 100, pend: 105, dir: Forward}, 100, false, 0, false},

		// Top edge: pend is the last real page, so pend+1 is the NoPage
		// sentinel. The unguarded test `npn <= pend+1` accepted every
		// page above the tail here.
		{"forward top: top page accepted", entry{stpn: top - 1, pend: top, dir: Forward}, top, false, Forward, true},
		{"forward top: sentinel rejected", entry{stpn: top - 1, pend: top, dir: Forward}, mem.NoPage, false, 0, false},
		{"forward top: huge window still bounded by pend", entry{stpn: 5, pend: top, dir: Forward}, top, false, Forward, true},

		// Interior backward window [pend-1, stpn).
		{"backward in-window", entry{stpn: 100, pend: 95, dir: Backward}, 97, true, Backward, true},
		{"backward at pend", entry{stpn: 100, pend: 95, dir: Backward}, 95, true, Backward, true},
		{"backward at pend-1", entry{stpn: 100, pend: 95, dir: Backward}, 94, true, Backward, true},
		{"backward past window", entry{stpn: 100, pend: 95, dir: Backward}, 93, true, 0, false},

		// Bottom edge: pend == 0 has no pend-1; the window floor is
		// page 0 and must not wrap below it.
		{"backward floor: page 0 accepted", entry{stpn: 5, pend: 0, dir: Backward}, 0, true, Backward, true},
		{"backward floor: in-window accepted", entry{stpn: 5, pend: 0, dir: Backward}, 3, true, Backward, true},
		{"backward floor: tail rejected", entry{stpn: 5, pend: 0, dir: Backward}, 5, true, 0, false},

		// Unestablished direction at the edges: a tail on the top page
		// has no successor, a tail on page 0 has no predecessor.
		{"adjacency at top has no successor", entry{stpn: top, pend: top}, mem.NoPage, false, 0, false},
		{"adjacency below top", entry{stpn: top - 1, pend: top - 1}, top, false, Forward, true},
		{"adjacency at 0 has no predecessor", entry{stpn: 0, pend: 0}, mem.NoPage, true, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dir, ok := tt.e.matches(tt.npn, tt.backward)
			if dir != tt.wantDir || ok != tt.wantOK {
				t.Fatalf("matches(%d, backward=%v) on %+v = (%d, %v), want (%d, %v)",
					tt.npn, tt.backward, tt.e, dir, ok, tt.wantDir, tt.wantOK)
			}
		})
	}
}

// A stream driven to the top of the address space through the public API
// must clamp its window there rather than matching arbitrary pages.
func TestOnFaultAtAddressSpaceTop(t *testing.T) {
	top := mem.NoPage - 1
	p := mustNew(t, DefaultConfig())
	p.OnFault(top - 2)
	got := p.OnFault(top - 1) // predicts only [top]: the space ends there
	if len(got) != 1 || got[0] != top {
		t.Fatalf("prediction near top = %v, want [%d]", got, top)
	}
	// The stream's window is now (top-1, top]. A wild fault far below
	// must not extend it, and the sentinel value must never match.
	if got := p.OnFault(42); got != nil {
		t.Fatalf("wild fault extended a top-of-space stream: %v", got)
	}
}

// TestForwardWindowRejectsWildFaultAtTop pins the fixed bug directly:
// with pend at the last page, the old `npn <= pend+1` comparison
// degenerated to "accept anything above the tail".
func TestForwardWindowRejectsWildFaultAtTop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamListLen = 2
	p := mustNew(t, cfg)
	top := mem.NoPage - 1
	p.OnFault(top - 1)
	p.OnFault(top) // establishes a forward stream with pend == top
	// A fault "above" top can only be the sentinel; it must start a new
	// stream (a miss), not extend the saturated one.
	before := p.Hits()
	p.OnFault(mem.NoPage)
	if p.Hits() != before {
		t.Fatal("sentinel fault counted as a stream hit")
	}
}
