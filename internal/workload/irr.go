package workload

import (
	"math"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

// Irregular (Table 1 "large working set with irregular access") benchmark
// models: mcf, deepsjeng, omnetpp, xz and roms from SPEC CPU2017, plus mcf
// from SPEC CPU2006, which the paper adds for the SIP study.
//
// Each model spreads its irregular traffic over a family of static access
// sites with a per-site probability of touching a cold (likely-faulting)
// page. The profile-time ("train") and measurement-time ("ref") cold
// probabilities differ per benchmark, reproducing the input drift that
// drives the paper's SIP findings: deepsjeng's irregular sites stay
// irregular on ref (+9.0%), while mcf's sites that profiled as irregular
// run almost entirely on resident pages under ref input, so the
// BIT_MAP_CHECK overhead on those Class-1 accesses offsets the preloading
// gain — the paper's "wash" (§5.2).
//
// A fraction of cold accesses is followed by a touch of the adjacent page
// (data structures spanning page boundaries). Those two-page runs are what
// bait DFP's stream recognizer into junk preloads, producing the plain-DFP
// losses of Figure 8 that DFP-stop then bounds.

// irrFamily describes a family of irregular access sites.
type irrFamily struct {
	base mem.SiteID
	k    int
	// coldTrain and coldRef give site j's probability of touching a cold
	// page under each input.
	coldTrain func(j int) float64
	coldRef   func(j int) float64
	// skew > 1 biases site selection toward low j (hot loop bodies execute
	// more often); 1 is uniform.
	skew float64
}

// pick selects a site index.
func (f irrFamily) pick(r *rng.Source) int {
	u := r.Float64()
	if f.skew != 1 {
		u = math.Pow(u, f.skew)
	}
	j := int(u * float64(f.k))
	if j >= f.k {
		j = f.k - 1
	}
	return j
}

// cold returns site j's cold probability under in.
func (f irrFamily) cold(in Input, j int) float64 {
	if in == Train {
		return f.coldTrain(j)
	}
	return f.coldRef(j)
}

// irrAccess emits one family access: cold accesses touch a uniformly
// random page in [coldLo, coldHi), hot accesses a random page in
// [hotLo, hotHi) (a region small enough to stay resident). With
// probability adj a cold access is followed by its neighbor page.
func (f irrFamily) irrAccess(b *builder, in Input, hotLo, hotHi, coldLo, coldHi uint64, adj float64, compute uint64) {
	f.irrAccessM(b, in, 1, hotLo, hotHi, coldLo, coldHi, adj, compute)
}

// irrAccessM is irrAccess with the cold probability scaled by mult.
//
// Pointer-chasing programs do not fault uniformly: they alternate between
// phases working a resident set and phases chasing cold structures (mcf's
// pricing sweeps, deepsjeng's deep probe sequences). Callers model that by
// passing a phase-dependent multiplier whose time average is ≈1, which
// preserves every site's profiled class mix while clustering the faults —
// and clustered faults are what make mispredicted preloads expensive: the
// junk transfers collide with the demand faults right behind them.
func (f irrFamily) irrAccessM(b *builder, in Input, mult float64, hotLo, hotHi, coldLo, coldHi uint64, adj float64, compute uint64) {
	j := f.pick(b.r)
	site := f.base + mem.SiteID(j)
	p := f.cold(in, j) * mult
	if p > 1 {
		p = 1
	}
	if b.r.Chance(p) {
		page := coldLo + b.r.Uint64n(coldHi-coldLo)
		b.emit(site, mem.PageID(page), compute)
		if adj > 0 && page+1 < coldHi && b.r.Chance(adj) {
			b.emit(site, mem.PageID(page+1), compute/4)
		}
		return
	}
	b.emit(site, mem.PageID(hotLo+b.r.Uint64n(hotHi-hotLo)), compute)
}

// phaseMult returns a two-level cold multiplier: high for burst iterations
// (it mod period < burstLen), low otherwise, with time average ≈ 1.
func phaseMult(it, period, burstLen int, high float64) float64 {
	if it%period < burstLen {
		return high
	}
	p, bl := float64(period), float64(burstLen)
	low := (p - high*bl) / (p - bl)
	if low < 0 {
		return 0
	}
	return low
}

// mcf (SPEC CPU2017): network simplex over node and arc arrays. Its hot
// pricing loops profile as irregular under the train network but run
// almost entirely on resident pages under the ref network — the paper's
// SIP wash case, with ~99 instrumentation points.
var Mcf = register(&Workload{
	Name:           "mcf",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		fam := irrFamily{
			base: 1000,
			k:    120,
			coldTrain: func(j int) float64 {
				return 0.005 + 0.5*math.Pow(float64(j)/119, 1.5)
			},
			coldRef: func(int) float64 { return 0.0146 },
			skew:    1,
		}
		iters := 9000
		if in == Train {
			iters = 2500
		}
		for it := 0; it < iters; it++ {
			m := phaseMult(it, 32, 3, 10)
			for a := 0; a < 40; a++ {
				fam.irrAccessM(b, in, m, 0, 384, 1024, 8192, 0.5, 1200)
			}
		}
	},
})

// mcf.2006 (SPEC CPU2006): same algorithm, different implementation and
// memory-access mix — its irregular sites stay irregular on ref, so SIP
// recovers ≈5%. The paper reports 114 instrumentation points.
var Mcf2006 = register(&Workload{
	Name:           "mcf.2006",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		fam := irrFamily{
			base: 1500,
			k:    130,
			coldTrain: func(j int) float64 {
				return 0.03 + 0.4*math.Pow(float64(j)/129, 1.5)
			},
			coldRef: func(j int) float64 {
				return 0.25 * (0.03 + 0.4*math.Pow(float64(j)/129, 1.5))
			},
			skew: 1.6,
		}
		iters := 9000
		if in == Train {
			iters = 2500
		}
		for it := 0; it < iters; it++ {
			for a := 0; a < 30; a++ {
				fam.irrAccess(b, in, 0, 384, 1024, 8192, 0.2, 8000)
			}
		}
	},
})

// deepsjeng: chess search. Transposition-table probes hash to effectively
// random pages of a table far larger than the EPC; entries span page
// boundaries often enough to bait DFP (Figure 8's −34% without the stop
// mechanism), while SIP converts the probe faults into in-enclave preloads
// (+9.0%, Figure 10; 35 instrumentation points).
var Deepsjeng = register(&Workload{
	Name:           "deepsjeng",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		fam := irrFamily{
			base: 3100,
			k:    60,
			coldTrain: func(j int) float64 {
				return 0.02 + 0.6*math.Pow(float64(j)/59, 1.5)
			},
			coldRef: func(j int) float64 {
				return 0.32 * (0.02 + 0.6*math.Pow(float64(j)/59, 1.5))
			},
			skew: 1.2,
		}
		// The ref game tree uses full-size tables that nearly fill the
		// EPC — every junk preload displaces a live page. The train game
		// is smaller, so the table sites profile as resident (Class 1)
		// and stay uninstrumented.
		iters, evalPages, hotLo, hotHi := 16000, uint64(512), uint64(512), uint64(1536)
		if in == Train {
			iters, evalPages, hotLo, hotHi = 5000, 256, 256, 768
		}
		for it := 0; it < iters; it++ {
			for a := 0; a < 4; a++ {
				b.emit(3000+mem.SiteID(b.r.Intn(20)), mem.PageID(b.r.Uint64n(evalPages)), 1500)
			}
			// Transposition-table probes: the irregular family.
			m := phaseMult(it, 16, 3, 4)
			for a := 0; a < 6; a++ {
				fam.irrAccessM(b, in, m, hotLo, hotHi, 1920, 8192, 0.45, 11500)
			}
		}
	},
})

// omnetpp: discrete-event network simulation. Heap and event-object
// traffic is irregular; the paper's instrumenter "cannot fully support it"
// so it is excluded from SIP runs but present in the DFP study.
var Omnetpp = register(&Workload{
	Name:           "omnetpp",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: false,
	FootprintPages: 6144,
	gen: func(in Input, b *builder) {
		fam := irrFamily{
			base:      4000,
			k:         30,
			coldTrain: func(j int) float64 { return 0.02 + 0.25*float64(j)/29 },
			coldRef:   func(j int) float64 { return 0.02 + 0.25*float64(j)/29 },
			skew:      1.4,
		}
		iters := 20000
		if in == Train {
			iters = 6000
		}
		for it := 0; it < iters; it++ {
			m := phaseMult(it, 20, 3, 6)
			for a := 0; a < 10; a++ {
				fam.irrAccessM(b, in, m, 0, 1792, 1792, 6144, 0.45, 6000)
			}
		}
	},
})

// xz: compression. The input scan is sequential; dictionary and match-
// table probes are irregular (46 instrumentation points in the paper).
var Xz = register(&Workload{
	Name:           "xz",
	Category:       LargeIrregular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		fam := irrFamily{
			base: 5100,
			k:    75,
			coldTrain: func(j int) float64 {
				return 0.01 + 0.3*math.Pow(float64(j)/74, 2)
			},
			coldRef: func(j int) float64 {
				return 0.7 * (0.01 + 0.3*math.Pow(float64(j)/74, 2))
			},
			skew: 1.5,
		}
		// The train input compresses one long stream (sequential scan);
		// the ref input is a multi-block archive whose traversal jumps
		// past the stream window between short runs.
		steps, runLo, runVar := 800, 3, 3
		if in == Train {
			steps, runLo, runVar = 130, 24, 8
		}
		pos := uint64(0)
		for st := 0; st < steps; st++ {
			run := runLo + b.r.Intn(runVar)
			for i := 0; i < run; i++ {
				pos = (pos + 1) % 3072
				b.emit(5001, mem.PageID(pos), 26000+b.r.Uint64n(4000))
			}
			pos = (pos + 8 + b.r.Uint64n(12)) % 3072
			m := phaseMult(st, 16, 2, 6)
			for a := 0; a < 18; a++ {
				fam.irrAccessM(b, in, m, 3072, 3456, 3456, 8192, 0.5, 15000)
			}
		}
	},
})

// roms: ocean modeling (Fortran). Its grid sweeps are broken into short
// runs by land-masking and boundary exchanges: streams just long enough
// for DFP to latch onto, short enough that most of each preload batch is
// junk — the worst plain-DFP case in Figure 8 (−42%), rescued by DFP-stop.
var Roms = register(&Workload{
	Name:           "roms",
	Category:       LargeIrregular,
	Language:       LangFortran,
	Instrumentable: false,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		iters := 12000
		if in == Train {
			iters = 3500
		}
		const footprint = 8192
		for it := 0; it < iters; it++ {
			// A boundary-exchange burst: several two-page runs — each just
			// enough to bait the stream recognizer — back to back, then a
			// stretch of grid computation.
			for k := 0; k < 10; k++ {
				start := b.r.Uint64n(footprint - 8)
				b.emit(5500, mem.PageID(start), 3000+b.r.Uint64n(1500))
				b.emit(5501, mem.PageID(start+1), 3000+b.r.Uint64n(1500))
			}
			b.emit(5502, mem.PageID(b.r.Uint64n(footprint)), 260000)
		}
	},
})
