package sim

import (
	"testing"

	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/mem"
)

// FuzzEngine feeds arbitrary byte-derived traces through every scheme: no
// panic, exact access conservation, monotone time, and the pull-based
// iterator path produces the identical Result.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte{0}, uint8(0))
	f.Add([]byte{9, 9, 9, 9, 200, 201, 202}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, schemeSel uint8) {
		if len(data) > 512 {
			data = data[:512]
		}
		const pages = 300
		trace := make([]mem.Access, 0, len(data))
		for i, b := range data {
			trace = append(trace, mem.Access{
				Site:    mem.SiteID(b % 7),
				Page:    mem.PageID(uint64(b) * uint64(i+1) % pages),
				Compute: uint64(b) * 100,
			})
		}
		scheme := Scheme(int(schemeSel) % 5)
		cfg := Config{
			Scheme:       scheme,
			EPCPages:     1 + int(schemeSel)%64,
			ELRangePages: pages,
		}
		res, err := Run(trace, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accesses != uint64(len(trace)) {
			t.Fatalf("accesses %d != %d", res.Accesses, len(trace))
		}
		if res.Hits+res.Kernel.DemandFaults != res.Accesses {
			t.Fatalf("conservation violated: %d + %d != %d",
				res.Hits, res.Kernel.DemandFaults, res.Accesses)
		}
		if res.Cycles < res.ComputeCycles {
			t.Fatalf("cycles %d < compute %d", res.Cycles, res.ComputeCycles)
		}
		streamed, err := RunStream(funcStream(trace), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if streamed != res {
			t.Fatalf("iterator path diverges from slice path:\n  slice  %+v\n  stream %+v",
				res, streamed)
		}

		// A two-enclave shared run under a byte-derived quota policy:
		// the EPC's ownership invariants (per-owner resident counts sum
		// to Resident, every frame stamped with its range's owner) must
		// hold after every access, and conservation per enclave.
		quota := arbiter.Policy(int(schemeSel) % 4)
		eng, err := New([]Enclave{
			{Name: "a", Trace: trace, Pages: pages, Scheme: scheme},
			{Name: "b", Trace: trace, Pages: pages, Scheme: scheme},
		}, SharedConfig{EPCPages: cfg.EPCPages, Quota: quota})
		if err != nil {
			t.Fatal(err)
		}
		for {
			more, err := eng.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				break
			}
			if err := eng.shared.CheckInvariants(); err != nil {
				t.Fatalf("quota %v: %v", quota, err)
			}
		}
		if sum := eng.OwnerResident(0) + eng.OwnerResident(1); sum != eng.EPCResident() {
			t.Fatalf("quota %v: owner residents sum to %d, EPC holds %d",
				quota, sum, eng.EPCResident())
		}
		for _, r := range eng.Results() {
			if r.Hits+r.Kernel.DemandFaults != r.Accesses {
				t.Fatalf("quota %v: enclave %s conservation violated: %d + %d != %d",
					quota, r.Name, r.Hits, r.Kernel.DemandFaults, r.Accesses)
			}
		}
	})
}
