// Package epc models the SGX Enclave Page Cache: the scarce, fixed-size
// region of protected physical memory that enclave pages must occupy to be
// accessible.
//
// The model tracks, for every resident enclave page, the physical frame it
// occupies and two per-frame bits: the access bit (set by the hardware on
// every touch, cleared by the OS service thread — the input to CLOCK
// eviction and to DFP's accuracy counters) and the preload bit (set when
// the page was brought in by a preloader rather than by a demand fault).
//
// It also maintains the presence bitmap shared between the enclave and the
// untrusted OS that SIP's BIT_MAP_CHECK consults: one bit per enclave
// virtual page, updated only when a page is loaded or evicted. The paper
// notes this bitmap leaks nothing beyond what the OS already knows, since
// the OS manages EPC residency in the first place.
package epc

import (
	"fmt"

	"sgxpreload/internal/mem"
)

// FrameID indexes a physical EPC frame.
type FrameID uint32

// noFrame marks an unmapped page in the reverse map.
const noFrame = FrameID(1<<32 - 1)

// Policy selects the eviction victim-selection algorithm. The Intel SGX
// driver the paper builds on uses CLOCK second chance; the alternatives
// exist for the eviction-policy ablation.
type Policy int

// Eviction policies.
const (
	// PolicyClock is the driver's CLOCK second-chance algorithm
	// (default).
	PolicyClock Policy = iota
	// PolicyFIFO evicts the longest-resident page.
	PolicyFIFO
	// PolicyLRU evicts the least recently touched page (exact LRU — an
	// oracle the real driver cannot afford, since it would need a
	// timestamp update on every enclave access).
	PolicyLRU
	// PolicyRandom evicts a uniformly random resident page.
	PolicyRandom
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyClock:
		return "clock"
	case PolicyFIFO:
		return "fifo"
	case PolicyLRU:
		return "lru"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// frame is the per-physical-frame metadata the driver keeps.
type frame struct {
	page      mem.PageID // resident virtual page, mem.NoPage if free
	accessed  bool       // hardware access bit
	preload   bool       // page arrived via preloading, not a demand fault
	owner     int32      // owning enclave, stamped at Load, reset at Evict
	loadedAt  uint64     // load sequence number (FIFO policy)
	touchedAt uint64     // touch sequence number (LRU policy)
}

// EPC is the enclave page cache state for a single enclave.
//
// EPC is not safe for concurrent use; the simulator is a discrete-event
// model driven from one goroutine, matching the paper's single-threaded
// benchmarks.
type EPC struct {
	frames []frame
	free   []FrameID // LIFO free list
	// pt is the page→frame reverse mapping: a flat array indexed by
	// PageID for ELRANGEs up to maxDensePages (the common case — every
	// Present/Touch/Load/Evict is then array indexing), a map beyond.
	pt      pageTable
	present *Bitmap // shared presence bitmap (SIP's BIT_MAP_CHECK)
	hand    int     // CLOCK hand over frames
	pages   uint64  // ELRANGE size in pages (bitmap capacity)
	policy  Policy
	seq     uint64 // load/touch sequence counter for FIFO/LRU
	rnd     uint64 // xorshift state for PolicyRandom
	// Ownership: the shared page space is a sequence of disjoint
	// per-enclave ranges registered in ascending order via AddOwner.
	// ownerHi[i] is the exclusive upper bound of owner i's range (its
	// lower bound is ownerHi[i-1], or 0 for owner 0). With no owners
	// registered every page belongs to the implicit owner 0 — the solo
	// degenerate case, where ownership is pure bookkeeping.
	ownerHi    []mem.PageID
	resByOwner []int // resident frame count per owner
}

// New returns an EPC with capacity physical frames serving an enclave
// whose ELRANGE spans elrangePages virtual pages, using the driver's
// CLOCK eviction.
func New(capacity int, elrangePages uint64) (*EPC, error) {
	return NewWithPolicy(capacity, elrangePages, PolicyClock)
}

// NewWithPolicy is New with an explicit eviction policy.
func NewWithPolicy(capacity int, elrangePages uint64, policy Policy) (*EPC, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("epc: capacity must be positive, got %d", capacity)
	}
	if elrangePages == 0 {
		return nil, fmt.Errorf("epc: ELRANGE must span at least one page")
	}
	if policy < PolicyClock || policy > PolicyRandom {
		return nil, fmt.Errorf("epc: unknown eviction policy %d", policy)
	}
	e := &EPC{
		frames:  make([]frame, capacity),
		free:    make([]FrameID, 0, capacity),
		pt:      newPageTable(elrangePages, capacity),
		present: NewBitmap(elrangePages),
		pages:   elrangePages,
		policy:  policy,
		rnd:     0x2545f4914f6cdd1d,
		// One counter for the implicit owner 0 until AddOwner is called.
		resByOwner: make([]int, 1),
	}
	for i := range e.frames {
		e.frames[i].page = mem.NoPage
	}
	// Push frames so that frame 0 is handed out first.
	for i := capacity - 1; i >= 0; i-- {
		e.free = append(e.free, FrameID(i))
	}
	return e, nil
}

// Grow extends the ELRANGE page space to newPages without disturbing the
// physical side: frames, residency, access/preload bits, the CLOCK hand,
// and every existing page→frame mapping are untouched, so simulation
// behavior over the old pages is identical before and after. This is the
// dynamic-admission primitive — a newly launched enclave appends its
// virtual range to a host's shared page space mid-run. The page space
// only grows; asking for fewer pages than currently covered is an error.
func (e *EPC) Grow(newPages uint64) error {
	if newPages < e.pages {
		return fmt.Errorf("epc: cannot shrink ELRANGE from %d to %d pages", e.pages, newPages)
	}
	if newPages == e.pages {
		return nil
	}
	e.pt = growPageTable(e.pt, newPages, len(e.frames))
	e.present.Grow(newPages)
	e.pages = newPages
	return nil
}

// AddOwner registers the next enclave's page range, whose exclusive
// upper bound is hi (its lower bound is the previous owner's bound, or 0
// for the first owner). Ranges must be registered in ascending order
// before any page inside them is loaded, matching Engine.Admit, which
// grows the page space and registers the new range before the admitted
// enclave runs. Ownership is pure bookkeeping: it never changes which
// victim the global SelectVictim picks.
func (e *EPC) AddOwner(hi uint64) error {
	if hi > e.pages {
		return fmt.Errorf("epc: owner bound %d beyond ELRANGE of %d pages", hi, e.pages)
	}
	var lo mem.PageID
	if n := len(e.ownerHi); n > 0 {
		lo = e.ownerHi[n-1]
	}
	if mem.PageID(hi) <= lo {
		return fmt.Errorf("epc: owner bound %d not above previous bound %d", hi, lo)
	}
	e.ownerHi = append(e.ownerHi, mem.PageID(hi))
	if len(e.ownerHi) > 1 {
		e.resByOwner = append(e.resByOwner, 0)
	}
	return nil
}

// ownerOf maps a page to its owning enclave index: binary search over the
// ascending range bounds, or the implicit owner 0 when none are
// registered.
func (e *EPC) ownerOf(page mem.PageID) int32 {
	lo, hi := 0, len(e.ownerHi)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if page >= e.ownerHi[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// Owners returns the number of registered owner ranges (0 when the EPC is
// running in the implicit single-owner mode).
func (e *EPC) Owners() int { return len(e.ownerHi) }

// OwnerOf returns the owner index of page.
func (e *EPC) OwnerOf(page mem.PageID) int { return int(e.ownerOf(page)) }

// OwnerResident returns the number of frames currently held by owner.
func (e *EPC) OwnerResident(owner int) int {
	if owner < 0 || owner >= len(e.resByOwner) {
		return 0
	}
	return e.resByOwner[owner]
}

// OwnerScanStats counts owner's resident frames and how many of them have
// the access bit set, without disturbing any bits. The adaptive quota
// policy samples it at scan boundaries as its working-set signal.
func (e *EPC) OwnerScanStats(owner int) (accessed, resident int) {
	for i := range e.frames {
		fr := &e.frames[i]
		if fr.page == mem.NoPage || int(fr.owner) != owner {
			continue
		}
		resident++
		if fr.accessed {
			accessed++
		}
	}
	return accessed, resident
}

// Capacity returns the number of physical frames.
func (e *EPC) Capacity() int { return len(e.frames) }

// Resident returns the number of occupied frames.
func (e *EPC) Resident() int { return e.pt.size() }

// Full reports whether every frame is occupied.
func (e *EPC) Full() bool { return e.pt.size() == len(e.frames) }

// Pages returns the ELRANGE size in pages.
func (e *EPC) Pages() uint64 { return e.pages }

// Present reports whether page is resident in the EPC.
func (e *EPC) Present(page mem.PageID) bool {
	_, ok := e.pt.lookup(page)
	return ok
}

// PresenceBitmap exposes the shared presence bitmap. SIP's runtime checks
// it from "inside the enclave"; the OS updates it on load and eviction.
func (e *EPC) PresenceBitmap() *Bitmap { return e.present }

// Touch sets the access bit of the frame holding page, mirroring the
// hardware setting the PTE accessed bit on every load/store. It reports
// whether the page was resident.
func (e *EPC) Touch(page mem.PageID) bool {
	f, ok := e.pt.lookup(page)
	if !ok {
		return false
	}
	e.frames[f].accessed = true
	if e.policy == PolicyLRU {
		e.seq++
		e.frames[f].touchedAt = e.seq
	}
	return true
}

// Load installs page into a free frame, marking it as preloaded when
// preloaded is true. It returns an error if the EPC is full (the caller
// must evict first — mirroring the driver, which runs EWB before ELDU when
// no free EPC page exists) or if the page is already resident.
func (e *EPC) Load(page mem.PageID, preloaded bool) error {
	if page >= mem.PageID(e.pages) {
		return fmt.Errorf("epc: page %d outside ELRANGE of %d pages", page, e.pages)
	}
	if _, ok := e.pt.lookup(page); ok {
		return fmt.Errorf("epc: page %d already resident", page)
	}
	if len(e.free) == 0 {
		return fmt.Errorf("epc: full (%d frames); evict before loading", len(e.frames))
	}
	f := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.seq++
	owner := e.ownerOf(page)
	e.frames[f] = frame{
		page:      page,
		accessed:  !preloaded,
		preload:   preloaded,
		owner:     owner,
		loadedAt:  e.seq,
		touchedAt: e.seq,
	}
	e.resByOwner[owner]++
	e.pt.set(page, f)
	e.present.Set(uint64(page))
	return nil
}

// Evict removes page from the EPC (the EWB path). It reports whether the
// page was resident.
func (e *EPC) Evict(page mem.PageID) bool {
	f, ok := e.pt.lookup(page)
	if !ok {
		return false
	}
	e.resByOwner[e.frames[f].owner]--
	e.frames[f] = frame{page: mem.NoPage}
	e.free = append(e.free, f)
	e.pt.remove(page)
	e.present.Clear(uint64(page))
	return true
}

// SelectVictim returns the page the configured policy would evict, or
// mem.NoPage if the EPC is empty.
//
// Under CLOCK (the driver's algorithm), frames with the access bit set get
// a second chance (the bit is cleared and the hand moves on); the first
// frame found with a clear access bit is the victim. With every bit set
// the hand wraps once, clearing as it goes, and evicts the frame it
// started from — guaranteeing termination.
func (e *EPC) SelectVictim() mem.PageID {
	if e.pt.size() == 0 {
		return mem.NoPage
	}
	switch e.policy {
	case PolicyFIFO:
		return e.victimByMin(func(fr *frame) uint64 { return fr.loadedAt })
	case PolicyLRU:
		return e.victimByMin(func(fr *frame) uint64 { return fr.touchedAt })
	case PolicyRandom:
		return e.victimRandom()
	}
	for sweep := 0; sweep < 2*len(e.frames); sweep++ {
		fr := &e.frames[e.hand]
		e.hand = (e.hand + 1) % len(e.frames)
		if fr.page == mem.NoPage {
			continue
		}
		if fr.accessed {
			fr.accessed = false
			continue
		}
		return fr.page
	}
	// Unreachable: two sweeps over a non-empty table must find a frame
	// whose bit was cleared on the first pass.
	panic("epc: CLOCK failed to select a victim")
}

// SelectVictimOwned is SelectVictim restricted to frames held by owner:
// the quota arbiter uses it to make an over-quota enclave self-evict or
// to steal from a specific over-quota owner. It returns mem.NoPage when
// owner holds no frames (the caller falls back to the global scan).
//
// The filtered CLOCK shares the global hand but gives other owners'
// frames a free pass — their access bits are NOT cleared, so arbitrated
// and global runs age foreign frames identically. The filtered Random
// scan draws from the same xorshift stream as the global one (acceptable
// because the two are never mixed within one run: a run either uses the
// arbiter everywhere or nowhere).
func (e *EPC) SelectVictimOwned(owner int) mem.PageID {
	if e.OwnerResident(owner) == 0 {
		return mem.NoPage
	}
	o := int32(owner)
	switch e.policy {
	case PolicyFIFO:
		return e.victimByMinOwned(o, func(fr *frame) uint64 { return fr.loadedAt })
	case PolicyLRU:
		return e.victimByMinOwned(o, func(fr *frame) uint64 { return fr.touchedAt })
	case PolicyRandom:
		return e.victimRandomOwned(o)
	}
	for sweep := 0; sweep < 2*len(e.frames); sweep++ {
		fr := &e.frames[e.hand]
		e.hand = (e.hand + 1) % len(e.frames)
		if fr.page == mem.NoPage || fr.owner != o {
			continue
		}
		if fr.accessed {
			fr.accessed = false
			continue
		}
		return fr.page
	}
	// Unreachable: owner holds >= 1 frame, and two sweeps must find one
	// whose bit was cleared on the first pass.
	panic("epc: owned CLOCK failed to select a victim")
}

// victimByMinOwned scans for owner's occupied frame minimizing key.
func (e *EPC) victimByMinOwned(owner int32, key func(*frame) uint64) mem.PageID {
	victim := mem.NoPage
	best := uint64(0)
	for i := range e.frames {
		fr := &e.frames[i]
		if fr.page == mem.NoPage || fr.owner != owner {
			continue
		}
		if k := key(fr); victim == mem.NoPage || k < best {
			victim, best = fr.page, k
		}
	}
	return victim
}

// victimRandomOwned picks a uniformly random frame held by owner
// (rejection sampling; terminates because the caller checked owner holds
// at least one frame).
func (e *EPC) victimRandomOwned(owner int32) mem.PageID {
	for {
		e.rnd ^= e.rnd << 13
		e.rnd ^= e.rnd >> 7
		e.rnd ^= e.rnd << 17
		fr := &e.frames[e.rnd%uint64(len(e.frames))]
		if fr.page != mem.NoPage && fr.owner == owner {
			return fr.page
		}
	}
}

// victimByMin scans for the occupied frame minimizing key.
func (e *EPC) victimByMin(key func(*frame) uint64) mem.PageID {
	victim := mem.NoPage
	best := uint64(0)
	for i := range e.frames {
		fr := &e.frames[i]
		if fr.page == mem.NoPage {
			continue
		}
		if k := key(fr); victim == mem.NoPage || k < best {
			victim, best = fr.page, k
		}
	}
	return victim
}

// victimRandom picks a uniformly random occupied frame (deterministic
// xorshift so runs stay reproducible).
func (e *EPC) victimRandom() mem.PageID {
	for {
		e.rnd ^= e.rnd << 13
		e.rnd ^= e.rnd >> 7
		e.rnd ^= e.rnd << 17
		fr := &e.frames[e.rnd%uint64(len(e.frames))]
		if fr.page != mem.NoPage {
			return fr.page
		}
	}
}

// Preloaded reports whether page is resident and arrived via preloading.
func (e *EPC) Preloaded(page mem.PageID) bool {
	f, ok := e.pt.lookup(page)
	return ok && e.frames[f].preload
}

// Accessed reports whether page is resident with its access bit set.
func (e *EPC) Accessed(page mem.PageID) bool {
	f, ok := e.pt.lookup(page)
	return ok && e.frames[f].accessed
}

// ScanPreloadBits visits every resident preloaded page and reports it to
// visit together with its access bit. The kernel service thread piggybacks
// on its CLOCK access-bit scan to maintain DFP's PreloadedPageList; this
// method is that scan. When clear is true the preload bit of visited
// accessed pages is cleared so each correct preload is counted once.
func (e *EPC) ScanPreloadBits(clear bool, visit func(page mem.PageID, accessed bool)) {
	e.ScanPreloadBitsRange(0, mem.PageID(e.pages), clear, visit)
}

// ScanPreloadBitsRange is ScanPreloadBits restricted to pages in
// [lo, hi). In multi-enclave mode each enclave's service scan covers only
// its own ELRANGE slice of the shared EPC.
func (e *EPC) ScanPreloadBitsRange(lo, hi mem.PageID, clear bool, visit func(page mem.PageID, accessed bool)) {
	for i := range e.frames {
		fr := &e.frames[i]
		if fr.page == mem.NoPage || !fr.preload || fr.page < lo || fr.page >= hi {
			continue
		}
		visit(fr.page, fr.accessed)
		if clear && fr.accessed {
			fr.preload = false
		}
	}
}

// ResidentPages returns the resident page set in frame order; for tests
// and tooling.
func (e *EPC) ResidentPages() []mem.PageID {
	pages := make([]mem.PageID, 0, e.pt.size())
	for i := range e.frames {
		if p := e.frames[i].page; p != mem.NoPage {
			pages = append(pages, p)
		}
	}
	return pages
}

// CheckInvariants verifies internal consistency: the page table, frame
// table, free list, and presence bitmap must agree. Tests call it after
// random operation sequences.
func (e *EPC) CheckInvariants() error {
	occupied := 0
	seen := make(map[FrameID]bool, len(e.frames))
	resByOwner := make([]int, len(e.resByOwner))
	for i := range e.frames {
		p := e.frames[i].page
		if p == mem.NoPage {
			continue
		}
		occupied++
		seen[FrameID(i)] = true
		f, ok := e.pt.lookup(p)
		if !ok || f != FrameID(i) {
			return fmt.Errorf("epc: frame %d holds page %d, page table says (%d, %v)",
				i, p, f, ok)
		}
		if !e.present.Get(uint64(p)) {
			return fmt.Errorf("epc: resident page %d absent from presence bitmap", p)
		}
		if o := e.frames[i].owner; o != e.ownerOf(p) {
			return fmt.Errorf("epc: frame %d (page %d) stamped owner %d, range says %d",
				i, p, o, e.ownerOf(p))
		}
		resByOwner[e.frames[i].owner]++
	}
	// Per-owner resident counters must agree with the frame stamps and
	// sum to the occupied total.
	ownedTotal := 0
	for o, n := range resByOwner {
		if e.resByOwner[o] != n {
			return fmt.Errorf("epc: owner %d counter says %d resident, frames say %d",
				o, e.resByOwner[o], n)
		}
		ownedTotal += n
	}
	if ownedTotal != occupied {
		return fmt.Errorf("epc: per-owner counts sum to %d, %d frames occupied",
			ownedTotal, occupied)
	}
	// Entry counts matching plus every occupied frame resolving back to
	// itself rules out stale or duplicated page-table entries.
	if e.pt.size() != occupied {
		return fmt.Errorf("epc: page table holds %d entries, %d frames occupied",
			e.pt.size(), occupied)
	}
	if occupied+len(e.free) != len(e.frames) {
		return fmt.Errorf("epc: %d mapped + %d free != %d frames",
			occupied, len(e.free), len(e.frames))
	}
	for _, f := range e.free {
		if seen[f] {
			return fmt.Errorf("epc: frame %d both free and mapped", f)
		}
		seen[f] = true
		if e.frames[f].page != mem.NoPage {
			return fmt.Errorf("epc: free frame %d holds page %d", f, e.frames[f].page)
		}
	}
	if got := e.present.Count(); got != uint64(occupied) {
		return fmt.Errorf("epc: presence bitmap count %d != %d resident", got, occupied)
	}
	return nil
}
