package workload

import (
	"sgxpreload/internal/mem"
)

// Sequential (Table 1 "large working set with regular access") benchmark
// models: the 1 GB-scan microbenchmark plus bwaves, lbm, and wrf from SPEC
// CPU2017. Figure 3 of the paper shows bwaves and lbm with evidently
// sequential page-access patterns; the generators reproduce that shape as
// interleaved linear sweeps over multiple arrays.
//
// The per-access compute constants set each benchmark's fault-time
// fraction, which bounds what preloading can recover: DFP's steady-state
// gain on a pure stream with preload distance L is roughly
// (L/(L+1))·faultCost/(compute+faultCost). The values below place the
// benchmarks in the paper's measured bands (micro ≈ +18.6%, lbm ≈ +13.3%,
// bwaves and wrf around the regular-set average of +11.4%).

// Site IDs. Each array sweep is one static source site (the paper's
// instrumenter works per memory instruction; a sweep loop body is one).
const (
	siteMicroScan  mem.SiteID = 1
	siteLbmBase    mem.SiteID = 100 // +k per lattice array
	siteBwavesBase mem.SiteID = 200 // +k per array
	siteBwavesAux  mem.SiteID = 280 // occasional indirect access
	siteWrfBase    mem.SiteID = 300 // +k per field array
	siteWrfAux     mem.SiteID = 380
)

// Microbenchmark: a loop sequentially touching a 1 GB region (§1 reports a
// 46x slowdown for it inside SGX). Scaled, the region is 4x the default
// experiment EPC. Compute per page is small — the loop does almost nothing
// but touch memory — so its runtime is fault-dominated, which is why the
// paper sees its largest DFP gain (+18.6%) here.
var Micro = register(&Workload{
	Name:           "microbenchmark",
	Category:       LargeRegular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 8192,
	gen: func(in Input, b *builder) {
		pages, passes := uint64(8192), 3
		if in == Train {
			pages, passes = 4096, 1
		}
		for p := 0; p < passes; p++ {
			for pg := uint64(0); pg < pages; pg++ {
				b.emit(siteMicroScan, mem.PageID(pg), 3500+b.r.Uint64n(1000))
			}
		}
	},
})

// lbm: lattice-Boltzmann fluid dynamics. Sweeps source and destination
// lattices (modeled as 6 field arrays) in lockstep every timestep — a
// small number of concurrent sequential streams with heavy floating-point
// work per cell (a 4 KiB page of doubles is ~512 cells of stencil math).
var Lbm = register(&Workload{
	Name:           "lbm",
	Category:       LargeRegular,
	Language:       LangC,
	Instrumentable: true,
	FootprintPages: 6144,
	gen: func(in Input, b *builder) {
		const arrays = 6
		perArray, steps := uint64(1024), 4
		if in == Train {
			perArray, steps = 512, 2
		}
		for s := 0; s < steps; s++ {
			for pg := uint64(0); pg < perArray; pg++ {
				for a := uint64(0); a < arrays; a++ {
					base := a * perArray
					c := 330000 + b.r.Uint64n(20000)
					if a >= arrays/2 {
						b.emitW(siteLbmBase+mem.SiteID(a), mem.PageID(base+pg), c)
					} else {
						b.emit(siteLbmBase+mem.SiteID(a), mem.PageID(base+pg), c)
					}
				}
			}
		}
	},
})

// bwaves: blast-wave simulation. Many solver arrays are swept in lockstep
// (24 here), so recognizing all of its streams needs a stream list longer
// than the array count — this is the benchmark that pushes Figure 6's
// combined optimum toward a stream_list length of 30. A little irregular
// solver traffic (boundary-condition indirection) adds list churn.
var Bwaves = register(&Workload{
	Name:           "bwaves",
	Category:       LargeRegular,
	Language:       LangFortran,
	Instrumentable: false,
	FootprintPages: 8160,
	gen: func(in Input, b *builder) {
		const arrays = 24
		perArray, iters := uint64(340), 3
		if in == Train {
			perArray, iters = 170, 2
		}
		footprint := arrays * perArray
		for it := 0; it < iters; it++ {
			for pg := uint64(0); pg < perArray; pg++ {
				for a := uint64(0); a < arrays; a++ {
					if b.r.Chance(0.02) {
						// Boundary indirection: a page far from any stream.
						b.emit(siteBwavesAux, mem.PageID(b.r.Uint64n(footprint)), 30000)
					}
					c := 400000 + b.r.Uint64n(50000)
					b.emit(siteBwavesBase+mem.SiteID(a), mem.PageID(a*perArray+pg), c)
				}
			}
		}
	},
})

// wrf: weather research and forecasting. Fewer concurrent field sweeps
// than bwaves and more computation per cell.
var Wrf = register(&Workload{
	Name:           "wrf",
	Category:       LargeRegular,
	Language:       LangFortran,
	Instrumentable: false,
	FootprintPages: 6144,
	gen: func(in Input, b *builder) {
		const arrays = 8
		perArray, iters := uint64(768), 3
		if in == Train {
			perArray, iters = 384, 1
		}
		footprint := arrays * perArray
		for it := 0; it < iters; it++ {
			for pg := uint64(0); pg < perArray; pg++ {
				for a := uint64(0); a < arrays; a++ {
					if b.r.Chance(0.005) {
						b.emit(siteWrfAux, mem.PageID(b.r.Uint64n(footprint)), 40000)
					}
					c := 540000 + b.r.Uint64n(40000)
					b.emit(siteWrfBase+mem.SiteID(a), mem.PageID(a*perArray+pg), c)
				}
			}
		}
	},
})
