package sim

import (
	"fmt"
	"strings"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// TestShardedOneShardEqualsRunShared: at one shard the sharded runner
// is RunShared — same engine, same schedule, byte-identical artifacts
// including the hooked event timeline.
func TestShardedOneShardEqualsRunShared(t *testing.T) {
	recA, recB := obs.NewRecorder(), obs.NewRecorder()
	shared, err := RunShared(tieBreakEnclaves(16), SharedConfig{EPCPages: 128, Hook: recA})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunSharded([][]Enclave{tieBreakEnclaves(16)}, SharedConfig{EPCPages: 128, Hook: recB}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded) != 1 {
		t.Fatalf("one-shard run returned %d shards", len(sharded))
	}
	if a, b := fmt.Sprintf("%#v", shared), fmt.Sprintf("%#v", sharded[0]); a != b {
		t.Errorf("one-shard RunSharded diverges from RunShared:\n  shared  %.300s\n  sharded %.300s", a, b)
	}
	var ba, bb strings.Builder
	if err := recA.WriteJSONL(&ba); err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteJSONL(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Errorf("one-shard timeline diverges: %s", firstDiffLine(ba.String(), bb.String()))
	}
}

// TestShardedDeterministicAcrossWorkers: the merged result grid must be
// identical at any worker count — completion order never leaks.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		groups := ShardRoundRobin(tieBreakEnclaves(32), 4)
		res, err := RunSharded(groups, SharedConfig{EPCPages: 64}, workers)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", res)
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8, 0} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: sharded results diverge from sequential run", workers)
		}
	}
}

// TestShardedErrors: empty inputs, hooked multi-shard runs, and empty
// shards are rejected; a failing shard reports the lowest-index error a
// sequential loop would have hit.
func TestShardedErrors(t *testing.T) {
	if _, err := RunSharded(nil, SharedConfig{EPCPages: 64}, 1); err == nil {
		t.Error("nil groups: want error")
	}
	if _, err := RunSharded([][]Enclave{tieBreakEnclaves(2), tieBreakEnclaves(2)},
		SharedConfig{EPCPages: 64, Hook: obs.NewRecorder()}, 2); err == nil ||
		!strings.Contains(err.Error(), "hook") {
		t.Errorf("hooked 2-shard run: want hook error, got %v", err)
	}
	if _, err := RunSharded([][]Enclave{tieBreakEnclaves(2), nil},
		SharedConfig{EPCPages: 64}, 1); err == nil || !strings.Contains(err.Error(), "no enclaves") {
		t.Errorf("empty shard: want error, got %v", err)
	}

	// Shards 1 and 3 carry an access outside the enclave's declared
	// range; the merge must surface shard 1's error.
	bad := Enclave{Name: "bad", Trace: []mem.Access{{Page: 99, Compute: 1}}, Pages: 8, Scheme: Baseline}
	groups := [][]Enclave{tieBreakEnclaves(2), {bad}, tieBreakEnclaves(2), {bad}}
	_, err := RunSharded(groups, SharedConfig{EPCPages: 64}, 4)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("want shard 1's error, got %v", err)
	}
}

// TestShardRoundRobin pins the deterministic placement: index i lands
// in shard i mod S, and the shard count clamps to the fleet size.
func TestShardRoundRobin(t *testing.T) {
	encs := tieBreakEnclaves(10)
	groups := ShardRoundRobin(encs, 4)
	if len(groups) != 4 {
		t.Fatalf("got %d shards, want 4", len(groups))
	}
	for s, g := range groups {
		for j, e := range g {
			if want := fmt.Sprintf("enc%04d", s+j*4); e.Name != want {
				t.Errorf("shard %d slot %d holds %s, want %s", s, j, e.Name, want)
			}
		}
	}
	if got := len(ShardRoundRobin(encs, 100)); got != 10 {
		t.Errorf("oversharded fleet yields %d shards, want clamp to 10", got)
	}
	if got := len(ShardRoundRobin(encs, 0)); got != 1 {
		t.Errorf("shards=0 yields %d shards, want 1", got)
	}
}
