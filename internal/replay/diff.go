package replay

import (
	"fmt"
	"strings"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// Compare and its result types. A Diff answers the paper's run-by-run
// questions about two recorded timelines (say DFP versus DFP-stop on the
// same workload): where do the runs first diverge, how do the per-kind
// event populations differ, and how does every derived Report metric
// move. Both renderings — String and plain json.Marshal (every field is
// tagged) — are deterministic functions of the two timelines.

// WireEvent is one event in the export field order, used by Diff's JSON
// rendering (page is -1 for mem.NoPage, as in the trace files).
type WireEvent struct {
	T     uint64 `json:"t"`
	Kind  string `json:"kind"`
	Page  int64  `json:"page"`
	Batch uint64 `json:"batch"`
	V1    uint64 `json:"v1"`
	V2    uint64 `json:"v2"`
}

// toWire converts an event for rendering.
func toWire(e obs.Event) WireEvent {
	page := int64(e.Page)
	if e.Page == mem.NoPage {
		page = -1
	}
	return WireEvent{T: e.T, Kind: e.Kind.String(), Page: page, Batch: e.Batch, V1: e.V1, V2: e.V2}
}

// formatWire renders a wire event compactly for the text diff.
func formatWire(w WireEvent) string {
	return fmt.Sprintf("{t:%d kind:%s page:%d batch:%d v1:%d v2:%d}",
		w.T, w.Kind, w.Page, w.Batch, w.V1, w.V2)
}

// Divergence locates the first event-level difference between two
// timelines: the 0-based index at which they stop agreeing, and the two
// events there. A nil side means that timeline ended at the index (one
// run is a strict prefix of the other).
type Divergence struct {
	Index int        `json:"index"`
	A     *WireEvent `json:"a"`
	B     *WireEvent `json:"b"`
}

// Delta is one named quantity compared across the two timelines.
type Delta struct {
	Name string  `json:"name"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	// Diff is B - A.
	Diff float64 `json:"diff"`
}

// Diff is the full comparison of two timelines.
type Diff struct {
	// LenA and LenB are the two timelines' event counts.
	LenA int `json:"len_a"`
	LenB int `json:"len_b"`
	// Identical reports event-level equality (same length, same events
	// in the same order); when true, First is nil and every delta is 0.
	Identical bool `json:"identical"`
	// First is the first divergent event, nil when Identical.
	First *Divergence `json:"first_divergence,omitempty"`
	// Counts holds per-kind event-count deltas, in Kind declaration
	// order, for every kind either timeline emitted.
	Counts []Delta `json:"count_deltas"`
	// Report holds the derived-metric deltas, one per Report field, in
	// a fixed order.
	Report []Delta `json:"report_deltas"`
}

// Compare diffs two recorded timelines event-by-event and
// metric-by-metric. It does not mutate its inputs.
func Compare(a, b []obs.Event) Diff {
	d := Diff{LenA: len(a), LenB: len(b), Identical: true}

	// First divergent event: the first index where the runs disagree,
	// or the shorter length when one is a strict prefix of the other.
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n && d.Identical; i++ {
		if a[i] != b[i] {
			wa, wb := toWire(a[i]), toWire(b[i])
			d.First = &Divergence{Index: i, A: &wa, B: &wb}
			d.Identical = false
		}
	}
	if d.Identical && len(a) != len(b) {
		div := &Divergence{Index: n}
		if len(a) > n {
			wa := toWire(a[n])
			div.A = &wa
		}
		if len(b) > n {
			wb := toWire(b[n])
			div.B = &wb
		}
		d.First = div
		d.Identical = false
	}

	ra, rb := obs.BuildReport(a), obs.BuildReport(b)
	for _, k := range obs.Kinds() {
		ca, cb := ra.Counts[k], rb.Counts[k]
		if ca == 0 && cb == 0 {
			continue
		}
		d.Counts = append(d.Counts, delta(k.String(), float64(ca), float64(cb)))
	}
	d.Report = reportDeltas(ra, rb)
	return d
}

// reportDeltas flattens the two Reports into one comparable row per
// metric, in a fixed order.
func reportDeltas(a, b obs.Report) []Delta {
	last := func(pts []obs.Point) float64 {
		if len(pts) == 0 {
			return 0
		}
		return pts[len(pts)-1].V
	}
	return []Delta{
		delta("span_cycles", float64(a.Span), float64(b.Span)),
		delta("channel_busy_cycles", float64(a.Busy), float64(b.Busy)),
		delta("channel_utilization", a.Utilization, b.Utilization),
		delta("faults", float64(a.Latency.Total), float64(b.Latency.Total)),
		delta("fault_latency_mean", a.Latency.Mean(), b.Latency.Mean()),
		delta("fault_latency_max", float64(a.Latency.Max), float64(b.Latency.Max)),
		delta("accuracy_last", last(a.Accuracy), last(b.Accuracy)),
		delta("occupancy_last", last(a.Occupancy), last(b.Occupancy)),
		delta("streams_started", float64(a.Streams.Started), float64(b.Streams.Started)),
		delta("streams_hits", float64(a.Streams.Hits), float64(b.Streams.Hits)),
		delta("streams_evicted", float64(a.Streams.Evicted), float64(b.Streams.Evicted)),
		delta("dfp_stop_cycle", float64(a.StopCycle), float64(b.StopCycle)),
	}
}

// delta builds one comparison row.
func delta(name string, a, b float64) Delta {
	return Delta{Name: name, A: a, B: b, Diff: b - a}
}

// String renders the diff as a deterministic text block: the divergence
// point, then every count and report delta with changed rows marked "*".
func (d Diff) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "events:              %d vs %d\n", d.LenA, d.LenB)
	if d.Identical {
		sb.WriteString("timelines:           identical\n")
	} else {
		f := d.First
		fmt.Fprintf(&sb, "first divergence:    event %d\n", f.Index)
		fmt.Fprintf(&sb, "  a: %s\n", sideString(f.A))
		fmt.Fprintf(&sb, "  b: %s\n", sideString(f.B))
	}
	sb.WriteString("event counts (a vs b, diff):\n")
	writeDeltas(&sb, d.Counts, "%.0f", "%+.0f")
	sb.WriteString("report metrics (a vs b, diff):\n")
	writeDeltas(&sb, d.Report, "%.4g", "%+.4g")
	return sb.String()
}

// sideString renders one side of a divergence ("<end of timeline>" when
// that run had no event at the index).
func sideString(w *WireEvent) string {
	if w == nil {
		return "<end of timeline>"
	}
	return formatWire(*w)
}

// writeDeltas renders one delta table with the given value and diff
// formats.
func writeDeltas(sb *strings.Builder, ds []Delta, format, diffFormat string) {
	for _, dl := range ds {
		mark := " "
		if dl.Diff != 0 {
			mark = "*"
		}
		fmt.Fprintf(sb, "  %s %-20s "+format+" vs "+format+" ("+diffFormat+")\n",
			mark, dl.Name, dl.A, dl.B, dl.Diff)
	}
}
