// Package plot renders the evaluation's figures as standalone SVG files
// using only the standard library. It supports the three chart shapes the
// paper uses: scatter plots (Figure 3's page-versus-time patterns), line
// charts (the parameter sweeps of Figures 6, 7, and 9), and grouped bar
// charts (the per-benchmark comparisons of Figures 8, 10, 12, and 13).
//
// The output is deliberately plain — axes, ticks, series, legend — and
// deterministic: the same data always renders to the same bytes, so the
// files can be golden-tested.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Kind optionally overrides the chart's mark for this series
	// ("scatter", "line", or "bar"; empty inherits Chart.Kind). Event
	// timelines use it to overlay a marker line on a scatter field.
	Kind string
}

// Chart describes a figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Kind selects the mark: "scatter", "line", or "bar". For bars, each
	// series contributes one bar per category and X is ignored (categories
	// come from XTicks).
	Kind string
	// Series holds the data.
	Series []Series
	// XTicks optionally names categorical x positions (bar charts) or
	// fixes tick labels (line charts); empty means automatic numeric
	// ticks.
	XTicks []string
	// YRef draws a horizontal reference line (e.g. normalized time 1.0);
	// NaN disables it.
	YRef float64
}

// Canvas geometry (fixed; the figures are small and uniform).
const (
	width   = 640.0
	height  = 400.0
	marginL = 70.0
	marginR = 150.0
	marginT = 40.0
	marginB = 50.0
)

// palette holds the series colors (colorblind-safe-ish).
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#000000", "#999999"}

// SVG renders the chart.
func (c Chart) SVG() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, marginT-16, esc(c.Title))

	xmin, xmax, ymin, ymax := c.bounds()
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	xpos := func(x float64) float64 {
		if xmax == xmin {
			return marginL + plotW/2
		}
		return marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	ypos := func(y float64) float64 {
		if ymax == ymin {
			return marginT + plotH/2
		}
		return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))

	// Y ticks.
	for _, tv := range ticks(ymin, ymax, 6) {
		y := ypos(tv)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, fmtTick(tv))
	}
	// X ticks.
	if len(c.XTicks) > 0 {
		for i, lbl := range c.XTicks {
			x := xpos(float64(i))
			if c.Kind == "bar" {
				x = marginL + (float64(i)+0.5)/float64(len(c.XTicks))*plotW
			}
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
				x, marginT+plotH+16, esc(lbl))
		}
	} else {
		for _, tv := range ticks(xmin, xmax, 7) {
			x := xpos(tv)
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
				x, marginT+plotH+16, fmtTick(tv))
		}
	}

	// Reference line.
	if !math.IsNaN(c.YRef) && c.YRef >= ymin && c.YRef <= ymax {
		y := ypos(c.YRef)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#888888" stroke-dasharray="5,4"/>`+"\n",
			marginL, y, marginL+plotW, y)
	}

	// Marks.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		kind := c.Kind
		if s.Kind != "" {
			kind = s.Kind
		}
		switch kind {
		case "scatter":
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s" fill-opacity="0.6"/>`+"\n",
					xpos(s.X[i]), ypos(s.Y[i]), color)
			}
		case "bar":
			cats := len(c.XTicks)
			if cats == 0 {
				cats = len(s.Y)
			}
			groupW := plotW / float64(cats)
			barW := groupW * 0.8 / float64(len(c.Series))
			for i := range s.Y {
				x := marginL + float64(i)*groupW + groupW*0.1 + float64(si)*barW
				y0 := ypos(math.Max(0, math.Min(c.baseline(), ymax)))
				y1 := ypos(s.Y[i])
				top, h := y1, y0-y1
				if h < 0 {
					top, h = y0, -h
				}
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, top, barW, h, color)
			}
		default: // line
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(s.X[i]), ypos(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
					xpos(s.X[i]), ypos(s.Y[i]), color)
			}
		}
	}

	// Legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		y := marginT + 14 + float64(si)*18
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n",
			width-marginR+14, y-10, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginR+30, y, esc(s.Name))
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// baseline returns the bar chart's zero line (0, or ymin if positive).
func (c Chart) baseline() float64 {
	_, _, ymin, _ := c.bounds()
	if ymin > 0 {
		return ymin
	}
	return 0
}

// bounds computes the data extents with a little headroom.
func (c Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	first := true
	for _, s := range c.Series {
		for i := range s.Y {
			x := 0.0
			if i < len(s.X) {
				x = s.X[i]
			} else {
				x = float64(i)
			}
			y := s.Y[i]
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if first {
		return 0, 1, 0, 1
	}
	if !math.IsNaN(c.YRef) {
		ymin, ymax = math.Min(ymin, c.YRef), math.Max(ymax, c.YRef)
	}
	pad := (ymax - ymin) * 0.08
	if pad == 0 {
		pad = 1
	}
	ymin -= pad
	ymax += pad
	if c.Kind == "bar" {
		xmin, xmax = 0, math.Max(1, float64(len(c.XTicks)))
	}
	return xmin, xmax, ymin, ymax
}

// ticks returns ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch norm := raw / mag; {
	case norm < 1.5:
		step = mag
	case norm < 3.5:
		step = 2 * mag
	case norm < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Ceil(lo/step) * step
	var out []float64
	for v := start; v <= hi+step/1e6; v += step {
		out = append(out, v)
	}
	return out
}

// fmtTick renders a tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortedSeries returns the series sorted by name; figures built from maps
// use it to stay deterministic.
func SortedSeries(m map[string]Series) []Series {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Series, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}
