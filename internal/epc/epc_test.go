package epc

import (
	"testing"
	"testing/quick"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func mustNew(t *testing.T, capacity int, pages uint64) *EPC {
	t.Helper()
	e, err := New(capacity, pages)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", capacity, pages, err)
	}
	return e
}

func TestNewRejectsBadArguments(t *testing.T) {
	tests := []struct {
		name     string
		capacity int
		pages    uint64
	}{
		{"zero capacity", 0, 10},
		{"negative capacity", -1, 10},
		{"zero pages", 4, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.capacity, tt.pages); err == nil {
				t.Fatalf("New(%d, %d) succeeded, want error", tt.capacity, tt.pages)
			}
		})
	}
}

func TestLoadAndPresence(t *testing.T) {
	e := mustNew(t, 2, 100)
	if e.Present(3) {
		t.Fatal("page 3 present in empty EPC")
	}
	if err := e.Load(3, false); err != nil {
		t.Fatalf("Load(3): %v", err)
	}
	if !e.Present(3) {
		t.Fatal("page 3 absent after load")
	}
	if !e.PresenceBitmap().Get(3) {
		t.Fatal("presence bitmap not updated on load")
	}
	if e.Resident() != 1 {
		t.Fatalf("Resident() = %d, want 1", e.Resident())
	}
}

func TestLoadErrors(t *testing.T) {
	e := mustNew(t, 1, 10)
	if err := e.Load(5, false); err != nil {
		t.Fatalf("Load(5): %v", err)
	}
	if err := e.Load(5, false); err == nil {
		t.Fatal("double load succeeded, want error")
	}
	if err := e.Load(6, false); err == nil {
		t.Fatal("load into full EPC succeeded, want error")
	}
	if err := e.Load(50, false); err == nil {
		t.Fatal("load outside ELRANGE succeeded, want error")
	}
}

func TestEvictFreesFrame(t *testing.T) {
	e := mustNew(t, 1, 10)
	if err := e.Load(5, false); err != nil {
		t.Fatalf("Load(5): %v", err)
	}
	if !e.Evict(5) {
		t.Fatal("Evict(5) = false, want true")
	}
	if e.Present(5) {
		t.Fatal("page 5 present after eviction")
	}
	if e.PresenceBitmap().Get(5) {
		t.Fatal("presence bitmap still set after eviction")
	}
	if err := e.Load(6, false); err != nil {
		t.Fatalf("Load(6) after eviction: %v", err)
	}
}

func TestEvictAbsentPage(t *testing.T) {
	e := mustNew(t, 1, 10)
	if e.Evict(5) {
		t.Fatal("Evict of absent page = true, want false")
	}
}

func TestClockPrefersUnaccessedVictim(t *testing.T) {
	e := mustNew(t, 3, 100)
	for _, p := range []mem.PageID{1, 2, 3} {
		if err := e.Load(p, false); err != nil {
			t.Fatalf("Load(%d): %v", p, err)
		}
	}
	// Demand loads arrive with the access bit set. Clear 2's bit by
	// letting CLOCK sweep once (clears all), then re-touch 1 and 3.
	_ = e.SelectVictim() // sweeps, clears bits, returns some page
	e.Touch(1)
	e.Touch(3)
	v := e.SelectVictim()
	if v != 2 {
		t.Fatalf("SelectVictim() = %d, want 2 (only unaccessed page)", v)
	}
}

func TestClockSecondChanceTermination(t *testing.T) {
	e := mustNew(t, 4, 100)
	for p := mem.PageID(0); p < 4; p++ {
		if err := e.Load(p, false); err != nil {
			t.Fatalf("Load(%d): %v", p, err)
		}
		e.Touch(p)
	}
	// Every access bit set: CLOCK must still terminate and return a page.
	v := e.SelectVictim()
	if v == mem.NoPage {
		t.Fatal("SelectVictim() = NoPage on full EPC")
	}
}

func TestSelectVictimEmpty(t *testing.T) {
	e := mustNew(t, 4, 100)
	if v := e.SelectVictim(); v != mem.NoPage {
		t.Fatalf("SelectVictim() on empty EPC = %d, want NoPage", v)
	}
}

func TestPreloadBitLifecycle(t *testing.T) {
	e := mustNew(t, 4, 100)
	if err := e.Load(7, true); err != nil {
		t.Fatalf("Load(7, preload): %v", err)
	}
	if !e.Preloaded(7) {
		t.Fatal("Preloaded(7) = false after preload")
	}
	if e.Accessed(7) {
		t.Fatal("preloaded page arrived with access bit set")
	}

	// Unaccessed preloads are visited but keep their bit.
	var visits, accessed int
	e.ScanPreloadBits(true, func(_ mem.PageID, acc bool) {
		visits++
		if acc {
			accessed++
		}
	})
	if visits != 1 || accessed != 0 {
		t.Fatalf("scan saw %d visits, %d accessed; want 1, 0", visits, accessed)
	}
	if !e.Preloaded(7) {
		t.Fatal("unaccessed preload bit cleared by scan")
	}

	// After a touch the scan counts it once and clears the bit.
	e.Touch(7)
	accessed = 0
	e.ScanPreloadBits(true, func(_ mem.PageID, acc bool) {
		if acc {
			accessed++
		}
	})
	if accessed != 1 {
		t.Fatalf("scan counted %d accessed preloads, want 1", accessed)
	}
	if e.Preloaded(7) {
		t.Fatal("preload bit survived counting scan")
	}
}

func TestDemandLoadArrivesAccessed(t *testing.T) {
	e := mustNew(t, 4, 100)
	if err := e.Load(1, false); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !e.Accessed(1) {
		t.Fatal("demand-loaded page should carry the access bit (the faulting access touches it)")
	}
}

func TestTouchAbsent(t *testing.T) {
	e := mustNew(t, 4, 100)
	if e.Touch(9) {
		t.Fatal("Touch of absent page = true, want false")
	}
}

// TestInvariantsUnderRandomOperations drives a random mix of loads,
// evictions, touches, and victim selections and checks the structural
// invariants after every step.
func TestInvariantsUnderRandomOperations(t *testing.T) {
	const (
		capacity = 8
		pages    = 64
		steps    = 5000
	)
	r := rng.New(42)
	e := mustNew(t, capacity, pages)
	for i := 0; i < steps; i++ {
		p := mem.PageID(r.Intn(pages))
		switch r.Intn(4) {
		case 0:
			if !e.Present(p) {
				if e.Full() {
					v := e.SelectVictim()
					if v == mem.NoPage {
						t.Fatal("full EPC but no victim")
					}
					e.Evict(v)
				}
				if err := e.Load(p, r.Intn(2) == 0); err != nil {
					t.Fatalf("step %d: Load(%d): %v", i, p, err)
				}
			}
		case 1:
			e.Evict(p)
		case 2:
			e.Touch(p)
		case 3:
			if e.Resident() > 0 {
				if v := e.SelectVictim(); v == mem.NoPage {
					t.Fatal("non-empty EPC but no victim")
				}
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if e.Resident() > capacity {
			t.Fatalf("step %d: resident %d exceeds capacity %d", i, e.Resident(), capacity)
		}
	}
}

func TestBitmapProperties(t *testing.T) {
	f := func(idx []uint16) bool {
		b := NewBitmap(1 << 16)
		set := make(map[uint64]bool)
		for _, i := range idx {
			b.Set(uint64(i))
			set[uint64(i)] = true
		}
		if b.Count() != uint64(len(set)) {
			return false
		}
		for i := range set {
			if !b.Get(i) {
				return false
			}
		}
		for _, i := range idx {
			b.Clear(uint64(i))
		}
		return b.Count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapOutOfRange(t *testing.T) {
	b := NewBitmap(10)
	if b.Get(100) {
		t.Fatal("out-of-range Get = true")
	}
	b.Set(100)   // must not panic
	b.Clear(100) // must not panic
	if b.Count() != 0 {
		t.Fatalf("Count() = %d after out-of-range Set, want 0", b.Count())
	}
}

func TestBitmapLen(t *testing.T) {
	for _, n := range []uint64{1, 63, 64, 65, 1000} {
		if got := NewBitmap(n).Len(); got != n {
			t.Fatalf("NewBitmap(%d).Len() = %d", n, got)
		}
	}
}
