package sim

import (
	"os"
	"runtime"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
	"sgxpreload/internal/workload"
)

// Streaming equivalence: the engine must not be able to tell whether its
// input is a materialized slice or a pull-based stream. These tests pin
// that property for random traces, for the built-in benchmark
// generators, and (via TestStreamSmoke) for trace lengths that could
// never be materialized.

// funcStream wraps a slice behind a StreamFunc so the engine sees an
// opaque iterator rather than its own slice adapter.
func funcStream(trace []mem.Access) mem.Stream {
	i := 0
	return mem.StreamFunc(func() (mem.Access, bool) {
		if i >= len(trace) {
			return mem.Access{}, false
		}
		a := trace[i]
		i++
		return a, true
	})
}

// TestPropertyStreamEqualsSlice: for random traces under every scheme,
// the streamed engine and the materialized-slice engine produce
// identical Results.
func TestPropertyStreamEqualsSlice(t *testing.T) {
	schemes := []Scheme{Baseline, DFP, DFPStop, SIP, Hybrid}
	for _, seed := range []uint64{2, 11, 77, 4242} {
		r := rng.New(seed)
		const pages = 1024
		trace := randomTrace(r, 3000, pages)
		sel := randomSelection(r.Fork())
		for _, scheme := range schemes {
			cfg := Config{
				Scheme: scheme, EPCPages: 192, ELRangePages: pages, Selection: sel,
			}
			slice, err := Run(trace, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			streamed, err := RunStream(funcStream(trace), cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			if slice != streamed {
				t.Errorf("seed %d %s: stream diverges from slice:\n  slice  %+v\n  stream %+v",
					seed, scheme, slice, streamed)
			}
		}
	}
}

// TestPropertySharedStreamEqualsSlice: a multi-enclave run fed by
// streams must match the same run fed by materialized traces.
func TestPropertySharedStreamEqualsSlice(t *testing.T) {
	r := rng.New(31337)
	ta := randomTrace(r, 2500, 700)
	tb := randomTrace(r, 2000, 500)
	mk := func(streamed bool) []Enclave {
		encs := []Enclave{
			{Name: "a", Pages: 700, Scheme: DFPStop},
			{Name: "b", Pages: 500, Scheme: Baseline, BackgroundReclaim: true},
		}
		if streamed {
			encs[0].Stream = funcStream(ta)
			encs[1].Stream = funcStream(tb)
		} else {
			encs[0].Trace = ta
			encs[1].Trace = tb
		}
		return encs
	}
	cfg := SharedConfig{EPCPages: 256}
	slice, err := RunShared(mk(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunShared(mk(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range slice {
		if slice[i] != streamed[i] {
			t.Errorf("enclave %d: stream diverges from slice:\n  slice  %+v\n  stream %+v",
				i, slice[i], streamed[i])
		}
	}
}

// TestWorkloadStreamThroughEngine: the generator coroutine path
// (workload.Stream) must reproduce the materialized benchmark runs.
func TestWorkloadStreamThroughEngine(t *testing.T) {
	for _, bench := range []string{"lbm", "deepsjeng"} {
		w, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Scheme: DFPStop, EPCPages: 2048, ELRangePages: w.ELRangePages()}
		slice, err := Run(w.Generate(workload.Ref), cfg)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := RunStream(w.Stream(workload.Ref), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if slice != streamed {
			t.Errorf("%s: generator stream diverges from Generate:\n  slice  %+v\n  stream %+v",
				bench, slice, streamed)
		}
	}
}

// syntheticStream is an unbounded deterministic page-access generator:
// interleaved sequential sweeps with a strided revisit, the pattern mix
// the benchmarks exhibit, producible forever in O(1) state.
func syntheticStream(pages uint64) mem.Stream {
	var i uint64
	return mem.StreamFunc(func() (mem.Access, bool) {
		i++
		acc := mem.Access{Site: mem.SiteID(1 + i%5), Compute: 2000 + (i*2654435761)%3000}
		if i%13 == 0 {
			acc.Page = mem.PageID((i * 7919) % pages) // strided revisit
		} else {
			acc.Page = mem.PageID(i % pages) // sweep
		}
		return acc, true
	})
}

// TestStreamSmoke drives a 10M-access synthetic sweep through the
// streaming engine under a heap ceiling: peak heap must be independent
// of trace length (the same trace materialized would occupy ~400 MB).
// The guard is wall-clock heavy, so it only runs when
// SGXSIM_STREAMSMOKE=1 (make stream-smoke sets it).
func TestStreamSmoke(t *testing.T) {
	if os.Getenv("SGXSIM_STREAMSMOKE") != "1" {
		t.Skip("set SGXSIM_STREAMSMOKE=1 to run the 10M-access streaming smoke")
	}
	const accesses = 10_000_000
	const pages = 1 << 16
	enc, scfg := Config{
		Scheme: DFPStop, EPCPages: 2048, ELRangePages: pages,
	}.solo()
	enc.Stream = mem.Limit(syntheticStream(pages), accesses)
	eng, err := New([]Enclave{enc}, scfg)
	if err != nil {
		t.Fatal(err)
	}

	heap := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	runtime.GC()
	floor := heap()
	// 64 MiB of slack over the post-build floor: far below the ~400 MB a
	// materialized 10M-access trace would need, far above the engine's
	// working state (EPC tables, pending queue, predictor).
	ceiling := floor + 64<<20

	var peak uint64
	var steps uint64
	for {
		more, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		if steps++; steps%1_000_000 == 0 {
			if h := heap(); h > peak {
				peak = h
			}
			if peak > ceiling {
				t.Fatalf("heap %d after %d accesses exceeds ceiling %d (floor %d): "+
					"streaming run is not O(1) memory", peak, steps, ceiling, floor)
			}
		}
	}
	res := eng.Result(0).Result
	if res.Accesses != accesses {
		t.Fatalf("ran %d accesses, want %d", res.Accesses, accesses)
	}
	if res.Kernel.DemandFaults == 0 {
		t.Fatal("smoke trace produced no faults; the sweep is not exercising paging")
	}
	t.Logf("10M accesses: %d faults, %d preloads started, peak heap %.1f MiB (post-build floor %.1f MiB)",
		res.Kernel.DemandFaults, res.Kernel.PreloadsStarted,
		float64(peak)/(1<<20), float64(floor)/(1<<20))
}

// TestStepAllocsO1: in steady state, an engine Step must not allocate —
// the guard behind the O(1)-allocs-per-access claim. Warm the engine
// past its ring/map growth phase, then measure.
func TestStepAllocsO1(t *testing.T) {
	const pages = 1 << 14
	enc, scfg := Config{
		Scheme: DFPStop, EPCPages: 1024, ELRangePages: pages,
	}.solo()
	enc.Stream = syntheticStream(pages)
	eng, err := New([]Enclave{enc}, scfg)
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200_000; i++ { // warm: EPC full, queues at steady size
		step()
	}
	const batch = 10_000
	perBatch := testing.AllocsPerRun(5, func() {
		for i := 0; i < batch; i++ {
			step()
		}
	})
	if perAccess := perBatch / batch; perAccess > 0.01 {
		t.Errorf("%.4f allocs per access in steady state, want ~0", perAccess)
	}
}

// BenchmarkRunStream measures the streamed engine's per-access cost
// (allocs/op must be ~0; see TestStepAllocsO1 for the hard guard).
func BenchmarkRunStream(b *testing.B) {
	const pages = 1 << 14
	enc, scfg := Config{
		Scheme: DFPStop, EPCPages: 1024, ELRangePages: pages,
	}.solo()
	enc.Stream = syntheticStream(pages)
	eng, err := New([]Enclave{enc}, scfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
