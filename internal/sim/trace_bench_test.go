package sim

import (
	"io"
	"testing"

	"sgxpreload/internal/obs"
)

// BenchmarkRunStreamTraced is BenchmarkRunStream with a StreamSink
// attached: the difference between the two is the full end-to-end cost
// of -trace on a streamed run — event emission, encoding, and the
// double-buffered handoff to the writer goroutine.
func BenchmarkRunStreamTraced(b *testing.B) {
	const pages = 1 << 14
	enc, scfg := Config{
		Scheme: DFPStop, EPCPages: 1024, ELRangePages: pages,
	}.solo()
	enc.Stream = syntheticStream(pages)
	sink := obs.NewStreamSink(io.Discard, obs.FormatJSONL)
	scfg.Hook = sink
	eng, err := New([]Enclave{enc}, scfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
}
