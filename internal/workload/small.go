package workload

import (
	"sgxpreload/internal/mem"
)

// Small-working-set benchmark models (Table 1's first row: cactuBSSN,
// imagick, leela, nab, exchange2). Their footprints fit inside the EPC, so
// after cold start they fault rarely and neither preloading scheme should
// move them — the paper's evaluation focuses on the large-footprint rows,
// using these to check that the schemes do no harm when there is nothing
// to win.

// smallWS builds a compact-footprint workload.
func smallWS(name string, footprint uint64, siteBase mem.SiteID, seqShare float64, compute uint64) *Workload {
	return register(&Workload{
		Name:           name,
		Category:       SmallWS,
		Language:       LangC,
		Instrumentable: true,
		FootprintPages: footprint,
		gen: func(in Input, b *builder) {
			iters := 60000
			if in == Train {
				iters = 15000
			}
			pos := uint64(0)
			for it := 0; it < iters; it++ {
				if b.r.Float64() < seqShare {
					pos = (pos + 1) % footprint
					b.emit(siteBase, mem.PageID(pos), compute)
				} else {
					b.emit(siteBase+1, mem.PageID(b.r.Uint64n(footprint)), compute)
				}
			}
		},
	})
}

// The five small-working-set SPEC CPU2017 benchmarks.
var (
	CactuBSSN = smallWS("cactuBSSN", 1000, 7000, 0.85, 30000)
	Imagick   = smallWS("imagick", 800, 7100, 0.80, 25000)
	Leela     = smallWS("leela", 700, 7200, 0.30, 20000)
	Nab       = smallWS("nab", 1024, 7300, 0.70, 35000)
	Exchange2 = smallWS("exchange2", 256, 7400, 0.20, 15000)
)
