package dfp

import (
	"testing"

	"sgxpreload/internal/mem"
)

// Fuzz targets: arbitrary fault sequences must never panic any predictor
// and must preserve their structural invariants. `go test` runs the seed
// corpus; `go test -fuzz=FuzzPredictors` explores further.

func FuzzPredictors(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 254, 253, 252})
	f.Add([]byte{10, 11, 12, 200, 13, 14, 250, 251})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		cfg.Stop = true
		cfg.StopSlack = 2
		ms, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStride(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mk, err := NewMarkov(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nn, err := NewNextN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range data {
			// Spread bytes over a wide page space, with some adjacency.
			page := mem.PageID(b) * 37
			if i%3 == 0 && i > 0 {
				page = mem.PageID(data[i-1])*37 + 1
			}
			for _, out := range [][]mem.PageID{
				ms.OnFault(page), st.OnFault(page), mk.OnFault(page), nn.OnFault(page),
			} {
				if len(out) > cfg.LoadLength {
					t.Fatalf("prediction longer than LoadLength: %d", len(out))
				}
				for _, p := range out {
					if p == mem.NoPage {
						t.Fatal("predicted the NoPage sentinel")
					}
				}
			}
			if ms.Len() > cfg.StreamListLen {
				t.Fatalf("stream list grew to %d", ms.Len())
			}
			// Exercise the stop machinery.
			ms.NotePreloaded(1)
			if i%5 == 0 {
				ms.EvaluateStop()
			}
			if ms.Stopped() && ms.OnFault(page) != nil {
				t.Fatal("stopped predictor predicted")
			}
		}
	})
}
