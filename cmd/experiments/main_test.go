package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllIDsKnown(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range all() {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	// Every paper artifact must be present.
	for _, id := range []string{
		"motivation", "fig3", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "table1", "table2",
	} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-only", "motivation"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slowdown") {
		t.Errorf("motivation output incomplete:\n%s", buf.String())
	}
}

func TestRunWritesOutdir(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-only", "table2", "-outdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "instrumentation points") {
		t.Errorf("table2 report incomplete:\n%s", data)
	}
}

func TestUnknownIDRejected(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-only", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
