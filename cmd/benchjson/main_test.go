package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: sgxpreload/internal/epc
BenchmarkEPCLookup-8    41293782    28.77 ns/op    0 B/op    0 allocs/op
BenchmarkEPCPresent-8   100000000    6.460 ns/op
PASS
ok   sgxpreload/internal/epc 3.1s
BenchmarkHandleFault-8   2359641   507.5 ns/op   16 B/op   0 allocs/op
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if results[0].Name != "BenchmarkEPCLookup" || results[1].Name != "BenchmarkEPCPresent" ||
		results[2].Name != "BenchmarkHandleFault" {
		t.Fatalf("names = %q, %q, %q", results[0].Name, results[1].Name, results[2].Name)
	}
	if results[0].NsPerOp != 28.77 || results[0].Iterations != 41293782 {
		t.Fatalf("EPCLookup = %+v", results[0])
	}
	if results[0].AllocsPerOp == nil || *results[0].AllocsPerOp != 0 {
		t.Fatalf("EPCLookup allocs = %v, want 0", results[0].AllocsPerOp)
	}
	if results[1].BytesPerOp != nil || results[1].AllocsPerOp != nil {
		t.Fatal("EPCPresent without -benchmem should have null memory fields")
	}
	if results[2].NsPerOp != 507.5 {
		t.Fatalf("HandleFault ns/op = %v", results[2].NsPerOp)
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok pkg 1s\n--- random noise ---\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise", len(results))
	}
}

func TestRunCarriesBaselineForward(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")

	// First run: no baseline file exists yet; that must not be an error.
	if err := run(strings.NewReader(sample), out, filepath.Join(dir, "missing.json")); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(first), `"baseline"`) {
		t.Fatal("first run emitted a baseline section from a missing file")
	}

	// Second run against updated numbers: prior results become baseline.
	updated := strings.ReplaceAll(sample, "28.77", "14.02")
	if err := run(strings.NewReader(updated), out, out); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(second)
	if !strings.Contains(s, `"baseline"`) {
		t.Fatal("second run lost the baseline section")
	}
	if !strings.Contains(s, "14.02") || !strings.Contains(s, "28.77") {
		t.Fatalf("output missing current or baseline ns/op:\n%s", s)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("no benchmarks here\n"), "-", ""); err == nil {
		t.Fatal("run accepted input with no benchmark lines")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	doc := `{
  "results": [
    {"name": "BenchmarkFast", "iterations": 100, "ns_per_op": 95},
    {"name": "BenchmarkNew", "iterations": 100, "ns_per_op": 50},
    {"name": "BenchmarkSlow", "iterations": 100, "ns_per_op": 200}
  ],
  "baseline": [
    {"name": "BenchmarkFast", "iterations": 100, "ns_per_op": 100},
    {"name": "BenchmarkSlow", "iterations": 100, "ns_per_op": 100}
  ]
}
`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := compare(&out, path, 15)
	if err == nil {
		t.Fatal("compare accepted a 100% regression with a 15% budget")
	}
	if !strings.Contains(err.Error(), "BenchmarkSlow") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	text := out.String()
	for _, want := range []string{"REGRESSION", "(new, no baseline)", "-5.0%", "+100.0%"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
	// A generous budget accepts the same document.
	out.Reset()
	if err := compare(&out, path, 150); err != nil {
		t.Errorf("compare with 150%% budget failed: %v", err)
	}
}

func TestCompareWithoutBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	doc := `{"results": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": 1}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := compare(&out, path, 15); err != nil {
		t.Fatalf("compare without baseline should succeed, got %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Errorf("missing no-baseline note:\n%s", out.String())
	}
}
