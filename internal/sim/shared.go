package sim

import (
	"fmt"

	"sgxpreload/internal/channel"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/kernel"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sip"
)

// Multi-enclave co-simulation. The paper's §5.6 observes that EPC sharing
// among processes is supported by the hardware and that "each enclave can
// handle its preloading independently... however, EPC contention becomes
// a serious issue". This runner models exactly that: N enclaves, each
// with its own fault history, preload queue, instrumentation, bitmap
// view, and counters, contending for one physical EPC and one load
// channel. Each enclave's virtual pages are mapped into a disjoint slice
// of the shared page space.

// Enclave describes one co-running enclave.
type Enclave struct {
	// Name labels the enclave in results.
	Name string
	// Trace is the enclave's access trace (pages relative to its own
	// ELRANGE, i.e. starting at 0).
	Trace []mem.Access
	// Pages is the enclave's ELRANGE size; every trace page must be
	// below it.
	Pages uint64
	// Scheme is the enclave's preloading configuration.
	Scheme Scheme
	// DFP tunables (zero value = paper defaults).
	DFP dfp.Config
	// Selection carries the enclave's SIP instrumentation sites.
	Selection *sip.Selection
}

// SharedConfig configures the shared platform.
type SharedConfig struct {
	// Costs is the cycle cost model (zero = defaults).
	Costs mem.CostModel
	// EPCPages is the total physical EPC shared by all enclaves.
	EPCPages int
	// ScanPeriod, MaxPending, and EvictPolicy as in Config.
	ScanPeriod  uint64
	MaxPending  int
	EvictPolicy epc.Policy
	// Hook, when non-nil, receives every enclave's event timeline (see
	// package obs). Pages in shared-run events are global — each
	// enclave's slice of the shared space — so the enclaves remain
	// distinguishable on one timeline.
	Hook obs.Hook
}

// SharedResult is one enclave's outcome of a shared run.
type SharedResult struct {
	Name string
	Result
}

// enclaveState is the per-enclave execution cursor.
type enclaveState struct {
	enc    Enclave
	kern   *kernel.Kernel
	bitmap *epc.Bitmap
	base   mem.PageID // offset of the enclave's range in shared space
	idx    int        // next trace access
	t      uint64     // enclave-local virtual clock
	res    Result
}

// RunShared co-simulates the enclaves on one shared EPC. Enclaves advance
// in global virtual-time order (the enclave with the smallest clock
// executes its next access), so channel serialization and evictions
// interleave exactly as a time-sliced platform would interleave them.
func RunShared(enclaves []Enclave, cfg SharedConfig) ([]SharedResult, error) {
	if len(enclaves) == 0 {
		return nil, fmt.Errorf("sim: RunShared needs at least one enclave")
	}
	if cfg.Costs == (mem.CostModel{}) {
		cfg.Costs = mem.DefaultCostModel()
	}
	if err := cfg.Costs.Validate(); err != nil {
		return nil, err
	}

	var total uint64
	for i, e := range enclaves {
		if e.Pages == 0 {
			return nil, fmt.Errorf("sim: enclave %d (%s) declares zero pages", i, e.Name)
		}
		total += e.Pages
	}
	shared, err := epc.NewWithPolicy(cfg.EPCPages, total, cfg.EvictPolicy)
	if err != nil {
		return nil, err
	}
	channels := channel.NewGroup(len(enclaves))

	states := make([]*enclaveState, len(enclaves))
	var base mem.PageID
	for i, e := range enclaves {
		kcfg := kernel.Config{
			Costs:        cfg.Costs,
			EPCPages:     cfg.EPCPages,
			ELRangePages: total,
			ScanPeriod:   cfg.ScanPeriod,
			MaxPending:   cfg.MaxPending,
			RangeLo:      base,
			RangeHi:      base + mem.PageID(e.Pages),
			Hook:         cfg.Hook,
		}
		if e.Scheme.UsesDFP() {
			d := e.DFP
			if d.StreamListLen == 0 && d.LoadLength == 0 {
				d = dfp.DefaultConfig()
			}
			if e.Scheme == DFPStop || e.Scheme == Hybrid {
				d.Stop = true
			}
			kcfg.DFP = &d
		}
		k, err := kernel.NewShared(kcfg, shared, channels[i])
		if err != nil {
			return nil, fmt.Errorf("sim: enclave %s: %w", e.Name, err)
		}
		states[i] = &enclaveState{
			enc:    e,
			kern:   k,
			bitmap: shared.PresenceBitmap(),
			base:   base,
			res:    Result{Scheme: e.Scheme},
		}
		base += mem.PageID(e.Pages)
	}

	// Co-simulate: always advance the enclave with the smallest clock.
	for {
		var next *enclaveState
		for _, st := range states {
			if st.idx >= len(st.enc.Trace) {
				continue
			}
			if next == nil || st.t+st.enc.Trace[st.idx].Compute < next.t+next.enc.Trace[next.idx].Compute {
				next = st
			}
		}
		if next == nil {
			break
		}
		if err := next.step(cfg.Costs); err != nil {
			return nil, err
		}
	}

	out := make([]SharedResult, len(states))
	for i, st := range states {
		st.res.Cycles = st.t
		st.res.Kernel = st.kern.Stats()
		out[i] = SharedResult{Name: st.enc.Name, Result: st.res}
	}
	return out, nil
}

// step executes one access of the enclave's trace.
func (st *enclaveState) step(costs mem.CostModel) error {
	acc := st.enc.Trace[st.idx]
	st.idx++
	if uint64(acc.Page) >= st.enc.Pages {
		return fmt.Errorf("sim: enclave %s access %d touches page %d outside its %d pages",
			st.enc.Name, st.idx-1, acc.Page, st.enc.Pages)
	}
	page := st.base + acc.Page

	st.t += acc.Compute
	st.res.ComputeCycles += acc.Compute
	st.res.Accesses++
	st.kern.MaybeScan(st.t)
	st.kern.Sync(st.t)

	var sel *sip.Selection
	if st.enc.Scheme.UsesSIP() {
		sel = st.enc.Selection
	}
	if sel.Instrumented(acc.Site) {
		st.t += costs.BitmapCheck
		st.res.SIPChecks++
		if st.bitmap.Get(uint64(page)) {
			st.res.SIPPresent++
		} else {
			st.t += costs.Notify
			st.t = st.kern.NotifyLoad(st.t, page)
		}
	}

	if st.kern.Touch(page) {
		st.res.Hits++
		st.t += costs.Hit
		return nil
	}
	st.t = st.kern.HandleFault(st.t, page)
	st.t += costs.Hit
	return nil
}
