// Package obs is the engine's structured event-recording subsystem.
//
// The paper's two key mechanisms — the DFP-stop safety valve (§4.2) and
// the single non-preemptible load channel (§3.1, §5.6) — are temporal
// phenomena: end-of-run aggregates say *whether* the valve fired or *how
// many* preloads were dropped, but not when accuracy decayed, how long
// faults stalled behind the channel, or how contended the channel was
// over the run. This package defines the typed event stream the engine
// emits (package channel, kernel, dfp, and sim are all instrumented),
// a Recorder that collects it, deterministic JSONL/CSV exports, and the
// derived metrics — channel utilization, fault-latency histogram,
// preload-accuracy series, EPC occupancy, per-stream lifecycles — that
// make paging-policy behavior debuggable.
//
// Observability is strictly opt-in: every emission site in the engine is
// guarded by a nil check on the installed Hook, so a run with no hook
// pays only untaken branches and the simulated virtual time is identical
// with and without a hook installed (the hook observes the run; it never
// participates in it).
package obs

import (
	"sgxpreload/internal/mem"
)

// Kind identifies an event type. The constants document which Event
// fields each kind populates; unused fields are zero.
type Kind uint8

// Event kinds. "T" below is the event's virtual-cycle timestamp.
const (
	// KindNone is the zero Kind; never emitted.
	KindNone Kind = iota

	// KindFaultBegin: an enclave page fault was raised.
	// T = fault cycle; Page = faulting page.
	KindFaultBegin
	// KindFaultEnd: the faulting thread resumed inside the enclave.
	// T = resume cycle; Page = faulting page; V1 = fault latency in
	// cycles (resume - raise); V2 = a FaultClass.
	KindFaultEnd

	// KindPreloadQueue: a predicted page was handed to the preload
	// worker. T = eligible-from cycle; Page = page; Batch = prediction
	// batch tag.
	KindPreloadQueue
	// KindLoadStart: a transfer occupied the load channel.
	// T = start cycle; Page = page (mem.NoPage for a background
	// write-back burst); Batch = batch tag (0 for demand loads);
	// V1 = completion cycle; V2 = 1 for a speculative (preload)
	// transfer, 0 for a demand transfer.
	KindLoadStart
	// KindLoadComplete: the channel retired a transfer.
	// T = completion cycle; Page, Batch, V2 as in KindLoadStart.
	KindLoadComplete
	// KindPreloadAbort: a queued preload was dropped before starting.
	// T = drop cycle; Page = page; Batch = batch tag; V1 = an
	// AbortReason.
	KindPreloadAbort

	// KindEvict: a victim page was written back (EWB).
	// T = eviction cycle; Page = victim; V1 = 1 when evicted by the
	// background reclaimer, 0 on the synchronous fault path.
	KindEvict

	// KindSIPNotify: a SIP preload notification was serviced.
	// T = notify cycle; Page = page; V1 = wait latency in cycles;
	// V2 = a NotifyClass.
	KindSIPNotify

	// KindScan: the service thread scanned the EPC.
	// T = scan cycle; V1 = preloaded pages found accessed by this scan;
	// V2 = resident EPC frames at scan time.
	KindScan
	// KindAccuracy: the DFP accuracy counters after a scan.
	// T = scan cycle; V1 = PreloadCounter; V2 = AccPreloadCounter.
	KindAccuracy
	// KindDFPStop: the global abort (safety valve) fired.
	// T = trip cycle; V1 = PreloadCounter; V2 = AccPreloadCounter.
	KindDFPStop

	// KindStreamStart: the predictor opened a new stream.
	// Page = first page; Batch = stream id.
	KindStreamStart
	// KindStreamHit: a fault extended a recognized stream.
	// Page = faulting page; Batch = stream id; V1 = pages predicted.
	KindStreamHit
	// KindStreamEnd: a stream was evicted from the LRU stream list.
	// Batch = stream id; V1 = faults that extended it over its life.
	KindStreamEnd

	// KindQuotaRebalance: the EPC quota arbiter adopted a new partition.
	// One event per enclave, emitted in enclave-index order at each
	// rebalance (and once per enclave at admission under any non-global
	// policy). Batch = enclave index; V1 = the enclave's new frame
	// quota; V2 = its resident frame count at that instant. Only emitted
	// when a non-global quota policy is active, so default traces are
	// byte-identical to earlier schema revisions.
	KindQuotaRebalance

	kindCount // number of kinds; keep last
)

// String returns the event kind's wire name (used in JSONL/CSV output).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

var kindNames = [...]string{
	KindNone:           "none",
	KindFaultBegin:     "fault_begin",
	KindFaultEnd:       "fault_end",
	KindPreloadQueue:   "preload_queue",
	KindLoadStart:      "load_start",
	KindLoadComplete:   "load_complete",
	KindPreloadAbort:   "preload_abort",
	KindEvict:          "evict",
	KindSIPNotify:      "sip_notify",
	KindScan:           "scan",
	KindAccuracy:       "accuracy",
	KindDFPStop:        "dfp_stop",
	KindStreamStart:    "stream_start",
	KindStreamHit:      "stream_hit",
	KindStreamEnd:      "stream_end",
	KindQuotaRebalance: "quota_rebalance",
}

// kindByName is the wire-name → Kind reverse index used by trace
// parsers; built once from kindNames.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, kindCount)
	for k := KindFaultBegin; k < kindCount; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// KindByName resolves a wire name (as written by the JSONL/CSV exports)
// back to its Kind. The second result is false for unknown names and for
// "none", which is never emitted.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// KindByWire is KindByName over a byte slice. The string conversion
// inside the map index does not allocate, so byte-level trace parsers
// can resolve kinds without per-line garbage.
func KindByWire(name []byte) (Kind, bool) {
	k, ok := kindByName[string(name)]
	return k, ok
}

// Kinds returns every emitted kind in declaration order; reports iterate
// it so their output is deterministic.
func Kinds() []Kind {
	out := make([]Kind, 0, kindCount-1)
	for k := KindFaultBegin; k < kindCount; k++ {
		out = append(out, k)
	}
	return out
}

// FaultClass is KindFaultEnd's V2: how the fault was resolved.
const (
	// FaultDemand: the handler performed the ELDU itself.
	FaultDemand uint64 = iota
	// FaultPresentOnArrival: a preload completed during the AEX.
	FaultPresentOnArrival
	// FaultInflightWait: the page was mid-transfer; the handler waited.
	FaultInflightWait
	// FaultInWindowAbort: the fault hit a predicted-but-unstarted page
	// and cancelled the remainder of its batch before demand-loading.
	FaultInWindowAbort
)

// NotifyClass is KindSIPNotify's V2: how the notification was resolved.
const (
	// NotifyLoaded: the kernel demand-loaded the page.
	NotifyLoaded uint64 = iota
	// NotifyResident: the page was already resident.
	NotifyResident
	// NotifyInflight: the page was mid-transfer; the thread waited.
	NotifyInflight
)

// AbortReason is KindPreloadAbort's V1: why a queued preload died.
const (
	// AbortOverflow: a stale batch was pushed out past MaxPending.
	AbortOverflow uint64 = 1
	// AbortInWindow: a fault landed in the predicted window and
	// cancelled the batch remainder.
	AbortInWindow uint64 = 2
	// AbortSIP: a SIP notification demand-loaded the queued page.
	AbortSIP uint64 = 3
	// AbortStop: the DFP-stop global abort abandoned the backlog.
	AbortStop uint64 = 4
	// AbortResident: the page was already resident when the preload
	// worker reached it.
	AbortResident uint64 = 5
)

// Event is one engine occurrence on the virtual timeline. The field
// meanings per kind are documented on the Kind constants.
type Event struct {
	// T is the virtual-cycle timestamp.
	T uint64
	// Kind is the event type.
	Kind Kind
	// Page is the subject page, or mem.NoPage when not applicable.
	Page mem.PageID
	// Batch tags a prediction batch or stream, 0 when not applicable.
	Batch uint64
	// V1 and V2 are kind-specific values.
	V1, V2 uint64
}

// Hook receives engine events. Implementations must not retain pointers
// into the engine and must be cheap: the engine calls Emit synchronously
// from its hot paths. A nil Hook disables observability entirely — every
// emission site nil-checks before constructing its event.
type Hook interface {
	Emit(e Event)
}

// clocked stamps events whose T is zero with the driver's current
// virtual time. The DFP predictor has no clock of its own (it sees only
// the fault-page sequence), so the kernel wraps the run's hook with its
// clock before handing it to the predictor.
type clocked struct {
	h   Hook
	now *uint64
}

// Clocked returns a Hook that forwards to h after stamping zero
// timestamps from *now. The pointer is read at Emit time; the engine is
// single-goroutine per run, so no synchronization is needed.
func Clocked(h Hook, now *uint64) Hook {
	return clocked{h: h, now: now}
}

func (c clocked) Emit(e Event) {
	if e.T == 0 {
		e.T = *c.now
	}
	c.h.Emit(e)
}

// Tee fans events out to several hooks in order; nil entries are
// skipped. It returns nil when no non-nil hook remains, so callers can
// keep the nil-disables-everything convention.
func Tee(hooks ...Hook) Hook {
	live := make([]Hook, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Hook

func (t tee) Emit(e Event) {
	for _, h := range t {
		h.Emit(e)
	}
}
