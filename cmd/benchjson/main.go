// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document so benchmark numbers can be committed and diffed
// across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson -out BENCH_engine.json
//
// With -baseline FILE, the "results" section of FILE (or, if FILE has no
// results, its top level) is carried into the output as "baseline", so a
// committed BENCH_engine.json keeps the previous run's numbers alongside
// the current ones. A missing baseline file is not an error — the first
// run simply has no baseline.
//
// With -compare FILE, stdin is ignored: the tool diffs FILE's results
// against its own baseline section — both were measured on the same
// machine by consecutive `make bench-json` runs, so the comparison is
// meaningful — prints the per-benchmark ns/op deltas, and exits nonzero
// when any benchmark regressed by more than -max-regress percent
// (default 15).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Pointer fields stay null in the JSON when
// the benchmark was not run with -benchmem.
type Result struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

type Document struct {
	Results  []Result `json:"results"`
	Baseline []Result `json:"baseline,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkEPCLookup-8   41293782   28.77 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so results compare across machines.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations %q: %w", m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("ns/op %q: %w", m[3], err)
		}
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("B/op %q: %w", m[4], err)
			}
			res.BytesPerOp = &b
		}
		if m[5] != "" {
			a, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("allocs/op %q: %w", m[5], err)
			}
			res.AllocsPerOp = &a
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Stable order regardless of package test order.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// loadBaseline reads a prior benchjson document (or a bare result list)
// and returns its current results, to be re-emitted as the baseline.
func loadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err == nil && len(doc.Results) > 0 {
		return doc.Results, nil
	}
	var bare []Result
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("%s: not a benchjson document: %w", path, err)
	}
	return bare, nil
}

func run(in io.Reader, outPath, baselinePath string) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	doc := Document{Results: results}
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			return err
		}
		doc.Baseline = base
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

// compare diffs a benchjson document's results against its baseline
// section and reports per-benchmark ns/op deltas. It returns an error
// when any benchmark is more than maxRegress percent slower than its
// baseline.
func compare(w io.Writer, path string, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a benchjson document: %w", path, err)
	}
	if len(doc.Baseline) == 0 {
		fmt.Fprintf(w, "%s has no baseline section; nothing to compare\n", path)
		return nil
	}
	base := make(map[string]Result, len(doc.Baseline))
	for _, b := range doc.Baseline {
		base[b.Name] = b
	}
	var regressed []string
	compared := 0
	for _, r := range doc.Results {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(w, "%-50s %41s\n", r.Name, "(new, no baseline)")
			continue
		}
		compared++
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		marker := ""
		if delta > maxRegress {
			marker = "  REGRESSION"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(w, "%-50s %12.1f -> %12.1f ns/op  %+6.1f%%%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, delta, marker)
	}
	fmt.Fprintf(w, "compared %d benchmarks against baseline, %d regressed beyond %.0f%%\n",
		compared, len(regressed), maxRegress)
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs baseline: %s",
			len(regressed), maxRegress, strings.Join(regressed, ", "))
	}
	return nil
}

func main() {
	out := flag.String("out", "-", "output file (default stdout)")
	baseline := flag.String("baseline", "", "prior benchjson file whose results become the baseline section")
	comparePath := flag.String("compare", "", "compare FILE's results against its baseline section instead of reading stdin")
	maxRegress := flag.Float64("max-regress", 15, "with -compare, fail when ns/op regresses by more than this percentage")
	flag.Parse()
	if *comparePath != "" {
		if err := compare(os.Stdout, *comparePath, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, *out, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
