package experiments

import (
	"math"
	"strings"
	"testing"

	"sgxpreload/internal/epc/arbiter"
)

// TestEPCPartition pins the study's headline: on the hog-skew grid,
// adaptive partitioning reduces the starved enclave's fault p99 below
// global CLOCK's — the quota bounds the hog's theft, so the smalls'
// faults stop queueing behind its storm.
func TestEPCPartition(t *testing.T) {
	a, err := EPCPartition(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(a.Policies) || len(a.Policies) != 4 {
		t.Fatalf("got %d results for %d policies, want 4", len(a.Results), len(a.Policies))
	}
	for pi, q := range a.Policies {
		if len(a.Results[pi]) != len(a.Names) {
			t.Fatalf("quota %v: %d enclave results, want %d", q, len(a.Results[pi]), len(a.Names))
		}
		for e, res := range a.Results[pi] {
			if res.Accesses == 0 || res.Hits+res.Kernel.DemandFaults != res.Accesses {
				t.Errorf("quota %v enclave %s: conservation violated", q, res.Name)
			}
			quota := a.Quotas[pi][e]
			if q == arbiter.Global && quota != 0 {
				t.Errorf("Global policy recorded quota %d for %s", quota, res.Name)
			}
			if q != arbiter.Global && quota < 1 {
				t.Errorf("quota %v enclave %s: final quota %d below the floor", q, res.Name, quota)
			}
		}
	}

	globalP99 := a.StarvedP99(arbiter.Global)
	adaptiveP99 := a.StarvedP99(arbiter.Adaptive)
	if math.IsNaN(globalP99) || math.IsNaN(adaptiveP99) {
		t.Fatalf("starved p99 undefined: global %v, adaptive %v (the grid must fault)", globalP99, adaptiveP99)
	}
	if !(adaptiveP99 < globalP99) {
		t.Errorf("adaptive starved-enclave p99 %.0f is not below global CLOCK's %.0f", adaptiveP99, globalP99)
	}

	out := a.String()
	for _, want := range []string{"quota", "fault-p99", "global", "adaptive", "lbm", "worst small-enclave"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
