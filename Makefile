# Standard-library-only Go module; these targets are the whole toolchain.

GO ?= go

.PHONY: build test race bench bench-micro bench-json bench-compare bench-smoke \
	verify verify-obs replay-smoke stream-smoke trace-smoke fleet-smoke \
	spec-smoke quota-smoke check-docs

# The fault-servicing hot-path microbenchmarks (channel deque, EPC page
# table, end-to-end HandleFault).
BENCH_MICRO = BenchmarkPendingQueue|BenchmarkPendingMembership|BenchmarkEPCLookup|BenchmarkEPCPresent|BenchmarkHandleFault

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel-vs-sequential speedup benchmark from the experiment
# engine; compare the two lines' ns/op (>= 2x apart on >= 4 cores).
bench:
	$(GO) test ./internal/experiments/ -run '^$$' -bench 'BenchmarkRunAll' -benchtime 2x

bench-micro:
	$(GO) test ./internal/channel/ ./internal/epc/ ./internal/kernel/ \
		-run '^$$' -bench '$(BENCH_MICRO)' -benchmem

# Regenerate BENCH_engine.json: current microbenchmark + RunAll +
# streamed-engine + trace-I/O numbers, with the previous committed
# numbers carried forward as the baseline.
bench-json:
	{ $(GO) test ./internal/channel/ ./internal/epc/ ./internal/kernel/ \
		-run '^$$' -bench '$(BENCH_MICRO)' -benchmem ; \
	  $(GO) test ./internal/sim/ -run '^$$' -bench 'BenchmarkRunStream|BenchmarkStep' -benchmem ; \
	  $(GO) test ./internal/obs/ -run '^$$' -bench 'BenchmarkTraceWrite|BenchmarkStreamSink' -benchmem ; \
	  $(GO) test ./internal/replay/ -run '^$$' -bench 'BenchmarkTraceParse' -benchmem ; \
	  $(GO) test ./internal/experiments/ -run '^$$' -bench 'BenchmarkRunAll' -benchtime 2x ; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_engine.json -out BENCH_engine.json

# Diff the committed BENCH_engine.json against its own baseline section
# (both measured on the same machine by consecutive bench-json runs).
# The nanosecond-scale microbenches swing 20-40% run-to-run on shared
# vCPUs, so the automated gate uses a 50% budget — loose enough to ride
# out scheduler noise, tight enough to catch a real hot-path regression
# (dropping the zero-alloc trace encoder, for instance, is +580%).
# Tighten with `go run ./cmd/benchjson -compare BENCH_engine.json`
# (15% default) when measuring on quiet hardware.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_engine.json -max-regress 50

# One fast iteration of each benchmark; compilation + smoke for CI.
bench-smoke:
	$(GO) test ./internal/channel/ ./internal/epc/ ./internal/kernel/ ./internal/experiments/ \
		-run '^$$' -bench . -benchtime 1x

# Observability gate: build, race-test the instrumented packages, and
# measure the hook plumbing (a no-op hook must stay within 15% of a nil
# hook; the guard is wall-clock based, hence opt-in via env).
verify-obs:
	$(GO) build ./...
	$(GO) test -race ./internal/obs/ ./internal/channel/ ./internal/kernel/ ./internal/dfp/ ./internal/sim/
	SGXSIM_HOOKGUARD=1 $(GO) test ./internal/sim/ -run TestHookOverheadGuard -v

# CLI-level replay acceptance: trace a run, replay the trace, and
# require the two metrics reports to be byte-identical.
replay-smoke:
	rm -rf .replay-smoke && mkdir -p .replay-smoke
	$(GO) run ./cmd/sgxsim -bench cactuBSSN -scheme dfp-stop \
		-trace .replay-smoke/run.jsonl -metrics-out .replay-smoke/live.txt
	$(GO) run ./cmd/sgxsim -replay .replay-smoke/run.jsonl \
		-metrics-out .replay-smoke/replayed.txt
	cmp .replay-smoke/live.txt .replay-smoke/replayed.txt
	$(GO) run ./cmd/sgxsim -diff .replay-smoke/run.jsonl .replay-smoke/run.jsonl \
		| grep -q 'timelines:           identical'
	rm -rf .replay-smoke

# Streaming acceptance: a 10M-access pull-based run must finish with
# peak heap independent of trace length (the materialized equivalent is
# ~400 MB), and the per-step allocation guard must hold.
stream-smoke:
	SGXSIM_STREAMSMOKE=1 $(GO) test ./internal/sim/ \
		-run 'TestStreamSmoke|TestStepAllocsO1' -v

# Traced-streaming acceptance: a 10M-access streamed run with -trace
# active must hold peak heap within a fixed ceiling (the StreamSink never
# accumulates the timeline), and both trace formats must replay to
# byte-identical metrics reports.
trace-smoke:
	SGXSIM_TRACESMOKE=1 $(GO) test ./cmd/sgxsim/ -run TestTraceSmoke -v

# Cluster-fleet acceptance: a small timed-arrival fleet under each
# placement policy, with the report required byte-identical between
# sequential (-parallel 1) and parallel (-parallel 8) host advancement.
FLEET_SMOKE_ARGS = -bench leela,nab,exchange2,leela -fleet 2 -arrival-period 500000

fleet-smoke:
	rm -rf .fleet-smoke && mkdir -p .fleet-smoke
	for p in round-robin least-loaded pressure affinity; do \
		$(GO) run ./cmd/sgxsim $(FLEET_SMOKE_ARGS) -fleet-policy $$p -parallel 1 \
			> .fleet-smoke/$$p.seq.txt || exit 1; \
		$(GO) run ./cmd/sgxsim $(FLEET_SMOKE_ARGS) -fleet-policy $$p -parallel 8 \
			> .fleet-smoke/$$p.par.txt || exit 1; \
		cmp .fleet-smoke/$$p.seq.txt .fleet-smoke/$$p.par.txt || exit 1; \
		grep -q 'fleet-wide fault latency' .fleet-smoke/$$p.seq.txt || exit 1; \
	done
	rm -rf .fleet-smoke

# Arrival-spec acceptance: the golden manifest must match the committed
# fixture, and the compiled spec run through the cluster must be
# byte-identical between sequential and 8-way host advancement.
SPEC_SMOKE_ARGS = -spec internal/workload/spec/testdata/fixture.json \
	-fleet 2 -fleet-policy affinity -scheme dfp-stop

spec-smoke:
	rm -rf .spec-smoke && mkdir -p .spec-smoke
	$(GO) test ./internal/workload/spec/ -run TestGoldenManifest -count=1
	$(GO) run ./cmd/sgxsim $(SPEC_SMOKE_ARGS) -parallel 1 > .spec-smoke/seq.txt
	$(GO) run ./cmd/sgxsim $(SPEC_SMOKE_ARGS) -parallel 8 > .spec-smoke/par.txt
	cmp .spec-smoke/seq.txt .spec-smoke/par.txt
	grep -q 'fixture-two-cohorts: 26 launches' .spec-smoke/seq.txt
	rm -rf .spec-smoke

# EPC-quota acceptance: the cluster grid under each -quota policy, with
# the report required byte-identical between sequential and parallel
# host advancement, and the global policy required byte-identical to a
# run with no -quota flag at all (quotas off = the pre-arbiter engine).
quota-smoke:
	rm -rf .quota-smoke && mkdir -p .quota-smoke
	$(GO) run ./cmd/sgxsim $(FLEET_SMOKE_ARGS) -parallel 1 > .quota-smoke/none.txt
	for q in global static prop adaptive; do \
		$(GO) run ./cmd/sgxsim $(FLEET_SMOKE_ARGS) -quota $$q -parallel 1 \
			> .quota-smoke/$$q.seq.txt || exit 1; \
		$(GO) run ./cmd/sgxsim $(FLEET_SMOKE_ARGS) -quota $$q -parallel 8 \
			> .quota-smoke/$$q.par.txt || exit 1; \
		cmp .quota-smoke/$$q.seq.txt .quota-smoke/$$q.par.txt || exit 1; \
	done
	cmp .quota-smoke/none.txt .quota-smoke/global.seq.txt
	grep -q 'quota' .quota-smoke/adaptive.seq.txt
	rm -rf .quota-smoke

# Docs drift gate: every cmd/sgxsim flag must be mentioned in at least
# one of README.md, OBSERVABILITY.md, EXPERIMENTS.md, or WORKLOADS.md,
# and every registered workload must appear (backtick-quoted) in
# WORKLOADS.md's catalog.
check-docs:
	@missing=0; \
	for f in $$(sed -n 's/.*fs\.\(String\|Bool\|Int\|Float64\)("\([a-z-]*\)".*/\2/p' cmd/sgxsim/main.go); do \
		grep -q -e "-$$f" README.md OBSERVABILITY.md EXPERIMENTS.md WORKLOADS.md || \
			{ echo "flag -$$f undocumented in README.md/OBSERVABILITY.md/EXPERIMENTS.md/WORKLOADS.md"; missing=1; }; \
	done; \
	for w in $$($(GO) run ./cmd/sgxsim -list | awk '{print $$1}'); do \
		grep -q -e "\`$$w\`" WORKLOADS.md || \
			{ echo "workload $$w missing from WORKLOADS.md"; missing=1; }; \
	done; \
	[ $$missing -eq 0 ] && echo "check-docs: all cmd/sgxsim flags and workloads documented"

# The full pre-merge gate.
verify: verify-obs stream-smoke trace-smoke fleet-smoke spec-smoke quota-smoke check-docs
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
