package obs

import (
	"fmt"
	"io"

	"sgxpreload/internal/mem"
)

// Trace schema contract. Every exported timeline starts with a header
// line naming the schema and version, so a reader can refuse traces it
// does not understand instead of silently misparsing them after a field
// change. internal/replay enforces both values when loading a trace.
const (
	// TraceSchema names the on-disk trace format.
	TraceSchema = "sgxpreload-trace"
	// TraceVersion is the current trace format version. Bump it on any
	// change to the event line shape or field semantics.
	TraceVersion = 1
)

// TraceHeaderJSONL returns the header line (without trailing newline)
// that WriteJSONL emits before the first event.
func TraceHeaderJSONL() string {
	return fmt.Sprintf(`{"schema":%q,"version":%d,"fields":["t","kind","page","batch","v1","v2"]}`,
		TraceSchema, TraceVersion)
}

// TraceHeaderCSV returns the comment line (without trailing newline)
// that WriteCSV emits before the column header.
func TraceHeaderCSV() string {
	return fmt.Sprintf("# %s version=%d", TraceSchema, TraceVersion)
}

// TraceColumnsCSV is the CSV column header row (without trailing
// newline) that follows the schema comment.
const TraceColumnsCSV = "t,kind,page,batch,v1,v2"

// Recorder is the standard Hook: it appends every event to an in-memory
// timeline in emission order. The engine is single-goroutine per run, so
// the Recorder needs no locking; one Recorder must observe one run.
//
// Emission order is causal order, not timestamp order: a completion the
// kernel retires lazily carries the (earlier) cycle it finished at. The
// derived metrics in this package handle that; consumers that need a
// time-sorted view should sort a copy by T.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Hook.
func (r *Recorder) Emit(e Event) { r.events = append(r.events, e) }

// Events returns the recorded timeline (the recorder's own slice; do not
// mutate).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards the timeline, keeping the backing array.
func (r *Recorder) Reset() { r.events = r.events[:0] }

// pageField renders a PageID for export: mem.NoPage (the background
// write-back sentinel) becomes -1 so consumers need no 64-bit sentinel
// knowledge.
func pageField(p mem.PageID) int64 {
	if p == mem.NoPage {
		return -1
	}
	return int64(p)
}

// WriteJSONL writes the timeline as JSON Lines: one schema header line,
// then one event per line with a fixed field order, so identical runs
// produce identical bytes:
//
//	{"schema":"sgxpreload-trace","version":1,"fields":["t","kind","page","batch","v1","v2"]}
//	{"t":123,"kind":"fault_begin","page":42,"batch":0,"v1":0,"v2":0}
func (r *Recorder) WriteJSONL(w io.Writer) error { return WriteJSONL(w, r.events) }

// WriteCSV writes the timeline as CSV — a schema comment line, a column
// header row, then one event per row in the same deterministic field
// order as WriteJSONL.
func (r *Recorder) WriteCSV(w io.Writer) error { return WriteCSV(w, r.events) }

// WriteJSONL writes an event slice in the Recorder's JSONL trace format
// (header line included). internal/replay uses it to re-serialize a
// parsed timeline bit-for-bit.
func WriteJSONL(w io.Writer, events []Event) error {
	return writeEvents(w, events, TraceHeaderJSONL(), AppendJSONL)
}

// WriteCSV writes an event slice in the Recorder's CSV trace format
// (schema comment and column header included).
func WriteCSV(w io.Writer, events []Event) error {
	return writeEvents(w, events, TraceHeaderCSV()+"\n"+TraceColumnsCSV, AppendCSV)
}

// writeEvents encodes the preamble plus the timeline into one reusable
// buffer, flushing to w whenever it fills — the whole export performs a
// handful of large writes regardless of timeline length.
func writeEvents(w io.Writer, events []Event, preamble string, enc func([]byte, Event) []byte) error {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, preamble...)
	buf = append(buf, '\n')
	for _, e := range events {
		buf = enc(buf, e)
		if len(buf) >= 1<<16-256 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := w.Write(buf)
	return err
}
