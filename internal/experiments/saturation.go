package experiments

import (
	"fmt"
	"math"

	"sgxpreload/internal/fleet"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload/spec"
)

// The saturation study: one arrival-process spec swept across rate
// multipliers until the cluster stops keeping up. The spec mixes a
// steady Poisson cohort with a bursty diurnal Gamma cohort (CV 2, a
// peak/valley envelope, phase-shifted drifting launches), and every
// sweep cell recompiles it with Options.RateScale raised — same seed,
// same cohorts, proportionally more launches. Two signals locate the
// knee: the front door's token bucket starts shedding launches, and the
// fleet-wide fault-service p99 — the faults queued behind overloaded
// hosts' load channels — breaks away from its low-rate plateau. Below
// the knee the fleet absorbs rate increases with a flat tail; at the
// knee both curves bend together, which is the capacity number an
// operator would read off this table.

// saturationSpec is the swept workload: everything here is cohort
// shape, deliberately none of it platform configuration.
var saturationSpec = &spec.Spec{
	Name:          "saturation",
	Seed:          7,
	HorizonCycles: 6_000_000,
	Cohorts: []spec.Cohort{
		{
			Name:    "steady",
			Arrival: spec.ArrivalProcess{Process: spec.Poisson, MeanIntervalCycles: 750_000},
			Mix: []spec.MixEntry{
				{Workload: "leela", Weight: 2},
				{Workload: "exchange2", Weight: 2},
				{Workload: "nab", Weight: 1},
			},
			TrainShare: 0.5,
		},
		{
			Name:    "bursty",
			Arrival: spec.ArrivalProcess{Process: spec.Gamma, MeanIntervalCycles: 1_000_000, CV: 2},
			Envelope: []spec.Period{
				{Cycles: 2_000_000, Scale: 1.5},
				{Cycles: 2_000_000, Scale: 0.5},
			},
			Mix: []spec.MixEntry{
				{Workload: "exchange2", Weight: 1},
				{Workload: "imagick", Weight: 1},
			},
			TrainShare:          0.5,
			PhaseShiftPages:     128,
			DriftPeriodAccesses: 4000,
		},
	},
}

// saturationScales are the swept rate multipliers.
var saturationScales = []float64{0.5, 1, 2, 4, 8}

const (
	saturationHosts = 2
	// saturationAdmitPeriod sets the front door's sustained admission
	// rate to one launch per 150k cycles — comfortably above the spec's
	// x1 offered rate (one launch per ~430k cycles), crossed between x2
	// and x4.
	saturationAdmitPeriod = 150_000
	saturationAdmitBurst  = 2
)

// SaturationPoint is one sweep cell: the spec at one rate multiplier.
type SaturationPoint struct {
	// Scale is the rate multiplier applied to every cohort.
	Scale float64
	// Launches is the compiled launch count (the offered load).
	Launches int
	// Shed is how many launches the admission token bucket refused.
	Shed int
	// FaultP50/P95/P99 are the fleet-wide fault-service latency
	// percentiles in cycles.
	FaultP50, FaultP95, FaultP99 float64
	// RunP99 is the 99th-percentile enclave completion time in cycles
	// across the admitted launches — the tenant-visible latency.
	RunP99 float64
}

// SaturationResult is the full rate sweep.
type SaturationResult struct {
	Spec   string
	Hosts  int
	Points []SaturationPoint
}

// Saturation compiles the spec once per rate multiplier and runs each
// compiled stream through the same admission-controlled fleet.
func Saturation(r *Runner) (SaturationResult, error) {
	out := SaturationResult{Spec: saturationSpec.Name, Hosts: saturationHosts}
	for _, scale := range saturationScales {
		arrivals, m, err := spec.Compile(saturationSpec, spec.Options{
			Scheme:    sim.DFPStop,
			DFP:       r.p.DFP,
			RateScale: scale,
			Selection: r.Selection,
		})
		if err != nil {
			return out, fmt.Errorf("saturation x%g: %w", scale, err)
		}
		res, err := fleet.Run(arrivals, fleet.Config{
			Hosts:       saturationHosts,
			Policy:      fleet.LeastLoaded,
			Platform:    sim.SharedConfig{EPCPages: r.p.EPCPages},
			AdmitPeriod: saturationAdmitPeriod,
			AdmitBurst:  saturationAdmitBurst,
			Workers:     r.workers,
		})
		if err != nil {
			return out, fmt.Errorf("saturation x%g: %w", scale, err)
		}
		var runtimes []float64
		for _, hr := range res.Hosts {
			for _, er := range hr.Enclaves {
				runtimes = append(runtimes, float64(er.Cycles))
			}
		}
		out.Points = append(out.Points, SaturationPoint{
			Scale:    scale,
			Launches: len(m.Launches),
			Shed:     len(res.Shed),
			FaultP50: res.FaultP50,
			FaultP95: res.FaultP95,
			FaultP99: res.FaultP99,
			RunP99:   stats.Percentile(runtimes, 99),
		})
		r.reportCell(len(out.Points), len(saturationScales), fmt.Sprintf("saturation x%g", scale))
	}
	return out, nil
}

// Knee returns the index of the first sweep point past the knee — the
// first rate where the front door sheds launches or the fault p99
// breaks to more than twice the lowest-rate plateau — or -1 if the
// sweep never saturates.
func (a SaturationResult) Knee() int {
	if len(a.Points) == 0 {
		return -1
	}
	base := a.Points[0].FaultP99
	for i, p := range a.Points {
		if p.Shed > 0 {
			return i
		}
		if !math.IsNaN(p.FaultP99) && !math.IsNaN(base) && base > 0 && p.FaultP99 > 2*base {
			return i
		}
	}
	return -1
}

// String renders the p99-versus-rate knee table.
func (a SaturationResult) String() string {
	knee := a.Knee()
	t := &stats.Table{Header: []string{
		"rate", "launches", "shed", "fault-p50", "fault-p95", "fault-p99", "run-p99", "",
	}}
	for i, p := range a.Points {
		mark := ""
		if i == knee {
			mark = "<- knee"
		}
		t.Add(fmt.Sprintf("x%g", p.Scale), p.Launches, p.Shed,
			fleetCyc(p.FaultP50), fleetCyc(p.FaultP95), fleetCyc(p.FaultP99),
			fleetCyc(p.RunP99), mark)
	}
	head := fmt.Sprintf("Saturation sweep: spec %q over %d hosts, admission 1 launch per %d cycles (burst %d)\n",
		a.Spec, a.Hosts, saturationAdmitPeriod, saturationAdmitBurst)
	tail := "no knee within the swept rates\n"
	if knee >= 0 {
		tail = fmt.Sprintf("knee at x%g: shed %d launches, fault p99 %s cycles\n",
			a.Points[knee].Scale, a.Points[knee].Shed, fleetCyc(a.Points[knee].FaultP99))
	}
	return head + t.String() + tail
}
