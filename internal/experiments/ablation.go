package experiments

import (
	"fmt"

	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

// Ablation studies beyond the paper's figures. DESIGN.md calls out the
// design choices these quantify: the EPC-pressure regime the evaluation
// depends on, the choice of stream recognizer (§4.1 names the design
// space), the driver's CLOCK eviction, the 44,000-cycle load cost the
// protocol analysis is built on (related work — VAULT, Morphable
// Counters — attacks exactly that constant), descending streams, and the
// §5.6 multi-enclave contention scenario.

// EPCSweepResult varies the EPC size for a fixed workload set.
type EPCSweepResult struct {
	EPCPages   []int
	Benchmarks []string
	// Improvement[b][i] is benchmark b's DFP-stop improvement (percent)
	// at EPCPages[i].
	Improvement [][]float64
	// FaultShare[b][i] is the baseline fraction of time in fault handling.
	FaultShare [][]float64
}

// EPCSweep measures how the preloading gains depend on EPC pressure: as
// the EPC approaches the working-set size, faults — and everything
// preloading can recover — vanish.
func EPCSweep(r *Runner) (EPCSweepResult, error) {
	out := EPCSweepResult{
		EPCPages:   []int{1024, 2048, 4096, 8192, 12288},
		Benchmarks: []string{"microbenchmark", "lbm", "deepsjeng"},
	}
	type cell struct{ imp, share float64 }
	nP := len(out.EPCPages)
	cells, err := sweep(r, "ablation-epc", len(out.Benchmarks)*nP,
		func(i int) string {
			return fmt.Sprintf("%s epc=%d", out.Benchmarks[i/nP], out.EPCPages[i%nP])
		},
		func(i int) (cell, error) {
			w, err := mustWorkload(out.Benchmarks[i/nP])
			if err != nil {
				return cell{}, err
			}
			pages := out.EPCPages[i%nP]
			base, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme: sim.Baseline, EPCPages: pages, ELRangePages: w.ELRangePages(),
			})
			if err != nil {
				return cell{}, err
			}
			d, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme: sim.DFPStop, EPCPages: pages, ELRangePages: w.ELRangePages(),
				DFP: r.p.DFP,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{
				imp:   stats.ImprovementPct(d.Cycles, base.Cycles),
				share: float64(base.FaultCycles()) / float64(base.Cycles),
			}, nil
		})
	if err != nil {
		return out, err
	}
	for b := range out.Benchmarks {
		imps := make([]float64, 0, nP)
		shares := make([]float64, 0, nP)
		for _, c := range cells[b*nP : (b+1)*nP] {
			imps = append(imps, c.imp)
			shares = append(shares, c.share)
		}
		out.Improvement = append(out.Improvement, imps)
		out.FaultShare = append(out.FaultShare, shares)
	}
	return out, nil
}

// String renders the sweep.
func (a EPCSweepResult) String() string {
	header := []string{"benchmark"}
	for _, p := range a.EPCPages {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	t := &stats.Table{Header: header}
	for i, name := range a.Benchmarks {
		cells := []interface{}{name}
		for _, v := range a.Improvement[i] {
			cells = append(cells, fmt.Sprintf("%+.1f%%", v))
		}
		t.Add(cells...)
	}
	return "Ablation: DFP-stop improvement vs EPC size\n" + t.String()
}

// PredictorAblationResult compares fault-history strategies.
type PredictorAblationResult struct {
	Kinds      []core.Kind
	Benchmarks []string
	// Improvement[b][k] is benchmark b's plain-DFP improvement (percent)
	// with predictor Kinds[k].
	Improvement [][]float64
}

// PredictorAblation swaps the paper's multiple-stream recognizer for the
// alternatives of package core under plain DFP (no safety valve), so the
// prediction quality differences are fully exposed.
func PredictorAblation(r *Runner) (PredictorAblationResult, error) {
	out := PredictorAblationResult{
		Kinds:      core.Kinds(),
		Benchmarks: []string{"microbenchmark", "lbm", "deepsjeng", "roms"},
	}
	bases, err := r.RunAll(out.Benchmarks, []sim.Scheme{sim.Baseline})
	if err != nil {
		return out, err
	}
	nK := len(out.Kinds)
	cells, err := sweep(r, "ablation-predictor", len(out.Benchmarks)*nK,
		func(i int) string {
			return out.Benchmarks[i/nK] + "/" + string(out.Kinds[i%nK])
		},
		func(i int) (float64, error) {
			w, err := mustWorkload(out.Benchmarks[i/nK])
			if err != nil {
				return 0, err
			}
			res, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme:       sim.DFP,
				EPCPages:     r.p.EPCPages,
				ELRangePages: w.ELRangePages(),
				DFP:          r.p.DFP,
				Predictor:    out.Kinds[i%nK],
			})
			if err != nil {
				return 0, err
			}
			return stats.ImprovementPct(res.Cycles, bases[i/nK][0].Cycles), nil
		})
	if err != nil {
		return out, err
	}
	for b := range out.Benchmarks {
		out.Improvement = append(out.Improvement, cells[b*nK:(b+1)*nK])
	}
	return out, nil
}

// String renders the comparison.
func (a PredictorAblationResult) String() string {
	header := []string{"benchmark"}
	for _, k := range a.Kinds {
		header = append(header, string(k))
	}
	t := &stats.Table{Header: header}
	for i, name := range a.Benchmarks {
		cells := []interface{}{name}
		for _, v := range a.Improvement[i] {
			cells = append(cells, fmt.Sprintf("%+.1f%%", v))
		}
		t.Add(cells...)
	}
	return "Ablation: predictor strategies under plain DFP\n" + t.String()
}

// EvictionAblationResult compares EPC victim-selection policies.
type EvictionAblationResult struct {
	Policies   []epc.Policy
	Benchmarks []string
	// Norm[b][p] is benchmark b's baseline-scheme execution time with
	// policy p, normalized to CLOCK.
	Norm [][]float64
}

// EvictionAblation replaces the driver's CLOCK second-chance eviction
// with FIFO, exact LRU, and random selection under the baseline scheme
// (no preloading, so only the eviction quality differs).
func EvictionAblation(r *Runner) (EvictionAblationResult, error) {
	out := EvictionAblationResult{
		Policies:   []epc.Policy{epc.PolicyClock, epc.PolicyLRU, epc.PolicyFIFO, epc.PolicyRandom},
		Benchmarks: []string{"deepsjeng", "mcf", "lbm"},
	}
	nPol := len(out.Policies)
	cells, err := sweep(r, "ablation-eviction", len(out.Benchmarks)*nPol,
		func(i int) string {
			return out.Benchmarks[i/nPol] + "/" + out.Policies[i%nPol].String()
		},
		func(i int) (uint64, error) {
			w, err := mustWorkload(out.Benchmarks[i/nPol])
			if err != nil {
				return 0, err
			}
			res, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme:       sim.Baseline,
				EPCPages:     r.p.EPCPages,
				ELRangePages: w.ELRangePages(),
				EvictPolicy:  out.Policies[i%nPol],
			})
			if err != nil {
				return 0, err
			}
			return res.Cycles, nil
		})
	if err != nil {
		return out, err
	}
	for b := range out.Benchmarks {
		var clock uint64
		row := make([]float64, 0, nPol)
		for p, pol := range out.Policies {
			cycles := cells[b*nPol+p]
			if pol == epc.PolicyClock {
				clock = cycles
			}
			row = append(row, stats.Normalized(cycles, clock))
		}
		out.Norm = append(out.Norm, row)
	}
	return out, nil
}

// String renders the comparison.
func (a EvictionAblationResult) String() string {
	header := []string{"benchmark"}
	for _, p := range a.Policies {
		header = append(header, p.String())
	}
	t := &stats.Table{Header: header}
	for i, name := range a.Benchmarks {
		cells := []interface{}{name}
		for _, v := range a.Norm[i] {
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	return "Ablation: eviction policy (baseline scheme, normalized to CLOCK)\n" + t.String()
}

// CostSensitivityResult varies the page-load cost.
type CostSensitivityResult struct {
	LoadCosts []uint64
	// Improvement[i] is lbm's DFP-stop improvement at LoadCosts[i];
	// FaultCost[i] the resulting per-fault total.
	Improvement []float64
	FaultCost   []uint64
}

// CostSensitivity re-runs lbm with the ELDU/ELDB cost halved and doubled.
// Related work (VAULT, Morphable Counters) shrinks exactly this constant
// by cheapening integrity verification; the sweep shows how much of the
// preloading win survives such hardware improvements.
func CostSensitivity(r *Runner) (CostSensitivityResult, error) {
	out := CostSensitivityResult{LoadCosts: []uint64{11000, 22000, 44000, 88000}}
	w, err := mustWorkload("lbm")
	if err != nil {
		return out, err
	}
	type cell struct {
		imp  float64
		cost uint64
	}
	cells, err := sweep(r, "ablation-loadcost", len(out.LoadCosts),
		func(i int) string { return fmt.Sprintf("load=%d", out.LoadCosts[i]) },
		func(i int) (cell, error) {
			cm := mem.DefaultCostModel()
			cm.Load = out.LoadCosts[i]
			base, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme: sim.Baseline, Costs: cm,
				EPCPages: r.p.EPCPages, ELRangePages: w.ELRangePages(),
			})
			if err != nil {
				return cell{}, err
			}
			d, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme: sim.DFPStop, Costs: cm, DFP: r.p.DFP,
				EPCPages: r.p.EPCPages, ELRangePages: w.ELRangePages(),
			})
			if err != nil {
				return cell{}, err
			}
			return cell{
				imp:  stats.ImprovementPct(d.Cycles, base.Cycles),
				cost: cm.FaultCost(),
			}, nil
		})
	if err != nil {
		return out, err
	}
	for _, c := range cells {
		out.Improvement = append(out.Improvement, c.imp)
		out.FaultCost = append(out.FaultCost, c.cost)
	}
	return out, nil
}

// String renders the sweep.
func (a CostSensitivityResult) String() string {
	t := &stats.Table{Header: []string{"loadCost", "faultCost", "lbm DFP-stop"}}
	for i, load := range a.LoadCosts {
		t.Add(load, a.FaultCost[i], fmt.Sprintf("%+.1f%%", a.Improvement[i]))
	}
	return "Ablation: page-load (ELDU) cost sensitivity\n" + t.String()
}

// SharedEPCResult is the §5.6 multi-enclave contention study.
type SharedEPCResult struct {
	// SoloCycles and SharedCycles are per-enclave times alone on the full
	// EPC versus co-running; names index both.
	Names        []string
	SoloCycles   []uint64
	SharedCycles []uint64
	// SharedPreloadCycles is the co-run with each enclave using its
	// suited preloading scheme.
	SharedPreloadCycles []uint64
}

// SharedEPC co-runs lbm and deepsjeng on one EPC: contention slows both,
// and per-enclave preloading still recovers part of the loss — the
// paper's §5.6 claim.
func SharedEPC(r *Runner) (SharedEPCResult, error) {
	out := SharedEPCResult{Names: []string{"lbm", "deepsjeng"}}
	solos, err := r.RunAll(out.Names, []sim.Scheme{sim.Baseline})
	if err != nil {
		return out, err
	}
	var encs []sim.Enclave
	for i, name := range out.Names {
		w, err := mustWorkload(name)
		if err != nil {
			return out, err
		}
		out.SoloCycles = append(out.SoloCycles, solos[i][0].Cycles)
		encs = append(encs, sim.Enclave{
			Name:   name,
			Trace:  r.Trace(w, workload.Ref),
			Pages:  w.ELRangePages(),
			Scheme: sim.Baseline,
		})
	}
	shared, err := sim.RunShared(encs, sim.SharedConfig{EPCPages: r.p.EPCPages})
	if err != nil {
		return out, err
	}
	for _, res := range shared {
		out.SharedCycles = append(out.SharedCycles, res.Cycles)
	}

	// Co-run again with each enclave preloading: lbm uses DFP-stop,
	// deepsjeng uses SIP.
	dj, err := mustWorkload("deepsjeng")
	if err != nil {
		return out, err
	}
	sel, err := r.Selection(dj)
	if err != nil {
		return out, err
	}
	encs[0].Scheme = sim.DFPStop
	encs[1].Scheme = sim.SIP
	encs[1].Selection = sel
	pre, err := sim.RunShared(encs, sim.SharedConfig{EPCPages: r.p.EPCPages})
	if err != nil {
		return out, err
	}
	for _, res := range pre {
		out.SharedPreloadCycles = append(out.SharedPreloadCycles, res.Cycles)
	}
	return out, nil
}

// String renders the study.
func (a SharedEPCResult) String() string {
	t := &stats.Table{Header: []string{"enclave", "solo", "shared", "slowdown", "shared+preload", "recovered"}}
	for i, name := range a.Names {
		slow := stats.Normalized(a.SharedCycles[i], a.SoloCycles[i])
		rec := stats.ImprovementPct(a.SharedPreloadCycles[i], a.SharedCycles[i])
		t.Add(name, a.SoloCycles[i], a.SharedCycles[i],
			fmt.Sprintf("%.2fx", slow), a.SharedPreloadCycles[i], fmt.Sprintf("%+.1f%%", rec))
	}
	return "Ablation: multi-enclave EPC sharing (paper §5.6)\n" + t.String()
}

// BackwardStreamResult measures descending-stream recognition.
type BackwardStreamResult struct {
	ForwardOnlyImprovement  float64
	WithBackwardImprovement float64
}

// BackwardStreams runs a descending sweep (a reversed array traversal)
// with and without the predictor's backward-direction support — the
// direction operand Algorithm 1 carries but the paper's prototype leaves
// unexercised.
func BackwardStreams(r *Runner) (BackwardStreamResult, error) {
	var out BackwardStreamResult
	const pages = 6144
	trace := make([]mem.Access, 0, 2*pages)
	for pass := 0; pass < 2; pass++ {
		for i := pages - 1; i >= 0; i-- {
			trace = append(trace, mem.Access{Site: 1, Page: mem.PageID(i), Compute: 150000})
		}
	}
	fwd := r.p.DFP
	fwd.Backward = false
	bwd := r.p.DFP
	bwd.Backward = true
	configs := []struct {
		name   string
		scheme sim.Scheme
		dfp    dfp.Config
	}{
		{"baseline", sim.Baseline, dfp.Config{}},
		{"forward", sim.DFP, fwd},
		{"backward", sim.DFP, bwd},
	}
	res, err := sweep(r, "ablation-backward", len(configs),
		func(i int) string { return configs[i].name },
		func(i int) (sim.Result, error) {
			return sim.Run(trace, sim.Config{
				Scheme: configs[i].scheme, EPCPages: r.p.EPCPages,
				ELRangePages: pages, DFP: configs[i].dfp,
			})
		})
	if err != nil {
		return out, err
	}
	out.ForwardOnlyImprovement = stats.ImprovementPct(res[1].Cycles, res[0].Cycles)
	out.WithBackwardImprovement = stats.ImprovementPct(res[2].Cycles, res[0].Cycles)
	return out, nil
}

// String renders the study.
func (a BackwardStreamResult) String() string {
	return fmt.Sprintf(
		"Ablation: descending sweep\nforward-only recognizer: %+.1f%%\nwith backward streams:   %+.1f%%\n",
		a.ForwardOnlyImprovement, a.WithBackwardImprovement)
}

// ReclaimAblationResult compares synchronous eviction (the paper's model)
// against the real driver's ksgxswapd-style background reclaimer.
type ReclaimAblationResult struct {
	Benchmarks []string
	// SyncCycles and BackgroundCycles are baseline-scheme times; BgEvicts
	// counts the write-backs the reclaimer moved off the fault path.
	SyncCycles       []uint64
	BackgroundCycles []uint64
	BgEvicts         []uint64
}

// ReclaimAblation measures what keeping free-frame watermarks buys: the
// fault path skips its synchronous EWB when a free frame is available, at
// the price of periodic write-back bursts on the load channel.
func ReclaimAblation(r *Runner) (ReclaimAblationResult, error) {
	out := ReclaimAblationResult{Benchmarks: []string{"microbenchmark", "lbm", "deepsjeng"}}
	type cell struct {
		sync, bg, bgEvicts uint64
	}
	cells, err := sweep(r, "ablation-reclaim", len(out.Benchmarks),
		func(i int) string { return out.Benchmarks[i] },
		func(i int) (cell, error) {
			w, err := mustWorkload(out.Benchmarks[i])
			if err != nil {
				return cell{}, err
			}
			sync, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme: sim.Baseline, EPCPages: r.p.EPCPages, ELRangePages: w.ELRangePages(),
			})
			if err != nil {
				return cell{}, err
			}
			bg, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme: sim.Baseline, EPCPages: r.p.EPCPages, ELRangePages: w.ELRangePages(),
				BackgroundReclaim: true,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{sync: sync.Cycles, bg: bg.Cycles, bgEvicts: bg.Kernel.BackgroundEvictions}, nil
		})
	if err != nil {
		return out, err
	}
	for _, c := range cells {
		out.SyncCycles = append(out.SyncCycles, c.sync)
		out.BackgroundCycles = append(out.BackgroundCycles, c.bg)
		out.BgEvicts = append(out.BgEvicts, c.bgEvicts)
	}
	return out, nil
}

// String renders the comparison.
func (a ReclaimAblationResult) String() string {
	t := &stats.Table{Header: []string{"benchmark", "sync EWB", "background EWB", "delta", "bg evictions"}}
	for i, name := range a.Benchmarks {
		t.Add(name, a.SyncCycles[i], a.BackgroundCycles[i],
			fmt.Sprintf("%+.2f%%", stats.ImprovementPct(a.BackgroundCycles[i], a.SyncCycles[i])),
			a.BgEvicts[i])
	}
	return "Ablation: synchronous vs background (ksgxswapd) EWB reclaim\n" + t.String()
}

// EagerSIPResult measures the latency-hiding headroom of early preload
// notifications.
type EagerSIPResult struct {
	// Leads are the oracle's notification lead distances in accesses
	// (0 = the paper's conservative SIP: notify right before the access).
	Leads []int
	// Improvement[i] is deepsjeng's improvement over baseline with the
	// notification issued Leads[i] accesses early.
	Improvement []float64
}

// EagerSIP quantifies the §3.2 discussion behind Figure 4: the paper's
// SIP is conservative — it notifies immediately before the access, saving
// only AEX+ERESUME — because no real code region is long enough to hide
// the 44,000-cycle page load. This ablation plays the oracle: it inserts
// the notification a fixed number of accesses early and measures what a
// compiler that could find such lead time would win.
func EagerSIP(r *Runner) (EagerSIPResult, error) {
	out := EagerSIPResult{Leads: []int{0, 2, 8, 32}}
	w, err := mustWorkload("deepsjeng")
	if err != nil {
		return out, err
	}
	sel, err := r.Selection(w)
	if err != nil {
		return out, err
	}
	base, err := r.Run(w, sim.Baseline)
	if err != nil {
		return out, err
	}
	trace := r.Trace(w, workload.Ref)
	imps, err := sweep(r, "ablation-eager", len(out.Leads),
		func(i int) string { return fmt.Sprintf("lead=%d", out.Leads[i]) },
		func(i int) (float64, error) {
			tr := trace
			if out.Leads[i] > 0 {
				tr = insertPrefetches(trace, sel, out.Leads[i])
			}
			res, err := sim.Run(tr, sim.Config{
				Scheme:       sim.SIP,
				EPCPages:     r.p.EPCPages,
				ELRangePages: w.ELRangePages(),
				Selection:    sel,
			})
			if err != nil {
				return 0, err
			}
			return stats.ImprovementPct(res.Cycles, base.Cycles), nil
		})
	if err != nil {
		return out, err
	}
	out.Improvement = imps
	return out, nil
}

// insertPrefetches returns a copy of trace with an oracle prefetch for
// every instrumented-site access inserted lead accesses earlier.
func insertPrefetches(trace []mem.Access, sel *sip.Selection, lead int) []mem.Access {
	out := make([]mem.Access, 0, len(trace)*2)
	for i, acc := range trace {
		// Before emitting access i, emit prefetches for the instrumented
		// accesses that are lead positions ahead.
		if j := i + lead; j < len(trace) && sel.Instrumented(trace[j].Site) {
			out = append(out, mem.Access{Page: trace[j].Page, Prefetch: true})
		}
		out = append(out, acc)
		if i == 0 {
			// Cover the window the loop above cannot reach: the first
			// lead accesses' prefetches all fire here.
			for j := 1; j < lead && j < len(trace); j++ {
				if sel.Instrumented(trace[j].Site) {
					out = append(out, mem.Access{Page: trace[j].Page, Prefetch: true})
				}
			}
		}
	}
	return out
}

// String renders the sweep.
func (a EagerSIPResult) String() string {
	t := &stats.Table{Header: []string{"notify lead (accesses)", "deepsjeng SIP"}}
	for i, lead := range a.Leads {
		t.Add(lead, fmt.Sprintf("%+.1f%%", a.Improvement[i]))
	}
	return "Ablation: eager preload notification (oracle lead time, paper Figure 4)\n" + t.String()
}
