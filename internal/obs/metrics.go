package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Derived metrics. Every function here consumes a recorded event slice
// (in emission order, as a Recorder collects it) and produces a compact,
// deterministic summary; none of them mutate the input.

// Point is one sample of a time series.
type Point struct {
	// T is the sample's virtual-cycle timestamp.
	T uint64
	// V is the sample value.
	V float64
}

// Span returns the run's observed extent: the largest timestamp or
// transfer-completion cycle in the stream (0 for an empty stream).
func Span(events []Event) uint64 {
	var end uint64
	for _, e := range events {
		if e.T > end {
			end = e.T
		}
		if e.Kind == KindLoadStart && e.V1 > end {
			end = e.V1
		}
	}
	return end
}

// Utilization buckets the run into n equal windows and returns the
// fraction of each window the load channel spent busy, computed from
// KindLoadStart events (each carries its completion cycle in V1).
// Transfers spanning a bucket boundary contribute to every bucket they
// overlap. Each returned point's T is its bucket's start cycle.
func Utilization(events []Event, n int) []Point {
	span := Span(events)
	if n <= 0 || span == 0 {
		return nil
	}
	busy := make([]uint64, n)
	width := (span + uint64(n) - 1) / uint64(n)
	if width == 0 {
		width = 1
	}
	for _, e := range events {
		if e.Kind != KindLoadStart || e.V1 <= e.T {
			continue
		}
		for b := e.T / width; b < uint64(n) && b*width < e.V1; b++ {
			lo, hi := b*width, (b+1)*width
			if e.T > lo {
				lo = e.T
			}
			if e.V1 < hi {
				hi = e.V1
			}
			if hi > lo {
				busy[b] += hi - lo
			}
		}
	}
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{T: uint64(i) * width, V: float64(busy[i]) / float64(width)}
	}
	return out
}

// BusyCycles returns the total cycles the channel spent transferring.
func BusyCycles(events []Event) uint64 {
	var busy uint64
	for _, e := range events {
		if e.Kind == KindLoadStart && e.V1 > e.T {
			busy += e.V1 - e.T
		}
	}
	return busy
}

// Histogram is a fixed-bound latency histogram. Counts[i] holds samples
// with latency <= Bounds[i]; Counts[len(Bounds)] holds the overflow.
type Histogram struct {
	Bounds []uint64
	Counts []uint64
	Total  uint64
	Sum    uint64
	Max    uint64
}

// Mean returns the mean sample value (0 for an empty histogram).
func (h Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// DefaultLatencyBounds brackets the protocol's interesting fault
// latencies: the ~64k-cycle bare fault cost, preload-shortened faults
// below it, and channel-queueing pileups above it.
func DefaultLatencyBounds() []uint64 {
	return []uint64{25_000, 50_000, 65_000, 80_000, 110_000, 150_000, 250_000, 500_000}
}

// FaultLatencies builds a histogram of fault latencies (KindFaultEnd's
// V1) over the given ascending bounds.
func FaultLatencies(events []Event, bounds []uint64) Histogram {
	h := Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	for _, e := range events {
		if e.Kind != KindFaultEnd {
			continue
		}
		h.Total++
		h.Sum += e.V1
		if e.V1 > h.Max {
			h.Max = e.V1
		}
		slot := len(bounds)
		for i, b := range bounds {
			if e.V1 <= b {
				slot = i
				break
			}
		}
		h.Counts[slot]++
	}
	return h
}

// AccuracySeries returns DFP preload accuracy over time: at every
// KindAccuracy event (one per service scan), AccPreloadCounter /
// PreloadCounter. Scans before the first preload are skipped.
func AccuracySeries(events []Event) []Point {
	var out []Point
	for _, e := range events {
		if e.Kind != KindAccuracy || e.V1 == 0 {
			continue
		}
		out = append(out, Point{T: e.T, V: float64(e.V2) / float64(e.V1)})
	}
	return out
}

// OccupancySeries returns resident EPC frames over time, sampled at
// every service-thread scan (KindScan carries the resident count in V2).
func OccupancySeries(events []Event) []Point {
	var out []Point
	for _, e := range events {
		if e.Kind != KindScan {
			continue
		}
		out = append(out, Point{T: e.T, V: float64(e.V2)})
	}
	return out
}

// StreamStats summarizes predictor stream lifecycles.
type StreamStats struct {
	// Started counts streams opened (KindStreamStart).
	Started uint64
	// Hits counts faults that extended a stream (KindStreamHit).
	Hits uint64
	// Evicted counts streams pushed out of the LRU list
	// (KindStreamEnd); Started - Evicted were live at end of run.
	Evicted uint64
	// MaxHits is the most extensions any single evicted stream saw.
	MaxHits uint64
}

// MeanHits returns the mean extensions per started stream.
func (s StreamStats) MeanHits() float64 {
	if s.Started == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Started)
}

// Streams derives StreamStats from the event stream.
func Streams(events []Event) StreamStats {
	var s StreamStats
	for _, e := range events {
		switch e.Kind {
		case KindStreamStart:
			s.Started++
		case KindStreamHit:
			s.Hits++
		case KindStreamEnd:
			s.Evicted++
			if e.V1 > s.MaxHits {
				s.MaxHits = e.V1
			}
		}
	}
	return s
}

// QuotaShare is one enclave's slice of an arbitrated EPC partition.
type QuotaShare struct {
	// Enclave is the enclave index (KindQuotaRebalance's Batch).
	Enclave uint64
	// Quota is the enclave's frame quota at the last rebalance (V1).
	Quota uint64
	// Resident is its resident frame count at that instant (V2).
	Resident uint64
}

// QuotaShares returns the final quota partition: the last
// KindQuotaRebalance observation per enclave, in enclave-index order.
// Nil when no arbitrated quota policy was active (the default), so
// reports over default traces are unchanged.
func QuotaShares(events []Event) []QuotaShare {
	var out []QuotaShare
	for _, e := range events {
		if e.Kind != KindQuotaRebalance {
			continue
		}
		for uint64(len(out)) <= e.Batch {
			out = append(out, QuotaShare{Enclave: uint64(len(out))})
		}
		out[e.Batch] = QuotaShare{Enclave: e.Batch, Quota: e.V1, Resident: e.V2}
	}
	return out
}

// DFPStopAt returns the cycle the safety valve tripped, or 0 if it
// never fired.
func DFPStopAt(events []Event) uint64 {
	for _, e := range events {
		if e.Kind == KindDFPStop {
			return e.T
		}
	}
	return 0
}

// Report bundles every derived metric of one run for presentation.
type Report struct {
	// Counts holds per-kind event totals, indexed by Kind.
	Counts [kindCount]uint64
	// Span is the run's observed extent in cycles.
	Span uint64
	// Busy is the channel's total transfer cycles; Utilization is
	// Busy/Span.
	Busy        uint64
	Utilization float64
	// UtilizationBuckets is the channel-busy fraction per time window.
	UtilizationBuckets []Point
	// Latency is the fault-latency histogram.
	Latency Histogram
	// Accuracy is the preload-accuracy series (per service scan).
	Accuracy []Point
	// Occupancy is the resident-frame series (per service scan).
	Occupancy []Point
	// Streams summarizes predictor stream lifecycles.
	Streams StreamStats
	// Quota is the final per-enclave EPC quota partition (nil unless an
	// arbitrated quota policy emitted rebalance events).
	Quota []QuotaShare
	// StopCycle is the DFP-stop trip cycle (0 = never fired).
	StopCycle uint64
}

// BuildReport derives every metric from the recorded timeline.
func BuildReport(events []Event) Report {
	r := Report{
		Span:               Span(events),
		Busy:               BusyCycles(events),
		UtilizationBuckets: Utilization(events, 20),
		Latency:            FaultLatencies(events, DefaultLatencyBounds()),
		Accuracy:           AccuracySeries(events),
		Occupancy:          OccupancySeries(events),
		Streams:            Streams(events),
		Quota:              QuotaShares(events),
		StopCycle:          DFPStopAt(events),
	}
	for _, e := range events {
		r.Counts[e.Kind]++
	}
	if r.Span > 0 {
		r.Utilization = float64(r.Busy) / float64(r.Span)
	}
	return r
}

// MarshalJSON renders the report with per-kind counts keyed by wire name
// (zero kinds omitted) instead of the internal Kind-indexed array; the
// other fields marshal as declared. Output is deterministic: map keys are
// sorted by encoding/json.
func (r Report) MarshalJSON() ([]byte, error) {
	counts := make(map[string]uint64)
	for _, k := range Kinds() {
		if r.Counts[k] > 0 {
			counts[k.String()] = r.Counts[k]
		}
	}
	return json.Marshal(struct {
		Counts             map[string]uint64 `json:"counts"`
		Span               uint64            `json:"span"`
		Busy               uint64            `json:"busy"`
		Utilization        float64           `json:"utilization"`
		UtilizationBuckets []Point           `json:"utilization_buckets,omitempty"`
		Latency            Histogram         `json:"latency"`
		Accuracy           []Point           `json:"accuracy,omitempty"`
		Occupancy          []Point           `json:"occupancy,omitempty"`
		Streams            StreamStats       `json:"streams"`
		Quota              []QuotaShare      `json:"quota,omitempty"`
		StopCycle          uint64            `json:"stop_cycle"`
	}{counts, r.Span, r.Busy, r.Utilization, r.UtilizationBuckets,
		r.Latency, r.Accuracy, r.Occupancy, r.Streams, r.Quota, r.StopCycle})
}

// String renders the report as a deterministic text block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span:                %d cycles\n", r.Span)
	fmt.Fprintf(&b, "channel busy:        %d cycles (%.1f%% utilization)\n",
		r.Busy, 100*r.Utilization)
	b.WriteString("events by kind:\n")
	for _, k := range Kinds() {
		if r.Counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-16s %d\n", k.String(), r.Counts[k])
	}
	if r.Latency.Total > 0 {
		fmt.Fprintf(&b, "fault latency:       mean %.0f, max %d cycles over %d faults\n",
			r.Latency.Mean(), r.Latency.Max, r.Latency.Total)
		for i, bound := range r.Latency.Bounds {
			fmt.Fprintf(&b, "  <= %-9d %d\n", bound, r.Latency.Counts[i])
		}
		fmt.Fprintf(&b, "  >  %-9d %d\n",
			r.Latency.Bounds[len(r.Latency.Bounds)-1], r.Latency.Counts[len(r.Latency.Bounds)])
	}
	if len(r.UtilizationBuckets) > 0 {
		b.WriteString("channel utilization over time:\n")
		for _, p := range r.UtilizationBuckets {
			fmt.Fprintf(&b, "  @%-12d %5.1f%%\n", p.T, 100*p.V)
		}
	}
	if n := len(r.Accuracy); n > 0 {
		fmt.Fprintf(&b, "preload accuracy:    %.3f first scan -> %.3f last scan (%d scans)\n",
			r.Accuracy[0].V, r.Accuracy[n-1].V, n)
	}
	if n := len(r.Occupancy); n > 0 {
		fmt.Fprintf(&b, "EPC occupancy:       %.0f first scan -> %.0f last scan frames\n",
			r.Occupancy[0].V, r.Occupancy[n-1].V)
	}
	if r.Streams.Started > 0 {
		fmt.Fprintf(&b, "streams:             %d started, %d extensions (mean %.2f), %d evicted, max %d hits\n",
			r.Streams.Started, r.Streams.Hits, r.Streams.MeanHits(),
			r.Streams.Evicted, r.Streams.MaxHits)
	}
	if len(r.Quota) > 0 {
		fmt.Fprintf(&b, "EPC quota partition: %d enclaves, %d rebalance events\n",
			len(r.Quota), r.Counts[KindQuotaRebalance])
		for _, q := range r.Quota {
			fmt.Fprintf(&b, "  enclave %-4d quota %-6d resident %d\n",
				q.Enclave, q.Quota, q.Resident)
		}
	}
	if r.StopCycle > 0 {
		fmt.Fprintf(&b, "DFP-stop:            tripped at cycle %d\n", r.StopCycle)
	}
	return b.String()
}
