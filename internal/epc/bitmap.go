package epc

import "math/bits"

// Bitmap is the enclave-page presence bitmap shared between the enclave
// and the untrusted OS: one bit per ELRANGE virtual page, set while the
// page is EPC-resident.
//
// In the paper this array lives in untrusted user memory so enclave code
// can read it without an exit; the OS writes it only on page load and
// eviction. Here both sides are in-process, but the type is kept separate
// from EPC so SIP's runtime can hold only the bitmap, matching the real
// trust boundary.
type Bitmap struct {
	words []uint64
	n     uint64
}

// NewBitmap returns a bitmap covering n pages, all clear.
func NewBitmap(n uint64) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of pages covered.
func (b *Bitmap) Len() uint64 { return b.n }

// Get reports whether bit i is set. Out-of-range indices read as clear,
// mirroring an access beyond the mapped ELRANGE.
func (b *Bitmap) Get(i uint64) bool {
	if i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Set sets bit i. Out-of-range indices are ignored.
func (b *Bitmap) Set(i uint64) {
	if i >= b.n {
		return
	}
	b.words[i/64] |= 1 << (i % 64)
}

// Clear clears bit i. Out-of-range indices are ignored.
func (b *Bitmap) Clear(i uint64) {
	if i >= b.n {
		return
	}
	b.words[i/64] &^= 1 << (i % 64)
}

// Grow extends the bitmap to cover n pages; existing bits keep their
// values and the new pages read as clear. Shrinking is a no-op: the
// bitmap only ever tracks a growing ELRANGE (dynamic enclave admission
// appends to the shared page space, it never reclaims). Growing in place
// keeps every outstanding *Bitmap handle — each enclave's SIP runtime
// holds one — valid across admissions.
func (b *Bitmap) Grow(n uint64) {
	if n <= b.n {
		return
	}
	words := (n + 63) / 64
	for uint64(len(b.words)) < words {
		b.words = append(b.words, 0)
	}
	b.n = n
}

// Count returns the number of set bits.
func (b *Bitmap) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}
