package replay

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sgxpreload/internal/obs"
)

// refParseJSONLEvent is the pre-optimization JSONL line parser — pure
// encoding/json, no fast path. The optimized parseJSONLEvent must agree
// with it on every line: same accept/reject decision, same event.
func refParseJSONLEvent(raw []byte) (obs.Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(raw, &je); err != nil {
		return obs.Event{}, fmt.Errorf("malformed event: %w", err)
	}
	return wireToEvent(je.T, je.Kind, je.Page, je.Batch, je.V1, je.V2)
}

// refParseCSVEvent is the pre-optimization CSV row parser (pure
// strconv); parseCSVEvent is that code, so the reference calls it
// directly and the differential pins the fast path against it.
func refParseCSVEvent(raw []byte) (obs.Event, error) {
	return parseCSVEvent(string(raw))
}

// parserCorpus returns line fragments exercising both parsers' edges:
// every canonical writer line, plus near-canonical deviations that must
// take the slow path without changing the verdict.
func parserCorpusJSONL() []string {
	var lines []string
	for _, e := range allKindEvents() {
		lines = append(lines, strings.TrimSuffix(string(obs.AppendJSONL(nil, e)), "\n"))
	}
	lines = append(lines,
		`{"t":1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,
		`{"t":01,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,   // leading zero: invalid JSON
		`{"t":1,"kind":"scan","page":007,"batch":0,"v1":0,"v2":0}`,  // leading zeros
		`{"t":1,"kind":"scan","page":-1,"batch":0,"v1":0,"v2":0}`,   // NoPage sentinel
		`{"t":1,"kind":"scan","page":-2,"batch":0,"v1":0,"v2":0}`,   // negative page: rejected
		`{"t":1,"kind":"nope","page":0,"batch":0,"v1":0,"v2":0}`,    // unknown kind
		`{"t":1,"kind":"none","page":0,"batch":0,"v1":0,"v2":0}`,    // never-emitted kind
		`{ "t":1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,   // whitespace
		`{"t":1, "kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,   // whitespace
		`{"kind":"scan","t":1,"page":0,"batch":0,"v1":0,"v2":0}`,    // reordered fields
		`{"t":18446744073709551615,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`, // max uint64
		`{"t":18446744073709551616,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`, // overflow
		`{"t":1,"kind":"scan","page":9223372036854775807,"batch":0,"v1":0,"v2":0}`,  // max int64 page
		`{"t":1,"kind":"scan","page":9223372036854775808,"batch":0,"v1":0,"v2":0}`,  // page overflow
		`{"t":1.5,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,  // float
		`{"t":1e3,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,  // exponent
		`{"t":+1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`,   // sign prefix: invalid JSON
		`{"t":1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0,"x":1}`, // extra field
		`{"t":1,"kind":"scan","page":0,"batch":0,"v1":0}`,           // missing field
		`{"t":1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0} `,   // trailing space
		`{"t":1,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}}`,   // trailing junk
		`{"t":null,"kind":"scan","page":0,"batch":0,"v1":0,"v2":0}`, // null
		`{"t":1,"kind":"sca`, // truncated
		`{}`,
		`[]`,
		`x`,
	)
	return lines
}

func parserCorpusCSV() []string {
	var lines []string
	for _, e := range allKindEvents() {
		lines = append(lines, strings.TrimSuffix(string(obs.AppendCSV(nil, e)), "\n"))
	}
	lines = append(lines,
		"1,scan,0,0,0,0",
		"01,scan,0,0,0,0",     // leading zero: strconv accepts
		"1,scan,007,0,0,0",    // leading zeros
		"1,scan,-1,0,0,0",     // NoPage sentinel
		"1,scan,-01,0,0,0",    // ParseInt accepts "-01" as -1
		"1,scan,-2,0,0,0",     // negative page: rejected by wireToEvent
		"1,nope,0,0,0,0",      // unknown kind
		"1,none,0,0,0,0",      // never-emitted kind
		"+1,scan,0,0,0,0",     // ParseUint accepts a sign prefix
		"1,scan,+7,0,0,0",     // ParseInt accepts a sign prefix
		"18446744073709551615,scan,0,0,0,0", // max uint64
		"18446744073709551616,scan,0,0,0,0", // overflow
		"1,scan,9223372036854775807,0,0,0",  // max int64 page
		"1,scan,9223372036854775808,0,0,0",  // page overflow
		"1,scan,0,0,0",        // too few fields
		"1,scan,0,0,0,0,0",    // too many fields
		"1, scan,0,0,0,0",     // embedded space
		"1,scan,0,0,0,0 ",     // trailing space
		",,,,,",               // all empty
		"1,scan,0,0,0,",       // empty last field
		"1.5,scan,0,0,0,0",    // float
		"",
		"x",
	)
	return lines
}

// TestParserDifferentialJSONL: on every corpus line, the optimized
// parser and the pure-JSON reference make the same accept/reject
// decision and produce the same event.
func TestParserDifferentialJSONL(t *testing.T) {
	for _, line := range parserCorpusJSONL() {
		got, gotErr := parseJSONLEvent([]byte(line))
		want, wantErr := refParseJSONLEvent([]byte(line))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%q: accept/reject diverges: optimized err=%v, reference err=%v", line, gotErr, wantErr)
			continue
		}
		if gotErr == nil && got != want {
			t.Errorf("%q: value diverges: optimized %+v, reference %+v", line, got, want)
		}
	}
}

func TestParserDifferentialCSV(t *testing.T) {
	for _, line := range parserCorpusCSV() {
		got, gotErr := parseCSVLine([]byte(line))
		want, wantErr := refParseCSVEvent([]byte(line))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%q: accept/reject diverges: optimized err=%v, reference err=%v", line, gotErr, wantErr)
			continue
		}
		if gotErr == nil && got != want {
			t.Errorf("%q: value diverges: optimized %+v, reference %+v", line, got, want)
		}
	}
}

// TestParserDifferentialRandom mutates canonical lines at random byte
// positions and re-checks parser agreement — the mutations land exactly
// on the boundary between "canonical" and "slow path" where a fast
// scanner bug would hide.
func TestParserDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	jsonl := parserCorpusJSONL()
	csv := parserCorpusCSV()
	mutate := func(s string) string {
		if len(s) == 0 {
			return s
		}
		b := []byte(s)
		switch rng.Intn(3) {
		case 0: // flip one byte to a printable char
			b[rng.Intn(len(b))] = byte(' ' + rng.Intn(95))
		case 1: // delete one byte
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		default: // duplicate one byte
			i := rng.Intn(len(b))
			b = append(b[:i+1], b[i:]...)
		}
		return string(b)
	}
	for i := 0; i < 20_000; i++ {
		line := mutate(jsonl[rng.Intn(len(jsonl))])
		got, gotErr := parseJSONLEvent([]byte(line))
		want, wantErr := refParseJSONLEvent([]byte(line))
		if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && got != want) {
			t.Fatalf("jsonl %q: optimized (%+v, %v) vs reference (%+v, %v)", line, got, gotErr, want, wantErr)
		}
	}
	for i := 0; i < 20_000; i++ {
		line := mutate(csv[rng.Intn(len(csv))])
		got, gotErr := parseCSVLine([]byte(line))
		want, wantErr := refParseCSVEvent([]byte(line))
		if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && got != want) {
			t.Fatalf("csv %q: optimized (%+v, %v) vs reference (%+v, %v)", line, got, gotErr, want, wantErr)
		}
	}
}
