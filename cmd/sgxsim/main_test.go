package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lbm", "mcf", "deepsjeng", "SIFT", "mixed-blood"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestBaselineRun(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "baseline"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cycles:", "demand faults:", "cactuBSSN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDFPCompare(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "microbenchmark", "-scheme", "dfp", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improvement:") {
		t.Errorf("compare output missing improvement:\n%s", buf.String())
	}
}

func TestSIPRun(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "deepsjeng", "-scheme", "sip"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "instrumentation points") || !strings.Contains(out, "notify loads:") {
		t.Errorf("SIP output incomplete:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-bench", "nope"},
		{"-scheme", "nope"},
		{"-bench", "bwaves", "-scheme", "sip"}, // Fortran: not instrumentable
	}
	for _, args := range tests {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestAblationFlags(t *testing.T) {
	var buf strings.Builder
	args := []string{"-bench", "cactuBSSN", "-scheme", "dfp",
		"-predictor", "stride", "-policy", "lru", "-reclaim"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycles:") {
		t.Errorf("ablation-flag run incomplete:\n%s", buf.String())
	}
	if err := run([]string{"-predictor", "bogus", "-scheme", "dfp"}, &buf); err == nil {
		t.Error("bogus predictor accepted")
	}
	if err := run([]string{"-policy", "bogus"}, &buf); err == nil {
		t.Error("bogus policy accepted")
	}
}
