package stats

import (
	"math"
	"sort"
	"testing"

	"sgxpreload/internal/rng"
)

// TestPercentileExactRank: when p/100*(n-1) lands on an integer rank the
// element itself is returned, no interpolation.
func TestPercentileExactRank(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50} // ranks 0..4
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(p=%v) = %v, want exact element %v", c.p, got, c.want)
		}
	}
}

// TestPercentileInterpolation: ranks between elements interpolate
// linearly between the two closest ranks.
func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10} // rank span 0..1
	for _, c := range []struct{ p, want float64 }{
		{50, 5}, {25, 2.5}, {75, 7.5}, {99, 9.9},
	} {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Four elements: p95 sits at rank 2.85, between xs[2] and xs[3].
	xs = []float64{1, 2, 4, 8}
	if got, want := Percentile(xs, 95), 4+0.85*(8-4); math.Abs(got-want) > 1e-9 {
		t.Errorf("Percentile(p=95) = %v, want %v", got, want)
	}
}

// TestPercentileBoundaries: empty input is NaN (not zero), single
// element is every percentile, out-of-range p clamps.
func TestPercentileBoundaries(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("Percentile(empty) = %v, want NaN", got)
	}
	if got := SortedPercentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("SortedPercentile(empty) = %v, want NaN", got)
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Errorf("single element: Percentile(p=%v) = %v, want 42", p, got)
		}
	}
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("p<0 should clamp to min: got %v", got)
	}
	if got := Percentile(xs, 150); got != 3 {
		t.Errorf("p>100 should clamp to max: got %v", got)
	}
	// Input must not be mutated (Percentile sorts a copy).
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

// TestPercentileDuplicateHeavy: with heavy duplication the percentile
// stays on the duplicated value until the rank crosses into the tail.
func TestPercentileDuplicateHeavy(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	xs[99] = 1000 // one outlier at the top rank
	for _, p := range []float64{0, 50, 90, 95} {
		if got := Percentile(xs, p); got != 7 {
			t.Errorf("duplicate-heavy: Percentile(p=%v) = %v, want 7", p, got)
		}
	}
	// p99 sits at rank 98.01: interpolates between the last 7 and the
	// outlier.
	if got, want := Percentile(xs, 99), 7+0.01*(1000-7); math.Abs(got-want) > 1e-9 {
		t.Errorf("duplicate-heavy p99 = %v, want %v", got, want)
	}
	if got := Percentile(xs, 100); got != 1000 {
		t.Errorf("duplicate-heavy p100 = %v, want 1000", got)
	}
}

// TestPercentileProperty checks Percentile against a sorted-slice oracle
// on random inputs: the result is bracketed by the floor/ceil rank
// elements, exact ranks return elements verbatim, and the function is
// monotone in p.
func TestPercentileProperty(t *testing.T) {
	r := rng.New(0xf1ee7)
	for trial := 0; trial < 200; trial++ {
		n := int(r.Uint64n(64)) + 1
		xs := make([]float64, n)
		for i := range xs {
			// Small value domain forces duplicates.
			xs[i] = float64(r.Uint64n(16))
		}
		oracle := append([]float64(nil), xs...)
		sort.Float64s(oracle)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			got := Percentile(xs, p)
			rank := p / 100 * float64(n-1)
			lo, hi := oracle[int(rank)], oracle[int(math.Ceil(rank))]
			if got < lo || got > hi {
				t.Fatalf("trial %d: Percentile(p=%v) = %v outside bracket [%v, %v]",
					trial, p, got, lo, hi)
			}
			if rank == math.Trunc(rank) && got != oracle[int(rank)] {
				t.Fatalf("trial %d: exact rank %v: got %v, want %v",
					trial, rank, got, oracle[int(rank)])
			}
			if got < prev {
				t.Fatalf("trial %d: Percentile not monotone in p at %v: %v < %v",
					trial, p, got, prev)
			}
			prev = got
		}
	}
}
