package obs

import (
	"strings"
	"testing"

	"sgxpreload/internal/mem"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatalf("new recorder has %d events", r.Len())
	}
	e1 := Event{T: 10, Kind: KindFaultBegin, Page: 42}
	e2 := Event{T: 20, Kind: KindFaultEnd, Page: 42, V1: 10, V2: FaultDemand}
	r.Emit(e1)
	r.Emit(e2)
	got := r.Events()
	if len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("Events() = %+v", got)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("recorder holds %d events after Reset", r.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{T: 5, Kind: KindLoadStart, Page: 7, Batch: 2, V1: 105, V2: 1})
	r.Emit(Event{T: 9, Kind: KindEvict, Page: mem.NoPage, V1: 1})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"sgxpreload-trace","version":1,"fields":["t","kind","page","batch","v1","v2"]}
{"t":5,"kind":"load_start","page":7,"batch":2,"v1":105,"v2":1}
{"t":9,"kind":"evict","page":-1,"batch":0,"v1":1,"v2":0}
`
	if b.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{T: 5, Kind: KindPreloadQueue, Page: 7, Batch: 2})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "# sgxpreload-trace version=1\nt,kind,page,batch,v1,v2\n5,preload_queue,7,2,0,0\n"
	if b.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestExportsDeterministic(t *testing.T) {
	r := NewRecorder()
	for i := uint64(0); i < 100; i++ {
		r.Emit(Event{T: i, Kind: Kind(1 + i%uint64(kindCount-1)), Page: mem.PageID(i * 3)})
	}
	var a, b strings.Builder
	if err := r.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two JSONL exports of one timeline differ")
	}
}

func TestClockedStampsZeroTimestamps(t *testing.T) {
	r := NewRecorder()
	var now uint64 = 77
	h := Clocked(r, &now)
	h.Emit(Event{Kind: KindStreamStart, Page: 1})      // zero T: stamped
	h.Emit(Event{T: 33, Kind: KindStreamHit, Page: 2}) // nonzero T: kept
	now = 99
	h.Emit(Event{Kind: KindStreamEnd})
	ev := r.Events()
	if ev[0].T != 77 || ev[1].T != 33 || ev[2].T != 99 {
		t.Fatalf("timestamps = %d, %d, %d; want 77, 33, 99", ev[0].T, ev[1].T, ev[2].T)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of no live hooks != nil")
	}
	r1, r2 := NewRecorder(), NewRecorder()
	if got := Tee(nil, r1); got != Hook(r1) {
		t.Fatal("Tee of one live hook did not return it directly")
	}
	h := Tee(r1, nil, r2)
	h.Emit(Event{T: 1, Kind: KindScan})
	if r1.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out reached %d/%d recorders", r1.Len(), r2.Len())
	}
}

func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		name := k.String()
		if name == "" || name == "unknown" || name == "none" {
			t.Errorf("kind %d has bad wire name %q", k, name)
		}
		if seen[name] {
			t.Errorf("duplicate wire name %q", name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind did not stringify as unknown")
	}
	if len(Kinds()) != int(kindCount)-1 {
		t.Errorf("Kinds() returned %d kinds, want %d", len(Kinds()), kindCount-1)
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	for _, bad := range []string{"", "none", "unknown", "fault"} {
		if _, ok := KindByName(bad); ok {
			t.Errorf("KindByName(%q) resolved, want miss", bad)
		}
	}
}
