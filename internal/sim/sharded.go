package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The sharded runner: fleet-shaped runs on one machine. A shard is an
// independent EPC domain — its own epc.EPC, its own load-channel group,
// its own engine — so shards share no simulated state and can run on
// worker goroutines without any cross-shard synchronization. This
// models a fleet of SGX hosts: enclaves contend *within* a host's EPC,
// never across hosts.
//
// Determinism: each shard's engine is the same deterministic engine
// RunShared drives, results land in a [shard][enclave] grid by index,
// and on failure the lowest-index shard's error is returned — exactly
// what a sequential shard loop would have surfaced first. Worker count
// therefore never leaks into the output: RunSharded at any workers
// setting, including a single worker, produces identical results, and a
// one-shard run is byte-identical to RunShared.

// RunSharded simulates each enclave group as an independent EPC domain
// (cfg.EPCPages frames *per shard*) on up to workers goroutines and
// returns the per-shard results in group order. workers <= 0 means
// GOMAXPROCS. Every group must be non-empty.
//
// cfg.Hook must be nil unless there is exactly one shard: concurrent
// shards would interleave their events on a shared hook
// non-deterministically. Multi-shard recording goes through
// cfg.HookFactory instead — one hook per shard, resolved here before
// the domain's engine is built.
func RunSharded(groups [][]Enclave, cfg SharedConfig, workers int) ([][]SharedResult, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("sim: RunSharded needs at least one shard")
	}
	if cfg.Hook != nil && cfg.HookFactory != nil {
		return nil, fmt.Errorf("sim: RunSharded takes Hook or HookFactory, not both")
	}
	if cfg.Hook != nil && len(groups) > 1 {
		return nil, fmt.Errorf("sim: RunSharded cannot share one hook across %d shards (set HookFactory for per-shard recording)", len(groups))
	}
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("sim: shard %d has no enclaves", i)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	out := make([][]SharedResult, len(groups))
	runShard := func(i int) error {
		scfg := cfg
		if cfg.HookFactory != nil {
			scfg.Hook = cfg.HookFactory(i)
			scfg.HookFactory = nil
		}
		res, err := RunShared(groups[i], scfg)
		if err != nil {
			return fmt.Errorf("sim: shard %d: %w", i, err)
		}
		out[i] = res
		return nil
	}
	if workers == 1 {
		for i := range groups {
			if err := runShard(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	errs := make([]error, len(groups))
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(groups) || failed.Load() {
					return
				}
				if err := runShard(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Shards are dispatched contiguously from zero, so the lowest-index
	// error is the first a sequential loop would have hit.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ShardRoundRobin partitions enclaves into shards by round-robin — the
// deterministic default placement for fleet runs, keeping heterogeneous
// populations balanced across EPC domains. shards is clamped to [1,
// len(enclaves)] so no shard is ever empty; an empty enclave slice is an
// explicit error (clamping it would yield a zero-shard grid that
// RunSharded rejects with the misleading "needs at least one shard").
func ShardRoundRobin(enclaves []Enclave, shards int) ([][]Enclave, error) {
	if len(enclaves) == 0 {
		return nil, fmt.Errorf("sim: ShardRoundRobin needs at least one enclave")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(enclaves) {
		shards = len(enclaves)
	}
	out := make([][]Enclave, shards)
	for i, e := range enclaves {
		out[i%shards] = append(out[i%shards], e)
	}
	return out, nil
}
