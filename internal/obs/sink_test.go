package obs

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sgxpreload/internal/mem"
)

// sinkEvents builds enough varied events to force several buffer
// rotations through the background writer (>64 KiB of output). Field
// magnitudes follow what the engine actually emits — T is a growing
// cycle count, pages fit the EPC, v1 is a latency in cycles — so the
// write benchmarks sharing this helper measure representative lines.
func sinkEvents(n int) []Event {
	rng := rand.New(rand.NewSource(99))
	kinds := Kinds()
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			T:     uint64(i) * 1237,
			Kind:  kinds[rng.Intn(len(kinds))],
			Page:  mem.PageID(rng.Intn(4096)),
			Batch: uint64(rng.Intn(8)),
			V1:    uint64(rng.Intn(100_000)),
			V2:    uint64(rng.Intn(64)),
		}
		if rng.Intn(16) == 0 {
			out[i].Page = mem.NoPage
		}
	}
	return out
}

// TestStreamSinkMatchesWrite is the sink's core contract: streaming a
// timeline event by event through the double-buffered writer produces
// exactly the bytes the batch writers produce, in both formats, across
// many buffer handovers.
func TestStreamSinkMatchesWrite(t *testing.T) {
	events := sinkEvents(5000)
	for _, tc := range []struct {
		format Format
		write  func(*bytes.Buffer, []Event) error
	}{
		{FormatJSONL, func(b *bytes.Buffer, e []Event) error { return WriteJSONL(b, e) }},
		{FormatCSV, func(b *bytes.Buffer, e []Event) error { return WriteCSV(b, e) }},
	} {
		var want bytes.Buffer
		if err := tc.write(&want, events); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		s := NewStreamSink(&got, tc.format)
		for _, e := range events {
			s.Emit(e)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("format %d: sink output (%d bytes) diverges from batch writer (%d bytes)",
				tc.format, got.Len(), want.Len())
		}
		if s.Events() != len(events) {
			t.Errorf("format %d: Events() = %d, want %d", tc.format, s.Events(), len(events))
		}
	}
}

// TestStreamSinkEmptyTimeline: a sink closed without any Emit still
// writes the schema preamble, so the file is a valid empty trace.
func TestStreamSinkEmptyTimeline(t *testing.T) {
	var got bytes.Buffer
	s := NewStreamSink(&got, FormatJSONL)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteJSONL(&want, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("empty sink wrote %q, want %q", got.Bytes(), want.Bytes())
	}
}

func TestStreamSinkCloseIdempotent(t *testing.T) {
	s := NewStreamSink(&bytes.Buffer{}, FormatJSONL)
	s.Emit(Event{T: 1, Kind: KindFaultBegin})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestStreamSinkWriteErrorLatched: the engine-facing Emit never fails;
// the first underlying write error is latched and surfaced by Close.
func TestStreamSinkWriteErrorLatched(t *testing.T) {
	wantErr := errors.New("disk full")
	s := NewStreamSink(&failAfter{n: 100 << 10, err: wantErr}, FormatJSONL)
	for _, e := range sinkEvents(20_000) { // ~1.5 MiB, fails partway
		s.Emit(e)
	}
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Errorf("Close = %v, want %v", err, wantErr)
	}
}

// TestStreamSinkFile: the file constructor picks the format from the
// extension, owns the file, and the result round-trips through the
// batch writer byte for byte.
func TestStreamSinkFile(t *testing.T) {
	events := sinkEvents(300)
	dir := t.TempDir()
	for _, tc := range []struct {
		name  string
		write func(*bytes.Buffer, []Event) error
	}{
		{"trace.jsonl", func(b *bytes.Buffer, e []Event) error { return WriteJSONL(b, e) }},
		{"trace.csv", func(b *bytes.Buffer, e []Event) error { return WriteCSV(b, e) }},
	} {
		path := filepath.Join(dir, tc.name)
		s, err := NewStreamSinkFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			s.Emit(e)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := tc.write(&want, events); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s: file diverges from batch writer", tc.name)
		}
	}
}

func TestFormatForPath(t *testing.T) {
	if FormatForPath("run.csv") != FormatCSV {
		t.Error("run.csv should map to FormatCSV")
	}
	if FormatForPath("run.jsonl") != FormatJSONL {
		t.Error("run.jsonl should map to FormatJSONL")
	}
	if FormatForPath("run") != FormatJSONL {
		t.Error("extensionless path should default to FormatJSONL")
	}
}
