package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep scheduler. Every experiment is a grid of independent
// (workload, config) cells; the scheduler fans the cells of one sweep out
// across a bounded worker pool and stores each result by cell index, so
// the assembled tables and figures are byte-identical at any worker
// count — completion order never leaks into the output.

// Progress is a per-cell completion callback: done cells out of total in
// the current sweep, plus a human-readable cell label. The Runner
// serializes calls, so implementations need no locking of their own.
type Progress func(done, total int, label string)

// Sweep runs fn for cells 0..n-1 on up to workers goroutines and returns
// the results in cell order. workers <= 0 means GOMAXPROCS. Cells are
// dispatched in index order; once any cell fails, no new cells start, and
// the error of the lowest-index failed cell is returned — the same error
// a sequential loop would have surfaced first.
func Sweep[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// Indices are dispatched contiguously from zero, so when a failure
	// stops the pool every index below the failing one has completed:
	// the lowest-index error here is exactly the first error a
	// sequential run would have hit.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweep is the Runner-bound form of Sweep: it uses the runner's worker
// count and reports each completed cell (prefixed with the sweep name)
// through the runner's progress callback.
func sweep[T any](r *Runner, name string, n int, label func(i int) string, fn func(i int) (T, error)) ([]T, error) {
	var done atomic.Int64
	return Sweep(r.workers, n, func(i int) (T, error) {
		v, err := fn(i)
		if err == nil {
			r.reportCell(int(done.Add(1)), n, name+" "+label(i))
		}
		return v, err
	})
}
