// Package channel models the EPC load channel: the single hardware path
// that moves pages between non-EPC memory and the EPC.
//
// The paper's measurements (its §3.1 and §5.6) establish three properties
// that this model reproduces exactly:
//
//  1. The channel loads one page at a time — loads are serialized.
//  2. An in-progress ELDU/ELDB load is non-preemptible: a demand fault
//     arriving mid-load waits for the load to finish.
//  3. Queued-but-unstarted preloads can be aborted (Algorithm 1 rebuilds
//     the to-load list on every fault, so at most one predicted batch is
//     ever pending).
//
// The channel is a pure time-keeper: it tracks the in-progress load and the
// pending preload batch, and leaves all policy (eviction, priorities,
// counters) to the kernel package that drives it.
package channel

import (
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// Load describes one page transfer occupying the channel.
type Load struct {
	// Page being transferred into the EPC.
	Page mem.PageID
	// Start is the cycle the channel began the transfer.
	Start uint64
	// Done is the cycle the transfer completes (Start + occupancy).
	Done uint64
	// Preload records whether the transfer was speculative (queued by a
	// predictor) rather than demanded by a fault or a SIP notification.
	Preload bool
	// Batch tags the prediction batch a preload belongs to; zero for
	// demand loads.
	Batch uint64
}

// Request is a queued (not yet started) preload.
type Request struct {
	Page  mem.PageID
	Batch uint64
	// Enqueued is the earliest cycle the transfer may start.
	Enqueued uint64
}

// server is the shared single-server state: the one physical load path.
// Multiple Channels may share a server (multi-enclave mode: each enclave
// has its own preload queue, but transfers serialize on the same
// hardware).
type server struct {
	inflight  *Load
	busyUntil uint64
	started   uint64 // total transfers begun
}

// Channel is the single-server load queue. Construct with New (private
// server) or NewGroup (shared server).
type Channel struct {
	srv         *server
	pending     []Request
	aborted     uint64 // queued preloads dropped before starting
	lastBatchID uint64
	hook        obs.Hook // nil = observability disabled
}

// SetHook installs an event hook on this channel (nil disables). In a
// shared-server group each channel carries its own hook; transfer events
// are emitted by the channel whose method started them.
func (c *Channel) SetHook(h obs.Hook) { c.hook = h }

// New returns an idle channel with its own server.
func New() *Channel { return &Channel{srv: &server{}} }

// NewGroup returns n channels sharing one load server: queued work is
// per-channel, but only one transfer can be in progress across the group.
func NewGroup(n int) []*Channel {
	srv := &server{}
	out := make([]*Channel, n)
	for i := range out {
		out[i] = &Channel{srv: srv}
	}
	return out
}

// BusyUntil returns the cycle at which the channel becomes free. If no
// load is in progress it returns the completion time of the last one (or 0).
func (c *Channel) BusyUntil() uint64 { return c.srv.busyUntil }

// Inflight returns the in-progress load, if any.
func (c *Channel) Inflight() (Load, bool) {
	if c.srv.inflight == nil {
		return Load{}, false
	}
	return *c.srv.inflight, true
}

// InflightPage returns the page of the in-progress load, or mem.NoPage.
func (c *Channel) InflightPage() mem.PageID {
	if c.srv.inflight == nil {
		return mem.NoPage
	}
	return c.srv.inflight.Page
}

// Idle reports whether no load is in progress.
func (c *Channel) Idle() bool { return c.srv.inflight == nil }

// Begin starts a transfer of page at cycle start, occupying the channel
// for occupancy cycles. The caller must have completed any in-progress
// load first (start must be >= BusyUntil) — the non-preemptibility rule.
func (c *Channel) Begin(page mem.PageID, start, occupancy uint64, preload bool, batch uint64) Load {
	if c.srv.inflight != nil {
		panic("channel: Begin while a load is in progress")
	}
	if start < c.srv.busyUntil {
		panic("channel: Begin before the channel is free (time went backwards)")
	}
	ld := Load{Page: page, Start: start, Done: start + occupancy, Preload: preload, Batch: batch}
	c.srv.inflight = &ld
	c.srv.busyUntil = ld.Done
	c.srv.started++
	if c.hook != nil {
		c.hook.Emit(obs.Event{T: ld.Start, Kind: obs.KindLoadStart,
			Page: ld.Page, Batch: ld.Batch, V1: ld.Done, V2: boolV(ld.Preload)})
	}
	return ld
}

// CompleteInflight retires the in-progress load and returns it. It panics
// if the channel is idle; callers check Inflight first.
func (c *Channel) CompleteInflight() Load {
	if c.srv.inflight == nil {
		panic("channel: CompleteInflight on idle channel")
	}
	ld := *c.srv.inflight
	c.srv.inflight = nil
	if c.hook != nil {
		c.hook.Emit(obs.Event{T: ld.Done, Kind: obs.KindLoadComplete,
			Page: ld.Page, Batch: ld.Batch, V2: boolV(ld.Preload)})
	}
	return ld
}

// QueueBatch appends a new predicted batch, eligible to start at cycle
// enqueued. When the backlog would exceed maxPending, whole stale batches
// are dropped from the front: an old list_to_load the worker never reached
// was produced for a fault the application has long since moved past.
// Dropping batch-at-a-time (rather than request-at-a-time) keeps every
// surviving batch intact, so a later fault on any still-queued predicted
// page finds its batch via AbortBatchContaining instead of being
// misclassified as an out-of-stream fault. If the new batch alone exceeds
// the cap, its own tail — the predictions farthest from the fault — is
// truncated. It returns the number of requests dropped.
func (c *Channel) QueueBatch(pages []mem.PageID, enqueued uint64, maxPending int) (dropped int) {
	c.lastBatchID++
	id := c.lastBatchID
	for _, p := range pages {
		c.pending = append(c.pending, Request{Page: p, Batch: id, Enqueued: enqueued})
		if c.hook != nil {
			c.hook.Emit(obs.Event{T: enqueued, Kind: obs.KindPreloadQueue, Page: p, Batch: id})
		}
	}
	if maxPending <= 0 || len(c.pending) <= maxPending {
		return 0
	}
	cut := 0
	for len(c.pending)-cut > maxPending && c.pending[cut].Batch != id {
		stale := c.pending[cut].Batch
		for cut < len(c.pending) && c.pending[cut].Batch == stale {
			c.dropEvent(c.pending[cut], enqueued, obs.AbortOverflow)
			cut++
		}
	}
	dropped = cut
	copy(c.pending, c.pending[cut:])
	c.pending = c.pending[:len(c.pending)-cut]
	if len(c.pending) > maxPending {
		// Only the new batch remains and it is larger than the cap:
		// keep its head (the pages nearest the fault).
		for _, r := range c.pending[maxPending:] {
			c.dropEvent(r, enqueued, obs.AbortOverflow)
		}
		dropped += len(c.pending) - maxPending
		c.pending = c.pending[:maxPending]
	}
	c.aborted += uint64(dropped)
	return dropped
}

// dropEvent emits a preload-abort event for a dropped request.
func (c *Channel) dropEvent(r Request, now uint64, reason uint64) {
	if c.hook != nil {
		c.hook.Emit(obs.Event{T: now, Kind: obs.KindPreloadAbort,
			Page: r.Page, Batch: r.Batch, V1: reason})
	}
}

// boolV encodes a flag as an event value.
func boolV(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AbortBatchContaining drops every queued request belonging to the batch
// that contains page — the paper's in-stream abort: a fault landing on a
// predicted page that has not been loaded yet cancels the remainder of
// that prediction. now is the cycle of the triggering fault (it stamps
// the abort events). It reports whether any batch matched.
func (c *Channel) AbortBatchContaining(page mem.PageID, now uint64) bool {
	batch := uint64(0)
	for _, r := range c.pending {
		if r.Page == page {
			batch = r.Batch
			break
		}
	}
	if batch == 0 {
		return false
	}
	kept := c.pending[:0]
	for _, r := range c.pending {
		if r.Batch == batch {
			c.aborted++
			c.dropEvent(r, now, obs.AbortInWindow)
			continue
		}
		kept = append(kept, r)
	}
	c.pending = kept
	return true
}

// RemovePending removes a single queued request for page (the SIP notify
// path demand-loads it instead) at cycle now. It reports whether a
// request was removed.
func (c *Channel) RemovePending(page mem.PageID, now uint64) bool {
	for i, r := range c.pending {
		if r.Page == page {
			c.dropEvent(r, now, obs.AbortSIP)
			copy(c.pending[i:], c.pending[i+1:])
			c.pending = c.pending[:len(c.pending)-1]
			return true
		}
	}
	return false
}

// PushAll replaces the pending queue with reqs, preserving order. The
// kernel uses it to restore a popped-but-not-startable head.
func (c *Channel) PushAll(reqs []Request) {
	c.pending = append(c.pending[:0], reqs...)
}

// AbortPending drops every queued preload at cycle now and returns how
// many were dropped; used when preloading is shut down mid-run.
func (c *Channel) AbortPending(now uint64) int {
	n := len(c.pending)
	for _, r := range c.pending {
		c.dropEvent(r, now, obs.AbortStop)
	}
	c.aborted += uint64(n)
	c.pending = c.pending[:0]
	return n
}

// PendingContains reports whether page is in the queued (unstarted) batch.
func (c *Channel) PendingContains(page mem.PageID) bool {
	for _, r := range c.pending {
		if r.Page == page {
			return true
		}
	}
	return false
}

// PendingLen returns the number of queued preloads.
func (c *Channel) PendingLen() int { return len(c.pending) }

// PopPending removes and returns the next queued preload. The boolean is
// false when the queue is empty.
func (c *Channel) PopPending() (Request, bool) {
	if len(c.pending) == 0 {
		return Request{}, false
	}
	r := c.pending[0]
	// Shift rather than re-slice so the backing array is reused and the
	// queue cannot retain an unbounded tail.
	copy(c.pending, c.pending[1:])
	c.pending = c.pending[:len(c.pending)-1]
	return r, true
}

// Started returns the total number of transfers begun on the (possibly
// shared) server.
func (c *Channel) Started() uint64 { return c.srv.started }

// Aborted returns the total number of queued preloads dropped.
func (c *Channel) Aborted() uint64 { return c.aborted }
