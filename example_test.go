package sgxpreload_test

import (
	"fmt"
	"log"

	"sgxpreload"
)

// The godoc examples double as executable documentation: `go test` runs
// them and checks their output, so the README snippets can never rot.

func Example() {
	w, err := sgxpreload.Benchmark("lbm")
	if err != nil {
		log.Fatal(err)
	}
	base, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	dfp, err := sgxpreload.Run(w, sgxpreload.Config{Scheme: sgxpreload.DFP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lbm DFP improvement: %+.1f%%\n", sgxpreload.ImprovementPct(dfp, base))
	// Output: lbm DFP improvement: +13.3%
}

func ExampleProfile() {
	w, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sgxpreload.DefaultConfig()
	sel, err := sgxpreload.Profile(w, cfg) // train input, 5% threshold
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumentation points: %d\n", sel.Points())

	base, err := sgxpreload.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Scheme, cfg.Selection = sgxpreload.SIP, sel
	res, err := sgxpreload.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deepsjeng SIP improvement: %+.1f%%\n", sgxpreload.ImprovementPct(res, base))
	// Output:
	// instrumentation points: 59
	// deepsjeng SIP improvement: +9.2%
}

func ExampleRunShared() {
	lbm, err := sgxpreload.Benchmark("lbm")
	if err != nil {
		log.Fatal(err)
	}
	dj, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{
		{Workload: lbm, Scheme: sgxpreload.DFPStop},
		{Workload: dj, Scheme: sgxpreload.Baseline},
	}, sgxpreload.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("%s faulted: %v\n", r.Name, r.Faults > 0)
	}
	// Output:
	// lbm faulted: true
	// deepsjeng faulted: true
}
