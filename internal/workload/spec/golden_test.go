package spec

import (
	"flag"
	"os"
	"testing"

	"sgxpreload/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenManifest pins the fixture spec's compiled manifest byte for
// byte. A diff here means arrival generation changed behaviour —
// sampler order, seeding, envelope handling, or tie-breaking — which is
// an intentional, reviewed event, never drift. Regenerate with
// `go test ./internal/workload/spec -run TestGoldenManifest -update`.
func TestGoldenManifest(t *testing.T) {
	s := loadFixture(t)
	arrivals, m, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet.CloseArrivals(arrivals)
	got := m.String()
	const path = "testdata/fixture.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("manifest diverged from %s (regenerate with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}
