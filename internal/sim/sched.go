package sim

// The event-heap scheduler. The seed engine picked the next enclave by
// a linear argmin over clock + nextAccess.Compute — O(E) per step, fine
// at E <= 8, hostile at fleet sizes. eventHeap replaces it with an
// indexed binary min-heap at O(log E) per step, ordered
// lexicographically by (key, enclave index) so the root is *exactly*
// the enclave the seed's strict first-min scan would have picked: among
// equal keys the lowest index wins, byte for byte (the golden
// differential tests are the proof obligation).
//
// The layout is struct-of-arrays: hKey and hEnc are parallel slices (a
// heap slot's key and enclave index live at the same offset), and pos
// maps enclave index back to its slot. A sift therefore walks two flat
// uint64/int32 arrays — cache lines, not pointers — and the whole
// structure is allocated once in New, so heap maintenance contributes
// zero allocations per Step.
//
// The heap is 4-ary, not binary: the dominant operation is sifting the
// freshly-run root back down (its new key usually passes most of the
// fleet), and a wider node halves the depth while the extra sibling
// comparisons read *contiguous* hKey entries — one cache line serves
// the whole child scan. Measured on BenchmarkStep, 4-ary beats binary
// by a consistent few percent per Step at fleet sizes.
//
// Scheduling keys are monotone: an enclave's new key after a step is
// its advanced clock plus the next access's compute, and the clock
// advances by at least the compute the old key already included. Step
// therefore only ever needs reheapUp for the just-run root in theory —
// but fix() handles both directions so the invariant is structural, not
// assumed.

// invalidPos marks an enclave that is out of the heap (stream
// exhausted).
const invalidPos = int32(-1)

// eventHeap is the indexed min-heap over runnable enclaves.
type eventHeap struct {
	hKey []uint64 // heap slot -> scheduling key (clock + next compute)
	hEnc []int32  // heap slot -> enclave index
	pos  []int32  // enclave index -> heap slot, invalidPos when absent
}

// init sizes the heap's arrays for n enclaves with no entries.
func (h *eventHeap) init(n int) {
	h.hKey = make([]uint64, 0, n)
	h.hEnc = make([]int32, 0, n)
	h.pos = make([]int32, n)
	for i := range h.pos {
		h.pos[i] = invalidPos
	}
}

// len reports the number of runnable enclaves.
func (h *eventHeap) len() int { return len(h.hEnc) }

// min returns the enclave index with the smallest (key, index) pair.
// The heap must be non-empty.
func (h *eventHeap) min() int32 { return h.hEnc[0] }

// less orders heap slots a and b lexicographically by (key, enclave
// index): the strict first-min tie-break of the seed's linear argmin.
func (h *eventHeap) less(a, b int) bool {
	return h.hKey[a] < h.hKey[b] ||
		(h.hKey[a] == h.hKey[b] && h.hEnc[a] < h.hEnc[b])
}

// swap exchanges heap slots a and b, keeping pos in sync.
func (h *eventHeap) swap(a, b int) {
	h.hKey[a], h.hKey[b] = h.hKey[b], h.hKey[a]
	h.hEnc[a], h.hEnc[b] = h.hEnc[b], h.hEnc[a]
	h.pos[h.hEnc[a]] = int32(a)
	h.pos[h.hEnc[b]] = int32(b)
}

// push inserts enclave i with the given key. Indices past the size the
// heap was initialized with extend the pos array — dynamic admission
// appends enclaves after init.
func (h *eventHeap) push(i int32, key uint64) {
	for int(i) >= len(h.pos) {
		h.pos = append(h.pos, invalidPos)
	}
	h.hKey = append(h.hKey, key)
	h.hEnc = append(h.hEnc, i)
	h.pos[i] = int32(len(h.hEnc) - 1)
	h.up(len(h.hEnc) - 1)
}

// updateMin rewrites the root's key and restores heap order. The root
// must exist.
func (h *eventHeap) updateMin(key uint64) {
	h.hKey[0] = key
	h.down(0)
}

// popMin removes the root enclave from the heap.
func (h *eventHeap) popMin() {
	last := len(h.hEnc) - 1
	h.pos[h.hEnc[0]] = invalidPos
	if last > 0 {
		h.hKey[0] = h.hKey[last]
		h.hEnc[0] = h.hEnc[last]
		h.pos[h.hEnc[0]] = 0
	}
	h.hKey = h.hKey[:last]
	h.hEnc = h.hEnc[:last]
	if last > 0 {
		h.down(0)
	}
}

// fix restores heap order after enclave i's key changed to key, in
// either direction. Enclave i must be in the heap.
func (h *eventHeap) fix(i int32, key uint64) {
	s := int(h.pos[i])
	h.hKey[s] = key
	h.up(s)
	h.down(s)
}

// up sifts slot s toward the root.
func (h *eventHeap) up(s int) {
	for s > 0 {
		parent := (s - 1) / 4
		if !h.less(s, parent) {
			return
		}
		h.swap(s, parent)
		s = parent
	}
}

// down sifts slot s toward the leaves. The displaced entry travels as a
// hole: children shift up one level each and the entry lands once at
// the end, half the writes of a swap-per-level sift — this is the
// scheduler's single hottest loop (the freshly-run root re-keys ahead
// of most of the fleet every Step).
func (h *eventHeap) down(s int) {
	n := len(h.hEnc)
	key, enc := h.hKey[s], h.hEnc[s]
	for {
		first := 4*s + 1
		if first >= n {
			break
		}
		// Scan the up-to-four children (contiguous hKey entries) for
		// the (key, enclave)-lexicographic minimum.
		kid, kk, ke := first, h.hKey[first], h.hEnc[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if ck, ce := h.hKey[c], h.hEnc[c]; ck < kk || (ck == kk && ce < ke) {
				kid, kk, ke = c, ck, ce
			}
		}
		if kk > key || (kk == key && ke > enc) {
			break
		}
		h.hKey[s], h.hEnc[s] = kk, ke
		h.pos[ke] = int32(s)
		s = kid
	}
	h.hKey[s], h.hEnc[s] = key, enc
	h.pos[enc] = int32(s)
}
