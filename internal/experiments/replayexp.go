package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"sgxpreload/internal/obs"
	"sgxpreload/internal/replay"
	"sgxpreload/internal/sim"
)

// ReplayReport is the trace-replay validation artifact: it proves that a
// run's derived metrics survive the export → parse → re-derive round
// trip bit-for-bit (so recorded artifacts can be re-analyzed without
// re-simulating, and shared traces are trustworthy), then demonstrates
// the diff layer on the paper's canonical pair — the same benchmark
// under plain DFP and under DFP-stop (Figure 8's comparison, §4.2).
type ReplayReport struct {
	// Benchmark is the traced workload.
	Benchmark string
	// Events and TraceBytes size the exported primary (DFP-stop) trace.
	Events     int
	TraceBytes int
	// ReportIdentical records whether the live Report and the Report
	// re-derived from the parsed trace render to identical bytes.
	ReportIdentical bool
	// EventsIdentical records whether the parsed timeline equals the
	// recorded one event-for-event.
	EventsIdentical bool
	// StreamIdentical records whether the streaming sink export (the
	// `sgxsim -trace` path) produced the same bytes as the batch writer.
	StreamIdentical bool
	// Diff compares the DFP timeline (a) against DFP-stop (b).
	Diff replay.Diff
}

// Replay runs the default replay validation: deepsjeng, the safety-valve
// benchmark, under DFP-stop (round trip) and DFP (diff pair).
func Replay(r *Runner) (*ReplayReport, error) {
	return ReplayRun(r, "deepsjeng")
}

// ReplayRun executes the replay validation on one benchmark: trace it
// under DFP-stop, round-trip the trace through JSONL, and diff it
// against the same workload under plain DFP.
func ReplayRun(r *Runner, bench string) (*ReplayReport, error) {
	w, err := mustWorkload(bench)
	if err != nil {
		return nil, err
	}
	_, recStop, err := r.RunTraced(w, sim.DFPStop)
	if err != nil {
		return nil, err
	}
	_, recDFP, err := r.RunTraced(w, sim.DFP)
	if err != nil {
		return nil, err
	}

	// Export through the streaming sink — the same path `sgxsim -trace`
	// uses — and cross-check it against the batch writer: the two
	// encoders must produce identical bytes for the same timeline.
	live := recStop.Events()
	var buf bytes.Buffer
	sink := obs.NewStreamSink(&buf, obs.FormatJSONL)
	for _, e := range live {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		return nil, fmt.Errorf("experiments: replay export: %w", err)
	}
	var batch strings.Builder
	if err := recStop.WriteJSONL(&batch); err != nil {
		return nil, fmt.Errorf("experiments: replay export: %w", err)
	}
	streamIdentical := buf.String() == batch.String()
	replayed, err := replay.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("experiments: replay parse: %w", err)
	}
	eventsIdentical := len(replayed) == len(live)
	for i := 0; eventsIdentical && i < len(live); i++ {
		eventsIdentical = live[i] == replayed[i]
	}
	liveReport := obs.BuildReport(live).String()
	replayReport := obs.BuildReport(replayed).String()

	return &ReplayReport{
		Benchmark:       bench,
		Events:          recStop.Len(),
		TraceBytes:      buf.Len(),
		ReportIdentical: liveReport == replayReport,
		EventsIdentical: eventsIdentical,
		StreamIdentical: streamIdentical,
		Diff:            replay.Compare(recDFP.Events(), recStop.Events()),
	}, nil
}

// String renders the report.
func (a *ReplayReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traced run:          %s under dfp-stop (%d events, %d trace bytes)\n",
		a.Benchmark, a.Events, a.TraceBytes)
	status := func(ok bool) string {
		if ok {
			return "byte-identical"
		}
		return "MISMATCH"
	}
	fmt.Fprintf(&b, "round-trip events:   %s\n", status(a.EventsIdentical))
	fmt.Fprintf(&b, "round-trip report:   %s\n", status(a.ReportIdentical))
	fmt.Fprintf(&b, "stream vs batch:     %s\n", status(a.StreamIdentical))
	fmt.Fprintf(&b, "diff (a = %s dfp, b = %s dfp-stop):\n", a.Benchmark, a.Benchmark)
	b.WriteString(a.Diff.String())
	return b.String()
}
