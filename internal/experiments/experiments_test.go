package experiments

import (
	"testing"

	"sgxpreload/internal/sim"
	"sgxpreload/internal/workload"
)

// The experiment tests assert the paper's qualitative findings — who
// wins, by roughly what factor, where the optima fall — with tolerances
// wide enough to survive parameter-level recalibration but tight enough
// that a broken scheme or workload model fails loudly. EXPERIMENTS.md
// records the precise measured values next to the paper's.

// sharedRunner caches traces and profiles across tests in this package.
var sharedRunner = NewRunner(Default())

func TestMotivation(t *testing.T) {
	m, err := Motivation(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if m.EnclaveFaultCost < 60000 || m.EnclaveFaultCost > 64000 {
		t.Errorf("enclave fault cost = %d, want the paper's 60k-64k band", m.EnclaveFaultCost)
	}
	if m.RegularFaultCost != 2000 {
		t.Errorf("regular fault cost = %d, want 2000", m.RegularFaultCost)
	}
	// The paper observed ~46x on a raw 1GB scan; our scaled scan carries a
	// little more compute per page, so the band is wide — but the slowdown
	// must be an order of magnitude, not a few percent.
	if m.Slowdown < 5 {
		t.Errorf("enclave slowdown = %.1fx, want >= 5x", m.Slowdown)
	}
}

func TestFigure3Patterns(t *testing.T) {
	f, err := Figure3(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure3Row{}
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	for _, seq := range []string{"bwaves", "lbm"} {
		b := byName[seq]
		if b.Pattern.StreamRatio < 0.5 {
			t.Errorf("%s stream ratio = %.2f, want >= 0.5 (evidently sequential)", seq, b.Pattern.StreamRatio)
		}
	}
	d := byName["deepsjeng"]
	if d.Pattern.StreamRatio > 0.3 {
		t.Errorf("deepsjeng stream ratio = %.2f, want <= 0.3 (irregular)", d.Pattern.StreamRatio)
	}
	// lbm's page-vs-time plot is a set of clean parallel ramps (its arrays
	// are swept in lockstep); deepsjeng's is noise. The stream recognizer
	// separates them by an order of magnitude.
	if byName["lbm"].Pattern.StreamRatio < 4*d.Pattern.StreamRatio {
		t.Errorf("lbm stream ratio %.2f not ≫ deepsjeng's %.2f",
			byName["lbm"].Pattern.StreamRatio, d.Pattern.StreamRatio)
	}
}

func TestFigure6StreamListLength(t *testing.T) {
	f, err := Figure6(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	best := f.Best()
	if best < 20 || best > 40 {
		t.Errorf("combined optimum at length %d, want near the paper's 30", best)
	}
	// bwaves sweeps ~24 arrays concurrently: short lists must thrash.
	if f.Bwaves[0] < f.Bwaves[4]+0.02 {
		t.Errorf("bwaves at length 2 (%.3f) should be clearly worse than at 30 (%.3f)",
			f.Bwaves[0], f.Bwaves[4])
	}
	// lbm needs only a handful of streams; by length 10 it must be at its
	// plateau (within half a percent of its length-30 value).
	if f.Lbm[2] > f.Lbm[4]+0.005 {
		t.Errorf("lbm at length 10 (%.3f) should match its plateau (%.3f)", f.Lbm[2], f.Lbm[4])
	}
}

func TestFigure7LoadLength(t *testing.T) {
	f, err := Figure7(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range f.Benchmarks {
		idx[n] = i
	}
	llIdx := map[int]int{}
	for i, ll := range f.LoadLengths {
		llIdx[ll] = i
	}
	// The paper: past 4 pages per preload, mcf and deepsjeng lose
	// substantially.
	for _, irr := range []string{"mcf", "deepsjeng"} {
		row := f.Norm[idx[irr]]
		if row[llIdx[32]] < row[llIdx[4]]+0.03 {
			t.Errorf("%s at L=32 (%.3f) should be substantially worse than L=4 (%.3f)",
				irr, row[llIdx[32]], row[llIdx[4]])
		}
	}
	// Regular benchmarks keep improving (or hold) as the distance grows.
	for _, reg := range []string{"lbm", "bwaves"} {
		row := f.Norm[idx[reg]]
		if row[llIdx[8]] > row[llIdx[1]] {
			t.Errorf("%s at L=8 (%.3f) should not be worse than L=1 (%.3f)",
				reg, row[llIdx[8]], row[llIdx[1]])
		}
	}
}

func TestFigure8DFP(t *testing.T) {
	f, err := Figure8(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Figure8Row{}
	for _, r := range f.Rows {
		rows[r.Name] = r
	}
	// Regular set gains; the paper's microbenchmark peaks at +18.6% and
	// the regular mean is 11.4%.
	if got := rows["microbenchmark"].DFPImprovement; got < 14 || got > 24 {
		t.Errorf("microbenchmark DFP = %+.1f%%, want near +18.6%%", got)
	}
	if got := rows["lbm"].DFPImprovement; got < 9 || got > 17 {
		t.Errorf("lbm DFP = %+.1f%%, want near +13.3%%", got)
	}
	if f.RegularMean < 8 || f.RegularMean > 18 {
		t.Errorf("regular mean = %.1f%%, want near the paper's 11.4%%", f.RegularMean)
	}
	// Irregular set loses under plain DFP...
	for _, irr := range []string{"deepsjeng", "roms", "omnetpp"} {
		if got := rows[irr].DFPImprovement; got > -10 {
			t.Errorf("%s plain DFP = %+.1f%%, want a substantial loss", irr, got)
		}
	}
	if got := rows["mcf"].DFPImprovement; got > -1 {
		t.Errorf("mcf plain DFP = %+.1f%%, want a loss", got)
	}
	// ...and DFP-stop bounds every loss to a few percent (paper: the
	// overhead mean drops from 38.52%% to 2.82%%).
	for _, r := range f.Rows {
		if r.StopImprovement < -4 {
			t.Errorf("%s DFP-stop = %+.1f%%, want bounded loss (>= -4%%)", r.Name, r.StopImprovement)
		}
	}
	if f.OverheadMeanStop > 4 {
		t.Errorf("overhead mean under DFP-stop = %.1f%%, want <= 4%%", f.OverheadMeanStop)
	}
	if f.OverheadMeanDFP < 4*f.OverheadMeanStop {
		t.Errorf("stop mechanism recovered too little: %.1f%% -> %.1f%%",
			f.OverheadMeanDFP, f.OverheadMeanStop)
	}
	// The safety valve must fire exactly on the benchmarks that need it.
	for _, irr := range []string{"deepsjeng", "roms", "omnetpp", "mcf"} {
		if !rows[irr].Stopped {
			t.Errorf("%s: safety valve did not fire", irr)
		}
	}
	for _, reg := range []string{"lbm", "bwaves", "wrf", "microbenchmark"} {
		if rows[reg].Stopped {
			t.Errorf("%s: safety valve fired on a regular benchmark", reg)
		}
	}
}

func TestFigure9Threshold(t *testing.T) {
	f, err := Figure9(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	best := f.Best()
	if best < 0.02 || best > 0.10 {
		t.Errorf("best threshold = %.0f%%, want near the paper's 5%%", best*100)
	}
	// Points must shrink monotonically as the threshold rises.
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i] > f.Points[i-1] {
			t.Errorf("points not monotone: %v", f.Points)
			break
		}
	}
	// 50% must be worse than the sweet spot: it forgoes most conversions.
	if f.Normalized[len(f.Normalized)-1] < f.Normalized[2] {
		t.Errorf("threshold 50%% (%.3f) outperformed 5%% (%.3f)",
			f.Normalized[len(f.Normalized)-1], f.Normalized[2])
	}
}

func TestFigure10SIP(t *testing.T) {
	f, err := Figure10(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]SchemeRow{}
	for _, r := range f.Rows {
		rows[r.Name] = r
	}
	if got := rows["deepsjeng"].Improvement; got < 6 || got > 16 {
		t.Errorf("deepsjeng SIP = %+.1f%%, want near the paper's +9.0%%", got)
	}
	if got := rows["mcf.2006"].Improvement; got < 2 || got > 9 {
		t.Errorf("mcf.2006 SIP = %+.1f%%, want near the paper's +4.9%%", got)
	}
	// mcf is the wash: check overhead on Class-1 accesses offsets the
	// Class-3 gains.
	if got := rows["mcf"].Improvement; got < -2.5 || got > 2.5 {
		t.Errorf("mcf SIP = %+.1f%%, want a wash (|x| <= 2.5%%)", got)
	}
	// lbm and the microbenchmark have no irregular sites: zero points,
	// zero effect.
	for _, name := range []string{"lbm", "microbenchmark"} {
		if rows[name].Points != 0 {
			t.Errorf("%s: %d instrumentation points, want 0", name, rows[name].Points)
		}
		if got := rows[name].Improvement; got < -0.5 || got > 0.5 {
			t.Errorf("%s SIP = %+.1f%%, want ~0", name, got)
		}
	}
}

func TestFigure11Vision(t *testing.T) {
	f, err := Figure11(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if f.SIFTDFPImprovement < 6 || f.SIFTDFPImprovement > 15 {
		t.Errorf("SIFT DFP = %+.1f%%, want near the paper's +9.5%%", f.SIFTDFPImprovement)
	}
	if f.MSERSIPImprovement < 1.5 || f.MSERSIPImprovement > 9 {
		t.Errorf("MSER SIP = %+.1f%%, want near the paper's +3.0%%", f.MSERSIPImprovement)
	}
}

func TestFigure12Hybrid(t *testing.T) {
	f, err := Figure12(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f.Rows {
		best := row.SIP
		if row.DFP < best {
			best = row.DFP
		}
		// Hybrid ≈ best of the two. The paper's own worst case is mcf,
		// where the hybrid loses ~4.2% even though each scheme alone is
		// near neutral — so the bound is "close to the best scheme, and
		// never beyond the paper's worst-case overhead".
		if row.Hybrid > best+0.05 {
			t.Errorf("%s hybrid %.3f much worse than best single scheme %.3f",
				row.Name, row.Hybrid, best)
		}
		if row.Hybrid > 1.055 {
			t.Errorf("%s hybrid %.3f exceeds the paper's worst-case band (~1.042)", row.Name, row.Hybrid)
		}
	}
}

func TestFigure13MixedBlood(t *testing.T) {
	f, err := Figure13(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	row := f.Row
	// The paper: SIP +1.6%, DFP +6.0%, hybrid +7.1% — the hybrid beats
	// both schemes alone, and DFP beats SIP.
	if !(row.Hybrid < row.DFP && row.Hybrid < row.SIP) {
		t.Errorf("hybrid (%.3f) does not beat both SIP (%.3f) and DFP (%.3f)",
			row.Hybrid, row.SIP, row.DFP)
	}
	if !(row.DFP < row.SIP) {
		t.Errorf("DFP (%.3f) should beat SIP (%.3f) on mixed-blood", row.DFP, row.SIP)
	}
	if imp := 100 * (1 - row.Hybrid); imp < 4 || imp > 12 {
		t.Errorf("hybrid improvement = %+.1f%%, want near the paper's +7.1%%", imp)
	}
}

func TestTable1Classification(t *testing.T) {
	tab, err := Table1(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if m := tab.Mismatches(); len(m) != 0 {
		t.Errorf("measured classification disagrees with Table 1: %v", m)
	}
}

func TestTable2Points(t *testing.T) {
	tab, err := Table2(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	points := map[string]int{}
	for _, r := range tab.Rows {
		points[r.Name] = r.Points
	}
	// Zero-point benchmarks must be exactly zero (the §5.5 TCB argument).
	for _, name := range []string{"lbm", "SIFT", "microbenchmark"} {
		if points[name] != 0 {
			t.Errorf("%s: %d points, want 0", name, points[name])
		}
	}
	// The ordering of the instrumented ones must match the paper:
	// mcf.2006 > mcf > deepsjeng/MSER/xz > 0.
	if !(points["mcf.2006"] > points["mcf"]) {
		t.Errorf("mcf.2006 (%d) should have more points than mcf (%d)",
			points["mcf.2006"], points["mcf"])
	}
	for _, name := range []string{"xz", "deepsjeng", "MSER"} {
		if points[name] <= 0 || points[name] >= points["mcf"] {
			t.Errorf("%s: %d points, want in (0, mcf=%d)", name, points[name], points["mcf"])
		}
	}
}

func TestSchemeStringsAndSets(t *testing.T) {
	if sim.Hybrid.String() != "SIP+DFP" {
		t.Errorf("hybrid scheme name = %q", sim.Hybrid.String())
	}
	if len(LargeWorkingSet()) != 9 || len(SIPSet()) != 6 || len(Figure7Set()) != 7 {
		t.Error("experiment benchmark sets changed size unexpectedly")
	}
}

func TestRunStreamedMatchesRun(t *testing.T) {
	// The streamed runner path must reproduce the materialized runner's
	// results exactly, including the SIP-profiled schemes.
	r := NewRunner(Default())
	for _, tc := range []struct {
		bench  string
		scheme sim.Scheme
	}{
		{"lbm", sim.DFPStop},
		{"deepsjeng", sim.Baseline},
		{"microbenchmark", sim.Hybrid},
	} {
		w, err := workload.ByName(tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := r.Run(w, tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		str, err := r.RunStreamed(w, tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if mat != str {
			t.Errorf("%s/%s: RunStreamed diverges from Run:\n  run    %+v\n  stream %+v",
				tc.bench, tc.scheme, mat, str)
		}
	}
	// Non-instrumentable SIP requests fail the same way on both paths.
	w, err := workload.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunStreamed(w, sim.SIP); err == nil {
		t.Error("RunStreamed instrumented a Fortran benchmark")
	}
}
