package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestShardedFleet(t *testing.T) {
	a, err := ShardedFleet(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cycles) != len(a.Shards) || len(a.Names) != len(shardedFleetBenches) {
		t.Fatalf("result shape: %d settings x %d enclaves", len(a.Cycles), len(a.Names))
	}
	// The isolated setting (shards == enclaves) must run each enclave at
	// least as fast as the fully contended single-domain setting, and
	// the fleet total must shrink monotonically as EPC domains are
	// added — contention can only dissolve.
	prev := ^uint64(0)
	for si, shards := range a.Shards {
		var sum uint64
		for i, c := range a.Cycles[si] {
			sum += c
			if c < a.Cycles[len(a.Shards)-1][i] {
				t.Errorf("shards=%d: %s runs faster contended (%d) than isolated (%d)",
					shards, a.Names[i], c, a.Cycles[len(a.Shards)-1][i])
			}
		}
		if sum > prev {
			t.Errorf("shards=%d: fleet total %d exceeds the previous setting's %d (contention grew with more domains)",
				shards, sum, prev)
		}
		prev = sum
	}
	out := a.String()
	for _, want := range []string{"shards", "mean slowdown", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestShardedFleetDeterministic: the study must render identically at
// any worker-pool size — the sharded runner's merge is by index, so
// parallelism never leaks into the table.
func TestShardedFleetDeterministic(t *testing.T) {
	render := func(workers int) string {
		r := NewRunner(Default())
		r.SetParallelism(workers)
		a, err := ShardedFleet(r)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v\n%s", a, a.String())
	}
	seq := render(1)
	if par := render(8); par != seq {
		t.Error("sharded fleet study differs between 1 and 8 workers")
	}
}
