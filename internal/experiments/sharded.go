package experiments

import (
	"fmt"

	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

// The sharded-fleet study: the same enclave population simulated over a
// varying number of independent EPC domains. One shard is the paper's
// §5.6 regime taken to fleet scale — every enclave contending for one
// physical EPC; at shards == enclaves every enclave runs isolated, the
// solo reference. The settings in between are what a multi-host
// deployment looks like, and the sweep quantifies how much of the
// contention slowdown each added EPC domain buys back. Shards simulate
// on the runner's worker pool via sim.RunSharded; the table is
// byte-identical at any parallelism.

// shardedFleetBenches is the fleet's composition: two regular, one
// irregular, one fault-dominated benchmark, replicated twice — eight
// enclaves with heterogeneous footprints and access patterns.
var shardedFleetBenches = []string{
	"lbm", "deepsjeng", "mcf", "microbenchmark",
	"lbm", "deepsjeng", "mcf", "microbenchmark",
}

// ShardedFleetResult holds per-enclave cycles at each shard setting,
// re-ordered back to fleet (placement) order so settings are
// comparable row by row.
type ShardedFleetResult struct {
	Names  []string   // enclave names in fleet order
	Shards []int      // shard settings swept
	Cycles [][]uint64 // [setting][enclave in fleet order]
	Faults []uint64   // [setting] total demand faults
}

// ShardedFleet sweeps the eight-enclave fleet over 1, 2, 4, and 8 EPC
// domains. Each domain has the runner's EPCPages frames, every enclave
// runs DFP-stop, and placement is the sharded runner's deterministic
// round-robin.
func ShardedFleet(r *Runner) (ShardedFleetResult, error) {
	out := ShardedFleetResult{Shards: []int{1, 2, 4, 8}}
	encs := make([]sim.Enclave, len(shardedFleetBenches))
	for i, name := range shardedFleetBenches {
		w, err := mustWorkload(name)
		if err != nil {
			return out, err
		}
		encs[i] = sim.Enclave{
			Name:   fmt.Sprintf("%s/%d", name, i/4),
			Trace:  r.Trace(w, workload.Ref),
			Pages:  w.ELRangePages(),
			Scheme: sim.DFPStop,
		}
		out.Names = append(out.Names, encs[i].Name)
	}
	for _, shards := range out.Shards {
		groups, err := sim.ShardRoundRobin(encs, shards)
		if err != nil {
			return out, err
		}
		res, err := sim.RunSharded(groups, sim.SharedConfig{EPCPages: r.p.EPCPages}, r.workers)
		if err != nil {
			return out, err
		}
		// Round-robin placement put fleet index i into group[i%S][i/S];
		// invert it so every setting's row is in fleet order.
		cycles := make([]uint64, len(encs))
		var faults uint64
		for s, shard := range res {
			for j, sr := range shard {
				cycles[s+j*shards] = sr.Cycles
				faults += sr.Kernel.DemandFaults
			}
		}
		out.Cycles = append(out.Cycles, cycles)
		out.Faults = append(out.Faults, faults)
	}
	return out, nil
}

// String renders the sweep: per shard setting, the fleet's total and
// worst per-enclave slowdown versus the fully isolated run (shards ==
// enclaves), plus total demand faults.
func (a ShardedFleetResult) String() string {
	t := &stats.Table{Header: []string{"shards", "sum cycles", "mean slowdown", "max slowdown", "faults"}}
	iso := a.Cycles[len(a.Cycles)-1] // shards == enclaves: every enclave isolated
	for si, shards := range a.Shards {
		var sum uint64
		var worst, mean float64
		for i, c := range a.Cycles[si] {
			sum += c
			slow := stats.Normalized(c, iso[i])
			mean += slow
			if slow > worst {
				worst = slow
			}
		}
		mean /= float64(len(iso))
		t.Add(shards, sum, fmt.Sprintf("%.2fx", mean), fmt.Sprintf("%.2fx", worst), a.Faults[si])
	}
	return fmt.Sprintf("Fleet: %d enclaves over independent EPC domains (sharded runner)\n", len(a.Names)) +
		t.String()
}
