// Package trace provides the offline trace tooling of the paper's §3.1:
// recording page-level access traces, extracting page-access patterns
// (Figure 3), measuring sequentiality, and least-squares curve fitting —
// the analysis the authors run on instrumented profiling runs to decide
// which benchmarks exhibit stream behavior.
package trace

import (
	"math"

	"sgxpreload/internal/mem"
)

// Sample is one point of a page-access pattern plot: the page touched at
// the i-th access (the paper's Figure 3 plots page number against time).
type Sample struct {
	// Index is the access sequence number standing in for the timestamp.
	Index uint64
	// Page is the page touched.
	Page mem.PageID
}

// Recorder collects a downsampled page-access pattern from a trace.
type Recorder struct {
	every   uint64
	seen    uint64
	samples []Sample
}

// NewRecorder returns a Recorder keeping every n-th access (n >= 1).
func NewRecorder(every uint64) *Recorder {
	if every == 0 {
		every = 1
	}
	return &Recorder{every: every}
}

// Record observes one access.
func (r *Recorder) Record(page mem.PageID) {
	if r.seen%r.every == 0 {
		r.samples = append(r.samples, Sample{Index: r.seen, Page: page})
	}
	r.seen++
}

// Samples returns the collected pattern.
func (r *Recorder) Samples() []Sample { return r.samples }

// Pattern summarizes the page-level behavior of a trace.
type Pattern struct {
	// Accesses is the total number of accesses.
	Accesses uint64
	// Footprint is the number of distinct pages touched.
	Footprint uint64
	// SequentialRatio is the fraction of accesses whose page is within one
	// page of the previous access by the same trace (|Δ| <= 1).
	SequentialRatio float64
	// StreamRatio is the fraction of accesses that extend one of the 30
	// most recent streams (computed with the multi-stream recognizer's
	// strict adjacency rule over a window of recent pages).
	StreamRatio float64
	// MeanRunLength is the average length of maximal |Δ| = +1 runs.
	MeanRunLength float64
	// Writes is the number of write accesses.
	Writes uint64
}

// Analyze computes the Pattern of a trace.
func Analyze(trace []mem.Access) Pattern {
	p := Pattern{Accesses: uint64(len(trace))}
	if len(trace) == 0 {
		return p
	}
	distinct := make(map[mem.PageID]struct{}, 1024)
	// Recent stream tails (fixed window like DFP's default stream list).
	const window = 30
	var tails [window]mem.PageID
	for i := range tails {
		tails[i] = mem.NoPage
	}
	tailPos := 0

	var seq, stream uint64
	var runs, runTotal uint64
	runLen := uint64(1)
	prev := trace[0].Page
	distinct[prev] = struct{}{}
	if trace[0].Write {
		p.Writes++
	}
	tails[tailPos] = prev
	tailPos = (tailPos + 1) % window

	for _, a := range trace[1:] {
		distinct[a.Page] = struct{}{}
		if a.Write {
			p.Writes++
		}
		delta := int64(a.Page) - int64(prev)
		if delta >= -1 && delta <= 1 {
			seq++
		}
		if delta == 1 {
			runLen++
		} else {
			runs++
			runTotal += runLen
			runLen = 1
		}
		matched := false
		for i := range tails {
			if tails[i] != mem.NoPage && a.Page == tails[i]+1 {
				tails[i] = a.Page
				matched = true
				break
			}
		}
		if matched {
			stream++
		} else {
			tails[tailPos] = a.Page
			tailPos = (tailPos + 1) % window
		}
		prev = a.Page
	}
	runs++
	runTotal += runLen

	p.Footprint = uint64(len(distinct))
	n := float64(len(trace) - 1)
	if n > 0 {
		p.SequentialRatio = float64(seq) / n
		p.StreamRatio = float64(stream) / n
	}
	p.MeanRunLength = float64(runTotal) / float64(runs)
	return p
}

// Fit is a least-squares linear fit page ≈ Slope*index + Intercept with
// its coefficient of determination. The paper's offline analysis fits the
// collected page traces with curves to identify sequential phases; a high
// R² with positive slope is the "evidently sequential" signature of
// Figure 3 (a) and (c).
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear computes the least-squares line through the samples. It
// returns a zero Fit for fewer than two samples.
func FitLinear(samples []Sample) Fit {
	n := float64(len(samples))
	if n < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		x, y := float64(s.Index), float64(s.Page)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		// Every sample shares one index: no slope is identifiable, the
		// best fit is the constant mean. If every page is also the same,
		// that constant fit is perfect (ssRes == 0), so R² is 1 — a flat
		// single-index trace must not be misread as non-sequential noise
		// in the Figure 3 classification.
		mean := sy / n
		var ssTot float64
		for _, s := range samples {
			d := float64(s.Page) - mean
			ssTot += d * d
		}
		f := Fit{Intercept: mean}
		if ssTot == 0 {
			f.R2 = 1
		}
		return f
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for _, s := range samples {
		y := float64(s.Page)
		pred := slope*float64(s.Index) + intercept
		ssTot += (y - meanY) * (y - meanY)
		ssRes += (y - pred) * (y - pred)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
		if r2 < 0 {
			r2 = 0
		}
	} else if ssRes == 0 {
		r2 = 1
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// Classify applies the Table 1 criteria to a measured pattern: a footprint
// within the EPC is a small working set; larger footprints split into
// regular (stream-dominated) and irregular by the stream ratio.
func (p Pattern) Classify(epcPages uint64) string {
	if p.Footprint <= epcPages {
		return "small working set"
	}
	if p.StreamRatio >= 0.5 {
		return "large working set, regular access"
	}
	return "large working set, irregular access"
}

// SlopePagesPerKAccess is a convenience for reporting: fitted slope in
// pages per thousand accesses.
func (f Fit) SlopePagesPerKAccess() float64 {
	if math.IsNaN(f.Slope) {
		return 0
	}
	return f.Slope * 1000
}
