package trace

import (
	"math"
	"testing"
	"testing/quick"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func accesses(pages ...uint64) []mem.Access {
	out := make([]mem.Access, len(pages))
	for i, p := range pages {
		out[i] = mem.Access{Page: mem.PageID(p)}
	}
	return out
}

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.Accesses != 0 || p.Footprint != 0 {
		t.Fatalf("empty trace pattern = %+v", p)
	}
}

func TestAnalyzeSequential(t *testing.T) {
	p := Analyze(accesses(0, 1, 2, 3, 4, 5, 6, 7))
	if p.SequentialRatio != 1 {
		t.Errorf("sequential ratio = %v, want 1", p.SequentialRatio)
	}
	if p.StreamRatio != 1 {
		t.Errorf("stream ratio = %v, want 1", p.StreamRatio)
	}
	if p.Footprint != 8 {
		t.Errorf("footprint = %d, want 8", p.Footprint)
	}
	if p.MeanRunLength != 8 {
		t.Errorf("mean run = %v, want 8", p.MeanRunLength)
	}
}

func TestAnalyzeInterleavedStreams(t *testing.T) {
	// Two interleaved ascending streams: per-access deltas are large, but
	// the multi-stream recognizer sees both.
	var pages []uint64
	for i := uint64(1); i < 50; i++ {
		pages = append(pages, 100+i, 5000+i)
	}
	p := Analyze(accesses(pages...))
	if p.SequentialRatio > 0.1 {
		t.Errorf("per-access sequential ratio = %v, want ~0", p.SequentialRatio)
	}
	if p.StreamRatio < 0.9 {
		t.Errorf("stream ratio = %v, want ~1 for two clean streams", p.StreamRatio)
	}
}

func TestAnalyzeRandom(t *testing.T) {
	r := rng.New(3)
	var pages []uint64
	for i := 0; i < 5000; i++ {
		pages = append(pages, r.Uint64n(1<<20))
	}
	p := Analyze(accesses(pages...))
	if p.StreamRatio > 0.05 {
		t.Errorf("stream ratio on random pages = %v, want ~0", p.StreamRatio)
	}
	if p.MeanRunLength > 1.1 {
		t.Errorf("mean run on random pages = %v, want ~1", p.MeanRunLength)
	}
}

func TestAnalyzeWrites(t *testing.T) {
	tr := []mem.Access{{Page: 1, Write: true}, {Page: 2}, {Page: 3, Write: true}}
	if p := Analyze(tr); p.Writes != 2 {
		t.Fatalf("writes = %d, want 2", p.Writes)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		p    Pattern
		want string
	}{
		{"small", Pattern{Footprint: 100, StreamRatio: 0.1}, "small working set"},
		{"large regular", Pattern{Footprint: 5000, StreamRatio: 0.9}, "large working set, regular access"},
		{"large irregular", Pattern{Footprint: 5000, StreamRatio: 0.1}, "large working set, irregular access"},
		{"boundary", Pattern{Footprint: 2048, StreamRatio: 0}, "small working set"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Classify(2048); got != tt.want {
				t.Fatalf("Classify = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestRecorderDownsamples(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 100; i++ {
		r.Record(mem.PageID(i))
	}
	s := r.Samples()
	if len(s) != 10 {
		t.Fatalf("samples = %d, want 10", len(s))
	}
	if s[1].Index != 10 || s[1].Page != 10 {
		t.Fatalf("second sample = %+v, want index 10", s[1])
	}
}

func TestRecorderZeroEvery(t *testing.T) {
	r := NewRecorder(0) // treated as 1
	r.Record(5)
	if len(r.Samples()) != 1 {
		t.Fatal("zero-interval recorder dropped the sample")
	}
}

func TestFitLinearPerfectLine(t *testing.T) {
	var s []Sample
	for i := uint64(0); i < 100; i++ {
		s = append(s, Sample{Index: i, Page: mem.PageID(7 + 3*i)})
	}
	f := FitLinear(s)
	if math.Abs(f.Slope-3) > 1e-9 || math.Abs(f.Intercept-7) > 1e-6 {
		t.Fatalf("fit = %+v, want slope 3 intercept 7", f)
	}
	if f.R2 < 0.999999 {
		t.Fatalf("R2 = %v, want ~1", f.R2)
	}
	if got := f.SlopePagesPerKAccess(); math.Abs(got-3000) > 1e-6 {
		t.Fatalf("slope per k = %v, want 3000", got)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear(nil); f != (Fit{}) {
		t.Fatalf("fit of nothing = %+v", f)
	}
	if f := FitLinear([]Sample{{Index: 1, Page: 5}}); f != (Fit{}) {
		t.Fatalf("fit of one sample = %+v", f)
	}
	// Constant page: R2 defined as 1 (residuals zero).
	f := FitLinear([]Sample{{0, 4}, {1, 4}, {2, 4}})
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("constant fit = %+v, want slope 0, R2 1", f)
	}
}

func TestFitLinearSingleIndex(t *testing.T) {
	// den == 0: every sample shares one index, so no slope is
	// identifiable. When the pages are also identical the constant fit is
	// perfect — this used to report R2 = 0 and misclassify a flat
	// single-index trace as noise.
	f := FitLinear([]Sample{{5, 9}, {5, 9}, {5, 9}})
	if f.Slope != 0 || f.Intercept != 9 || f.R2 != 1 {
		t.Fatalf("constant single-index fit = %+v, want intercept 9, R2 1", f)
	}
	// With scattered pages at one index nothing is explained: R2 stays 0.
	f = FitLinear([]Sample{{5, 2}, {5, 4}, {5, 9}})
	if f.Slope != 0 || f.Intercept != 5 || f.R2 != 0 {
		t.Fatalf("scattered single-index fit = %+v, want intercept 5, R2 0", f)
	}
}

func TestFitLinearNoiseHasLowR2(t *testing.T) {
	r := rng.New(11)
	var s []Sample
	for i := uint64(0); i < 1000; i++ {
		s = append(s, Sample{Index: i, Page: mem.PageID(r.Uint64n(1 << 20))})
	}
	if f := FitLinear(s); f.R2 > 0.05 {
		t.Fatalf("R2 on noise = %v, want ~0", f.R2)
	}
}

// Property: SequentialRatio and StreamRatio are always within [0, 1], and
// footprint never exceeds the access count.
func TestAnalyzeBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := rng.New(seed)
		tr := make([]mem.Access, int(n%500)+1)
		for i := range tr {
			tr[i] = mem.Access{Page: mem.PageID(r.Uint64n(64))}
		}
		p := Analyze(tr)
		return p.SequentialRatio >= 0 && p.SequentialRatio <= 1 &&
			p.StreamRatio >= 0 && p.StreamRatio <= 1 &&
			p.Footprint <= p.Accesses && p.MeanRunLength >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
