// Package workload provides deterministic page-level access-trace
// generators modeling the benchmarks of the paper's evaluation: a 1 GB
// sequential-scan microbenchmark, the SPEC CPU2017 subset of Table 1, mcf
// from SPEC CPU2006, the SD-VBS vision applications SIFT and MSER, and the
// synthesized mixed-blood program of §5.4.
//
// The real benchmarks cannot run here (no SGX hardware, no Graphene), but
// the preloading schemes only ever observe page-level behavior: DFP sees
// the sequence of faulting page numbers, and SIP sees per-site page
// traces. Each generator therefore reproduces the page-level pattern class
// the paper reports for its benchmark (Figure 3, Table 1) — sequential
// sweep structure, stream counts, irregular-site populations, and the
// train-vs-ref input drift that drives the paper's SIP findings — scaled
// so that footprint-to-EPC ratios match the paper's regime.
//
// Every generator is deterministic: the same (workload, input) pair always
// produces the identical access slice.
package workload

import (
	"fmt"
	"iter"
	"sort"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

// Input selects the data set, mirroring the paper's PGO methodology: the
// "train" input drives profiling, the "ref" input drives measurement
// (§5.2: "we use different input data sets for profiling and
// performance-collecting runs").
type Input int

// Inputs.
const (
	Train Input = iota
	Ref
)

// String returns the SPEC-style input name.
func (in Input) String() string {
	if in == Train {
		return "train"
	}
	return "ref"
}

// Category is the Table 1 classification.
type Category int

// Categories of Table 1.
const (
	SmallWS Category = iota
	LargeIrregular
	LargeRegular
)

// String returns the Table 1 row label.
func (c Category) String() string {
	switch c {
	case SmallWS:
		return "small working set"
	case LargeIrregular:
		return "large working set, irregular access"
	case LargeRegular:
		return "large working set, regular access"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Language is the benchmark's source language; the paper's prototype can
// only instrument C/C++ (§5.2), so Fortran benchmarks are excluded from
// SIP experiments.
type Language int

// Languages.
const (
	LangC Language = iota
	LangFortran
)

// String returns the language name.
func (l Language) String() string {
	if l == LangFortran {
		return "Fortran"
	}
	return "C/C++"
}

// Workload is one benchmark model.
type Workload struct {
	// Name is the benchmark name as it appears in the paper.
	Name string
	// Category is the Table 1 classification.
	Category Category
	// Language determines SIP eligibility.
	Language Language
	// Instrumentable is false for benchmarks the paper's tool cannot
	// handle (Fortran sources, and omnetpp, which the instrumenter "cannot
	// fully support").
	Instrumentable bool
	// FootprintPages is the working-set size in pages.
	FootprintPages uint64

	gen func(in Input, b *builder)
}

// ELRangePages returns the enclave virtual range the workload needs.
func (w *Workload) ELRangePages() uint64 { return w.FootprintPages + 16 }

// Generate produces the full access trace for the given input — the
// materialized adapter over the same generator Stream pulls from.
func (w *Workload) Generate(in Input) []mem.Access {
	b := &builder{r: rng.New(seed(w.Name, in))}
	w.gen(in, b)
	return b.out
}

// Stream returns a pull-based source producing exactly the accesses
// Generate(in) materializes, one at a time, in O(1) memory: the push-
// style generator runs as a coroutine (iter.Pull) that is suspended
// between accesses, so arbitrarily long traces never exist as a slice.
// The stream is exhausted-or-Closed: draining it to the end releases the
// coroutine, and Close releases it early (an abandoned engine run).
func (w *Workload) Stream(in Input) mem.Stream {
	next, stop := iter.Pull(func(yield func(mem.Access) bool) {
		defer func() {
			// A consumer that stops early unwinds the generator via the
			// stopGen panic emit raises; anything else propagates.
			if r := recover(); r != nil {
				if _, ok := r.(stopGen); !ok {
					panic(r)
				}
			}
		}()
		b := &builder{r: rng.New(seed(w.Name, in)), yield: yield}
		w.gen(in, b)
	})
	return &genStream{next: next, stop: stop}
}

// genStream adapts an iter.Pull coroutine to mem.Stream.
type genStream struct {
	next func() (mem.Access, bool)
	stop func()
	done bool
}

func (s *genStream) Next() (mem.Access, bool) {
	if s.done {
		return mem.Access{}, false
	}
	a, ok := s.next()
	if !ok {
		s.done = true
		s.stop()
	}
	return a, ok
}

// Close releases the generator coroutine; safe to call repeatedly and
// after exhaustion.
func (s *genStream) Close() {
	s.done = true
	s.stop()
}

// stopGen unwinds a generator whose consumer stopped pulling.
type stopGen struct{}

// seed derives a deterministic per-(workload, input) seed.
func seed(name string, in Input) uint64 {
	// FNV-1a over the name, mixed with the input.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ (uint64(in+1) * 0x9e3779b97f4a7c15)
}

// builder is the generators' output sink. In materializing mode (yield
// nil) it accumulates the trace in out; in streaming mode each access is
// yielded to the pulling consumer and never stored.
type builder struct {
	r     *rng.Source
	out   []mem.Access
	yield func(mem.Access) bool
}

// push hands one access to the active sink.
func (b *builder) push(a mem.Access) {
	if b.yield != nil {
		if !b.yield(a) {
			panic(stopGen{})
		}
		return
	}
	b.out = append(b.out, a)
}

// emit appends one access.
func (b *builder) emit(site mem.SiteID, page mem.PageID, compute uint64) {
	b.push(mem.Access{Site: site, Page: page, Compute: compute})
}

// emitW appends one write access.
func (b *builder) emitW(site mem.SiteID, page mem.PageID, compute uint64) {
	b.push(mem.Access{Site: site, Page: page, Compute: compute, Write: true})
}

// registry holds every modeled benchmark, keyed by paper name.
var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate registration: " + w.Name)
	}
	registry[w.Name] = w
	return w
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns all benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every workload, sorted by name.
func All() []*Workload {
	names := Names()
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByCategory returns the workloads in the given Table 1 category.
func ByCategory(c Category) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Category == c {
			out = append(out, w)
		}
	}
	return out
}

// SiteOf converts a raw site number; convenience for tools and tests.
func SiteOf(n uint32) mem.SiteID { return mem.SiteID(n) }
