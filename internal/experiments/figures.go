package experiments

import (
	"fmt"
	"strings"

	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/trace"
	"sgxpreload/internal/workload"
)

// Figure3Result holds the page-access patterns of Figure 3: bwaves and
// lbm evidently sequential, deepsjeng irregular.
type Figure3Result struct {
	Benchmarks []Figure3Row
}

// Figure3Row is one benchmark's pattern characterization.
type Figure3Row struct {
	Name    string
	Pattern trace.Pattern
	Fit     trace.Fit
	Samples []trace.Sample
}

// Figure3 reproduces Figure 3: page-number-versus-time patterns for
// bwaves, deepsjeng, and lbm, with the offline curve-fitting analysis the
// paper applies to them.
func Figure3(r *Runner) (Figure3Result, error) {
	var out Figure3Result
	names := []string{"bwaves", "deepsjeng", "lbm"}
	rows, err := sweep(r, "fig3", len(names),
		func(i int) string { return names[i] },
		func(i int) (Figure3Row, error) {
			w, err := mustWorkload(names[i])
			if err != nil {
				return Figure3Row{}, err
			}
			tr := r.Trace(w, workload.Ref)
			rec := trace.NewRecorder(uint64(len(tr)/2000 + 1))
			for _, a := range tr {
				rec.Record(a.Page)
			}
			samples := rec.Samples()
			return Figure3Row{
				Name:    names[i],
				Pattern: trace.Analyze(tr),
				Fit:     trace.FitLinear(samples),
				Samples: samples,
			}, nil
		})
	if err != nil {
		return out, err
	}
	out.Benchmarks = rows
	return out, nil
}

// String renders the characterization table.
func (f Figure3Result) String() string {
	t := &stats.Table{Header: []string{
		"benchmark", "accesses", "footprint", "seqRatio", "streamRatio", "meanRun", "fitR2",
	}}
	for _, b := range f.Benchmarks {
		t.Add(b.Name, b.Pattern.Accesses, b.Pattern.Footprint,
			b.Pattern.SequentialRatio, b.Pattern.StreamRatio,
			b.Pattern.MeanRunLength, b.Fit.R2)
	}
	return "Figure 3: representative page-access patterns\n" + t.String()
}

// Figure6Result is the stream-list-length sweep for lbm and bwaves.
type Figure6Result struct {
	Lengths  []int
	Lbm      []float64 // normalized execution time under DFP
	Bwaves   []float64
	Combined []float64 // normalized sum of both execution times
}

// Figure6 reproduces Figure 6: DFP execution time versus the length of
// the stream list, for lbm and bwaves. The paper picks 30 because the
// combined execution time bottoms out there.
func Figure6(r *Runner) (Figure6Result, error) {
	out := Figure6Result{Lengths: []int{2, 5, 10, 20, 30, 40, 60}}
	lbm, err := mustWorkload("lbm")
	if err != nil {
		return out, err
	}
	bwaves, err := mustWorkload("bwaves")
	if err != nil {
		return out, err
	}
	bases, err := r.RunAll([]string{"lbm", "bwaves"}, []sim.Scheme{sim.Baseline})
	if err != nil {
		return out, err
	}
	baseL, baseB := bases[0][0], bases[1][0]
	type cell struct{ lbm, bwaves, combined float64 }
	cells, err := sweep(r, "fig6", len(out.Lengths),
		func(i int) string { return fmt.Sprintf("streamlist=%d", out.Lengths[i]) },
		func(i int) (cell, error) {
			d := r.p.DFP
			d.StreamListLen = out.Lengths[i]
			rl, err := r.RunDFP(lbm, sim.DFP, d)
			if err != nil {
				return cell{}, err
			}
			rb, err := r.RunDFP(bwaves, sim.DFP, d)
			if err != nil {
				return cell{}, err
			}
			return cell{
				lbm:      stats.Normalized(rl.Cycles, baseL.Cycles),
				bwaves:   stats.Normalized(rb.Cycles, baseB.Cycles),
				combined: stats.Normalized(rl.Cycles+rb.Cycles, baseL.Cycles+baseB.Cycles),
			}, nil
		})
	if err != nil {
		return out, err
	}
	for _, c := range cells {
		out.Lbm = append(out.Lbm, c.lbm)
		out.Bwaves = append(out.Bwaves, c.bwaves)
		out.Combined = append(out.Combined, c.combined)
	}
	return out, nil
}

// Best returns the shortest list length whose combined time is within
// 0.25% of the minimum: past the point where every concurrent stream fits,
// longer lists only differ by noise, and the shorter list is the cheaper
// operating point.
func (f Figure6Result) Best() int {
	minV := 0.0
	for i, v := range f.Combined {
		if i == 0 || v < minV {
			minV = v
		}
	}
	for i, v := range f.Combined {
		if v <= minV+0.0025 {
			return f.Lengths[i]
		}
	}
	return 0
}

// String renders the sweep.
func (f Figure6Result) String() string {
	t := &stats.Table{Header: []string{"streamListLen", "lbm", "bwaves", "combined"}}
	for i, n := range f.Lengths {
		t.Add(n, f.Lbm[i], f.Bwaves[i], f.Combined[i])
	}
	return fmt.Sprintf("Figure 6: DFP vs stream_list length (normalized time; combined best at %d)\n%s",
		f.Best(), t.String())
}

// Figure7Result is the preload-distance (LOADLENGTH) sweep.
type Figure7Result struct {
	LoadLengths []int
	Benchmarks  []string
	// Norm[b][i] is benchmark b's normalized execution time at
	// LoadLengths[i] (baseline = no preloading = 1.0).
	Norm [][]float64
}

// Figure7 reproduces Figure 7: normalized execution time when preloading
// different numbers of EPC pages each time. The paper observes substantial
// losses for mcf and deepsjeng past 4 and settles on 4.
func Figure7(r *Runner) (Figure7Result, error) {
	out := Figure7Result{
		LoadLengths: []int{1, 2, 4, 8, 16, 32},
		Benchmarks:  Figure7Set(),
	}
	bases, err := r.RunAll(out.Benchmarks, []sim.Scheme{sim.Baseline})
	if err != nil {
		return out, err
	}
	nLL := len(out.LoadLengths)
	cells, err := sweep(r, "fig7", len(out.Benchmarks)*nLL,
		func(i int) string {
			return fmt.Sprintf("%s L=%d", out.Benchmarks[i/nLL], out.LoadLengths[i%nLL])
		},
		func(i int) (float64, error) {
			w, err := mustWorkload(out.Benchmarks[i/nLL])
			if err != nil {
				return 0, err
			}
			d := r.p.DFP
			d.LoadLength = out.LoadLengths[i%nLL]
			res, err := r.RunDFP(w, sim.DFP, d)
			if err != nil {
				return 0, err
			}
			return stats.Normalized(res.Cycles, bases[i/nLL][0].Cycles), nil
		})
	if err != nil {
		return out, err
	}
	for b := range out.Benchmarks {
		out.Norm = append(out.Norm, cells[b*nLL:(b+1)*nLL])
	}
	return out, nil
}

// String renders the sweep.
func (f Figure7Result) String() string {
	header := []string{"benchmark"}
	for _, ll := range f.LoadLengths {
		header = append(header, fmt.Sprintf("L=%d", ll))
	}
	t := &stats.Table{Header: header}
	for i, name := range f.Benchmarks {
		cells := []interface{}{name}
		for _, v := range f.Norm[i] {
			cells = append(cells, v)
		}
		t.Add(cells...)
	}
	return "Figure 7: normalized time vs preload distance (DFP)\n" + t.String()
}

// Figure8Row is one benchmark of the DFP study.
type Figure8Row struct {
	Name            string
	DFPImprovement  float64 // percent, positive = faster
	StopImprovement float64
	Stopped         bool // whether the safety valve fired under DFP-stop
}

// Figure8Result is the plain-DFP versus DFP-stop comparison.
type Figure8Result struct {
	Rows []Figure8Row
	// RegularMean is the mean improvement over the regular large-footprint
	// benchmarks (the paper reports 11.4%).
	RegularMean float64
	// OverheadMeanDFP and OverheadMeanStop average the losses of the
	// benchmarks plain DFP hurts (the paper reports 38.52% → 2.82%).
	OverheadMeanDFP  float64
	OverheadMeanStop float64
}

// Figure8 reproduces Figure 8: improvement from DFP with and without the
// global abort, per large-footprint benchmark.
func Figure8(r *Runner) (Figure8Result, error) {
	var out Figure8Result
	var regular []float64
	var overheadDFP, overheadStop []float64
	names := LargeWorkingSet()
	grid, err := r.RunAll(names, []sim.Scheme{sim.Baseline, sim.DFP, sim.DFPStop})
	if err != nil {
		return out, err
	}
	for i, name := range names {
		w, err := mustWorkload(name)
		if err != nil {
			return out, err
		}
		base, d, ds := grid[i][0], grid[i][1], grid[i][2]
		row := Figure8Row{
			Name:            name,
			DFPImprovement:  stats.ImprovementPct(d.Cycles, base.Cycles),
			StopImprovement: stats.ImprovementPct(ds.Cycles, base.Cycles),
			Stopped:         ds.Kernel.DFPStopped,
		}
		out.Rows = append(out.Rows, row)
		if w.Category == workload.LargeRegular {
			regular = append(regular, row.DFPImprovement)
		}
		if row.DFPImprovement < 0 {
			overheadDFP = append(overheadDFP, -row.DFPImprovement)
			overheadStop = append(overheadStop, -row.StopImprovement)
		}
	}
	out.RegularMean = stats.Mean(regular)
	out.OverheadMeanDFP = stats.Mean(overheadDFP)
	out.OverheadMeanStop = stats.Mean(overheadStop)
	return out, nil
}

// String renders the study.
func (f Figure8Result) String() string {
	t := &stats.Table{Header: []string{"benchmark", "DFP %", "DFP-stop %", "valve fired"}}
	for _, row := range f.Rows {
		t.Add(row.Name, row.DFPImprovement, row.StopImprovement, row.Stopped)
	}
	return fmt.Sprintf(
		"Figure 8: DFP and DFP-stop improvement (regular mean %.1f%%; overhead mean %.1f%% -> %.1f%%)\n%s",
		f.RegularMean, f.OverheadMeanDFP, f.OverheadMeanStop, t.String())
}

// Figure9Result is the SIP instrumentation-threshold sweep on deepsjeng.
type Figure9Result struct {
	Thresholds []float64
	Cycles     []uint64
	Points     []int
	Normalized []float64 // against the 5% operating point's baseline run
}

// Figure9 reproduces Figure 9: deepsjeng's execution time under SIP for
// different irregular-access-ratio thresholds; the paper's sweet spot is
// 5%.
func Figure9(r *Runner) (Figure9Result, error) {
	out := Figure9Result{Thresholds: []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50}}
	w, err := mustWorkload("deepsjeng")
	if err != nil {
		return out, err
	}
	base, err := r.Run(w, sim.Baseline)
	if err != nil {
		return out, err
	}
	type cell struct {
		cycles uint64
		points int
		norm   float64
	}
	cells, err := sweep(r, "fig9", len(out.Thresholds),
		func(i int) string { return fmt.Sprintf("threshold=%.0f%%", out.Thresholds[i]*100) },
		func(i int) (cell, error) {
			sel, err := r.SelectionAt(w, out.Thresholds[i])
			if err != nil {
				return cell{}, err
			}
			res, err := sim.Run(r.Trace(w, workload.Ref), sim.Config{
				Scheme:       sim.SIP,
				EPCPages:     r.p.EPCPages,
				ELRangePages: w.ELRangePages(),
				Selection:    sel,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{
				cycles: res.Cycles,
				points: sel.Points(),
				norm:   stats.Normalized(res.Cycles, base.Cycles),
			}, nil
		})
	if err != nil {
		return out, err
	}
	for _, c := range cells {
		out.Cycles = append(out.Cycles, c.cycles)
		out.Points = append(out.Points, c.points)
		out.Normalized = append(out.Normalized, c.norm)
	}
	return out, nil
}

// Best returns the threshold with the lowest execution time.
func (f Figure9Result) Best() float64 {
	best, bestV := 0.0, uint64(0)
	for i, c := range f.Cycles {
		if i == 0 || c < bestV {
			best, bestV = f.Thresholds[i], c
		}
	}
	return best
}

// String renders the sweep.
func (f Figure9Result) String() string {
	t := &stats.Table{Header: []string{"threshold", "points", "cycles", "normalized"}}
	for i, th := range f.Thresholds {
		t.Add(fmt.Sprintf("%.0f%%", th*100), f.Points[i], f.Cycles[i], f.Normalized[i])
	}
	return fmt.Sprintf("Figure 9: deepsjeng vs SIP threshold (best at %.0f%%)\n%s",
		f.Best()*100, t.String())
}

// SchemeRow is a benchmark's improvement under one scheme.
type SchemeRow struct {
	Name        string
	Improvement float64 // percent
	Points      int     // instrumentation points (SIP runs)
}

// Figure10Result is the SIP study.
type Figure10Result struct {
	Rows []SchemeRow
}

// Figure10 reproduces Figure 10: SIP improvement on the C/C++ benchmarks
// (deepsjeng ≈ +9%, mcf.2006 ≈ +4.9%, mcf a wash, lbm and the
// microbenchmark unchanged with zero instrumentation points).
func Figure10(r *Runner) (Figure10Result, error) {
	var out Figure10Result
	names := SIPSet()
	grid, err := r.RunAll(names, []sim.Scheme{sim.Baseline, sim.SIP})
	if err != nil {
		return out, err
	}
	for i, name := range names {
		w, err := mustWorkload(name)
		if err != nil {
			return out, err
		}
		sel, err := r.Selection(w)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, SchemeRow{
			Name:        name,
			Improvement: stats.ImprovementPct(grid[i][1].Cycles, grid[i][0].Cycles),
			Points:      sel.Points(),
		})
	}
	return out, nil
}

// String renders the study.
func (f Figure10Result) String() string {
	t := &stats.Table{Header: []string{"benchmark", "SIP %", "points"}}
	for _, row := range f.Rows {
		t.Add(row.Name, row.Improvement, row.Points)
	}
	return "Figure 10: SIP improvement\n" + t.String()
}

// Figure11Result is the real-world application study: each vision app
// under its suited scheme.
type Figure11Result struct {
	SIFTDFPImprovement float64
	MSERSIPImprovement float64
}

// Figure11 reproduces Figure 11: SIFT (sequential-dominant) under DFP and
// MSER (irregular-dominant) under SIP; the paper measures +9.5% and +3.0%.
func Figure11(r *Runner) (Figure11Result, error) {
	var out Figure11Result
	sift, err := mustWorkload("SIFT")
	if err != nil {
		return out, err
	}
	mser, err := mustWorkload("MSER")
	if err != nil {
		return out, err
	}
	cells := []struct {
		w *workload.Workload
		s sim.Scheme
	}{
		{sift, sim.Baseline}, {sift, sim.DFPStop},
		{mser, sim.Baseline}, {mser, sim.SIP},
	}
	res, err := sweep(r, "fig11", len(cells),
		func(i int) string { return cells[i].w.Name + "/" + cells[i].s.String() },
		func(i int) (sim.Result, error) { return r.Run(cells[i].w, cells[i].s) })
	if err != nil {
		return out, err
	}
	out.SIFTDFPImprovement = stats.ImprovementPct(res[1].Cycles, res[0].Cycles)
	out.MSERSIPImprovement = stats.ImprovementPct(res[3].Cycles, res[2].Cycles)
	return out, nil
}

// String renders the study.
func (f Figure11Result) String() string {
	return fmt.Sprintf(
		"Figure 11: real-world applications\nSIFT (DFP):  %+.1f%%\nMSER (SIP):  %+.1f%%\n",
		f.SIFTDFPImprovement, f.MSERSIPImprovement)
}

// HybridRow is one benchmark of the scheme-combination study.
type HybridRow struct {
	Name   string
	SIP    float64 // normalized execution time
	DFP    float64
	Hybrid float64
}

// Figure12Result is the SIP/DFP/hybrid comparison.
type Figure12Result struct {
	Rows []HybridRow
}

// Figure12 reproduces Figure 12: normalized execution time of SIP, DFP,
// and the hybrid scheme on the C/C++ benchmarks. The paper finds the
// hybrid close to the better of the two, with mcf's ≈4% overhead the
// worst case.
func Figure12(r *Runner) (Figure12Result, error) {
	var out Figure12Result
	names := SIPSet()
	grid, err := r.RunAll(names, hybridSchemes())
	if err != nil {
		return out, err
	}
	for i, name := range names {
		out.Rows = append(out.Rows, hybridRowFrom(name, grid[i]))
	}
	return out, nil
}

// hybridSchemes is the scheme order of the hybrid studies: baseline
// first, then the three contenders.
func hybridSchemes() []sim.Scheme {
	return []sim.Scheme{sim.Baseline, sim.SIP, sim.DFPStop, sim.Hybrid}
}

// hybridRowFrom normalizes one benchmark's hybridSchemes results.
func hybridRowFrom(name string, res []sim.Result) HybridRow {
	base := res[0]
	return HybridRow{
		Name:   name,
		SIP:    stats.Normalized(res[1].Cycles, base.Cycles),
		DFP:    stats.Normalized(res[2].Cycles, base.Cycles),
		Hybrid: stats.Normalized(res[3].Cycles, base.Cycles),
	}
}

func hybridRow(r *Runner, name string) (HybridRow, error) {
	grid, err := r.RunAll([]string{name}, hybridSchemes())
	if err != nil {
		return HybridRow{}, err
	}
	return hybridRowFrom(name, grid[0]), nil
}

// String renders the comparison.
func (f Figure12Result) String() string {
	t := &stats.Table{Header: []string{"benchmark", "SIP", "DFP", "SIP+DFP"}}
	for _, row := range f.Rows {
		t.Add(row.Name, row.SIP, row.DFP, row.Hybrid)
	}
	return "Figure 12: normalized time of SIP, DFP, and hybrid\n" + t.String()
}

// Figure13Result is the mixed-blood study.
type Figure13Result struct {
	Row HybridRow
}

// Figure13 reproduces Figure 13: the synthesized mixed-blood application
// (sequential scan + MSER), where the hybrid beats either scheme alone
// (the paper measures SIP +1.6%, DFP +6.0%, hybrid +7.1%).
func Figure13(r *Runner) (Figure13Result, error) {
	row, err := hybridRow(r, "mixed-blood")
	if err != nil {
		return Figure13Result{}, err
	}
	return Figure13Result{Row: row}, nil
}

// String renders the study.
func (f Figure13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: mixed-blood\n")
	fmt.Fprintf(&b, "SIP:      %.3f (%+.1f%%)\n", f.Row.SIP, 100*(1-f.Row.SIP))
	fmt.Fprintf(&b, "DFP:      %.3f (%+.1f%%)\n", f.Row.DFP, 100*(1-f.Row.DFP))
	fmt.Fprintf(&b, "SIP+DFP:  %.3f (%+.1f%%)\n", f.Row.Hybrid, 100*(1-f.Row.Hybrid))
	return b.String()
}
