// Package sip implements the paper's second contribution: Source-level
// Instrumentation-based Preloading.
//
// SIP is a profile-guided scheme. A profiling run (the "train" input)
// records, for every static memory-access site, the page-level access
// trace. Each access is then classified with the scheme of the paper's
// §4.4, reusing the DFP stream recognizer (Algorithm 1):
//
//   - Class 1: the page is resident with high probability — instrumenting
//     such accesses only adds BIT_MAP_CHECK overhead.
//   - Class 2: the page is a sequential successor of a recognized stream —
//     DFP will preload it, so SIP leaves it alone.
//   - Class 3: the page is irregular and likely to fault — the profitable
//     target for a preload notification.
//
// Sites whose fraction of Class-3 accesses exceeds a threshold (5% at the
// paper's sweet spot, Figure 9) are selected for instrumentation. At run
// time (the "ref" input) the engine consults the selection: instrumented
// accesses first check the shared presence bitmap and, on a miss, notify
// the kernel preload thread and wait for the load inside the enclave —
// trading the AEX + ERESUME world switches for a notification.
package sip

import (
	"fmt"
	"sort"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/mem"
)

// Class is the §4.4 access class.
type Class uint8

// Access classes.
const (
	Class1 Class = iota + 1 // resident with high probability
	Class2                  // sequential stream successor (DFP territory)
	Class3                  // irregular, likely to fault
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case Class1:
		return "Class1"
	case Class2:
		return "Class2"
	case Class3:
		return "Class3"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// SiteProfile tallies the classified accesses of one static site.
type SiteProfile struct {
	Class1 uint64
	Class2 uint64
	Class3 uint64
}

// Total returns the number of classified accesses at the site.
func (s SiteProfile) Total() uint64 { return s.Class1 + s.Class2 + s.Class3 }

// IrregularRatio returns the fraction of Class-3 accesses, the paper's
// instrumentation criterion.
func (s SiteProfile) IrregularRatio() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Class3) / float64(t)
}

// Profile is the result of a profiling run.
type Profile struct {
	// Sites maps each access site to its class tallies.
	Sites map[mem.SiteID]*SiteProfile
	// Accesses is the total number of accesses profiled.
	Accesses uint64
	// Faults is the number of accesses that missed the resident-set model
	// during profiling (Class 2 + Class 3).
	Faults uint64
}

// Site returns the profile of site, or a zero profile if never seen.
func (p *Profile) Site(site mem.SiteID) SiteProfile {
	if sp, ok := p.Sites[site]; ok {
		return *sp
	}
	return SiteProfile{}
}

// Classifier replays a profiling-run access stream and classifies every
// access. It models residency with the same EPC structure and CLOCK policy
// the kernel uses, and stream membership with the same Algorithm-1
// recognizer DFP uses — the classification must agree with what DFP would
// have done, or Class 2 ("leave it to DFP") is meaningless.
type Classifier struct {
	resident *epc.EPC
	tracker  *dfp.Predictor
	profile  Profile
}

// NewClassifier builds a classifier modeling an EPC of epcPages frames and
// the given DFP recognizer configuration.
func NewClassifier(epcPages int, elrangePages uint64, streamCfg dfp.Config) (*Classifier, error) {
	resident, err := epc.New(epcPages, elrangePages)
	if err != nil {
		return nil, err
	}
	tracker, err := dfp.New(streamCfg)
	if err != nil {
		return nil, err
	}
	return &Classifier{
		resident: resident,
		tracker:  tracker,
		profile:  Profile{Sites: make(map[mem.SiteID]*SiteProfile)},
	}, nil
}

// Record classifies one profiled access and returns its class.
func (c *Classifier) Record(site mem.SiteID, page mem.PageID) Class {
	sp, ok := c.profile.Sites[site]
	if !ok {
		sp = &SiteProfile{}
		c.profile.Sites[site] = sp
	}
	c.profile.Accesses++

	if c.resident.Touch(page) {
		sp.Class1++
		return Class1
	}

	// Miss: this access would fault. Ask the stream recognizer whether the
	// fault extends a stream (Class 2) or is irregular (Class 3); feeding
	// it also updates the stream list exactly as the driver would.
	c.profile.Faults++
	predicted := c.tracker.OnFault(page)

	// Install the page in the residency model (evicting CLOCK's victim
	// when full) and, mirroring DFP's effect, mark its predicted pages
	// resident too: a Class-2 access only stays cheap because DFP loads
	// its successors.
	c.install(page)
	for _, pp := range predicted {
		if !c.resident.Present(pp) {
			c.install(pp)
		}
	}

	if len(predicted) > 0 {
		sp.Class2++
		return Class2
	}
	sp.Class3++
	return Class3
}

func (c *Classifier) install(page mem.PageID) {
	if c.resident.Full() {
		if v := c.resident.SelectVictim(); v != mem.NoPage {
			c.resident.Evict(v)
		}
	}
	// The residency model spans the same ELRANGE as the run; a page
	// outside it would be a workload bug surfaced by the returned error.
	if err := c.resident.Load(page, false); err != nil {
		panic("sip: residency model: " + err.Error())
	}
}

// Profile returns the accumulated profile.
func (c *Classifier) Profile() *Profile {
	p := c.profile
	return &p
}

// Selection is the set of sites chosen for instrumentation — the output of
// the paper's LLVM pass, and the entire addition to the enclave's TCB
// (each selected site carries one BIT_MAP_CHECK plus a 23-line
// notification helper).
type Selection struct {
	// Threshold is the irregular-access ratio above which a site is
	// instrumented.
	Threshold float64
	// MinAccesses filters out sites with too few profiled accesses to
	// estimate a ratio.
	MinAccesses uint64
	sites       map[mem.SiteID]bool
}

// Select applies the paper's criterion: instrument every site whose
// profiled irregular-access (Class 3) ratio is at least threshold.
// Sites with fewer than minAccesses profiled accesses are skipped; pass 0
// to keep them all.
func Select(p *Profile, threshold float64, minAccesses uint64) *Selection {
	sel := &Selection{
		Threshold:   threshold,
		MinAccesses: minAccesses,
		sites:       make(map[mem.SiteID]bool),
	}
	for site, sp := range p.Sites {
		if site == mem.NoSite {
			continue
		}
		if sp.Total() < minAccesses {
			continue
		}
		if sp.IrregularRatio() >= threshold {
			sel.sites[site] = true
		}
	}
	return sel
}

// Instrumented reports whether site carries a preload notification.
func (s *Selection) Instrumented(site mem.SiteID) bool {
	return s != nil && s.sites[site]
}

// Points returns the number of instrumentation points — Table 2 of the
// paper.
func (s *Selection) Points() int {
	if s == nil {
		return 0
	}
	return len(s.sites)
}

// Sites returns the instrumented sites in ascending order.
func (s *Selection) Sites() []mem.SiteID {
	if s == nil {
		return nil
	}
	out := make([]mem.SiteID, 0, len(s.sites))
	for site := range s.sites {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
