# Standard-library-only Go module; these targets are the whole toolchain.

GO ?= go

.PHONY: build test race bench verify verify-obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel-vs-sequential speedup benchmark from the experiment
# engine; compare the two lines' ns/op (>= 2x apart on >= 4 cores).
bench:
	$(GO) test ./internal/experiments/ -run '^$$' -bench 'BenchmarkRunAll' -benchtime 2x

# Observability gate: build, race-test the instrumented packages, and
# measure the disabled-hook overhead (a nil hook must stay within 2% of
# a no-op hook; the guard is wall-clock based, hence opt-in via env).
verify-obs:
	$(GO) build ./...
	$(GO) test -race ./internal/obs/ ./internal/channel/ ./internal/kernel/ ./internal/dfp/ ./internal/sim/
	SGXSIM_HOOKGUARD=1 $(GO) test ./internal/sim/ -run TestHookOverheadGuard -v

# The full pre-merge gate.
verify: verify-obs
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
