package fleet

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sim"
)

// enclaves builds n deterministic enclaves with tied schedules: 64
// pages each, a strided trace, schemes cycling through the engine's
// three main configurations.
func enclaves(n int) []sim.Enclave {
	out := make([]sim.Enclave, n)
	schemes := []sim.Scheme{sim.Baseline, sim.DFP, sim.DFPStop}
	for i := range out {
		trace := make([]mem.Access, 96)
		for j := range trace {
			trace[j] = mem.Access{Page: mem.PageID((j * 7) % 64), Compute: 1000}
		}
		out[i] = sim.Enclave{
			Name:   fmt.Sprintf("enc%04d", i),
			Trace:  trace,
			Pages:  64,
			Scheme: schemes[i%len(schemes)],
		}
	}
	return out
}

// atTimeZero wraps enclaves as a t=0 arrival batch.
func atTimeZero(encs []sim.Enclave) []Arrival {
	out := make([]Arrival, len(encs))
	for i, e := range encs {
		out[i] = Arrival{At: 0, Enclave: e}
	}
	return out
}

// TestOneHostFleetEqualsRunShared is the byte-identity anchor: a
// one-host fleet with every arrival at time zero and no admission
// control is RunShared — same admissions in the same order on the same
// engine, so per-enclave results match field for field.
func TestOneHostFleetEqualsRunShared(t *testing.T) {
	want, err := sim.RunShared(enclaves(8), sim.SharedConfig{EPCPages: 96})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(atTimeZero(enclaves(8)), Config{Hosts: 1, Platform: sim.SharedConfig{EPCPages: 96}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 1 {
		t.Fatalf("got %d hosts, want 1", len(res.Hosts))
	}
	if a, b := fmt.Sprintf("%#v", want), fmt.Sprintf("%#v", res.Hosts[0].Enclaves); a != b {
		t.Errorf("one-host fleet diverges from RunShared:\n  shared %.300s\n  fleet  %.300s", a, b)
	}
	if len(res.Shed) != 0 {
		t.Errorf("no-admission fleet shed %d launches", len(res.Shed))
	}
}

// TestFleetDeterministicAcrossWorkers: the whole result — placements,
// sheds, per-enclave results, latency percentiles — is identical at any
// worker count, because parallelism lives only between arrival barriers.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, policy := range Policies() {
		run := func(workers int) string {
			arr := make([]Arrival, 0, 24)
			for i, e := range enclaves(24) {
				arr = append(arr, Arrival{At: uint64(i) * 30_000, Enclave: e})
			}
			res, err := Run(arr, Config{
				Hosts:       4,
				Policy:      policy,
				Platform:    sim.SharedConfig{EPCPages: 96},
				AdmitPeriod: 20_000,
				AdmitBurst:  2,
				Workers:     workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("%#v", res)
		}
		want := run(1)
		for _, workers := range []int{2, 4, 8, 0} {
			if got := run(workers); got != want {
				t.Errorf("policy %s workers=%d: fleet result diverges from sequential run", policy, workers)
			}
		}
	}
}

// TestRoundRobinPlacement pins the baseline policy: admitted launch i
// lands on host i mod H regardless of load.
func TestRoundRobinPlacement(t *testing.T) {
	res, err := Run(atTimeZero(enclaves(9)), Config{Hosts: 3, Policy: RoundRobin,
		Platform: sim.SharedConfig{EPCPages: 96}})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range res.Placement {
		if h != i%3 {
			t.Errorf("launch %d placed on host %d, want %d", i, h, i%3)
		}
	}
}

// TestAffinityPlacement: the first launch of each workload spreads
// least-loaded, and every repeat launch — identified by its name with
// the "/<index>" launch suffix stripped — returns to the host that ran
// it before, even when the fleet has long since gone idle and
// least-loaded would start over at host 0.
func TestAffinityPlacement(t *testing.T) {
	base := enclaves(3)
	name := []string{"alpha", "beta", "gamma"}
	arr := make([]Arrival, 0, 6)
	// First round at t=0: alpha, beta, gamma spread to hosts 0, 1, 2.
	for i, e := range base {
		e.Name = fmt.Sprintf("%s/%d", name[i], i)
		arr = append(arr, Arrival{At: 0, Enclave: e})
	}
	// Second round long after the first drains, in reverse order, so a
	// least-loaded restart would invert the placement.
	for i := range base {
		e := base[2-i]
		e.Name = fmt.Sprintf("%s/%d", name[2-i], 3+i)
		arr = append(arr, Arrival{At: 100_000_000, Enclave: e})
	}
	res, err := Run(arr, Config{Hosts: 3, Policy: Affinity,
		Platform: sim.SharedConfig{EPCPages: 96}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 2, 1, 0}
	for i, h := range res.Placement {
		if h != want[i] {
			t.Errorf("launch %d (%s) placed on host %d, want %d (placement %v)",
				i, arr[i].Enclave.Name, h, want[i], res.Placement)
		}
	}
}

// TestAffinityDeterministicAcrossWorkers repeats the worker sweep with
// colliding workload names, which the generic Policies() sweep never
// produces: the affinity map must make the same decisions at any
// parallelism.
func TestAffinityDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		arr := make([]Arrival, 0, 24)
		for i, e := range enclaves(24) {
			e.Name = fmt.Sprintf("w%d/%d", i%5, i)
			arr = append(arr, Arrival{At: uint64(i) * 30_000, Enclave: e})
		}
		res, err := Run(arr, Config{
			Hosts:       4,
			Policy:      Affinity,
			Platform:    sim.SharedConfig{EPCPages: 96},
			AdmitPeriod: 20_000,
			AdmitBurst:  2,
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", res)
	}
	want := run(1)
	for _, workers := range []int{8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: affinity fleet diverges from sequential run", workers)
		}
	}
}

func TestAffinityKey(t *testing.T) {
	cases := map[string]string{
		"alpha/5":   "alpha",
		"alpha/123": "alpha",
		"alpha":     "alpha",
		"alpha/":    "alpha/",
		"a/b/7":     "a/b",
		"alpha/x1":  "alpha/x1",
	}
	for in, want := range cases {
		if got := affinityKey(in); got != want {
			t.Errorf("affinityKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestColdFleetSpreads: on an idle fleet both load-aware policies must
// spread a t=0 batch across hosts (via their running-count tie-break)
// instead of stacking host 0.
func TestColdFleetSpreads(t *testing.T) {
	for _, policy := range []Policy{LeastLoaded, PressureAware} {
		res, err := Run(atTimeZero(enclaves(6)), Config{Hosts: 3, Policy: policy,
			Platform: sim.SharedConfig{EPCPages: 96}})
		if err != nil {
			t.Fatal(err)
		}
		for h, hr := range res.Hosts {
			if len(hr.Enclaves) != 2 {
				t.Errorf("%s: host %d got %d enclaves, want 2 (placement %v)",
					policy, h, len(hr.Enclaves), res.Placement)
			}
		}
	}
}

// TestPressureAvoidsOccupiedHost: after a large enclave fills host 0's
// EPC, pressure-aware placement sends the next launch elsewhere, while
// round-robin (by construction) would return to host 0 on the third.
func TestPressureAvoidsOccupiedHost(t *testing.T) {
	big := sim.Enclave{Name: "hog", Pages: 256, Scheme: sim.Baseline}
	for j := 0; j < 256; j++ {
		big.Trace = append(big.Trace, mem.Access{Page: mem.PageID(j), Compute: 100})
	}
	arr := []Arrival{{At: 0, Enclave: big}}
	for i, e := range enclaves(3) {
		arr = append(arr, Arrival{At: 1_000_000 + uint64(i), Enclave: e})
	}
	res, err := Run(arr, Config{Hosts: 2, Policy: PressureAware,
		Platform: sim.SharedConfig{EPCPages: 512}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[0] != 0 {
		t.Fatalf("hog placed on host %d, want 0", res.Placement[0])
	}
	if res.Placement[1] != 1 {
		t.Errorf("first launch after the hog placed on host %d, want 1 (host 0 EPC is full)", res.Placement[1])
	}
	if res.Hosts[0].EPCResident <= res.Hosts[1].EPCResident {
		t.Errorf("expected host 0 (hog) to end more occupied: %d vs %d",
			res.Hosts[0].EPCResident, res.Hosts[1].EPCResident)
	}
}

// TestAdmissionControlSheds: arrivals faster than the bucket's rate are
// shed deterministically; the shed enclave's stream is released.
func TestAdmissionControlSheds(t *testing.T) {
	closed := 0
	arr := make([]Arrival, 6)
	for i, e := range enclaves(6) {
		e.Trace = nil
		e.Stream = closeProbe{onClose: func() { closed++ }}
		arr[i] = Arrival{At: uint64(i) * 1000, Enclave: e}
	}
	res, err := Run(arr, Config{Hosts: 2, Platform: sim.SharedConfig{EPCPages: 96},
		AdmitPeriod: 2000, AdmitBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	// t=0 spends the initial token; refills at 2000-cycle period admit
	// t=2000 and t=4000; t=1000, 3000, 5000 are shed.
	wantShed := []string{"enc0001", "enc0003", "enc0005"}
	if fmt.Sprint(res.Shed) != fmt.Sprint(wantShed) {
		t.Errorf("shed %v, want %v", res.Shed, wantShed)
	}
	if closed != len(wantShed) {
		t.Errorf("%d shed streams closed, want %d", closed, len(wantShed))
	}
	admitted := 0
	for _, h := range res.Placement {
		if h >= 0 {
			admitted++
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d launches, want 3", admitted)
	}
}

// TestTokenBucket exercises the controller in isolation: burst draining,
// integer refill, and the no-banking-past-burst rule.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(100, 2)
	for i, want := range []bool{true, true, false} { // burst of 2, then dry at t=0
		if got := b.take(0); got != want {
			t.Fatalf("take %d at t=0: got %v, want %v", i, got, want)
		}
	}
	if b.take(99) {
		t.Error("token accrued before a full period elapsed")
	}
	if !b.take(100) {
		t.Error("no token after one full period")
	}
	if b.take(100) {
		t.Error("second token at t=100 (only one period elapsed)")
	}
	// Long idle refills to burst, never beyond.
	for i, want := range []bool{true, true, false} {
		if got := b.take(10_000); got != want {
			t.Fatalf("take %d after long idle: got %v, want %v", i, got, want)
		}
	}
	// Disabled bucket admits everything.
	d := newTokenBucket(0, 0)
	for i := 0; i < 10; i++ {
		if !d.take(0) {
			t.Fatal("disabled bucket shed a launch")
		}
	}
}

// TestFleetHookFactory: per-host recorders see disjoint, deterministic
// timelines; the legacy single Hook is rejected on a multi-host fleet.
func TestFleetHookFactory(t *testing.T) {
	recs := make([]*obs.Recorder, 2)
	cfg := Config{Hosts: 2, Platform: sim.SharedConfig{EPCPages: 96,
		HookFactory: func(h int) obs.Hook {
			recs[h] = obs.NewRecorder()
			return recs[h]
		}}}
	if _, err := Run(atTimeZero(enclaves(4)), cfg); err != nil {
		t.Fatal(err)
	}
	for h, rec := range recs {
		var b strings.Builder
		if err := rec.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Errorf("host %d recorded no events", h)
		}
	}

	bad := Config{Hosts: 2, Platform: sim.SharedConfig{EPCPages: 96, Hook: obs.NewRecorder()}}
	if _, err := Run(atTimeZero(enclaves(4)), bad); err == nil ||
		!strings.Contains(err.Error(), "hook") {
		t.Errorf("shared hook on 2 hosts: want rejection, got %v", err)
	}
}

// TestFleetValidation: empty stream, out-of-order arrivals, zero hosts.
func TestFleetValidation(t *testing.T) {
	if _, err := Run(nil, Config{Hosts: 1, Platform: sim.SharedConfig{EPCPages: 96}}); err == nil {
		t.Error("no arrivals: want error")
	}
	if _, err := Run(atTimeZero(enclaves(2)), Config{Hosts: 0,
		Platform: sim.SharedConfig{EPCPages: 96}}); err == nil {
		t.Error("zero hosts: want error")
	}
	arr := atTimeZero(enclaves(2))
	arr[0].At = 50
	closed := false
	arr[1].Enclave.Trace = nil
	arr[1].Enclave.Stream = closeProbe{onClose: func() { closed = true }}
	if _, err := Run(arr, Config{Hosts: 1, Platform: sim.SharedConfig{EPCPages: 96}}); err == nil ||
		!strings.Contains(err.Error(), "precedes") {
		t.Errorf("out-of-order arrivals: want error, got %v", err)
	}
	if !closed {
		t.Error("rejected run did not release arrival streams")
	}
}

// TestFleetLatencyReport: faults produce finite, ordered percentiles;
// an idle host reports NaN, not zero.
func TestFleetLatencyReport(t *testing.T) {
	// One enclave on a two-host round-robin fleet: host 0 faults its
	// cold pages, host 1 stays idle for the whole run.
	res, err := Run(atTimeZero(enclaves(1)), Config{Hosts: 2, Policy: RoundRobin,
		Platform: sim.SharedConfig{EPCPages: 32}})
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := res.Hosts[0], res.Hosts[1]
	if h0.Faults == 0 {
		t.Fatal("host 0 serviced no faults; the trace must fault its cold pages")
	}
	if !(h0.FaultP50 <= h0.FaultP95 && h0.FaultP95 <= h0.FaultP99) {
		t.Errorf("host 0 percentiles unordered: p50=%v p95=%v p99=%v", h0.FaultP50, h0.FaultP95, h0.FaultP99)
	}
	if h1.Faults != 0 || !math.IsNaN(h1.FaultP50) {
		t.Errorf("idle host 1: faults=%d p50=%v, want 0/NaN", h1.Faults, h1.FaultP50)
	}
	if res.Faults != h0.Faults {
		t.Errorf("fleet-wide faults %d != host 0's %d", res.Faults, h0.Faults)
	}
	if s := res.String(); !strings.Contains(s, "fleet-wide fault latency") {
		t.Errorf("Result.String missing the fleet-wide line:\n%s", s)
	}
}

// closeProbe is an empty stream that records Close — for asserting that
// shed and rejected arrivals release their streams.
type closeProbe struct {
	onClose func()
}

func (s closeProbe) Next() (mem.Access, bool) { return mem.Access{}, false }
func (s closeProbe) Close()                   { s.onClose() }

// TestHostReportQuota: hosts under an arbitration policy report each
// enclave's quota and resident frames; Global hosts report nil quotas.
// The platform's Quota flows to every host's engine unchanged.
func TestHostReportQuota(t *testing.T) {
	run := func(q arbiter.Policy) Result {
		t.Helper()
		arr := make([]Arrival, 0, 6)
		for i, e := range enclaves(6) {
			arr = append(arr, Arrival{At: uint64(i) * 50_000, Enclave: e})
		}
		res, err := Run(arr, Config{Hosts: 2, Policy: RoundRobin,
			Platform: sim.SharedConfig{EPCPages: 64, Quota: q}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	global := run(arbiter.Global)
	for h, hr := range global.Hosts {
		if hr.Quota != nil {
			t.Errorf("host %d: Global policy reported quotas %v", h, hr.Quota)
		}
		sum := 0
		for _, r := range hr.Resident {
			sum += r
		}
		if sum != hr.EPCResident {
			t.Errorf("host %d: per-enclave residents sum to %d, EPCResident %d", h, sum, hr.EPCResident)
		}
	}
	for _, q := range []arbiter.Policy{arbiter.Static, arbiter.Proportional, arbiter.Adaptive} {
		res := run(q)
		for h, hr := range res.Hosts {
			if len(hr.Quota) != len(hr.Enclaves) || len(hr.Resident) != len(hr.Enclaves) {
				t.Fatalf("quota %v host %d: %d quotas / %d residents for %d enclaves",
					q, h, len(hr.Quota), len(hr.Resident), len(hr.Enclaves))
			}
			qsum := 0
			for i, quota := range hr.Quota {
				if quota < 1 {
					t.Errorf("quota %v host %d enclave %d: quota %d below the floor", q, h, i, quota)
				}
				qsum += quota
			}
			if q != arbiter.Adaptive && qsum != 64 {
				t.Errorf("quota %v host %d: quotas sum to %d, want 64", q, h, qsum)
			}
		}
	}
}
