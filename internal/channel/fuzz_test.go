package channel

import (
	"testing"

	"sgxpreload/internal/mem"
)

// FuzzPendingQueue drives the pending-preload queue with an arbitrary
// interleaving of QueueBatch, PopPending, AbortBatchContaining,
// RemovePending, and AbortPending under MaxPending pressure, and checks
// the conservation law every request obeys: each queued request is
// eventually popped, removed, or aborted — never duplicated, never lost.
//
// The seed corpus covers the interesting collisions directly (overflow
// drops racing pops, aborting a batch that was partially popped); the
// fuzzer explores interleavings around them.
func FuzzPendingQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 1, 2, 3, 4, 5}) // one batch, then pops
	// Overflow: enough batches to blow past maxPending, interleaved pops.
	f.Add([]byte{0, 7, 1, 2, 3, 4, 5, 6, 7, 0, 7, 10, 11, 12, 13, 14, 15, 16, 1, 1, 0, 4, 20, 21, 22, 23})
	// Abort a batch mid-pop, remove a page, then drain everything.
	f.Add([]byte{0, 4, 1, 2, 3, 4, 1, 2, 2, 0, 3, 9, 8, 7, 3, 8, 4, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New()
		const maxPending = 8
		var queued, popped, removed uint64
		next := func(i *int) byte {
			if *i >= len(data) {
				return 0
			}
			b := data[*i]
			*i++
			return b
		}
		for i := 0; i < len(data); {
			prevAborted := c.Aborted()
			switch next(&i) % 5 {
			case 0: // queue a batch of 1..8 pages
				k := int(next(&i)%8) + 1
				pages := make([]mem.PageID, k)
				for j := range pages {
					pages[j] = mem.PageID(next(&i))
				}
				before := c.PendingLen()
				dropped := c.QueueBatch(pages, 0, maxPending)
				queued += uint64(k)
				if got := c.PendingLen(); got > maxPending {
					t.Fatalf("PendingLen = %d after QueueBatch, cap is %d", got, maxPending)
				}
				if before+k-dropped != c.PendingLen() {
					t.Fatalf("QueueBatch accounting: %d before + %d queued - %d dropped != %d pending",
						before, k, dropped, c.PendingLen())
				}
				if c.Aborted() != prevAborted+uint64(dropped) {
					t.Fatalf("Aborted moved by %d, QueueBatch reported %d dropped",
						c.Aborted()-prevAborted, dropped)
				}
			case 1:
				before := c.PendingLen()
				if r, ok := c.PopPending(); ok {
					popped++
					if before == 0 {
						t.Fatal("PopPending succeeded on an empty queue")
					}
					if r.Batch == 0 {
						t.Fatal("popped request has the zero batch tag")
					}
				} else if before != 0 {
					t.Fatalf("PopPending failed with %d pending", before)
				}
			case 2:
				page := mem.PageID(next(&i))
				had := c.PendingContains(page)
				if c.AbortBatchContaining(page) != had {
					t.Fatalf("AbortBatchContaining(%d) disagrees with PendingContains", page)
				}
				if c.PendingContains(page) {
					t.Fatalf("page %d still pending after its batch was aborted", page)
				}
			case 3:
				page := mem.PageID(next(&i))
				had := c.PendingContains(page)
				if c.RemovePending(page) {
					removed++
					if !had {
						t.Fatalf("RemovePending(%d) succeeded but PendingContains was false", page)
					}
				} else if had {
					t.Fatalf("RemovePending(%d) failed but the page was pending", page)
				}
			case 4:
				before := c.PendingLen()
				if n := c.AbortPending(); n != before {
					t.Fatalf("AbortPending dropped %d, had %d pending", n, before)
				}
				if c.PendingLen() != 0 {
					t.Fatal("queue not empty after AbortPending")
				}
			}
			if c.Aborted() < prevAborted {
				t.Fatalf("Aborted went backwards: %d -> %d", prevAborted, c.Aborted())
			}
			if queued != popped+removed+c.Aborted()+uint64(c.PendingLen()) {
				t.Fatalf("conservation violated: queued %d != popped %d + removed %d + aborted %d + pending %d",
					queued, popped, removed, c.Aborted(), c.PendingLen())
			}
		}
	})
}
