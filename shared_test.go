package sgxpreload_test

import (
	"testing"

	"sgxpreload"
)

func TestRunSharedFacade(t *testing.T) {
	lbm, err := sgxpreload.Benchmark("lbm")
	if err != nil {
		t.Fatal(err)
	}
	dj, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sgxpreload.DefaultConfig()
	res, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{
		{Workload: lbm, Scheme: sgxpreload.DFPStop},
		{Workload: dj, Scheme: sgxpreload.Baseline},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Name != "lbm" || res[1].Name != "deepsjeng" {
		t.Fatalf("result names %q, %q", res[0].Name, res[1].Name)
	}
	if res[0].PreloadsStarted == 0 {
		t.Error("DFP enclave started no preloads")
	}
	if res[1].PreloadsStarted != 0 {
		t.Error("baseline enclave charged with preloads")
	}

	// Contention: each must be slower than solo.
	soloLbm, err := sgxpreload.Run(lbm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	soloDj, err := sgxpreload.Run(dj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Cycles <= soloDj.Cycles {
		t.Errorf("deepsjeng under contention (%d) not slower than solo (%d)",
			res[1].Cycles, soloDj.Cycles)
	}
	// lbm runs DFP-stop here, so compare against its solo DFP-stop run.
	dcfg := cfg
	dcfg.Scheme = sgxpreload.DFPStop
	soloLbmDFP, err := sgxpreload.Run(lbm, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Cycles < soloLbmDFP.Cycles {
		t.Errorf("lbm under contention (%d) faster than solo (%d)?",
			res[0].Cycles, soloLbmDFP.Cycles)
	}
	_ = soloLbm
}

func TestRunSharedValidation(t *testing.T) {
	if _, err := sgxpreload.RunShared(nil, sgxpreload.DefaultConfig()); err == nil {
		t.Fatal("empty enclave list accepted")
	}
	if _, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{{}}, sgxpreload.DefaultConfig()); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestRunSharedWithSIP(t *testing.T) {
	dj, err := sgxpreload.Benchmark("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sgxpreload.DefaultConfig()
	sel, err := sgxpreload.Profile(dj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sgxpreload.RunShared([]sgxpreload.EnclaveSpec{
		{Workload: dj, Scheme: sgxpreload.SIP, Selection: sel},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].NotifyLoads == 0 {
		t.Error("SIP enclave issued no notify loads")
	}
}
