package sim

import (
	"testing"

	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/rng"
)

// quotaEnclaves builds a small contending cohort: one large hog and two
// small enclaves, each replaying a random trace over its own range.
func quotaEnclaves() []Enclave {
	r := rng.New(2024)
	return []Enclave{
		{Name: "hog", Trace: randomTrace(r, 3000, 256), Pages: 256, Scheme: DFPStop},
		{Name: "small-a", Trace: randomTrace(r, 1500, 48), Pages: 48, Scheme: DFPStop},
		{Name: "small-b", Trace: randomTrace(r, 1500, 48), Pages: 48, Scheme: DFPStop},
	}
}

// TestQuotaPoliciesComplete: the contended grid drains under every quota
// policy with per-enclave conservation and consistent owner accounting.
func TestQuotaPoliciesComplete(t *testing.T) {
	for _, q := range arbiter.Policies() {
		t.Run(q.String(), func(t *testing.T) {
			eng, err := New(quotaEnclaves(), SharedConfig{EPCPages: 96, Quota: q, ScanPeriod: 100_000})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := eng.shared.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			sum := 0
			for i := range eng.states {
				sum += eng.OwnerResident(i)
			}
			if sum != eng.EPCResident() {
				t.Fatalf("owner residents sum to %d, EPC holds %d", sum, eng.EPCResident())
			}
			for _, r := range eng.Results() {
				if r.Hits+r.Kernel.DemandFaults != r.Accesses {
					t.Fatalf("enclave %s: conservation violated", r.Name)
				}
			}
			if q == arbiter.Global {
				if eng.Quota(0) != 0 {
					t.Fatalf("Global policy reports quota %d, want 0", eng.Quota(0))
				}
			} else {
				for i := range eng.states {
					if eng.Quota(i) < 1 {
						t.Fatalf("enclave %d quota %d below the floor", i, eng.Quota(i))
					}
				}
			}
		})
	}
}

// TestQuotaGlobalMatchesNoQuota: the Global policy is the no-quota
// configuration bit-for-bit — identical results and identical trace.
func TestQuotaGlobalMatchesNoQuota(t *testing.T) {
	run := func(q arbiter.Policy, rec *obs.Recorder) []SharedResult {
		t.Helper()
		res, err := RunShared(quotaEnclaves(), SharedConfig{EPCPages: 96, Quota: q, Hook: rec})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	recNone, recGlobal := obs.NewRecorder(), obs.NewRecorder()
	base := run(arbiter.Global, recNone) // zero value: the no-quota default
	explicit := run(arbiter.Global, recGlobal)
	for i := range base {
		if base[i] != explicit[i] {
			t.Fatalf("enclave %d diverges under explicit Global policy", i)
		}
	}
	a, b := recNone.Events(), recGlobal.Events()
	if len(a) != len(b) {
		t.Fatalf("timelines diverge: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, e := range a {
		if e.Kind == obs.KindQuotaRebalance {
			t.Fatal("Global policy emitted a quota_rebalance event")
		}
	}
}

// TestQuotaRebalanceEvents: arbitrated runs emit the admission-time
// quota vector for every policy, adaptive runs additionally emit scan
// rebalances, and every vector arrives in enclave-index order.
func TestQuotaRebalanceEvents(t *testing.T) {
	for _, q := range []arbiter.Policy{arbiter.Static, arbiter.Proportional, arbiter.Adaptive} {
		t.Run(q.String(), func(t *testing.T) {
			rec := obs.NewRecorder()
			if _, err := RunShared(quotaEnclaves(), SharedConfig{
				EPCPages: 96, Quota: q, ScanPeriod: 100_000, Hook: rec,
			}); err != nil {
				t.Fatal(err)
			}
			var quota []obs.Event
			for _, e := range rec.Events() {
				if e.Kind == obs.KindQuotaRebalance {
					quota = append(quota, e)
				}
			}
			// Admissions alone contribute 1 + 2 + 3 = 6 events.
			if len(quota) < 6 {
				t.Fatalf("got %d quota events, want >= 6", len(quota))
			}
			if q == arbiter.Adaptive && len(quota) == 6 {
				t.Fatal("adaptive run never rebalanced past admission")
			}
			// Vectors arrive in index order: enclave index resets to 0
			// exactly at vector boundaries and increments inside one.
			want := uint64(0)
			for i, e := range quota {
				if e.Batch != want && e.Batch != 0 {
					t.Fatalf("event %d: enclave %d out of order (want %d or 0)", i, e.Batch, want)
				}
				want = e.Batch + 1
			}
			shares := obs.QuotaShares(rec.Events())
			if len(shares) != 3 {
				t.Fatalf("QuotaShares found %d enclaves, want 3", len(shares))
			}
			sum := 0
			for _, s := range shares {
				sum += int(s.Quota)
			}
			// Static and proportional partitions sum to capacity exactly;
			// adaptive may be mid-glide between bounded steps.
			if q != arbiter.Adaptive && sum != 96 {
				t.Fatalf("final quotas sum to %d, want 96", sum)
			}
		})
	}
}

// TestQuotaAdmitRecompute pins the Admit/Grow boundary: each admission
// re-splits the proportional partition over the grown page space.
func TestQuotaAdmitRecompute(t *testing.T) {
	eng, err := NewDynamic(SharedConfig{EPCPages: 100, Quota: arbiter.Proportional})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	r := rng.New(5)
	if err := eng.Admit(Enclave{Name: "big", Trace: randomTrace(r, 100, 300), Pages: 300}, 0); err != nil {
		t.Fatal(err)
	}
	if got := eng.Quota(0); got != 100 {
		t.Fatalf("solo quota = %d, want 100", got)
	}
	if err := eng.RunUntil(50_000); err != nil {
		t.Fatal(err)
	}
	if err := eng.Admit(Enclave{Name: "late", Trace: randomTrace(r, 100, 100), Pages: 100}, 60_000); err != nil {
		t.Fatal(err)
	}
	if q0, q1 := eng.Quota(0), eng.Quota(1); q0 != 75 || q1 != 25 {
		t.Fatalf("quotas after mid-run admit = (%d, %d), want (75, 25)", q0, q1)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaBelowMinResident: with more enclaves than spare frames every
// quota sits at the one-frame floor; the owned scan keeps coming up
// empty for frameless owners, the kernel falls back to the global scan,
// and the run completes.
func TestQuotaBelowMinResident(t *testing.T) {
	r := rng.New(77)
	var encs []Enclave
	for i := 0; i < 4; i++ {
		encs = append(encs, Enclave{
			Name:  string(rune('a' + i)),
			Trace: randomTrace(r, 500, 64),
			Pages: 64,
		})
	}
	for _, q := range []arbiter.Policy{arbiter.Static, arbiter.Adaptive} {
		eng, err := New(encs, SharedConfig{EPCPages: 4, Quota: q, ScanPeriod: 50_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Drain(); err != nil {
			t.Fatalf("quota %v: %v", q, err)
		}
		if err := eng.shared.CheckInvariants(); err != nil {
			t.Fatalf("quota %v: %v", q, err)
		}
		for _, res := range eng.Results() {
			if res.Hits+res.Kernel.DemandFaults != res.Accesses {
				t.Fatalf("quota %v: enclave %s conservation violated", q, res.Name)
			}
		}
	}
}
