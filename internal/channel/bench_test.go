package channel

import (
	"fmt"
	"testing"

	"sgxpreload/internal/mem"
)

// BenchmarkPendingQueue measures the per-fault cost of the pending-queue
// hot path at several steady-state backlog depths: the membership probes
// the kernel's predict filter issues, one QueueBatch, and the pops the
// preload worker performs. Before the ring-buffer deque and page index,
// every probe and every pop was O(depth); both are now O(1), so ns/op
// should be flat across the depth sub-benchmarks.
func BenchmarkPendingQueue(b *testing.B) {
	for _, depth := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			const batchLen = 4
			c := New()
			var page mem.PageID
			batch := make([]mem.PageID, batchLen)
			fill := func() {
				for j := range batch {
					batch[j] = page
					page++
				}
			}
			for c.PendingLen() < depth {
				fill()
				c.QueueBatch(batch, 0, depth+batchLen)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fill()
				for _, p := range batch {
					if c.PendingContains(p) {
						b.Fatal("fresh page already pending")
					}
				}
				c.QueueBatch(batch, 0, depth+batchLen)
				for j := 0; j < batchLen; j++ {
					if _, ok := c.PopPending(); !ok {
						b.Fatal("queue drained mid-benchmark")
					}
				}
			}
		})
	}
}

// BenchmarkPendingMembership isolates PendingContains, the probe predict
// issues once per predicted page on every fault.
func BenchmarkPendingMembership(b *testing.B) {
	const depth = 64
	c := New()
	pages := make([]mem.PageID, depth)
	for i := range pages {
		pages[i] = mem.PageID(i)
	}
	c.QueueBatch(pages, 0, depth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One hit deep in the queue and one miss: the pre-index worst case.
		if !c.PendingContains(mem.PageID(depth - 1)) {
			b.Fatal("tail page not pending")
		}
		if c.PendingContains(mem.PageID(depth)) {
			b.Fatal("absent page reported pending")
		}
	}
}
