package plot

import (
	"math"
	"strings"
	"testing"
)

func lineChart() Chart {
	return Chart{
		Title:  "test sweep",
		XLabel: "x",
		YLabel: "normalized time",
		Kind:   "line",
		YRef:   1.0,
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 4, 8}, Y: []float64{1.0, 0.9, 0.87, 0.86}},
			{Name: "b", X: []float64{1, 2, 4, 8}, Y: []float64{1.05, 1.1, 1.24, 1.47}},
		},
	}
}

func TestLineChartSVG(t *testing.T) {
	svg := lineChart().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "test sweep", "normalized time",
		"stroke-dasharray",       // the YRef line
		">a</text>", ">b</text>", // legend entries
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestScatterChartSVG(t *testing.T) {
	c := Chart{
		Title: "pattern", Kind: "scatter", YRef: math.NaN(),
		Series: []Series{{Name: "pages", X: []float64{0, 1, 2}, Y: []float64{10, 20, 15}}},
	}
	svg := c.SVG()
	if strings.Count(svg, "<circle") != 3 {
		t.Errorf("scatter plotted %d circles, want 3", strings.Count(svg, "<circle"))
	}
	if strings.Contains(svg, "polyline") {
		t.Error("scatter drew lines")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := Chart{
		Title: "improvements", Kind: "bar", YRef: math.NaN(),
		XTicks: []string{"lbm", "mcf", "xz"},
		Series: []Series{
			{Name: "DFP", Y: []float64{13.3, -15.6, 1.2}},
			{Name: "DFP-stop", Y: []float64{13.3, -0.8, 1.8}},
		},
	}
	svg := c.SVG()
	// 2 series x 3 categories of data bars + 2 legend swatches.
	if got := strings.Count(svg, "<rect"); got != 6+2+1 { // +1 background
		t.Errorf("bar chart drew %d rects, want 9", got)
	}
	for _, lbl := range []string{"lbm", "mcf", "xz"} {
		if !strings.Contains(svg, ">"+lbl+"<") {
			t.Errorf("missing category label %q", lbl)
		}
	}
}

func TestSVGDeterministic(t *testing.T) {
	if lineChart().SVG() != lineChart().SVG() {
		t.Fatal("SVG output not deterministic")
	}
}

func TestEmptyChart(t *testing.T) {
	svg := Chart{Title: "empty", Kind: "line", YRef: math.NaN()}.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart is not a valid SVG skeleton")
	}
}

func TestEscaping(t *testing.T) {
	c := Chart{Title: `a<b & "c"`, Kind: "line", YRef: math.NaN()}
	svg := c.SVG()
	if strings.Contains(svg, "a<b") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestTicksAreRound(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{
		{0, 1}, {0.8, 2.1}, {-40, 25}, {0, 1000000},
	} {
		tv := ticks(tc.lo, tc.hi, 6)
		if len(tv) < 2 {
			t.Errorf("ticks(%v, %v) = %v, want >= 2", tc.lo, tc.hi, tv)
			continue
		}
		for _, v := range tv {
			if v < tc.lo-1e-9 || v > tc.hi+1e-9 {
				t.Errorf("tick %v outside [%v, %v]", v, tc.lo, tc.hi)
			}
		}
	}
}

func TestSortedSeries(t *testing.T) {
	m := map[string]Series{
		"b": {Name: "b"}, "a": {Name: "a"}, "c": {Name: "c"},
	}
	got := SortedSeries(m)
	if got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "c" {
		t.Fatalf("SortedSeries order: %v", got)
	}
}
