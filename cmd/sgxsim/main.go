// Command sgxsim runs one benchmark under one preloading scheme and
// prints the run's metrics.
//
// Usage:
//
//	sgxsim -bench lbm -scheme dfp
//	sgxsim -bench deepsjeng -scheme sip -threshold 0.05
//	sgxsim -bench mixed-blood -scheme hybrid -epc 2048 -loadlength 4
//	sgxsim -bench lbm -scheme dfp -compare -parallel 2
//	sgxsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sgxpreload/internal/core"
	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/experiments"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sgxsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sgxsim", flag.ContinueOnError)
	var (
		bench      = fs.String("bench", "microbenchmark", "benchmark name (-list to enumerate)")
		scheme     = fs.String("scheme", "baseline", "baseline | dfp | dfp-stop | sip | hybrid")
		epcPages   = fs.Int("epc", 2048, "EPC capacity in 4KiB pages")
		listLen    = fs.Int("streamlist", 30, "DFP stream_list length")
		loadLength = fs.Int("loadlength", 4, "DFP preload distance (pages per prediction)")
		threshold  = fs.Float64("threshold", 0.05, "SIP irregular-access-ratio threshold")
		predictor  = fs.String("predictor", "multistream", "fault-history strategy: multistream | stride | markov | nextn")
		policy     = fs.String("policy", "clock", "EPC eviction: clock | fifo | lru | random")
		reclaim    = fs.Bool("reclaim", false, "enable the ksgxswapd-style background reclaimer")
		compare    = fs.Bool("compare", false, "also run the baseline and report the improvement")
		tracePath  = fs.String("trace", "", "write the run's event timeline (JSONL; a .csv extension selects CSV)")
		metricsOut = fs.String("metrics-out", "", "write derived metrics (text report; a .svg extension renders the timeline chart)")
		parallel   = fs.Int("parallel", 0, "worker pool for -compare (0 = GOMAXPROCS; output is identical at any setting)")
		progress   = fs.Bool("progress", false, "report each completed run on stderr")
		list       = fs.Bool("list", false, "list benchmarks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range workload.Names() {
			w, _ := workload.ByName(name)
			fmt.Fprintf(out, "%-16s %-38s %s, %d pages\n",
				name, w.Category, w.Language, w.FootprintPages)
		}
		return nil
	}

	w, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	var sch sim.Scheme
	switch strings.ToLower(*scheme) {
	case "baseline":
		sch = sim.Baseline
	case "dfp":
		sch = sim.DFP
	case "dfp-stop", "dfpstop":
		sch = sim.DFPStop
	case "sip":
		sch = sim.SIP
	case "hybrid", "sip+dfp":
		sch = sim.Hybrid
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	d := dfp.DefaultConfig()
	d.StreamListLen = *listLen
	d.LoadLength = *loadLength

	var pol epc.Policy
	switch strings.ToLower(*policy) {
	case "clock":
		pol = epc.PolicyClock
	case "fifo":
		pol = epc.PolicyFIFO
	case "lru":
		pol = epc.PolicyLRU
	case "random":
		pol = epc.PolicyRandom
	default:
		return fmt.Errorf("unknown eviction policy %q", *policy)
	}

	cfg := sim.Config{
		Scheme:            sch,
		EPCPages:          *epcPages,
		ELRangePages:      w.ELRangePages(),
		DFP:               d,
		Predictor:         core.Kind(strings.ToLower(*predictor)),
		EvictPolicy:       pol,
		BackgroundReclaim: *reclaim,
	}
	if sch.UsesSIP() {
		if !w.Instrumentable {
			return fmt.Errorf("%s cannot be instrumented (%s)", w.Name, w.Language)
		}
		cl, err := sip.NewClassifier(*epcPages, w.ELRangePages(), d)
		if err != nil {
			return err
		}
		for _, a := range w.Generate(workload.Train) {
			cl.Record(a.Site, a.Page)
		}
		sel := sip.Select(cl.Profile(), *threshold, 32)
		cfg.Selection = sel
		fmt.Fprintf(out, "SIP profile: %d instrumentation points at threshold %.0f%%\n",
			sel.Points(), *threshold*100)
	}

	trace := w.Generate(workload.Ref)

	// With -compare, the scheme run and the baseline run are independent
	// cells; fan them out on the sweep scheduler. Results land by index,
	// so the report below is identical at any -parallel setting.
	configs := []sim.Config{cfg}
	if *compare && sch != sim.Baseline {
		bcfg := cfg
		bcfg.Scheme = sim.Baseline
		bcfg.Selection = nil
		configs = append(configs, bcfg)
	}
	// The recorder observes only the primary run (a baseline comparison
	// run stays unhooked), and each run is single-goroutine, so the
	// recorded timeline is byte-identical at any -parallel setting.
	var rec *obs.Recorder
	if *tracePath != "" || *metricsOut != "" {
		rec = obs.NewRecorder()
		configs[0].Hook = rec
	}
	results, err := experiments.Sweep(*parallel, len(configs), func(i int) (sim.Result, error) {
		r, err := sim.Run(trace, configs[i])
		if *progress && err == nil {
			fmt.Fprintf(os.Stderr, "  %s run done\n", configs[i].Scheme)
		}
		return r, err
	})
	if err != nil {
		return err
	}
	res := results[0]

	fmt.Fprintf(out, "benchmark:        %s (%s)\n", w.Name, w.Category)
	fmt.Fprintf(out, "scheme:           %s\n", res.Scheme)
	fmt.Fprintf(out, "cycles:           %d\n", res.Cycles)
	fmt.Fprintf(out, "accesses:         %d\n", res.Accesses)
	fmt.Fprintf(out, "hits:             %d\n", res.Hits)
	fmt.Fprintf(out, "demand faults:    %d\n", res.Kernel.DemandFaults)
	fmt.Fprintf(out, "evictions:        %d\n", res.Kernel.Evictions)
	fmt.Fprintf(out, "preloads started: %d (dropped %d)\n",
		res.Kernel.PreloadsStarted, res.Kernel.PreloadsDropped)
	fmt.Fprintf(out, "notify loads:     %d (hits %d)\n",
		res.Kernel.NotifyLoads, res.Kernel.NotifyHits)
	fmt.Fprintf(out, "fault cycles:     %d (%.1f%% of run)\n",
		res.FaultCycles(), 100*float64(res.FaultCycles())/float64(res.Cycles))
	if res.Kernel.DFPStopped {
		fmt.Fprintf(out, "safety valve:     fired at cycle %d\n", res.Kernel.DFPStopCycle)
	}

	if len(results) == 2 {
		base := results[1]
		fmt.Fprintf(out, "baseline cycles:  %d\n", base.Cycles)
		fmt.Fprintf(out, "improvement:      %+.2f%%\n", stats.ImprovementPct(res.Cycles, base.Cycles))
	}

	if rec != nil {
		if *tracePath != "" {
			if err := writeTrace(rec, *tracePath); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace:            %d events -> %s\n", rec.Len(), *tracePath)
		}
		if *metricsOut != "" {
			title := fmt.Sprintf("%s / %s", w.Name, res.Scheme)
			if err := writeMetrics(rec, title, *metricsOut); err != nil {
				return err
			}
			fmt.Fprintf(out, "metrics:          %s\n", *metricsOut)
		}
	}
	return nil
}

// writeTrace exports the recorded timeline; the extension picks the
// format (JSONL by default, CSV for .csv).
func writeTrace(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".csv") {
		werr = rec.WriteCSV(f)
	} else {
		werr = rec.WriteJSONL(f)
	}
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeMetrics exports the derived metrics: a text report, or the
// timeline chart as SVG when path ends in .svg.
func writeMetrics(rec *obs.Recorder, title, path string) error {
	if strings.HasSuffix(path, ".svg") {
		chart := obs.Timeline(title, rec.Events(), 4000)
		return os.WriteFile(path, []byte(chart.SVG()), 0o644)
	}
	report := obs.BuildReport(rec.Events())
	return os.WriteFile(path, []byte(report.String()), 0o644)
}
