// Package channel models the EPC load channel: the single hardware path
// that moves pages between non-EPC memory and the EPC.
//
// The paper's measurements (its §3.1 and §5.6) establish three properties
// that this model reproduces exactly:
//
//  1. The channel loads one page at a time — loads are serialized.
//  2. An in-progress ELDU/ELDB load is non-preemptible: a demand fault
//     arriving mid-load waits for the load to finish.
//  3. Queued-but-unstarted preloads can be aborted (Algorithm 1 rebuilds
//     the to-load list on every fault, so at most one predicted batch is
//     ever pending).
//
// The channel is a pure time-keeper: it tracks the in-progress load and the
// pending preload batch, and leaves all policy (eviction, priorities,
// counters) to the kernel package that drives it.
//
// The pending queue sits on the fault-servicing hot path (every Sync pops
// it, every prediction probes it), so it is a ring-buffer deque with a
// page-membership count index: PopPending, PeekPending, and
// PendingContains are O(1), and the mutating scans (batch aborts, SIP
// removals, overflow drops) run only when the index says a match exists.
package channel

import (
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
)

// Load describes one page transfer occupying the channel.
type Load struct {
	// Page being transferred into the EPC.
	Page mem.PageID
	// Start is the cycle the channel began the transfer.
	Start uint64
	// Done is the cycle the transfer completes (Start + occupancy).
	Done uint64
	// Preload records whether the transfer was speculative (queued by a
	// predictor) rather than demanded by a fault or a SIP notification.
	Preload bool
	// Batch tags the prediction batch a preload belongs to; zero for
	// demand loads.
	Batch uint64
}

// Request is a queued (not yet started) preload.
type Request struct {
	Page  mem.PageID
	Batch uint64
	// Enqueued is the earliest cycle the transfer may start.
	Enqueued uint64
}

// server is the shared single-server state: the one physical load path.
// Multiple Channels may share a server (multi-enclave mode: each enclave
// has its own preload queue, but transfers serialize on the same
// hardware).
type server struct {
	inflight  Load // valid only while busy
	busy      bool
	busyUntil uint64
	started   uint64 // total transfers begun
}

// Channel is the single-server load queue. Construct with New (private
// server) or NewGroup (shared server).
type Channel struct {
	srv *server

	// The pending preload deque: a power-of-two ring buffer holding the
	// queued-but-unstarted requests in FIFO order, plus an occurrence
	// count per queued page (a page can sit in several batches).
	buf  []Request
	head int
	n    int
	idx  map[mem.PageID]int32

	aborted     uint64 // queued preloads dropped before starting
	lastBatchID uint64
	hook        obs.Hook // nil = observability disabled
}

// SetHook installs an event hook on this channel (nil disables). In a
// shared-server group each channel carries its own hook; transfer events
// are emitted by the channel whose method started them.
func (c *Channel) SetHook(h obs.Hook) { c.hook = h }

func newChannel(srv *server) *Channel {
	return &Channel{srv: srv, idx: make(map[mem.PageID]int32)}
}

// New returns an idle channel with its own server.
func New() *Channel { return newChannel(&server{}) }

// NewGroup returns n channels sharing one load server: queued work is
// per-channel, but only one transfer can be in progress across the group.
func NewGroup(n int) []*Channel {
	srv := &server{}
	out := make([]*Channel, n)
	for i := range out {
		out[i] = newChannel(srv)
	}
	return out
}

// Sibling returns a new idle channel sharing c's load server: queued
// work is per-channel, transfers still serialize on the one physical
// path. It is the group-growth primitive — a dynamically admitted
// enclave joins a host's existing channel group mid-run exactly as a
// NewGroup member would have.
func (c *Channel) Sibling() *Channel { return newChannel(c.srv) }

// BusyUntil returns the cycle at which the channel becomes free. If no
// load is in progress it returns the completion time of the last one (or 0).
func (c *Channel) BusyUntil() uint64 { return c.srv.busyUntil }

// Inflight returns the in-progress load, if any.
func (c *Channel) Inflight() (Load, bool) {
	if !c.srv.busy {
		return Load{}, false
	}
	return c.srv.inflight, true
}

// InflightDone returns the completion time of the transfer in flight.
// It is Inflight for the kernel's per-access sync check: that path only
// ever needs Done, and skipping the Load copy matters at fleet-scale
// step rates.
func (c *Channel) InflightDone() (uint64, bool) {
	if !c.srv.busy {
		return 0, false
	}
	return c.srv.inflight.Done, true
}

// InflightPage returns the page of the in-progress load, or mem.NoPage.
func (c *Channel) InflightPage() mem.PageID {
	if !c.srv.busy {
		return mem.NoPage
	}
	return c.srv.inflight.Page
}

// Idle reports whether no load is in progress.
func (c *Channel) Idle() bool { return !c.srv.busy }

// Begin starts a transfer of page at cycle start, occupying the channel
// for occupancy cycles. The caller must have completed any in-progress
// load first (start must be >= BusyUntil) — the non-preemptibility rule.
func (c *Channel) Begin(page mem.PageID, start, occupancy uint64, preload bool, batch uint64) Load {
	if c.srv.busy {
		panic("channel: Begin while a load is in progress")
	}
	if start < c.srv.busyUntil {
		panic("channel: Begin before the channel is free (time went backwards)")
	}
	ld := Load{Page: page, Start: start, Done: start + occupancy, Preload: preload, Batch: batch}
	c.srv.inflight = ld
	c.srv.busy = true
	c.srv.busyUntil = ld.Done
	c.srv.started++
	if c.hook != nil {
		c.hook.Emit(obs.Event{T: ld.Start, Kind: obs.KindLoadStart,
			Page: ld.Page, Batch: ld.Batch, V1: ld.Done, V2: boolV(ld.Preload)})
	}
	return ld
}

// CompleteInflight retires the in-progress load and returns it. It panics
// if the channel is idle; callers check Inflight first.
func (c *Channel) CompleteInflight() Load {
	if !c.srv.busy {
		panic("channel: CompleteInflight on idle channel")
	}
	ld := c.srv.inflight
	c.srv.busy = false
	if c.hook != nil {
		c.hook.Emit(obs.Event{T: ld.Done, Kind: obs.KindLoadComplete,
			Page: ld.Page, Batch: ld.Batch, V2: boolV(ld.Preload)})
	}
	return ld
}

// at returns the request at logical position i (0 = front). Valid only
// for 0 <= i < c.n.
func (c *Channel) at(i int) *Request {
	return &c.buf[(c.head+i)&(len(c.buf)-1)]
}

// grow doubles the ring capacity, re-linearizing the queue at head 0.
func (c *Channel) grow() {
	capacity := 2 * len(c.buf)
	if capacity == 0 {
		capacity = 16
	}
	buf := make([]Request, capacity)
	for i := 0; i < c.n; i++ {
		buf[i] = *c.at(i)
	}
	c.buf, c.head = buf, 0
}

// pushBack appends a request and indexes its page.
func (c *Channel) pushBack(r Request) {
	if c.n == len(c.buf) {
		c.grow()
	}
	c.buf[(c.head+c.n)&(len(c.buf)-1)] = r
	c.n++
	c.idx[r.Page]++
}

// popFront removes and returns the front request, unindexing its page.
func (c *Channel) popFront() Request {
	r := c.buf[c.head]
	c.head = (c.head + 1) & (len(c.buf) - 1)
	c.n--
	c.unindex(r.Page)
	return r
}

// unindex decrements a page's occurrence count, deleting exhausted
// entries so the index never outgrows the queue.
func (c *Channel) unindex(p mem.PageID) {
	if n := c.idx[p] - 1; n == 0 {
		delete(c.idx, p)
	} else {
		c.idx[p] = n
	}
}

// removeWhere compacts the deque in place, dropping every request for
// which drop returns true and reporting each drop (in queue order) to
// onDrop before the next is considered. Order of survivors is preserved.
func (c *Channel) removeWhere(drop func(Request) bool, onDrop func(Request)) {
	kept := 0
	for i := 0; i < c.n; i++ {
		r := *c.at(i)
		if drop(r) {
			c.unindex(r.Page)
			onDrop(r)
			continue
		}
		*c.at(kept) = r
		kept++
	}
	c.n = kept
}

// QueueBatch appends a new predicted batch, eligible to start at cycle
// enqueued. When the backlog would exceed maxPending, whole stale batches
// are dropped from the front: an old list_to_load the worker never reached
// was produced for a fault the application has long since moved past.
// Dropping batch-at-a-time (rather than request-at-a-time) keeps every
// surviving batch intact, so a later fault on any still-queued predicted
// page finds its batch via AbortBatchContaining instead of being
// misclassified as an out-of-stream fault. If the new batch alone exceeds
// the cap, its own tail — the predictions farthest from the fault — is
// truncated. It returns the number of requests dropped.
func (c *Channel) QueueBatch(pages []mem.PageID, enqueued uint64, maxPending int) (dropped int) {
	c.lastBatchID++
	id := c.lastBatchID
	for _, p := range pages {
		c.pushBack(Request{Page: p, Batch: id, Enqueued: enqueued})
		if c.hook != nil {
			c.hook.Emit(obs.Event{T: enqueued, Kind: obs.KindPreloadQueue, Page: p, Batch: id})
		}
	}
	if maxPending <= 0 || c.n <= maxPending {
		return 0
	}
	for c.n > maxPending && c.buf[c.head].Batch != id {
		stale := c.buf[c.head].Batch
		for c.n > 0 && c.buf[c.head].Batch == stale {
			c.dropEvent(c.popFront(), enqueued, obs.AbortOverflow)
			dropped++
		}
	}
	if c.n > maxPending {
		// Only the new batch remains and it is larger than the cap:
		// keep its head (the pages nearest the fault).
		excess := c.n - maxPending
		for i := maxPending; i < c.n; i++ {
			c.dropEvent(*c.at(i), enqueued, obs.AbortOverflow)
		}
		for j := 0; j < excess; j++ {
			c.n--
			c.unindex(c.buf[(c.head+c.n)&(len(c.buf)-1)].Page)
		}
		dropped += excess
	}
	c.aborted += uint64(dropped)
	return dropped
}

// dropEvent emits a preload-abort event for a dropped request.
func (c *Channel) dropEvent(r Request, now uint64, reason uint64) {
	if c.hook != nil {
		c.hook.Emit(obs.Event{T: now, Kind: obs.KindPreloadAbort,
			Page: r.Page, Batch: r.Batch, V1: reason})
	}
}

// boolV encodes a flag as an event value.
func boolV(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// AbortBatchContaining drops every queued request belonging to the batch
// that contains page — the paper's in-stream abort: a fault landing on a
// predicted page that has not been loaded yet cancels the remainder of
// that prediction. now is the cycle of the triggering fault (it stamps
// the abort events). It reports whether any batch matched.
func (c *Channel) AbortBatchContaining(page mem.PageID, now uint64) bool {
	if c.idx[page] == 0 {
		return false
	}
	batch := uint64(0)
	for i := 0; i < c.n; i++ {
		if c.at(i).Page == page {
			batch = c.at(i).Batch
			break
		}
	}
	c.removeWhere(
		func(r Request) bool { return r.Batch == batch },
		func(r Request) {
			c.aborted++
			c.dropEvent(r, now, obs.AbortInWindow)
		})
	return true
}

// RemovePending removes a single queued request for page (the SIP notify
// path demand-loads it instead) at cycle now. It reports whether a
// request was removed.
func (c *Channel) RemovePending(page mem.PageID, now uint64) bool {
	if c.idx[page] == 0 {
		return false
	}
	for i := 0; i < c.n; i++ {
		if c.at(i).Page != page {
			continue
		}
		c.dropEvent(*c.at(i), now, obs.AbortSIP)
		c.unindex(page)
		for j := i; j < c.n-1; j++ {
			*c.at(j) = *c.at(j + 1)
		}
		c.n--
		return true
	}
	return false
}

// PushAll replaces the pending queue with reqs, preserving order. The
// kernel historically used it to restore a popped-but-not-startable head
// (PeekPending has made that unnecessary); it remains for tooling and
// tests that snapshot and restore the queue.
func (c *Channel) PushAll(reqs []Request) {
	c.n, c.head = 0, 0
	clear(c.idx)
	for _, r := range reqs {
		c.pushBack(r)
	}
}

// AbortPending drops every queued preload at cycle now and returns how
// many were dropped; used when preloading is shut down mid-run.
func (c *Channel) AbortPending(now uint64) int {
	n := c.n
	for i := 0; i < c.n; i++ {
		c.dropEvent(*c.at(i), now, obs.AbortStop)
	}
	clear(c.idx)
	c.aborted += uint64(n)
	c.n, c.head = 0, 0
	return n
}

// PendingContains reports whether page is in the queued (unstarted) batch.
func (c *Channel) PendingContains(page mem.PageID) bool {
	return c.idx[page] > 0
}

// PendingLen returns the number of queued preloads.
func (c *Channel) PendingLen() int { return c.n }

// PopPending removes and returns the next queued preload. The boolean is
// false when the queue is empty.
func (c *Channel) PopPending() (Request, bool) {
	if c.n == 0 {
		return Request{}, false
	}
	return c.popFront(), true
}

// PeekPending returns the next queued preload without removing it. The
// kernel's Sync uses it to test whether the head is startable before
// committing to a pop.
func (c *Channel) PeekPending() (Request, bool) {
	if c.n == 0 {
		return Request{}, false
	}
	return c.buf[c.head], true
}

// Started returns the total number of transfers begun on the (possibly
// shared) server.
func (c *Channel) Started() uint64 { return c.srv.started }

// Aborted returns the total number of queued preloads dropped.
func (c *Channel) Aborted() uint64 { return c.aborted }
