package rng

import "math"

// Distribution samplers for the arrival-process workload specs
// (internal/workload/spec). Each sampler draws from this Source only, so
// a seeded Source yields the same variate sequence on every run — the
// property the spec compiler's determinism guarantee rests on. Samplers
// with rejection loops (Gamma) consume a variable number of raw draws,
// which is fine: consumption is still a pure function of the seed.
//
// All samplers are normalized so the caller scales to its own units:
// Exp has mean 1, Normal is standard, Gamma(k) has mean k, Weibull(k)
// has mean GammaFunc(1+1/k).

// Exp returns an exponentially distributed variate with mean 1 — the
// inter-arrival law of a Poisson process — by inversion.
func (s *Source) Exp() float64 {
	// 1-U lies in (0, 1], so the log argument is never zero.
	return -math.Log(1 - s.Float64())
}

// Normal returns a standard normal variate via Box-Muller. Each call
// consumes exactly two uniforms and keeps no spare, so the draw count
// per variate is fixed — simpler to reason about than the polar method's
// cached pair when auditing a seeded stream.
func (s *Source) Normal() float64 {
	u := 1 - s.Float64() // (0, 1]
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Gamma returns a Gamma(shape, 1) variate (mean shape, variance shape)
// using Marsaglia-Tsang squeeze rejection for shape >= 1 and the
// standard boost Gamma(k) = Gamma(k+1)·U^(1/k) below it. It panics if
// shape is not positive. Normalizing by shape gives a mean-1 renewal
// interval with coefficient of variation 1/sqrt(shape) — the knob the
// spec layer exposes as "cv".
func (s *Source) Gamma(shape float64) float64 {
	if !(shape > 0) {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		g := s.Gamma(shape + 1)
		u := 1 - s.Float64()
		return g * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - s.Float64()
		// The cheap squeeze accepts the bulk; the exact log test the rest.
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Weibull returns a Weibull(shape, 1) variate by inversion (mean
// GammaFunc(1+1/shape)). It panics if shape is not positive. Shape < 1
// gives a heavy-tailed, bursty renewal process; shape > 1 an
// increasingly regular one; shape 1 is the exponential.
func (s *Source) Weibull(shape float64) float64 {
	if !(shape > 0) {
		panic("rng: Weibull with non-positive shape")
	}
	return math.Pow(-math.Log(1-s.Float64()), 1/shape)
}
