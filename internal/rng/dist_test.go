package rng

import (
	"math"
	"testing"
)

// Distribution sanity: sample moments must sit near the closed forms.
// The sample sizes make the standard error of the mean well under the
// tolerances, so these are deterministic checks, not flaky statistics —
// the generator is seeded, so every run draws the same variates.

const distSamples = 200_000

// moments returns the sample mean and coefficient of variation of n
// draws from f.
func moments(n int, f func() float64) (mean, cv float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := f()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return mean, math.Sqrt(variance) / mean
}

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f ± %.4f", name, got, want, tol)
	}
}

func TestExpMoments(t *testing.T) {
	s := New(1)
	mean, cv := moments(distSamples, s.Exp)
	near(t, "Exp mean", mean, 1, 0.02)
	near(t, "Exp cv", cv, 1, 0.02)
}

func TestNormalMoments(t *testing.T) {
	s := New(2)
	var sum, sumSq float64
	for i := 0; i < distSamples; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / distSamples
	sd := math.Sqrt(sumSq/distSamples - mean*mean)
	near(t, "Normal mean", mean, 0, 0.02)
	near(t, "Normal sd", sd, 1, 0.02)
}

func TestGammaMoments(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2, 4, 16} {
		s := New(3)
		mean, cv := moments(distSamples, func() float64 { return s.Gamma(shape) })
		near(t, "Gamma mean", mean, shape, 0.03*shape)
		near(t, "Gamma cv", cv, 1/math.Sqrt(shape), 0.03)
	}
}

func TestWeibullMoments(t *testing.T) {
	for _, shape := range []float64{0.8, 1, 2, 4} {
		s := New(4)
		mean, _ := moments(distSamples, func() float64 { return s.Weibull(shape) })
		near(t, "Weibull mean", mean, math.Gamma(1+1/shape), 0.03)
	}
	// Shape 1 degenerates to the exponential: CV 1.
	s := New(5)
	_, cv := moments(distSamples, func() float64 { return s.Weibull(1) })
	near(t, "Weibull(1) cv", cv, 1, 0.02)
}

// TestSamplerDeterminism pins that two identically seeded sources
// produce identical variate sequences through every sampler — the
// foundation of the spec compiler's repeated-run byte identity.
func TestSamplerDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 10_000; i++ {
		if x, y := a.Exp(), b.Exp(); x != y {
			t.Fatalf("Exp diverged at draw %d: %v != %v", i, x, y)
		}
		if x, y := a.Gamma(2.5), b.Gamma(2.5); x != y {
			t.Fatalf("Gamma diverged at draw %d: %v != %v", i, x, y)
		}
		if x, y := a.Weibull(0.7), b.Weibull(0.7); x != y {
			t.Fatalf("Weibull diverged at draw %d: %v != %v", i, x, y)
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Gamma(0)":    func() { New(1).Gamma(0) },
		"Gamma(-1)":   func() { New(1).Gamma(-1) },
		"Gamma(NaN)":  func() { New(1).Gamma(math.NaN()) },
		"Weibull(0)":  func() { New(1).Weibull(0) },
		"Weibull(-2)": func() { New(1).Weibull(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSamplerPositive guards the samplers' ranges: inter-arrival
// intervals must never be negative.
func TestSamplerPositive(t *testing.T) {
	s := New(7)
	for i := 0; i < 50_000; i++ {
		if x := s.Exp(); x < 0 {
			t.Fatalf("Exp produced %v", x)
		}
		if x := s.Gamma(0.5); x < 0 {
			t.Fatalf("Gamma(0.5) produced %v", x)
		}
		if x := s.Weibull(2); x < 0 {
			t.Fatalf("Weibull(2) produced %v", x)
		}
	}
}
