package workload

import (
	"testing"

	"sgxpreload/internal/mem"
)

func TestRegistryComplete(t *testing.T) {
	// The paper's full evaluation set: Table 1 plus mcf.2006, the vision
	// apps, and mixed-blood.
	want := []string{
		"cactuBSSN", "imagick", "leela", "nab", "exchange2",
		"roms", "mcf", "deepsjeng", "omnetpp", "xz",
		"bwaves", "lbm", "wrf", "microbenchmark",
		"mcf.2006", "SIFT", "MSER", "mixed-blood",
	}
	for _, name := range want {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing benchmark %q: %v", name, err)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(Names()), len(want), Names())
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark resolved")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("All() not sorted: %q >= %q", all[i-1].Name, all[i].Name)
		}
	}
}

func TestByCategoryPartition(t *testing.T) {
	total := 0
	for _, c := range []Category{SmallWS, LargeIrregular, LargeRegular} {
		ws := ByCategory(c)
		total += len(ws)
		for _, w := range ws {
			if w.Category != c {
				t.Errorf("%s in wrong category bucket", w.Name)
			}
		}
	}
	if total != len(All()) {
		t.Errorf("categories partition %d of %d workloads", total, len(All()))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, w := range All() {
		a := w.Generate(Ref)
		b := w.Generate(Ref)
		if len(a) != len(b) {
			t.Fatalf("%s: non-deterministic length %d vs %d", w.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: access %d differs across generations", w.Name, i)
			}
		}
	}
}

func TestTrainAndRefDiffer(t *testing.T) {
	for _, w := range All() {
		tr := w.Generate(Train)
		ref := w.Generate(Ref)
		if len(tr) == 0 || len(ref) == 0 {
			t.Fatalf("%s: empty trace", w.Name)
		}
		if len(tr) >= len(ref) {
			t.Errorf("%s: train (%d accesses) not smaller than ref (%d)", w.Name, len(tr), len(ref))
		}
	}
}

func TestAccessesWithinELRange(t *testing.T) {
	for _, w := range All() {
		for _, in := range []Input{Train, Ref} {
			limit := mem.PageID(w.ELRangePages())
			for i, a := range w.Generate(in) {
				if a.Page >= limit {
					t.Fatalf("%s/%s access %d touches page %d beyond ELRANGE %d",
						w.Name, in, i, a.Page, limit)
				}
			}
		}
	}
}

func TestFootprintDeclarationsHonest(t *testing.T) {
	// The distinct pages touched by ref must be within the declared
	// footprint, and large-WS benchmarks must exceed the standard EPC.
	const epc = 2048
	for _, w := range All() {
		distinct := map[mem.PageID]struct{}{}
		for _, a := range w.Generate(Ref) {
			distinct[a.Page] = struct{}{}
		}
		if uint64(len(distinct)) > w.FootprintPages {
			t.Errorf("%s: touches %d distinct pages, declares %d", w.Name, len(distinct), w.FootprintPages)
		}
		switch w.Category {
		case SmallWS:
			if len(distinct) > epc {
				t.Errorf("%s: small-WS benchmark touches %d pages > EPC %d", w.Name, len(distinct), epc)
			}
		default:
			if len(distinct) <= epc {
				t.Errorf("%s: large-WS benchmark touches only %d pages <= EPC %d", w.Name, len(distinct), epc)
			}
		}
	}
}

func TestInstrumentableFlags(t *testing.T) {
	for _, w := range All() {
		if w.Language == LangFortran && w.Instrumentable {
			t.Errorf("%s: Fortran benchmark marked instrumentable", w.Name)
		}
	}
	om, err := ByName("omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	if om.Instrumentable {
		t.Error("omnetpp must be non-instrumentable (paper's tool limitation)")
	}
}

func TestInputAndCategoryStrings(t *testing.T) {
	if Train.String() != "train" || Ref.String() != "ref" {
		t.Error("Input strings wrong")
	}
	if LangC.String() != "C/C++" || LangFortran.String() != "Fortran" {
		t.Error("Language strings wrong")
	}
	if SmallWS.String() == "" || LargeIrregular.String() == "" || LargeRegular.String() == "" {
		t.Error("Category strings empty")
	}
}

func TestSeedsDifferByNameAndInput(t *testing.T) {
	if seed("lbm", Train) == seed("lbm", Ref) {
		t.Error("same seed across inputs")
	}
	if seed("lbm", Ref) == seed("mcf", Ref) {
		t.Error("same seed across workloads")
	}
}

func TestPhaseMultAveragesToOne(t *testing.T) {
	for _, tc := range []struct {
		period, burst int
		high          float64
	}{
		{16, 3, 4}, {32, 3, 10}, {20, 3, 6}, {16, 2, 6},
	} {
		var sum float64
		n := tc.period * 100
		for it := 0; it < n; it++ {
			sum += phaseMult(it, tc.period, tc.burst, tc.high)
		}
		avg := sum / float64(n)
		if avg < 0.95 || avg > 1.05 {
			t.Errorf("phaseMult(%d,%d,%v) averages %v, want ~1", tc.period, tc.burst, tc.high, avg)
		}
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	// The coroutine stream must yield exactly the accesses Generate
	// materializes, for every workload and both inputs.
	for _, w := range All() {
		for _, in := range []Input{Train, Ref} {
			want := w.Generate(in)
			s := w.Stream(in)
			for i, exp := range want {
				got, ok := s.Next()
				if !ok {
					t.Fatalf("%s/%s: stream ended at %d of %d", w.Name, in, i, len(want))
				}
				if got != exp {
					t.Fatalf("%s/%s: access %d is %+v from stream, %+v materialized",
						w.Name, in, i, got, exp)
				}
			}
			if extra, ok := s.Next(); ok {
				t.Fatalf("%s/%s: stream yields %+v past the %d-access trace",
					w.Name, in, extra, len(want))
			}
			if _, ok := s.Next(); ok { // exhausted streams stay exhausted
				t.Fatalf("%s/%s: stream revived after exhaustion", w.Name, in)
			}
		}
	}
}

func TestStreamEarlyClose(t *testing.T) {
	// Abandoning a stream mid-trace must unwind the generator coroutine
	// without panicking, and Close must be idempotent.
	w, err := ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stream(Ref)
	for i := 0; i < 10; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("lbm stream ended after %d accesses", i)
		}
	}
	c, ok := s.(mem.Closer)
	if !ok {
		t.Fatal("workload stream does not implement mem.Closer")
	}
	c.Close()
	c.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("closed stream still yields accesses")
	}
}

func TestStreamIndependentInstances(t *testing.T) {
	// Two streams of the same workload are independent cursors.
	w, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Stream(Ref), w.Stream(Ref)
	for i := 0; i < 100; i++ {
		av, aok := a.Next()
		bv, bok := b.Next()
		if aok != bok || av != bv {
			t.Fatalf("streams diverge at access %d: %+v/%v vs %+v/%v", i, av, aok, bv, bok)
		}
	}
}
