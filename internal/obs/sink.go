package obs

import (
	"io"
	"os"
	"strings"
)

// StreamSink is the O(1)-memory trace hook: it encodes each event as it
// is emitted and ships full buffers to a background writer goroutine,
// so a traced run holds two fixed-size buffers instead of the whole
// timeline. This is what makes `sgxsim -trace` viable on unbounded
// streamed runs (`-stream -repeat 0`) and keeps fleet/sharded per-host
// tracing from accumulating millions of Events in memory.
//
// Concurrency contract: Emit must be called from one goroutine at a
// time (the engine's), exactly like Recorder. The sink double-buffers —
// while the writer goroutine drains one buffer to the underlying
// writer, the engine fills the other — so the engine only blocks on I/O
// when it outruns the disk on both buffers. Buffers are handed over in
// emission order through one channel, so the file's event order is the
// emission order regardless of scheduling.
//
// Write errors do not surface at Emit (the engine is not allowed to
// fail mid-step on observer I/O); the first error is latched, further
// output is discarded, and Close reports it. Close flushes the partial
// buffer, waits for the writer goroutine to drain everything it was
// handed, closes the underlying file when the sink opened it, and is
// the deterministic end of the trace: after Close returns, the file
// holds every emitted event.
type StreamSink struct {
	enc    func([]byte, Event) []byte
	buf    []byte       // active buffer, filled by Emit
	out    chan []byte  // full buffers, in emission order
	free   chan []byte  // drained buffers coming back
	done   chan struct{}
	w      io.Writer
	c      io.Closer // non-nil when the sink owns the file
	werr   error     // writer goroutine's first error; read after done
	events int
	closed bool
}

// sinkBufBytes is the flush threshold. Two buffers of this size bound
// the sink's memory; one trace line is ~100 bytes, so each handover
// amortizes the channel round trip over ~600 events.
const sinkBufBytes = 64 << 10

// Format selects a StreamSink's trace encoding.
type Format uint8

const (
	// FormatJSONL writes the JSONL trace format (WriteJSONL's schema).
	FormatJSONL Format = iota
	// FormatCSV writes the CSV trace format (WriteCSV's schema).
	FormatCSV
)

// FormatForPath returns the trace format the CLI conventions assign to
// a path: CSV for a .csv extension, JSONL otherwise.
func FormatForPath(path string) Format {
	if strings.HasSuffix(path, ".csv") {
		return FormatCSV
	}
	return FormatJSONL
}

// NewStreamSink returns a sink streaming the given format to w, with
// the schema header already encoded. The caller must Close it to flush
// and observe write errors.
func NewStreamSink(w io.Writer, f Format) *StreamSink {
	s := &StreamSink{
		w:    w,
		out:  make(chan []byte, 2),
		free: make(chan []byte, 2),
		done: make(chan struct{}),
	}
	// Event lines are bounded (~120 bytes), so the slack past the flush
	// threshold keeps Emit from ever reallocating a buffer.
	s.buf = make([]byte, 0, sinkBufBytes+512)
	s.free <- make([]byte, 0, sinkBufBytes+512)
	switch f {
	case FormatCSV:
		s.enc = AppendCSV
		s.buf = append(s.buf, TraceHeaderCSV()...)
		s.buf = append(s.buf, '\n')
		s.buf = append(s.buf, TraceColumnsCSV...)
		s.buf = append(s.buf, '\n')
	default:
		s.enc = AppendJSONL
		s.buf = append(s.buf, TraceHeaderJSONL()...)
		s.buf = append(s.buf, '\n')
	}
	go func() {
		defer close(s.done)
		for b := range s.out {
			if s.werr == nil && len(b) > 0 {
				if _, err := s.w.Write(b); err != nil {
					s.werr = err
				}
			}
			s.free <- b[:0]
		}
	}()
	return s
}

// NewStreamSinkFile creates path and returns a sink streaming to it in
// the format FormatForPath picks from the extension. Close closes the
// file.
func NewStreamSinkFile(path string) (*StreamSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewStreamSink(f, FormatForPath(path))
	s.c = f
	return s, nil
}

// Emit implements Hook: encode into the active buffer, hand the buffer
// to the writer when full.
func (s *StreamSink) Emit(e Event) {
	s.events++
	s.buf = s.enc(s.buf, e)
	if len(s.buf) >= sinkBufBytes {
		s.out <- s.buf
		s.buf = <-s.free
	}
}

// Events returns the number of events emitted so far. Like Emit, it is
// only meaningful from the emitting goroutine (or after Close).
func (s *StreamSink) Events() int { return s.events }

// Close flushes the remaining buffer, waits for the background writer
// to drain, closes the file when the sink owns one, and returns the
// first write or close error. Further Closes are no-ops returning nil;
// Emit after Close panics (send on closed channel) by design.
func (s *StreamSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if len(s.buf) > 0 {
		s.out <- s.buf
	}
	close(s.out)
	<-s.done
	err := s.werr
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
