package experiments

import "sync"

// memo is a concurrency-safe memoization table with single-flight fills:
// the first goroutine to request a key runs the fill function, and every
// concurrent requester blocks on that same fill and shares its result.
// A parallel sweep therefore never generates the same trace or profile
// twice — the invariant the sequential Runner got for free.
//
// Fills are per-key, so two workers filling different keys proceed
// concurrently; only requests for the same key serialize.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// newMemo returns an empty table.
func newMemo[K comparable, V any]() *memo[K, V] {
	return &memo[K, V]{m: make(map[K]*memoEntry[V])}
}

// get returns the value for k, running fill exactly once per key across
// all goroutines. An error is cached like a value: the fill is not
// retried, so every caller sees the same outcome.
func (c *memo[K, V]) get(k K, fill func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		e = &memoEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fill() })
	return e.val, e.err
}

// size returns the number of keys present (filled or in flight).
func (c *memo[K, V]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
