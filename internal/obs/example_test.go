package obs_test

import (
	"fmt"
	"os"

	"sgxpreload/internal/obs"
)

// ExampleRecorder_WriteJSONL shows the trace wire format: a schema
// header line, then one fixed-field-order JSON object per event.
func ExampleRecorder_WriteJSONL() {
	rec := obs.NewRecorder()
	rec.Emit(obs.Event{T: 5, Kind: obs.KindLoadStart, Page: 7, Batch: 2, V1: 105, V2: 1})
	rec.Emit(obs.Event{T: 105, Kind: obs.KindLoadComplete, Page: 7, Batch: 2, V2: 1})
	if err := rec.WriteJSONL(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// {"schema":"sgxpreload-trace","version":1,"fields":["t","kind","page","batch","v1","v2"]}
	// {"t":5,"kind":"load_start","page":7,"batch":2,"v1":105,"v2":1}
	// {"t":105,"kind":"load_complete","page":7,"batch":2,"v1":0,"v2":1}
}

// ExampleTee fans one event stream out to several hooks — here a full
// recorder plus a bounded ring for live scraping.
func ExampleTee() {
	rec := obs.NewRecorder()
	ring := obs.NewRing(1) // retains only the newest event
	hook := obs.Tee(rec, ring)
	hook.Emit(obs.Event{T: 1, Kind: obs.KindFaultBegin, Page: 3})
	hook.Emit(obs.Event{T: 2, Kind: obs.KindFaultEnd, Page: 3, V1: 1})
	window, first := ring.Snapshot()
	fmt.Println("recorded:", rec.Len())
	fmt.Println("ring window:", len(window), "starting at seq", first)
	// Output:
	// recorded: 2
	// ring window: 1 starting at seq 2
}

// ExampleBuildReport derives run metrics from a recorded timeline.
func ExampleBuildReport() {
	events := []obs.Event{
		{T: 100, Kind: obs.KindFaultBegin, Page: 7},
		{T: 64_100, Kind: obs.KindFaultEnd, Page: 7, V1: 64_000},
	}
	report := obs.BuildReport(events)
	fmt.Println("span:", report.Span)
	fmt.Println("faults:", report.Latency.Total)
	fmt.Printf("mean latency: %.0f\n", report.Latency.Mean())
	// Output:
	// span: 64100
	// faults: 1
	// mean latency: 64000
}
