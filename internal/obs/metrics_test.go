package obs

import (
	"strings"
	"testing"

	"sgxpreload/internal/mem"
)

func TestSpanAndBusy(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindLoadStart, Page: 1, V1: 50},
		{T: 60, Kind: KindScan, V2: 3},
	}
	if got := Span(events); got != 60 {
		t.Fatalf("Span = %d, want 60", got)
	}
	// A transfer's completion can extend the span past every timestamp.
	events[0].V1 = 90
	if got := Span(events); got != 90 {
		t.Fatalf("Span = %d, want 90 (open transfer)", got)
	}
	if got := BusyCycles(events); got != 90 {
		t.Fatalf("BusyCycles = %d, want 90", got)
	}
	if Span(nil) != 0 || BusyCycles(nil) != 0 {
		t.Fatal("empty stream not zero")
	}
}

func TestUtilization(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindLoadStart, Page: 1, V1: 50},
		{T: 100, Kind: KindScan}, // fixes the span at 100
	}
	u := Utilization(events, 2)
	if len(u) != 2 {
		t.Fatalf("got %d buckets, want 2", len(u))
	}
	if u[0].V != 1.0 || u[1].V != 0.0 {
		t.Fatalf("utilization = %.2f, %.2f; want 1.00, 0.00", u[0].V, u[1].V)
	}
	if u[0].T != 0 || u[1].T != 50 {
		t.Fatalf("bucket starts = %d, %d; want 0, 50", u[0].T, u[1].T)
	}
	// A transfer spanning the boundary contributes to both buckets.
	events[0] = Event{T: 25, Kind: KindLoadStart, Page: 1, V1: 75}
	u = Utilization(events, 2)
	if u[0].V != 0.5 || u[1].V != 0.5 {
		t.Fatalf("boundary transfer: %.2f, %.2f; want 0.50, 0.50", u[0].V, u[1].V)
	}
	if Utilization(nil, 4) != nil || Utilization(events, 0) != nil {
		t.Fatal("degenerate utilization not nil")
	}
}

func TestFaultLatencies(t *testing.T) {
	bounds := []uint64{10, 20}
	events := []Event{
		{Kind: KindFaultEnd, V1: 5},
		{Kind: KindFaultEnd, V1: 15},
		{Kind: KindFaultEnd, V1: 100},
		{Kind: KindScan}, // ignored
	}
	h := FaultLatencies(events, bounds)
	if h.Total != 3 || h.Sum != 120 || h.Max != 100 {
		t.Fatalf("total %d sum %d max %d", h.Total, h.Sum, h.Max)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Mean() != 40 {
		t.Fatalf("mean = %v, want 40", h.Mean())
	}
	if (Histogram{}).Mean() != 0 {
		t.Fatal("empty histogram mean not 0")
	}
}

func TestAccuracyAndOccupancySeries(t *testing.T) {
	events := []Event{
		{T: 10, Kind: KindAccuracy, V1: 0, V2: 0}, // before first preload: skipped
		{T: 20, Kind: KindAccuracy, V1: 10, V2: 4},
		{T: 30, Kind: KindAccuracy, V1: 20, V2: 15},
		{T: 20, Kind: KindScan, V1: 1, V2: 7},
		{T: 30, Kind: KindScan, V1: 0, V2: 9},
	}
	acc := AccuracySeries(events)
	if len(acc) != 2 || acc[0].V != 0.4 || acc[1].V != 0.75 {
		t.Fatalf("accuracy = %+v", acc)
	}
	occ := OccupancySeries(events)
	if len(occ) != 2 || occ[0].V != 7 || occ[1].V != 9 {
		t.Fatalf("occupancy = %+v", occ)
	}
}

func TestStreamsAndStop(t *testing.T) {
	events := []Event{
		{Kind: KindStreamStart, Batch: 1},
		{Kind: KindStreamStart, Batch: 2},
		{Kind: KindStreamHit, Batch: 1, V1: 4},
		{Kind: KindStreamHit, Batch: 1, V1: 4},
		{Kind: KindStreamHit, Batch: 2, V1: 4},
		{Kind: KindStreamEnd, Batch: 1, V1: 2},
		{T: 500, Kind: KindDFPStop},
	}
	s := Streams(events)
	if s.Started != 2 || s.Hits != 3 || s.Evicted != 1 || s.MaxHits != 2 {
		t.Fatalf("streams = %+v", s)
	}
	if s.MeanHits() != 1.5 {
		t.Fatalf("mean hits = %v, want 1.5", s.MeanHits())
	}
	if got := DFPStopAt(events); got != 500 {
		t.Fatalf("DFPStopAt = %d, want 500", got)
	}
	if DFPStopAt(nil) != 0 {
		t.Fatal("DFPStopAt of empty stream not 0")
	}
}

func TestBuildReport(t *testing.T) {
	events := []Event{
		{T: 0, Kind: KindFaultBegin, Page: 1},
		{T: 64000, Kind: KindFaultEnd, Page: 1, V1: 64000},
		{T: 100, Kind: KindLoadStart, Page: 1, V1: 44100},
		{T: 44100, Kind: KindLoadComplete, Page: 1},
		{T: 50000, Kind: KindScan, V1: 2, V2: 12},
		{T: 50000, Kind: KindAccuracy, V1: 8, V2: 6},
		{T: 60000, Kind: KindDFPStop},
	}
	r := BuildReport(events)
	if r.Counts[KindFaultEnd] != 1 || r.Counts[KindLoadStart] != 1 {
		t.Fatalf("counts = %v", r.Counts)
	}
	if r.Span != 64000 || r.Busy != 44000 {
		t.Fatalf("span %d busy %d", r.Span, r.Busy)
	}
	if r.StopCycle != 60000 {
		t.Fatalf("stop cycle = %d", r.StopCycle)
	}
	text := r.String()
	for _, want := range []string{
		"span:", "channel busy:", "fault_end", "fault latency:",
		"preload accuracy:", "EPC occupancy:", "DFP-stop:            tripped at cycle 60000",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if text != BuildReport(events).String() {
		t.Fatal("report text not deterministic")
	}
}

func TestTimeline(t *testing.T) {
	var events []Event
	for i := uint64(0); i < 500; i++ {
		events = append(events,
			Event{T: i * 100, Kind: KindFaultEnd, Page: mem.PageID(i), V1: 64000},
			Event{T: i*100 + 10, Kind: KindLoadComplete, Page: mem.PageID(i + 1), V2: 1},
			Event{T: i*100 + 20, Kind: KindEvict, Page: mem.PageID(i / 2)},
		)
	}
	events = append(events,
		Event{T: 25000, Kind: KindDFPStop},
		Event{T: 30, Kind: KindEvict, Page: mem.NoPage}, // background burst: no y
	)
	c := Timeline("demo", events, 100)
	if len(c.Series) != 4 {
		t.Fatalf("got %d series, want fault/preload/evict/DFP-stop", len(c.Series))
	}
	for _, s := range c.Series[:3] {
		if len(s.X) > 100 {
			t.Errorf("series %s not downsampled: %d points", s.Name, len(s.X))
		}
		if s.X[0] != s.X[0] || len(s.X) != len(s.Y) {
			t.Errorf("series %s malformed", s.Name)
		}
	}
	stop := c.Series[3]
	if stop.Name != "DFP-stop" || stop.Kind != "line" || stop.X[0] != 25000 || stop.X[1] != 25000 {
		t.Fatalf("stop series = %+v", stop)
	}
	if svg := c.SVG(); !strings.Contains(svg, "demo") {
		t.Fatal("SVG missing title")
	}
}

func TestDownsampleKeepsEnds(t *testing.T) {
	var x, y []float64
	for i := 0; i < 1000; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i*2))
	}
	ox, oy := downsample(x, y, 10)
	if len(ox) != 10 || len(oy) != 10 {
		t.Fatalf("downsample kept %d points", len(ox))
	}
	if ox[0] != 0 || ox[9] != 999 {
		t.Fatalf("ends not preserved: %v, %v", ox[0], ox[9])
	}
	ox, _ = downsample(x, y, 0)
	if len(ox) != 1000 {
		t.Fatal("n <= 0 must disable the cap")
	}
}

func TestQuotaShares(t *testing.T) {
	if got := QuotaShares(nil); got != nil {
		t.Fatalf("QuotaShares(nil) = %v, want nil", got)
	}
	events := []Event{
		// Admission-time vector for two enclaves, then a rebalance that
		// shifts frames from enclave 1 to enclave 0.
		{T: 0, Kind: KindQuotaRebalance, Page: mem.NoPage, Batch: 0, V1: 512, V2: 0},
		{T: 0, Kind: KindQuotaRebalance, Page: mem.NoPage, Batch: 1, V1: 512, V2: 0},
		{T: 900, Kind: KindScan, V2: 1000},
		{T: 1000, Kind: KindQuotaRebalance, Page: mem.NoPage, Batch: 0, V1: 700, V2: 640},
		{T: 1000, Kind: KindQuotaRebalance, Page: mem.NoPage, Batch: 1, V1: 324, V2: 360},
	}
	got := QuotaShares(events)
	want := []QuotaShare{
		{Enclave: 0, Quota: 700, Resident: 640},
		{Enclave: 1, Quota: 324, Resident: 360},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d shares, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("share %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	r := BuildReport(events)
	s := r.String()
	if !strings.Contains(s, "EPC quota partition: 2 enclaves, 4 rebalance events") ||
		!strings.Contains(s, "enclave 0    quota 700    resident 640") {
		t.Fatalf("report missing quota section:\n%s", s)
	}
	// Default traces (no rebalance events) keep the section absent.
	if strings.Contains(BuildReport(events[2:3]).String(), "quota") {
		t.Fatal("quota section rendered without rebalance events")
	}
}
