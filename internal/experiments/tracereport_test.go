package experiments

import (
	"strings"
	"testing"

	"sgxpreload/internal/sim"
	"sgxpreload/internal/workload"
)

func TestTraceReport(t *testing.T) {
	a, err := Trace(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if a.Benchmark != "deepsjeng" || a.Scheme != sim.DFPStop {
		t.Fatalf("default trace = %s/%s", a.Benchmark, a.Scheme)
	}
	if !a.Result.Kernel.DFPStopped {
		t.Fatal("traced deepsjeng run did not trip the safety valve")
	}
	if a.Report.StopCycle != a.Result.Kernel.DFPStopCycle {
		t.Fatalf("timeline stop cycle %d, Result says %d",
			a.Report.StopCycle, a.Result.Kernel.DFPStopCycle)
	}
	text := a.String()
	for _, want := range []string{"traced run:", "safety valve:", "matches", "events by kind:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	charts := a.Charts()
	if len(charts) != 1 || len(charts[0].Series) == 0 {
		t.Fatalf("trace report carries %d charts", len(charts))
	}
	var hasStop bool
	for _, s := range charts[0].Series {
		if s.Name == "DFP-stop" && s.Kind == "line" {
			hasStop = true
		}
	}
	if !hasStop {
		t.Error("timeline chart missing the DFP-stop marker")
	}
}

func TestRunTracedMatchesRun(t *testing.T) {
	w, err := workload.ByName("cactuBSSN")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sharedRunner.Run(w, sim.DFPStop)
	if err != nil {
		t.Fatal(err)
	}
	traced, rec, err := sharedRunner.RunTraced(w, sim.DFPStop)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("traced result differs:\n  plain  %+v\n  traced %+v", plain, traced)
	}
	if rec.Len() == 0 {
		t.Error("traced run recorded no events")
	}
}
