package sim

import (
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/epc"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
	"sgxpreload/internal/sip"
)

// Randomized cross-scheme property tests: drive generated traces with
// mixed sequential/irregular structure through every scheme and check the
// invariants that must hold regardless of configuration.

// randomTrace generates a trace mixing runs, jumps, and site structure.
func randomTrace(r *rng.Source, n int, pages uint64) []mem.Access {
	out := make([]mem.Access, 0, n)
	pos := r.Uint64n(pages)
	for len(out) < n {
		switch r.Intn(4) {
		case 0: // sequential run
			run := 2 + r.Intn(12)
			for i := 0; i < run && len(out) < n; i++ {
				pos = (pos + 1) % pages
				out = append(out, mem.Access{
					Site: mem.SiteID(1 + r.Intn(8)), Page: mem.PageID(pos),
					Compute: r.Uint64n(60000),
				})
			}
		case 1: // random jump
			pos = r.Uint64n(pages)
			out = append(out, mem.Access{
				Site: mem.SiteID(10 + r.Intn(8)), Page: mem.PageID(pos),
				Compute: r.Uint64n(120000), Write: r.Intn(2) == 0,
			})
		case 2: // hot revisit
			out = append(out, mem.Access{
				Site: mem.SiteID(20), Page: mem.PageID(r.Uint64n(pages / 16)),
				Compute: r.Uint64n(8000),
			})
		default: // tight cluster around pos
			delta := uint64(r.Intn(3))
			p := (pos + delta) % pages
			out = append(out, mem.Access{
				Site: mem.SiteID(30), Page: mem.PageID(p), Compute: r.Uint64n(20000),
			})
		}
	}
	return out
}

// randomSelection instruments a random subset of the sites used above.
func randomSelection(r *rng.Source) *sip.Selection {
	prof := &sip.Profile{Sites: map[mem.SiteID]*sip.SiteProfile{}}
	for s := mem.SiteID(1); s <= 30; s++ {
		sp := &sip.SiteProfile{Class1: uint64(r.Intn(100))}
		if r.Intn(2) == 0 {
			sp.Class3 = 100 // guaranteed above threshold
		}
		prof.Sites[s] = sp
	}
	return sip.Select(prof, 0.05, 0)
}

func TestPropertyInvariantsAcrossSchemes(t *testing.T) {
	seeds := []uint64{1, 7, 42, 1234, 99999}
	schemes := []Scheme{Baseline, DFP, DFPStop, SIP, Hybrid}
	for _, seed := range seeds {
		r := rng.New(seed)
		const pages = 2048
		trace := randomTrace(r, 4000, pages)
		sel := randomSelection(r.Fork())
		epcSizes := []int{1, 16, 256, 1024, 4096}
		for _, scheme := range schemes {
			for _, size := range epcSizes {
				cfg := Config{
					Scheme:       scheme,
					EPCPages:     size,
					ELRangePages: pages,
					DFP:          dfp.DefaultConfig(),
					Selection:    sel,
				}
				res, err := Run(trace, cfg)
				if err != nil {
					t.Fatalf("seed %d %s epc %d: %v", seed, scheme, size, err)
				}
				checkInvariants(t, trace, res, seed, scheme, size)
			}
		}
	}
}

func checkInvariants(t *testing.T, trace []mem.Access, res Result, seed uint64, scheme Scheme, size int) {
	t.Helper()
	label := func(msg string, args ...interface{}) {
		t.Errorf("seed %d, %s, EPC %d: "+msg, append([]interface{}{seed, scheme, size}, args...)...)
	}
	if res.Accesses != uint64(len(trace)) {
		label("accesses %d != trace %d", res.Accesses, len(trace))
	}
	// Conservation: every access either hit, faulted, or was served
	// resident via a completed notify-load before the touch.
	served := res.Hits + res.Kernel.DemandFaults
	if served != res.Accesses {
		label("hits %d + faults %d != accesses %d",
			res.Hits, res.Kernel.DemandFaults, res.Accesses)
	}
	// Time can never be less than the trace's own compute.
	if res.Cycles < res.ComputeCycles {
		label("cycles %d < compute %d", res.Cycles, res.ComputeCycles)
	}
	// Protocol accounting: AEX and ERESUME are paid exactly per fault.
	cm := mem.DefaultCostModel()
	if res.Kernel.AEXCycles != res.Kernel.DemandFaults*cm.AEX {
		label("AEX cycles %d != faults %d x %d",
			res.Kernel.AEXCycles, res.Kernel.DemandFaults, cm.AEX)
	}
	if res.Kernel.EresumeCycles != res.Kernel.DemandFaults*cm.Eresume {
		label("ERESUME cycles %d != faults x cost")
	}
	// SIP counters only appear when the scheme uses SIP.
	if !scheme.UsesSIP() && (res.SIPChecks != 0 || res.Kernel.NotifyLoads != 0) {
		label("SIP activity without SIP: checks %d, notifies %d",
			res.SIPChecks, res.Kernel.NotifyLoads)
	}
	// Preloads only appear when the scheme uses DFP.
	if !scheme.UsesDFP() && res.Kernel.PreloadsStarted != 0 {
		label("preloads without DFP: %d", res.Kernel.PreloadsStarted)
	}
	// Notify bookkeeping: every check either found the page present or
	// went down the notify path (as a load or a hit on an in-flight /
	// just-arrived page).
	if res.SIPChecks < res.SIPPresent {
		label("SIPPresent %d > SIPChecks %d", res.SIPPresent, res.SIPChecks)
	}
	notifies := res.Kernel.NotifyLoads + res.Kernel.NotifyHits
	if res.SIPChecks-res.SIPPresent != notifies {
		label("bitmap misses %d != notify paths %d",
			res.SIPChecks-res.SIPPresent, notifies)
	}
}

func TestPropertyBaselineCycleFormula(t *testing.T) {
	// For the baseline scheme the total time is exactly decomposable:
	// compute + hits + faults x (AEX+ERESUME+hit) + load waits.
	for _, seed := range []uint64{3, 17, 2024} {
		r := rng.New(seed)
		trace := randomTrace(r, 3000, 1024)
		res, err := Run(trace, Config{Scheme: Baseline, EPCPages: 256, ELRangePages: 1024})
		if err != nil {
			t.Fatal(err)
		}
		cm := mem.DefaultCostModel()
		want := res.ComputeCycles +
			res.Accesses*cm.Hit +
			res.Kernel.AEXCycles + res.Kernel.EresumeCycles + res.Kernel.LoadWaitCycles
		if res.Cycles != want {
			t.Fatalf("seed %d: cycles %d != decomposition %d", seed, res.Cycles, want)
		}
	}
}

func TestPropertyDFPStopNeverMuchWorseThanBaseline(t *testing.T) {
	// The safety valve's contract: whatever the access pattern, DFP-stop
	// must stay within a bounded distance of the baseline.
	for _, seed := range []uint64{5, 55, 555, 5555} {
		r := rng.New(seed)
		trace := randomTrace(r, 6000, 4096)
		base, err := Run(trace, Config{Scheme: Baseline, EPCPages: 512, ELRangePages: 4096})
		if err != nil {
			t.Fatal(err)
		}
		stop, err := Run(trace, Config{
			Scheme: DFPStop, EPCPages: 512, ELRangePages: 4096,
			// Small slack so the valve reacts at this trace length.
			DFP: dfp.Config{StreamListLen: 30, LoadLength: 4, StopSlack: 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		if float64(stop.Cycles) > 1.15*float64(base.Cycles) {
			t.Errorf("seed %d: DFP-stop %d vs baseline %d (+%.1f%%): valve failed to bound the loss",
				seed, stop.Cycles, base.Cycles,
				100*(float64(stop.Cycles)/float64(base.Cycles)-1))
		}
	}
}

func TestPropertyEPCStateConsistentAfterRuns(t *testing.T) {
	// White-box: replay an engine-equivalent loop against the kernel and
	// check the EPC invariants at the end. (Run itself owns its kernel;
	// this exercises the same path with direct access.)
	r := rng.New(77)
	trace := randomTrace(r, 2000, 512)
	for _, policy := range []epc.Policy{epc.PolicyClock, epc.PolicyLRU, epc.PolicyFIFO, epc.PolicyRandom} {
		res, err := Run(trace, Config{
			Scheme: DFP, EPCPages: 64, ELRangePages: 512, EvictPolicy: policy,
		})
		if err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
		if res.Kernel.DemandFaults == 0 {
			t.Fatalf("policy %s: no faults on a 512-page trace with 64-frame EPC", policy)
		}
	}
}
