package dfp

import (
	"sgxpreload/internal/mem"
)

// Alternative fault-history predictors for the ablation study. The
// paper's §4.1 positions its multiple-stream recognizer as the simple,
// general point in a larger design space ("heuristic schemes or even
// machine learning based schemes"); these implementations populate enough
// of that space to measure what the choice is worth:
//
//   - Stride generalizes the recognizer to constant non-unit strides.
//   - Markov is a correlation predictor over fault-to-fault transitions,
//     the classic alternative for pointer-chasing patterns.
//   - NextN is the no-history strawman.
//
// All three reuse the stop-mechanism bookkeeping via stopState, so the
// DFP-stop safety valve composes with any of them.

// stopState implements the shared accuracy counters and stop formula.
type stopState struct {
	cfg          Config
	preloadCount uint64
	accCount     uint64
	stopped      bool
}

// NotePreloaded records pages handed to the preload worker.
func (s *stopState) NotePreloaded(n int) {
	if n > 0 {
		s.preloadCount += uint64(n)
	}
}

// NoteAccessed records preloaded pages observed accessed.
func (s *stopState) NoteAccessed(n int) {
	if n > 0 {
		s.accCount += uint64(n)
	}
}

// EvaluateStop applies AccPreloadCounter + slack < PreloadCounter/2.
func (s *stopState) EvaluateStop() bool {
	if !s.cfg.Stop || s.stopped {
		return s.stopped
	}
	if s.accCount+s.cfg.StopSlack < s.preloadCount/2 {
		s.stopped = true
	}
	return s.stopped
}

// Stopped reports whether the valve fired.
func (s *stopState) Stopped() bool { return s.stopped }

// PreloadCounter returns the total pages handed to the preload worker.
func (s *stopState) PreloadCounter() uint64 { return s.preloadCount }

// AccPreloadCounter returns the preloaded pages observed accessed.
func (s *stopState) AccPreloadCounter() uint64 { return s.accCount }

// strideEntry tracks one candidate strided stream.
type strideEntry struct {
	last    mem.PageID
	stride  int64
	confirm bool // stride observed at least twice
	pend    mem.PageID
}

// Stride recognizes constant-stride fault sequences. A unit stride makes
// it behave like the paper's recognizer; non-unit strides catch
// column-major sweeps and records spanning several pages.
type Stride struct {
	stopState
	entries []strideEntry
}

// NewStride builds a stride predictor; cfg.StreamListLen bounds the
// tracked streams and cfg.LoadLength the preload distance.
func NewStride(cfg Config) (*Stride, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Stride{stopState: stopState{cfg: cfg}}, nil
}

// Name identifies the strategy.
func (*Stride) Name() string { return "stride" }

// OnFault observes npn and predicts the continuation of a recognized
// strided stream.
func (p *Stride) OnFault(npn mem.PageID) []mem.PageID {
	if p.stopped {
		return nil
	}
	for i := range p.entries {
		e := &p.entries[i]
		if !e.matches(npn) {
			continue
		}
		e.last = npn
		out := make([]mem.PageID, 0, p.cfg.LoadLength)
		cur := int64(npn)
		for j := 0; j < p.cfg.LoadLength; j++ {
			cur += e.stride
			if cur < 0 {
				break
			}
			out = append(out, mem.PageID(cur))
		}
		if len(out) > 0 {
			e.pend = out[len(out)-1]
		}
		p.moveToHead(i)
		return out
	}
	p.insert(strideEntry{last: npn})
	return nil
}

// matches reports whether a fault on npn extends the candidate stream,
// fixing the stride on the second fault. This mirrors the multistream
// recognizer's rule (second adjacent fault confirms) generalized to any
// small stride — which also means it confirms more junk on irregular
// histories, the cost side of the ablation.
func (e *strideEntry) matches(npn mem.PageID) bool {
	delta := int64(npn) - int64(e.last)
	if delta == 0 {
		return false
	}
	if !e.confirm {
		if abs64(delta) > 64 {
			return false
		}
		e.stride = delta
		e.confirm = true
		return true
	}
	if delta == e.stride {
		return true
	}
	// In-window catch-up fault between the tail and the predicted end.
	if e.stride > 0 {
		return int64(npn) > int64(e.last) && int64(npn) <= int64(e.pend)+e.stride
	}
	return int64(npn) < int64(e.last) && int64(npn) >= int64(e.pend)+e.stride
}

func (p *Stride) moveToHead(i int) {
	if i == 0 {
		return
	}
	e := p.entries[i]
	copy(p.entries[1:i+1], p.entries[:i])
	p.entries[0] = e
}

func (p *Stride) insert(e strideEntry) {
	if len(p.entries) < p.cfg.StreamListLen {
		p.entries = append(p.entries, strideEntry{})
	}
	copy(p.entries[1:], p.entries[:len(p.entries)-1])
	p.entries[0] = e
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Markov is a first-order correlation predictor: for every faulting page
// it remembers which pages faulted next, and on a repeat fault preloads
// the remembered successors. Effective when the same pointer chains are
// walked repeatedly; useless on first-touch streams.
type Markov struct {
	stopState
	// successors maps a page to its most recent distinct successors,
	// most recent first.
	successors map[mem.PageID][]mem.PageID
	order      []mem.PageID // FIFO of table keys for capacity eviction
	capacity   int
	prev       mem.PageID
	havePrev   bool
}

// NewMarkov builds a correlation predictor. The transition table holds
// 64x cfg.StreamListLen source pages (the paper's list length is a
// deliberately tiny structure; a correlation table needs more state to
// function at all — that asymmetry is part of the ablation's point).
func NewMarkov(cfg Config) (*Markov, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Markov{
		stopState:  stopState{cfg: cfg},
		successors: make(map[mem.PageID][]mem.PageID),
		capacity:   cfg.StreamListLen * 64,
	}, nil
}

// Name identifies the strategy.
func (*Markov) Name() string { return "markov" }

// OnFault records the prev→npn transition and predicts npn's remembered
// successors.
func (p *Markov) OnFault(npn mem.PageID) []mem.PageID {
	if p.stopped {
		return nil
	}
	if p.havePrev && p.prev != npn {
		p.record(p.prev, npn)
	}
	p.prev, p.havePrev = npn, true

	succ := p.successors[npn]
	if len(succ) == 0 {
		return nil
	}
	n := p.cfg.LoadLength
	if n > len(succ) {
		n = len(succ)
	}
	out := make([]mem.PageID, n)
	copy(out, succ[:n])
	return out
}

// record notes a transition, keeping the most recent distinct successors
// first and bounding the table.
func (p *Markov) record(from, to mem.PageID) {
	succ := p.successors[from]
	for i, s := range succ {
		if s == to {
			copy(succ[1:i+1], succ[:i])
			succ[0] = to
			return
		}
	}
	if len(succ) >= 4 {
		succ = succ[:3]
	}
	p.successors[from] = append([]mem.PageID{to}, succ...)
	if len(succ) == 0 {
		// New key: enforce capacity FIFO.
		p.order = append(p.order, from)
		if len(p.order) > p.capacity {
			evict := p.order[0]
			p.order = p.order[1:]
			delete(p.successors, evict)
		}
	}
}

// NextN preloads the N pages after every fault, unconditionally.
type NextN struct {
	stopState
}

// NewNextN builds the no-history strawman.
func NewNextN(cfg Config) (*NextN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NextN{stopState: stopState{cfg: cfg}}, nil
}

// Name identifies the strategy.
func (*NextN) Name() string { return "nextn" }

// OnFault predicts npn+1..npn+LoadLength on every fault.
func (p *NextN) OnFault(npn mem.PageID) []mem.PageID {
	if p.stopped {
		return nil
	}
	out := make([]mem.PageID, 0, p.cfg.LoadLength)
	cur := npn
	for i := 0; i < p.cfg.LoadLength; i++ {
		next := successor(cur, Forward)
		if next == mem.NoPage {
			break
		}
		cur = next
		out = append(out, cur)
	}
	return out
}

// Name identifies the paper's strategy (implements the core contract).
func (*Predictor) Name() string { return "multistream" }
