package epc

import (
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

// forceSparse swaps a freshly built EPC onto the map-backed page table,
// regardless of ELRANGE size. Only valid before any page is loaded.
func forceSparse(t *testing.T, e *EPC) {
	t.Helper()
	if e.Resident() != 0 {
		t.Fatal("forceSparse on a non-empty EPC")
	}
	e.pt = make(sparsePageTable, len(e.frames))
}

func TestNewSelectsPageTableImplementation(t *testing.T) {
	small := mustNew(t, 4, 1024)
	if _, ok := small.pt.(*densePageTable); !ok {
		t.Fatalf("small ELRANGE uses %T, want *densePageTable", small.pt)
	}
	big, err := New(4, maxDensePages+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := big.pt.(sparsePageTable); !ok {
		t.Fatalf("oversized ELRANGE uses %T, want sparsePageTable", big.pt)
	}
}

// TestPageTableDifferential drives a dense-table EPC and a map-fallback
// EPC through an identical random load/touch/evict/victim sequence under
// every eviction policy and asserts they stay indistinguishable: same
// victims, same presence answers, same bitmap, same invariants. This is
// the parity oracle for the reverse-array optimization — any divergence
// in the page table would surface as a differing victim or bitmap.
func TestPageTableDifferential(t *testing.T) {
	const (
		capacity = 8
		pages    = 128
		steps    = 8000
		owners   = 4 // pages split into 4 equal owner ranges
	)
	for _, policy := range []Policy{PolicyClock, PolicyFIFO, PolicyLRU, PolicyRandom} {
		t.Run(policy.String(), func(t *testing.T) {
			mk := func() *EPC {
				e, err := NewWithPolicy(capacity, pages, policy)
				if err != nil {
					t.Fatal(err)
				}
				for o := 1; o <= owners; o++ {
					if err := e.AddOwner(uint64(o) * pages / owners); err != nil {
						t.Fatal(err)
					}
				}
				return e
			}
			dense, sparse := mk(), mk()
			if _, ok := dense.pt.(*densePageTable); !ok {
				t.Fatalf("control EPC uses %T, want *densePageTable", dense.pt)
			}
			forceSparse(t, sparse)

			r := rng.New(1337)
			for i := 0; i < steps; i++ {
				p := mem.PageID(r.Intn(pages))
				switch r.Intn(6) {
				case 0: // load (evicting if full), preload flag varies
					if dense.Present(p) != sparse.Present(p) {
						t.Fatalf("step %d: Present(%d) diverges", i, p)
					}
					if dense.Present(p) {
						continue
					}
					if dense.Full() {
						dv, sv := dense.SelectVictim(), sparse.SelectVictim()
						if dv != sv {
							t.Fatalf("step %d: victims diverge: dense %d, sparse %d", i, dv, sv)
						}
						dense.Evict(dv)
						sparse.Evict(sv)
					}
					pre := r.Intn(2) == 0
					if err := dense.Load(p, pre); err != nil {
						t.Fatalf("step %d: dense Load(%d): %v", i, p, err)
					}
					if err := sparse.Load(p, pre); err != nil {
						t.Fatalf("step %d: sparse Load(%d): %v", i, p, err)
					}
				case 1:
					if dense.Evict(p) != sparse.Evict(p) {
						t.Fatalf("step %d: Evict(%d) diverges", i, p)
					}
				case 2:
					if dense.Touch(p) != sparse.Touch(p) {
						t.Fatalf("step %d: Touch(%d) diverges", i, p)
					}
				case 3:
					if dv, sv := dense.SelectVictim(), sparse.SelectVictim(); dv != sv {
						t.Fatalf("step %d: SelectVictim diverges: dense %d, sparse %d", i, dv, sv)
					}
				case 4:
					if dense.Preloaded(p) != sparse.Preloaded(p) || dense.Accessed(p) != sparse.Accessed(p) {
						t.Fatalf("step %d: frame bits diverge for page %d", i, p)
					}
				case 5: // owner-filtered victim scan
					o := r.Intn(owners)
					if dv, sv := dense.SelectVictimOwned(o), sparse.SelectVictimOwned(o); dv != sv {
						t.Fatalf("step %d: SelectVictimOwned(%d) diverges: dense %d, sparse %d", i, o, dv, sv)
					}
				}
				if dense.Resident() != sparse.Resident() {
					t.Fatalf("step %d: Resident diverges: %d vs %d", i, dense.Resident(), sparse.Resident())
				}
				// Ownership invariant: per-owner counts agree across the
				// two implementations and sum to the resident total.
				sum := 0
				for o := 0; o < owners; o++ {
					if dr, sr := dense.OwnerResident(o), sparse.OwnerResident(o); dr != sr {
						t.Fatalf("step %d: OwnerResident(%d) diverges: %d vs %d", i, o, dr, sr)
					}
					sum += dense.OwnerResident(o)
				}
				if sum != dense.Resident() {
					t.Fatalf("step %d: owner counts sum to %d, Resident is %d", i, sum, dense.Resident())
				}
			}
			// Final state must agree bit for bit.
			for p := uint64(0); p < pages; p++ {
				if dense.PresenceBitmap().Get(p) != sparse.PresenceBitmap().Get(p) {
					t.Fatalf("presence bitmap diverges at page %d", p)
				}
			}
			if err := dense.CheckInvariants(); err != nil {
				t.Fatalf("dense invariants: %v", err)
			}
			if err := sparse.CheckInvariants(); err != nil {
				t.Fatalf("sparse invariants: %v", err)
			}
		})
	}
}

// TestSparseFallbackUnderRandomOperations re-runs the structural
// invariant soak on the map-backed table so the fallback keeps its own
// coverage even though every default-sized EPC now takes the dense path.
func TestSparseFallbackUnderRandomOperations(t *testing.T) {
	const (
		capacity = 8
		pages    = 64
		steps    = 3000
	)
	e := mustNew(t, capacity, pages)
	forceSparse(t, e)
	r := rng.New(99)
	for i := 0; i < steps; i++ {
		p := mem.PageID(r.Intn(pages))
		switch r.Intn(3) {
		case 0:
			if !e.Present(p) {
				if e.Full() {
					e.Evict(e.SelectVictim())
				}
				if err := e.Load(p, r.Intn(2) == 0); err != nil {
					t.Fatalf("step %d: Load(%d): %v", i, p, err)
				}
			}
		case 1:
			e.Evict(p)
		case 2:
			e.Touch(p)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
