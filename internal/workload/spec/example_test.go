package spec_test

import (
	"fmt"

	"sgxpreload/internal/fleet"
	"sgxpreload/internal/workload/spec"
)

// Parse a JSON spec, compile it, and inspect the deterministic launch
// manifest. The same spec and seed always compile to the same launches.
func Example() {
	src := []byte(`{
		"name": "example",
		"seed": 1,
		"horizon_cycles": 6000000,
		"cohorts": [{
			"name": "web",
			"arrival": {"process": "poisson", "mean_interval_cycles": 1000000},
			"mix": [{"workload": "exchange2", "weight": 1}]
		}]
	}`)
	s, err := spec.Parse(src)
	if err != nil {
		panic(err)
	}
	arrivals, manifest, err := spec.Compile(s, spec.Options{})
	if err != nil {
		panic(err)
	}
	// Not running the arrivals here, so release their generator
	// coroutines; fleet.Run would otherwise own them.
	defer fleet.CloseArrivals(arrivals)

	fmt.Println("launches:", len(manifest.Launches))
	for _, l := range manifest.Launches[:2] {
		fmt.Printf("cycle %d: %s\n", l.At, l.Name)
	}
	// Output:
	// launches: 4
	// cycle 709546: web.exchange2/0
	// cycle 3481493: web.exchange2/1
}
