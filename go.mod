module sgxpreload

go 1.22
