package epc

import "sgxpreload/internal/mem"

// maxDensePages bounds the flat reverse-array page table: at 1<<22 pages
// (a 16 GiB ELRANGE) the array costs 16 MiB, which is still cheap next to
// the per-run simulation state. A pathologically sparse range beyond that
// falls back to the map-backed table, preserving the old behavior.
const maxDensePages = 1 << 22

// pageTable is the resident page → physical frame reverse mapping. It sits
// on the fault hot path (Present, Touch, Load, Evict all consult it), so
// the dense implementation turns every operation into array indexing; the
// sparse map implementation exists only for ELRANGEs too large to back
// with an array. Callers guarantee set/remove pages are inside ELRANGE
// (Load validates); lookup tolerates any page.
type pageTable interface {
	lookup(page mem.PageID) (FrameID, bool)
	set(page mem.PageID, f FrameID)
	remove(page mem.PageID)
	size() int
}

// densePageTable is a flat page→frame array indexed by PageID, with the
// noFrame sentinel marking absent pages.
type densePageTable struct {
	frames []FrameID
	n      int
}

func newDensePageTable(pages uint64) *densePageTable {
	t := &densePageTable{frames: make([]FrameID, pages)}
	for i := range t.frames {
		t.frames[i] = noFrame
	}
	return t
}

func (t *densePageTable) lookup(page mem.PageID) (FrameID, bool) {
	if uint64(page) >= uint64(len(t.frames)) {
		return noFrame, false
	}
	f := t.frames[page]
	return f, f != noFrame
}

func (t *densePageTable) set(page mem.PageID, f FrameID) {
	if t.frames[page] == noFrame {
		t.n++
	}
	t.frames[page] = f
}

func (t *densePageTable) remove(page mem.PageID) {
	if t.frames[page] != noFrame {
		t.frames[page] = noFrame
		t.n--
	}
}

func (t *densePageTable) size() int { return t.n }

// sparsePageTable is the map fallback for ELRANGEs past maxDensePages.
type sparsePageTable map[mem.PageID]FrameID

func (t sparsePageTable) lookup(page mem.PageID) (FrameID, bool) {
	f, ok := t[page]
	return f, ok
}

func (t sparsePageTable) set(page mem.PageID, f FrameID) { t[page] = f }

func (t sparsePageTable) remove(page mem.PageID) { delete(t, page) }

func (t sparsePageTable) size() int { return len(t) }

// newPageTable selects the implementation for an ELRANGE of pages pages,
// hinting the sparse map with the EPC capacity.
func newPageTable(pages uint64, capacity int) pageTable {
	if pages <= maxDensePages {
		return newDensePageTable(pages)
	}
	return make(sparsePageTable, capacity)
}

// growPageTable extends t to cover pages pages, preserving every mapping.
// A dense table extends its flat array while the range stays within
// maxDensePages and converts to the sparse map when growth crosses that
// bound — the same dense/sparse selection newPageTable makes up front,
// applied incrementally as dynamic admission widens the shared space.
func growPageTable(t pageTable, pages uint64, capacity int) pageTable {
	d, ok := t.(*densePageTable)
	if !ok {
		return t // sparse maps cover any page already
	}
	if pages <= maxDensePages {
		for uint64(len(d.frames)) < pages {
			d.frames = append(d.frames, noFrame)
		}
		return d
	}
	s := make(sparsePageTable, capacity)
	for p, f := range d.frames {
		if f != noFrame {
			s[mem.PageID(p)] = f
		}
	}
	return s
}
