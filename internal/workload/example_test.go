package workload_test

import (
	"fmt"

	"sgxpreload/internal/workload"
)

// Look up a registered benchmark model and inspect its Table 1 row.
func ExampleByName() {
	w, err := workload.ByName("leela")
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Name, "-", w.Category)
	fmt.Println("footprint pages:", w.FootprintPages)
	fmt.Println("instrumentable:", w.Instrumentable)
	// Output:
	// leela - small working set
	// footprint pages: 700
	// instrumentable: true
}

// Pull accesses one at a time without materializing the trace. The same
// (workload, input) pair always streams the identical accesses.
func ExampleWorkload_Stream() {
	w, err := workload.ByName("exchange2")
	if err != nil {
		panic(err)
	}
	s := w.Stream(workload.Train)
	for i := 0; i < 3; i++ {
		a, ok := s.Next()
		if !ok {
			break
		}
		fmt.Printf("site %d page %d\n", a.Site, a.Page)
	}
	// An early stop must release the generator coroutine.
	s.(interface{ Close() }).Close()
	// Output:
	// site 7401 page 184
	// site 7401 page 168
	// site 7401 page 106
}

// Enumerate a Table 1 category.
func ExampleByCategory() {
	for _, w := range workload.ByCategory(workload.SmallWS) {
		fmt.Println(w.Name)
	}
	// Output:
	// cactuBSSN
	// exchange2
	// imagick
	// leela
	// nab
}
