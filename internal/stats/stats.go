// Package stats provides the small statistical helpers the evaluation
// uses: means, normalization against a baseline, improvement percentages,
// and fixed-width table rendering for the experiment reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice). The paper
// reports arithmetic means over five runs; the simulator is deterministic,
// so means here aggregate across benchmarks instead.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 if any x <= 0 or empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Normalized returns value/baseline — the "normalized execution time" of
// the paper's figures (1.0 = baseline, below 1.0 = faster). It returns
// NaN when baseline is 0.
func Normalized(value, baseline uint64) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return float64(value) / float64(baseline)
}

// ImprovementPct returns the performance improvement of value over
// baseline in percent: positive = faster than baseline. Like Normalized,
// it returns NaN when baseline is 0, so a missing baseline shows up as
// "NaN" in reports instead of masquerading as "no change". NaN compares
// false with everything, so threshold tests on the result (v < 0, v > x)
// treat a missing baseline as "neither" — and aggregates over it (Mean)
// propagate the NaN into the rendered table rather than hiding it.
func ImprovementPct(value, baseline uint64) float64 {
	if baseline == 0 {
		return math.NaN()
	}
	return 100 * (1 - float64(value)/float64(baseline))
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs by linear
// interpolation between closest ranks: rank p/100*(n-1) falls either on
// an element (returned exactly) or between two adjacent elements
// (interpolated). The input need not be sorted; it is not mutated. An
// empty input returns NaN — a missing sample set must not masquerade as
// a zero latency — and p is clamped to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedPercentile(sorted, p)
}

// SortedPercentile is Percentile over an already-ascending slice. Callers
// extracting several percentiles of one sample set (p50/p95/p99 tables)
// sort once and call this per tail point.
func SortedPercentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= n {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Table renders rows as a fixed-width text table with the given header.
// Cells are right-aligned except the first column.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table. Ragged input is tolerated: every row
// (including the header) is normalized to the widest row's column count
// up front, so the separator, the padding, and the cells all agree, and
// the empty cells a short row leaves behind never emit stray padding —
// trailing whitespace is trimmed from every line.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return ""
	}
	pad := func(r []string) []string {
		if len(r) >= cols {
			return r
		}
		out := make([]string, cols)
		copy(out, r)
		return out
	}
	header := pad(t.Header)
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = pad(r)
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(header)
	for _, r := range rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			if i == 0 {
				fmt.Fprintf(&line, "%-*s", widths[i], r[i])
			} else {
				fmt.Fprintf(&line, "  %*s", widths[i], r[i])
			}
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
