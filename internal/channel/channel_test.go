package channel

import (
	"testing"

	"sgxpreload/internal/mem"
)

func TestBeginComplete(t *testing.T) {
	c := New()
	if !c.Idle() {
		t.Fatal("new channel not idle")
	}
	ld := c.Begin(5, 100, 44000, false, 0)
	if ld.Done != 44100 {
		t.Fatalf("Done = %d, want 44100", ld.Done)
	}
	if c.Idle() {
		t.Fatal("channel idle during transfer")
	}
	if got := c.InflightPage(); got != 5 {
		t.Fatalf("InflightPage() = %d, want 5", got)
	}
	done := c.CompleteInflight()
	if done.Page != 5 || !c.Idle() {
		t.Fatalf("CompleteInflight() = %+v, idle=%v", done, c.Idle())
	}
	if c.Started() != 1 {
		t.Fatalf("Started() = %d, want 1", c.Started())
	}
}

func TestBeginWhileBusyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Begin while busy did not panic")
		}
	}()
	c := New()
	c.Begin(1, 0, 100, false, 0)
	c.Begin(2, 200, 100, false, 0)
}

func TestBeginBeforeFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Begin before channel free did not panic")
		}
	}()
	c := New()
	c.Begin(1, 0, 100, false, 0)
	c.CompleteInflight()
	c.Begin(2, 50, 100, false, 0) // channel busy until 100
}

func TestCompleteIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CompleteInflight on idle channel did not panic")
		}
	}()
	New().CompleteInflight()
}

func TestInflightOnIdle(t *testing.T) {
	c := New()
	if _, ok := c.Inflight(); ok {
		t.Fatal("Inflight() = ok on idle channel")
	}
	if got := c.InflightPage(); got != mem.NoPage {
		t.Fatalf("InflightPage() = %d, want NoPage", got)
	}
}

func TestQueueBatchFIFO(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 10, 32)
	c.QueueBatch([]mem.PageID{7, 8}, 20, 32)
	want := []mem.PageID{1, 2, 3, 7, 8}
	for i, w := range want {
		r, ok := c.PopPending()
		if !ok || r.Page != w {
			t.Fatalf("pop %d = (%v, %v), want page %d", i, r, ok, w)
		}
	}
	if _, ok := c.PopPending(); ok {
		t.Fatal("pop on drained queue succeeded")
	}
}

func TestQueueBatchDistinctIDs(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1}, 0, 32)
	c.QueueBatch([]mem.PageID{2}, 0, 32)
	a, _ := c.PopPending()
	b, _ := c.PopPending()
	if a.Batch == b.Batch {
		t.Fatalf("batches share id %d", a.Batch)
	}
}

func TestQueueBatchCapDropsStalest(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3, 4}, 0, 32)
	dropped := c.QueueBatch([]mem.PageID{5, 6, 7, 8}, 0, 6)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	r, _ := c.PopPending()
	if r.Page != 3 {
		t.Fatalf("head after cap = %d, want 3 (1 and 2 were stalest)", r.Page)
	}
	if c.Aborted() != 2 {
		t.Fatalf("Aborted() = %d, want 2", c.Aborted())
	}
}

func TestAbortBatchContaining(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 0, 32)
	c.QueueBatch([]mem.PageID{9, 10}, 0, 32)
	if !c.AbortBatchContaining(2) {
		t.Fatal("AbortBatchContaining(2) = false")
	}
	// Batch {1,2,3} gone; {9,10} intact.
	want := []mem.PageID{9, 10}
	for _, w := range want {
		r, ok := c.PopPending()
		if !ok || r.Page != w {
			t.Fatalf("after abort got (%v, %v), want %d", r, ok, w)
		}
	}
	if c.AbortBatchContaining(99) {
		t.Fatal("AbortBatchContaining of absent page = true")
	}
}

func TestRemovePending(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 0, 32)
	if !c.RemovePending(2) {
		t.Fatal("RemovePending(2) = false")
	}
	if c.RemovePending(2) {
		t.Fatal("RemovePending(2) twice = true")
	}
	if c.PendingLen() != 2 {
		t.Fatalf("PendingLen() = %d, want 2", c.PendingLen())
	}
	if !c.PendingContains(1) || !c.PendingContains(3) || c.PendingContains(2) {
		t.Fatal("pending set wrong after removal")
	}
}

func TestAbortPending(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2, 3}, 0, 32)
	if n := c.AbortPending(); n != 3 {
		t.Fatalf("AbortPending() = %d, want 3", n)
	}
	if c.PendingLen() != 0 {
		t.Fatal("pending not empty after AbortPending")
	}
}

func TestPushAllRestoresOrder(t *testing.T) {
	c := New()
	c.QueueBatch([]mem.PageID{1, 2}, 0, 32)
	head, _ := c.PopPending()
	rest := []Request{head}
	for {
		r, ok := c.PopPending()
		if !ok {
			break
		}
		rest = append(rest, r)
	}
	c.PushAll(rest)
	r, _ := c.PopPending()
	if r.Page != 1 {
		t.Fatalf("head after PushAll = %d, want 1", r.Page)
	}
}

func TestBusyUntilMonotone(t *testing.T) {
	c := New()
	var last uint64
	for i := 0; i < 100; i++ {
		start := c.BusyUntil() + uint64(i%7)
		c.Begin(mem.PageID(i), start, 1000, i%2 == 0, 0)
		c.CompleteInflight()
		if c.BusyUntil() < last {
			t.Fatalf("BusyUntil went backwards: %d < %d", c.BusyUntil(), last)
		}
		last = c.BusyUntil()
	}
}
