package sim

import (
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/workload"
)

func seqTrace(pages, passes int, compute uint64) []mem.Access {
	var out []mem.Access
	for p := 0; p < passes; p++ {
		for i := 0; i < pages; i++ {
			out = append(out, mem.Access{Site: 1, Page: mem.PageID(i), Compute: compute})
		}
	}
	return out
}

func cfg(scheme Scheme) Config {
	return Config{Scheme: scheme, EPCPages: 64, ELRangePages: 4096}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{Scheme: Baseline, EPCPages: 4}); err == nil {
		t.Fatal("Run without ELRangePages succeeded")
	}
	bad := cfg(Baseline)
	bad.Costs = mem.CostModel{AEX: 1} // Load == 0
	if _, err := Run(nil, bad); err == nil {
		t.Fatal("Run with invalid cost model succeeded")
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Run(nil, cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Accesses != 0 {
		t.Fatalf("empty trace produced %+v", res)
	}
}

func TestBaselineAccounting(t *testing.T) {
	cm := mem.DefaultCostModel()
	tr := seqTrace(10, 1, 100)
	res, err := Run(tr, cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	// Every page cold-faults once; EPC has room, so no eviction.
	want := 10*(100+cm.FaultCost()+cm.Hit) + 0
	if res.Cycles != uint64(want) {
		t.Fatalf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.Faults() != 10 || res.Hits != 0 {
		t.Fatalf("faults = %d, hits = %d; want 10, 0", res.Faults(), res.Hits)
	}
	// Second pass hits.
	res2, err := Run(seqTrace(10, 2, 100), cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Faults() != 10 || res2.Hits != 10 {
		t.Fatalf("faults = %d, hits = %d; want 10 faults, 10 hits", res2.Faults(), res2.Hits)
	}
}

func TestDeterminism(t *testing.T) {
	w, err := workload.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(workload.Ref)
	c := Config{Scheme: DFP, EPCPages: 2048, ELRangePages: w.ELRangePages()}
	a, err := Run(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same trace, same config, different results:\n%+v\n%+v", a, b)
	}
}

func TestDFPBeatsBaselineOnSequentialScan(t *testing.T) {
	// Enough compute per page for the preloads to complete ahead of the
	// application; in the channel-bound regime faults would persist as
	// in-flight waits instead.
	tr := seqTrace(1024, 1, 100000)
	base, err := Run(tr, cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(tr, cfg(DFP))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycles >= base.Cycles {
		t.Fatalf("DFP (%d) not faster than baseline (%d) on a pure scan", d.Cycles, base.Cycles)
	}
	if d.Kernel.PreloadsStarted == 0 {
		t.Fatal("DFP started no preloads on a pure scan")
	}
	if d.Faults() >= base.Faults() {
		t.Fatalf("DFP faults (%d) not below baseline (%d)", d.Faults(), base.Faults())
	}
}

func TestSchemeFlags(t *testing.T) {
	tests := []struct {
		s    Scheme
		dfp  bool
		sip  bool
		name string
	}{
		{Baseline, false, false, "baseline"},
		{DFP, true, false, "DFP"},
		{DFPStop, true, false, "DFP-stop"},
		{SIP, false, true, "SIP"},
		{Hybrid, true, true, "SIP+DFP"},
	}
	for _, tt := range tests {
		if tt.s.UsesDFP() != tt.dfp || tt.s.UsesSIP() != tt.sip || tt.s.String() != tt.name {
			t.Errorf("scheme %d: got (%v, %v, %q), want (%v, %v, %q)",
				tt.s, tt.s.UsesDFP(), tt.s.UsesSIP(), tt.s.String(), tt.dfp, tt.sip, tt.name)
		}
	}
}

func TestSIPConvertsFaultsToNotifies(t *testing.T) {
	// A trace alternating a hot page and cold random pages at one site:
	// instrument that site and the cold accesses become notify loads.
	var tr []mem.Access
	for i := 0; i < 256; i++ {
		tr = append(tr, mem.Access{Site: 9, Page: mem.PageID(100 + i), Compute: 1000})
	}
	prof := &sip.Profile{Sites: map[mem.SiteID]*sip.SiteProfile{
		9: {Class3: 100},
	}}
	sel := sip.Select(prof, 0.05, 0)
	c := cfg(SIP)
	c.Selection = sel
	res, err := Run(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults() != 0 {
		t.Fatalf("faults = %d, want 0 (all converted to notifies)", res.Faults())
	}
	if res.Kernel.NotifyLoads != 256 {
		t.Fatalf("notify loads = %d, want 256", res.Kernel.NotifyLoads)
	}
	if res.SIPChecks != 256 {
		t.Fatalf("checks = %d, want 256", res.SIPChecks)
	}

	// The same trace under baseline pays AEX+ERESUME per access more.
	base, err := Run(tr, cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	cm := mem.DefaultCostModel()
	saved := base.Cycles - res.Cycles
	wantSaved := 256 * (cm.AEX + cm.Eresume - cm.Notify - cm.BitmapCheck)
	if saved != wantSaved {
		t.Fatalf("SIP saved %d cycles, want %d", saved, wantSaved)
	}
}

func TestSIPCheckOverheadOnResidentPages(t *testing.T) {
	// All accesses hit one resident page: instrumentation is pure loss.
	var tr []mem.Access
	for i := 0; i < 100; i++ {
		tr = append(tr, mem.Access{Site: 9, Page: 5, Compute: 10})
	}
	prof := &sip.Profile{Sites: map[mem.SiteID]*sip.SiteProfile{9: {Class3: 1}}}
	c := cfg(SIP)
	c.Selection = sip.Select(prof, 0.05, 0)
	res, err := Run(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(tr, cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	// 100 checks of overhead, minus the AEX+ERESUME the notify path saved
	// on the single cold miss.
	cm := mem.DefaultCostModel()
	want := 100*cm.BitmapCheck - (cm.AEX + cm.Eresume - cm.Notify)
	if res.Cycles-base.Cycles != want {
		t.Fatalf("check overhead = %d, want %d", res.Cycles-base.Cycles, want)
	}
	if res.SIPPresent != 99 {
		t.Fatalf("SIPPresent = %d, want 99 (first access is the cold miss)", res.SIPPresent)
	}
}

func TestHybridUsesBothMechanisms(t *testing.T) {
	w, err := workload.ByName("mixed-blood")
	if err != nil {
		t.Fatal(err)
	}
	// Build the selection from the train input, like the experiments do.
	cl, err := sip.NewClassifier(2048, w.ELRangePages(), dfp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Generate(workload.Train) {
		cl.Record(a.Site, a.Page)
	}
	sel := sip.Select(cl.Profile(), 0.05, 32)
	res, err := Run(w.Generate(workload.Ref), Config{
		Scheme: Hybrid, EPCPages: 2048, ELRangePages: w.ELRangePages(), Selection: sel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel.PreloadsStarted == 0 {
		t.Error("hybrid run started no DFP preloads")
	}
	if res.Kernel.NotifyLoads == 0 {
		t.Error("hybrid run issued no SIP notify loads")
	}
}

func TestEPCOfOnePage(t *testing.T) {
	tr := seqTrace(16, 2, 10)
	c := Config{Scheme: DFP, EPCPages: 1, ELRangePages: 64}
	res, err := Run(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	// Every access must fault: one frame can hold only the current page,
	// and preloads into a single-frame EPC evict it immediately.
	if res.Faults() == 0 {
		t.Fatal("no faults with a single-frame EPC")
	}
}

func TestFootprintSmallerThanEPCIsNoop(t *testing.T) {
	tr := seqTrace(32, 4, 100)
	base, err := Run(tr, cfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(tr, cfg(DFPStop))
	if err != nil {
		t.Fatal(err)
	}
	// Only the 32 cold-start faults differ (DFP preloads during warmup);
	// after warmup both run identically, so DFP may only be faster, and
	// by at most the cold faults' full cost.
	if d.Cycles > base.Cycles {
		t.Fatalf("DFP-stop (%d) slower than baseline (%d) on an in-EPC workload", d.Cycles, base.Cycles)
	}
	cm := mem.DefaultCostModel()
	if base.Cycles-d.Cycles > 32*cm.FaultCost() {
		t.Fatalf("schemes diverge by %d cycles, more than the cold-start bound %d",
			base.Cycles-d.Cycles, 32*cm.FaultCost())
	}
}
