package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sgxpreload/internal/mem"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/sip"
	"sgxpreload/internal/workload"
)

// Scheduler semantics: results land by cell index, errors surface in
// sequential order, and worker counts are clamped sanely.

func TestSweepOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		out, err := Sweep(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	out, err := Sweep(4, 0, func(i int) (int, error) { return 0, nil })
	if out != nil || err != nil {
		t.Fatalf("Sweep(_, 0) = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestSweepLowestIndexError(t *testing.T) {
	// Every cell from 5 up fails with an index-tagged error. Dispatch is
	// contiguous from zero, so regardless of completion order the caller
	// must see cell 5's error — the one a sequential loop would hit first.
	for _, workers := range []int{1, 4} {
		_, err := Sweep(workers, 50, func(i int) (int, error) {
			if i >= 5 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 5 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 5's error", workers, err)
		}
	}
}

func TestSweepSequentialStopsEarly(t *testing.T) {
	calls := 0
	sentinel := errors.New("boom")
	_, err := Sweep(1, 100, func(i int) (int, error) {
		calls++
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("sequential sweep made %d calls after failure at cell 2, want 3", calls)
	}
}

// The determinism guarantee of the worker pool: every table and figure is
// byte-identical at parallelism 1 and parallelism N. Fresh runners on both
// sides so neither leans on the other's caches.

func TestParallelMatchesSequential(t *testing.T) {
	seq := NewRunner(Default())
	seq.SetParallelism(1)
	par := NewRunner(Default())
	par.SetParallelism(8)

	f3s, err := Figure3(seq)
	if err != nil {
		t.Fatal(err)
	}
	f3p, err := Figure3(par)
	if err != nil {
		t.Fatal(err)
	}
	if f3s.String() != f3p.String() {
		t.Errorf("Figure3 diverges between -parallel 1 and -parallel 8:\n--- seq ---\n%s--- par ---\n%s",
			f3s.String(), f3p.String())
	}

	// Figure 10 exercises the RunAll grid plus the SIP profile/selection
	// caches under concurrent single-flight fills.
	f10s, err := Figure10(seq)
	if err != nil {
		t.Fatal(err)
	}
	f10p, err := Figure10(par)
	if err != nil {
		t.Fatal(err)
	}
	if f10s.String() != f10p.String() {
		t.Errorf("Figure10 diverges between -parallel 1 and -parallel 8:\n--- seq ---\n%s--- par ---\n%s",
			f10s.String(), f10p.String())
	}
}

func TestRunAllShape(t *testing.T) {
	r := NewRunner(Default())
	r.SetParallelism(4)
	names := []string{"lbm", "microbenchmark"}
	schemes := []sim.Scheme{sim.Baseline, sim.DFPStop}
	res, err := r.RunAll(names, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(names) {
		t.Fatalf("RunAll returned %d rows, want %d", len(res), len(names))
	}
	for i, row := range res {
		if len(row) != len(schemes) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(schemes))
		}
		for j, cell := range row {
			if cell.Scheme != schemes[j] {
				t.Errorf("res[%d][%d].Scheme = %v, want %v", i, j, cell.Scheme, schemes[j])
			}
			if cell.Cycles == 0 {
				t.Errorf("res[%d][%d] has zero cycles", i, j)
			}
		}
	}
	if res[0][0].Cycles == res[1][0].Cycles {
		t.Error("distinct workloads produced identical baseline cycles")
	}
}

func TestRunAllPropagatesUnknownName(t *testing.T) {
	r := NewRunner(Default())
	_, err := r.RunAll([]string{"no-such-benchmark"}, []sim.Scheme{sim.Baseline})
	if err == nil {
		t.Fatal("RunAll with an unknown benchmark returned nil error")
	}
}

// Cache single-flight: concurrent requesters of the same trace, profile,
// or selection must share exactly one fill. Run under -race this also
// checks the memo's synchronization.

func TestCacheSingleFlight(t *testing.T) {
	r := NewRunner(Default())
	w, err := workload.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	profiles := make([]*sip.Profile, goroutines)
	selections := make([]*sip.Selection, goroutines)
	traceFirst := make([]*mem.Access, goroutines)

	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			tr := r.Trace(w, workload.Ref)
			if len(tr) > 0 {
				traceFirst[g] = &tr[0]
			}
			p, err := r.Profile(w)
			if err != nil {
				t.Error(err)
				return
			}
			profiles[g] = p
			s, err := r.Selection(w)
			if err != nil {
				t.Error(err)
				return
			}
			selections[g] = s
		}(g)
	}
	start.Done()
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if profiles[g] != profiles[0] {
			t.Fatalf("goroutine %d saw a different *Profile: the fill ran more than once", g)
		}
		if selections[g] != selections[0] {
			t.Fatalf("goroutine %d saw a different *Selection: the fill ran more than once", g)
		}
		if traceFirst[g] != traceFirst[0] {
			t.Fatalf("goroutine %d saw a different trace backing array: the fill ran more than once", g)
		}
	}
	// Two traces (Ref here, Train pulled in by the profile fill), one
	// profile, one selection — each filled exactly once.
	if r.traces.size() != 2 || r.profiles.size() != 1 || r.selections.size() != 1 {
		t.Fatalf("cache sizes = (%d, %d, %d), want (2, 1, 1)",
			r.traces.size(), r.profiles.size(), r.selections.size())
	}
}

// Progress reporting: every cell of a sweep is reported exactly once, with
// monotone-coverage done counts and the sweep's total.
func TestProgressReporting(t *testing.T) {
	r := NewRunner(Default())
	r.SetParallelism(4)
	type call struct {
		done, total int
		label       string
	}
	var mu sync.Mutex
	var calls []call
	r.SetProgress(func(done, total int, label string) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, call{done, total, label})
	})
	names := []string{"lbm", "microbenchmark"}
	schemes := []sim.Scheme{sim.Baseline, sim.DFPStop}
	if _, err := r.RunAll(names, schemes); err != nil {
		t.Fatal(err)
	}
	n := len(names) * len(schemes)
	if len(calls) != n {
		t.Fatalf("progress reported %d cells, want %d", len(calls), n)
	}
	seen := map[int]bool{}
	for _, c := range calls {
		if c.total != n {
			t.Errorf("reported total %d, want %d", c.total, n)
		}
		if c.done < 1 || c.done > n || seen[c.done] {
			t.Errorf("done counter %d out of range or duplicated", c.done)
		}
		seen[c.done] = true
		if c.label == "" {
			t.Error("empty progress label")
		}
	}
}

// The speedup benchmark of the PR's acceptance criteria: the full DFP
// grid, sequential versus the worker pool. On a >= 4-core machine the
// parallel variant completes the same work >= 2x faster; on a single-core
// machine the two are equivalent (the pool degenerates to one worker).
//
//	go test ./internal/experiments/ -bench BenchmarkRunAll -run ^$

func benchmarkRunAll(b *testing.B, workers int) {
	names := LargeWorkingSet()
	schemes := []sim.Scheme{sim.Baseline, sim.DFPStop}
	for i := 0; i < b.N; i++ {
		r := NewRunner(Default())
		r.SetParallelism(workers)
		if _, err := r.RunAll(names, schemes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) { benchmarkRunAll(b, 1) }

func BenchmarkRunAllParallel(b *testing.B) { benchmarkRunAll(b, runtime.GOMAXPROCS(0)) }
