package obs

import (
	"sync"
	"testing"

	"sgxpreload/internal/mem"
)

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Emit(Event{T: uint64(i), Kind: KindScan})
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total %d dropped %d, want 10/6", r.Total(), r.Dropped())
	}
	window, first := r.Snapshot()
	if len(window) != 4 || first != 7 {
		t.Fatalf("window %d events from seq %d, want 4 from 7", len(window), first)
	}
	for i, e := range window {
		if e.T != uint64(7+i) {
			t.Fatalf("window[%d].T = %d, want %d", i, e.T, 7+i)
		}
	}
}

func TestRingSince(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{T: uint64(i), Kind: KindScan})
	}
	events, first := r.Since(3)
	if len(events) != 2 || first != 4 {
		t.Fatalf("Since(3) = %d events from %d, want 2 from 4", len(events), first)
	}
	if events, _ := r.Since(5); events != nil {
		t.Fatalf("Since(newest) returned %d events", len(events))
	}
	if events, _ := r.Since(99); events != nil {
		t.Fatalf("Since(past end) returned %d events", len(events))
	}
	// A cursor that slid out of the window restarts at the oldest
	// retained event, and the gap is visible from the first sequence.
	small := NewRing(2)
	for i := 1; i <= 6; i++ {
		small.Emit(Event{T: uint64(i), Kind: KindScan})
	}
	events, first = small.Since(1)
	if len(events) != 2 || first != 5 {
		t.Fatalf("Since over a slid window = %d events from %d, want 2 from 5", len(events), first)
	}
}

func TestRingStats(t *testing.T) {
	r := NewRing(16)
	r.Emit(Event{T: 10, Kind: KindFaultBegin, Page: 1})
	r.Emit(Event{T: 20, Kind: KindFaultEnd, Page: 1, V1: 10})
	r.Emit(Event{T: 30, Kind: KindLoadStart, Page: 2, V1: 95}) // completion beyond T
	s := r.Stats()
	if s.Total != 3 || s.Retained != 3 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LastT != 95 {
		t.Fatalf("LastT = %d, want completion cycle 95", s.LastT)
	}
	if s.Counts["fault_begin"] != 1 || s.Counts["fault_end"] != 1 || s.Counts["load_start"] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if _, ok := s.Counts["evict"]; ok {
		t.Fatal("zero kind present in counts")
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	if len(r.buf) != DefaultRingCapacity {
		t.Fatalf("NewRing(0) capacity %d, want %d", len(r.buf), DefaultRingCapacity)
	}
}

// TestRingConcurrentEmitAndRead drives emitters and readers in parallel;
// under -race this is the ring's safety proof. Readers check window
// self-consistency: sequence numbers are contiguous and Ts monotone
// (emitters write monotone T per their own stripe of 1000s).
func TestRingConcurrentEmitAndRead(t *testing.T) {
	r := NewRing(64)
	stop := make(chan struct{})
	var emitters, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		emitters.Add(1)
		go func(base uint64) {
			defer emitters.Done()
			for i := uint64(0); i < 5000; i++ {
				r.Emit(Event{T: base + i, Kind: KindScan, Page: mem.PageID(i)})
			}
		}(uint64(w) * 1_000_000)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				events, first := r.Since(cursor)
				if len(events) > 0 {
					cursor = first + uint64(len(events)) - 1
				}
				r.Stats()
				r.Snapshot()
			}
		}()
	}
	emitters.Wait()
	close(stop)
	readers.Wait()
	if r.Total() != 10000 {
		t.Fatalf("total %d, want 10000", r.Total())
	}
}
