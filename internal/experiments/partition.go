package experiments

import (
	"fmt"
	"math"

	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
	"sgxpreload/internal/workload"
)

// The EPC-partition study: the same hog-skewed co-run under each quota
// policy of the per-enclave arbiter (package epc/arbiter). An lbm hog —
// a footprint several times the EPC — co-runs with three small
// benchmarks on one shared EPC. Under the Global policy the hog's fault
// storm drives the victim scan over everyone's frames, so the small
// enclaves' working sets are perpetually evicted out from under them:
// they are starved by a neighbor they cannot influence. Quota policies
// bound the hog instead — an over-quota enclave evicts its own frames —
// and the adaptive policy additionally moves frames toward measured
// working sets at scan boundaries. The comparison to make is the small
// enclaves' fault columns: same work, same EPC, different arbitration.

// partitionGrid is the co-run population: the hog first, smalls after,
// so the hog holds the EPC before the smalls fault their sets in.
var partitionGrid = []string{"lbm", "leela", "nab", "exchange2"}

// partitionEPC is the study's EPC size. Deliberately tighter than the
// default platform: the starvation regime needs the hog's footprint to
// dwarf the EPC and the smalls' working sets to just fit, so that the
// global scan's evictions land on the smalls and a quota visibly
// protects them.
const partitionEPC = 1024

// PartitionResult holds one co-run per quota policy.
type PartitionResult struct {
	Names    []string
	Policies []arbiter.Policy
	// Results[p][e] is enclave e's outcome under policy p.
	Results [][]sim.SharedResult
	// FaultP99[p][e] is enclave e's fault-service p99 in cycles under
	// policy p (NaN when the enclave took no faults), attributed from
	// the shared timeline by the enclave's slice of the page space.
	FaultP99 [][]float64
	// Quotas[p][e] is enclave e's final quota under policy p (0 under
	// Global, which has no quotas).
	Quotas [][]int
}

// EPCPartition runs the grid under every quota policy.
func EPCPartition(r *Runner) (PartitionResult, error) {
	out := PartitionResult{Names: partitionGrid, Policies: arbiter.Policies()}
	var encs []sim.Enclave
	var bounds []uint64 // cumulative page-space bounds, one per enclave
	total := uint64(0)
	for _, name := range partitionGrid {
		w, err := mustWorkload(name)
		if err != nil {
			return out, err
		}
		encs = append(encs, sim.Enclave{
			Name:   name,
			Trace:  r.Trace(w, workload.Ref),
			Pages:  w.ELRangePages(),
			Scheme: sim.DFPStop,
		})
		total += w.ELRangePages()
		bounds = append(bounds, total)
	}
	for _, q := range out.Policies {
		rec := obs.NewRecorder()
		res, err := sim.RunShared(encs, sim.SharedConfig{
			EPCPages: partitionEPC,
			Quota:    q,
			Hook:     rec,
		})
		if err != nil {
			return out, fmt.Errorf("epc-partition/%s: %w", q, err)
		}
		out.Results = append(out.Results, res)
		out.FaultP99 = append(out.FaultP99, faultP99ByEnclave(rec.Events(), bounds))
		quotas := make([]int, len(encs))
		if q != arbiter.Global {
			for _, s := range obs.QuotaShares(rec.Events()) {
				if int(s.Enclave) < len(quotas) {
					quotas[s.Enclave] = int(s.Quota)
				}
			}
		}
		out.Quotas = append(out.Quotas, quotas)
	}
	return out, nil
}

// faultP99ByEnclave attributes every KindFaultEnd to the enclave whose
// slice of the shared page space holds the faulting page (ascending
// exclusive bounds, the engine's admission-order layout) and returns
// each enclave's fault-latency p99.
func faultP99ByEnclave(events []obs.Event, bounds []uint64) []float64 {
	samples := make([][]float64, len(bounds))
	for _, e := range events {
		if e.Kind != obs.KindFaultEnd || e.Page == mem.NoPage {
			continue
		}
		for i, hi := range bounds {
			if uint64(e.Page) < hi {
				samples[i] = append(samples[i], float64(e.V1))
				break
			}
		}
	}
	out := make([]float64, len(bounds))
	for i, s := range samples {
		out[i] = stats.Percentile(s, 99)
	}
	return out
}

// StarvedP99 returns the worst small-enclave (non-hog) fault p99 under
// the given policy — the starvation figure the study compares.
func (a PartitionResult) StarvedP99(p arbiter.Policy) float64 {
	for pi, q := range a.Policies {
		if q != p {
			continue
		}
		worst := math.NaN()
		for e := 1; e < len(a.Names); e++ { // index 0 is the hog
			v := a.FaultP99[pi][e]
			if !math.IsNaN(v) && (math.IsNaN(worst) || v > worst) {
				worst = v
			}
		}
		return worst
	}
	return math.NaN()
}

// String renders the study: one row per (policy, enclave) with the
// enclave's cycles, faults, final quota, and fault p99.
func (a PartitionResult) String() string {
	t := &stats.Table{Header: []string{"quota", "enclave", "cycles", "faults", "frames", "fault-p99"}}
	for pi, q := range a.Policies {
		for e, res := range a.Results[pi] {
			frames := "-"
			if q != arbiter.Global {
				frames = fmt.Sprint(a.Quotas[pi][e])
			}
			t.Add(q.String(), res.Name, res.Cycles, res.Kernel.DemandFaults,
				frames, fleetCyc(a.FaultP99[pi][e]))
		}
	}
	return fmt.Sprintf("EPC partitioning: %s hog vs %v on one %s-policy EPC\n",
		a.Names[0], a.Names[1:], "per-enclave quota") + t.String() +
		fmt.Sprintf("worst small-enclave fault p99: global %s, adaptive %s\n",
			fleetCyc(a.StarvedP99(arbiter.Global)), fleetCyc(a.StarvedP99(arbiter.Adaptive)))
}
