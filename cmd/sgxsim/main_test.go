package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgxpreload/internal/replay"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lbm", "mcf", "deepsjeng", "SIFT", "mixed-blood"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestBaselineRun(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "baseline"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cycles:", "demand faults:", "cactuBSSN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDFPCompare(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "microbenchmark", "-scheme", "dfp", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improvement:") {
		t.Errorf("compare output missing improvement:\n%s", buf.String())
	}
}

func TestSIPRun(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "deepsjeng", "-scheme", "sip"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "instrumentation points") || !strings.Contains(out, "notify loads:") {
		t.Errorf("SIP output incomplete:\n%s", out)
	}
}

func TestTraceAndMetricsOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	csvPath := filepath.Join(dir, "run.csv")
	reportPath := filepath.Join(dir, "run.txt")
	svgPath := filepath.Join(dir, "run.svg")

	var buf strings.Builder
	err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop",
		"-trace", tracePath, "-metrics-out", reportPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace:") || !strings.Contains(buf.String(), "metrics:") {
		t.Errorf("summary missing trace/metrics lines:\n%s", buf.String())
	}
	jsonl, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(jsonl), `{"schema":"sgxpreload-trace","version":1`) {
		t.Errorf("trace file missing schema header: %.80s", jsonl)
	}
	if !strings.Contains(string(jsonl), "\n{\"t\":") {
		t.Errorf("trace file does not look like JSONL: %.160s", jsonl)
	}
	report, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "channel busy:") {
		t.Errorf("metrics report incomplete: %.200s", report)
	}

	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop",
		"-trace", csvPath, "-metrics-out", svgPath}, &buf); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "# sgxpreload-trace version=1\nt,kind,page,batch,v1,v2\n") {
		t.Errorf("CSV trace missing header: %.80s", csv)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Errorf("metrics SVG missing markup: %.80s", svg)
	}
}

// The event timeline observes only the primary (single-goroutine) run,
// so the exported trace must be byte-identical at any -parallel setting.
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	export := func(parallel string) []byte {
		path := filepath.Join(dir, "trace-"+parallel+".jsonl")
		var buf strings.Builder
		err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp", "-compare",
			"-parallel", parallel, "-trace", path}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := export("1")
	eight := export("8")
	if len(one) == 0 || string(one) != string(eight) {
		t.Fatalf("trace differs across -parallel (%d vs %d bytes)", len(one), len(eight))
	}
}

// TestReplayMatchesLiveReport is the acceptance path: -trace then
// -replay must produce a Report byte-identical to the live run's
// -metrics-out.
func TestReplayMatchesLiveReport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	livePath := filepath.Join(dir, "live.txt")
	replayPath := filepath.Join(dir, "replay.txt")

	var buf strings.Builder
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop",
		"-trace", tracePath, "-metrics-out", livePath}, &buf); err != nil {
		t.Fatal(err)
	}
	var rbuf strings.Builder
	if err := run([]string{"-replay", tracePath, "-metrics-out", replayPath}, &rbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rbuf.String(), "replayed:") {
		t.Errorf("replay output missing summary:\n%s", rbuf.String())
	}
	live, err := os.ReadFile(livePath)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := os.ReadFile(replayPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 || string(live) != string(replayed) {
		t.Fatalf("replayed report differs from live report:\n--- live\n%s--- replayed\n%s", live, replayed)
	}
	// Replay also prints the same report body to stdout.
	if !strings.Contains(rbuf.String(), string(live)) {
		t.Error("replay stdout does not contain the live report body")
	}

	// CSV traces replay through the same flag.
	csvPath := filepath.Join(dir, "run.csv")
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop", "-trace", csvPath}, &buf); err != nil {
		t.Fatal(err)
	}
	var cbuf strings.Builder
	if err := run([]string{"-replay", csvPath}, &cbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cbuf.String(), string(live)) {
		t.Error("CSV replay report differs from live report")
	}

	// -json mode emits parseable JSON.
	var jbuf strings.Builder
	if err := run([]string{"-replay", tracePath, "-json"}, &jbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(jbuf.String(), `{"counts":`) {
		t.Errorf("replay -json output unexpected: %.120s", jbuf.String())
	}
}

func TestDiffMode(t *testing.T) {
	dir := t.TempDir()
	aPath := filepath.Join(dir, "dfp.jsonl")
	bPath := filepath.Join(dir, "dfp-stop.jsonl")
	var buf strings.Builder
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp", "-trace", aPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "baseline", "-trace", bPath}, &buf); err != nil {
		t.Fatal(err)
	}

	var dbuf strings.Builder
	if err := run([]string{"-diff", aPath, bPath}, &dbuf); err != nil {
		t.Fatal(err)
	}
	out := dbuf.String()
	for _, want := range []string{"diff:", "first divergence:", "event counts", "report metrics"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// Self-diff is identical.
	var sbuf strings.Builder
	if err := run([]string{"-diff", aPath, aPath}, &sbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sbuf.String(), "identical") {
		t.Errorf("self-diff not identical:\n%s", sbuf.String())
	}

	// JSON mode.
	var jbuf strings.Builder
	if err := run([]string{"-diff", "-json", aPath, bPath}, &jbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(jbuf.String(), `{"len_a":`) {
		t.Errorf("diff -json output unexpected: %.120s", jbuf.String())
	}

	// Arity and parse errors.
	if err := run([]string{"-diff", aPath}, &buf); err == nil {
		t.Error("-diff with one path accepted")
	}
	if err := run([]string{"-replay", filepath.Join(dir, "missing.jsonl")}, &buf); err == nil {
		t.Error("-replay of missing file accepted")
	}
}

func TestServeFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp", "-serve", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "serving metrics:  http://127.0.0.1:") {
		t.Errorf("missing serve address line:\n%s", out)
	}
	if !strings.Contains(out, "cycles:") {
		t.Errorf("served run incomplete:\n%s", out)
	}
	if err := run([]string{"-bench", "cactuBSSN", "-serve", "256.0.0.1:bogus"}, &buf); err == nil {
		t.Error("bogus -serve address accepted")
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-bench", "nope"},
		{"-scheme", "nope"},
		{"-bench", "bwaves", "-scheme", "sip"}, // Fortran: not instrumentable
	}
	for _, args := range tests {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestAblationFlags(t *testing.T) {
	var buf strings.Builder
	args := []string{"-bench", "cactuBSSN", "-scheme", "dfp",
		"-predictor", "stride", "-policy", "lru", "-reclaim"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycles:") {
		t.Errorf("ablation-flag run incomplete:\n%s", buf.String())
	}
	if err := run([]string{"-predictor", "bogus", "-scheme", "dfp"}, &buf); err == nil {
		t.Error("bogus predictor accepted")
	}
	if err := run([]string{"-policy", "bogus"}, &buf); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestStreamFlagMatchesMaterialized(t *testing.T) {
	// -stream must not change a single byte of the report.
	mk := func(extra ...string) string {
		var buf strings.Builder
		args := append([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if mat, str := mk(), mk("-stream"); mat != str {
		t.Errorf("-stream changed the report:\n--- materialized\n%s--- streamed\n%s", mat, str)
	}
}

func TestStreamRepeat(t *testing.T) {
	count := func(extra ...string) string {
		var buf strings.Builder
		args := append([]string{"-bench", "cactuBSSN", "-stream"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "accesses:") {
				return strings.TrimSpace(strings.TrimPrefix(line, "accesses:"))
			}
		}
		t.Fatalf("no accesses line in:\n%s", buf.String())
		return ""
	}
	one := count()
	three := count("-repeat", "3")
	n1, n3 := 0, 0
	if _, err := fmt.Sscan(one, &n1); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(three, &n3); err != nil {
		t.Fatal(err)
	}
	if n3 != 3*n1 {
		t.Errorf("-repeat 3 ran %d accesses, want 3x%d", n3, n1)
	}
}

func TestStreamFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-repeat", "3"},             // -repeat without -stream
		{"-stream", "-repeat", "-1"}, // negative
		{"-stream", "-repeat", "0"},  // unbounded without -serve
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestMultiBenchSharedEPC(t *testing.T) {
	// The carry-over fix: -stream -bench a,b must run a shared-EPC
	// co-simulation, and must not change a byte versus the same
	// multi-enclave run materialized.
	mk := func(extra ...string) string {
		var buf strings.Builder
		args := append([]string{"-bench", "lbm,deepsjeng", "-scheme", "dfp-stop"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	mat, str := mk(), mk("-stream")
	for _, want := range []string{"lbm", "deepsjeng", "fleet:", "2 enclaves over 1 shard"} {
		if !strings.Contains(mat, want) {
			t.Errorf("multi-bench output missing %q:\n%s", want, mat)
		}
	}
	if mat != str {
		t.Errorf("-stream changed the multi-bench report:\n--- materialized\n%s--- streamed\n%s", mat, str)
	}
}

func TestFleetShards(t *testing.T) {
	mk := func() string {
		var buf strings.Builder
		args := []string{"-bench", "lbm,mcf,deepsjeng,microbenchmark", "-scheme", "dfp", "-shards", "2"}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := mk()
	for _, want := range []string{"4 enclaves over 2 shard(s)", "lbm", "mcf", "deepsjeng", "microbenchmark"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q:\n%s", want, out)
		}
	}
	// Shards simulate on worker goroutines; the merged table must be
	// deterministic run to run.
	if again := mk(); again != out {
		t.Errorf("sharded fleet output is not deterministic:\n--- first\n%s--- second\n%s", out, again)
	}
}

func TestFleetFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "lbm,deepsjeng", "-compare"},                      // compare is single-bench
		{"-bench", "lbm,deepsjeng", "-shards", "0"},                  // invalid shard count
		{"-bench", "lbm,mcf", "-shards", "2", "-metrics-out", "x.txt"}, // one-engine report needs one shard
		{"-bench", "lbm,nope"},                                       // unknown member
		{"-bench", "lbm,bwaves", "-scheme", "sip"},                   // uninstrumentable member
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestShardedTrace: -trace at -shards N>1 writes one independently
// replayable trace per EPC domain, deterministically.
func TestShardedTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	args := []string{"-bench", "lbm,mcf,deepsjeng,microbenchmark", "-scheme", "dfp-stop",
		"-shards", "2", "-trace", tracePath}
	var buf strings.Builder
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	var contents []string
	for s := 0; s < 2; s++ {
		path := filepath.Join(dir, fmt.Sprintf("run.shard%d.jsonl", s))
		if !strings.Contains(buf.String(), path) {
			t.Errorf("summary does not mention %s:\n%s", path, buf.String())
		}
		events, err := replay.ReadFile(path)
		if err != nil {
			t.Fatalf("shard %d trace does not replay: %v", s, err)
		}
		if len(events) == 0 {
			t.Fatalf("shard %d trace is empty", s)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		contents = append(contents, string(raw))
	}
	// Each shard is its own single-goroutine engine, so per-shard traces
	// must be byte-identical run to run at any worker count.
	var again strings.Builder
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("run.shard%d.jsonl", s)))
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != contents[s] {
			t.Errorf("shard %d trace differs between identical runs", s)
		}
	}
	if _, err := os.Stat(tracePath); !os.IsNotExist(err) {
		t.Errorf("multi-shard run should not write the untagged path %s", tracePath)
	}
}

func TestFleetTraceSingleShard(t *testing.T) {
	// A one-shard fleet run records a normal engine timeline.
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "fleet.jsonl")
	var buf strings.Builder
	args := []string{"-bench", "lbm,deepsjeng", "-scheme", "dfp-stop", "-trace", tracePath}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace:") {
		t.Fatalf("no trace line in:\n%s", buf.String())
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Fatalf("fleet trace missing or empty: %v", err)
	}
}

func TestClusterFleet(t *testing.T) {
	mk := func(policy string) string {
		var buf strings.Builder
		args := []string{"-bench", "leela,nab,exchange2,leela", "-fleet", "2",
			"-fleet-policy", policy, "-arrival-period", "500000"}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, policy := range []string{"round-robin", "least-loaded", "pressure"} {
		out := mk(policy)
		for _, want := range []string{"Fleet: 2 hosts", policy + " placement",
			"fleet-wide fault latency", "leela/0", "p99"} {
			if !strings.Contains(out, want) {
				t.Errorf("-fleet %s output missing %q:\n%s", policy, want, out)
			}
		}
		// Hosts advance on worker goroutines between arrival barriers;
		// the report must be deterministic run to run.
		if again := mk(policy); again != out {
			t.Errorf("-fleet %s output is not deterministic", policy)
		}
	}
}

func TestClusterFleetAdmission(t *testing.T) {
	var buf strings.Builder
	args := []string{"-bench", "leela,exchange2,nab", "-fleet", "2",
		"-arrival-period", "1000", "-admit-period", "100000000000"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 shed") || !strings.Contains(out, "shed at the front door: exchange2/1, nab/2") {
		t.Errorf("admission control did not shed the over-rate launches:\n%s", out)
	}
}

func TestClusterFleetTraces(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "cluster.jsonl")
	var buf strings.Builder
	args := []string{"-bench", "leela,exchange2", "-fleet", "2", "-trace", tracePath}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		p := filepath.Join(dir, fmt.Sprintf("cluster.host%d.jsonl", h))
		if _, err := os.Stat(p); err != nil {
			t.Errorf("per-host trace missing: %v", err)
		}
	}
}

func TestClusterFleetErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "leela,nab", "-fleet", "2", "-fleet-policy", "nope"}, // unknown policy
		{"-bench", "leela,nab", "-fleet", "2", "-compare"},             // compare is single-bench
		{"-bench", "leela,nab", "-fleet", "2", "-shards", "2"},         // two fleet shapes
		{"-bench", "leela,nab", "-fleet", "2", "-serve", ":0"},         // serve is single-engine
		{"-bench", "leela,nab", "-fleet", "2", "-arrival-period", "-1"},
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestStreamedTraceMatchesMaterialized: -trace must write the same
// bytes whether the engine materializes the trace or streams it — the
// StreamSink path cannot perturb the timeline.
func TestStreamedTraceMatchesMaterialized(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, extra ...string) []byte {
		path := filepath.Join(dir, name)
		var buf strings.Builder
		args := append([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop", "-trace", path}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	mat := mk("mat.jsonl")
	str := mk("str.jsonl", "-stream")
	if len(mat) == 0 || string(mat) != string(str) {
		t.Errorf("streamed trace differs from materialized (%d vs %d bytes)", len(mat), len(str))
	}
	if matCSV, strCSV := mk("mat.csv"), mk("str.csv", "-stream"); string(matCSV) != string(strCSV) {
		t.Error("streamed CSV trace differs from materialized")
	}
}

// TestTraceSmoke is the end-to-end -trace memory proof, gated behind
// SGXSIM_TRACESMOKE=1 (make trace-smoke sets it): a 10M-access streamed
// run traced to disk must hold peak heap within a fixed ceiling —
// independent of the ~70 MB trace it writes — and the trace must replay
// to the same metrics report in both formats.
func TestTraceSmoke(t *testing.T) {
	if os.Getenv("SGXSIM_TRACESMOKE") != "1" {
		t.Skip("set SGXSIM_TRACESMOKE=1 to run the 10M-access traced streaming smoke")
	}
	dir := t.TempDir()

	heap := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	runtime.GC()
	floor := heap()
	// Same budget as the engine-level stream smoke: 64 MiB of slack is
	// far below a materialized 10M-access timeline (hundreds of MB as
	// obs.Events, ~70 MB encoded), far above the engine plus two 64 KiB
	// sink buffers.
	ceiling := floor + 64<<20

	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				if h := heap(); h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()

	// 170 repeats of cactuBSSN's 60k-access trace = 10.2M accesses.
	traces := []string{filepath.Join(dir, "run.jsonl"), filepath.Join(dir, "run.csv")}
	for _, path := range traces {
		var buf strings.Builder
		if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop",
			"-stream", "-repeat", "170", "-trace", path}, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "accesses:         10200000") {
			t.Fatalf("smoke run did not reach 10.2M accesses:\n%s", buf.String())
		}
	}
	close(stop)
	wg.Wait()
	if p := peak.Load(); p > ceiling {
		t.Errorf("peak heap %.1f MiB exceeds ceiling %.1f MiB (floor %.1f MiB): "+
			"traced streaming run is not O(1) memory",
			float64(p)/(1<<20), float64(ceiling)/(1<<20), float64(floor)/(1<<20))
	}

	// Both formats replay to byte-identical metrics reports.
	var reports []string
	for i, path := range traces {
		out := filepath.Join(dir, fmt.Sprintf("report%d.txt", i))
		var buf strings.Builder
		if err := run([]string{"-replay", path, "-metrics-out", out}, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, string(data))
	}
	if len(reports[0]) == 0 || reports[0] != reports[1] {
		t.Error("JSONL and CSV smoke traces replay to different metrics reports")
	}
	t.Logf("10.2M accesses traced twice: peak heap %.1f MiB (floor %.1f MiB)",
		float64(peak.Load())/(1<<20), float64(floor)/(1<<20))
}

const fixtureSpec = "../../internal/workload/spec/testdata/fixture.json"

// TestSpecFleet runs the committed fixture spec through the cluster
// path and checks the compile summary plus per-cohort enclaves appear.
func TestSpecFleet(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-spec", fixtureSpec, "-fleet", "2", "-fleet-policy", "affinity",
		"-scheme", "dfp-stop"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"spec:", "fixture-two-cohorts", "26 launches", "steady.leela/", "diurnal.exchange2/",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("spec fleet output missing %q:\n%s", want, out)
		}
	}
}

// TestSpecFleetDeterministicAcrossParallelism: the whole report must be
// byte-identical whether hosts advance sequentially or 8-way.
func TestSpecFleetDeterministicAcrossParallelism(t *testing.T) {
	var outs []string
	for _, par := range []string{"1", "8"} {
		var buf strings.Builder
		err := run([]string{"-spec", fixtureSpec, "-fleet", "3", "-fleet-policy", "least-loaded",
			"-scheme", "dfp", "-parallel", par}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Errorf("-spec fleet output differs across -parallel:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

// TestSpecRateScale: doubling -rate-scale must grow the launch count.
func TestSpecRateScale(t *testing.T) {
	count := func(scale string) string {
		var buf strings.Builder
		err := run([]string{"-spec", fixtureSpec, "-fleet", "1", "-rate-scale", scale}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		line, _, _ := strings.Cut(buf.String(), "\n")
		return line
	}
	at1, at4 := count("1"), count("4")
	if at1 == at4 {
		t.Errorf("-rate-scale 4 compile summary identical to x1: %s", at4)
	}
	if !strings.Contains(at4, "rate x4") {
		t.Errorf("summary does not echo the rate scale: %s", at4)
	}
}

func TestSpecFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-spec", fixtureSpec},                      // no -fleet
		{"-spec", "no/such/spec.json", "-fleet", "2"},
		{"-spec", fixtureSpec, "-fleet", "2", "-rate-scale", "-1"},
	} {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("%v: expected error", args)
		}
	}
}

// TestQuotaFlag covers the -quota surface: explicit global is the
// default byte-for-byte, arbitrated cluster runs fill the quota column,
// the shared-EPC header tags the policy, and bad names are rejected.
func TestQuotaFlag(t *testing.T) {
	cluster := func(extra ...string) string {
		var buf strings.Builder
		args := append([]string{"-bench", "leela,nab,exchange2,leela", "-fleet", "2",
			"-arrival-period", "500000"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := cluster()
	if got := cluster("-quota", "global"); got != base {
		t.Errorf("-quota global changed the cluster report:\n--- default\n%s--- global\n%s", base, got)
	}
	if !strings.Contains(base, "quota") || !strings.Contains(base, "resident") {
		t.Errorf("cluster table missing quota/resident columns:\n%s", base)
	}
	adaptive := cluster("-quota", "adaptive")
	if adaptive == base {
		t.Error("-quota adaptive left the cluster report unchanged")
	}

	shared := func(extra ...string) string {
		var buf strings.Builder
		args := append([]string{"-bench", "lbm,deepsjeng", "-scheme", "dfp-stop"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if out := shared("-quota", "static"); !strings.Contains(out, "quota static") {
		t.Errorf("shared-EPC header missing the quota tag:\n%s", out)
	}
	if got := shared("-quota", "global"); got != shared() {
		t.Error("-quota global changed the shared-EPC report")
	}

	var buf strings.Builder
	if err := run([]string{"-bench", "lbm", "-quota", "nope"}, &buf); err == nil {
		t.Error("-quota nope succeeded, want error")
	}
}

// TestQuotaServeReport: a -serve run under an arbitration policy
// surfaces the per-enclave quota partition in the /report endpoint.
func TestQuotaServeReport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	var buf strings.Builder
	if err := run([]string{"-bench", "lbm,deepsjeng", "-scheme", "dfp-stop", "-shards", "1",
		"-quota", "prop", "-serve", addr}, &buf); err != nil {
		t.Fatal(err)
	}
	// The server stops with the run; hit the report via the recorded
	// metrics path instead: re-run with -metrics-out and check the
	// quota section lands in the derived report.
	dir := t.TempDir()
	metrics := filepath.Join(dir, "report.txt")
	buf.Reset()
	if err := run([]string{"-bench", "lbm,deepsjeng", "-scheme", "dfp-stop", "-shards", "1",
		"-quota", "prop", "-metrics-out", metrics}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "EPC quota partition") {
		t.Errorf("metrics report missing the quota section:\n%s", raw)
	}
}
