package experiments

import (
	"strings"
	"testing"
)

// TestSaturation pins the study's headline: offered load scales with
// the rate multiplier, the fleet absorbs the low rates without
// shedding, and past the knee the front door sheds while the fault p99
// sits above the low-rate plateau.
func TestSaturation(t *testing.T) {
	a, err := Saturation(sharedRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(saturationScales) {
		t.Fatalf("got %d points for %d scales", len(a.Points), len(saturationScales))
	}
	for i := 1; i < len(a.Points); i++ {
		if a.Points[i].Launches <= a.Points[i-1].Launches {
			t.Errorf("launches did not grow with rate: x%g -> %d, x%g -> %d",
				a.Points[i-1].Scale, a.Points[i-1].Launches,
				a.Points[i].Scale, a.Points[i].Launches)
		}
	}
	if a.Points[0].Shed != 0 {
		t.Errorf("lowest rate already sheds %d launches; the sweep has no pre-knee plateau", a.Points[0].Shed)
	}
	knee := a.Knee()
	if knee <= 0 {
		t.Fatalf("no knee found (knee index %d):\n%s", knee, a)
	}
	last := a.Points[len(a.Points)-1]
	if last.Shed == 0 {
		t.Errorf("highest rate x%g shed nothing; admission control never engaged", last.Scale)
	}
	if !(last.FaultP99 > a.Points[0].FaultP99) {
		t.Errorf("fault p99 did not rise from %.0f (x%g) to the top rate's %.0f (x%g)",
			a.Points[0].FaultP99, a.Points[0].Scale, last.FaultP99, last.Scale)
	}
	out := a.String()
	for _, want := range []string{"rate", "fault-p99", "knee at x"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestSaturationDeterministic: the whole report must be identical when
// the runner advances hosts sequentially versus in parallel.
func TestSaturationDeterministic(t *testing.T) {
	var outs []string
	for _, workers := range []int{1, 8} {
		r := NewRunner(Default())
		r.SetParallelism(workers)
		a, err := Saturation(r)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, a.String())
	}
	if outs[0] != outs[1] {
		t.Errorf("saturation report differs across worker counts:\n%s\nvs\n%s", outs[0], outs[1])
	}
}
