package obs

import (
	"bufio"
	"fmt"
	"io"
	"testing"
)

// benchTimeline is a fixed 10k-event timeline with realistic field
// mixes for the write benchmarks.
var benchTimeline = sinkEvents(10_000)

// writeJSONLFmt is the pre-optimization writer (fmt.Fprintf per line
// through a bufio.Writer), kept as the benchmark baseline so the
// speedup claimed in BENCH_engine.json stays reproducible.
func writeJSONLFmt(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, TraceHeaderJSONL())
	for _, e := range events {
		fmt.Fprintf(bw, `{"t":%d,"kind":%q,"page":%d,"batch":%d,"v1":%d,"v2":%d}`+"\n",
			e.T, e.Kind.String(), pageField(e.Page), e.Batch, e.V1, e.V2)
	}
	return bw.Flush()
}

func writeCSVFmt(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, TraceHeaderCSV())
	fmt.Fprintln(bw, TraceColumnsCSV)
	for _, e := range events {
		fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d\n",
			e.T, e.Kind.String(), pageField(e.Page), e.Batch, e.V1, e.V2)
	}
	return bw.Flush()
}

func BenchmarkTraceWrite(b *testing.B) {
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteJSONL(io.Discard, benchTimeline); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteCSV(io.Discard, benchTimeline); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTraceWriteFmt(b *testing.B) {
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := writeJSONLFmt(io.Discard, benchTimeline); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := writeCSVFmt(io.Discard, benchTimeline); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamSink measures the per-event cost of the streaming
// hook path the engine pays when -trace is on.
func BenchmarkStreamSink(b *testing.B) {
	s := NewStreamSink(io.Discard, FormatJSONL)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Emit(benchTimeline[i%len(benchTimeline)])
	}
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}
