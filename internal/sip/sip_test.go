package sip

import (
	"testing"

	"sgxpreload/internal/dfp"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/rng"
)

func newClassifier(t *testing.T, epcPages int) *Classifier {
	t.Helper()
	c, err := NewClassifier(epcPages, 1<<16, dfp.DefaultConfig())
	if err != nil {
		t.Fatalf("NewClassifier: %v", err)
	}
	return c
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0, 100, dfp.DefaultConfig()); err == nil {
		t.Fatal("zero EPC accepted")
	}
	if _, err := NewClassifier(10, 100, dfp.Config{}); err == nil {
		t.Fatal("invalid DFP config accepted")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Class1: "Class1", Class2: "Class2", Class3: "Class3"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestClass1ResidentPage(t *testing.T) {
	c := newClassifier(t, 16)
	if got := c.Record(1, 5); got != Class3 {
		t.Fatalf("first touch of page 5 = %v, want Class3 (cold, no stream)", got)
	}
	if got := c.Record(1, 5); got != Class1 {
		t.Fatalf("second touch of page 5 = %v, want Class1 (resident)", got)
	}
}

func TestClass2StreamFollower(t *testing.T) {
	c := newClassifier(t, 64)
	c.Record(1, 100) // Class3, starts a stream entry
	if got := c.Record(1, 101); got != Class2 {
		t.Fatalf("sequential follower = %v, want Class2", got)
	}
	// The classifier mirrors DFP's effect: pages 102..105 are now modeled
	// resident, so touching them is Class1.
	if got := c.Record(1, 103); got != Class1 {
		t.Fatalf("preload-covered page = %v, want Class1", got)
	}
}

func TestClass3Irregular(t *testing.T) {
	c := newClassifier(t, 64)
	c.Record(1, 100)
	if got := c.Record(1, 5000); got != Class3 {
		t.Fatalf("random jump = %v, want Class3", got)
	}
}

func TestProfileTallies(t *testing.T) {
	c := newClassifier(t, 64)
	c.Record(7, 100)  // Class3
	c.Record(7, 101)  // Class2
	c.Record(7, 101)  // Class1
	c.Record(9, 5000) // Class3 at another site
	p := c.Profile()
	sp := p.Site(7)
	if sp.Class1 != 1 || sp.Class2 != 1 || sp.Class3 != 1 {
		t.Fatalf("site 7 profile = %+v, want 1/1/1", sp)
	}
	if got := sp.IrregularRatio(); got < 0.33 || got > 0.34 {
		t.Fatalf("irregular ratio = %v, want 1/3", got)
	}
	if p.Accesses != 4 || p.Faults != 3 {
		t.Fatalf("profile totals = %d accesses, %d faults; want 4, 3", p.Accesses, p.Faults)
	}
	if got := p.Site(99); got.Total() != 0 {
		t.Fatalf("unknown site profile = %+v, want zero", got)
	}
}

func TestClassifierEvictsAtCapacity(t *testing.T) {
	c := newClassifier(t, 4)
	// Fill far beyond capacity with random pages; residency model must
	// never exceed 4 frames, so re-touching an old page is a miss again.
	for i := 0; i < 100; i++ {
		c.Record(1, mem.PageID(1000+i*10))
	}
	if got := c.Record(1, 1000); got == Class1 {
		t.Fatal("page evicted long ago classified Class1")
	}
}

func TestSelectThreshold(t *testing.T) {
	p := &Profile{Sites: map[mem.SiteID]*SiteProfile{
		1: {Class1: 95, Class3: 5},  // exactly 5%
		2: {Class1: 96, Class3: 4},  // below
		3: {Class1: 50, Class3: 50}, // well above
		4: {Class2: 100},            // streams only: DFP territory
	}}
	sel := Select(p, 0.05, 0)
	if !sel.Instrumented(1) || !sel.Instrumented(3) {
		t.Error("sites at/above threshold not selected")
	}
	if sel.Instrumented(2) || sel.Instrumented(4) {
		t.Error("sites below threshold selected")
	}
	if sel.Points() != 2 {
		t.Errorf("Points() = %d, want 2", sel.Points())
	}
	sites := sel.Sites()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 3 {
		t.Errorf("Sites() = %v, want [1 3]", sites)
	}
}

func TestSelectMinAccesses(t *testing.T) {
	p := &Profile{Sites: map[mem.SiteID]*SiteProfile{
		1: {Class3: 5},              // tiny sample
		2: {Class1: 50, Class3: 50}, // large sample
	}}
	sel := Select(p, 0.05, 32)
	if sel.Instrumented(1) {
		t.Error("under-sampled site selected")
	}
	if !sel.Instrumented(2) {
		t.Error("well-sampled site not selected")
	}
}

func TestSelectSkipsNoSite(t *testing.T) {
	p := &Profile{Sites: map[mem.SiteID]*SiteProfile{
		mem.NoSite: {Class3: 1000},
	}}
	if Select(p, 0.05, 0).Points() != 0 {
		t.Error("NoSite (unattributable accesses) selected for instrumentation")
	}
}

func TestNilSelection(t *testing.T) {
	var sel *Selection
	if sel.Instrumented(1) {
		t.Error("nil selection instruments sites")
	}
	if sel.Points() != 0 || sel.Sites() != nil {
		t.Error("nil selection not empty")
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Higher thresholds must select subsets.
	r := rng.New(7)
	p := &Profile{Sites: map[mem.SiteID]*SiteProfile{}}
	for i := mem.SiteID(1); i <= 100; i++ {
		p.Sites[i] = &SiteProfile{
			Class1: uint64(r.Intn(1000)),
			Class2: uint64(r.Intn(100)),
			Class3: uint64(r.Intn(200)),
		}
	}
	prev := Select(p, 0.01, 0)
	for _, th := range []float64{0.05, 0.10, 0.30, 0.60, 0.95} {
		cur := Select(p, th, 0)
		for _, s := range cur.Sites() {
			if !prev.Instrumented(s) {
				t.Fatalf("threshold %v selected site %d that %v did not", th, s, prev.Threshold)
			}
		}
		prev = cur
	}
}

func TestSiteProfileZeroTotal(t *testing.T) {
	var sp SiteProfile
	if sp.IrregularRatio() != 0 {
		t.Error("zero-sample site has nonzero irregular ratio")
	}
}
