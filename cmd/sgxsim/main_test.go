package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lbm", "mcf", "deepsjeng", "SIFT", "mixed-blood"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestBaselineRun(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "baseline"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cycles:", "demand faults:", "cactuBSSN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDFPCompare(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "microbenchmark", "-scheme", "dfp", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "improvement:") {
		t.Errorf("compare output missing improvement:\n%s", buf.String())
	}
}

func TestSIPRun(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-bench", "deepsjeng", "-scheme", "sip"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "instrumentation points") || !strings.Contains(out, "notify loads:") {
		t.Errorf("SIP output incomplete:\n%s", out)
	}
}

func TestTraceAndMetricsOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	csvPath := filepath.Join(dir, "run.csv")
	reportPath := filepath.Join(dir, "run.txt")
	svgPath := filepath.Join(dir, "run.svg")

	var buf strings.Builder
	err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop",
		"-trace", tracePath, "-metrics-out", reportPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace:") || !strings.Contains(buf.String(), "metrics:") {
		t.Errorf("summary missing trace/metrics lines:\n%s", buf.String())
	}
	jsonl, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(jsonl), `{"t":`) {
		t.Errorf("trace file does not look like JSONL: %.80s", jsonl)
	}
	report, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "channel busy:") {
		t.Errorf("metrics report incomplete: %.200s", report)
	}

	if err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp-stop",
		"-trace", csvPath, "-metrics-out", svgPath}, &buf); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "t,kind,page,batch,v1,v2\n") {
		t.Errorf("CSV trace missing header: %.80s", csv)
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Errorf("metrics SVG missing markup: %.80s", svg)
	}
}

// The event timeline observes only the primary (single-goroutine) run,
// so the exported trace must be byte-identical at any -parallel setting.
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	export := func(parallel string) []byte {
		path := filepath.Join(dir, "trace-"+parallel+".jsonl")
		var buf strings.Builder
		err := run([]string{"-bench", "cactuBSSN", "-scheme", "dfp", "-compare",
			"-parallel", parallel, "-trace", path}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := export("1")
	eight := export("8")
	if len(one) == 0 || string(one) != string(eight) {
		t.Fatalf("trace differs across -parallel (%d vs %d bytes)", len(one), len(eight))
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-bench", "nope"},
		{"-scheme", "nope"},
		{"-bench", "bwaves", "-scheme", "sip"}, // Fortran: not instrumentable
	}
	for _, args := range tests {
		var buf strings.Builder
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestAblationFlags(t *testing.T) {
	var buf strings.Builder
	args := []string{"-bench", "cactuBSSN", "-scheme", "dfp",
		"-predictor", "stride", "-policy", "lru", "-reclaim"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycles:") {
		t.Errorf("ablation-flag run incomplete:\n%s", buf.String())
	}
	if err := run([]string{"-predictor", "bogus", "-scheme", "dfp"}, &buf); err == nil {
		t.Error("bogus predictor accepted")
	}
	if err := run([]string{"-policy", "bogus"}, &buf); err == nil {
		t.Error("bogus policy accepted")
	}
}
