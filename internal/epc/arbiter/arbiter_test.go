package arbiter

import (
	"testing"

	"sgxpreload/internal/epc"
	"sgxpreload/internal/mem"
)

func mustNew(t *testing.T, policy Policy, capacity int) *Arbiter {
	t.Helper()
	a, err := New(policy, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestByNameRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ByName(p.String())
		if err != nil || got != p {
			t.Fatalf("ByName(%q) = (%v, %v), want %v", p.String(), got, err, p)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName accepted a bogus policy")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Static, 0); err == nil {
		t.Fatal("New accepted zero capacity")
	}
	if _, err := New(Policy(99), 8); err == nil {
		t.Fatal("New accepted an unknown policy")
	}
}

func TestStaticSplit(t *testing.T) {
	a := mustNew(t, Static, 10)
	a.AddEnclave(100)
	a.AddEnclave(100)
	a.AddEnclave(100)
	// 10/3: base 3, remainder 1 to the lowest index.
	for i, want := range []int{4, 3, 3} {
		if got := a.Quota(i); got != want {
			t.Fatalf("Quota(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestProportionalRecomputeAcrossAdmit pins the Admit/Grow boundary:
// each admission re-splits the whole capacity by declared footprint.
func TestProportionalRecomputeAcrossAdmit(t *testing.T) {
	a := mustNew(t, Proportional, 100)
	a.AddEnclave(300)
	if got := a.Quota(0); got != 100 {
		t.Fatalf("solo quota = %d, want the full 100", got)
	}
	a.AddEnclave(100)
	if got0, got1 := a.Quota(0), a.Quota(1); got0 != 75 || got1 != 25 {
		t.Fatalf("quotas after admit = (%d, %d), want (75, 25)", got0, got1)
	}
	a.AddEnclave(100)
	if got := a.Quota(0) + a.Quota(1) + a.Quota(2); got != 100 {
		t.Fatalf("quota sum = %d, want 100", got)
	}
	if a.Quota(0) != 60 {
		t.Fatalf("hog quota = %d, want 60", a.Quota(0))
	}
}

// TestQuotaFloor: quotas never go below one frame, even with more
// enclaves than a proportional share would cover.
func TestQuotaFloor(t *testing.T) {
	a := mustNew(t, Proportional, 8)
	a.AddEnclave(1_000_000)
	for i := 0; i < 7; i++ {
		a.AddEnclave(1)
	}
	sum := 0
	for i := 0; i < a.N(); i++ {
		if a.Quota(i) < 1 {
			t.Fatalf("Quota(%d) = %d below the one-frame floor", i, a.Quota(i))
		}
		sum += a.Quota(i)
	}
	if sum != 8 {
		t.Fatalf("quota sum = %d, want 8", sum)
	}
}

// buildEPC returns a 2-owner EPC (ranges [0,32) and [32,64)) with the
// given resident counts, all pages demand-loaded.
func buildEPC(t *testing.T, capacity, res0, res1 int) *epc.EPC {
	t.Helper()
	e, err := epc.New(capacity, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddOwner(32); err != nil {
		t.Fatal(err)
	}
	if err := e.AddOwner(64); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < res0; p++ {
		if err := e.Load(mem.PageID(p), false); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < res1; p++ {
		if err := e.Load(mem.PageID(32+p), false); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestVictimOwner(t *testing.T) {
	t.Run("global-passthrough", func(t *testing.T) {
		a := mustNew(t, Global, 8)
		a.AddEnclave(32)
		a.AddEnclave(32)
		e := buildEPC(t, 8, 8, 0)
		if got := a.VictimOwner(e, 0); got != -1 {
			t.Fatalf("VictimOwner = %d, want -1 under Global", got)
		}
	})
	t.Run("self-evict-at-quota", func(t *testing.T) {
		a := mustNew(t, Static, 8) // 4 frames each
		a.AddEnclave(32)
		a.AddEnclave(32)
		e := buildEPC(t, 8, 5, 3) // owner 0 over its quota of 4
		if got := a.VictimOwner(e, 0); got != 0 {
			t.Fatalf("over-quota VictimOwner = %d, want self (0)", got)
		}
	})
	t.Run("steal-from-most-over", func(t *testing.T) {
		a := mustNew(t, Static, 8)
		a.AddEnclave(32)
		a.AddEnclave(32)
		e := buildEPC(t, 8, 2, 6) // owner 1 holds 6 of 8 against a quota of 4
		if got := a.VictimOwner(e, 0); got != 1 {
			t.Fatalf("under-quota VictimOwner = %d, want the hog (1)", got)
		}
	})
	t.Run("only-resident-owner-gets-own-scan", func(t *testing.T) {
		a := mustNew(t, Static, 8)
		a.AddEnclave(32)
		a.AddEnclave(32)
		e := buildEPC(t, 8, 3, 0) // under quota, but nobody else to steal from
		if got := a.VictimOwner(e, 0); got != 0 {
			t.Fatalf("VictimOwner = %d, want self (0) with no other resident", got)
		}
	})
}

// TestAdaptiveRebalanceTowardHog: a hog generating faults and touched
// frames pulls quota away from an idle neighbor, under hysteresis, never
// below the neighbor's one-frame floor.
func TestAdaptiveRebalanceTowardHog(t *testing.T) {
	a := mustNew(t, Adaptive, 64)
	a.AddEnclave(64) // starts 32/32 by equal declared footprint
	a.AddEnclave(64)
	if a.Quota(0) != 32 || a.Quota(1) != 32 {
		t.Fatalf("initial quotas = (%d, %d), want (32, 32)", a.Quota(0), a.Quota(1))
	}
	rebalanced := false
	for scan := 0; scan < 20; scan++ {
		for i := 0; i < 48; i++ {
			a.NoteFault(0)
		}
		if a.NoteScan(0, 30, 32) {
			rebalanced = true
		}
		a.NoteScan(1, 0, 1) // idle: nothing touched, nothing faulting
	}
	if !rebalanced {
		t.Fatal("adaptive policy never rebalanced under sustained skew")
	}
	if a.Quota(0) <= 32 {
		t.Fatalf("hog quota = %d, did not grow past its even share", a.Quota(0))
	}
	if a.Quota(1) < 1 {
		t.Fatalf("idle quota = %d, below the one-frame floor", a.Quota(1))
	}
	if sum := a.Quota(0) + a.Quota(1); sum != 64 {
		t.Fatalf("converged quota sum = %d, want 64", sum)
	}
}

// TestAdaptiveHysteresis: estimate jitter below the deadband must not
// move quotas.
func TestAdaptiveHysteresis(t *testing.T) {
	a := mustNew(t, Adaptive, 256) // deadband = 256/64 = 4 frames
	a.AddEnclave(1000)
	a.AddEnclave(1000)
	// Warm the estimators in from the declared-footprint prior until the
	// EWMA has converged on the true symmetric demand.
	for scan := 0; scan < 20; scan++ {
		a.NoteScan(0, 100, 128)
		a.NoteScan(1, 100, 128)
	}
	q0, q1 := a.Quota(0), a.Quota(1)
	for scan := 0; scan < 50; scan++ {
		// Both enclaves report near-identical demand, wobbling by one.
		if a.NoteScan(0, 100+scan%2, 128) || a.NoteScan(1, 100, 128) {
			t.Fatalf("scan %d: rebalanced inside the deadband", scan)
		}
	}
	if a.Quota(0) != q0 || a.Quota(1) != q1 {
		t.Fatal("quotas drifted without a rebalance")
	}
}

// TestAdaptiveBoundedStep: one bursty period moves quota by at most
// capacity/8 frames.
func TestAdaptiveBoundedStep(t *testing.T) {
	a := mustNew(t, Adaptive, 64) // step bound = 8
	a.AddEnclave(64)
	a.AddEnclave(64)
	for i := 0; i < 10_000; i++ {
		a.NoteFault(0)
	}
	before := a.Quota(0)
	a.NoteScan(0, 32, 32)
	if d := a.Quota(0) - before; d > 8 {
		t.Fatalf("one rebalance moved quota by %d frames, bound is 8", d)
	}
}

// TestNonAdaptiveNeverRebalances: Static and Proportional ignore the
// scan/fault feed entirely.
func TestNonAdaptiveNeverRebalances(t *testing.T) {
	for _, p := range []Policy{Global, Static, Proportional} {
		a := mustNew(t, p, 32)
		a.AddEnclave(64)
		a.AddEnclave(64)
		a.NoteFault(0)
		if a.NoteScan(0, 16, 16) {
			t.Fatalf("%v policy rebalanced", p)
		}
	}
}
