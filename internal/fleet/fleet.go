// Package fleet simulates a cluster of SGX hosts on one shared virtual
// clock. The paper's §5.6 scales contention to many enclaves on one
// EPC; the sharded runner (sim.RunSharded) scales that to many
// *independent* EPC domains with static placement. This package closes
// the remaining gap to a deployment: hosts that receive work over time.
// An open-loop front door admits enclave-launch requests from a
// deterministic arrival stream, a token-bucket admission controller
// sheds launches past a configured sustained rate, and a pluggable
// placement policy assigns each admitted enclave to a host using the
// hosts' live signals — so placement reacts to the contention the
// earlier launches created, which static round-robin cannot.
//
// Shared clock, deterministic schedule. Every host is its own EPC
// domain — own epc.EPC, own load-channel group, own dynamic engine
// (sim.NewDynamic) — and enclave clocks are absolute virtual time (an
// enclave admitted at T starts its clock at T). Hosts share no
// simulated state, so between arrival timestamps they advance
// independently, in parallel, with no cross-host synchronization. At
// each arrival timestamp T the fleet barriers: every host runs until
// its next event is past T, then the batch of arrivals at T is
// processed in stream order — bucket check, placement, admission —
// against host signals that are fully settled at T. Parallelism lives
// only between barriers, so the entire run — placements, sheds, every
// per-enclave result, every latency percentile — is identical at any
// worker count. A one-host fleet with every arrival at time zero and no
// admission control is byte-identical to sim.RunShared over the same
// enclaves: both reduce to the same admit-loop at t = 0 on the same
// engine.
package fleet

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"sgxpreload/internal/epc/arbiter"
	"sgxpreload/internal/mem"
	"sgxpreload/internal/obs"
	"sgxpreload/internal/sim"
	"sgxpreload/internal/stats"
)

// Arrival is one enclave-launch request at the fleet's front door.
type Arrival struct {
	// At is the launch's virtual-cycle timestamp. A run's arrivals must
	// be in non-decreasing At order — the front door is a stream, not a
	// queue to be sorted.
	At uint64
	// Enclave is the enclave to launch (see sim.Enclave).
	Enclave sim.Enclave
}

// Policy selects how admitted enclaves are placed onto hosts.
type Policy uint8

const (
	// RoundRobin places the i-th admitted enclave on host i mod H —
	// oblivious to load, the static baseline.
	RoundRobin Policy = iota
	// LeastLoaded places on the host with the fewest running enclaves
	// (lowest sim.Engine.Running), ties to the lower host index.
	LeastLoaded
	// PressureAware places on the host with the lowest EPC occupancy
	// (fewest resident frames, sim.Engine.EPCResident), ties first to
	// the fewest running enclaves, then to the lower host index — so a
	// cold fleet spreads instead of stacking host 0.
	PressureAware
	// Affinity pins repeat launches of a named workload to the host
	// that ran it last — the cache-warmth policy: a host that already
	// paged a workload's working set in services its re-launch with the
	// pages (and the DFP stream history) it built last time. A
	// workload's first launch falls back to LeastLoaded placement. The
	// workload key is the enclave name with the CLI's "/<launch-index>"
	// suffix stripped, so `sgxsim -fleet` repeat launches of one
	// benchmark share a key.
	Affinity
)

var policyNames = map[Policy]string{
	RoundRobin:    "round-robin",
	LeastLoaded:   "least-loaded",
	PressureAware: "pressure",
	Affinity:      "affinity",
}

// String returns the policy's flag name.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("policy(%d)", p)
}

// Policies returns every policy in declaration order.
func Policies() []Policy { return []Policy{RoundRobin, LeastLoaded, PressureAware, Affinity} }

// PolicyByName resolves a flag name to its Policy.
func PolicyByName(name string) (Policy, error) {
	for p, n := range policyNames {
		if n == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown placement policy %q (want round-robin, least-loaded, pressure, or affinity)", name)
}

// Config configures a fleet run.
type Config struct {
	// Hosts is the number of independent EPC domains; must be >= 1.
	Hosts int
	// Policy selects placement for admitted enclaves.
	Policy Policy
	// Platform is every host's platform configuration (EPCPages is per
	// host). Platform.Hook is only valid for a one-host fleet; use
	// Platform.HookFactory for per-host recording — the fleet resolves
	// it once per host index before building the host's engine.
	Platform sim.SharedConfig
	// AdmitPeriod is the token bucket's refill interval in cycles: the
	// sustained admission rate is one launch per AdmitPeriod cycles.
	// Zero disables admission control (nothing is shed).
	AdmitPeriod uint64
	// AdmitBurst is the bucket capacity — how many launches may be
	// admitted back-to-back before the rate limit bites. Defaults to 1
	// when AdmitPeriod is set.
	AdmitBurst int
	// Workers bounds the goroutines advancing hosts between arrival
	// barriers; <= 0 means GOMAXPROCS. Never affects results.
	Workers int
}

// HostReport is one host's outcome.
type HostReport struct {
	// Enclaves holds the host's per-enclave results in admission order.
	Enclaves []sim.SharedResult
	// EPCResident is the host's occupied frame count at end of run.
	EPCResident int
	// Resident holds each enclave's resident frame count at end of run,
	// indexed like Enclaves; the entries sum to EPCResident.
	Resident []int
	// Quota holds each enclave's EPC quota under the host's arbitration
	// policy (Platform.Quota), indexed like Enclaves; nil when the host
	// runs the Global policy (no quotas).
	Quota []int
	// Faults is the number of demand faults the host serviced.
	Faults int
	// FaultP50, FaultP95, and FaultP99 are the host's fault-service
	// latency percentiles in cycles (NaN when the host saw no faults).
	FaultP50, FaultP95, FaultP99 float64
}

// Result is a fleet run's outcome.
type Result struct {
	// Policy echoes the placement policy that produced the run.
	Policy Policy
	// Hosts holds per-host reports in host order.
	Hosts []HostReport
	// Placement maps each arrival index to the host that received it,
	// or -1 if the admission controller shed it.
	Placement []int
	// Shed holds the names of shed enclaves in arrival order.
	Shed []string
	// Faults is the fleet-wide demand-fault count.
	Faults int
	// FaultP50, FaultP95, and FaultP99 are fleet-wide fault-service
	// latency percentiles in cycles, pooled over every host's faults
	// (NaN when the whole fleet saw none).
	FaultP50, FaultP95, FaultP99 float64
}

// Run drives the arrival stream through the fleet to completion.
func Run(arrivals []Arrival, cfg Config) (Result, error) {
	fail := func(err error) (Result, error) {
		closeArrivalStreams(arrivals)
		return Result{}, err
	}
	if len(arrivals) == 0 {
		return fail(fmt.Errorf("fleet: need at least one arrival"))
	}
	if cfg.Hosts < 1 {
		return fail(fmt.Errorf("fleet: need at least one host, got %d", cfg.Hosts))
	}
	if cfg.Platform.Hook != nil && cfg.Platform.HookFactory != nil {
		return fail(fmt.Errorf("fleet: Platform takes Hook or HookFactory, not both"))
	}
	if cfg.Platform.Hook != nil && cfg.Hosts > 1 {
		return fail(fmt.Errorf("fleet: cannot share one hook across %d hosts (set HookFactory for per-host recording)", cfg.Hosts))
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].At < arrivals[i-1].At {
			return fail(fmt.Errorf("fleet: arrival %d at t=%d precedes arrival %d at t=%d; the front door is a time-ordered stream",
				i, arrivals[i].At, i-1, arrivals[i-1].At))
		}
	}

	// Build the hosts: each its own dynamic engine with a latency
	// sampler teed in front of the host's (optional) recording hook.
	hosts := make([]*sim.Engine, cfg.Hosts)
	samplers := make([]*obs.FaultLatencySampler, cfg.Hosts)
	for h := range hosts {
		pcfg := cfg.Platform
		if pcfg.HookFactory != nil {
			pcfg.Hook = cfg.Platform.HookFactory(h)
			pcfg.HookFactory = nil
		}
		samplers[h] = obs.NewFaultLatencySampler()
		pcfg.Hook = obs.Tee(samplers[h], pcfg.Hook)
		eng, err := sim.NewDynamic(pcfg)
		if err != nil {
			for _, e := range hosts[:h] {
				e.Close()
			}
			return fail(err)
		}
		hosts[h] = eng
	}
	closeHosts := func() {
		for _, e := range hosts {
			if e != nil {
				e.Close()
			}
		}
	}

	bucket := newTokenBucket(cfg.AdmitPeriod, cfg.AdmitBurst)
	res := Result{Policy: cfg.Policy, Placement: make([]int, 0, len(arrivals))}
	pl := &placer{policy: cfg.Policy, affinity: make(map[string]int)}

	i := 0
	for i < len(arrivals) {
		t := arrivals[i].At
		// Barrier: settle every host at t so the batch's placement
		// decisions read signals no later arrival could change.
		if err := forEachHost(len(hosts), cfg.Workers, func(h int) error {
			return hosts[h].RunUntil(t)
		}); err != nil {
			closeHosts()
			closeArrivalStreams(arrivals[i:])
			return Result{}, err
		}
		// Admit the whole batch at t back-to-back, in stream order.
		for i < len(arrivals) && arrivals[i].At == t {
			a := arrivals[i]
			i++
			if !bucket.take(t) {
				res.Placement = append(res.Placement, -1)
				res.Shed = append(res.Shed, a.Enclave.Name)
				if c, ok := a.Enclave.Stream.(mem.Closer); ok {
					c.Close()
				}
				continue
			}
			h := pl.place(hosts, a.Enclave.Name)
			if err := hosts[h].Admit(a.Enclave, t); err != nil {
				// Admit closed the failing enclave's stream; engines own
				// the earlier ones and the tail never reached an engine.
				closeHosts()
				closeArrivalStreams(arrivals[i:])
				return Result{}, fmt.Errorf("fleet: host %d: %w", h, err)
			}
			res.Placement = append(res.Placement, h)
		}
	}
	// The stream is exhausted; drain every host to completion.
	if err := forEachHost(len(hosts), cfg.Workers, func(h int) error {
		return hosts[h].Drain()
	}); err != nil {
		closeHosts()
		return Result{}, err
	}

	// Assemble the reports: per-host and fleet-wide pooled percentiles.
	var pool []float64
	for h, eng := range hosts {
		samples := samplers[h].Samples()
		pool = append(pool, samples...)
		enclaves := eng.Results()
		resident := make([]int, len(enclaves))
		for i := range resident {
			resident[i] = eng.OwnerResident(i)
		}
		var quota []int
		if eng.QuotaPolicy() != arbiter.Global {
			quota = make([]int, len(enclaves))
			for i := range quota {
				quota[i] = eng.Quota(i)
			}
		}
		res.Hosts = append(res.Hosts, HostReport{
			Enclaves:    enclaves,
			EPCResident: eng.EPCResident(),
			Resident:    resident,
			Quota:       quota,
			Faults:      len(samples),
			FaultP50:    stats.Percentile(samples, 50),
			FaultP95:    stats.Percentile(samples, 95),
			FaultP99:    stats.Percentile(samples, 99),
		})
	}
	res.Faults = len(pool)
	res.FaultP50 = stats.Percentile(pool, 50)
	res.FaultP95 = stats.Percentile(pool, 95)
	res.FaultP99 = stats.Percentile(pool, 99)
	return res, nil
}

// placer carries the placement state one run accumulates: the
// round-robin cursor and, for Affinity, the last host each workload ran
// on. Placements happen in stream order after the arrival barrier, so
// both are deterministic functions of the arrival stream alone.
type placer struct {
	policy   Policy
	admitted int            // round-robin cursor over admitted launches
	affinity map[string]int // workload key -> host of its last launch
}

// place picks the host for the next admitted enclave.
func (p *placer) place(hosts []*sim.Engine, name string) int {
	p.admitted++
	switch p.policy {
	case LeastLoaded:
		return leastLoaded(hosts)
	case PressureAware:
		best := 0
		for h := 1; h < len(hosts); h++ {
			hr, br := hosts[h].EPCResident(), hosts[best].EPCResident()
			if hr < br || (hr == br && hosts[h].Running() < hosts[best].Running()) {
				best = h
			}
		}
		return best
	case Affinity:
		key := affinityKey(name)
		if h, ok := p.affinity[key]; ok {
			return h
		}
		h := leastLoaded(hosts)
		p.affinity[key] = h
		return h
	default: // RoundRobin
		return (p.admitted - 1) % len(hosts)
	}
}

// leastLoaded returns the host with the fewest running enclaves, ties
// to the lower host index.
func leastLoaded(hosts []*sim.Engine) int {
	best := 0
	for h := 1; h < len(hosts); h++ {
		if hosts[h].Running() < hosts[best].Running() {
			best = h
		}
	}
	return best
}

// affinityKey strips the CLI's per-launch "/<index>" suffix so repeat
// launches of one workload share an affinity key; any other name is its
// own key.
func affinityKey(name string) string {
	i := strings.LastIndexByte(name, '/')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// tokenBucket is the admission controller, in virtual time and integer
// arithmetic: one token per period cycles, at most burst banked, the
// bucket full at t = 0. take at a timestamp never depends on float
// rounding, so shedding is deterministic.
type tokenBucket struct {
	period uint64
	burst  int
	tokens int
	last   uint64 // refill progress: tokens accrued up to this cycle
}

func newTokenBucket(period uint64, burst int) *tokenBucket {
	if period == 0 {
		return &tokenBucket{} // disabled: take always succeeds
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{period: period, burst: burst, tokens: burst}
}

// take consumes a token at virtual time t, reporting false (shed) when
// the bucket is empty. Arrivals reach it in time order, so t never
// regresses past last.
func (b *tokenBucket) take(t uint64) bool {
	if b.period == 0 {
		return true
	}
	accrued := (t - b.last) / b.period
	if accrued > 0 {
		if add := uint64(b.burst - b.tokens); accrued > add {
			accrued = add
		}
		b.tokens += int(accrued)
		b.last += accrued * b.period
		if b.tokens == b.burst {
			// A full bucket stops accruing: restart the refill clock at
			// t so idle time is not banked beyond the burst.
			b.last = t
		}
	}
	if b.tokens == 0 {
		return false
	}
	b.tokens--
	return true
}

// forEachHost runs fn(h) for every host on up to workers goroutines.
// Hosts are dispatched contiguously from zero (the RunSharded idiom),
// so on failure the lowest-index error — the one a sequential loop
// would have hit first — is returned.
func forEachHost(n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for h := 0; h < n; h++ {
			if err := fn(h); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				h := int(next.Add(1)) - 1
				if h >= n || failed.Load() {
					return
				}
				if err := fn(h); err != nil {
					errs[h] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CloseArrivals releases the closeable streams of arrivals that will
// never reach an engine — for callers that built an arrival slice (for
// instance by compiling a workload spec) and then abandon it without
// running. Run itself closes its arrivals' streams on every path, so
// callers that hand the slice to Run must not also call this.
func CloseArrivals(arrivals []Arrival) { closeArrivalStreams(arrivals) }

// closeArrivalStreams releases closeable streams of arrivals that never
// reached an engine — the fleet-level counterpart of Engine.Close on
// validation and mid-run failure paths.
func closeArrivalStreams(arrivals []Arrival) {
	for _, a := range arrivals {
		if c, ok := a.Enclave.Stream.(mem.Closer); ok {
			c.Close()
		}
	}
}

// String renders the fleet result: the per-host occupancy and latency
// table, then the fleet-wide pooled percentiles and shed count.
func (r Result) String() string {
	t := &stats.Table{Header: []string{"host", "enclaves", "resident", "faults", "p50", "p95", "p99"}}
	for h, hr := range r.Hosts {
		t.Add(h, len(hr.Enclaves), hr.EPCResident, hr.Faults,
			cyc(hr.FaultP50), cyc(hr.FaultP95), cyc(hr.FaultP99))
	}
	return fmt.Sprintf("Fleet: %d hosts, %s placement, %d launches (%d shed)\n",
		len(r.Hosts), r.Policy, len(r.Placement), len(r.Shed)) +
		t.String() +
		fmt.Sprintf("fleet-wide fault latency: p50 %s  p95 %s  p99 %s over %d faults\n",
			cyc(r.FaultP50), cyc(r.FaultP95), cyc(r.FaultP99), r.Faults)
}

// cyc renders a latency percentile, "-" when no faults were sampled.
func cyc(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
