package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// The live metrics surface. NewHandler exposes a Ring over HTTP so a
// long simulation can be watched while it runs: the engine emits into
// the Ring from the run goroutine while any number of scrapers read
// consistent snapshots. All three endpoints return JSON:
//
//	GET /metrics         run-so-far gauges: event totals per kind,
//	                     retained/dropped window counts, progress cycle
//	GET /events?since=N  retained events with sequence numbers > N
//	                     (omit since, or since=0, for the whole window)
//	GET /report          the full derived Report over the retained window
//
// /report is computed from the retained window only: once the ring has
// dropped events, window-spanning metrics (utilization buckets, latency
// histogram) cover the recent past, not the whole run — the response
// flags that with "window_complete": false. For whole-run metrics,
// record a trace and replay it (internal/replay).

// liveMetrics is the /metrics payload.
type liveMetrics struct {
	Schema         string            `json:"schema"`
	Version        int               `json:"version"`
	EventsTotal    uint64            `json:"events_total"`
	EventsRetained int               `json:"events_retained"`
	EventsDropped  uint64            `json:"events_dropped"`
	LastT          uint64            `json:"last_t"`
	Counts         map[string]uint64 `json:"counts"`
}

// wireEvent is an Event in the JSONL trace field order, plus its ring
// sequence number.
type wireEvent struct {
	Seq   uint64 `json:"seq"`
	T     uint64 `json:"t"`
	Kind  string `json:"kind"`
	Page  int64  `json:"page"`
	Batch uint64 `json:"batch"`
	V1    uint64 `json:"v1"`
	V2    uint64 `json:"v2"`
}

// eventsPayload is the /events response.
type eventsPayload struct {
	Since  uint64      `json:"since"`
	First  uint64      `json:"first"`
	Next   uint64      `json:"next"`
	Events []wireEvent `json:"events"`
}

// reportPayload is the /report response.
type reportPayload struct {
	EventsTotal    uint64 `json:"events_total"`
	WindowComplete bool   `json:"window_complete"`
	Report         Report `json:"report"`
}

// NewHandler returns an http.Handler serving ring's live metrics on
// /metrics, /events, and /report. The handler is safe for concurrent use
// while the engine is emitting into the ring.
func NewHandler(ring *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		s := ring.Stats()
		writeJSON(w, liveMetrics{
			Schema:         TraceSchema,
			Version:        TraceVersion,
			EventsTotal:    s.Total,
			EventsRetained: s.Retained,
			EventsDropped:  s.Dropped,
			LastT:          s.LastT,
			Counts:         s.Counts,
		})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "since must be a non-negative integer", http.StatusBadRequest)
				return
			}
			since = v
		}
		events, first := ring.Since(since)
		payload := eventsPayload{Since: since, First: first, Next: since, Events: make([]wireEvent, len(events))}
		for i, e := range events {
			seq := first + uint64(i)
			payload.Events[i] = wireEvent{
				Seq: seq, T: e.T, Kind: e.Kind.String(),
				Page: pageField(e.Page), Batch: e.Batch, V1: e.V1, V2: e.V2,
			}
			payload.Next = seq
		}
		writeJSON(w, payload)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, req *http.Request) {
		events, first := ring.Snapshot()
		var total uint64
		if len(events) > 0 {
			total = first - 1 + uint64(len(events))
		}
		writeJSON(w, reportPayload{
			EventsTotal:    total,
			WindowComplete: first <= 1,
			Report:         BuildReport(events),
		})
	})
	return mux
}

// writeJSON marshals v onto the response with the JSON content type.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}
