// Package spec compiles declarative, ServeGen-style workload
// specifications into deterministic open-loop arrival streams.
//
// The paper evaluates preloading against closed-loop, single-tenant
// traces: one benchmark, started once, run to completion. A cluster
// serving real traffic sees something else entirely — overlapping
// cohorts of clients, each launching enclaves under its own arrival
// process, with rates that swing over a day. A Spec describes exactly
// that shape: client cohorts, each with an arrival process (Poisson,
// Gamma, or Weibull renewal via internal/rng, or a deterministic fixed
// period), a weighted mix over the registered workload generators, a
// footprint distribution over the generators' train/ref inputs, and a
// multi-period (diurnal) rate envelope. Cohort modifiers rotate each
// launch's page space by a random phase shift and slide its working set
// over time — the access-pattern perturbations that stress DFP's stream
// recognizer and its safety valve.
//
// Compile turns a Spec into []fleet.Arrival with one pull-based
// mem.Stream per launch, so the streaming engine, the sharded runner,
// and the fleet layer consume spec-generated traffic unchanged. The
// compilation is seeded and uses no wall clock: the same Spec and
// Options produce the identical arrival stream — timestamps, workload
// picks, modifiers, and every access of every stream — on every run and
// at any fleet worker count. Specs have a JSON file form (Load/Parse)
// consumed by `sgxsim -spec`; see WORKLOADS.md for the format reference
// and a worked example.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"sgxpreload/internal/workload"
)

// Process names an arrival process.
type Process string

// Arrival processes.
const (
	// Fixed launches exactly every MeanIntervalCycles — the
	// deterministic baseline (the CLI's -arrival-period as a process).
	Fixed Process = "fixed"
	// Poisson draws exponential inter-arrival times (CV 1): memoryless
	// open-loop clients.
	Poisson Process = "poisson"
	// Gamma draws Gamma-renewal inter-arrival times with coefficient of
	// variation CV: CV < 1 is smoother than Poisson, CV > 1 burstier.
	Gamma Process = "gamma"
	// Weibull draws Weibull-renewal inter-arrival times with the given
	// Shape: shape < 1 is heavy-tailed (bursts separated by long gaps),
	// shape > 1 increasingly regular, shape 1 is Poisson.
	Weibull Process = "weibull"
)

// ArrivalProcess is a cohort's inter-arrival law. Intervals have mean
// MeanIntervalCycles (before envelope scaling) regardless of process;
// the process picks the distribution around that mean.
type ArrivalProcess struct {
	// Process selects the distribution family.
	Process Process `json:"process"`
	// MeanIntervalCycles is the mean inter-arrival time in virtual
	// cycles at envelope scale 1. Must be positive.
	MeanIntervalCycles float64 `json:"mean_interval_cycles"`
	// CV is the Gamma process's coefficient of variation (defaults to 1,
	// which makes Gamma coincide with Poisson). Ignored by the others.
	CV float64 `json:"cv,omitempty"`
	// Shape is the Weibull process's shape parameter (defaults to 1).
	// Ignored by the others.
	Shape float64 `json:"shape,omitempty"`
}

// Period is one segment of a cohort's rate envelope.
type Period struct {
	// Cycles is the segment's length in virtual cycles. Must be positive.
	Cycles uint64 `json:"cycles"`
	// Scale multiplies the cohort's arrival rate while the segment is
	// active: 1 leaves it alone, 0.25 is a night valley, 0 silences the
	// cohort for the segment. Must be non-negative.
	Scale float64 `json:"scale"`
}

// MixEntry weights one registered workload inside a cohort's mix.
type MixEntry struct {
	// Workload is a registered generator name (see workload.Names).
	Workload string `json:"workload"`
	// Weight is the entry's relative launch probability. Must be
	// positive.
	Weight float64 `json:"weight"`
}

// Cohort is one client population: an arrival process, a workload mix,
// and the modifiers applied to every launch it produces.
type Cohort struct {
	// Name labels the cohort; launch names are "<cohort>.<workload>/<n>".
	Name string `json:"name"`
	// Arrival is the cohort's inter-arrival law.
	Arrival ArrivalProcess `json:"arrival"`
	// Envelope is the cohort's multi-period rate envelope, cycled for
	// the whole horizon (a diurnal day, repeated). Empty means a flat
	// rate. The envelope scale in force at an interval's start scales
	// that whole interval — the standard piecewise approximation.
	Envelope []Period `json:"envelope,omitempty"`
	// Mix is the weighted workload mix; each launch draws one entry.
	Mix []MixEntry `json:"mix"`
	// TrainShare is the probability a launch uses the workload's train
	// input instead of ref — the footprint distribution knob (train
	// inputs have roughly half the footprint). In [0, 1]; default 0.
	TrainShare float64 `json:"train_share,omitempty"`
	// PhaseShiftPages, when positive, rotates each launch's pages by a
	// per-launch uniform offset in [0, PhaseShiftPages], modulo the
	// workload footprint. Repeat launches of one workload then fault
	// over disjoint phases, so a host's warm pages and DFP stream
	// history from the previous launch stop lining up.
	PhaseShiftPages uint64 `json:"phase_shift_pages,omitempty"`
	// DriftPeriodAccesses, when positive, slides the launch's working
	// set one page further into its footprint every DriftPeriodAccesses
	// accesses. The drift cuts every recognized stream short and keeps
	// baiting the recognizer with near-miss continuations — the
	// sustained-inaccuracy regime the DFP safety valve exists for.
	DriftPeriodAccesses uint64 `json:"drift_period_accesses,omitempty"`
	// Scheme, when set, overrides the compile Options' scheme for this
	// cohort's launches (baseline | dfp | dfp-stop | sip | hybrid).
	Scheme string `json:"scheme,omitempty"`
}

// Spec is a complete arrival-process workload specification.
type Spec struct {
	// Name labels the spec in reports.
	Name string `json:"name"`
	// Seed seeds every sampler the compilation uses. Two compilations
	// of one Spec with one seed are identical.
	Seed uint64 `json:"seed"`
	// HorizonCycles bounds arrival generation: launches strictly before
	// the horizon enter the stream. Must be positive.
	HorizonCycles uint64 `json:"horizon_cycles"`
	// Cohorts are the client populations; at least one.
	Cohorts []Cohort `json:"cohorts"`
}

// Parse decodes and validates a JSON spec. Unknown fields are errors, so
// a typoed knob fails loudly instead of silently meaning "default".
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a JSON spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec against the registered workloads and the
// samplers' parameter domains.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: name must be set")
	}
	if s.HorizonCycles == 0 {
		return fmt.Errorf("spec %s: horizon_cycles must be positive", s.Name)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("spec %s: need at least one cohort", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		where := fmt.Sprintf("spec %s cohort %d (%q)", s.Name, i, c.Name)
		if c.Name == "" {
			return fmt.Errorf("spec %s cohort %d: name must be set", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("%s: duplicate cohort name", where)
		}
		seen[c.Name] = true
		if err := c.validate(where); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cohort) validate(where string) error {
	switch c.Arrival.Process {
	case Fixed, Poisson:
	case Gamma:
		if c.Arrival.CV < 0 || isNaN(c.Arrival.CV) {
			return fmt.Errorf("%s: gamma cv must be >= 0 (0 means the default, 1), got %g", where, c.Arrival.CV)
		}
	case Weibull:
		if c.Arrival.Shape < 0 || isNaN(c.Arrival.Shape) {
			return fmt.Errorf("%s: weibull shape must be >= 0 (0 means the default, 1), got %g", where, c.Arrival.Shape)
		}
	default:
		return fmt.Errorf("%s: unknown arrival process %q (want fixed, poisson, gamma, or weibull)",
			where, c.Arrival.Process)
	}
	if !(c.Arrival.MeanIntervalCycles > 0) {
		return fmt.Errorf("%s: mean_interval_cycles must be positive, got %g",
			where, c.Arrival.MeanIntervalCycles)
	}
	for j, p := range c.Envelope {
		if p.Cycles == 0 {
			return fmt.Errorf("%s envelope period %d: cycles must be positive", where, j)
		}
		if p.Scale < 0 || isNaN(p.Scale) {
			return fmt.Errorf("%s envelope period %d: scale must be >= 0, got %g", where, j, p.Scale)
		}
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("%s: mix must name at least one workload", where)
	}
	for j, m := range c.Mix {
		if _, err := workload.ByName(m.Workload); err != nil {
			return fmt.Errorf("%s mix entry %d: %w", where, j, err)
		}
		if !(m.Weight > 0) {
			return fmt.Errorf("%s mix entry %d (%s): weight must be positive, got %g",
				where, j, m.Workload, m.Weight)
		}
	}
	if c.TrainShare < 0 || c.TrainShare > 1 || isNaN(c.TrainShare) {
		return fmt.Errorf("%s: train_share must be in [0, 1], got %g", where, c.TrainShare)
	}
	return nil
}

// isNaN avoids importing math for one predicate.
func isNaN(f float64) bool { return f != f }
